// sre_worker — a distributed-sweep worker as a process.
//
//   sre_worker [--tcp PORT] [options]
//
// The cluster::TaskExecutor behind the srv::EventLoop C10K front end: it
// speaks the full NDJSON protocol (plan requests, {"stats":true},
// {"ping":true} liveness probes answered inline by the loop thread) plus
// the v1 {"task":"sweep",...} frames — each frame's shard runs through the
// existing core::run_scenario_sweep stack on the executor's dispatch
// thread and answers with an {"ok":true,...,"outcomes":[...]} result line
// (or a typed {"ok":false,...} rejection carrying the error taxonomy).
//
// Port 0 (the default) binds an ephemeral port and prints the kernel's
// choice: a machine-readable "PORT <n>" line on stdout plus a human
// "listening on" line on stderr — cluster scripts and CI read stdout
// instead of racing on fixed ports. SIGTERM/SIGINT drain like sre_serve.
//
// Options:
//   --tcp PORT          listen on 127.0.0.1:PORT (0 = ephemeral)  [0]
//   --sweep-threads N   in-task sweep parallelism (0 = serial)    [0]
//   --backlog N         listen(2) backlog                         [1024]
//   --max-line BYTES    per-connection NDJSON line cap            [4 MiB]
//   --max-conns N       concurrent connection cap                 [10000]
//   --drain-ms F        shutdown drain budget                     [5000]
//
// Network chaos: the SRE_FAULT_NET_* knobs (sim::NetFaultSpec::from_env)
// apply exactly as in sre_serve — seeded resets/short IO/delays over every
// accepted connection, for kill-a-worker drills (docs/COOKBOOK.md 23).

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cluster/worker.hpp"
#include "sim/netfault.hpp"
#include "srv/eventloop.hpp"
#include "srv/service.hpp"

namespace {

constexpr const char* kUsage =
    "usage: sre_worker [--tcp PORT] [--sweep-threads N] [--backlog N]\n"
    "                  [--max-line BYTES] [--max-conns N] [--drain-ms F]\n";

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

sre::srv::EventLoop* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);  // a dead peer is an error code, not a death
#endif
  sre::cluster::WorkerConfig worker_cfg;
  sre::srv::EventLoopConfig loop_cfg;
  // Task frames embed the whole spec; results embed every outcome of the
  // shard. Both are far larger than a plan request, so the framing cap
  // starts higher than sre_serve's 1 MiB default.
  loop_cfg.max_line_bytes = 4u << 20;
  loop_cfg.net_faults = sre::sim::NetFaultSpec::from_env();
  long tcp_port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sre_worker: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    double f = 0.0;
    if (arg == "--tcp") {
      const char* v = need_value("--tcp");
      char* end = nullptr;
      tcp_port = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || tcp_port < 0 || tcp_port > 65535) {
        std::cerr << "sre_worker: bad port '" << v << "'\n" << kUsage;
        return 2;
      }
    } else if (arg == "--sweep-threads" &&
               parse_size(need_value("--sweep-threads"), n)) {
      worker_cfg.sweep_threads = static_cast<unsigned>(n);
    } else if (arg == "--backlog" && parse_size(need_value("--backlog"), n)) {
      loop_cfg.backlog = static_cast<int>(n);
    } else if (arg == "--max-line" &&
               parse_size(need_value("--max-line"), n)) {
      loop_cfg.max_line_bytes = n;
    } else if (arg == "--max-conns" &&
               parse_size(need_value("--max-conns"), n)) {
      loop_cfg.max_connections = n;
    } else if (arg == "--drain-ms" &&
               parse_double(need_value("--drain-ms"), f)) {
      loop_cfg.drain_timeout_s = f / 1e3;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sre_worker: unknown or malformed option '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  // A small planner service rides along so the worker answers plan
  // requests and {"cmd":"stats"} too — one protocol, every process.
  sre::srv::ServiceConfig svc_cfg = sre::srv::ServiceConfig::from_env();
  sre::srv::PlannerService service(svc_cfg);
  sre::cluster::TaskExecutor executor(worker_cfg);
  loop_cfg.port = static_cast<unsigned short>(tcp_port);
  loop_cfg.task_handler = executor.handler();

  try {
    sre::srv::EventLoop loop(service, loop_cfg);
    std::cerr << "sre_worker: listening on 127.0.0.1:" << loop.port() << "\n";
    std::cout << "PORT " << loop.port() << "\n" << std::flush;
    g_loop = &loop;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    loop.run();
    g_loop = nullptr;
    const auto c = loop.counters();
    const auto w = executor.counters();
    std::cerr << "sre_worker: drained (" << c.accepted << " connections, "
              << w.tasks << " tasks, " << w.ok << " ok, " << w.rejected
              << " rejected)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sre_worker: " << e.what() << "\n";
    return 2;
  }
}
