#!/usr/bin/env python3
"""Plot Figure 3 (normalized cost vs t1) from bench output.

Usage:
    build/bench/fig3_t1_sweep > fig3.txt
    tools/plot_fig3.py fig3.txt fig3.png

Requires matplotlib. The bench prints, per distribution, a '# <name> ...'
header followed by 't1,normalized_cost' CSV rows where '-' marks invalid
(non-increasing) sequences -- rendered here as gaps, as in the paper.
"""

import sys


def parse(path):
    panels = []
    name, xs, ys = None, [], []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line.startswith("#"):
                if name is not None:
                    panels.append((name, xs, ys))
                name, xs, ys = line[1:].split("(")[0].strip(), [], []
            elif "," in line and not line.startswith("t1"):
                t1, cost = line.split(",", 1)
                try:
                    xs.append(float(t1))
                    ys.append(float(cost) if cost != "-" else float("nan"))
                except ValueError:
                    pass
    if name is not None:
        panels.append((name, xs, ys))
    return panels


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    import math

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    panels = parse(sys.argv[1])
    cols = 3
    rows = math.ceil(len(panels) / cols)
    fig, axes = plt.subplots(rows, cols, figsize=(4 * cols, 3 * rows))
    for ax, (name, xs, ys) in zip(axes.flat, panels):
        ax.plot(xs, ys, ".", markersize=3)
        ax.set_title(name)
        ax.set_xlabel("t1")
        ax.set_ylabel("normalized cost")
    for ax in axes.flat[len(panels):]:
        ax.axis("off")
    fig.tight_layout()
    fig.savefig(sys.argv[2], dpi=150)
    print(f"wrote {sys.argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
