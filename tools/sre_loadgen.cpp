// sre_loadgen — seeded load generator for the srv:: planner service.
//
// Drives an in-process PlannerService (the full queue / batch / cache path,
// no sockets) with a reproducible request stream drawn from the paper's
// workload: the nine Table 1 distributions crossed with four cost models.
// Two modes:
//
//   closed loop (default): --clients C threads each keep one request in
//     flight, until --requests N have been issued;
//   open loop: --rate R schedules request i at start + i/R seconds and
//     fires late when behind, measuring latency under a fixed offered load.
//
// The summary lands in BENCH_serve.json (override with --out): counters
// from the service's plain atomics (exact in every build, including
// obs-off), latency quantiles via obs::HistogramSnapshot::quantile over
// duration_bounds_seconds() buckets, throughput, cache hit rate, rejection
// rate. A fixed --seed and --clients 1 makes every field but the timings
// deterministic, which is what the committed bench/baselines/BENCH_serve.json
// gates in CI (obsdiff: counts exact, times banded).
//
//   sre_loadgen [--requests N] [--clients C] [--seed S] [--rate R]
//               [--population P] [--solver NAME] [--n N] [--epsilon F]
//               [--deadline-ms F] [--no-cache] [--threads N] [--queue N]
//               [--batch N] [--out FILE]
//
// --no-cache disables the service's plan cache (same as SRE_SRV_CACHE=0);
// comparing a cached against a --no-cache run of the same stream is the
// repeated-query speedup measurement from the acceptance checklist.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_model.hpp"
#include "dist/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "sim/rng.hpp"
#include "srv/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: sre_loadgen [--requests N] [--clients C] [--seed S] [--rate R]\n"
    "                   [--population P] [--solver NAME] [--n N]\n"
    "                   [--epsilon F] [--deadline-ms F] [--no-cache]\n"
    "                   [--threads N] [--queue N] [--batch N] [--out FILE]\n";

struct Options {
  std::size_t requests = 2000;
  std::size_t clients = 1;
  std::uint64_t seed = 42;
  double rate = 0.0;  ///< requests/second; 0 = closed loop
  std::size_t population = 0;  ///< distinct queries; 0 = full 9 x 4 grid
  std::string solver = "refined-dp";
  std::size_t n = 500;
  double epsilon = 1e-7;
  double deadline_ms = 0.0;
  bool no_cache = false;
  std::string out = "BENCH_serve.json";
  sre::srv::ServiceConfig service = sre::srv::ServiceConfig::from_env();
};

/// The workload population: Table 1 laws x the evaluation cost models.
std::vector<sre::srv::PlanRequest> build_population(const Options& opt) {
  const std::vector<sre::core::CostModel> models = {
      sre::core::CostModel::reservation_only(),
      {1.0, 1.0, 0.0},
      {1.0, 1.0, 1.0},
      {0.95, 1.0, 1.05},
  };
  std::vector<sre::srv::PlanRequest> population;
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& model : models) {
      sre::srv::PlanRequest req;
      req.dist_spec = inst.label;
      req.model = model;
      req.solver = opt.solver;
      req.n = opt.n;
      req.epsilon = opt.epsilon;
      req.deadline_ms = opt.deadline_ms;
      population.push_back(std::move(req));
    }
  }
  if (opt.population > 0 && opt.population < population.size()) {
    population.resize(opt.population);
  }
  return population;
}

/// Latency accounting that works in every build (obs-off included): a
/// hand-filled HistogramSnapshot over the standard duration buckets, whose
/// quantile() does the interpolation.
struct LatencyRecorder {
  explicit LatencyRecorder(std::vector<double> bounds)
      : snapshot_{std::move(bounds), {}, 0, 0.0, 0.0} {
    snapshot_.buckets.assign(snapshot_.bounds.size() + 1, 0);
  }

  void observe(double seconds) {
    const auto it = std::lower_bound(snapshot_.bounds.begin(),
                                     snapshot_.bounds.end(), seconds);
    ++snapshot_.buckets[static_cast<std::size_t>(
        it - snapshot_.bounds.begin())];
    ++snapshot_.count;
    snapshot_.sum += seconds;
    snapshot_.max = std::max(snapshot_.max, seconds);
  }

  void merge(const LatencyRecorder& other) {
    for (std::size_t i = 0; i < snapshot_.buckets.size(); ++i) {
      snapshot_.buckets[i] += other.snapshot_.buckets[i];
    }
    snapshot_.count += other.snapshot_.count;
    snapshot_.sum += other.snapshot_.sum;
    snapshot_.max = std::max(snapshot_.max, other.snapshot_.max);
  }

  sre::obs::HistogramSnapshot snapshot_;
};

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sre_loadgen: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    double f = 0.0;
    if (arg == "--requests" && parse_size(need_value(arg.c_str()), n)) {
      opt.requests = n;
    } else if (arg == "--clients" && parse_size(need_value(arg.c_str()), n)) {
      opt.clients = n == 0 ? 1 : n;
    } else if (arg == "--seed" && parse_size(need_value(arg.c_str()), n)) {
      opt.seed = n;
    } else if (arg == "--rate" && parse_double(need_value(arg.c_str()), f)) {
      opt.rate = f;
    } else if (arg == "--population" &&
               parse_size(need_value(arg.c_str()), n)) {
      opt.population = n;
    } else if (arg == "--solver") {
      opt.solver = need_value(arg.c_str());
    } else if (arg == "--n" && parse_size(need_value(arg.c_str()), n)) {
      opt.n = n;
    } else if (arg == "--epsilon" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.epsilon = f;
    } else if (arg == "--deadline-ms" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.deadline_ms = f;
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg == "--threads" && parse_size(need_value(arg.c_str()), n)) {
      opt.service.workers = static_cast<unsigned>(n);
    } else if (arg == "--queue" && parse_size(need_value(arg.c_str()), n)) {
      opt.service.queue_capacity = n;
    } else if (arg == "--batch" && parse_size(need_value(arg.c_str()), n)) {
      opt.service.max_batch = n;
    } else if (arg == "--out") {
      opt.out = need_value(arg.c_str());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sre_loadgen: unknown or malformed option '" << arg
                << "'\n" << kUsage;
      return 2;
    }
  }
  if (opt.no_cache) opt.service.cache_enabled = false;

  // SRE_TRACE=path captures the service's srv.request/srv.solve span
  // timeline as Chrome Trace JSON (same contract as the bench binaries);
  // CI validates the capture balances per thread.
  sre::obs::recorder::arm_from_env();

  const auto population = build_population(opt);
  if (population.empty()) {
    std::cerr << "sre_loadgen: empty workload population\n";
    return 2;
  }

  sre::srv::PlannerService service(opt.service);
  sre::srv::InProcessClient client(service);

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> rejected_count{0};
  std::vector<LatencyRecorder> recorders(
      opt.clients, LatencyRecorder(sre::obs::duration_bounds_seconds()));

  const auto start = Clock::now();
  auto run_client = [&](std::size_t client_index) {
    LatencyRecorder& recorder = recorders[client_index];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= opt.requests) return;
      if (opt.rate > 0.0) {
        // Open loop: request i is due at start + i/rate; fire late when
        // behind rather than silently rescheduling.
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / opt.rate));
        std::this_thread::sleep_until(due);
      }
      // Seeded pick: request i always maps to the same population entry,
      // independent of client count and interleaving.
      std::uint64_t stream = sre::sim::substream_seed(opt.seed, i);
      const std::size_t pick = static_cast<std::size_t>(
          sre::sim::splitmix64(stream) % population.size());
      sre::srv::PlanRequest req = population[pick];
      req.id = std::to_string(i);
      const auto t0 = Clock::now();
      const auto resp = client.call(req);
      recorder.observe(std::chrono::duration<double>(Clock::now() - t0)
                           .count());
      if (resp.ok) {
        ok_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        rejected_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  if (opt.clients == 1) {
    run_client(0);
  } else {
    std::vector<std::thread> clients;
    clients.reserve(opt.clients);
    for (std::size_t c = 0; c < opt.clients; ++c) {
      clients.emplace_back(run_client, c);
    }
    for (auto& t : clients) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyRecorder merged(sre::obs::duration_bounds_seconds());
  for (const auto& r : recorders) merged.merge(r);
  const auto& lat = merged.snapshot_;

  const auto counters = service.counters();
  const auto cache = service.cache_counters();
  const std::uint64_t lookups = cache.hits + cache.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  const double rejection_rate =
      counters.requests > 0
          ? static_cast<double>(counters.rejected) /
                static_cast<double>(counters.requests)
          : 0.0;
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(counters.completed) / wall_s : 0.0;

  using sre::obs::format_double;
  std::string json = "{\n";
  json += "  \"config\": {\"requests\": " + std::to_string(opt.requests);
  json += ", \"clients\": " + std::to_string(opt.clients);
  json += ", \"seed\": " + std::to_string(opt.seed);
  json += ", \"rate\": " + format_double(opt.rate);
  json += ", \"population\": " + std::to_string(population.size());
  json += ", \"solver\": \"" + opt.solver + "\"";
  json += ", \"n\": " + std::to_string(opt.n);
  json += ", \"cache_enabled\": ";
  json += opt.service.cache_enabled ? "true" : "false";
  json += "},\n";
  json += "  \"requests\": " + std::to_string(counters.requests);
  json += ",\n  \"completed\": " + std::to_string(counters.completed);
  json += ",\n  \"rejected\": " + std::to_string(counters.rejected);
  json += ",\n  \"rejection_rate\": " + format_double(rejection_rate);
  json += ",\n  \"throughput_rps\": " + format_double(throughput);
  json += ",\n  \"wall_seconds\": " + format_double(wall_s);
  json += ",\n  \"latency_seconds\": {\"p50\": " +
          format_double(lat.quantile(0.50));
  json += ", \"p95\": " + format_double(lat.quantile(0.95));
  json += ", \"p99\": " + format_double(lat.quantile(0.99));
  json += ", \"max\": " + format_double(lat.max);
  json += ", \"mean\": " +
          format_double(lat.count > 0
                            ? lat.sum / static_cast<double>(lat.count)
                            : 0.0);
  json += "},\n";
  json += "  \"cache\": {\"hits\": " + std::to_string(cache.hits);
  json += ", \"misses\": " + std::to_string(cache.misses);
  json += ", \"inserts\": " + std::to_string(cache.inserts);
  json += ", \"evictions\": " + std::to_string(cache.evictions);
  json += ", \"hit_rate\": " + format_double(hit_rate);
  json += "},\n";
  json += "  \"batch\": {\"solves\": " + std::to_string(counters.solves);
  json += ", \"coalesced\": " + std::to_string(counters.coalesced);
  json += "},\n";
  json += "  \"stats\": " + service.stats_json();
  json += "\n}\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "sre_loadgen: cannot write " << opt.out << "\n";
    return 2;
  }
  out << json;
  out.close();

  if (sre::obs::recorder::armed() &&
      !sre::obs::recorder::stop_and_write()) {
    std::cerr << "sre_loadgen: cannot write trace (is SRE_TRACE set?)\n";
    return 2;
  }

  std::cout << "sre_loadgen: " << counters.completed << "/" << opt.requests
            << " ok, " << counters.rejected << " rejected, "
            << format_double(throughput) << " req/s, cache hit rate "
            << format_double(hit_rate) << " -> " << opt.out << "\n";
  return 0;
}
