// sre_loadgen — seeded load generator for the srv:: planner service.
//
// Drives the planner with a reproducible request stream drawn from the
// paper's workload: the nine Table 1 distributions crossed with four cost
// models. Three modes:
//
//   closed loop (default): --clients C threads each keep one request in
//     flight against an in-process PlannerService (no sockets), until
//     --requests N have been issued;
//   open loop: --rate R schedules request i at start + i/R seconds and
//     fires late when behind, measuring latency under a fixed offered load;
//   c10k socket mode: --connections N drives the srv::EventLoop front end
//     over real loopback sockets. Three phases: a warmup pass (one strict
//     round trip per distinct query, so both measured phases serve from a
//     warm cache), a blocking baseline (one connection, strict round trips
//     — the old front end's serving discipline), and the c10k phase (N
//     concurrent connections, request i pinned to connection i mod N so
//     the seeded mix is split deterministically, each connection keeping
//     up to --window W requests pipelined). Every c10k response line is
//     then replayed through a fresh InProcessClient and compared byte for
//     byte (the volatile "cached" flag normalized on both sides), which is
//     the acceptance gate that the async transport serves exactly the
//     bytes the no-IO reference path does.
//
// All socket phases ride srv::Client — the resilient shared client
// (EINTR-safe I/O, MSG_NOSIGNAL sends, reconnect, jittered typed retries
// via net::RetryPolicy, retry_after_ms brownout hints honored, optional
// circuit breaker). Under network chaos (the SRE_FAULT_NET_* knobs, which
// the in-process EventLoop and the clients both read) the c10k phase
// reconnects and replays through injected resets/short ops; requests that
// still produced an ok response ("survivors") must replay byte-identical,
// reported as "chaos_survivors_byte_identical". The report's "chaos"
// block carries the process-wide injection totals (nonzero proves the
// drill actually injected), "client" the summed srv::Client counters, and
// "failures_by_code" the typed outcome of every failed c10k response —
// under chaos every failure must be typed, never a crash or a garbled
// line.
//
// The summary lands in BENCH_serve.json (BENCH_serve_c10k.json in socket
// mode; override with --out): counters from plain atomics (exact in every
// build, including obs-off), latency quantiles via
// obs::HistogramSnapshot::quantile over duration_bounds_seconds() buckets,
// throughput, cache hit rate, rejection rate — plus, in socket mode,
// per-connection and aggregate quantiles, the srv.conn.* loop counters,
// the blocking-vs-c10k speedup and the replay verdict. A fixed --seed
// makes every count field deterministic (socket mode needs a --queue large
// enough that admission never sheds), which is what the committed
// bench/baselines/*.json gate in CI (obsdiff: counts exact, times banded).
//
//   sre_loadgen [--requests N] [--clients C] [--seed S] [--rate R]
//               [--connections N] [--window W] [--baseline N]
//               [--connect PORT] [--population P] [--solver NAME] [--n N]
//               [--epsilon F] [--deadline-ms F] [--no-cache] [--threads N]
//               [--queue N] [--batch N] [--retries N] [--backoff-ms F]
//               [--backoff-cap-ms F] [--budget-ms F] [--breaker N]
//               [--out FILE] [--access-log FILE] [--wide-log FILE]
//
// Socket mode also exercises the telemetry layer: the in-process loop
// writes a wide-event access log (--access-log; default <out>.access.jsonl)
// which is joined back against the client's per-request ids — the summary's
// "wide" block reports events, the c10k join count, sink drops, and the
// max server-vs-client latency skew. The baseline phase uses "b-<i>" ids so
// the c10k phase's numeric ids are unique join keys. A {"stats":true}
// round trip after the measured phases verifies the live-introspection
// verb ("server_stats_ok").
//
// --connect PORT skips the in-process EventLoop and aims the socket phases
// at an already-running sre_serve --tcp on 127.0.0.1 (CI's smoke test);
// loop counters and the replay gate are skipped since the server's state
// is not observable from here — but --wide-log FILE (the server's
// --access-log path) still joins the access log against client ids,
// retrying briefly while the server's flusher catches up. --no-cache disables the service's plan
// cache (same as SRE_SRV_CACHE=0); comparing a cached against a
// --no-cache run of the same stream is the repeated-query speedup
// measurement from the acceptance checklist.

#include <algorithm>
#include <atomic>
#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "dist/factory.hpp"
#include "net/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/minijson.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "sim/netfault.hpp"
#include "sim/rng.hpp"
#include "sre_loadgen_cluster.hpp"
#include "srv/chaos_socket.hpp"
#include "srv/client.hpp"
#include "srv/eventloop.hpp"
#include "srv/protocol.hpp"
#include "srv/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: sre_loadgen [--requests N] [--clients C] [--seed S] [--rate R]\n"
    "                   [--connections N] [--window W] [--baseline N]\n"
    "                   [--connect PORT] [--population P] [--solver NAME]\n"
    "                   [--n N] [--epsilon F] [--deadline-ms F] [--no-cache]\n"
    "                   [--threads N] [--queue N] [--batch N] [--retries N]\n"
    "                   [--backoff-ms F] [--backoff-cap-ms F] [--budget-ms F]\n"
    "                   [--breaker N] [--out FILE] [--access-log FILE]\n"
    "                   [--wide-log FILE]\n";

struct Options {
  std::size_t requests = 2000;
  std::size_t clients = 1;
  std::uint64_t seed = 42;
  double rate = 0.0;  ///< requests/second; 0 = closed loop
  std::size_t connections = 0;  ///< >0 switches to c10k socket mode
  std::size_t window = 16;      ///< per-connection pipelining depth
  std::size_t baseline = 0;     ///< blocking-phase requests; 0 = min(N,500)
  long connect_port = -1;       ///< >=0: external server, no in-process loop
  std::size_t population = 0;  ///< distinct queries; 0 = full 9 x 4 grid
  std::string solver = "refined-dp";
  std::size_t n = 500;
  double epsilon = 1e-7;
  double deadline_ms = 0.0;
  bool no_cache = false;
  int retries = 4;             ///< srv::Client attempts per call/reconnect
  double backoff_ms = 1.0;     ///< decorrelated-jitter base
  double backoff_cap_ms = 100.0;
  double budget_ms = 0.0;      ///< per-call deadline budget; 0 = off
  int breaker = 0;             ///< breaker threshold; 0 = off
  std::string out;  ///< default depends on mode; see main()
  std::string access_log;  ///< in-process loop's wide log; "" = <out>.access.jsonl
  std::string wide_log;    ///< --connect: server's access log to join against
  sre::srv::ServiceConfig service = sre::srv::ServiceConfig::from_env();
};

/// The workload population: Table 1 laws x the evaluation cost models.
std::vector<sre::srv::PlanRequest> build_population(const Options& opt) {
  const std::vector<sre::core::CostModel> models = {
      sre::core::CostModel::reservation_only(),
      {1.0, 1.0, 0.0},
      {1.0, 1.0, 1.0},
      {0.95, 1.0, 1.05},
  };
  std::vector<sre::srv::PlanRequest> population;
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& model : models) {
      sre::srv::PlanRequest req;
      req.dist_spec = inst.label;
      req.model = model;
      req.solver = opt.solver;
      req.n = opt.n;
      req.epsilon = opt.epsilon;
      req.deadline_ms = opt.deadline_ms;
      population.push_back(std::move(req));
    }
  }
  if (opt.population > 0 && opt.population < population.size()) {
    population.resize(opt.population);
  }
  return population;
}

/// Seeded pick: request i always maps to the same population entry,
/// independent of client/connection count and interleaving.
std::size_t pick_index(const Options& opt, std::size_t i,
                       std::size_t population_size) {
  std::uint64_t stream = sre::sim::substream_seed(opt.seed, i);
  return static_cast<std::size_t>(sre::sim::splitmix64(stream) %
                                  population_size);
}

/// Latency accounting that works in every build (obs-off included): a
/// hand-filled HistogramSnapshot over the standard duration buckets, whose
/// quantile() does the interpolation.
struct LatencyRecorder {
  explicit LatencyRecorder(std::vector<double> bounds)
      : snapshot_{std::move(bounds), {}, 0, 0.0, 0.0} {
    snapshot_.buckets.assign(snapshot_.bounds.size() + 1, 0);
  }

  void observe(double seconds) {
    const auto it = std::lower_bound(snapshot_.bounds.begin(),
                                     snapshot_.bounds.end(), seconds);
    ++snapshot_.buckets[static_cast<std::size_t>(
        it - snapshot_.bounds.begin())];
    ++snapshot_.count;
    snapshot_.sum += seconds;
    snapshot_.max = std::max(snapshot_.max, seconds);
  }

  void merge(const LatencyRecorder& other) {
    for (std::size_t i = 0; i < snapshot_.buckets.size(); ++i) {
      snapshot_.buckets[i] += other.snapshot_.buckets[i];
    }
    snapshot_.count += other.snapshot_.count;
    snapshot_.sum += other.snapshot_.sum;
    snapshot_.max = std::max(snapshot_.max, other.snapshot_.max);
  }

  sre::obs::HistogramSnapshot snapshot_;
};

std::string latency_json(const sre::obs::HistogramSnapshot& lat) {
  using sre::obs::format_double;
  std::string json = "{\"p50\": " + format_double(lat.quantile(0.50));
  json += ", \"p95\": " + format_double(lat.quantile(0.95));
  json += ", \"p99\": " + format_double(lat.quantile(0.99));
  json += ", \"max\": " + format_double(lat.max);
  json += ", \"mean\": " +
          format_double(lat.count > 0
                            ? lat.sum / static_cast<double>(lat.count)
                            : 0.0);
  json += "}";
  return json;
}

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

int run_inprocess(const Options& opt,
                  const std::vector<sre::srv::PlanRequest>& population);

#ifdef __linux__
int run_sockets(const Options& opt,
                const std::vector<sre::srv::PlanRequest>& population);
#endif

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // Belt to srv::Client's MSG_NOSIGNAL braces: nothing in this process —
  // including the in-process EventLoop — may die to a peer closing early.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  // --cluster switches to the fleet driver (replica routing + distributed
  // sweep benches); it owns its own flag set, so hand the whole argv over.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--cluster") {
      return sre_loadgen_cluster_main(argc, argv);
    }
  }
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sre_loadgen: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    double f = 0.0;
    if (arg == "--requests" && parse_size(need_value(arg.c_str()), n)) {
      opt.requests = n;
    } else if (arg == "--clients" && parse_size(need_value(arg.c_str()), n)) {
      opt.clients = n == 0 ? 1 : n;
    } else if (arg == "--seed" && parse_size(need_value(arg.c_str()), n)) {
      opt.seed = n;
    } else if (arg == "--rate" && parse_double(need_value(arg.c_str()), f)) {
      opt.rate = f;
    } else if (arg == "--connections" &&
               parse_size(need_value(arg.c_str()), n)) {
      opt.connections = n;
    } else if (arg == "--window" && parse_size(need_value(arg.c_str()), n)) {
      opt.window = n == 0 ? 1 : n;
    } else if (arg == "--baseline" &&
               parse_size(need_value(arg.c_str()), n)) {
      opt.baseline = n;
    } else if (arg == "--connect" &&
               parse_size(need_value(arg.c_str()), n) && n <= 65535) {
      opt.connect_port = static_cast<long>(n);
    } else if (arg == "--population" &&
               parse_size(need_value(arg.c_str()), n)) {
      opt.population = n;
    } else if (arg == "--solver") {
      opt.solver = need_value(arg.c_str());
    } else if (arg == "--n" && parse_size(need_value(arg.c_str()), n)) {
      opt.n = n;
    } else if (arg == "--epsilon" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.epsilon = f;
    } else if (arg == "--deadline-ms" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.deadline_ms = f;
    } else if (arg == "--no-cache") {
      opt.no_cache = true;
    } else if (arg == "--threads" && parse_size(need_value(arg.c_str()), n)) {
      opt.service.workers = static_cast<unsigned>(n);
    } else if (arg == "--queue" && parse_size(need_value(arg.c_str()), n)) {
      opt.service.queue_capacity = n;
    } else if (arg == "--batch" && parse_size(need_value(arg.c_str()), n)) {
      opt.service.max_batch = n;
    } else if (arg == "--retries" && parse_size(need_value(arg.c_str()), n)) {
      opt.retries = n == 0 ? 1 : static_cast<int>(n);
    } else if (arg == "--backoff-ms" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.backoff_ms = f;
    } else if (arg == "--backoff-cap-ms" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.backoff_cap_ms = f;
    } else if (arg == "--budget-ms" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.budget_ms = f;
    } else if (arg == "--breaker" && parse_size(need_value(arg.c_str()), n)) {
      opt.breaker = static_cast<int>(n);
    } else if (arg == "--out") {
      opt.out = need_value(arg.c_str());
    } else if (arg == "--access-log") {
      opt.access_log = need_value(arg.c_str());
    } else if (arg == "--wide-log") {
      opt.wide_log = need_value(arg.c_str());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sre_loadgen: unknown or malformed option '" << arg
                << "'\n" << kUsage;
      return 2;
    }
  }
  if (opt.no_cache) opt.service.cache_enabled = false;
  if (opt.out.empty()) {
    opt.out = opt.connections > 0 ? "BENCH_serve_c10k.json"
                                  : "BENCH_serve.json";
  }
  if (opt.baseline == 0) opt.baseline = std::min<std::size_t>(opt.requests, 500);

  // SRE_TRACE=path captures the service's srv.request/srv.solve span
  // timeline as Chrome Trace JSON (same contract as the bench binaries);
  // CI validates the capture balances per thread.
  sre::obs::recorder::arm_from_env();

  const auto population = build_population(opt);
  if (population.empty()) {
    std::cerr << "sre_loadgen: empty workload population\n";
    return 2;
  }

  if (opt.connections > 0) {
#ifdef __linux__
    return run_sockets(opt, population);
#else
    std::cerr << "sre_loadgen: --connections needs the Linux event loop\n";
    return 2;
#endif
  }
  return run_inprocess(opt, population);
}

namespace {

int run_inprocess(const Options& opt,
                  const std::vector<sre::srv::PlanRequest>& population) {
  sre::srv::PlannerService service(opt.service);
  sre::srv::InProcessClient client(service);

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> rejected_count{0};
  std::vector<LatencyRecorder> recorders(
      opt.clients, LatencyRecorder(sre::obs::duration_bounds_seconds()));

  const auto start = Clock::now();
  auto run_client = [&](std::size_t client_index) {
    LatencyRecorder& recorder = recorders[client_index];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= opt.requests) return;
      if (opt.rate > 0.0) {
        // Open loop: request i is due at start + i/rate; fire late when
        // behind rather than silently rescheduling.
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / opt.rate));
        std::this_thread::sleep_until(due);
      }
      sre::srv::PlanRequest req =
          population[pick_index(opt, i, population.size())];
      req.id = std::to_string(i);
      const auto t0 = Clock::now();
      const auto resp = client.call(req);
      recorder.observe(std::chrono::duration<double>(Clock::now() - t0)
                           .count());
      if (resp.ok) {
        ok_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        rejected_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  if (opt.clients == 1) {
    run_client(0);
  } else {
    std::vector<std::thread> clients;
    clients.reserve(opt.clients);
    for (std::size_t c = 0; c < opt.clients; ++c) {
      clients.emplace_back(run_client, c);
    }
    for (auto& t : clients) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  LatencyRecorder merged(sre::obs::duration_bounds_seconds());
  for (const auto& r : recorders) merged.merge(r);
  const auto& lat = merged.snapshot_;

  const auto counters = service.counters();
  const auto cache = service.cache_counters();
  const std::uint64_t lookups = cache.hits + cache.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(cache.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  const double rejection_rate =
      counters.requests > 0
          ? static_cast<double>(counters.rejected) /
                static_cast<double>(counters.requests)
          : 0.0;
  const double throughput =
      wall_s > 0.0 ? static_cast<double>(counters.completed) / wall_s : 0.0;

  using sre::obs::format_double;
  std::string json = "{\n";
  json += "  \"config\": {\"requests\": " + std::to_string(opt.requests);
  json += ", \"clients\": " + std::to_string(opt.clients);
  json += ", \"seed\": " + std::to_string(opt.seed);
  json += ", \"rate\": " + format_double(opt.rate);
  json += ", \"population\": " + std::to_string(population.size());
  json += ", \"solver\": \"" + opt.solver + "\"";
  json += ", \"n\": " + std::to_string(opt.n);
  json += ", \"cache_enabled\": ";
  json += opt.service.cache_enabled ? "true" : "false";
  json += "},\n";
  json += "  \"requests\": " + std::to_string(counters.requests);
  json += ",\n  \"completed\": " + std::to_string(counters.completed);
  json += ",\n  \"rejected\": " + std::to_string(counters.rejected);
  json += ",\n  \"rejection_rate\": " + format_double(rejection_rate);
  json += ",\n  \"throughput_rps\": " + format_double(throughput);
  json += ",\n  \"wall_seconds\": " + format_double(wall_s);
  json += ",\n  \"latency_seconds\": " + latency_json(lat);
  json += ",\n";
  json += "  \"cache\": {\"hits\": " + std::to_string(cache.hits);
  json += ", \"misses\": " + std::to_string(cache.misses);
  json += ", \"inserts\": " + std::to_string(cache.inserts);
  json += ", \"evictions\": " + std::to_string(cache.evictions);
  json += ", \"hit_rate\": " + format_double(hit_rate);
  json += "},\n";
  json += "  \"batch\": {\"solves\": " + std::to_string(counters.solves);
  json += ", \"coalesced\": " + std::to_string(counters.coalesced);
  json += "},\n";
  json += "  \"stats\": " + service.stats_json();
  json += "\n}\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "sre_loadgen: cannot write " << opt.out << "\n";
    return 2;
  }
  out << json;
  out.close();

  if (sre::obs::recorder::armed() &&
      !sre::obs::recorder::stop_and_write()) {
    std::cerr << "sre_loadgen: cannot write trace (is SRE_TRACE set?)\n";
    return 2;
  }

  std::cout << "sre_loadgen: " << counters.completed << "/" << opt.requests
            << " ok, " << counters.rejected << " rejected, "
            << format_double(throughput) << " req/s, cache hit rate "
            << format_double(hit_rate) << " -> " << opt.out << "\n";
  return 0;
}

#ifdef __linux__

/// Serializes a population request as the protocol's wire form (no
/// newline; srv::Client frames it). format_double is shortest-round-trip,
/// so the parsed request rebuilds the exact canonical key of the
/// in-memory one.
std::string wire_line(const sre::srv::PlanRequest& req) {
  using sre::obs::format_double;
  std::string l = "{\"id\":\"" + req.id + "\",\"dist\":\"" + req.dist_spec;
  l += "\",\"cost\":{\"alpha\":" + format_double(req.model.alpha);
  l += ",\"beta\":" + format_double(req.model.beta);
  l += ",\"gamma\":" + format_double(req.model.gamma);
  l += "},\"solver\":\"" + req.solver + "\"";
  l += ",\"n\":" + std::to_string(req.n);
  l += ",\"epsilon\":" + format_double(req.epsilon);
  if (req.deadline_ms > 0.0) {
    l += ",\"deadline_ms\":" + format_double(req.deadline_ms);
  }
  l += "}";
  return l;
}

/// The "cached" flag is the one legitimately interleaving-dependent byte
/// span of a response line; both sides of the replay comparison are run
/// through this before comparing.
std::string normalize_cached(std::string line) {
  const auto pos = line.find("\"cached\":true");
  if (pos != std::string::npos) line.replace(pos, 13, "\"cached\":false");
  return line;
}

/// The typed class of a failed response line (for failures_by_code);
/// kDomainError for anything unparseable.
sre::ErrorCode line_error_code(const std::string& line) {
  const auto parsed = sre::obs::minijson::parse(line);
  if (parsed.ok && parsed.value.is_object()) {
    if (const auto* err = parsed.value.find("error");
        err != nullptr && err->is_object()) {
      if (const auto* code = err->find("code");
          code != nullptr && code->is_string()) {
        for (std::size_t i = 0; i < sre::kErrorCodeCount; ++i) {
          const auto c = static_cast<sre::ErrorCode>(i);
          if (code->string == sre::error_code_name(c)) return c;
        }
      }
    }
  }
  return sre::ErrorCode::kDomainError;
}

/// Summed srv::Client counters across every client the run created.
struct ClientAggregate {
  std::mutex m;
  sre::srv::ClientCounters total{};

  void add(const sre::srv::ClientCounters& c) {
    std::lock_guard<std::mutex> lock(m);
    total.calls += c.calls;
    total.responses_ok += c.responses_ok;
    total.wire_errors += c.wire_errors;
    total.transport_errors += c.transport_errors;
    total.retries += c.retries;
    total.reconnects += c.reconnects;
    total.hints_honored += c.hints_honored;
    total.breaker_opens += c.breaker_opens;
    total.breaker_fast_fails += c.breaker_fast_fails;
    total.replayed += c.replayed;
  }
};

int run_sockets(const Options& opt,
                const std::vector<sre::srv::PlanRequest>& population) {
  using sre::obs::format_double;

  // One spec drives both sides of the chaos drill: the in-process loop
  // wraps every accepted fd, and each client wraps its own dials with a
  // stream block far above the server's connection ids.
  const sre::sim::NetFaultSpec net_spec = sre::sim::NetFaultSpec::from_env();
  const bool chaos = net_spec.enabled();
  sre::srv::ChaosSocket::reset_totals();

  ClientAggregate client_totals;
  // Fault-stream blocks per client: each dial consumes one stream, so a
  // block leaves room for any realistic reconnect count. Block 0 warmup,
  // 1 baseline, 2 control (chaos-free), 3+c for c10k connection c.
  constexpr std::uint64_t kStreamBlock = 1ull << 16;
  const auto client_config = [&](std::uint64_t block,
                                 bool with_chaos) {
    sre::srv::ClientConfig cfg;
    cfg.host = "127.0.0.1";
    cfg.retry.max_attempts = opt.retries;
    cfg.retry.base_seconds = opt.backoff_ms / 1e3;
    cfg.retry.cap_seconds = opt.backoff_cap_ms / 1e3;
    cfg.retry.seed = sre::sim::substream_seed(opt.seed, 0x636c69656e74ull);
    cfg.request_deadline_s = opt.budget_ms / 1e3;
    cfg.breaker_threshold = opt.breaker;
    if (with_chaos) cfg.net_faults = net_spec;
    cfg.fault_stream =
        sre::sim::NetFaultPlan::kClientStreamBase + block * kStreamBlock;
    return cfg;
  };

  // The in-process server (unless --connect aims us at an external one).
  // The EventLoop runs on its own thread; this thread and the connection
  // threads below are pure socket clients.
  std::unique_ptr<sre::srv::PlannerService> service;
  std::unique_ptr<sre::srv::EventLoop> loop;
  std::thread loop_thread;
  unsigned short port = 0;
  // The access log to join after the run: the in-process loop's own sink,
  // or (--connect) the external server's log named by --wide-log.
  std::string access_log_path;
  if (opt.connect_port >= 0) {
    port = static_cast<unsigned short>(opt.connect_port);
    access_log_path = opt.wide_log;
  } else {
    access_log_path =
        opt.access_log.empty() ? opt.out + ".access.jsonl" : opt.access_log;
    (void)std::remove(access_log_path.c_str());
    service = std::make_unique<sre::srv::PlannerService>(opt.service);
    sre::srv::EventLoopConfig loop_cfg;
    loop_cfg.access_log = access_log_path;
    loop_cfg.net_faults = net_spec;
    try {
      loop = std::make_unique<sre::srv::EventLoop>(*service, loop_cfg);
    } catch (const std::exception& e) {
      std::cerr << "sre_loadgen: " << e.what() << "\n";
      return 2;
    }
    port = loop->port();
    loop_thread = std::thread([&loop] { loop->run(); });
  }

  // Pre-serialized wire lines: request i's *query* bytes are identical in
  // the blocking and c10k phases, so the two phases serve the same stream.
  // Ids differ — the baseline uses "b-<i>" so the c10k phase's bare
  // numeric ids are unique join keys into the wide-event access log.
  std::vector<std::string> wire(opt.requests);
  for (std::size_t i = 0; i < opt.requests; ++i) {
    sre::srv::PlanRequest req =
        population[pick_index(opt, i, population.size())];
    req.id = std::to_string(i);
    wire[i] = wire_line(req);
  }
  std::vector<std::string> baseline_wire(opt.baseline);
  for (std::size_t i = 0; i < opt.baseline; ++i) {
    sre::srv::PlanRequest req =
        population[pick_index(opt, i, population.size())];
    req.id = "b-" + std::to_string(i);
    baseline_wire[i] = wire_line(req);
  }

  // "transport_failed" now means an *unexplained* failure: srv::Client
  // exhausted its reconnect/retry budget, or (chaos off) any transport
  // hiccup at all. Injected faults the client rode through do not set it
  // — that recovery is exactly what a chaos run asserts.
  std::atomic<bool> transport_failed{false};
  const auto fail = [&](const char* what) {
    if (!transport_failed.exchange(true)) {
      std::cerr << "sre_loadgen: transport failure during " << what << "\n";
    }
  };

  // Phase 0 — warmup: one strict round trip per distinct query, so both
  // measured phases compare warm-cache serving (front-end cost, not
  // solver cost).
  {
    sre::srv::ClientConfig cfg = client_config(0, chaos);
    cfg.port = port;
    sre::srv::Client warm_client(cfg);
    bool warmed_any = false;
    for (std::size_t k = 0; k < population.size(); ++k) {
      sre::srv::PlanRequest req = population[k];
      req.id = "warm-" + std::to_string(k);
      const auto r = warm_client.call(wire_line(req));
      if (r.ok) warmed_any = true;
      if (!r.ok && !chaos) {
        fail("warmup");
        break;
      }
    }
    if (!warmed_any) fail("warmup");
    client_totals.add(warm_client.counters());
  }

  // Phase 1 — blocking baseline: one connection, strict round trips. This
  // is exactly the serving discipline of the old blocking front end (one
  // request in flight, full write-solve-read turnaround each).
  LatencyRecorder baseline_lat(sre::obs::duration_bounds_seconds());
  double baseline_wall = 0.0;
  if (!transport_failed.load()) {
    sre::srv::ClientConfig cfg = client_config(1, chaos);
    cfg.port = port;
    sre::srv::Client base_client(cfg);
    const auto t_start = Clock::now();
    for (std::size_t i = 0; i < opt.baseline; ++i) {
      const auto t0 = Clock::now();
      const auto r = base_client.call(baseline_wire[i]);
      if (!r.ok && !r.line.empty() && chaos) {
        // Typed wire rejection under chaos: counted, not fatal.
      } else if (!r.ok) {
        fail("baseline");
        break;
      }
      baseline_lat.observe(
          std::chrono::duration<double>(Clock::now() - t0).count());
    }
    baseline_wall =
        std::chrono::duration<double>(Clock::now() - t_start).count();
    client_totals.add(base_client.counters());
  }

  // Phase 2 — c10k: N concurrent connections, request i on connection
  // i mod N, up to `window` requests pipelined per connection via
  // srv::Client's post/recv mode. Responses arrive in request order per
  // connection (the event loop's ordered slots plus the client's
  // replay-in-order reconnect), so the front of the in-flight queue
  // always matches the next response line.
  const std::size_t conns = opt.connections;
  std::vector<LatencyRecorder> conn_lat(
      conns, LatencyRecorder(sre::obs::duration_bounds_seconds()));
  std::vector<std::string> responses(opt.requests);
  std::vector<char> resp_ok(opt.requests, 0);
  // Per-request client-side latency (request i belongs to exactly one
  // connection thread, so plain doubles are race-free): the client half of
  // the server-vs-client skew join against the access log.
  std::vector<double> lat_seconds(opt.requests, -1.0);
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> error_count{0};
  std::array<std::atomic<std::uint64_t>, sre::kErrorCodeCount>
      failures_by_code{};

  auto run_conn = [&](std::size_t c) {
    sre::srv::ClientConfig cfg = client_config(3 + c, chaos);
    cfg.port = port;
    sre::srv::Client client(cfg);
    std::deque<std::pair<std::size_t, Clock::time_point>> inflight;
    std::size_t send_pos = c;
    std::size_t received = 0;
    std::size_t assigned = 0;
    for (std::size_t i = c; i < opt.requests; i += conns) ++assigned;
    std::string line;
    while (received < assigned && !transport_failed.load()) {
      while (inflight.size() < opt.window && send_pos < opt.requests) {
        // A false return queues the request anyway; recv_line's
        // reconnect-and-replay resends the owed tail in order.
        (void)client.post(wire[send_pos]);
        inflight.emplace_back(send_pos, Clock::now());
        send_pos += conns;
      }
      if (inflight.empty()) break;
      if (!client.recv_line(line)) {
        fail("c10k recv");
        break;
      }
      const auto [idx, t0] = inflight.front();
      inflight.pop_front();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      conn_lat[c].observe(seconds);
      lat_seconds[idx] = seconds;
      if (line.find("\"ok\":true") != std::string::npos) {
        ok_count.fetch_add(1, std::memory_order_relaxed);
        resp_ok[idx] = 1;
      } else {
        error_count.fetch_add(1, std::memory_order_relaxed);
        failures_by_code[static_cast<std::size_t>(line_error_code(line))]
            .fetch_add(1, std::memory_order_relaxed);
      }
      responses[idx] = normalize_cached(line);
      ++received;
    }
    client_totals.add(client.counters());
  };

  double c10k_wall = 0.0;
  if (!transport_failed.load()) {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    const auto t_start = Clock::now();
    for (std::size_t c = 0; c < conns; ++c) threads.emplace_back(run_conn, c);
    for (auto& t : threads) t.join();
    c10k_wall = std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  // Server stats and the {"stats":true} introspection verb, then shutdown
  // (in-process mode only; an external server is left running for its own
  // lifecycle test). The control client dials chaos-free on its own side
  // — the control plane is not the experiment — but the server may still
  // inject on its half, so under chaos a lost control exchange is
  // tolerated (request_stop() guarantees the drain regardless).
  std::string stats_line = "{}";
  bool server_stats_ok = false;
  const auto check_server_stats = [&](const std::string& resp) {
    const auto parsed = sre::obs::minijson::parse(resp);
    if (!parsed.ok) return false;
    const auto* ok = parsed.value.find("ok");
    return ok != nullptr && ok->kind == sre::obs::minijson::Value::Kind::kBool &&
           ok->boolean && parsed.value.find("loop") != nullptr &&
           parsed.value.find("service") != nullptr;
  };
  {
    sre::srv::ClientConfig cfg = client_config(2, false);
    cfg.port = port;
    sre::srv::Client control(cfg);
    // The control verbs ride the pipelined path: {"cmd":"stats"} answers
    // with the raw service-stats object (no ok-envelope), which call()'s
    // wire judgment would misread as a protocol error.
    std::string resp;
    (void)control.post("{\"cmd\":\"stats\"}");
    if (control.recv_line(resp)) {
      stats_line = resp;
    } else if (!chaos) {
      fail("stats");
    }
    (void)control.post("{\"stats\":true}");
    if (control.recv_line(resp)) server_stats_ok = check_server_stats(resp);
    if (opt.connect_port < 0) {
      (void)control.post("{\"cmd\":\"shutdown\"}");
      if (!control.recv_line(resp) && !chaos) fail("shutdown");
      if (loop) loop->request_stop();
      if (loop_thread.joinable()) loop_thread.join();
    }
    client_totals.add(control.counters());
  }

  // Phase 3 — byte-identity replay: the same stream through a fresh
  // service with the same config, no sockets. Every *survivor* (a c10k
  // request that got an ok response, possibly through reconnects and
  // replays) must match what InProcessClient + format_response produce —
  // chaos may fail a request, but it must never corrupt one. In a clean
  // run every request is a survivor, so compared == requests.
  std::uint64_t survivors = 0;
  for (std::size_t i = 0; i < opt.requests; ++i) {
    if (resp_ok[i] != 0) ++survivors;
  }
  std::uint64_t compared = 0;
  std::uint64_t mismatches = 0;
  if (opt.connect_port < 0 && !transport_failed.load()) {
    sre::srv::PlannerService replay_service(opt.service);
    sre::srv::InProcessClient replay(replay_service);
    for (std::size_t i = 0; i < opt.requests; ++i) {
      if (resp_ok[i] == 0) continue;
      sre::srv::PlanRequest req =
          population[pick_index(opt, i, population.size())];
      req.id = std::to_string(i);
      const auto resp = replay.call(req);
      const std::string expected =
          normalize_cached(sre::srv::format_response(req.id, resp));
      ++compared;
      if (expected != responses[i]) {
        if (++mismatches <= 3) {
          std::cerr << "sre_loadgen: byte mismatch at request " << i
                    << "\n  served:   " << responses[i]
                    << "\n  expected: " << expected << "\n";
        }
      }
    }
  }
  const bool byte_identical =
      opt.connect_port < 0 && !transport_failed.load() && mismatches == 0;
  const bool survivors_identical =
      byte_identical && compared == survivors;

  LatencyRecorder c10k_lat(sre::obs::duration_bounds_seconds());
  for (const auto& r : conn_lat) c10k_lat.merge(r);

  const double baseline_rps =
      baseline_wall > 0.0
          ? static_cast<double>(opt.baseline) / baseline_wall
          : 0.0;
  const double c10k_rps =
      c10k_wall > 0.0 ? static_cast<double>(opt.requests) / c10k_wall : 0.0;
  const double speedup = baseline_rps > 0.0 ? c10k_rps / baseline_rps : 0.0;

  sre::srv::EventLoopCounters conn_counters{};
  sre::srv::ServiceCounters service_counters{};
  sre::srv::PlanCache::Counters cache_counters{};
  if (loop) {
    conn_counters = loop->counters();
    // Destroying the loop destroys its sink, which drains the queue and
    // closes the file — only then is the access log complete on disk.
    loop.reset();
  }
  if (service) {
    service_counters = service->counters();
    cache_counters = service->cache_counters();
  }
  const sre::srv::ChaosTotals chaos_totals = sre::srv::ChaosSocket::totals();

  // Join the access log back against the request stream: every c10k id is
  // a bare integer, so event "id" -> total_ns joins on request index. With
  // an external server (--connect + --wide-log) the flusher may still be
  // behind, so retry briefly until the join stops being short.
  bool wide_log_found = false;
  std::uint64_t wide_events = 0;
  std::uint64_t wide_matched = 0;
  double max_skew_seconds = 0.0;
  if (!access_log_path.empty()) {
    const int max_tries = opt.connect_port >= 0 ? 50 : 1;
    for (int attempt = 0; attempt < max_tries; ++attempt) {
      if (attempt > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      std::ifstream log(access_log_path);
      if (!log) continue;
      wide_log_found = true;
      std::unordered_map<std::string, double> total_ns_by_id;
      std::string line;
      std::uint64_t events = 0;
      while (std::getline(log, line)) {
        if (line.empty()) continue;
        const auto parsed = sre::obs::minijson::parse(line);
        if (!parsed.ok) continue;
        ++events;
        const auto* id = parsed.value.find("id");
        const auto* total = parsed.value.find("total_ns");
        if (id != nullptr && id->is_string() && total != nullptr &&
            total->is_number()) {
          total_ns_by_id[id->string] = total->number;
        }
      }
      wide_events = events;
      wide_matched = 0;
      max_skew_seconds = 0.0;
      for (std::size_t i = 0; i < opt.requests; ++i) {
        const auto it = total_ns_by_id.find(std::to_string(i));
        if (it == total_ns_by_id.end()) continue;
        ++wide_matched;
        if (lat_seconds[i] >= 0.0) {
          // The server's total is framed-to-flushed; the client's spans
          // send-to-receive. Server <= client always; the gap is transport
          // plus loop scheduling, the "skew" this reports.
          max_skew_seconds = std::max(
              max_skew_seconds,
              std::fabs(lat_seconds[i] - it->second * 1e-9));
        }
      }
      if (wide_matched >= opt.requests) break;
    }
  }

  std::string json = "{\n";
  json += "  \"config\": {\"requests\": " + std::to_string(opt.requests);
  json += ", \"connections\": " + std::to_string(conns);
  json += ", \"window\": " + std::to_string(opt.window);
  json += ", \"baseline_requests\": " + std::to_string(opt.baseline);
  json += ", \"seed\": " + std::to_string(opt.seed);
  json += ", \"population\": " + std::to_string(population.size());
  json += ", \"solver\": \"" + opt.solver + "\"";
  json += ", \"n\": " + std::to_string(opt.n);
  json += ", \"workers\": " + std::to_string(opt.service.workers);
  json += ", \"queue\": " + std::to_string(opt.service.queue_capacity);
  json += ", \"retries\": " + std::to_string(opt.retries);
  json += ", \"cache_enabled\": ";
  json += opt.service.cache_enabled ? "true" : "false";
  json += ", \"chaos_enabled\": ";
  json += chaos ? "true" : "false";
  json += ", \"external_server\": ";
  json += opt.connect_port >= 0 ? "true" : "false";
  json += "},\n";
  json += "  \"ok_responses\": " + std::to_string(ok_count.load());
  json += ",\n  \"error_responses\": " + std::to_string(error_count.load());
  json += ",\n  \"transport_failed\": ";
  json += transport_failed.load() ? "true" : "false";
  json += ",\n  \"failures_by_code\": {";
  {
    bool first = true;
    for (std::size_t i = 0; i < sre::kErrorCodeCount; ++i) {
      const std::uint64_t v =
          failures_by_code[i].load(std::memory_order_relaxed);
      if (v == 0) continue;
      if (!first) json += ", ";
      first = false;
      json += "\"";
      json += std::string(sre::error_code_name(static_cast<sre::ErrorCode>(i)));
      json += "\": " + std::to_string(v);
    }
  }
  json += "},\n";
  json += "  \"blocking\": {\"requests\": " + std::to_string(opt.baseline);
  json += ", \"wall_seconds\": " + format_double(baseline_wall);
  json += ", \"throughput_rps\": " + format_double(baseline_rps);
  json += ", \"latency_seconds\": " + latency_json(baseline_lat.snapshot_);
  json += "},\n";
  json += "  \"c10k\": {\"requests\": " + std::to_string(opt.requests);
  json += ", \"wall_seconds\": " + format_double(c10k_wall);
  json += ", \"throughput_rps\": " + format_double(c10k_rps);
  json += ", \"latency_seconds\": " + latency_json(c10k_lat.snapshot_);
  json += ",\n    \"per_connection\": [";
  for (std::size_t c = 0; c < conns; ++c) {
    if (c > 0) json += ", ";
    json += "{\"conn\": " + std::to_string(c);
    json += ", \"requests\": " +
            std::to_string(conn_lat[c].snapshot_.count);
    json += ", \"latency_seconds\": " + latency_json(conn_lat[c].snapshot_);
    json += "}";
  }
  json += "]},\n";
  json += "  \"speedup_vs_blocking\": " + format_double(speedup);
  json += ",\n  \"meets_4x_target\": ";
  json += speedup >= 4.0 ? "true" : "false";
  json += ",\n  \"replay\": {\"compared\": " + std::to_string(compared);
  json += ", \"survivors\": " + std::to_string(survivors);
  json += ", \"mismatches\": " + std::to_string(mismatches);
  json += ", \"byte_identical\": ";
  json += byte_identical ? "true" : "false";
  json += "},\n";
  json += "  \"chaos_survivors_byte_identical\": ";
  json += survivors_identical ? "true" : "false";
  json += ",\n";
  json += "  \"chaos\": {\"enabled\": ";
  json += chaos ? "true" : "false";
  json += ", \"read_resets\": " + std::to_string(chaos_totals.read_resets);
  json += ", \"write_resets\": " + std::to_string(chaos_totals.write_resets);
  json += ", \"short_reads\": " + std::to_string(chaos_totals.short_reads);
  json += ", \"short_writes\": " + std::to_string(chaos_totals.short_writes);
  json += ", \"delays\": " + std::to_string(chaos_totals.delays);
  json += ", \"accept_drops\": " + std::to_string(chaos_totals.accept_drops);
  json += ", \"connect_refusals\": " +
          std::to_string(chaos_totals.connect_refusals);
  json += ", \"injected\": " + std::to_string(chaos_totals.injected());
  json += "},\n";
  {
    std::lock_guard<std::mutex> lock(client_totals.m);
    const auto& ct = client_totals.total;
    json += "  \"client\": {\"calls\": " + std::to_string(ct.calls);
    json += ", \"responses_ok\": " + std::to_string(ct.responses_ok);
    json += ", \"wire_errors\": " + std::to_string(ct.wire_errors);
    json += ", \"transport_errors\": " + std::to_string(ct.transport_errors);
    json += ", \"retries\": " + std::to_string(ct.retries);
    json += ", \"reconnects\": " + std::to_string(ct.reconnects);
    json += ", \"hints_honored\": " + std::to_string(ct.hints_honored);
    json += ", \"breaker_opens\": " + std::to_string(ct.breaker_opens);
    json += ", \"breaker_fast_fails\": " +
            std::to_string(ct.breaker_fast_fails);
    json += ", \"replayed\": " + std::to_string(ct.replayed);
    json += "},\n";
  }
  json += "  \"conn\": {\"open\": " + std::to_string(conn_counters.open);
  json += ", \"accepted\": " + std::to_string(conn_counters.accepted);
  json += ", \"closed\": " + std::to_string(conn_counters.closed);
  json += ", \"overload_rejects\": " +
          std::to_string(conn_counters.overload_rejects);
  json += ", \"framing_errors\": " +
          std::to_string(conn_counters.framing_errors);
  json += ", \"backpressure_pauses\": " +
          std::to_string(conn_counters.backpressure_pauses);
  json += ", \"requests\": " + std::to_string(conn_counters.requests);
  json += ", \"responses\": " + std::to_string(conn_counters.responses);
  json += ", \"bytes_in\": " + std::to_string(conn_counters.bytes_in);
  json += ", \"bytes_out\": " + std::to_string(conn_counters.bytes_out);
  json += "},\n";
  json += "  \"wide\": {\"log_found\": ";
  json += wide_log_found ? "true" : "false";
  json += ", \"events\": " + std::to_string(wide_events);
  json += ", \"matched\": " + std::to_string(wide_matched);
  json += ", \"dropped\": " + std::to_string(conn_counters.wide_dropped);
  json += ", \"max_skew_seconds\": " + format_double(max_skew_seconds);
  json += "},\n";
  json += "  \"server_stats_ok\": ";
  json += server_stats_ok ? "true" : "false";
  json += ",\n";
  json += "  \"requests\": " + std::to_string(service_counters.requests);
  json += ",\n  \"completed\": " + std::to_string(service_counters.completed);
  json += ",\n  \"rejected\": " + std::to_string(service_counters.rejected);
  json += ",\n  \"cache\": {\"hits\": " + std::to_string(cache_counters.hits);
  json += ", \"misses\": " + std::to_string(cache_counters.misses);
  json += ", \"inserts\": " + std::to_string(cache_counters.inserts);
  json += ", \"evictions\": " + std::to_string(cache_counters.evictions);
  json += "},\n";
  json += "  \"batch\": {\"solves\": " +
          std::to_string(service_counters.solves);
  json += ", \"coalesced\": " + std::to_string(service_counters.coalesced);
  json += "},\n";
  json += "  \"stats\": " + stats_line;
  json += "\n}\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "sre_loadgen: cannot write " << opt.out << "\n";
    return 2;
  }
  out << json;
  out.close();

  if (sre::obs::recorder::armed() &&
      !sre::obs::recorder::stop_and_write()) {
    std::cerr << "sre_loadgen: cannot write trace (is SRE_TRACE set?)\n";
    return 2;
  }

  std::cout << "sre_loadgen: c10k " << conns << " conns, "
            << ok_count.load() << "/" << opt.requests << " ok, blocking "
            << format_double(baseline_rps) << " req/s vs c10k "
            << format_double(c10k_rps) << " req/s (speedup "
            << format_double(speedup) << "), replay "
            << (compared == 0 ? "skipped"
                              : (byte_identical ? "byte-identical"
                                                : "MISMATCH"))
            << (chaos ? (", chaos injected " +
                         std::to_string(chaos_totals.injected()))
                      : "")
            << " -> " << opt.out << "\n";
  return transport_failed.load() ? 1 : 0;
}

#endif  // __linux__

}  // namespace
