// sre_serve — the planner service as a process.
//
//   sre_serve [options]             NDJSON over stdin/stdout (default)
//   sre_serve --tcp PORT [options]  same protocol over a TCP socket
//
// One JSON request per line, one response line per request, in order (see
// src/srv/protocol.hpp for the schema). {"cmd":"stats"} reports the
// service's byte-stable counters; {"cmd":"shutdown"} exits cleanly.
//
// Options (defaults come from ServiceConfig::from_env, so the SRE_SRV_*
// and SRE_FAULT_* environment knobs apply; flags win over environment):
//   --threads N         solver worker threads
//   --queue N           admission limit (max in-flight requests)
//   --batch N           max requests coalesced into one solve
//   --cache-capacity N  plan-cache entries (0 disables the cache)
//   --shards N          plan-cache shards (rounded up to a power of two)
//   --deadline-ms F     default per-request deadline (0 = none)
//   --no-cache          disable the plan cache entirely
//   --tcp PORT          listen on 127.0.0.1:PORT instead of stdin/stdout

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "srv/protocol.hpp"
#include "srv/service.hpp"

namespace {

constexpr const char* kUsage =
    "usage: sre_serve [--threads N] [--queue N] [--batch N]\n"
    "                 [--cache-capacity N] [--shards N] [--deadline-ms F]\n"
    "                 [--no-cache] [--tcp PORT]\n";

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

int run_stdio(sre::srv::PlannerService& service) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const auto outcome = sre::srv::handle_line(service, line);
    std::cout << outcome.line << "\n" << std::flush;
    if (outcome.shutdown) break;
  }
  return 0;
}

#ifndef _WIN32

/// One connection: buffered line reads, one response line per request.
/// Returns true when the client asked the whole server to shut down.
bool serve_connection(sre::srv::PlannerService& service, int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown = false;
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const auto outcome = sre::srv::handle_line(service, line);
      const std::string reply = outcome.line + "\n";
      std::size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w = ::write(fd, reply.data() + sent,
                                  reply.size() - sent);
        if (w <= 0) { shutdown = outcome.shutdown; ::close(fd); return shutdown; }
        sent += static_cast<std::size_t>(w);
      }
      if (outcome.shutdown) {
        ::close(fd);
        return true;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  return shutdown;
}

int run_tcp(sre::srv::PlannerService& service, unsigned short port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "sre_serve: socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    std::cerr << "sre_serve: bind/listen on port " << port << ": "
              << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 2;
  }
  std::cerr << "sre_serve: listening on 127.0.0.1:" << port << "\n";
  // Connections are served sequentially: the service itself is the
  // concurrent part (worker pool + admission), and one in-order protocol
  // stream per client keeps responses matched to requests.
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (serve_connection(service, fd)) break;
  }
  ::close(listen_fd);
  return 0;
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
  sre::srv::ServiceConfig cfg = sre::srv::ServiceConfig::from_env();
  long tcp_port = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sre_serve: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    double f = 0.0;
    if (arg == "--threads" && parse_size(need_value("--threads"), n)) {
      cfg.workers = static_cast<unsigned>(n);
    } else if (arg == "--queue" && parse_size(need_value("--queue"), n)) {
      cfg.queue_capacity = n;
    } else if (arg == "--batch" && parse_size(need_value("--batch"), n)) {
      cfg.max_batch = n;
    } else if (arg == "--cache-capacity" &&
               parse_size(need_value("--cache-capacity"), n)) {
      cfg.cache.capacity = n;
      cfg.cache_enabled = n > 0;
    } else if (arg == "--shards" && parse_size(need_value("--shards"), n)) {
      cfg.cache.shards = n;
    } else if (arg == "--deadline-ms" &&
               parse_double(need_value("--deadline-ms"), f)) {
      cfg.default_deadline_s = f / 1e3;
    } else if (arg == "--no-cache") {
      cfg.cache_enabled = false;
    } else if (arg == "--tcp") {
      const char* v = need_value("--tcp");
      char* end = nullptr;
      tcp_port = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || tcp_port < 1 || tcp_port > 65535) {
        std::cerr << "sre_serve: bad port '" << v << "'\n" << kUsage;
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sre_serve: unknown or malformed option '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  sre::srv::PlannerService service(cfg);
  if (tcp_port > 0) {
#ifndef _WIN32
    return run_tcp(service, static_cast<unsigned short>(tcp_port));
#else
    std::cerr << "sre_serve: --tcp is not supported on this platform\n";
    return 2;
#endif
  }
  return run_stdio(service);
}
