// sre_serve — the planner service as a process.
//
//   sre_serve [options]             NDJSON over stdin/stdout (default)
//   sre_serve --tcp PORT [options]  same protocol over a TCP socket
//
// One JSON request per line, one response line per request, in order (see
// src/srv/protocol.hpp for the schema). {"cmd":"stats"} reports the
// service's byte-stable counters; {"cmd":"shutdown"} drains and exits
// cleanly, as does SIGTERM/SIGINT in TCP mode.
//
// TCP mode is the srv::EventLoop C10K front end: one epoll thread accepts
// (EINTR-retried, EMFILE-shed with a retryable overload line, configurable
// backlog) and multiplexes every connection through non-blocking bounded
// NDJSON framing, while solver work runs on the service's worker pool.
// Responses per connection stay in request order and match
// srv::InProcessClient byte for byte. Port 0 binds an ephemeral port and
// prints the kernel's choice: a machine-readable "PORT <n>" line on stdout
// plus the human "listening on" line on stderr.
//
// Options (defaults come from ServiceConfig::from_env, so the SRE_SRV_*
// and SRE_FAULT_* environment knobs apply; flags win over environment):
//   --threads N         solver worker threads
//   --queue N           admission limit (max in-flight requests)
//   --batch N           max requests coalesced into one solve
//   --cache-capacity N  plan-cache entries (0 disables the cache)
//   --shards N          plan-cache shards (rounded up to a power of two)
//   --deadline-ms F     default per-request deadline (0 = none)
//   --no-cache          disable the plan cache entirely
//   --tcp PORT          listen on 127.0.0.1:PORT (0 = ephemeral)
//   --backlog N         listen(2) backlog                  [1024]
//   --max-line BYTES    per-connection NDJSON line cap     [1 MiB]
//   --max-conns N       concurrent connection cap          [10000]
//   --drain-ms F        shutdown drain budget              [5000]
//   --access-log FILE   wide-event NDJSON access log (one line per request;
//                       off by default, compiled out under obs-off builds)
//   --prom FILE         periodic Prometheus text-exposition dump of the
//                       metrics registry (rewritten every stats tick)
//
// TCP mode also answers the {"stats":true} introspection verb inline with
// loop counters, per-connection state, and rate-over-window figures; see
// docs/COOKBOOK.md recipe 21.
//
// Network chaos: the SRE_FAULT_NET_* knobs (sim::NetFaultSpec::from_env)
// arm srv::ChaosSocket over every accepted connection — seeded injected
// resets, short reads/writes, delays, and accept-time drops for fault
// drills (docs/COOKBOOK.md recipe 22). Off unless SRE_FAULT_NET_SEED (or a
// probability knob) is set.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/netfault.hpp"
#include "srv/eventloop.hpp"
#include "srv/protocol.hpp"
#include "srv/service.hpp"

namespace {

constexpr const char* kUsage =
    "usage: sre_serve [--threads N] [--queue N] [--batch N]\n"
    "                 [--cache-capacity N] [--shards N] [--deadline-ms F]\n"
    "                 [--no-cache] [--tcp PORT] [--backlog N]\n"
    "                 [--max-line BYTES] [--max-conns N] [--drain-ms F]\n"
    "                 [--access-log FILE] [--prom FILE]\n";

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

int run_stdio(sre::srv::PlannerService& service) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const auto outcome = sre::srv::handle_line(service, line);
    std::cout << outcome.line << "\n" << std::flush;
    if (outcome.shutdown) break;
  }
  return 0;
}

sre::srv::EventLoop* g_loop = nullptr;

void on_signal(int) {
  // request_stop() is an atomic store plus one write(2): signal-safe.
  if (g_loop != nullptr) g_loop->request_stop();
}

int run_tcp(sre::srv::PlannerService& service,
            sre::srv::EventLoopConfig cfg) {
  try {
    sre::srv::EventLoop loop(service, cfg);
    std::cerr << "sre_serve: listening on 127.0.0.1:" << loop.port() << "\n";
    // Machine-readable bound-port line (resolves --tcp 0's ephemeral pick):
    // cluster scripts and CI read stdout instead of racing on fixed ports.
    std::cout << "PORT " << loop.port() << "\n" << std::flush;
    g_loop = &loop;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);  // writes to dead clients report EPIPE
    loop.run();  // returns after {"cmd":"shutdown"} or SIGTERM drain
    g_loop = nullptr;
    const auto c = loop.counters();
    std::cerr << "sre_serve: drained (" << c.accepted << " connections, "
              << c.requests << " requests, " << c.overload_rejects
              << " shed)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sre_serve: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
#ifdef SIGPIPE
  // Stdio mode writes to a pipe that may close first; TCP mode re-asserts
  // this in run_tcp. Either way a dead peer is an error code, not a death.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  sre::srv::ServiceConfig cfg = sre::srv::ServiceConfig::from_env();
  sre::srv::EventLoopConfig loop_cfg;
  loop_cfg.net_faults = sre::sim::NetFaultSpec::from_env();
  long tcp_port = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sre_serve: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    double f = 0.0;
    if (arg == "--threads" && parse_size(need_value("--threads"), n)) {
      cfg.workers = static_cast<unsigned>(n);
    } else if (arg == "--queue" && parse_size(need_value("--queue"), n)) {
      cfg.queue_capacity = n;
    } else if (arg == "--batch" && parse_size(need_value("--batch"), n)) {
      cfg.max_batch = n;
    } else if (arg == "--cache-capacity" &&
               parse_size(need_value("--cache-capacity"), n)) {
      cfg.cache.capacity = n;
      cfg.cache_enabled = n > 0;
    } else if (arg == "--shards" && parse_size(need_value("--shards"), n)) {
      cfg.cache.shards = n;
    } else if (arg == "--deadline-ms" &&
               parse_double(need_value("--deadline-ms"), f)) {
      cfg.default_deadline_s = f / 1e3;
    } else if (arg == "--no-cache") {
      cfg.cache_enabled = false;
    } else if (arg == "--backlog" && parse_size(need_value("--backlog"), n)) {
      loop_cfg.backlog = static_cast<int>(n);
    } else if (arg == "--max-line" &&
               parse_size(need_value("--max-line"), n)) {
      loop_cfg.max_line_bytes = n;
    } else if (arg == "--max-conns" &&
               parse_size(need_value("--max-conns"), n)) {
      loop_cfg.max_connections = n;
    } else if (arg == "--drain-ms" &&
               parse_double(need_value("--drain-ms"), f)) {
      loop_cfg.drain_timeout_s = f / 1e3;
    } else if (arg == "--access-log") {
      loop_cfg.access_log = need_value("--access-log");
    } else if (arg == "--prom") {
      loop_cfg.prom_path = need_value("--prom");
    } else if (arg == "--tcp") {
      const char* v = need_value("--tcp");
      char* end = nullptr;
      tcp_port = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || tcp_port < 0 || tcp_port > 65535) {
        std::cerr << "sre_serve: bad port '" << v << "'\n" << kUsage;
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sre_serve: unknown or malformed option '" << arg << "'\n"
                << kUsage;
      return 2;
    }
  }

  sre::srv::PlannerService service(cfg);
  if (tcp_port >= 0) {
    loop_cfg.port = static_cast<unsigned short>(tcp_port);
    return run_tcp(service, loop_cfg);
  }
  return run_stdio(service);
}
