#!/usr/bin/env python3
"""Plot adaptive-scheduling learning curves from bench/ext_adaptive output.

Usage:
    build/bench/ext_adaptive > adaptive.txt
    tools/plot_learning_curve.py adaptive.txt adaptive.png
"""

import sys


def parse(path):
    rows = []
    header = None
    with open(path) as fh:
        for line in fh:
            cells = [c for c in line.rstrip("\n").split("  ") if c.strip()]
            if not cells:
                continue
            if cells[0].strip() == "Distribution":
                header = [c.strip() for c in cells]
            elif header and len(cells) >= len(header) - 1 and not set(
                    line.strip()) <= {"-"}:
                rows.append([c.strip() for c in cells])
    if header is None:
        raise SystemExit("no table found in input")
    windows = [h for h in header if h.startswith("w")]
    series = {}
    for row in rows:
        name = row[0]
        values = row[3:3 + len(windows)]
        try:
            series[name] = [float(v) for v in values]
        except ValueError:
            continue
    return series


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    series = parse(sys.argv[1])
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, values in series.items():
        ax.plot(range(1, len(values) + 1), values, marker="o", label=name)
    ax.axhline(1.0, color="k", linestyle="--", linewidth=1,
               label="clairvoyant")
    ax.set_xlabel("learning window (100 jobs each)")
    ax.set_ylabel("window cost / clairvoyant cost")
    ax.legend()
    fig.tight_layout()
    fig.savefig(sys.argv[2], dpi=150)
    print(f"wrote {sys.argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
