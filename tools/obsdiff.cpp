// obsdiff — gate perf/metrics regressions against a committed baseline.
//
//   obsdiff [options] baseline.json current.json
//
// Compares two metrics documents (BENCH_*_metrics.json sidecars or
// BENCH_sweep.json) flattened to dotted numeric keys. Count-like keys must
// match exactly, time-like keys may grow by at most the --time-tol band;
// see src/obs/diff.hpp for the classification. Exit codes: 0 within
// tolerance, 1 regression(s), 2 usage / I/O / parse error.
//
// Options:
//   --time-tol F      relative band for time-like keys (default 0.5 = +50%)
//   --counter-tol F   relative band for count-like keys (default 0 = exact)
//   --tol GLOB=F      per-key override, first match wins ('*' wildcard)
//   --ignore GLOB     drop matching keys from the comparison
//   --strict-drops    gate drop counters (*.dropped, *_drops, ...) too;
//                     by default they are auto-ignored as load-dependent
//   --allow-missing   baseline keys absent from current are notes, not errors
//   --quiet           print nothing on success

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/diff.hpp"
#include "obs/minijson.hpp"

namespace {

constexpr const char* kUsage =
    "usage: obsdiff [--time-tol F] [--counter-tol F] [--tol GLOB=F]\n"
    "               [--ignore GLOB] [--strict-drops] [--allow-missing]\n"
    "               [--quiet] baseline.json current.json\n";

bool load_flat(const std::string& path,
               std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "obsdiff: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto parsed = sre::obs::minijson::parse(text.str());
  if (!parsed.ok) {
    std::cerr << "obsdiff: parse error in " << path << " at byte "
              << parsed.offset << ": " << parsed.error << "\n";
    return false;
  }
  out = sre::obs::diff::flatten(parsed.value);
  return true;
}

bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  sre::obs::diff::Options opts;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "obsdiff: " << flag << " needs an argument\n" << kUsage;
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--time-tol") {
      const char* v = next("--time-tol");
      if (v == nullptr || !parse_double(v, opts.time_tol)) return 2;
    } else if (arg == "--counter-tol") {
      const char* v = next("--counter-tol");
      if (v == nullptr || !parse_double(v, opts.counter_tol)) return 2;
    } else if (arg == "--tol") {
      const char* v = next("--tol");
      if (v == nullptr) return 2;
      const std::string spec = v;
      const auto eq = spec.rfind('=');
      double tol = 0.0;
      if (eq == std::string::npos || eq == 0 ||
          !parse_double(spec.substr(eq + 1), tol)) {
        std::cerr << "obsdiff: --tol expects GLOB=FLOAT, got '" << spec
                  << "'\n";
        return 2;
      }
      opts.rules.push_back({spec.substr(0, eq), tol});
    } else if (arg == "--ignore") {
      const char* v = next("--ignore");
      if (v == nullptr) return 2;
      opts.rules.push_back({v, sre::obs::diff::kIgnore});
    } else if (arg == "--strict-drops") {
      opts.ignore_drop_counters = false;
    } else if (arg == "--allow-missing") {
      opts.fail_on_missing = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "obsdiff: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << kUsage;
    return 2;
  }

  std::map<std::string, double> baseline, current;
  if (!load_flat(paths[0], baseline) || !load_flat(paths[1], current)) {
    return 2;
  }

  const auto result = sre::obs::diff::compare(baseline, current, opts);
  if (!result.ok() || !quiet) {
    (result.ok() ? std::cout : std::cerr)
        << sre::obs::diff::describe(result);
  }
  return result.ok() ? 0 : 1;
}
