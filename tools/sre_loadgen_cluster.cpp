// sre_loadgen --cluster — drives a replica fleet and a worker fleet, and
// emits the two cluster baselines:
//
//   BENCH_serve_cluster.json — sharded serving. Phase "single" routes a
//   cache-miss-heavy stream (distinct canonical keys, no_cache:true) at ONE
//   sre_serve replica through cluster::Router; phase "cluster" routes the
//   identical stream across the whole fleet. The replicas run with a small
//   brownout sojourn budget, so the single replica sheds with
//   retry_after_ms hints — every shed costs the driving client a hinted
//   sleep. With two replicas the router converts the shed into an immediate
//   failover to the peer's (shorter) queue instead, which is where the
//   >= 1.5x speedup comes from even on one core: phase "single" pays
//   hint-sleeps while the server idles, phase "cluster" keeps the CPU fed.
//   The report carries per-replica first-choice routing counts (a pure
//   function of the ring — exact-gated in CI), the max/min routing
//   imbalance over >= 64 distinct keys, latency quantiles attributed to
//   each key's owner replica, a {"stats":true} fan-out probe, and the
//   speedup gate.
//
//   BENCH_sweep_cluster.json — distributed sweep. A fixed SweepSpec is
//   sharded through cluster::SweepManager against worker fleets of size
//   {1, N}; each run's merged bytes are compared against
//   cluster::local_sweep_bytes (the single-process sweep at the same
//   seed). byte_identical is the acceptance gate; dispatch/completion
//   counters are exact for a fault-free run.
//
// With no --replica/--worker flags the fleets are in-process (each replica
// an EventLoop + PlannerService on its own thread; each worker the same
// plus a cluster::TaskExecutor). CI's serve-cluster job passes --replica
// and --worker PORTs of externally spawned sre_serve/sre_worker processes
// instead — same driver, real process boundaries.
//
// Nondeterministic pressure readings (failovers taken, hinted sleeps,
// which replica ultimately served) live under "pressure" blocks; CI
// ignores them (obsdiff --ignore 'pressure.*' '*.pressure.*').

#include "sre_loadgen_cluster.hpp"

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#ifdef __linux__

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/router.hpp"
#include "cluster/sweep_manager.hpp"
#include "cluster/task.hpp"
#include "cluster/worker.hpp"
#include "dist/factory.hpp"
#include "obs/minijson.hpp"
#include "obs/report.hpp"
#include "sim/rng.hpp"
#include "srv/eventloop.hpp"
#include "srv/request.hpp"
#include "srv/service.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kUsage =
    "usage: sre_loadgen --cluster [--requests N] [--clients C] [--seed S]\n"
    "                   [--keys K] [--vnodes V] [--solver NAME] [--n N]\n"
    "                   [--brownout-ms F] [--cache-capacity N]\n"
    "                   [--replica PORT]... \n"
    "                   [--worker PORT]... [--sweep-workers N]\n"
    "                   [--out FILE] [--sweep-out FILE]\n";

struct ClusterOptions {
  std::size_t requests = 384;  ///< per measured phase
  std::size_t clients = 8;     ///< driving threads (each owns a Router)
  std::uint64_t seed = 42;
  std::size_t keys = 96;    ///< distinct canonical keys (acceptance: >= 64)
  std::size_t vnodes = 256;  ///< ring points per replica (balance knob)
  std::string solver = "refined-dp";
  std::size_t n = 2000;
  double brownout_ms = 12.0;       ///< replica queue-sojourn shed budget
  double retry_after_min_ms = 20.0;
  std::size_t cache_capacity = 64;  ///< per-replica LRU entries (< keys)
  std::size_t sweep_workers = 2;   ///< in-process worker fleet size
  std::vector<unsigned short> replica_ports;  ///< external replicas
  std::vector<unsigned short> worker_ports;   ///< external workers
  std::string out = "BENCH_serve_cluster.json";
  std::string sweep_out = "BENCH_sweep_cluster.json";
};

// ---------------------------------------------------------------------------
// in-process fleets

/// One in-process sre_serve replica: service + event loop on its own thread.
struct LocalReplica {
  std::unique_ptr<sre::srv::PlannerService> service;
  std::unique_ptr<sre::srv::EventLoop> loop;
  std::thread thread;

  explicit LocalReplica(const sre::srv::ServiceConfig& cfg) {
    service = std::make_unique<sre::srv::PlannerService>(cfg);
    loop = std::make_unique<sre::srv::EventLoop>(*service);
    thread = std::thread([this] { loop->run(); });
  }
  ~LocalReplica() {
    loop->request_stop();
    if (thread.joinable()) thread.join();
  }
  [[nodiscard]] unsigned short port() const { return loop->port(); }
};

/// One in-process sre_worker: the replica stack plus the task executor.
struct LocalWorker {
  std::unique_ptr<sre::srv::PlannerService> service;
  std::unique_ptr<sre::cluster::TaskExecutor> executor;
  std::unique_ptr<sre::srv::EventLoop> loop;
  std::thread thread;

  LocalWorker() {
    sre::srv::ServiceConfig svc;
    svc.workers = 1;
    service = std::make_unique<sre::srv::PlannerService>(svc);
    executor = std::make_unique<sre::cluster::TaskExecutor>();
    sre::srv::EventLoopConfig cfg;
    cfg.max_line_bytes = 4u << 20;  // result frames carry whole shards
    cfg.task_handler = executor->handler();
    loop = std::make_unique<sre::srv::EventLoop>(*service, cfg);
    thread = std::thread([this] { loop->run(); });
  }
  ~LocalWorker() {
    loop->request_stop();
    if (thread.joinable()) thread.join();
  }
  [[nodiscard]] unsigned short port() const { return loop->port(); }
};

// ---------------------------------------------------------------------------
// small report helpers

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

std::string latency_json(const std::vector<double>& v) {
  using sre::obs::format_double;
  double sum = 0.0;
  double mx = 0.0;
  for (const double x : v) {
    sum += x;
    mx = std::max(mx, x);
  }
  std::string json = "{\"p50\": " + format_double(quantile(v, 0.50));
  json += ", \"p95\": " + format_double(quantile(v, 0.95));
  json += ", \"p99\": " + format_double(quantile(v, 0.99));
  json += ", \"max\": " + format_double(mx);
  json += ", \"mean\": " +
          format_double(v.empty() ? 0.0
                                  : sum / static_cast<double>(v.size()));
  json += "}";
  return json;
}

bool parse_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

// ---------------------------------------------------------------------------
// serve bench

/// The cache-miss-heavy workload: K distinct exponential laws (distinct
/// canonical keys) driven cyclically. Each replica holds a strict-LRU plan
/// cache *smaller than the key population*, so the single replica thrashes
/// — cyclic reuse distance K > capacity means every lookup misses and pays
/// the cold solve — while the sharded tier keeps each replica's ~K/2 owned
/// keys fully resident. The measured speedup is the capacity win of
/// consistent hashing, not a scheduling artifact (the whole bench runs on
/// however few cores the host has).
struct KeyedRequest {
  std::string key;   ///< canonical request key (the routing key)
  std::string wire;  ///< serialized request line
};

std::vector<KeyedRequest> build_keyed_requests(const ClusterOptions& opt) {
  using sre::obs::format_double;
  std::vector<KeyedRequest> out;
  out.reserve(opt.keys);
  for (std::size_t k = 0; k < opt.keys; ++k) {
    sre::srv::PlanRequest req;
    const double lambda = 1.0 + 0.01 * static_cast<double>(k);
    req.dist_spec = "exponential:lambda=" + format_double(lambda);
    req.model = {1.0, 1.0, 1.0};
    req.solver = opt.solver;
    req.n = opt.n;
    req.epsilon = 1e-7;
    const auto prep = sre::srv::prepare(req);  // throws on a bad config
    std::string wire = "{\"id\":\"k" + std::to_string(k) + "\",\"dist\":\"" +
                       req.dist_spec + "\",\"cost\":{\"alpha\":1,\"beta\":1," +
                       "\"gamma\":1},\"solver\":\"" + req.solver +
                       "\",\"n\":" + std::to_string(req.n) +
                       ",\"epsilon\":" + format_double(req.epsilon) + "}";
    out.push_back(KeyedRequest{prep.key, std::move(wire)});
  }
  return out;
}

struct PhaseOut {
  double wall_s = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t failovers = 0;
  std::uint64_t sweeps_slept = 0;
  double slept_s = 0.0;
  std::vector<std::uint64_t> first_choice;
  std::vector<std::uint64_t> delivered_by;
  std::vector<std::vector<double>> lat_by_owner;  ///< per first-choice replica
  std::vector<double> lat_all;
};

sre::cluster::RouterConfig router_config(
    const ClusterOptions& opt,
    const std::vector<sre::cluster::ReplicaEndpoint>& endpoints,
    std::uint64_t stream) {
  sre::cluster::RouterConfig rc;
  rc.replicas = endpoints;
  rc.vnodes = opt.vnodes;
  // One wire attempt per hop: failover (and the inter-sweep hinted sleep)
  // is the router's job, not the per-replica client's.
  rc.client.retry.max_attempts = 1;
  rc.client.breaker_threshold = 4;
  rc.client.breaker_cooldown_s = 0.05;
  rc.sweep_retry.max_attempts = 64;
  rc.sweep_retry.base_seconds = 1e-3;
  rc.sweep_retry.cap_seconds = 0.05;
  rc.sweep_retry.seed = sre::sim::substream_seed(opt.seed, stream);
  return rc;
}

PhaseOut run_phase(const ClusterOptions& opt,
                   const std::vector<sre::cluster::ReplicaEndpoint>& endpoints,
                   const std::vector<KeyedRequest>& keyed,
                   std::uint64_t phase_stream) {
  PhaseOut out;
  const std::size_t nrep = endpoints.size();
  out.first_choice.assign(nrep, 0);
  out.delivered_by.assign(nrep, 0);
  out.lat_by_owner.assign(nrep, {});
  std::mutex merge_m;

  auto drive = [&](std::size_t t) {
    sre::cluster::Router router(
        router_config(opt, endpoints, phase_stream + t));
    std::vector<std::vector<double>> lat(nrep);
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    for (std::size_t i = t; i < opt.requests; i += opt.clients) {
      const KeyedRequest& kr = keyed[i % keyed.size()];
      const std::size_t owner = router.replica_for(kr.key);
      const auto t0 = Clock::now();
      const auto res = router.route(kr.key, kr.wire);
      lat[owner].push_back(
          std::chrono::duration<double>(Clock::now() - t0).count());
      if (res.ok) {
        ++ok;
      } else {
        ++failed;
      }
    }
    const auto& c = router.counters();
    std::lock_guard<std::mutex> lock(merge_m);
    out.ok += ok;
    out.failed += failed;
    out.failovers += c.failovers;
    out.sweeps_slept += c.sweeps_slept;
    out.slept_s += c.slept_s;
    for (std::size_t r = 0; r < nrep; ++r) {
      out.first_choice[r] += c.first_choice[r];
      out.delivered_by[r] += c.delivered_by[r];
      out.lat_by_owner[r].insert(out.lat_by_owner[r].end(), lat[r].begin(),
                                 lat[r].end());
    }
  };

  // Untimed warmup: one sequential pass over the key population through a
  // throwaway router (its counters never reach the report). Both phases get
  // the identical pass; only the sharded tier can *retain* it — the single
  // replica evicts every key before its next use.
  {
    sre::cluster::Router warm(
        router_config(opt, endpoints, phase_stream + 0xfff));
    for (const auto& kr : keyed) warm.route(kr.key, kr.wire);
  }

  const auto t_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (std::size_t t = 0; t < opt.clients; ++t) threads.emplace_back(drive, t);
  for (auto& th : threads) th.join();
  out.wall_s = std::chrono::duration<double>(Clock::now() - t_start).count();
  for (const auto& v : out.lat_by_owner) {
    out.lat_all.insert(out.lat_all.end(), v.begin(), v.end());
  }
  return out;
}

/// One {"stats":true} fan-out through a fresh router; true when every
/// replica answered with a well-formed stats object.
bool check_stats_fanout(
    const ClusterOptions& opt,
    const std::vector<sre::cluster::ReplicaEndpoint>& endpoints) {
  sre::cluster::Router router(router_config(opt, endpoints, 0x57a75));
  const std::string fanout = router.stats_fanout();
  const auto parsed = sre::obs::minijson::parse(fanout);
  if (!parsed.ok || !parsed.value.is_object()) return false;
  const auto* replicas = parsed.value.find("replicas");
  if (replicas == nullptr || !replicas->is_array() ||
      replicas->array.size() != endpoints.size()) {
    return false;
  }
  for (const auto& entry : replicas->array) {
    if (!entry.is_object()) return false;
    const auto* ok = entry.find("ok");
    if (ok == nullptr || ok->kind != sre::obs::minijson::Value::Kind::kBool ||
        !ok->boolean) {
      return false;
    }
    const auto* stats = entry.find("stats");
    if (stats == nullptr || !stats->is_object() ||
        stats->find("loop") == nullptr) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// sweep bench

sre::cluster::SweepSpec bench_spec(const ClusterOptions& opt) {
  sre::cluster::SweepSpec spec;
  const auto paper = sre::dist::paper_distributions();
  for (std::size_t i = 0; i < paper.size() && i < 3; ++i) {
    spec.dists.push_back(paper[i].label);
  }
  spec.models.push_back({"reservation-only", 1.0, 0.0, 0.0});
  spec.models.push_back({"full", 1.0, 1.0, 1.0});
  spec.solvers = {"mean-doubling", "refined-dp"};
  spec.n = 300;
  spec.epsilon = 1e-6;
  spec.mc_samples = 200;
  spec.mc_seed = opt.seed;
  return spec;
}

struct SweepRun {
  std::size_t workers = 0;
  bool complete = false;
  bool byte_identical = false;
  double elapsed_s = 0.0;
  sre::cluster::SweepManagerCounters counters;
};

SweepRun run_sweep(const sre::cluster::SweepSpec& spec,
                   const std::string& reference,
                   const std::vector<sre::cluster::WorkerEndpoint>& endpoints,
                   std::uint64_t seed) {
  sre::cluster::SweepManagerConfig cfg;
  cfg.workers = endpoints;
  cfg.shard_size = 2;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_seconds = 1e-3;
  cfg.retry.cap_seconds = 0.05;
  cfg.retry.seed = seed;
  sre::cluster::SweepManager manager(cfg);
  const auto t0 = Clock::now();
  const auto report = manager.run(spec);
  SweepRun run;
  run.workers = endpoints.size();
  run.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  run.complete = report.complete;
  run.byte_identical = report.complete && report.merged() == reference;
  run.counters = report.counters;
  return run;
}

// ---------------------------------------------------------------------------

int run_cluster(const ClusterOptions& opt) {
  using sre::obs::format_double;

  // ---- fleets (in-process unless external ports were given) ----
  const bool external_replicas = !opt.replica_ports.empty();
  const bool external_workers = !opt.worker_ports.empty();
  std::vector<std::unique_ptr<LocalReplica>> local_replicas;
  std::vector<std::unique_ptr<LocalWorker>> local_workers;
  std::vector<sre::cluster::ReplicaEndpoint> replicas;
  std::vector<sre::cluster::WorkerEndpoint> workers;
  // Replicas carry index-stable ring names: both fleets run on ephemeral
  // ports, and the bench's key->owner split (first_choice, the imbalance
  // gate) must depend on the roster, not on what bind(2) handed out.
  if (external_replicas) {
    for (const auto p : opt.replica_ports) {
      replicas.push_back({"127.0.0.1", p,
                          "replica-" + std::to_string(replicas.size())});
    }
  } else {
    sre::srv::ServiceConfig svc;
    svc.workers = 1;  // serving capacity = queueing, so brownout governs
    svc.queue_capacity = 1024;
    svc.brownout_sojourn_ms = opt.brownout_ms;
    svc.retry_after_min_ms = opt.retry_after_min_ms;
    // A bounded strict-LRU (one shard = exact global recency) smaller than
    // the key population: one replica thrashes on the cyclic workload, two
    // sharded replicas keep their owned keys resident. External replicas
    // mirror this via SRE_SRV_CACHE_CAPACITY / SRE_SRV_SHARDS.
    svc.cache_enabled = true;
    svc.cache.capacity = opt.cache_capacity;
    svc.cache.shards = 1;
    for (int r = 0; r < 2; ++r) {
      local_replicas.push_back(std::make_unique<LocalReplica>(svc));
      replicas.push_back({"127.0.0.1", local_replicas.back()->port(),
                          "replica-" + std::to_string(r)});
    }
  }
  if (external_workers) {
    for (const auto p : opt.worker_ports) {
      workers.push_back({"127.0.0.1", p});
    }
  } else {
    for (std::size_t w = 0; w < std::max<std::size_t>(1, opt.sweep_workers);
         ++w) {
      local_workers.push_back(std::make_unique<LocalWorker>());
      workers.push_back({"127.0.0.1", local_workers.back()->port()});
    }
  }
  if (replicas.size() < 2) {
    std::cerr << "sre_loadgen: --cluster needs at least 2 replicas\n";
    return 2;
  }

  // ---- serve bench ----
  const auto keyed = build_keyed_requests(opt);
  const std::vector<sre::cluster::ReplicaEndpoint> single(
      replicas.begin(), replicas.begin() + 1);
  const auto phase_single = run_phase(opt, single, keyed, 0x1000);
  const auto phase_cluster = run_phase(opt, replicas, keyed, 0x2000);
  const bool fanout_ok = check_stats_fanout(opt, replicas);

  const double single_rps =
      phase_single.wall_s > 0.0
          ? static_cast<double>(phase_single.ok) / phase_single.wall_s
          : 0.0;
  const double cluster_rps =
      phase_cluster.wall_s > 0.0
          ? static_cast<double>(phase_cluster.ok) / phase_cluster.wall_s
          : 0.0;
  const double speedup = single_rps > 0.0 ? cluster_rps / single_rps : 0.0;

  std::uint64_t fc_max = 0;
  std::uint64_t fc_min = ~0ull;
  for (const auto v : phase_cluster.first_choice) {
    fc_max = std::max(fc_max, v);
    fc_min = std::min(fc_min, v);
  }
  const double imbalance =
      fc_min > 0 ? static_cast<double>(fc_max) / static_cast<double>(fc_min)
                 : 0.0;

  std::string json = "{\n";
  json += "  \"config\": {\"requests\": " + std::to_string(opt.requests);
  json += ", \"clients\": " + std::to_string(opt.clients);
  json += ", \"distinct_keys\": " + std::to_string(opt.keys);
  json += ", \"vnodes\": " + std::to_string(opt.vnodes);
  json += ", \"replicas\": " + std::to_string(replicas.size());
  json += ", \"seed\": " + std::to_string(opt.seed);
  json += ", \"solver\": \"" + opt.solver + "\"";
  json += ", \"n\": " + std::to_string(opt.n);
  json += ", \"brownout_ms\": " + format_double(opt.brownout_ms);
  json += ", \"cache_capacity\": " + std::to_string(opt.cache_capacity);
  json += ", \"external_replicas\": ";
  json += external_replicas ? "true" : "false";
  json += "},\n";
  json += "  \"single\": {\"ok_responses\": " +
          std::to_string(phase_single.ok);
  json += ", \"wall_seconds\": " + format_double(phase_single.wall_s);
  json += ", \"throughput_rps\": " + format_double(single_rps);
  json += ", \"latency_seconds\": " + latency_json(phase_single.lat_all);
  json += "},\n";
  json += "  \"cluster\": {\"ok_responses\": " +
          std::to_string(phase_cluster.ok);
  json += ", \"wall_seconds\": " + format_double(phase_cluster.wall_s);
  json += ", \"throughput_rps\": " + format_double(cluster_rps);
  json += ", \"latency_seconds\": " + latency_json(phase_cluster.lat_all);
  json += ",\n    \"per_replica\": {";
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    if (r > 0) json += ", ";
    json += "\"replica_" + std::to_string(r) + "\": {\"first_choice\": " +
            std::to_string(phase_cluster.first_choice[r]);
    json += ", \"latency_seconds\": " +
            latency_json(phase_cluster.lat_by_owner[r]);
    json += "}";
  }
  json += "}},\n";
  json += "  \"routing\": {\"distinct_keys\": " + std::to_string(opt.keys);
  json += ", \"imbalance_max_min\": " + format_double(imbalance);
  json += ", \"meets_imbalance_target\": ";
  json += (imbalance > 0.0 && imbalance <= 1.5) ? "true" : "false";
  json += "},\n";
  json += "  \"speedup_vs_single\": " + format_double(speedup);
  json += ",\n  \"meets_speedup_target\": ";
  json += speedup >= 1.5 ? "true" : "false";
  json += ",\n  \"stats_fanout_ok\": ";
  json += fanout_ok ? "true" : "false";
  json += ",\n";
  // Interleaving-dependent readings: how hard the feedback loop worked.
  json += "  \"pressure\": {\"failed_single\": " +
          std::to_string(phase_single.failed);
  json += ", \"failed_cluster\": " + std::to_string(phase_cluster.failed);
  json += ", \"failovers_single\": " +
          std::to_string(phase_single.failovers);
  json += ", \"failovers_cluster\": " +
          std::to_string(phase_cluster.failovers);
  json += ", \"sweeps_slept_single\": " +
          std::to_string(phase_single.sweeps_slept);
  json += ", \"sweeps_slept_cluster\": " +
          std::to_string(phase_cluster.sweeps_slept);
  json += ", \"slept_seconds_single\": " +
          format_double(phase_single.slept_s);
  json += ", \"slept_seconds_cluster\": " +
          format_double(phase_cluster.slept_s);
  json += ", \"delivered_by\": {";
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    if (r > 0) json += ", ";
    json += "\"replica_" + std::to_string(r) + "\": " +
            std::to_string(phase_cluster.delivered_by[r]);
  }
  json += "}}\n}\n";

  std::ofstream out(opt.out);
  if (!out) {
    std::cerr << "sre_loadgen: cannot write " << opt.out << "\n";
    return 2;
  }
  out << json;
  out.close();

  // ---- sweep bench ----
  const auto spec = bench_spec(opt);
  const std::string reference = sre::cluster::local_sweep_bytes(spec);
  std::vector<std::size_t> fleet_sizes = {1};
  if (workers.size() > 1) fleet_sizes.push_back(workers.size());
  std::vector<SweepRun> runs;
  for (const std::size_t w : fleet_sizes) {
    const std::vector<sre::cluster::WorkerEndpoint> fleet(
        workers.begin(), workers.begin() + static_cast<std::ptrdiff_t>(w));
    runs.push_back(run_sweep(spec, reference, fleet,
                             sre::sim::substream_seed(opt.seed, 0x3000 + w)));
  }
  bool identical_all = true;
  for (const auto& run : runs) identical_all &= run.byte_identical;

  const std::size_t shards = (spec.total() + 1) / 2;
  std::string sj = "{\n";
  sj += "  \"config\": {\"scenarios\": " + std::to_string(spec.total());
  sj += ", \"shards\": " + std::to_string(shards);
  sj += ", \"shard_size\": 2";
  sj += ", \"mc_samples\": " + std::to_string(spec.mc_samples);
  sj += ", \"seed\": " + std::to_string(opt.seed);
  sj += ", \"external_workers\": ";
  sj += external_workers ? "true" : "false";
  sj += "},\n  \"runs\": {";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    if (i > 0) sj += ", ";
    sj += "\"workers_" + std::to_string(run.workers) + "\": {";
    sj += "\"complete\": ";
    sj += run.complete ? "true" : "false";
    sj += ", \"byte_identical\": ";
    sj += run.byte_identical ? "true" : "false";
    sj += ", \"elapsed_seconds\": " + format_double(run.elapsed_s);
    sj += ", \"dispatches\": " + std::to_string(run.counters.dispatches);
    sj += ", \"completions\": " + std::to_string(run.counters.completions);
    sj += ", \"duplicates\": " + std::to_string(run.counters.duplicates);
    sj += ", \"task_failures\": " +
          std::to_string(run.counters.task_failures);
    sj += ", \"transport_failures\": " +
          std::to_string(run.counters.transport_failures);
    sj += ", \"workers_abandoned\": " +
          std::to_string(run.counters.workers_abandoned);
    sj += ", \"shards_abandoned\": " +
          std::to_string(run.counters.shards_abandoned);
    sj += "}";
  }
  sj += "},\n  \"byte_identical_all\": ";
  sj += identical_all ? "true" : "false";
  sj += "\n}\n";

  std::ofstream sout(opt.sweep_out);
  if (!sout) {
    std::cerr << "sre_loadgen: cannot write " << opt.sweep_out << "\n";
    return 2;
  }
  sout << sj;
  sout.close();

  std::cout << "sre_loadgen: cluster serve " << format_double(single_rps)
            << " -> " << format_double(cluster_rps) << " req/s (speedup "
            << format_double(speedup) << ", imbalance "
            << format_double(imbalance) << ") -> " << opt.out
            << "; sweep byte-identical "
            << (identical_all ? "yes" : "NO") << " -> " << opt.sweep_out
            << "\n";
  const bool ok = identical_all && phase_single.failed == 0 &&
                  phase_cluster.failed == 0 && fanout_ok;
  return ok ? 0 : 1;
}

}  // namespace

int sre_loadgen_cluster_main(int argc, char** argv) {
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
  ClusterOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "sre_loadgen: " << flag << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    std::size_t n = 0;
    double f = 0.0;
    if (arg == "--cluster") {
      continue;
    } else if (arg == "--requests" && parse_size(need_value(arg.c_str()), n)) {
      opt.requests = n;
    } else if (arg == "--clients" && parse_size(need_value(arg.c_str()), n)) {
      opt.clients = n == 0 ? 1 : n;
    } else if (arg == "--seed" && parse_size(need_value(arg.c_str()), n)) {
      opt.seed = n;
    } else if (arg == "--keys" && parse_size(need_value(arg.c_str()), n)) {
      opt.keys = n == 0 ? 1 : n;
    } else if (arg == "--vnodes" && parse_size(need_value(arg.c_str()), n)) {
      opt.vnodes = n == 0 ? 1 : n;
    } else if (arg == "--solver") {
      opt.solver = need_value(arg.c_str());
    } else if (arg == "--n" && parse_size(need_value(arg.c_str()), n)) {
      opt.n = n;
    } else if (arg == "--brownout-ms" &&
               parse_double(need_value(arg.c_str()), f)) {
      opt.brownout_ms = f;
    } else if (arg == "--cache-capacity" &&
               parse_size(need_value(arg.c_str()), n)) {
      opt.cache_capacity = n;
    } else if (arg == "--sweep-workers" &&
               parse_size(need_value(arg.c_str()), n)) {
      opt.sweep_workers = n;
    } else if (arg == "--replica" && parse_size(need_value(arg.c_str()), n) &&
               n > 0 && n <= 65535) {
      opt.replica_ports.push_back(static_cast<unsigned short>(n));
    } else if (arg == "--worker" && parse_size(need_value(arg.c_str()), n) &&
               n > 0 && n <= 65535) {
      opt.worker_ports.push_back(static_cast<unsigned short>(n));
    } else if (arg == "--out") {
      opt.out = need_value(arg.c_str());
    } else if (arg == "--sweep-out") {
      opt.sweep_out = need_value(arg.c_str());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sre_loadgen: unknown or malformed cluster option '" << arg
                << "'\n" << kUsage;
      return 2;
    }
  }
  try {
    return run_cluster(opt);
  } catch (const std::exception& e) {
    std::cerr << "sre_loadgen: " << e.what() << "\n";
    return 2;
  }
}

#else  // !__linux__

int sre_loadgen_cluster_main(int, char**) {
  std::cerr << "sre_loadgen: --cluster needs the Linux event loop\n";
  return 2;
}

#endif
