#pragma once

// sre_loadgen --cluster: the fleet driver (see sre_loadgen_cluster.cpp).
// Split out of sre_loadgen.cpp so the single-process benches and the
// cluster benches stay independently readable; main() delegates the whole
// argv here when --cluster is present.
int sre_loadgen_cluster_main(int argc, char** argv);
