// sre_plan: command-line reservation planner.
//
//   sre_plan --dist lognormal:mu=3,sigma=0.5 --heuristic brute-force
//   sre_plan --dist exponential               # paper's Table 1 instantiation
//   sre_plan --trace runs.csv --unit seconds --heuristic equal-probability
//   sre_plan --dist weibull:lambda=1,kappa=0.5 --alpha 0.95 --beta 1 \
//            --gamma 1.05 --out plan.csv
//
// Prints the reservation plan, its expected cost, normalized cost, risk
// report (attempt distribution, cost quantiles), and optionally writes the
// plan as CSV.

#include <cstdio>
#include <string>

#include "core/expected_cost.hpp"
#include "core/omniscient.hpp"
#include "core/strategy_report.hpp"
#include "platform/cli.hpp"
#include "platform/io.hpp"
#include "platform/trace.hpp"

namespace {

int usage(const char* argv0) {
  std::printf(
      "usage: %s (--dist SPEC | --trace FILE) [options]\n"
      "  --dist SPEC        e.g. lognormal:mu=3,sigma=0.5, or a bare Table 1\n"
      "                     label (exponential, weibull, gamma, lognormal,\n"
      "                     truncatednormal, pareto, uniform, beta,\n"
      "                     boundedpareto)\n"
      "  --trace FILE       fit a LogNormal to a single-column CSV trace\n"
      "  --heuristic NAME   one of:",
      argv0);
  for (const auto& n : sre::platform::heuristic_names()) {
    std::printf(" %s", n.c_str());
  }
  std::printf(
      "\n"
      "  --alpha A --beta B --gamma G   cost model (default 1/0/0)\n"
      "  --out FILE         write the plan as CSV\n"
      "  --max-print N      print at most N reservations (default 10)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const sre::platform::ArgParser args(argc, argv);
  std::string error;

  // --- distribution ---
  sre::dist::DistributionPtr d;
  if (const auto spec = args.value("dist")) {
    d = sre::platform::parse_distribution_spec(*spec, &error);
  } else if (const auto path = args.value("trace")) {
    const auto samples = sre::platform::read_trace_csv(*path, &error);
    if (samples) {
      d = sre::platform::distribution_from_trace(*samples);
      std::printf("fitted %s from %zu samples\n", d->describe().c_str(),
                  samples->size());
    }
  } else {
    return usage(argv[0]);
  }
  if (!d) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // --- cost model & heuristic ---
  const sre::core::CostModel model{args.value_or("alpha", 1.0),
                                   args.value_or("beta", 0.0),
                                   args.value_or("gamma", 0.0)};
  if (!model.valid()) {
    std::fprintf(stderr, "error: invalid cost model %s\n",
                 model.describe().c_str());
    return 1;
  }
  const auto heuristic = sre::platform::parse_heuristic_spec(
      args.value_or("heuristic", std::string("brute-force")), &error);
  if (!heuristic) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // --- plan ---
  std::printf("law       : %s (mean %.4g, stdev %.4g)\n", d->describe().c_str(),
              d->mean(), d->stddev());
  std::printf("cost      : %s\n", model.describe().c_str());
  std::printf("heuristic : %s\n", heuristic->name().c_str());

  const auto plan = heuristic->generate(*d, model);
  const auto max_print =
      static_cast<std::size_t>(args.value_or("max-print", 10.0));
  std::printf("plan      :");
  for (std::size_t i = 0; i < std::min(plan.size(), max_print); ++i) {
    std::printf(" %.6g", plan[i]);
  }
  if (plan.size() > max_print) {
    std::printf(" ... (%zu total)", plan.size());
  }
  std::printf("\n");

  const auto report = sre::core::analyze_strategy(plan, *d, model);
  const double omniscient = sre::core::omniscient_cost(*d, model);
  std::printf("expected cost      : %.6g (normalized %.3f)\n",
              report.expected_cost, report.expected_cost / omniscient);
  std::printf("cost stddev        : %.6g\n", report.cost_stddev);
  std::printf("expected attempts  : %.3f\n", report.expected_attempts);
  std::printf("expected waste     : %.6g\n", report.expected_waste);
  for (const auto& [p, c] : report.cost_quantiles) {
    std::printf("cost @ p=%.2f      : %.6g\n", p, c);
  }

  if (const auto out = args.value("out")) {
    if (!sre::platform::write_sequence_csv(*out, plan)) {
      std::fprintf(stderr, "error: cannot write %s\n", out->c_str());
      return 1;
    }
    std::printf("plan written to %s\n", out->c_str());
  }
  return 0;
}
