// Convex pricing (Appendix C): some platforms price long exclusive
// reservations superlinearly. This example compares the optimal strategies
// under affine, quadratic, and exponential-surcharge cost functions for the
// same Exp(1) workload, showing how convexity pushes the strategy toward
// more, shorter reservations.

#include <cstdio>

#include "core/convex_cost.hpp"
#include "dist/exponential.hpp"

int main() {
  const sre::dist::Exponential job_law(1.0);
  const double beta = 0.0;  // reservation-only style

  const sre::core::AffineCost affine(1.0, 0.05);
  const sre::core::QuadraticCost quadratic(0.25, 1.0, 0.05);
  const sre::core::ExponentialSurchargeCost surcharge(1.0, 0.05, 0.25, 0.8);

  std::printf("Workload: %s (mean 1.0)\n\n", job_law.describe().c_str());
  std::printf("%-55s %8s %10s %6s\n", "Cost function G(x)", "best t1",
              "E[cost]", "len");

  for (const sre::core::ConvexCostFunction* g :
       {static_cast<const sre::core::ConvexCostFunction*>(&affine),
        static_cast<const sre::core::ConvexCostFunction*>(&quadratic),
        static_cast<const sre::core::ConvexCostFunction*>(&surcharge)}) {
    const auto out =
        sre::core::convex_brute_force(job_law, *g, beta, /*search_hi=*/4.0,
                                      /*grid_points=*/2000);
    if (!out.found) {
      std::printf("%-55s %8s\n", g->describe().c_str(), "-");
      continue;
    }
    std::printf("%-55s %8.3f %10.3f %6zu\n", g->describe().c_str(),
                out.best_t1, out.best_cost, out.best_sequence.size());
    std::printf("    sequence:");
    for (std::size_t i = 0; i < std::min<std::size_t>(out.best_sequence.size(), 6);
         ++i) {
      std::printf(" %.3f", out.best_sequence[i]);
    }
    std::printf("%s\n", out.best_sequence.size() > 6 ? " ..." : "");
  }

  std::printf(
      "\nTwo opposing forces appear: the quadratic premium shrinks the first "
      "request\n(overshooting is penalized superlinearly), while the "
      "exponential surcharge\ngrows it -- retries repeat the surcharge on "
      "ever-longer requests, so paying\nonce for a generous reservation wins."
      "\n");
  return 0;
}
