// sre_simulate: replay a campaign of stochastic jobs through the
// discrete-event platform simulator under a chosen plan.
//
//   sre_simulate --dist exponential --heuristic brute-force --jobs 10000
//   sre_simulate --dist lognormal:mu=3,sigma=0.5 --plan plan.csv \
//                --alpha 0.95 --beta 1 --gamma 1.05 --wait-slope 0.95 \
//                --wait-intercept 1.05
//
// Either --heuristic builds the plan or --plan loads one from CSV
// (sre_plan --out writes that format). An optional affine wait model adds
// queue delays to the turnaround accounting.

#include <cstdio>
#include <string>

#include "core/expected_cost.hpp"
#include "platform/cli.hpp"
#include "platform/io.hpp"
#include "sim/event_sim.hpp"

int main(int argc, char** argv) {
  const sre::platform::ArgParser args(argc, argv);
  std::string error;

  const auto spec = args.value("dist");
  if (!spec) {
    std::fprintf(stderr,
                 "usage: %s --dist SPEC [--heuristic NAME | --plan FILE] "
                 "[--jobs N] [--seed S] [--alpha A --beta B --gamma G] "
                 "[--wait-slope W --wait-intercept I]\n",
                 argv[0]);
    return 2;
  }
  const auto d = sre::platform::parse_distribution_spec(*spec, &error);
  if (!d) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  const sre::core::CostModel model{args.value_or("alpha", 1.0),
                                   args.value_or("beta", 0.0),
                                   args.value_or("gamma", 0.0)};

  sre::core::ReservationSequence plan;
  if (const auto path = args.value("plan")) {
    const auto loaded = sre::platform::read_sequence_csv(*path, &error);
    if (!loaded) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    plan = *loaded;
  } else {
    const auto heuristic = sre::platform::parse_heuristic_spec(
        args.value_or("heuristic", std::string("brute-force")), &error);
    if (!heuristic) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    plan = heuristic->generate(*d, model);
    std::printf("plan (%s):", heuristic->name().c_str());
    for (std::size_t i = 0; i < std::min<std::size_t>(plan.size(), 8); ++i) {
      std::printf(" %.4g", plan[i]);
    }
    std::printf("%s\n", plan.size() > 8 ? " ..." : "");
  }

  sre::sim::PlatformSimulator simulator(
      plan.values(), {model.alpha, model.beta, model.gamma});
  if (args.has("wait-slope") || args.has("wait-intercept")) {
    const double slope = args.value_or("wait-slope", 0.0);
    const double intercept = args.value_or("wait-intercept", 0.0);
    simulator.set_wait_time_model(
        [slope, intercept](double r) { return slope * r + intercept; });
    std::printf("wait model: %.3f * request + %.3f\n", slope, intercept);
  }

  const auto jobs = static_cast<std::size_t>(args.value_or("jobs", 10000.0));
  const auto seed = static_cast<std::uint64_t>(args.value_or("seed", 1.0));
  const auto stats = simulator.run_batch(*d, jobs, seed);

  std::printf("law              : %s\n", d->describe().c_str());
  std::printf("jobs             : %zu (%zu uncovered by the plan)\n",
              stats.jobs, stats.incomplete);
  std::printf("mean cost        : %.6g\n", stats.mean_cost);
  std::printf("max cost         : %.6g\n", stats.max_cost);
  std::printf("mean attempts    : %.3f\n", stats.mean_attempts);
  std::printf("mean waste       : %.6g\n", stats.mean_waste);
  std::printf("mean turnaround  : %.6g\n", stats.mean_turnaround);

  const double analytic =
      sre::core::expected_cost_analytic(plan, *d, model);
  std::printf("analytic E[cost] : %.6g (simulated-to-analytic ratio %.4f)\n",
              analytic, stats.mean_cost / analytic);
  return 0;
}
