// End-to-end NeuroHPC pipeline (Section 5.3): ingest an execution-time
// trace of a neuroscience application, fit a LogNormal law, fit the queue
// waiting-time model from a scheduler log, build a reservation strategy,
// and replay jobs through the discrete-event platform simulator to measure
// real turnaround -- the full workflow a neuroscience lab would run.

#include <cstdio>

#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/lognormal.hpp"
#include "platform/hpc.hpp"
#include "platform/trace.hpp"
#include "platform/workload.hpp"
#include "sim/event_sim.hpp"

int main() {
  // --- 1. Trace ingestion (Fig. 1 pipeline; synthetic stand-in trace). ---
  sre::platform::TraceConfig trace_cfg;  // VBMQA parameters
  const auto trace = sre::platform::synthesize_trace(trace_cfg);
  const auto fit = sre::platform::fit_trace(trace);
  std::printf("Trace: %zu runs, fitted LogNormal(mu=%.4f, sigma=%.4f), "
              "KS=%.4f\n",
              fit.runs, fit.fitted.mu, fit.fitted.sigma, fit.ks_statistic);

  // --- 2. Queue model from a scheduler log (Fig. 2 pipeline). ---
  sre::platform::QueueLogConfig queue_cfg;
  const auto log = sre::platform::synthesize_queue_log(queue_cfg);
  const auto queue_fit = sre::platform::fit_queue_log(log, queue_cfg.groups);
  std::printf("Queue: wait(r) = %.3f r + %.3f h (R^2 = %.3f)\n",
              queue_fit.model.slope, queue_fit.model.intercept,
              queue_fit.r_squared);

  // --- 3. Build the strategy in hours under the HPC cost model. ---
  const double to_hours = sre::platform::NeuroHpcScenario::kSecondsPerHour;
  const sre::dist::LogNormal law(fit.fitted.mu - std::log(to_hours),
                                 fit.fitted.sigma);
  const sre::core::CostModel model =
      sre::platform::hpc_cost_model(queue_fit.model);
  std::printf("Job law in hours: mean %.3f h, stdev %.3f h\n", law.mean(),
              law.stddev());

  sre::core::BruteForceOptions opts;
  opts.grid_points = 2000;
  opts.mc_samples = 1000;
  const auto sequence = sre::core::BruteForce(opts).generate(law, model);
  std::printf("\nReservation plan (hours):");
  for (std::size_t i = 0; i < std::min<std::size_t>(sequence.size(), 6); ++i) {
    std::printf(" %.3f", sequence[i]);
  }
  std::printf("%s\n", sequence.size() > 6 ? " ..." : "");

  // --- 4. Replay a campaign through the platform simulator. ---
  sre::sim::PlatformSimulator simulator(
      sequence.values(), {model.alpha, model.beta, model.gamma});
  simulator.set_wait_time_model(
      [&](double r) { return queue_fit.model.wait(r); });
  const auto stats = simulator.run_batch(law, 10000, /*seed=*/2019);
  std::printf("\nCampaign of %zu jobs:\n", stats.jobs);
  std::printf("  mean cost (wait+exec) : %.3f h\n", stats.mean_cost);
  std::printf("  mean turnaround       : %.3f h\n", stats.mean_turnaround);
  std::printf("  mean attempts         : %.2f\n", stats.mean_attempts);
  std::printf("  mean wasted exec time : %.3f h\n", stats.mean_waste);

  // --- 5. Compare against a naive strategy. ---
  const auto naive_seq = sre::core::MeanDoubling().generate(law, model);
  sre::sim::PlatformSimulator naive(naive_seq.values(),
                                    {model.alpha, model.beta, model.gamma});
  naive.set_wait_time_model([&](double r) { return queue_fit.model.wait(r); });
  const auto naive_stats = naive.run_batch(law, 10000, /*seed=*/2019);
  std::printf("\nMean-Doubling baseline: mean cost %.3f h  ->  strategy "
              "saves %.1f%%\n",
              naive_stats.mean_cost,
              100.0 * (1.0 - stats.mean_cost / naive_stats.mean_cost));
  return 0;
}
