// Checkpoint advisor: given a job law and checkpoint/restart overheads,
// should reservations carry checkpoints? Compares the optimal restart plan
// (Theorem 5 DP) against the optimal always-checkpoint plan (work-level DP)
// and prints the break-even overhead.
//
//   checkpoint_advisor [--dist SPEC] [--ckpt C] [--restart R]
//                      [--alpha A --beta B --gamma G]

#include <cstdio>

#include "core/checkpoint.hpp"
#include "core/omniscient.hpp"
#include "platform/cli.hpp"

int main(int argc, char** argv) {
  const sre::platform::ArgParser args(argc, argv);
  std::string error;
  const auto d = sre::platform::parse_distribution_spec(
      args.value_or("dist", std::string("lognormal")), &error);
  if (!d) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const sre::core::CostModel model{args.value_or("alpha", 1.0),
                                   args.value_or("beta", 0.0),
                                   args.value_or("gamma", 0.0)};
  const sre::core::CheckpointModel ckpt{
      args.value_or("ckpt", 0.05 * d->mean()),
      args.value_or("restart", 0.02 * d->mean())};

  std::printf("law      : %s (mean %.4g)\n", d->describe().c_str(), d->mean());
  std::printf("cost     : %s\n", model.describe().c_str());
  std::printf("overheads: checkpoint C = %.4g, restart R = %.4g\n",
              ckpt.checkpoint_cost, ckpt.restart_cost);

  const auto advice = sre::core::advise_checkpointing(*d, model, ckpt);
  const double omniscient = sre::core::omniscient_cost(*d, model);
  std::printf("\nrestart optimum     : %.6g (normalized %.3f)\n",
              advice.restart_cost, advice.restart_cost / omniscient);
  std::printf("checkpoint optimum  : %.6g (normalized %.3f)\n",
              advice.checkpoint_cost, advice.checkpoint_cost / omniscient);
  std::printf("advice              : %s (%.1f%% %s)\n",
              advice.use_checkpoints ? "CHECKPOINT" : "RESTART",
              100.0 * std::abs(advice.savings_fraction),
              advice.use_checkpoints ? "saved" : "lost by checkpointing");

  // The checkpoint plan itself.
  const auto plan = sre::core::checkpoint_discretized_dp(*d, model, ckpt);
  std::printf("\ncheckpoint plan (reservation -> banked work):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(plan.size(), 8); ++i) {
    std::printf("  t%zu = %.4g  ->  W = %.4g\n", i + 1, plan.reservations()[i],
                plan.banked_work()[i]);
  }
  if (plan.size() > 8) std::printf("  ... (%zu reservations)\n", plan.size());

  // Break-even: scan the checkpoint overhead (with R = C) for the largest
  // C at which checkpointing still wins.
  std::printf("\nbreak-even sweep (R = C):\n  C/mean: ");
  for (const double frac : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5}) {
    const sre::core::CheckpointModel probe{frac * d->mean(),
                                           frac * d->mean()};
    const auto a = sre::core::advise_checkpointing(*d, model, probe);
    std::printf("%.2f:%s ", frac, a.use_checkpoints ? "CKPT" : "rst");
  }
  std::printf("\n");
  return 0;
}
