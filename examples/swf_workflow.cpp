// SWF workflow: from a Standard Workload Format cluster log (the Parallel
// Workloads Archive format) to a reservation plan.
//
//   swf_workflow path/to/log.swf [min_procs [max_procs]]
//
// Without arguments a synthetic SWF log is generated in-memory so the
// example is runnable offline. Pipeline: parse SWF -> select a job class by
// processor band -> build three distribution models of its runtimes ->
// plan with the discretized DP -> report.

#include <cstdio>
#include <sstream>
#include <string>

#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/omniscient.hpp"
#include "platform/swf.hpp"
#include "platform/trace.hpp"
#include "sim/rng.hpp"

namespace {

// A synthetic SWF log whose runtimes follow the VBMQA LogNormal.
std::string synthetic_swf(std::size_t jobs) {
  const sre::dist::LogNormal law(sre::platform::kVbmqaMu,
                                 sre::platform::kVbmqaSigma);
  sre::sim::Rng rng = sre::sim::make_rng(606);
  std::uniform_int_distribution<int> procs(1, 64);
  std::ostringstream os;
  os << "; Synthetic SWF (VBMQA-like runtimes)\n; MaxProcs: 64\n";
  double t = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    t += 30.0 + 100.0 * (i % 7);
    const double runtime = law.sample(rng);
    os << (i + 1) << " " << t << " 1 " << runtime << " " << procs(rng)
       << " -1 -1 " << runtime * 1.5 << " -1 -1 1 1 1 -1 -1 -1 -1 -1\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::optional<sre::platform::SwfLog> log;
  if (argc > 1) {
    log = sre::platform::read_swf(argv[1], &error);
  } else {
    std::printf("(no SWF path given; generating a synthetic 4000-job log)\n");
    log = sre::platform::parse_swf(synthetic_swf(4000), &error);
  }
  if (!log) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::size_t min_procs = (argc > 2) ? std::stoul(argv[2]) : 1;
  const std::size_t max_procs = (argc > 3) ? std::stoul(argv[3]) : SIZE_MAX;

  std::printf("log: %zu jobs (%zu skipped), %zu header lines\n",
              log->jobs.size(), log->skipped, log->header.size());
  const auto trace =
      sre::platform::swf_runtimes(*log, min_procs, max_procs);
  if (trace.size() < 30) {
    std::fprintf(stderr, "error: only %zu runtimes in the processor band\n",
                 trace.size());
    return 1;
  }
  const auto fit = sre::platform::fit_trace(trace);
  std::printf("job class: %zu runtimes, LogNormal fit mu=%.4f sigma=%.4f "
              "(KS %.4f)\n",
              trace.size(), fit.fitted.mu, fit.fitted.sigma,
              fit.ks_statistic);

  struct Model {
    const char* label;
    sre::dist::DistributionPtr dist;
  };
  const Model models[] = {
      {"LogNormal fit", sre::platform::distribution_from_trace(trace)},
      {"histogram(64)", sre::platform::interpolated_distribution(trace, 64)},
      {"empirical", sre::platform::empirical_distribution(trace)},
  };

  const auto cost_model = sre::core::CostModel::reservation_only();
  const sre::core::DiscretizedDp planner(sre::sim::DiscretizationOptions{
      500, 1e-7, sre::sim::DiscretizationScheme::kEqualProbability});
  std::printf("\n%-14s %12s %10s %6s   plan head\n", "model", "E[cost] (s)",
              "normalized", "len");
  for (const auto& model : models) {
    const auto plan = planner.generate(*model.dist, cost_model);
    const double cost =
        sre::core::expected_cost_analytic(plan, *model.dist, cost_model);
    std::printf("%-14s %12.1f %10.3f %6zu  ", model.label, cost,
                cost / sre::core::omniscient_cost(*model.dist, cost_model),
                plan.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(plan.size(), 4); ++i) {
      std::printf(" %.0f", plan[i]);
    }
    std::printf("%s\n", plan.size() > 4 ? " ..." : "");
  }
  return 0;
}
