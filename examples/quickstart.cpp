// Quickstart: compute a good reservation sequence for a stochastic job.
//
// Scenario: jobs whose execution times follow LogNormal(mu=3, sigma=0.5)
// (hours), on a cloud platform where you pay for what you reserve
// (RESERVATIONONLY: alpha=1, beta=gamma=0). We build the BRUTE-FORCE
// strategy of the paper, print the sequence, and compare its expected cost
// against simple baselines and the omniscient lower bound.

#include <cstdio>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/omniscient.hpp"
#include "dist/lognormal.hpp"

int main() {
  // 1. The execution-time law (pdf/CDF/quantiles all available).
  const sre::dist::LogNormal job_law(3.0, 0.5);
  std::printf("Job law: %s, mean %.2f h, median %.2f h\n",
              job_law.describe().c_str(), job_law.mean(), job_law.median());

  // 2. The cost model: pay alpha per reserved hour.
  const sre::core::CostModel model = sre::core::CostModel::reservation_only();

  // 3. Compute the near-optimal strategy (Section 4.1 of the paper).
  sre::core::BruteForceOptions opts;
  opts.grid_points = 2000;  // M candidate first reservations
  opts.mc_samples = 1000;   // N Monte-Carlo samples per candidate
  const sre::core::BruteForce brute_force(opts);
  const auto sequence = brute_force.generate(job_law, model);

  std::printf("\nReservation plan (request these lengths in order until the "
              "job finishes):\n  ");
  for (std::size_t i = 0; i < std::min<std::size_t>(sequence.size(), 8); ++i) {
    std::printf("%.2f  ", sequence[i]);
  }
  if (sequence.size() > 8) std::printf("... (%zu total)", sequence.size());
  std::printf("\n");

  // 4. How much does it cost in expectation, and against what baselines?
  const double omniscient = sre::core::omniscient_cost(job_law, model);
  const double cost =
      sre::core::expected_cost_analytic(sequence, job_law, model);
  std::printf("\nExpected cost        : %.2f (normalized %.2f)\n", cost,
              cost / omniscient);

  const sre::core::MeanDoubling doubling;
  const double doubling_cost = sre::core::expected_cost_analytic(
      doubling.generate(job_law, model), job_law, model);
  std::printf("Mean-Doubling cost   : %.2f (normalized %.2f)\n", doubling_cost,
              doubling_cost / omniscient);
  std::printf("Omniscient (knows t) : %.2f (normalized 1.00)\n", omniscient);
  std::printf("\nSavings vs Mean-Doubling: %.1f%%\n",
              100.0 * (1.0 - cost / doubling_cost));
  return 0;
}
