// Cloud cost advisor: should a workload with stochastic run times use
// Reserved Instances (cheap, but you pay for the full reservation) or
// On-Demand (pay per use, ~4x the rate)? Section 5.2 of the paper shows the
// answer is "Reserved" whenever a reservation strategy's normalized cost is
// below the price ratio c_OD/c_RI.
//
// Usage: cloud_cost_advisor [price_ratio]   (default 4.0, the AWS gap)

#include <cstdio>
#include <cstdlib>

#include "core/heuristics/brute_force.hpp"
#include "dist/factory.hpp"
#include "platform/cloud.hpp"

int main(int argc, char** argv) {
  const double ratio = (argc > 1) ? std::atof(argv[1]) : 4.0;
  sre::platform::CloudPricing pricing;
  pricing.reserved_rate = 1.0;
  pricing.on_demand_rate = ratio;

  sre::core::BruteForceOptions opts;
  opts.grid_points = 1500;
  opts.mc_samples = 1000;
  const sre::core::BruteForce strategy(opts);

  std::printf("Cloud pricing: c_RI = %.2f, c_OD = %.2f (ratio %.2f)\n",
              pricing.reserved_rate, pricing.on_demand_rate,
              pricing.price_ratio());
  std::printf("%-16s  %10s  %10s  %8s  %10s  %s\n", "Workload", "RI cost",
              "OD cost", "norm.", "savings", "advice");

  for (const auto& inst : sre::dist::paper_distributions()) {
    const auto decision = sre::platform::advise_reserved_vs_on_demand(
        *inst.dist, pricing, strategy);
    std::printf("%-16s  %10.3f  %10.3f  %8.2f  %9.1f%%  %s\n",
                inst.label.c_str(), decision.reserved_expected_cost,
                decision.on_demand_cost, decision.normalized_cost,
                100.0 * decision.savings_fraction,
                decision.use_reserved ? "RESERVED" : "ON-DEMAND");
  }

  std::printf("\nBreak-even ratios (reserve iff market ratio exceeds "
              "this):\n");
  for (const char* label : {"Exponential", "Lognormal", "Uniform"}) {
    const auto inst = sre::dist::paper_distribution(label);
    const double be =
        sre::platform::break_even_price_ratio(*inst->dist, strategy);
    std::printf("  %-14s %.2f\n", label, be);
  }
  return 0;
}
