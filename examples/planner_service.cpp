// Embedding the srv:: planner service in-process.
//
// The service wraps the paper's solvers behind a request/response API with
// a plan cache, micro-batching, and admission control. This example runs a
// handful of queries through srv::InProcessClient and shows:
//   * a cold solve and the byte-identical cache hit that follows it,
//   * the same plan query through a different solver,
//   * a typed, retryable rejection (unknown solver -> kDomainError).
//
// Build & run:  ./planner_service

#include <cassert>
#include <iostream>

#include "srv/service.hpp"

int main() {
  sre::srv::ServiceConfig cfg;
  cfg.workers = 2;
  sre::srv::PlannerService service(cfg);
  sre::srv::InProcessClient client(service);

  sre::srv::PlanRequest req;
  req.dist_spec = "lognormal:mu=3,sigma=0.5";
  req.model = {1.0, 1.0, 1.0};
  req.solver = "refined-dp";
  req.n = 300;

  const auto cold = client.call(req);
  std::cout << "cold solve (cached=" << cold.cached << "):\n  "
            << cold.result << "\n";

  const auto hit = client.call(req);
  std::cout << "second call (cached=" << hit.cached << "): bytes identical: "
            << (hit.result == cold.result ? "yes" : "NO") << "\n";
  assert(hit.cached && hit.result == cold.result);

  req.solver = "mean-doubling";
  const auto other = client.call(req);
  std::cout << "mean-doubling plan:\n  " << other.result << "\n";

  req.solver = "no-such-solver";
  const auto bad = client.call(req);
  std::cout << "bad solver -> ok=" << bad.ok << " retryable=" << bad.retryable
            << " message=\"" << bad.message << "\"\n";

  std::cout << "service stats: " << service.stats_json() << "\n";
  return 0;
}
