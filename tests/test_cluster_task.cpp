// cluster:: task frames — the versioned NDJSON wire of the distributed
// sweep. What matters here is byte-level stability: the spec's canonical
// serialization (task keys derive from its hash), frame round-trips that
// preserve outcome bytes exactly, version rejection as a typed
// non-retryable kDomainError, and execute_task() agreeing byte-for-byte
// with the single-process sweep on the same shard.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "cluster/task.hpp"
#include "cluster/worker.hpp"
#include "obs/minijson.hpp"
#include "stats/error.hpp"

namespace {

using sre::cluster::format_result;
using sre::cluster::format_task;
using sre::cluster::parse_result;
using sre::cluster::parse_spec;
using sre::cluster::parse_task;
using sre::cluster::SweepSpec;
using sre::cluster::task_key;
using sre::cluster::TaskFrame;
using sre::cluster::TaskResult;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.dists = {"exponential", "uniform"};
  spec.models.push_back({"reservation-only", 1.0, 0.0, 0.0});
  spec.models.push_back({"full", 1.0, 1.0, 1.0});
  spec.solvers = {"mean-doubling", "equal-time"};
  spec.n = 120;
  spec.epsilon = 1e-6;
  spec.mc_samples = 50;
  spec.mc_seed = 7;
  return spec;
}

TEST(SweepSpec, CanonicalJsonRoundTripsByteIdentically) {
  const SweepSpec spec = small_spec();
  const std::string bytes = spec.to_json();
  const SweepSpec back = parse_spec(bytes);
  // Canonical means parse/print is the identity on canonical input — the
  // property that keeps the spec hash (and every task key) stable across a
  // manager -> worker -> manager trip.
  EXPECT_EQ(back.to_json(), bytes);
  EXPECT_EQ(back.hash(), spec.hash());
  EXPECT_EQ(back.total(), 8u);
}

TEST(SweepSpec, HashCoversEveryField) {
  const SweepSpec base = small_spec();
  SweepSpec tweaked = base;
  tweaked.mc_seed += 1;
  EXPECT_NE(tweaked.hash(), base.hash());
  tweaked = base;
  tweaked.n += 1;
  EXPECT_NE(tweaked.hash(), base.hash());
  tweaked = base;
  tweaked.models[0].gamma = 0.5;
  EXPECT_NE(tweaked.hash(), base.hash());
}

TEST(SweepSpec, TaskKeyIsThePinnedShape) {
  const SweepSpec spec = small_spec();
  const std::string key = task_key(spec, 2, 4);
  // "v1|sweep|<hex16 of spec.hash()>|<begin>-<end>": version first so a
  // frame bump invalidates every outstanding key at once.
  EXPECT_EQ(key.rfind("v1|sweep|", 0), 0u);
  EXPECT_EQ(key.substr(key.size() - 4), "|2-4");
  EXPECT_EQ(key.size(), 9u + 16u + 4u);
  // Same spec, same shard, same key — the idempotency property.
  EXPECT_EQ(key, task_key(parse_spec(spec.to_json()), 2, 4));
  EXPECT_NE(key, task_key(spec, 0, 2));
}

TEST(TaskFrame, RoundTripsThroughTheWire) {
  const SweepSpec spec = small_spec();
  TaskFrame frame;
  frame.key = task_key(spec, 0, 3);
  frame.begin = 0;
  frame.end = 3;
  frame.spec = spec;
  const TaskFrame back = parse_task(format_task(frame));
  EXPECT_EQ(back.version, sre::cluster::kTaskVersion);
  EXPECT_EQ(back.key, frame.key);
  EXPECT_EQ(back.begin, 0u);
  EXPECT_EQ(back.end, 3u);
  EXPECT_EQ(back.spec.to_json(), spec.to_json());
}

TEST(TaskFrame, VersionMismatchIsATypedDomainError) {
  const SweepSpec spec = small_spec();
  TaskFrame frame;
  frame.version = sre::cluster::kTaskVersion + 1;
  frame.key = "v2|sweep|test|0-1";
  frame.begin = 0;
  frame.end = 1;
  frame.spec = spec;
  try {
    (void)parse_task(format_task(frame));
    FAIL() << "expected ScenarioError";
  } catch (const sre::ScenarioError& e) {
    EXPECT_EQ(e.code(), sre::ErrorCode::kDomainError);
    EXPECT_FALSE(sre::is_retryable(e.code()));
  }
}

TEST(TaskResult, ResultRoundTripPreservesOutcomeBytes) {
  TaskResult result;
  result.ok = true;
  result.key = "v1|sweep|0123456789abcdef|0-2";
  result.begin = 0;
  result.end = 2;
  // Outcomes travel as escaped JSON strings; the exact bytes — including
  // characters JSON must escape — survive the trip untouched.
  result.outcomes = {R"({"dist":"exponential","cost":1.25})",
                     "weird \"bytes\" with \\ and \n inside"};
  const TaskResult back = parse_result(format_result(result));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.key, result.key);
  EXPECT_EQ(back.outcomes, result.outcomes);
}

TEST(TaskResult, ErrorFrameCarriesTheTaxonomy) {
  TaskResult result;
  result.ok = false;
  result.key = "v1|sweep|0123456789abcdef|4-6";
  result.begin = 4;
  result.end = 6;
  result.code = sre::ErrorCode::kOverloaded;
  result.retryable = true;
  result.message = "worker busy";
  const TaskResult back = parse_result(format_result(result));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.code, sre::ErrorCode::kOverloaded);
  EXPECT_TRUE(back.retryable);
  EXPECT_EQ(back.message, "worker busy");
}

TEST(TaskResult, GarbageLinesThrow) {
  EXPECT_THROW((void)parse_result("{not json"), sre::ScenarioError);
  EXPECT_THROW((void)parse_result(R"({"ok":true})"), sre::ScenarioError);
  EXPECT_THROW((void)parse_task("{}"), sre::ScenarioError);
}

// -- execute_task: the worker's half, driven synchronously ------------------

TEST(ExecuteTask, ShardBytesMatchTheLocalSweep) {
  const SweepSpec spec = small_spec();
  const std::string reference = sre::cluster::local_sweep_bytes(spec);

  TaskFrame frame;
  frame.begin = 3;
  frame.end = 6;
  frame.key = task_key(spec, frame.begin, frame.end);
  frame.spec = spec;
  const TaskResult result =
      parse_result(sre::cluster::execute_task(format_task(frame)));
  ASSERT_TRUE(result.ok) << result.message;
  ASSERT_EQ(result.outcomes.size(), 3u);

  // The local reference is one '\n'-terminated line per scenario in grid
  // order; the shard's outcomes must be those exact slices.
  std::size_t line = 0;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < frame.end; ++i) {
    const std::size_t next = reference.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    if (i >= frame.begin) {
      EXPECT_EQ(result.outcomes[line], reference.substr(pos, next - pos))
          << "scenario " << i;
      ++line;
    }
    pos = next + 1;
  }
}

TEST(ExecuteTask, RejectsWrongVersionWithoutRetry) {
  const SweepSpec spec = small_spec();
  TaskFrame frame;
  frame.version = 99;
  frame.key = "v99|sweep|x|0-1";
  frame.begin = 0;
  frame.end = 1;
  frame.spec = spec;
  const TaskResult result =
      parse_result(sre::cluster::execute_task(format_task(frame)));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, sre::ErrorCode::kDomainError);
  EXPECT_FALSE(result.retryable);
  EXPECT_NE(result.message.find("version"), std::string::npos);
}

TEST(ExecuteTask, RejectsOutOfRangeShard) {
  const SweepSpec spec = small_spec();  // total() == 8
  TaskFrame frame;
  frame.begin = 6;
  frame.end = 10;
  frame.key = task_key(spec, frame.begin, frame.end);
  frame.spec = spec;
  const TaskResult result =
      parse_result(sre::cluster::execute_task(format_task(frame)));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, sre::ErrorCode::kDomainError);
}

TEST(ExecuteTask, RejectsUnknownSolverAsDomainError) {
  SweepSpec spec = small_spec();
  spec.solvers = {"no-such-solver"};
  TaskFrame frame;
  frame.begin = 0;
  frame.end = 1;
  frame.key = task_key(spec, 0, 1);
  frame.spec = spec;
  const TaskResult result =
      parse_result(sre::cluster::execute_task(format_task(frame)));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, sre::ErrorCode::kDomainError);
  EXPECT_FALSE(result.retryable);
  // The key was recoverable from the frame, so the error echoes it — the
  // manager can still route the failure to the right shard.
  EXPECT_EQ(result.key, frame.key);
}

TEST(ExecuteTask, GarbageIsARejectionNotACrash) {
  const TaskResult result = parse_result(sre::cluster::execute_task("{nope"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, sre::ErrorCode::kDomainError);
}

TEST(ExecuteTask, InTaskParallelismKeepsBytes) {
  const SweepSpec spec = small_spec();
  TaskFrame frame;
  frame.begin = 0;
  frame.end = spec.total();
  frame.key = task_key(spec, frame.begin, frame.end);
  frame.spec = spec;
  const std::string line = format_task(frame);
  sre::cluster::WorkerConfig serial;
  sre::cluster::WorkerConfig pooled;
  pooled.sweep_threads = 4;
  // Same submission-order determinism as sim::SweepRunner: thread count is
  // a throughput knob, never an output knob.
  EXPECT_EQ(sre::cluster::execute_task(line, serial),
            sre::cluster::execute_task(line, pooled));
}

}  // namespace
