// cluster::Router against real in-process sre_serve replicas (planner
// service behind srv::EventLoop on loopback sockets): keyed delivery to
// the ring owner, immediate failover past a dead replica, hinted backoff
// when the whole ring sheds, fail-fast on non-retryable rejections, and
// the {"stats":true} fan-out shape.

#include <gtest/gtest.h>

#ifdef __linux__

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "obs/minijson.hpp"
#include "srv/eventloop.hpp"
#include "srv/request.hpp"
#include "srv/service.hpp"
#include "stats/error.hpp"

namespace {

using sre::cluster::ReplicaEndpoint;
using sre::cluster::Router;
using sre::cluster::RouterConfig;

struct LocalReplica {
  sre::srv::PlannerService service;
  std::unique_ptr<sre::srv::EventLoop> loop;
  std::thread thread;

  explicit LocalReplica(
      const sre::srv::ServiceConfig& cfg = sre::srv::ServiceConfig{})
      : service(cfg) {
    loop = std::make_unique<sre::srv::EventLoop>(service);
    thread = std::thread([this] { loop->run(); });
  }
  ~LocalReplica() {
    loop->request_stop();
    if (thread.joinable()) thread.join();
  }
  [[nodiscard]] ReplicaEndpoint endpoint(const std::string& name) const {
    return {"127.0.0.1", loop->port(), name};
  }
};

struct Keyed {
  std::string key;
  std::string wire;
};

Keyed keyed_request(int k) {
  sre::srv::PlanRequest req;
  req.dist_spec = "exponential:lambda=" + std::to_string(1.0 + 0.1 * k);
  req.solver = "mean-doubling";
  req.n = 120;
  const auto prep = sre::srv::prepare(req);
  return {prep.key,
          "{\"id\":\"k" + std::to_string(k) + "\",\"dist\":\"" +
              req.dist_spec +
              "\",\"solver\":\"mean-doubling\",\"n\":120}"};
}

RouterConfig base_config(const std::vector<ReplicaEndpoint>& endpoints) {
  RouterConfig cfg;
  cfg.replicas = endpoints;
  cfg.vnodes = 64;
  cfg.client.retry.max_attempts = 1;
  cfg.sweep_retry.max_attempts = 4;
  cfg.sweep_retry.base_seconds = 1e-3;
  cfg.sweep_retry.cap_seconds = 0.02;
  cfg.sweep_retry.seed = 5;
  return cfg;
}

TEST(Router, DeliversToTheRingOwner) {
  LocalReplica a;
  LocalReplica b;
  Router router(
      base_config({a.endpoint("replica-0"), b.endpoint("replica-1")}));
  for (int k = 0; k < 12; ++k) {
    const Keyed req = keyed_request(k);
    const auto owner = router.replica_for(req.key);
    const auto res = router.route(req.key, req.wire);
    ASSERT_TRUE(res.ok) << res.message;
    // With both replicas healthy every request lands on its owner — that
    // is what makes the owner's cache the warm one.
    EXPECT_EQ(router.counters().delivered_by[owner],
              router.counters().first_choice[owner]);
  }
  const auto& c = router.counters();
  EXPECT_EQ(c.calls, 12u);
  EXPECT_EQ(c.delivered, 12u);
  EXPECT_EQ(c.failovers, 0u);
  EXPECT_EQ(c.first_choice[0] + c.first_choice[1], 12u);
}

TEST(Router, FailsOverPastADeadReplicaWithoutSleeping) {
  // Replica "replica-0" is a corpse (bound, then closed). Keys it owns
  // must fail over to the survivor within the same sweep: failovers
  // counted, nothing delivered by the dead index, no backoff burned.
  std::unique_ptr<LocalReplica> survivor = std::make_unique<LocalReplica>();
  ReplicaEndpoint dead;
  {
    LocalReplica ephemeral;
    dead = ephemeral.endpoint("replica-0");
  }
  Router router(base_config({dead, survivor->endpoint("replica-1")}));
  for (int k = 0; k < 12; ++k) {
    const Keyed req = keyed_request(k);
    const auto res = router.route(req.key, req.wire);
    ASSERT_TRUE(res.ok) << res.message;
  }
  const auto& c = router.counters();
  EXPECT_EQ(c.delivered, 12u);
  EXPECT_EQ(c.delivered_by[0], 0u);
  EXPECT_EQ(c.delivered_by[1], 12u);
  EXPECT_GT(c.first_choice[0], 0u);  // the ring still routes by key...
  EXPECT_EQ(c.failovers, c.first_choice[0]);  // ...and each one hopped once
  EXPECT_EQ(c.sweeps_slept, 0u);
}

TEST(Router, FullRingShedHonorsTheRetryAfterHint) {
  // One replica whose admission always sheds: brownout threshold so tight
  // every queued solve trips it, with a large retry_after floor. A
  // single-replica ring turns that into sleep-and-retry — the sweep sleep
  // must honor the hint (>= the floor the server advertised).
  sre::srv::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;        // admission itself sheds overflow
  cfg.brownout_sojourn_ms = 0.01;  // any queued work trips the brownout
  cfg.retry_after_min_ms = 5.0;    // the advertised floor
  LocalReplica replica(cfg);
  auto rcfg = base_config({replica.endpoint("replica-0")});
  rcfg.sweep_retry.max_attempts = 2;
  Router router(rcfg);

  // Saturate the only queue slot with a slow-ish solve, then route: the
  // second request sheds retryably at admission.
  std::thread hog([&] {
    LocalReplica* r = &replica;
    sre::srv::PlanRequest req;
    req.dist_spec = "lognormal:mu=3,sigma=0.5";
    req.solver = "refined-dp";
    req.n = 20000;
    req.no_cache = true;
    (void)r->service.call(req);
  });
  // Give the hog a head start so the queue slot is taken.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const Keyed req = keyed_request(1);
  const auto res = router.route(req.key, req.wire);
  hog.join();
  const auto& c = router.counters();
  // Either the hog finished first (delivered after a shed+sleep) or both
  // sweeps shed; in both worlds a full sweep failed at least once and the
  // router slept for it.
  if (c.sweeps_slept > 0) {
    EXPECT_GT(c.slept_s, 0.0);
  } else {
    EXPECT_TRUE(res.ok);  // no shed happened at all: hog lost the race
  }
}

TEST(Router, NonRetryableRejectionReturnsImmediately) {
  LocalReplica a;
  LocalReplica b;
  Router router(
      base_config({a.endpoint("replica-0"), b.endpoint("replica-1")}));
  // A malformed request is malformed on every replica: one attempt, no
  // failover, no sleep.
  const auto res = router.route("bogus-key", "{\"dist\":\"no-such-dist\"}");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, sre::ErrorCode::kDomainError);
  const auto& c = router.counters();
  EXPECT_EQ(c.failures, 1u);
  EXPECT_EQ(c.failovers, 0u);
  EXPECT_EQ(c.sweeps_slept, 0u);
}

TEST(Router, ExhaustedSweepsReportFailureWithCounters) {
  ReplicaEndpoint dead0;
  ReplicaEndpoint dead1;
  {
    LocalReplica a;
    LocalReplica b;
    dead0 = a.endpoint("replica-0");
    dead1 = b.endpoint("replica-1");
  }
  auto cfg = base_config({dead0, dead1});
  cfg.sweep_retry.max_attempts = 2;
  Router router(cfg);
  const Keyed req = keyed_request(3);
  const auto res = router.route(req.key, req.wire);
  EXPECT_FALSE(res.ok);
  const auto& c = router.counters();
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_EQ(c.failures, 1u);
  EXPECT_EQ(c.sweeps_slept, 1u);  // slept between the two sweeps
  EXPECT_EQ(c.failovers, 3u);     // hops beyond the first attempt
}

TEST(Router, StatsFanoutNamesEveryReplica) {
  LocalReplica a;
  LocalReplica b;
  Router router(
      base_config({a.endpoint("replica-0"), b.endpoint("replica-1")}));
  const auto parsed = sre::obs::minijson::parse(router.stats_fanout());
  ASSERT_TRUE(parsed.ok);
  ASSERT_TRUE(parsed.value.is_object());
  EXPECT_TRUE(parsed.value.find("ok")->boolean);
  const auto* replicas = parsed.value.find("replicas");
  ASSERT_NE(replicas, nullptr);
  ASSERT_EQ(replicas->array.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    const auto& entry = replicas->array[r];
    EXPECT_EQ(entry.find("name")->string, "replica-" + std::to_string(r));
    EXPECT_TRUE(entry.find("ok")->boolean);
    const auto* stats = entry.find("stats");
    ASSERT_NE(stats, nullptr);
    // The spliced-verbatim stats object: the loop block proves it came
    // through the event loop's live-introspection verb.
    EXPECT_NE(stats->find("loop"), nullptr);
  }
}

TEST(Router, StatsFanoutReportsDeadReplicasAsNotOk) {
  LocalReplica alive;
  ReplicaEndpoint dead;
  {
    LocalReplica ephemeral;
    dead = ephemeral.endpoint("replica-1");
  }
  auto cfg = base_config({alive.endpoint("replica-0"), dead});
  Router router(cfg);
  const auto parsed = sre::obs::minijson::parse(router.stats_fanout());
  ASSERT_TRUE(parsed.ok);
  const auto* replicas = parsed.value.find("replicas");
  ASSERT_NE(replicas, nullptr);
  ASSERT_EQ(replicas->array.size(), 2u);
  EXPECT_TRUE(replicas->array[0].find("ok")->boolean);
  EXPECT_FALSE(replicas->array[1].find("ok")->boolean);
  EXPECT_NE(replicas->array[1].find("error"), nullptr);
}

}  // namespace

#else  // !__linux__

TEST(Router, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif
