// Truncation + discretization schemes (Section 4.2.1).

#include "sim/discretize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/uniform.hpp"

using namespace sre::sim;

TEST(TruncationPoint, QuantileForUnbounded) {
  const sre::dist::Exponential e(1.0);
  // Q(1 - eps) = -ln(eps).
  EXPECT_NEAR(truncation_point(e, 1e-7), -std::log(1e-7), 1e-9);
}

TEST(TruncationPoint, SupportUpperForBounded) {
  const sre::dist::Uniform u(10.0, 20.0);
  EXPECT_DOUBLE_EQ(truncation_point(u, 1e-7), 20.0);
}

TEST(EqualProbability, MassesAreEqual) {
  const sre::dist::Exponential e(1.0);
  DiscretizationOptions opts{100, 1e-7, DiscretizationScheme::kEqualProbability};
  const auto d = discretize(e, opts);
  ASSERT_EQ(d.size(), 100u);
  for (const double p : d.probabilities()) {
    EXPECT_NEAR(p, 0.01, 1e-10);
  }
}

TEST(EqualProbability, ValuesAreQuantiles) {
  const sre::dist::Exponential e(1.0);
  DiscretizationOptions opts{10, 1e-7, DiscretizationScheme::kEqualProbability};
  const auto d = discretize(e, opts);
  const double fb = e.cdf(truncation_point(e, 1e-7));
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double q = e.quantile(static_cast<double>(i + 1) * fb / 10.0);
    EXPECT_NEAR(d.values()[i], q, 1e-9 * (1.0 + q)) << i;
  }
}

TEST(EqualTime, ValuesAreEquallySpaced) {
  const sre::dist::Uniform u(10.0, 20.0);
  DiscretizationOptions opts{10, 1e-7, DiscretizationScheme::kEqualTime};
  const auto d = discretize(u, opts);
  ASSERT_EQ(d.size(), 10u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d.values()[i], 11.0 + static_cast<double>(i), 1e-12) << i;
  }
  // Uniform law => equal masses too.
  for (const double p : d.probabilities()) EXPECT_NEAR(p, 0.1, 1e-12);
}

TEST(EqualTime, MassesAreCdfIncrements) {
  const sre::dist::Exponential e(1.0);
  DiscretizationOptions opts{20, 1e-5, DiscretizationScheme::kEqualTime};
  const auto d = discretize(e, opts);
  const double b = truncation_point(e, 1e-5);
  const double step = b / 20.0;
  // Normalization divides by F(b); verify relative increments.
  for (std::size_t i = 1; i < d.size(); ++i) {
    const double raw = e.cdf(step * static_cast<double>(i + 1)) -
                       e.cdf(step * static_cast<double>(i));
    EXPECT_NEAR(d.probabilities()[i], raw / e.cdf(b), 1e-10) << i;
  }
}

TEST(Discretize, MeanConvergesWithN) {
  const sre::dist::Exponential e(1.0);
  for (const auto scheme : {DiscretizationScheme::kEqualTime,
                            DiscretizationScheme::kEqualProbability}) {
    double prev_err = std::numeric_limits<double>::infinity();
    for (const std::size_t n : {10u, 100u, 1000u}) {
      DiscretizationOptions opts{n, 1e-9, scheme};
      const double err = std::fabs(discretize(e, opts).mean() - 1.0);
      EXPECT_LT(err, prev_err * 1.5) << to_string(scheme) << " n=" << n;
      prev_err = err;
    }
    // Right-endpoint discretization biases the mean upward by about half a
    // cell (~1e-2 at n = 1000 for Exp(1)); the bias shrinks as 1/n.
    EXPECT_LT(prev_err, 2.5e-2) << to_string(scheme);
  }
}

TEST(Discretize, WorksForEveryPaperDistribution) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto scheme : {DiscretizationScheme::kEqualTime,
                              DiscretizationScheme::kEqualProbability}) {
      DiscretizationOptions opts{200, 1e-7, scheme};
      const auto d = discretize(*inst.dist, opts);
      EXPECT_GE(d.size(), 2u) << inst.label;
      EXPECT_LE(d.size(), 200u) << inst.label;
      // Support stays inside [a, Q(1-eps)].
      EXPECT_GE(d.support().lower, inst.dist->support().lower) << inst.label;
      EXPECT_LE(d.support().upper,
                truncation_point(*inst.dist, opts.epsilon) * (1.0 + 1e-12))
          << inst.label;
      // The median is tail-robust even where the mean is not (heavy-tailed
      // laws under coarse EQUAL-TIME grids, cf. Table 4's n=10 column);
      // allow one grid cell of slack on top of 15% relative.
      const double cell =
          (truncation_point(*inst.dist, opts.epsilon) -
           inst.dist->support().lower) /
          static_cast<double>(opts.n);
      EXPECT_NEAR(d.quantile(0.5), inst.dist->median(),
                  0.15 * inst.dist->median() + cell)
          << inst.label << " " << to_string(scheme);
    }
  }
}

TEST(Discretize, SchemeNames) {
  EXPECT_STREQ(to_string(DiscretizationScheme::kEqualTime), "Equal-time");
  EXPECT_STREQ(to_string(DiscretizationScheme::kEqualProbability),
               "Equal-probability");
}
