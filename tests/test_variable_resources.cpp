#include "core/variable_resources.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"

using namespace sre::core;

TEST(Amdahl, TimeFactor) {
  const AmdahlModel a{0.1};
  EXPECT_DOUBLE_EQ(a.time_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(a.time_factor(2), 0.1 + 0.45);
  EXPECT_NEAR(a.time_factor(1000000), 0.1, 1e-5);  // asymptote = sigma
  const AmdahlModel perfect{0.0};
  EXPECT_DOUBLE_EQ(perfect.time_factor(4), 0.25);
  const AmdahlModel serial{1.0};
  EXPECT_DOUBLE_EQ(serial.time_factor(64), 1.0);
}

TEST(VariableResources, CostModelMapping) {
  VariableResourceOptions opts;
  opts.base = CostModel{2.0, 1.0, 0.5};
  opts.pricing = ResourcePricing::kCpuHours;
  const auto cpu = cost_model_for(opts, 4);
  EXPECT_DOUBLE_EQ(cpu.alpha, 8.0);
  EXPECT_DOUBLE_EQ(cpu.beta, 4.0);
  EXPECT_DOUBLE_EQ(cpu.gamma, 0.5);
  opts.pricing = ResourcePricing::kTurnaround;
  opts.contention = 0.25;
  const auto ta = cost_model_for(opts, 4);
  EXPECT_NEAR(ta.alpha, 2.0 * (1.0 + 0.25 * std::log(4.0)), 1e-12);
  EXPECT_DOUBLE_EQ(ta.beta, 1.0);
  EXPECT_DOUBLE_EQ(ta.gamma, 0.5);
}

TEST(VariableResources, CpuHoursPricingPrefersOneProcessor) {
  // Under Amdahl with sigma > 0 the CPU-hour area grows with p, so p = 1
  // must win.
  const sre::dist::LogNormal work(3.0, 0.5);
  VariableResourceOptions opts;
  opts.pricing = ResourcePricing::kCpuHours;
  opts.amdahl.sequential_fraction = 0.1;
  opts.candidates = {1, 2, 4, 8, 16};
  const auto best = optimize_processors(work, opts);
  EXPECT_EQ(best.processors, 1u);
  const auto sweep = processor_sweep(work, opts);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].expected_cost, sweep[i - 1].expected_cost * 0.999)
        << sweep[i].processors;
  }
}

TEST(VariableResources, PerfectScalingMakesCpuHoursFlat) {
  // sigma = 0, gamma = 0, beta = 0: p*T = W regardless of p; every plan has
  // the same cost up to discretization noise.
  const sre::dist::Exponential work(1.0);
  VariableResourceOptions opts;
  opts.pricing = ResourcePricing::kCpuHours;
  opts.amdahl.sequential_fraction = 0.0;
  opts.base = CostModel::reservation_only();
  opts.candidates = {1, 4, 16, 64};
  const auto sweep = processor_sweep(work, opts);
  for (const auto& plan : sweep) {
    EXPECT_NEAR(plan.expected_cost, sweep.front().expected_cost,
                1e-6 * sweep.front().expected_cost)
        << plan.processors;
  }
}

TEST(VariableResources, TurnaroundHasInteriorOptimum) {
  // Contention penalizes width, Amdahl rewards it: some 1 < p* < max wins.
  const sre::dist::LogNormal work(3.0, 0.5);
  VariableResourceOptions opts;
  opts.pricing = ResourcePricing::kTurnaround;
  opts.amdahl.sequential_fraction = 0.05;
  opts.contention = 0.5;
  opts.base = CostModel{0.95, 1.0, 1.05};
  opts.candidates = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const auto best = optimize_processors(work, opts);
  EXPECT_GT(best.processors, 1u);
  EXPECT_LT(best.processors, 256u);
}

TEST(VariableResources, LessContentionPushesOptimalPUp) {
  const sre::dist::LogNormal work(3.0, 0.5);
  VariableResourceOptions opts;
  opts.pricing = ResourcePricing::kTurnaround;
  opts.amdahl.sequential_fraction = 0.02;
  opts.base = CostModel{0.95, 1.0, 1.05};
  opts.candidates = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  opts.contention = 1.0;
  const auto congested = optimize_processors(work, opts);
  opts.contention = 0.05;
  const auto idle = optimize_processors(work, opts);
  EXPECT_GE(idle.processors, congested.processors);
  EXPECT_LT(idle.expected_cost, congested.expected_cost);
}

TEST(VariableResources, SequencesShrinkWithMoreProcessors) {
  // At larger p the runtime law contracts by f(p); so do the reservations.
  const sre::dist::Exponential work(1.0);
  VariableResourceOptions opts;
  opts.pricing = ResourcePricing::kTurnaround;
  opts.amdahl.sequential_fraction = 0.0;
  opts.contention = 0.0;
  opts.candidates = {1, 4};
  const auto sweep = processor_sweep(work, opts);
  EXPECT_NEAR(sweep[1].sequence.first(), sweep[0].sequence.first() / 4.0,
              0.05 * sweep[0].sequence.first());
}
