// Determinism is an invariant (CONTRIBUTING.md): for a fixed seed, every
// stochastic estimate must be bit-identical whether it runs serially, on the
// global pool, or on pools of 1/2/8 workers. These tests pin that contract
// for estimate_expectation and parallel_sum across all nine Table 1
// distributions.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "dist/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/parallel.hpp"
#include "sim/thread_pool.hpp"

using namespace sre;
using sim::MonteCarloOptions;
using sim::ThreadPool;

namespace {

/// Smooth, distribution-dependent integrand exercising the full support.
double integrand(double t) { return t * t + std::sqrt(t + 1.0) + std::sin(t); }

struct BitwiseResult {
  double mean;
  double std_error;
  std::size_t samples;

  bool operator==(const BitwiseResult& o) const {
    return mean == o.mean && std_error == o.std_error && samples == o.samples;
  }
};

BitwiseResult run_mc(const dist::Distribution& d, bool parallel,
                     ThreadPool* pool, bool antithetic) {
  MonteCarloOptions opts;
  opts.samples = 4096;
  opts.seed = 7;
  opts.chunk = 128;
  opts.parallel = parallel;
  opts.pool = pool;
  opts.antithetic = antithetic;
  const auto r = sim::estimate_expectation(d, integrand, opts);
  return {r.mean, r.std_error, r.samples};
}

}  // namespace

TEST(ParallelDeterminismAll, EstimateExpectationBitIdenticalAcrossPools) {
  for (const auto& inst : dist::paper_distributions()) {
    SCOPED_TRACE(inst.label);
    for (const bool antithetic : {false, true}) {
      SCOPED_TRACE(antithetic ? "antithetic" : "plain");
      const BitwiseResult serial =
          run_mc(*inst.dist, /*parallel=*/false, nullptr, antithetic);
      for (const unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        const BitwiseResult par =
            run_mc(*inst.dist, /*parallel=*/true, &pool, antithetic);
        EXPECT_TRUE(par == serial)
            << "threads=" << threads << " mean " << par.mean << " vs "
            << serial.mean;
      }
      const BitwiseResult global_pool =
          run_mc(*inst.dist, /*parallel=*/true, nullptr, antithetic);
      EXPECT_TRUE(global_pool == serial);
    }
  }
}

TEST(ParallelDeterminismAll, ParallelSumBitIdenticalAcrossPools) {
  constexpr std::size_t kN = 40000;
  for (const auto& inst : dist::paper_distributions()) {
    SCOPED_TRACE(inst.label);
    const dist::Distribution& d = *inst.dist;
    // Quantile-based summand: deterministic, hits the whole support.
    const auto f = [&d](std::size_t i) {
      const double u =
          (static_cast<double>(i) + 0.5) / static_cast<double>(kN);
      return std::log1p(d.quantile(u));
    };
    ThreadPool pool1(1);
    const double base = sim::parallel_sum(pool1, 0, kN, f);
    for (const unsigned threads : {2u, 8u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(sim::parallel_sum(pool, 0, kN, f), base)
          << "threads=" << threads;
    }
    // Global pool and a repeated call agree too.
    EXPECT_EQ(sim::parallel_sum(0, kN, f), base);
    EXPECT_EQ(sim::parallel_sum(0, kN, f), base);
    // Grain participates in the chunk plan, so it is pinned by the
    // contract: same grain => same sum on any pool.
    ThreadPool pool8(8);
    EXPECT_EQ(sim::parallel_sum(pool8, 0, kN, f, 512),
              sim::parallel_sum(pool1, 0, kN, f, 512));
  }
}

TEST(ParallelDeterminismAll, ParallelForPoolOverloadVisitsEverything) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(10000);
  sim::parallel_for(pool, 0, visits.size(),
                    [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    ASSERT_EQ(visits[i].load(), 1) << i;
  }
}
