#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel.hpp"

using namespace sre::sim;

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(5000);
  parallel_for(0, visits.size(),
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::size_t i) {
                     if (i == 567) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitFromWithinATask) {
  // Recursive fan-out: each level-0 task submits level-1 tasks from inside
  // the pool, and wait_idle() must cover the late arrivals too.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &counter] {
      for (int j = 0; j < 10; ++j) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
      counter.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50 * 11);
}

TEST(ThreadPool, SubmitBatchExecutesAll) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 500; ++i) {
    batch.push_back([&counter] { counter.fetch_add(1); });
  }
  const std::uint64_t before = pool.executed_count();
  pool.submit_batch(std::move(batch));
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 500);
  EXPECT_EQ(pool.executed_count() - before, 500u);
}

TEST(ThreadPool, ConcurrentWaitIdleCallers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 2000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  std::atomic<int> returned{0};
  for (int w = 0; w < 6; ++w) {
    waiters.emplace_back([&pool, &counter, &returned] {
      pool.wait_idle();
      // Idle means every submitted task has finished.
      EXPECT_EQ(counter.load(), 2000);
      returned.fetch_add(1);
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(returned.load(), 6);
}

TEST(ThreadPool, TryRunOneHelpsFromNonWorkerThread) {
  ThreadPool pool(1);
  // Block the only worker so submitted tasks stay queued.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  int helped = 0;
  while (pool.try_run_one()) ++helped;
  EXPECT_GE(helped, 1);
  gate.set_value();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 8);
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ParallelFor, NestedLoopsComputeEveryCell) {
  // parallel_for inside a pool task: the outer join must help with the
  // inner chunks instead of deadlocking on a fully-blocked pool.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 16, kInner = 128;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  parallel_for(pool, 0, kOuter, [&](std::size_t i) {
    parallel_for(pool, 0, kInner,
                 [&](std::size_t j) { cells[i * kInner + j].fetch_add(1); });
  });
  for (std::size_t k = 0; k < cells.size(); ++k) {
    ASSERT_EQ(cells[k].load(), 1) << k;
  }
}

TEST(ParallelFor, ExceptionPropagatesThroughNestedLoops) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 0, 32,
                   [&](std::size_t i) {
                     parallel_for(pool, 0, 64, [i](std::size_t j) {
                       if (i == 17 && j == 33) {
                         throw std::runtime_error("inner boom");
                       }
                     });
                   }),
      std::runtime_error);
  // The pool must stay usable after the unwound sweep.
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelSum, MatchesSerialSum) {
  const auto f = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  double serial = 0.0;
  for (std::size_t i = 0; i < 100000; ++i) serial += f(i);
  const double parallel = parallel_sum(0, 100000, f);
  EXPECT_NEAR(parallel, serial, 1e-9);
}

TEST(ParallelSum, DeterministicAcrossCalls) {
  const auto f = [](std::size_t i) { return std::sin(static_cast<double>(i)); };
  const double a = parallel_sum(0, 50000, f);
  const double b = parallel_sum(0, 50000, f);
  EXPECT_DOUBLE_EQ(a, b);
}
