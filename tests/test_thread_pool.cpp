#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/parallel.hpp"

using namespace sre::sim;

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(5000);
  parallel_for(0, visits.size(),
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 1000,
                   [](std::size_t i) {
                     if (i == 567) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelSum, MatchesSerialSum) {
  const auto f = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  double serial = 0.0;
  for (std::size_t i = 0; i < 100000; ++i) serial += f(i);
  const double parallel = parallel_sum(0, 100000, f);
  EXPECT_NEAR(parallel, serial, 1e-9);
}

TEST(ParallelSum, DeterministicAcrossCalls) {
  const auto f = [](std::size_t i) { return std::sin(static_cast<double>(i)); };
  const double a = parallel_sum(0, 50000, f);
  const double b = parallel_sum(0, 50000, f);
  EXPECT_DOUBLE_EQ(a, b);
}
