// Spot-style preemptible reservations: the closed per-job Wald form vs the
// Monte-Carlo simulator, reduction to the base model at rate 0, and the
// plan optimizer.

#include "core/preemption.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/expected_cost.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "sim/event_sim.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre::core;

// Sanitizer instrumentation slows the Wald-form integrations 5-15x; the
// heavyweight optimizer cases below trim their problem size under any
// sanitizer so the tsan/asan presets stay inside the 600 s ctest budget
// even on single-core hosts.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SRE_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SRE_SANITIZED_BUILD 1
#endif
#endif

namespace {
ReservationSequence covering(const sre::dist::Distribution& d) {
  return MeanDoubling().generate(d, CostModel::reservation_only());
}
}  // namespace

TEST(Preemption, RateZeroReducesToBaseModel) {
  const sre::dist::LogNormal d(1.0, 0.5);
  const auto seq = covering(d);
  const CostModel m{1.0, 0.5, 0.2};
  const PreemptionModel none{0.0};
  sre::sim::Rng rng = sre::sim::make_rng(2);
  for (int i = 0; i < 500; ++i) {
    const double x = d.sample(rng);
    EXPECT_NEAR(preempted_cost_for(seq, x, m, none), seq.cost_for(x, m),
                1e-10 * (1.0 + seq.cost_for(x, m)))
        << x;
  }
  EXPECT_NEAR(preemption_expected_cost(seq, d, m, none),
              expected_cost_analytic(seq, d, m),
              1e-6 * expected_cost_analytic(seq, d, m));
}

TEST(Preemption, PerJobWaldFormMatchesSimulator) {
  const ReservationSequence seq({1.0, 2.5, 6.0, 14.0});
  const CostModel m{1.0, 0.5, 0.1};
  const PreemptionModel p{0.4};
  const sre::sim::PreemptingSimulator simulator(
      seq.values(), {m.alpha, m.beta, m.gamma}, p.rate);
  sre::sim::Rng rng = sre::sim::make_rng(17);
  for (const double x : {0.6, 1.7, 3.0, 5.5, 9.0}) {
    sre::stats::OnlineMoments acc;
    for (int i = 0; i < 40000; ++i) {
      const auto out = simulator.run_job(x, rng);
      ASSERT_TRUE(out.completed);
      acc.add(out.total_cost);
    }
    EXPECT_NEAR(acc.mean(), preempted_cost_for(seq, x, m, p),
                6.0 * acc.standard_error())
        << "x=" << x;
  }
}

TEST(Preemption, ExpectedCostMatchesSimulatedCampaign) {
  const sre::dist::Exponential d(1.0);
  const auto seq = covering(d);
  const CostModel m = CostModel::reservation_only();
  const PreemptionModel p{0.5};
  const sre::sim::PreemptingSimulator simulator(
      seq.values(), {m.alpha, m.beta, m.gamma}, p.rate);
  sre::sim::Rng rng = sre::sim::make_rng(5);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 60000; ++i) {
    acc.add(simulator.run_job(d.sample(rng), rng).total_cost);
  }
  EXPECT_NEAR(acc.mean(), preemption_expected_cost(seq, d, m, p),
              6.0 * acc.standard_error());
}

TEST(Preemption, CostIsMonotoneInRate) {
  const sre::dist::LogNormal d(1.0, 0.5);
  const auto seq = covering(d);
  const CostModel m = CostModel::reservation_only();
  double prev = 0.0;
  for (const double rate : {0.0, 0.1, 0.3, 0.8}) {
    const double c = preemption_expected_cost(seq, d, m, PreemptionModel{rate});
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(Preemption, OptimizerNeverIncreasesCost) {
  const sre::dist::Exponential d(1.0);
  const auto seed = covering(d);
  const CostModel m = CostModel::reservation_only();
  for (const double rate : {0.0, 0.5, 2.0}) {
    const auto out =
        optimize_preemption_plan(seed, d, m, PreemptionModel{rate});
    EXPECT_LE(out.cost_after, out.cost_before * (1.0 + 1e-12)) << rate;
    EXPECT_NEAR(out.cost_after,
                preemption_expected_cost(out.sequence, d, m,
                                         PreemptionModel{rate}),
                1e-8 * out.cost_after)
        << rate;
  }
}

TEST(Preemption, HigherRatesGrowTheFirstReservation) {
  // Counterintuitive but correct: idle reserved time carries no exposure,
  // while a too-short level must complete its *entire* run uninterrupted
  // before the strategy learns anything (e^{rate*t} expected tries). The
  // optimizer therefore OVER-reserves as the rate rises. Exponential law
  // with rate < 1/mean keeps E[e^{rate X}] finite.
  const sre::dist::Exponential d(1.0);
  const CostModel m = CostModel::reservation_only();
  const auto seed = covering(d);
  const auto calm = optimize_preemption_plan(seed, d, m, PreemptionModel{0.0});
  const auto stormy =
      optimize_preemption_plan(seed, d, m, PreemptionModel{0.6});
  EXPECT_GT(stormy.sequence.first(), calm.sequence.first());
  // And the achievable cost is strictly worse under preemption.
  EXPECT_GT(stormy.cost_after, calm.cost_after);
}

TEST(Preemption, HeavyTailCostBlowsUpWithRate) {
  // For LogNormal, E[e^{rate X}] = infinity for any rate > 0: the rare
  // huge jobs dominate and the (truncation-limited) expected cost explodes
  // by orders of magnitude as the rate climbs -- the
  // restart-under-interruption blow-up that motivates checkpointing on
  // spot capacity. A bounded law under the same rates stays tame.
  const CostModel m = CostModel::reservation_only();
  const sre::dist::LogNormal heavy(1.0, 0.5);
  const auto heavy_plan = covering(heavy);
  const double c_low =
      preemption_expected_cost(heavy_plan, heavy, m, PreemptionModel{0.3});
  const double c_high =
      preemption_expected_cost(heavy_plan, heavy, m, PreemptionModel{1.5});
  EXPECT_GT(c_high, c_low * 1e3);

  const auto uniform = sre::dist::paper_distribution("Uniform")->dist;
  const auto bounded_plan = covering(*uniform);
  const double u_low = preemption_expected_cost(
      bounded_plan, *uniform, m, PreemptionModel{0.3 / uniform->mean()});
  const double u_high = preemption_expected_cost(
      bounded_plan, *uniform, m, PreemptionModel{1.5 / uniform->mean()});
  EXPECT_LT(u_high, u_low * 50.0);  // tame growth on bounded support
}

TEST(SpotCheckpoint, RateZeroReducesToCheckpointCost) {
  const sre::dist::LogNormal d(1.0, 0.5);
  const CheckpointModel ckpt{0.1, 0.05};
  const auto plan = checkpoint_mean_doubling(d, ckpt);
  const CostModel m{1.0, 0.5, 0.2};
  const PreemptionModel none{0.0};
  sre::sim::Rng rng = sre::sim::make_rng(4);
  for (int i = 0; i < 300; ++i) {
    const double x = d.sample(rng);
    EXPECT_NEAR(preempted_checkpoint_cost_for(plan, x, m, none),
                plan.cost_for(x, m), 1e-9 * (1.0 + plan.cost_for(x, m)))
        << x;
  }
  EXPECT_NEAR(preemption_checkpoint_expected_cost(plan, d, m, none),
              checkpoint_expected_cost(plan, d, m),
              1e-6 * checkpoint_expected_cost(plan, d, m));
}

TEST(SpotCheckpoint, PerJobWaldFormMatchesDirectSimulation) {
  // Hand-rolled Monte Carlo of the level/retry semantics vs the closed
  // Wald form.
  const CheckpointModel ckpt{0.15, 0.1};
  const auto plan =
      CheckpointSequence::from_work_targets({0.8, 2.0, 4.5, 10.0}, ckpt);
  const CostModel m{1.0, 0.5, 0.1};
  const PreemptionModel p{0.35};
  sre::sim::Rng rng = sre::sim::make_rng(21);
  std::exponential_distribution<double> interrupt(p.rate);
  for (const double x : {0.5, 1.5, 3.0, 8.0}) {
    sre::stats::OnlineMoments acc;
    for (int trial = 0; trial < 30000; ++trial) {
      double cost = 0.0;
      double secured = 0.0;
      std::size_t level = 0;
      double tail_target = 0.0;
      for (;;) {
        double t, target, restore;
        if (level < plan.size()) {
          t = plan.reservations()[level];
          target = plan.banked_work()[level];
          restore = (level == 0) ? 0.0 : ckpt.restart_cost;
        } else {
          // Constant-increment tail, mirroring the library's semantics.
          const auto& banked = plan.banked_work();
          const double step = (plan.size() >= 2)
                                  ? banked.back() - banked[plan.size() - 2]
                                  : banked.back();
          tail_target = (tail_target == 0.0) ? banked.back() + step
                                             : tail_target + step;
          target = tail_target;
          restore = ckpt.restart_cost;
          t = (target - secured) + restore + ckpt.checkpoint_cost;
        }
        const bool covers = x <= target;
        const double u = covers ? (restore + (x - secured)) : t;
        // retries at this level until a run survives
        for (;;) {
          const double ti = interrupt(rng);
          if (ti < u) {
            cost += m.alpha * t + m.beta * ti + m.gamma;
          } else {
            cost += m.alpha * t + m.beta * u + m.gamma;
            break;
          }
        }
        if (covers) break;
        secured = target;
        ++level;
      }
      acc.add(cost);
    }
    EXPECT_NEAR(acc.mean(), preempted_checkpoint_cost_for(plan, x, m, p),
                6.0 * acc.standard_error())
        << "x=" << x;
  }
}

TEST(SpotCheckpoint, MakesHeavyTailsAffordableAgain) {
  // The headline: at a rate where the restart model's cost explodes, the
  // checkpointed plan stays within a small multiple of its rate-0 cost.
  const sre::dist::LogNormal d(1.0, 0.5);
  const CostModel m = CostModel::reservation_only();
  const PreemptionModel p{1.0};
  const CheckpointModel ckpt{0.05 * d.mean(), 0.05 * d.mean()};

  const auto restart_plan = covering(d);
  const double restart_cost =
      preemption_expected_cost(restart_plan, d, m, p);

  // A bounded-increment (fixed quantum) checkpoint plan; growing-slot
  // plans would re-inherit the blow-up.
  const auto ckpt_plan = checkpoint_fixed_quantum(d, ckpt, 0.5 * d.mean());
  const double with_preemption =
      preemption_checkpoint_expected_cost(ckpt_plan, d, m, p);
  const double ckpt_rate0 =
      preemption_checkpoint_expected_cost(ckpt_plan, d, m,
                                          PreemptionModel{0.0});

  EXPECT_LT(with_preemption, restart_cost / 100.0);
  EXPECT_LT(with_preemption, ckpt_rate0 * 20.0);
}

namespace {

// The most expensive property in this suite (the coordinate-descent
// optimizer re-evaluates the full Wald-form objective per golden-section
// probe): one ctest case per rate so no single case can blow the per-test
// TIMEOUT, and a smaller plan / sweep budget under sanitizer builds. The
// property itself is size-independent.
void optimizer_never_increases_cost(double rate) {
  const sre::dist::Exponential d(1.0);
  const CheckpointModel ckpt{0.05, 0.05};
#ifdef SRE_SANITIZED_BUILD
  const auto seed = checkpoint_fixed_quantum(d, ckpt, 2.5);
  const std::size_t max_sweeps = 1;
#else
  const auto seed = checkpoint_fixed_quantum(d, ckpt, 1.0);
  const std::size_t max_sweeps = 4;
#endif
  const CostModel m = CostModel::reservation_only();
  const auto out = optimize_preemption_checkpoint_plan(
      seed, d, m, PreemptionModel{rate}, max_sweeps);
  EXPECT_LE(out.cost_after, out.cost_before * (1.0 + 1e-12)) << rate;
}

}  // namespace

TEST(SpotCheckpoint, OptimizerNeverIncreasesCostRate0) {
  optimizer_never_increases_cost(0.0);
}

TEST(SpotCheckpoint, OptimizerNeverIncreasesCostRateHalf) {
  optimizer_never_increases_cost(0.5);
}

TEST(SpotCheckpoint, OptimizerNeverIncreasesCostRate2) {
  optimizer_never_increases_cost(2.0);
}

TEST(SpotCheckpoint, HigherRatesShrinkTheWorkQuantum) {
  // Opposite of the restart model: with checkpoints, the per-level exposure
  // IS the slot length, so rising rates favor smaller work increments.
  // Asserted on the best *fixed quantum* (a 1-D sweep), which isolates the
  // effect from the coordinate-descent optimizer's fixed target count.
  const sre::dist::Exponential d(1.0);
  const CheckpointModel ckpt{0.02, 0.02};
  const CostModel m = CostModel::reservation_only();
  const auto best_quantum = [&](double rate) {
    double best_q = 0.0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (double q = 0.05; q <= 3.0; q *= 1.25) {
      const auto plan = checkpoint_fixed_quantum(d, ckpt, q);
      const double c =
          preemption_checkpoint_expected_cost(plan, d, m, PreemptionModel{rate});
      if (c < best_cost) {
        best_cost = c;
        best_q = q;
      }
    }
    return best_q;
  };
  const double calm = best_quantum(0.1);
  const double stormy = best_quantum(3.0);
  EXPECT_LT(stormy, calm);
}
