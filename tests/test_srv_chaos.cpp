// Seeded network chaos through the real stack: srv::EventLoop with a
// sim::NetFaultSpec at its accept/read/write seams, srv::Client dialing
// through its own chaos shim. The contract under fire:
//
//   * no crash, ever — injected resets, short ops, and accept drops are
//     absorbed by the loop and ridden through by the client;
//   * survivors are byte-identical — a request that produced an ok
//     response through reconnects and replays carries exactly the bytes
//     srv::handle_line produces for the same request (the volatile
//     "cached" flag normalized on both sides);
//   * failures are typed — when retries are exhausted the client reports
//     kTransport/kOverloaded, never a garbled line;
//   * injections actually happened — the process-wide ChaosSocket totals
//     are nonzero, so a green run can't be a silently disabled drill.

#include <gtest/gtest.h>

#ifdef __linux__

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/netfault.hpp"
#include "srv/chaos_socket.hpp"
#include "srv/client.hpp"
#include "srv/eventloop.hpp"
#include "srv/protocol.hpp"
#include "srv/service.hpp"

namespace {

using sre::ErrorCode;
using sre::sim::NetFaultPlan;
using sre::sim::NetFaultSpec;
using sre::srv::ChaosSocket;
using sre::srv::Client;
using sre::srv::ClientConfig;
using sre::srv::EventLoop;
using sre::srv::EventLoopConfig;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

std::string request_line(int i) {
  const char* dists[] = {"exponential:lambda=1", "uniform:a=1,b=3",
                         "weibull:lambda=1,kappa=2"};
  std::string line = "{\"id\":\"" + std::to_string(i) + "\",\"dist\":\"";
  line += dists[i % 3];
  line += "\",\"solver\":\"mean-doubling\",\"n\":32,\"epsilon\":1e-6}";
  return line;
}

std::string normalize_cached(std::string line) {
  const auto pos = line.find("\"cached\":true");
  if (pos != std::string::npos) line.replace(pos, 13, "\"cached\":false");
  return line;
}

ServiceConfig service_config() {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 1 << 14;
  return cfg;
}

TEST(SrvChaos, SurvivorsAreByteIdenticalAndFailuresTyped) {
  ChaosSocket::reset_totals();
  NetFaultSpec spec;
  spec.seed = 7;
  spec.read_reset_prob = 0.02;
  spec.write_reset_prob = 0.02;
  spec.short_read_prob = 0.3;
  spec.short_write_prob = 0.3;

  PlannerService service(service_config());
  EventLoopConfig loop_cfg;
  loop_cfg.net_faults = spec;
  EventLoop loop(service, loop_cfg);
  std::thread loop_thread([&loop] { loop.run(); });

  // The no-chaos reference bytes for every request.
  PlannerService reference(service_config());
  constexpr int kConns = 4;
  constexpr int kPerConn = 32;
  std::vector<std::string> expected(kConns * kPerConn);
  for (int i = 0; i < kConns * kPerConn; ++i) {
    expected[static_cast<std::size_t>(i)] = normalize_cached(
        sre::srv::handle_line(reference, request_line(i)).line);
  }

  std::vector<std::thread> threads;
  std::vector<int> survived(kConns, 0);
  std::uint64_t total_reconnects = 0;
  std::mutex m;
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig cfg;
      cfg.port = loop.port();
      cfg.retry.max_attempts = 16;
      cfg.retry.base_seconds = 0.0005;
      cfg.retry.cap_seconds = 0.01;
      cfg.retry.seed = 3;
      cfg.net_faults = spec;
      cfg.fault_stream =
          NetFaultPlan::kClientStreamBase + static_cast<std::uint64_t>(c) *
                                                (1ull << 16);
      Client client(cfg);
      for (int k = 0; k < kPerConn; ++k) {
        const int i = c * kPerConn + k;
        (void)client.post(request_line(i));
        std::string line;
        if (!client.recv_line(line)) break;  // typed exhaustion, not a crash
        EXPECT_EQ(normalize_cached(line),
                  expected[static_cast<std::size_t>(i)])
            << "request " << i << " survived chaos with different bytes";
        ++survived[static_cast<std::size_t>(c)];
      }
      std::lock_guard<std::mutex> lock(m);
      total_reconnects += client.counters().reconnects;
    });
  }
  for (auto& t : threads) t.join();

  loop.request_stop();
  loop_thread.join();

  int total_survived = 0;
  for (const int s : survived) total_survived += s;
  // With 16 retry attempts per reconnect the drill is survivable: most
  // requests must complete (in practice all of them do).
  EXPECT_GT(total_survived, kConns * kPerConn / 2);
  const auto totals = ChaosSocket::totals();
  EXPECT_GT(totals.injected(), 0u) << "the drill injected nothing";
  EXPECT_GT(totals.short_reads + totals.short_writes, 0u);
}

TEST(SrvChaos, AcceptDropsAreCountedAndSurvivable) {
  ChaosSocket::reset_totals();
  NetFaultSpec spec;
  spec.seed = 21;
  spec.accept_drop_prob = 0.5;

  PlannerService service(service_config());
  EventLoopConfig loop_cfg;
  loop_cfg.net_faults = spec;
  EventLoop loop(service, loop_cfg);
  std::thread loop_thread([&loop] { loop.run(); });

  ClientConfig cfg;
  cfg.port = loop.port();
  cfg.retry.max_attempts = 32;
  cfg.retry.base_seconds = 0.0005;
  cfg.retry.cap_seconds = 0.005;
  Client client(cfg);
  // Half the accepts are dropped (seeded), but redialing rides through:
  // several strict calls all succeed.
  for (int i = 0; i < 8; ++i) {
    const auto res = client.call(request_line(i));
    EXPECT_TRUE(res.ok) << res.message;
  }

  loop.request_stop();
  loop_thread.join();
  EXPECT_GT(ChaosSocket::totals().accept_drops, 0u)
      << "p=0.5 over many accepts never dropped one";
}

TEST(SrvChaos, TotalAcceptDropBlackoutFailsTypedAndLoopStaysUp) {
  ChaosSocket::reset_totals();
  NetFaultSpec spec;
  spec.seed = 2;
  spec.accept_drop_prob = 1.0;  // total blackout: every accept dropped

  PlannerService service(service_config());
  EventLoopConfig loop_cfg;
  loop_cfg.net_faults = spec;
  EventLoop loop(service, loop_cfg);
  std::thread loop_thread([&loop] { loop.run(); });

  ClientConfig cfg;
  cfg.port = loop.port();
  cfg.retry.max_attempts = 3;
  cfg.retry.base_seconds = 0.0;
  Client client(cfg);
  const auto res = client.call(request_line(0));
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kTransport);  // typed, never garbled
  EXPECT_TRUE(res.retryable);

  // The loop itself is healthy: it dropped connections by policy, it did
  // not die. request_stop() still drains cleanly.
  loop.request_stop();
  loop_thread.join();
  EXPECT_GE(ChaosSocket::totals().accept_drops, 3u);
}

}  // namespace

#endif  // __linux__
