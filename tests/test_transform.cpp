#include "dist/transform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre::dist;

TEST(Scaled, ExponentialScalesTheRate) {
  // c * Exp(lambda) == Exp(lambda / c).
  const auto base = std::make_shared<Exponential>(3.0);
  const ScaledDistribution scaled(base, 2.0);
  const Exponential reference(1.5);
  for (double t : {0.1, 0.5, 1.0, 4.0}) {
    EXPECT_NEAR(scaled.pdf(t), reference.pdf(t), 1e-13) << t;
    EXPECT_NEAR(scaled.cdf(t), reference.cdf(t), 1e-13) << t;
    EXPECT_NEAR(scaled.sf(t), reference.sf(t), 1e-13) << t;
    EXPECT_NEAR(scaled.conditional_mean_above(t),
                reference.conditional_mean_above(t), 1e-12)
        << t;
  }
  EXPECT_NEAR(scaled.mean(), reference.mean(), 1e-13);
  EXPECT_NEAR(scaled.variance(), reference.variance(), 1e-13);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(scaled.quantile(p), reference.quantile(p), 1e-12) << p;
  }
}

TEST(Scaled, SecondsToHoursEqualsLogShift) {
  // (1/3600) * LogNormal(mu, sigma) == LogNormal(mu - ln 3600, sigma).
  const auto base = std::make_shared<LogNormal>(7.1128, 0.2039);
  const ScaledDistribution hours(base, 1.0 / 3600.0);
  const LogNormal reference(7.1128 - std::log(3600.0), 0.2039);
  EXPECT_NEAR(hours.mean(), reference.mean(), 1e-12);
  EXPECT_NEAR(hours.stddev(), reference.stddev(), 1e-12);
  for (double p : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(hours.quantile(p), reference.quantile(p),
                1e-10 * reference.quantile(p))
        << p;
  }
  EXPECT_NEAR(hours.cdf(0.3), reference.cdf(0.3), 1e-12);
}

TEST(Scaled, SamplingMatchesMoments) {
  const auto base = std::make_shared<Exponential>(1.0);
  const ScaledDistribution scaled(base, 5.0);
  sre::sim::Rng rng = sre::sim::make_rng(6);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 100000; ++i) acc.add(scaled.sample(rng));
  EXPECT_NEAR(acc.mean(), 5.0, 0.1);
}

TEST(Shifted, UniformShiftsSupport) {
  const auto base = std::make_shared<Uniform>(0.0 + 1e-12, 10.0);
  const ShiftedDistribution shifted(base, 10.0);
  const Uniform reference(10.0, 20.0);
  EXPECT_NEAR(shifted.mean(), reference.mean(), 1e-9);
  EXPECT_NEAR(shifted.variance(), reference.variance(), 1e-9);
  EXPECT_NEAR(shifted.cdf(15.0), reference.cdf(15.0), 1e-9);
  EXPECT_NEAR(shifted.quantile(0.25), reference.quantile(0.25), 1e-9);
  EXPECT_NEAR(shifted.support().lower, 10.0, 1e-9);
  EXPECT_NEAR(shifted.support().upper, 20.0, 1e-9);
  EXPECT_NEAR(shifted.conditional_mean_above(14.0),
              reference.conditional_mean_above(14.0), 1e-9);
}

TEST(Shifted, ModelsFixedStartupPortion) {
  // Every job pays a 2.0 startup plus an exponential body.
  const auto base = std::make_shared<Exponential>(1.0);
  const ShiftedDistribution d(base, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.variance(), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_NEAR(d.sf(3.0), std::exp(-1.0), 1e-13);
  // Memorylessness above the shift.
  EXPECT_NEAR(d.conditional_mean_above(4.0), 5.0, 1e-12);
}

TEST(Transforms, ComposeScaleThenShift) {
  const auto base = std::make_shared<Exponential>(1.0);
  const auto scaled = std::make_shared<ScaledDistribution>(base, 2.0);
  const ShiftedDistribution both(scaled, 1.0);
  EXPECT_DOUBLE_EQ(both.mean(), 3.0);      // 2 * 1 + 1
  EXPECT_DOUBLE_EQ(both.variance(), 4.0);  // 2^2 * 1
  EXPECT_NEAR(both.quantile(both.cdf(2.7)), 2.7, 1e-10);
}
