// SweepRunner::run_resilient error paths: per-scenario isolation, typed
// classification, bounded retry, per-scenario deadlines, deterministic merge
// order, and byte-identical partial output across thread counts.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/sweep.hpp"
#include "stats/error.hpp"

using namespace sre;
using sim::AttemptContext;
using sim::ResilienceOptions;
using sim::SweepOptions;
using sim::SweepRunner;

namespace {

std::size_t code_index(ErrorCode code) {
  return static_cast<std::size_t>(code);
}

}  // namespace

TEST(SweepResilience, ThrowingScenarioOnlyFailsItsOwnSlot) {
  SweepRunner runner;
  const auto out = runner.run_resilient<int>(
      8, {}, [](std::size_t i, const AttemptContext&) -> int {
        if (i == 3) {
          throw ScenarioError(ErrorCode::kDomainError, "scenario 3 is bad");
        }
        return static_cast<int>(i) * 10;
      });
  ASSERT_EQ(out.results.size(), 8u);
  ASSERT_EQ(out.ok.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_EQ(out.ok[i], 0);
      EXPECT_EQ(out.results[i], 0);  // default-constructed filler
    } else {
      EXPECT_EQ(out.ok[i], 1);
      EXPECT_EQ(out.results[i], static_cast<int>(i) * 10);
    }
  }
  EXPECT_EQ(out.report.scenarios, 8u);
  EXPECT_EQ(out.report.failed, 1u);
  EXPECT_FALSE(out.report.ok());
  EXPECT_EQ(out.report.by_code[code_index(ErrorCode::kDomainError)], 1u);
  ASSERT_NE(out.report.first_failure(), nullptr);
  EXPECT_EQ(out.report.first_failure()->index, 3u);
  EXPECT_EQ(out.report.first_failure()->message, "scenario 3 is bad");
}

TEST(SweepResilience, UntypedExceptionsClassifyAsDomainError) {
  SweepRunner runner;
  const auto report = runner.run_resilient_indexed(
      3, {}, [](std::size_t i, const AttemptContext&) {
        if (i == 0) throw std::runtime_error("plain runtime_error");
        if (i == 1) throw 42;  // not even a std::exception
      });
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.by_code[code_index(ErrorCode::kDomainError)], 2u);
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].message, "plain runtime_error");
  EXPECT_NE(report.failures[1].message.find("unknown"), std::string::npos);
}

TEST(SweepResilience, RetryableFaultSucceedsOnRetryN) {
  SweepRunner runner;
  ResilienceOptions res;
  res.max_attempts = 3;
  std::vector<int> attempts_seen(4, 0);
  const auto out = runner.run_resilient<int>(
      4, res, [&attempts_seen](std::size_t i, const AttemptContext& ctx) {
        attempts_seen[i] = ctx.attempt + 1;
        // Scenario 2 needs exactly 3 attempts; the rest succeed first try.
        if (i == 2 && ctx.attempt < 2) {
          throw ScenarioError(ErrorCode::kInjectedFault, "transient");
        }
        return 1;
      });
  EXPECT_TRUE(out.report.ok());
  EXPECT_EQ(out.report.failed, 0u);
  EXPECT_EQ(out.report.retries, 2u);
  EXPECT_EQ(attempts_seen[2], 3);
  ASSERT_EQ(out.report.retry_histogram.size(), 3u);
  EXPECT_EQ(out.report.retry_histogram[0], 3u);  // 3 scenarios: 1 attempt
  EXPECT_EQ(out.report.retry_histogram[1], 0u);
  EXPECT_EQ(out.report.retry_histogram[2], 1u);  // scenario 2: 3 attempts
}

TEST(SweepResilience, DeterministicFailuresAreNeverRetried) {
  SweepRunner runner;
  ResilienceOptions res;
  res.max_attempts = 5;
  for (const ErrorCode code :
       {ErrorCode::kDomainError, ErrorCode::kNoConvergence,
        ErrorCode::kCancelled, ErrorCode::kTimeout}) {
    SCOPED_TRACE(static_cast<int>(code));
    int calls = 0;
    const auto report = runner.run_resilient_indexed(
        1, res, [&calls, code](std::size_t, const AttemptContext&) {
          ++calls;
          throw ScenarioError(code, "deterministic");
        });
    EXPECT_EQ(calls, 1) << "non-retryable class was retried";
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].code, code);
    EXPECT_EQ(report.failures[0].attempts, 1);
  }
  // The retryable class consumes the full budget.
  int calls = 0;
  const auto report = runner.run_resilient_indexed(
      1, res, [&calls](std::size_t, const AttemptContext&) {
        ++calls;
        throw ScenarioError(ErrorCode::kInjectedFault, "always");
      });
  EXPECT_EQ(calls, 5);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].attempts, 5);
  EXPECT_EQ(report.retries, 4u);
}

TEST(SweepResilience, DeadlineSurfacesAsTypedTimeout) {
  SweepRunner runner;
  ResilienceOptions res;
  res.scenario_deadline_seconds = 0.02;
  const auto report = runner.run_resilient_indexed(
      1, res, [](std::size_t, const AttemptContext& ctx) {
        ASSERT_TRUE(ctx.cancel.armed());
        // A cooperative solver loop: poll the token until it expires.
        for (;;) {
          ctx.cancel.check("test.loop");
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.by_code[code_index(ErrorCode::kTimeout)], 1u);
}

TEST(SweepResilience, WithoutDeadlineTheTokenIsInert) {
  SweepRunner runner;
  const auto report = runner.run_resilient_indexed(
      2, {}, [](std::size_t, const AttemptContext& ctx) {
        EXPECT_FALSE(ctx.cancel.armed());
        ctx.cancel.check("never.throws");
      });
  EXPECT_TRUE(report.ok());
}

TEST(SweepResilience, FailureBudgetEvaluatesAfterTheSweep) {
  SweepRunner runner;
  const auto fail_three = [](std::size_t i, const AttemptContext&) {
    if (i % 4 == 0) {  // indices 0, 4, 8 of 10 -> 3 failures
      throw ScenarioError(ErrorCode::kDomainError, "fail");
    }
  };
  ResilienceOptions tight;
  tight.failure_budget = 0.2;
  const auto degraded = runner.run_resilient_indexed(10, tight, fail_three);
  EXPECT_EQ(degraded.failed, 3u);
  EXPECT_TRUE(degraded.budget_exceeded);

  ResilienceOptions loose;
  loose.failure_budget = 0.5;
  const auto fine = runner.run_resilient_indexed(10, loose, fail_three);
  EXPECT_EQ(fine.failed, 3u);
  EXPECT_FALSE(fine.budget_exceeded);
}

TEST(SweepResilience, PartialReportByteIdenticalAcrossThreadCounts) {
  const auto fn = [](std::size_t i, const AttemptContext&) -> double {
    switch (i % 7) {
      case 2:
        throw ScenarioError(ErrorCode::kDomainError, "domain @" +
                                                         std::to_string(i));
      case 5:
        throw ScenarioError(ErrorCode::kNoConvergence,
                            "solver stalled @" + std::to_string(i));
      default:
        return static_cast<double>(i) * 1.5;
    }
  };
  constexpr std::size_t kN = 64;

  SweepOptions serial;
  serial.serial = true;
  SweepRunner base(serial);
  const auto ref = base.run_resilient<double>(kN, {}, fn);
  const std::string ref_json = ref.report.to_json();
  EXPECT_FALSE(ref_json.empty());

  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(opts);
    const auto out = runner.run_resilient<double>(kN, {}, fn);
    EXPECT_EQ(out.results, ref.results);
    EXPECT_EQ(out.ok, ref.ok);
    EXPECT_EQ(out.report.to_json(), ref_json);
  }
}

TEST(SweepResilience, ReportJsonCarriesTheFullTaxonomy) {
  SweepRunner runner;
  const auto report = runner.run_resilient_indexed(
      2, {}, [](std::size_t i, const AttemptContext&) {
        if (i == 1) {
          throw ScenarioError(ErrorCode::kDomainError,
                              "quote \" and\nnewline");
        }
      });
  const std::string json = report.to_json();
  // Every class name appears (zero counts included) and messages are escaped.
  for (const char* name : {"domain_error", "no_convergence", "timeout",
                           "injected_fault", "cancelled"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be single-line";
}
