// Property test for the plan cache's core guarantee, across the full paper
// workload: for every Table 1 distribution crossed with every evaluation
// cost model, the cache-hit response is byte-identical to the cold solve —
// and running the same workload through a cache small enough to thrash
// (capacity 2 for 36 keys) never changes a single response byte, it only
// changes how often the solver runs.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/factory.hpp"
#include "obs/minijson.hpp"
#include "sim/discretize.hpp"
#include "srv/service.hpp"

namespace {

using sre::core::CostModel;
using sre::srv::PlanRequest;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

std::vector<PlanRequest> paper_workload() {
  const std::vector<CostModel> models = {
      CostModel::reservation_only(),
      {1.0, 1.0, 0.0},
      {1.0, 1.0, 1.0},
      {0.95, 1.0, 1.05},
  };
  std::vector<PlanRequest> workload;
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& model : models) {
      PlanRequest req;
      req.dist_spec = inst.label;
      req.model = model;
      req.solver = "equal-probability";  // knob-sensitive, cheap at n=64
      req.n = 64;
      req.epsilon = 1e-6;
      workload.push_back(std::move(req));
    }
  }
  return workload;
}

TEST(SrvProperty, HitMatchesColdSolveForAllPaperScenarios) {
  const auto workload = paper_workload();
  ASSERT_EQ(workload.size(), 36u) << "9 Table 1 laws x 4 cost models";

  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);

  std::map<std::string, std::string> cold_bytes;
  for (const auto& req : workload) {
    const auto cold = client.call(req);
    ASSERT_TRUE(cold.ok) << req.dist_spec << ": " << cold.message;
    EXPECT_FALSE(cold.cached);
    cold_bytes[req.dist_spec + "|" + req.model.describe()] = cold.result;
  }
  for (const auto& req : workload) {
    const auto hit = client.call(req);
    ASSERT_TRUE(hit.ok) << req.dist_spec << ": " << hit.message;
    EXPECT_TRUE(hit.cached) << req.dist_spec;
    EXPECT_EQ(hit.result,
              cold_bytes[req.dist_spec + "|" + req.model.describe()])
        << req.dist_spec << " hit bytes differ from the cold solve";
  }
  const auto cc = service.cache_counters();
  EXPECT_EQ(cc.misses, 36u);
  EXPECT_EQ(cc.hits, 36u);
  EXPECT_EQ(cc.evictions, 0u);
}

TEST(SrvProperty, EvictionUnderTinyCapacityNeverChangesResults) {
  const auto workload = paper_workload();

  // Reference bytes from an uncontended cache.
  PlannerService reference(ServiceConfig{});
  std::map<std::string, std::string> expected;
  for (const auto& req : workload) {
    const auto resp = reference.call(req);
    ASSERT_TRUE(resp.ok) << resp.message;
    expected[req.dist_spec + "|" + req.model.describe()] = resp.result;
  }

  // A two-entry cache thrashes on 36 keys: nearly every round-robin pass
  // re-solves. Responses must still be byte-identical to the reference,
  // hit or miss.
  ServiceConfig tiny;
  tiny.cache.capacity = 2;
  tiny.cache.shards = 1;
  PlannerService service(tiny);
  sre::srv::InProcessClient client(service);
  for (int round = 0; round < 2; ++round) {
    for (const auto& req : workload) {
      const auto resp = client.call(req);
      ASSERT_TRUE(resp.ok) << req.dist_spec << ": " << resp.message;
      EXPECT_EQ(resp.result,
                expected[req.dist_spec + "|" + req.model.describe()])
          << req.dist_spec << " (round " << round << ")";
    }
  }
  const auto cc = service.cache_counters();
  EXPECT_GT(cc.evictions, 0u) << "capacity 2 over 36 keys must thrash";
  // Residency stays within the configured budget (inserts net of
  // evictions is the current entry count).
  EXPECT_LE(cc.inserts - cc.evictions, 2u);
}

// The service's cold solves run the divide-and-conquer DP (the
// DiscretizationOptions default). Re-derive every served plan with the
// O(n^2) reference variant and require the response bytes to match bit for
// bit, so the plan cache can never mask a fast-path divergence: a hit is
// byte-identical to the cold solve (previous test), and the cold solve is
// byte-identical to the reference oracle (this one). obs::format_double is
// shortest-round-trip, so parsing the served plan back recovers the exact
// doubles the solver produced.
TEST(SrvProperty, AcceleratedColdSolveMatchesReferenceVariantPlan) {
  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);
  for (const auto& req : paper_workload()) {
    const auto resp = client.call(req);
    ASSERT_TRUE(resp.ok) << req.dist_spec << ": " << resp.message;
    EXPECT_FALSE(resp.cached) << req.dist_spec;
    const auto parsed = sre::obs::minijson::parse(resp.result);
    ASSERT_TRUE(parsed.ok) << req.dist_spec << ": " << parsed.error;
    const auto* plan = parsed.value.find("plan");
    ASSERT_NE(plan, nullptr) << req.dist_spec;
    ASSERT_TRUE(plan->is_array()) << req.dist_spec;

    const auto inst = sre::dist::paper_distribution(req.dist_spec);
    ASSERT_TRUE(inst.has_value()) << req.dist_spec;
    sre::sim::DiscretizationOptions opts;
    opts.n = req.n;
    opts.epsilon = req.epsilon;
    opts.scheme = sre::sim::DiscretizationScheme::kEqualProbability;
    opts.dp_variant = sre::sim::DpVariant::kReference;
    const auto reference =
        sre::core::DiscretizedDp(opts).generate(*inst->dist, req.model);

    ASSERT_EQ(plan->array.size(), reference.size()) << req.dist_spec;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(plan->array[i].number),
                std::bit_cast<std::uint64_t>(reference[i]))
          << req.dist_spec << " | " << req.model.describe()
          << ": served plan[" << i << "] = " << plan->array[i].number
          << " but the reference variant computed " << reference[i];
    }
  }
}

}  // namespace
