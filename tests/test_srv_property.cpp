// Property test for the plan cache's core guarantee, across the full paper
// workload: for every Table 1 distribution crossed with every evaluation
// cost model, the cache-hit response is byte-identical to the cold solve —
// and running the same workload through a cache small enough to thrash
// (capacity 2 for 36 keys) never changes a single response byte, it only
// changes how often the solver runs.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "dist/factory.hpp"
#include "srv/service.hpp"

namespace {

using sre::core::CostModel;
using sre::srv::PlanRequest;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

std::vector<PlanRequest> paper_workload() {
  const std::vector<CostModel> models = {
      CostModel::reservation_only(),
      {1.0, 1.0, 0.0},
      {1.0, 1.0, 1.0},
      {0.95, 1.0, 1.05},
  };
  std::vector<PlanRequest> workload;
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& model : models) {
      PlanRequest req;
      req.dist_spec = inst.label;
      req.model = model;
      req.solver = "equal-probability";  // knob-sensitive, cheap at n=64
      req.n = 64;
      req.epsilon = 1e-6;
      workload.push_back(std::move(req));
    }
  }
  return workload;
}

TEST(SrvProperty, HitMatchesColdSolveForAllPaperScenarios) {
  const auto workload = paper_workload();
  ASSERT_EQ(workload.size(), 36u) << "9 Table 1 laws x 4 cost models";

  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);

  std::map<std::string, std::string> cold_bytes;
  for (const auto& req : workload) {
    const auto cold = client.call(req);
    ASSERT_TRUE(cold.ok) << req.dist_spec << ": " << cold.message;
    EXPECT_FALSE(cold.cached);
    cold_bytes[req.dist_spec + "|" + req.model.describe()] = cold.result;
  }
  for (const auto& req : workload) {
    const auto hit = client.call(req);
    ASSERT_TRUE(hit.ok) << req.dist_spec << ": " << hit.message;
    EXPECT_TRUE(hit.cached) << req.dist_spec;
    EXPECT_EQ(hit.result,
              cold_bytes[req.dist_spec + "|" + req.model.describe()])
        << req.dist_spec << " hit bytes differ from the cold solve";
  }
  const auto cc = service.cache_counters();
  EXPECT_EQ(cc.misses, 36u);
  EXPECT_EQ(cc.hits, 36u);
  EXPECT_EQ(cc.evictions, 0u);
}

TEST(SrvProperty, EvictionUnderTinyCapacityNeverChangesResults) {
  const auto workload = paper_workload();

  // Reference bytes from an uncontended cache.
  PlannerService reference(ServiceConfig{});
  std::map<std::string, std::string> expected;
  for (const auto& req : workload) {
    const auto resp = reference.call(req);
    ASSERT_TRUE(resp.ok) << resp.message;
    expected[req.dist_spec + "|" + req.model.describe()] = resp.result;
  }

  // A two-entry cache thrashes on 36 keys: nearly every round-robin pass
  // re-solves. Responses must still be byte-identical to the reference,
  // hit or miss.
  ServiceConfig tiny;
  tiny.cache.capacity = 2;
  tiny.cache.shards = 1;
  PlannerService service(tiny);
  sre::srv::InProcessClient client(service);
  for (int round = 0; round < 2; ++round) {
    for (const auto& req : workload) {
      const auto resp = client.call(req);
      ASSERT_TRUE(resp.ok) << req.dist_spec << ": " << resp.message;
      EXPECT_EQ(resp.result,
                expected[req.dist_spec + "|" + req.model.describe()])
          << req.dist_spec << " (round " << round << ")";
    }
  }
  const auto cc = service.cache_counters();
  EXPECT_GT(cc.evictions, 0u) << "capacity 2 over 36 keys must thrash";
  // Residency stays within the configured budget (inserts net of
  // evictions is the current entry count).
  EXPECT_LE(cc.inserts - cc.evictions, 2u);
}

}  // namespace
