// Deflake guard: every Monte-Carlo entry point is seeded, so running the
// same estimate twice -- in the same process, serially or on pools of any
// size -- must produce bit-identical summary statistics. A test failing here
// means nondeterminism (an unseeded RNG, a reduction ordered by completion
// time) crept back into the evaluation pipeline.

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_model.hpp"
#include "core/expected_cost.hpp"
#include "core/sequence.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/thread_pool.hpp"

using namespace sre;

namespace {

/// Bitwise comparison of two results (EXPECT_EQ on doubles is exact).
void expect_identical(const sim::MonteCarloResult& a,
                      const sim::MonteCarloResult& b, const char* what) {
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.std_error, b.std_error) << what;
  EXPECT_EQ(a.samples, b.samples) << what;
}

}  // namespace

TEST(MonteCarloRerun, SameOptionsTwiceIsBitIdentical) {
  const dist::Exponential d(0.7);
  const auto g = [](double t) { return t * t + 3.0 * t; };
  for (const bool antithetic : {false, true}) {
    sim::MonteCarloOptions opts;
    opts.samples = 4096;
    opts.seed = 1234;
    opts.antithetic = antithetic;
    const auto first = sim::estimate_expectation(d, g, opts);
    const auto second = sim::estimate_expectation(d, g, opts);
    expect_identical(first, second,
                     antithetic ? "rerun (antithetic)" : "rerun");
  }
}

TEST(MonteCarloRerun, SerialAndAnyPoolSizeAgreeExactly) {
  const dist::Exponential d(1.3);
  const core::ReservationSequence seq({0.5, 1.25, 3.0, 7.0});
  const core::CostModel m{1.0, 1.0, 0.1};

  sim::MonteCarloOptions serial;
  serial.samples = 4096;
  serial.seed = 99;
  serial.parallel = false;
  const auto baseline = core::expected_cost_monte_carlo(seq, d, m, serial);

  for (const unsigned threads : {1u, 2u, 4u}) {
    sim::ThreadPool pool(threads);
    sim::MonteCarloOptions par = serial;
    par.parallel = true;
    par.pool = &pool;
    const auto got = core::expected_cost_monte_carlo(seq, d, m, par);
    expect_identical(baseline, got, "pool size");
    // And a second run on the same live pool (warm deques, different
    // steal pattern) must not perturb anything either.
    const auto again = core::expected_cost_monte_carlo(seq, d, m, par);
    expect_identical(baseline, again, "pool rerun");
  }
}

TEST(MonteCarloRerun, EvaluationPipelineRerunMatches) {
  // End to end through the cost evaluator used by the tables: two full
  // evaluations of the same (sequence, law, model, options) are identical.
  const dist::Uniform u(10.0, 20.0);
  const core::ReservationSequence seq({12.0, 16.0, 20.0});
  const core::CostModel m = core::CostModel::reservation_only();
  sim::MonteCarloOptions opts;
  opts.samples = 2000;
  opts.seed = 7;
  const auto a = core::expected_cost_monte_carlo(seq, u, m, opts);
  const auto b = core::expected_cost_monte_carlo(seq, u, m, opts);
  expect_identical(a, b, "pipeline");
  // The estimate must also be plausible: within a few standard errors of
  // the analytic value (common seed, so this is a fixed, non-flaky check).
  const double analytic = core::expected_cost_analytic(seq, u, m);
  EXPECT_NEAR(a.mean, analytic, 6.0 * a.std_error + 1e-12);
}
