// End-to-end telemetry for srv::EventLoop (COOKBOOK recipe 21): the
// byte-stable format_server_stats() serializer, the {"stats":true} verb
// answered inline by the loop thread, the one-wide-event-per-request
// invariant under a concurrent client harness with an injected
// deterministic clock (success, typed-error, and cache-hit paths), drop
// accounting when the access-log sink stalls, trace-context flow events in
// the flight recorder, and the obs-off guarantee that the access log does
// not exist. The serializer tests run everywhere; the socket tests are
// Linux-only like srv::EventLoop itself.

#include <gtest/gtest.h>

#include <string>

#include "obs/minijson.hpp"
#include "srv/eventloop.hpp"

namespace {

using sre::srv::ConnSnapshot;
using sre::srv::ServerStatsSnapshot;

// ------------------------------------------------- format_server_stats

TEST(SrvWideStats, EmptySnapshotPinsTheExactBytes) {
  const ServerStatsSnapshot snap;
  EXPECT_EQ(sre::srv::format_server_stats(snap),
            "{\"ok\":true,\"loop\":{\"open\":0,\"accepted\":0,\"closed\":0,"
            "\"overload_rejects\":0,\"framing_errors\":0,"
            "\"backpressure_pauses\":0,\"requests\":0,\"responses\":0,"
            "\"bytes_in\":0,\"bytes_out\":0},"
            "\"wide\":{\"written\":0,\"dropped\":0},"
            "\"rates\":{\"window_seconds\":0,\"requests_per_sec\":0,"
            "\"responses_per_sec\":0,\"bytes_in_per_sec\":0,"
            "\"bytes_out_per_sec\":0},\"conns\":[],\"service\":null}");
}

TEST(SrvWideStats, PopulatedSnapshotIsByteStable) {
  ServerStatsSnapshot snap;
  snap.loop.open = 1;
  snap.loop.accepted = 3;
  snap.loop.closed = 2;
  snap.loop.overload_rejects = 4;
  snap.loop.framing_errors = 5;
  snap.loop.backpressure_pauses = 6;
  snap.loop.requests = 7;
  snap.loop.responses = 8;
  snap.loop.bytes_in = 9;
  snap.loop.bytes_out = 10;
  snap.loop.wide_written = 11;
  snap.loop.wide_dropped = 12;
  snap.window_seconds = 0.5;
  snap.requests_per_sec = 2;
  snap.responses_per_sec = 2;
  snap.bytes_in_per_sec = 18;
  snap.bytes_out_per_sec = 20;
  snap.conns.push_back(ConnSnapshot{1, 9, 2, 1, true, 100, 9, 10});
  snap.service_stats_json = "{\"requests\":7}";
  const std::string expected =
      "{\"ok\":true,\"loop\":{\"open\":1,\"accepted\":3,\"closed\":2,"
      "\"overload_rejects\":4,\"framing_errors\":5,"
      "\"backpressure_pauses\":6,\"requests\":7,\"responses\":8,"
      "\"bytes_in\":9,\"bytes_out\":10},"
      "\"wide\":{\"written\":11,\"dropped\":12},"
      "\"rates\":{\"window_seconds\":0.5,\"requests_per_sec\":2,"
      "\"responses_per_sec\":2,\"bytes_in_per_sec\":18,"
      "\"bytes_out_per_sec\":20},"
      "\"conns\":[{\"id\":1,\"fd\":9,\"queued\":2,\"inflight\":1,"
      "\"paused\":true,\"backlog\":100,\"bytes_in\":9,\"bytes_out\":10}],"
      "\"service\":{\"requests\":7}}";
  EXPECT_EQ(sre::srv::format_server_stats(snap), expected);
  // Identical snapshots serialize identically: it is a schema, not a dump.
  EXPECT_EQ(sre::srv::format_server_stats(snap), expected);
  // The verb's output must parse with our own reader.
  const auto parsed = sre::obs::minijson::parse(expected);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_DOUBLE_EQ(parsed.value.find("loop")->find("requests")->number, 7.0);
}

}  // namespace

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "obs/wide.hpp"
#include "srv/protocol.hpp"
#include "srv/service.hpp"

namespace {

using sre::srv::EventLoop;
using sre::srv::EventLoopConfig;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;
namespace mj = sre::obs::minijson;
namespace wide = sre::obs::wide;

// -- client plumbing (same shape as test_srv_eventloop.cpp) ------------------

int connect_loopback(unsigned short port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Client {
  int fd = -1;
  std::string buf;

  explicit Client(unsigned short port) : fd(connect_loopback(port)) {}
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool ok() const { return fd >= 0; }
  bool send(std::string_view bytes) { return send_all(fd, bytes); }

  bool read_line(std::string& out) {
    for (;;) {
      const auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        out.assign(buf, 0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        return false;
      } else if (errno != EINTR) {
        return false;
      }
    }
  }
};

struct Harness {
  PlannerService service;
  EventLoop loop;
  std::thread thread;

  explicit Harness(ServiceConfig scfg = fast_config(),
                   EventLoopConfig ecfg = {})
      : service(scfg), loop(service, ecfg), thread([this] { loop.run(); }) {}

  ~Harness() { stop(); }

  void stop() {
    loop.request_stop();
    if (thread.joinable()) thread.join();
  }

  [[nodiscard]] unsigned short port() const { return loop.port(); }

  static ServiceConfig fast_config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 65536;
    return cfg;
  }
};

std::string request_line(const std::string& id, int variant = 0) {
  return "{\"id\":\"" + id + "\",\"dist\":\"exponential:lambda=" +
         std::to_string(1 + (variant % 7)) +
         "\",\"cost\":{\"alpha\":1,\"beta\":0,\"gamma\":0},"
         "\"solver\":\"refined-dp\",\"n\":64}\n";
}

std::atomic<std::uint64_t> g_ticks{0};

std::uint64_t fake_clock() {
  return g_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
}

struct ScopedClock {
  ScopedClock() {
    g_ticks.store(0, std::memory_order_relaxed);
    wide::set_clock(&fake_clock);
  }
  ~ScopedClock() { wide::set_clock(nullptr); }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "srv_wide_" + tag + ".jsonl";
}

double num(const mj::Value& v, const char* field) {
  const auto* f = v.find(field);
  EXPECT_NE(f, nullptr) << field;
  return f != nullptr ? f->number : -1.0;
}

// -- tests -------------------------------------------------------------------

TEST(SrvWideStats, StatsVerbIsAnsweredInlineAndParses) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.ok());
  std::string line;
  ASSERT_TRUE(c.send(request_line("warm", 1)));
  ASSERT_TRUE(c.read_line(line));

  ASSERT_TRUE(c.send("{\"stats\":true}\n"));
  ASSERT_TRUE(c.read_line(line));
  const auto parsed = mj::parse(line);
  ASSERT_TRUE(parsed.ok) << parsed.error << " in " << line;
  EXPECT_TRUE(parsed.value.find("ok")->boolean);
  const auto* loop = parsed.value.find("loop");
  ASSERT_NE(loop, nullptr);
  // The stats line itself counts: warm + stats.
  EXPECT_GE(num(*loop, "requests"), 2.0);
  EXPECT_GE(num(*loop, "accepted"), 1.0);
  EXPECT_DOUBLE_EQ(num(*loop, "open"), 1.0);  // this very connection
  ASSERT_NE(parsed.value.find("wide"), nullptr);
  const auto* conns = parsed.value.find("conns");
  ASSERT_NE(conns, nullptr);
  ASSERT_EQ(conns->array.size(), 1u);
  EXPECT_GE(num(conns->array[0], "bytes_in"), 1.0);
  // The service block is the planner's own stats document, not a copy of
  // the loop's counters.
  const auto* service = parsed.value.find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_NE(service->find("requests"), nullptr);
}

TEST(SrvWideLog, EveryRequestEmitsExactlyOneSchemaValidEvent) {
  if (!sre::obs::compiled_in()) {
    GTEST_SKIP() << "the access log does not exist under obs-off";
  }
  constexpr int kClients = 64;
  constexpr int kPerClient = 4;
  const std::string path = temp_path("every");
  {
    ScopedClock clock;  // deterministic stamps for the component invariants
    EventLoopConfig ecfg;
    ecfg.access_log = path;
    Harness h(Harness::fast_config(), ecfg);
    ASSERT_NE(h.loop.wide_sink(), nullptr);

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client(h.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        std::string burst;
        for (int j = 0; j < kPerClient; ++j) {
          const std::string id = std::to_string(c) + "-" + std::to_string(j);
          if (j == 2) {
            // A typed error (dist must be a string or object): still one
            // wide event, joinable by the recovered id.
            burst += "{\"id\":\"" + id + "\",\"dist\":12}\n";
          } else {
            burst += request_line(id, c + j);
          }
        }
        if (!client.send(burst)) {
          ++failures;
          return;
        }
        for (int j = 0; j < kPerClient; ++j) {
          std::string line;
          if (!client.read_line(line)) {
            ++failures;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);
    h.stop();
    EXPECT_EQ(h.loop.counters().wide_dropped, 0u);
  }  // EventLoop destruction drains the sink: the log is complete

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kClients) * kPerClient);
  std::map<std::string, int> seen;
  for (const auto& line : lines) {
    const auto parsed = mj::parse(line);
    ASSERT_TRUE(parsed.ok) << parsed.error << " in " << line;
    const auto& e = parsed.value;
    const std::string id = e.find("id")->string;
    ++seen[id];
    EXPECT_EQ(e.find("peer")->string.rfind("127.0.0.1:", 0), 0u) << line;
    const bool ok = e.find("ok")->boolean;
    const bool is_error = id.size() >= 2 && id.substr(id.size() - 2) == "-2";
    EXPECT_EQ(ok, !is_error) << line;
    if (is_error) {
      EXPECT_EQ(e.find("code")->string, "domain_error") << line;
    } else {
      EXPECT_EQ(e.find("code"), nullptr) << line;
    }
    // Component identity under the injected clock: the derived parts never
    // exceed the end-to-end total, and the raw stamps are monotone.
    EXPECT_LE(num(e, "queue_ns") + num(e, "solve_ns") + num(e, "write_ns"),
              num(e, "total_ns"))
        << line;
    const double stamps[] = {
        num(e, "accepted_ns"), num(e, "framed_ns"),  num(e, "admitted_ns"),
        num(e, "batched_ns"),  num(e, "solved_ns"),  num(e, "slotted_ns"),
        num(e, "flushed_ns")};
    for (int i = 1; i < 7; ++i) {
      EXPECT_LE(stamps[i - 1], stamps[i]) << "stamp " << i << " in " << line;
    }
    EXPECT_GT(num(e, "bytes_in"), 0.0) << line;
    EXPECT_GT(num(e, "bytes_out"), 0.0) << line;
  }
  // Exactly one event per request — no request unlogged, none double-logged.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kClients) * kPerClient);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << id;
  }
  std::remove(path.c_str());
}

TEST(SrvWideLog, StalledSinkShedsWithExactDropAccounting) {
  if (!sre::obs::compiled_in()) {
    GTEST_SKIP() << "the access log does not exist under obs-off";
  }
  constexpr int kRequests = 12;
  constexpr std::size_t kCapacity = 4;
  const std::string path = temp_path("stall");
  {
    EventLoopConfig ecfg;
    ecfg.access_log = path;
    ecfg.access_log_capacity = kCapacity;
    Harness h(Harness::fast_config(), ecfg);
    wide::Sink* sink = h.loop.wide_sink();
    ASSERT_NE(sink, nullptr);
    sink->set_paused(true);  // the "disk" stalls; serving must not

    Client c(h.port());
    ASSERT_TRUE(c.ok());
    std::string burst;
    for (int i = 0; i < kRequests; ++i) {
      burst += request_line(std::to_string(i), i);
    }
    ASSERT_TRUE(c.send(burst));
    for (int i = 0; i < kRequests; ++i) {
      std::string line;
      ASSERT_TRUE(c.read_line(line)) << i;  // every response still arrives
    }

    // Emission trails the response bytes by one loop iteration: wait for
    // the accounting to settle rather than sleeping blind.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sink->accepted() + sink->dropped() <
               static_cast<std::uint64_t>(kRequests) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The queue held exactly kCapacity lines; the rest were shed, counted,
    // and never blocked the loop.
    EXPECT_EQ(sink->accepted(), kCapacity);
    EXPECT_EQ(sink->dropped(), kRequests - kCapacity);
    EXPECT_EQ(h.loop.counters().wide_dropped, kRequests - kCapacity);
    sink->set_paused(false);
  }  // destruction drains the surviving lines
  EXPECT_EQ(read_lines(path).size(), kCapacity);
  std::remove(path.c_str());
}

TEST(SrvWideLog, TraceContextBecomesFlowEventsAndLogFields) {
  const std::string path = temp_path("trace");
  sre::obs::recorder::start();
  if (!sre::obs::recorder::armed()) {
    GTEST_SKIP() << "flight recorder compiled out";
  }
  {
    EventLoopConfig ecfg;
    ecfg.access_log = path;
    Harness h(Harness::fast_config(), ecfg);
    Client c(h.port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.send(
        "{\"id\":\"t1\",\"dist\":\"exponential:lambda=1\",\"alpha\":1,"
        "\"solver\":\"refined-dp\",\"n\":64,\"no_cache\":true,"
        "\"trace\":\"trace-abc\"}\n"));
    std::string line;
    ASSERT_TRUE(c.read_line(line));
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    h.stop();  // joins the loop thread: the 'f' flow event is published
  }
  sre::obs::recorder::stop();
  const std::string trace = sre::obs::recorder::trace_json();
  // One arrow chain across threads: start at classify, step at solve,
  // finish at flush, all under the shared srv.flow label.
  EXPECT_NE(trace.find("srv.flow"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ph\": \"t\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ph\": \"f\""), std::string::npos) << trace;

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"trace\":\"trace-abc\""), std::string::npos)
      << lines[0];
  std::remove(path.c_str());
}

TEST(SrvWideLog, NoSinkWithoutAPathAndNoneUnderObsOff) {
  const std::string path = temp_path("off");
  std::remove(path.c_str());
  {
    Harness plain;  // no access_log configured
    EXPECT_EQ(plain.loop.wide_sink(), nullptr);
  }
  EventLoopConfig ecfg;
  ecfg.access_log = path;
  {
    Harness h(Harness::fast_config(), ecfg);
    Client c(h.port());
    ASSERT_TRUE(c.ok());
    std::string line;
    ASSERT_TRUE(c.send(request_line("x", 1)));
    ASSERT_TRUE(c.read_line(line));
    if (sre::obs::compiled_in()) {
      EXPECT_NE(h.loop.wide_sink(), nullptr);
    } else {
      // obs-off: the sink never opens, whatever the config says.
      EXPECT_EQ(h.loop.wide_sink(), nullptr);
    }
  }
  if (sre::obs::compiled_in()) {
    EXPECT_EQ(read_lines(path).size(), 1u);
    std::remove(path.c_str());
  } else {
    // The access log is compiled out: the file must not even exist.
    EXPECT_FALSE(std::ifstream(path).good());
  }
}

}  // namespace

#else  // !__linux__

TEST(SrvWideLog, SkippedWithoutEpoll) {
  GTEST_SKIP() << "srv::EventLoop is Linux-only (epoll)";
}

#endif  // __linux__
