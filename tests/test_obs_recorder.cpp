// The obs::recorder flight recorder: concurrent emission (run under the
// tsan preset), drop accounting when a thread's ring fills, Chrome Trace
// Event JSON well-formedness, and per-tid begin/end balance.
//
// Each capture is scoped by RecorderCapture, which restores the default
// per-thread capacity and disarms on exit so tests cannot leak arming
// state into one another.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/minijson.hpp"
#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "sim/parallel.hpp"
#include "sim/thread_pool.hpp"

using namespace sre;
namespace rec = sre::obs::recorder;

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

/// Arms a capture for the test body; restores capacity and disarms on exit.
class RecorderCapture {
 public:
  explicit RecorderCapture(std::size_t capacity = kDefaultCapacity) {
    rec::set_thread_capacity(capacity);
    rec::start();
  }
  ~RecorderCapture() {
    rec::stop();
    rec::set_thread_capacity(kDefaultCapacity);
  }
};

/// Parses `json` and fails the test on malformed input.
obs::minijson::Value parse_trace(const std::string& json) {
  const auto parsed = obs::minijson::parse(json);
  EXPECT_TRUE(parsed.ok) << "trace JSON must parse: " << parsed.error
                         << " at byte " << parsed.offset;
  return parsed.value;
}

struct TraceShape {
  std::map<double, std::vector<std::string>> open_by_tid;  ///< post-replay
  std::map<double, std::size_t> begins_by_tid;
  std::map<double, std::size_t> ends_by_tid;
  std::size_t instants = 0;
  std::set<std::string> thread_names;
  std::set<std::string> labels;
  bool events_sorted_per_tid = true;
  bool balanced() const {
    for (const auto& [tid, stack] : open_by_tid) {
      if (!stack.empty()) return false;
    }
    for (const auto& [tid, begins] : begins_by_tid) {
      const auto it = ends_by_tid.find(tid);
      if (it == ends_by_tid.end() || it->second != begins) return false;
    }
    return true;
  }
};

/// Replays the traceEvents array, tracking B/E nesting per tid. Uses
/// EXPECT (not ASSERT) so it can be called from a value-returning helper;
/// malformed events are reported and skipped.
TraceShape replay(const obs::minijson::Value& doc) {
  TraceShape shape;
  const auto* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return shape;
  EXPECT_TRUE(events->is_array());
  std::map<double, double> last_ts;
  for (const auto& e : events->array) {
    const auto* ph = e.find("ph");
    const auto* tid = e.find("tid");
    EXPECT_NE(ph, nullptr);
    EXPECT_NE(tid, nullptr);
    if (ph == nullptr || tid == nullptr) continue;
    if (ph->string == "M") {
      const auto* kind = e.find("name");
      const auto* args = e.find("args");
      if (kind != nullptr && kind->string == "thread_name" &&
          args != nullptr) {
        if (const auto* name = args->find("name")) {
          shape.thread_names.insert(name->string);
        }
      }
      continue;
    }
    const auto* ts = e.find("ts");
    EXPECT_TRUE(ts != nullptr && ts->is_number())
        << "non-metadata events need a numeric ts";
    if (ts == nullptr || !ts->is_number()) continue;
    const auto [it, fresh] = last_ts.try_emplace(tid->number, ts->number);
    if (!fresh) {
      if (ts->number < it->second) shape.events_sorted_per_tid = false;
      it->second = ts->number;
    }
    if (ph->string == "B") {
      const auto* name = e.find("name");
      EXPECT_NE(name, nullptr);
      shape.labels.insert(name != nullptr ? name->string : "<unnamed>");
      shape.open_by_tid[tid->number].push_back(
          name != nullptr ? name->string : "<unnamed>");
      ++shape.begins_by_tid[tid->number];
    } else if (ph->string == "E") {
      auto& stack = shape.open_by_tid[tid->number];
      EXPECT_FALSE(stack.empty())
          << "E without matching B on tid " << tid->number;
      if (!stack.empty()) {
        // The serializer names E events after the matching B.
        if (const auto* name = e.find("name")) {
          EXPECT_EQ(name->string, stack.back());
        }
        stack.pop_back();
      }
      ++shape.ends_by_tid[tid->number];
    } else if (ph->string == "I") {
      ++shape.instants;
    } else {
      ADD_FAILURE() << "unexpected phase " << ph->string;
    }
  }
  return shape;
}

}  // namespace

TEST(RecorderSwitch, DisarmedByDefaultAndNoOpWhenCompiledOut) {
  EXPECT_FALSE(rec::armed());
  EXPECT_EQ(rec::emit_begin(1), 0u);
  if (!obs::compiled_in()) {
    rec::start();
    EXPECT_FALSE(rec::armed()) << "compiled-out recorder must not arm";
    // The empty skeleton must still be valid Chrome trace JSON.
    const auto doc = parse_trace(rec::trace_json());
    EXPECT_NE(doc.find("traceEvents"), nullptr);
    GTEST_SKIP() << "obs compiled out";
  }
  rec::start();
  EXPECT_TRUE(rec::armed());
  rec::stop();
  EXPECT_FALSE(rec::armed());
}

TEST(RecorderCaptureTest, SpansAndInstantsRoundTripThroughChromeTraceJson) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  RecorderCapture capture;
  rec::set_thread_name("recorder-test-main");

  obs::SpanStats& outer = obs::span_series("test.recorder.outer");
  obs::SpanStats& inner = obs::span_series("test.recorder.inner");
  const std::uint32_t marker = rec::intern_label("test.recorder.marker");
  for (int i = 0; i < 10; ++i) {
    obs::Span a(outer);
    rec::emit_instant(marker);
    obs::Span b(inner);
  }
  EXPECT_EQ(rec::dropped_events(), 0u);
  // 10 iterations x (2 spans -> 4 events + 1 instant).
  EXPECT_GE(rec::recorded_events(), 50u);

  const auto doc = parse_trace(rec::trace_json());
  const TraceShape shape = replay(doc);
  EXPECT_TRUE(shape.balanced());
  EXPECT_TRUE(shape.events_sorted_per_tid);
  EXPECT_EQ(shape.instants, 10u);
  EXPECT_TRUE(shape.labels.count("test.recorder.outer"));
  EXPECT_TRUE(shape.labels.count("test.recorder.inner"));
  EXPECT_TRUE(shape.thread_names.count("recorder-test-main"));
}

TEST(RecorderCaptureTest, EightThreadConcurrentEmitBalancesPerTid) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  RecorderCapture capture;

  obs::SpanStats& series = obs::span_series("test.recorder.race");
  const std::uint32_t marker = rec::intern_label("test.recorder.race_marker");
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&series, marker] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Span span(series);
        if (i % 16 == 0) rec::emit_instant(marker);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto doc = parse_trace(rec::trace_json());
  const TraceShape shape = replay(doc);
  EXPECT_TRUE(shape.balanced());
  EXPECT_TRUE(shape.events_sorted_per_tid);
  // Every spawned thread recorded its own full lane (default capacity holds
  // 2 * kPerThread span events plus the instants).
  std::size_t total_begins = 0;
  for (const auto& [tid, begins] : shape.begins_by_tid) total_begins += begins;
  EXPECT_EQ(total_begins, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(rec::dropped_events(), 0u);
}

TEST(RecorderCaptureTest, PoolTasksGetNamedLanesAndTaskBrackets) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  RecorderCapture capture;

  {
    sim::ThreadPool pool(4);
    obs::SpanStats& work = obs::span_series("test.recorder.pool_work");
    sim::parallel_for(pool, 0, 64, [&](std::size_t) { obs::Span span(work); });
    // The pool joins its workers here; each has named its trace lane by
    // then (on a loaded host the caller may help-run every task before a
    // worker is even scheduled, so serializing earlier would race).
  }

  const auto doc = parse_trace(rec::trace_json());
  const TraceShape shape = replay(doc);
  EXPECT_TRUE(shape.balanced());
  EXPECT_TRUE(shape.labels.count("sim.pool.task"));
  EXPECT_TRUE(shape.labels.count("test.recorder.pool_work"));
  bool worker_named = false;
  for (const auto& name : shape.thread_names) {
    if (name.rfind("sim.pool.worker-", 0) == 0) worker_named = true;
  }
  EXPECT_TRUE(worker_named) << "pool workers must label their trace lanes";
}

TEST(RecorderCaptureTest, FullRingDropsNewEventsAndCountsThem) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  constexpr std::size_t kCapacity = 64;
  constexpr int kInstants = 500;
  RecorderCapture capture(kCapacity);

  const std::uint32_t marker = rec::intern_label("test.recorder.flood");
  std::uint64_t recorded = 0, dropped = 0;
  // A fresh thread adopts the shrunken capacity on its first event.
  std::thread flooder([&] {
    for (int i = 0; i < kInstants; ++i) rec::emit_instant(marker);
    recorded = rec::recorded_events();
    dropped = rec::dropped_events();
  });
  flooder.join();

  EXPECT_EQ(recorded, kCapacity);
  EXPECT_EQ(dropped, kInstants - kCapacity);
  const TraceShape shape = replay(parse_trace(rec::trace_json()));
  EXPECT_EQ(shape.instants, kCapacity);
}

TEST(RecorderCaptureTest, SpanBeginReservesItsEndSoWrapStaysBalanced) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  constexpr std::size_t kCapacity = 32;
  RecorderCapture capture(kCapacity);

  obs::SpanStats& series = obs::span_series("test.recorder.wrap_span");
  std::thread flooder([&series] {
    for (int i = 0; i < 200; ++i) {
      obs::Span outer(series);
      obs::Span inner(series);
    }
  });
  flooder.join();

  EXPECT_GT(rec::dropped_events(), 0u);
  const TraceShape shape = replay(parse_trace(rec::trace_json()));
  EXPECT_TRUE(shape.balanced())
      << "a dropped begin must also suppress its end";
}

TEST(RecorderCaptureTest, SpanOpenAcrossStopIsClosedSynthetically) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  RecorderCapture capture;
  obs::SpanStats& series = obs::span_series("test.recorder.open_at_stop");
  {
    obs::Span span(series);
    rec::stop();
    // Serialize while the span is still open: the serializer must emit a
    // synthetic E so the stream balances.
    const TraceShape shape = replay(parse_trace(rec::trace_json()));
    EXPECT_TRUE(shape.balanced());
    EXPECT_TRUE(shape.labels.count("test.recorder.open_at_stop"));
  }
}

TEST(RecorderCaptureTest, TokenFromPreviousCaptureIsVoid) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  rec::set_thread_capacity(kDefaultCapacity);
  rec::start();
  const std::uint32_t label = rec::intern_label("test.recorder.stale");
  const std::uint64_t token = rec::emit_begin(label);
  EXPECT_NE(token, 0u);
  rec::stop();
  rec::start();  // new capture epoch
  rec::emit_end(token);  // must not inject an unmatched E
  const TraceShape shape = replay(parse_trace(rec::trace_json()));
  EXPECT_TRUE(shape.balanced());
  EXPECT_EQ(shape.begins_by_tid.size(), 0u);
  rec::stop();
}

TEST(RecorderCaptureTest, StopAndWriteProducesAParsableFile) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  RecorderCapture capture;
  obs::SpanStats& series = obs::span_series("test.recorder.file");
  { obs::Span span(series); }

  const std::string path = ::testing::TempDir() + "sre_recorder_trace.json";
  ASSERT_TRUE(rec::stop_and_write(path));
  EXPECT_FALSE(rec::armed());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const TraceShape shape = replay(parse_trace(text.str()));
  EXPECT_TRUE(shape.balanced());
  std::remove(path.c_str());
}

TEST(RecorderOverhead, DisarmedSpansDoNotRecordEvents) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::ScopedEnable on(true);
  // No capture armed: spans must aggregate into SpanStats as usual but add
  // nothing to the recorder.
  ASSERT_FALSE(rec::armed());
  obs::SpanStats& series = obs::span_series("test.recorder.disarmed");
  const std::uint64_t count0 = series.count();
  for (int i = 0; i < 100; ++i) obs::Span span(series);
  EXPECT_EQ(series.count(), count0 + 100);
}
