// The discrete-event platform simulator must agree with the closed-form cost
// expressions it was built independently of.

#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/sequence.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "sim/rng.hpp"

using namespace sre::sim;

TEST(EventSim, SingleAttemptSuccess) {
  const PlatformSimulator sim({5.0, 10.0}, {1.0, 0.5, 0.25});
  const JobOutcome out = sim.run_job(3.0);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_DOUBLE_EQ(out.total_cost, 5.0 + 1.5 + 0.25);
  EXPECT_DOUBLE_EQ(out.wasted_time, 0.0);
  EXPECT_DOUBLE_EQ(out.turnaround, 3.0);
}

TEST(EventSim, RetryAccumulatesWaste) {
  const PlatformSimulator sim({5.0, 10.0}, {1.0, 0.5, 0.25});
  const JobOutcome out = sim.run_job(7.0);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.attempts, 2u);
  // Attempt 1: 5 + 2.5 + 0.25; attempt 2: 10 + 3.5 + 0.25.
  EXPECT_DOUBLE_EQ(out.total_cost, 7.75 + 13.75);
  EXPECT_DOUBLE_EQ(out.wasted_time, 5.0);   // the burnt first reservation
  EXPECT_DOUBLE_EQ(out.turnaround, 5.0 + 7.0);
}

TEST(EventSim, UncoveredJobReported) {
  const PlatformSimulator sim({5.0}, {1.0, 0.0, 0.0});
  const JobOutcome out = sim.run_job(6.0);
  EXPECT_FALSE(out.completed);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_DOUBLE_EQ(out.total_cost, 5.0);
}

TEST(EventSim, TraceRecordsEveryAttempt) {
  const PlatformSimulator sim({2.0, 4.0, 8.0}, {1.0, 1.0, 0.0});
  std::vector<AttemptRecord> trace;
  const JobOutcome out = sim.run_job(5.0, &trace);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_FALSE(trace[0].success);
  EXPECT_FALSE(trace[1].success);
  EXPECT_TRUE(trace[2].success);
  EXPECT_DOUBLE_EQ(trace[0].used, 2.0);
  EXPECT_DOUBLE_EQ(trace[1].used, 4.0);
  EXPECT_DOUBLE_EQ(trace[2].used, 5.0);
  EXPECT_EQ(out.attempts, 3u);
}

TEST(EventSim, WaitTimeModelAffectsTurnaroundOnly) {
  PlatformSimulator sim({2.0, 4.0}, {1.0, 0.0, 0.0});
  const JobOutcome before = sim.run_job(3.0);
  sim.set_wait_time_model([](double r) { return 0.5 * r + 1.0; });
  const JobOutcome after = sim.run_job(3.0);
  EXPECT_DOUBLE_EQ(before.total_cost, after.total_cost);
  // Waits: (0.5*2+1) + (0.5*4+1) = 5; executions: 2 + 3 = 5.
  EXPECT_DOUBLE_EQ(after.turnaround, 10.0);
  EXPECT_DOUBLE_EQ(before.turnaround, 5.0);
}

TEST(EventSim, AgreesWithEq2ForRandomJobs) {
  // Independent implementations: the simulator vs ReservationSequence's
  // Eq. (2) evaluation.
  const std::vector<double> res = {0.8, 1.7, 3.9, 8.8, 20.0};
  for (const sre::core::CostModel m :
       {sre::core::CostModel{1.0, 0.0, 0.0}, sre::core::CostModel{0.95, 1.0, 1.05},
        sre::core::CostModel{2.0, 0.25, 0.5}}) {
    const PlatformSimulator sim(res, {m.alpha, m.beta, m.gamma});
    const sre::core::ReservationSequence seq(res);
    const sre::dist::Exponential e(0.7);
    Rng rng = make_rng(19);
    for (int i = 0; i < 2000; ++i) {
      const double t = e.sample(rng);
      if (t > res.back()) continue;  // simulator has no implicit tail
      EXPECT_NEAR(sim.run_job(t).total_cost, seq.cost_for(t, m), 1e-10)
          << "t=" << t;
    }
  }
}

TEST(EventSim, BatchMeanMatchesExpectedCost) {
  // Batch-simulated mean cost ~ Eq. (4) for a covering sequence.
  const sre::dist::Exponential e(1.0);
  std::vector<double> res{1.0};
  while (e.sf(res.back()) > 1e-12) res.push_back(res.back() * 2.0);
  const sre::core::CostModel m{1.0, 0.5, 0.1};
  const PlatformSimulator sim(res, {m.alpha, m.beta, m.gamma});
  const auto stats = sim.run_batch(e, 50000, 23);
  EXPECT_EQ(stats.jobs, 50000u);
  EXPECT_EQ(stats.incomplete, 0u);
  const double analytic = sre::core::expected_cost_analytic(
      sre::core::ReservationSequence(res), e, m);
  EXPECT_NEAR(stats.mean_cost, analytic, 0.02 * analytic);
  EXPECT_GE(stats.max_cost, stats.mean_cost);
  EXPECT_GE(stats.mean_attempts, 1.0);
}

TEST(EventSim, BatchDeterministicForSeed) {
  const sre::dist::Exponential e(1.0);
  const PlatformSimulator sim({1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
                              {1.0, 0.0, 0.0});
  const auto a = sim.run_batch(e, 1000, 5);
  const auto b = sim.run_batch(e, 1000, 5);
  EXPECT_DOUBLE_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.incomplete, b.incomplete);
}
