// srv:: canonical request keys — the stability guarantee behind the plan
// cache (CONTRIBUTING.md "Request-key stability"). Two requests that are
// numerically the same query must produce byte-identical keys: -0.0
// normalizes to 0.0, spec-string and (name, params) forms agree, parameter
// order is irrelevant (ParamMap is ordered), solver aliases fold, and
// knob-insensitive solvers omit the knobs. NaN anywhere is a typed
// kDomainError *before* hashing, so a poisoned key can never enter the
// cache.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/cost_model.hpp"
#include "dist/factory.hpp"
#include "srv/request.hpp"
#include "stats/canonical.hpp"
#include "stats/error.hpp"

namespace {

using sre::ErrorCode;
using sre::ScenarioError;
using sre::core::CostModel;
using sre::stats::canonical_key_double;

TEST(CanonicalKeyDouble, NegativeZeroCollapses) {
  EXPECT_EQ(canonical_key_double(-0.0, "x"), canonical_key_double(0.0, "x"));
  EXPECT_EQ(canonical_key_double(-0.0, "x"), "0");
}

TEST(CanonicalKeyDouble, IntegralValuesPrintBare) {
  EXPECT_EQ(canonical_key_double(1.0, "x"), "1");
  EXPECT_EQ(canonical_key_double(42.0, "x"), "42");
}

TEST(CanonicalKeyDouble, RoundTripsShortest) {
  EXPECT_EQ(canonical_key_double(0.95, "x"), "0.95");
  EXPECT_EQ(canonical_key_double(1e-7, "x"), "1e-07");
}

TEST(CanonicalKeyDouble, NonFiniteThrowsDomainError) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    try {
      (void)canonical_key_double(bad, "alpha");
      FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDomainError);
      EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos)
          << "message should name the offending field";
    }
  }
}

TEST(CostModelKey, NegativeZeroGammaAliases) {
  const CostModel a{1.0, 0.0, 0.0};
  const CostModel b{1.0, -0.0, -0.0};
  EXPECT_EQ(a.to_key(), b.to_key());
  EXPECT_EQ(a.to_key(), "cost(alpha=1,beta=0,gamma=0)");
}

TEST(CostModelKey, NanThrowsBeforeHashing) {
  CostModel m{1.0, 1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)m.to_key(), ScenarioError);
}

TEST(DistKey, AllPaperDistributionsHaveStableKeys) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    const std::string key = inst.dist->to_key();
    EXPECT_FALSE(key.empty()) << inst.label;
    // Keys must be reproducible from a second call (no hidden state).
    EXPECT_EQ(key, inst.dist->to_key()) << inst.label;
  }
}

TEST(DistKey, SpecAndParamFormsAgree) {
  sre::srv::PlanRequest spec_form;
  spec_form.dist_spec = "lognormal:mu=3,sigma=0.5";
  spec_form.model = {1.0, 1.0, 0.0};

  sre::srv::PlanRequest param_form;
  param_form.dist_name = "lognormal";
  param_form.dist_params = {{"sigma", 0.5}, {"mu", 3.0}};  // reversed order
  param_form.model = {1.0, 1.0, 0.0};

  const auto a = sre::srv::prepare(spec_form);
  const auto b = sre::srv::prepare(param_form);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.key_hash, b.key_hash);
}

TEST(SolverKey, AliasesFold) {
  EXPECT_EQ(sre::srv::solver_key("bf", 500, 1e-7),
            sre::srv::solver_key("brute-force", 500, 1e-7));
  EXPECT_EQ(sre::srv::solver_key("equal-prob", 500, 1e-7),
            sre::srv::solver_key("Equal-Probability", 500, 1e-7));
}

TEST(SolverKey, KnobInsensitiveSolversOmitKnobs) {
  // Moment heuristics ignore n / epsilon, so different knob values must
  // still share one cache entry.
  EXPECT_EQ(sre::srv::solver_key("mean-doubling", 100, 1e-3),
            sre::srv::solver_key("mean-doubling", 5000, 1e-9));
  EXPECT_EQ(sre::srv::solver_key("mean-doubling", 100, 1e-3),
            "solver(name=mean-doubling)");
  // Knob-sensitive solvers must not.
  EXPECT_NE(sre::srv::solver_key("refined-dp", 100, 1e-3),
            sre::srv::solver_key("refined-dp", 5000, 1e-3));
}

TEST(SolverKey, UnknownSolverThrows) {
  try {
    (void)sre::srv::solver_key("definitely-not-a-solver", 500, 1e-7);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDomainError);
  }
}

TEST(RequestKey, CarriesVersionPrefix) {
  sre::srv::PlanRequest req;
  req.dist_spec = "exponential:lambda=1";
  req.model = CostModel::reservation_only();
  const auto prep = sre::srv::prepare(req);
  EXPECT_EQ(prep.key.rfind("v1|", 0), 0u) << prep.key;
}

TEST(RequestKey, Fnv1a64MatchesReferenceVector) {
  // FNV-1a 64-bit test vectors; the hash must stay platform-stable because
  // it selects the cache shard and seeds the fault stream of a key.
  EXPECT_EQ(sre::srv::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(sre::srv::fnv1a64("a"), 12638187200555641996ull);
}

}  // namespace
