// Properties of the Eq. (11) optimality recurrence.

#include "core/recurrence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"

using namespace sre::core;

TEST(Recurrence, ExponentialClosedForm) {
  // For Exp(lambda) under RESERVATIONONLY, Eq. (11) reads
  // t_i = e^{lambda (t_{i-1} - t_{i-2})} / lambda.
  // t1 = 0.8 sits safely inside the numerically-valid basin; the exact
  // optimum 0.74219 is the basin's boundary, where the doubly-exponential
  // error growth of the recurrence makes long orbits collapse in double
  // precision (cf. the gaps in Fig. 3a).
  const double lambda = 1.0;
  const sre::dist::Exponential e(lambda);
  const double t1 = 0.8;
  const auto res = sequence_from_t1(e, CostModel::reservation_only(), t1);
  ASSERT_TRUE(res.valid);
  const auto& t = res.sequence.values();
  ASSERT_GE(t.size(), 4u);
  EXPECT_NEAR(t[1], std::exp(lambda * t1) / lambda, 1e-9);
  EXPECT_NEAR(t[2], std::exp(lambda * (t[1] - t[0])) / lambda, 1e-9);
  EXPECT_NEAR(t[3], std::exp(lambda * (t[2] - t[1])) / lambda, 1e-9);
}

TEST(Recurrence, LambdaScaling) {
  // Proposition 2: the Exp(lambda) sequence is the Exp(1) sequence / lambda.
  const sre::dist::Exponential e1(1.0);
  const sre::dist::Exponential e4(4.0);
  const CostModel m = CostModel::reservation_only();
  const auto r1 = sequence_from_t1(e1, m, 0.8);
  const auto r4 = sequence_from_t1(e4, m, 0.8 / 4.0);
  ASSERT_TRUE(r1.valid && r4.valid);
  const std::size_t n = std::min(r1.sequence.size(), r4.sequence.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r4.sequence[i], r1.sequence[i] / 4.0, 1e-8 * r1.sequence[i])
        << i;
  }
}

TEST(Recurrence, SatisfiesStationarityEquation) {
  // Every generated triple must satisfy Eq. (9):
  // alpha t_{i+1} + beta t_i + gamma
  //   = alpha (1-F(t_{i-1}))/f(t_i) + beta (1-F(t_i))/f(t_i).
  const auto inst = sre::dist::paper_distribution("Lognormal");
  ASSERT_TRUE(inst.has_value());
  const auto& d = *inst->dist;
  const CostModel m = CostModel::reservation_only();
  // The paper's brute-force t1 for this law (Table 3).
  const auto res = sequence_from_t1(d, m, 30.64);
  const auto& t = res.sequence.values();
  ASSERT_GE(t.size(), 3u);
  for (std::size_t i = 1; i + 1 < std::min<std::size_t>(t.size(), 8); ++i) {
    const double lhs = m.alpha * t[i + 1] + m.beta * t[i] + m.gamma;
    const double rhs = m.alpha * d.sf(t[i - 1]) / d.pdf(t[i]) +
                       m.beta * d.sf(t[i]) / d.pdf(t[i]);
    EXPECT_NEAR(lhs, rhs, 1e-6 * std::fabs(rhs)) << "i=" << i;
  }
}

TEST(Recurrence, InvalidT1IsFlagged) {
  // For Exp(1), t1 = 0.5 lies below the valid basin: the orbit rises, turns
  // around while substantial tail mass remains, and must be discarded.
  const sre::dist::Exponential e(1.0);
  const auto res = sequence_from_t1(e, CostModel::reservation_only(), 0.5);
  EXPECT_FALSE(res.valid);
  EXPECT_TRUE(res.violation_index.has_value());
}

TEST(Recurrence, HugeT1AloneCoversAndIsValid) {
  // t1 = 40 already covers Exp(1) far past the coverage threshold, so the
  // single-element sequence is legitimate.
  const sre::dist::Exponential e(1.0);
  const auto res = sequence_from_t1(e, CostModel::reservation_only(), 40.0);
  EXPECT_TRUE(res.valid);
  EXPECT_EQ(res.sequence.size(), 1u);
}

TEST(Recurrence, NonPositiveT1Rejected) {
  const sre::dist::Exponential e(1.0);
  EXPECT_FALSE(sequence_from_t1(e, CostModel::reservation_only(), 0.0).valid);
  EXPECT_FALSE(sequence_from_t1(e, CostModel::reservation_only(), -1.0).valid);
  EXPECT_FALSE(
      sequence_from_t1(e, CostModel::reservation_only(), std::nan("")).valid);
}

TEST(Recurrence, BoundedSupportEndsAtUpper) {
  const sre::dist::Uniform u(10.0, 20.0);
  // Any t1 >= b collapses to the single reservation (b).
  const auto res = sequence_from_t1(u, CostModel::reservation_only(), 25.0);
  ASSERT_TRUE(res.valid);
  ASSERT_EQ(res.sequence.size(), 1u);
  EXPECT_DOUBLE_EQ(res.sequence.first(), 20.0);
}

TEST(Recurrence, BoundedSupportIntermediateT1) {
  // Uniform, alpha=1, beta=gamma=0, t1 in (a,b): Eq. (11) gives
  // t2 = (1 - F(t0)) / f(t1) = 1 / (1/(b-a)) = b - a + ... with t0=0 and
  // F(t0)=0: t2 = b - a = 10 < t1? For t1 > 10 the recurrence value
  // 10 <= t1 is non-increasing => flagged invalid; brute force must then
  // discard such candidates.
  const sre::dist::Uniform u(10.0, 20.0);
  const auto res = sequence_from_t1(u, CostModel::reservation_only(), 15.0);
  EXPECT_FALSE(res.valid);
}

TEST(Recurrence, CoverageOfGeneratedSequences) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    // Start at the median: a sane, always-interior t1.
    const double t1 = inst.dist->median();
    const auto res =
        sequence_from_t1(*inst.dist, CostModel::reservation_only(), t1);
    if (res.valid) {
      EXPECT_TRUE(res.sequence.covers_distribution(*inst.dist, 1e-10))
          << inst.label;
    }
  }
}

TEST(Recurrence, StrictlyIncreasingWhenValid) {
  const sre::dist::LogNormal d(3.0, 0.5);
  const auto res = sequence_from_t1(d, CostModel::reservation_only(), 30.0);
  ASSERT_TRUE(res.valid);
  const auto& t = res.sequence.values();
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]) << i;
}
