#include "core/strategy_report.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/expected_cost.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/uniform.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre::core;

namespace {

ReservationSequence covering_doubling(const sre::dist::Distribution& d) {
  std::vector<double> v{d.mean()};
  const auto s = d.support();
  if (s.bounded()) {
    if (v.back() < s.upper) v.push_back(s.upper);
  } else {
    while (d.sf(v.back()) > 1e-13) v.push_back(v.back() * 2.0);
  }
  return ReservationSequence(std::move(v));
}

}  // namespace

TEST(StrategyReport, ExponentialHandChecks) {
  // S = (1, 2, 4, ...) on Exp(1), RESERVATIONONLY.
  const sre::dist::Exponential e(1.0);
  const auto seq = covering_doubling(e);
  const auto report = analyze_strategy(seq, e, CostModel::reservation_only());
  // P(1 attempt) = 1 - e^{-1}; P(2) = e^{-1} - e^{-2}; ...
  ASSERT_GE(report.attempts_pmf.size(), 3u);
  EXPECT_NEAR(report.attempts_pmf[0], 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(report.attempts_pmf[1], std::exp(-1.0) - std::exp(-2.0), 1e-12);
  // E[attempts] = 1 + sum_i sf(t_i) = 1 + e^{-1} + e^{-2} + e^{-4} + ...
  double expect_attempts = 1.0;
  for (const double t : seq.values()) expect_attempts += std::exp(-t);
  EXPECT_NEAR(report.expected_attempts, expect_attempts, 1e-9);
  // E[waste] = sum_i t_i sf(t_i).
  double expect_waste = 0.0;
  for (const double t : seq.values()) expect_waste += t * std::exp(-t);
  EXPECT_NEAR(report.expected_waste, expect_waste, 1e-9);
}

TEST(StrategyReport, PmfSumsToOne) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    const auto seq = covering_doubling(*inst.dist);
    const auto report =
        analyze_strategy(seq, *inst.dist, CostModel{1.0, 0.5, 0.1});
    double total = 0.0;
    for (const double p : report.attempts_pmf) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << inst.label;
  }
}

TEST(StrategyReport, MatchesMonteCarlo) {
  const auto inst = sre::dist::paper_distribution("Lognormal");
  const auto& d = *inst->dist;
  const CostModel m{1.0, 0.5, 0.25};
  const auto seq = covering_doubling(d);
  const auto report = analyze_strategy(seq, d, m);

  sre::sim::Rng rng = sre::sim::make_rng(3);
  sre::stats::OnlineMoments cost, attempts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    cost.add(seq.cost_for(x, m));
    attempts.add(static_cast<double>(seq.attempts_for(x)));
  }
  EXPECT_NEAR(report.expected_cost, cost.mean(), 6.0 * cost.standard_error());
  EXPECT_NEAR(report.cost_stddev, cost.stddev(), 0.05 * cost.stddev());
  EXPECT_NEAR(report.expected_attempts, attempts.mean(),
              6.0 * attempts.standard_error());
}

TEST(StrategyReport, QuantilesMatchEmpirical) {
  const sre::dist::Exponential e(1.0);
  const CostModel m{1.0, 0.5, 0.0};
  const auto seq = covering_doubling(e);
  ReportOptions opts;
  opts.quantiles = {0.25, 0.5, 0.9};
  const auto report = analyze_strategy(seq, e, m, opts);

  std::vector<double> costs;
  sre::sim::Rng rng = sre::sim::make_rng(10);
  for (int i = 0; i < 200000; ++i) costs.push_back(seq.cost_for(e.sample(rng), m));
  const auto emp = sre::stats::empirical_quantiles(
      std::move(costs), std::vector<double>{0.25, 0.5, 0.9});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(report.cost_quantiles[i].second, emp[i],
                0.03 * (1.0 + emp[i]))
        << "p=" << report.cost_quantiles[i].first;
  }
}

TEST(StrategyReport, CostQuantileIsMonotone) {
  const sre::dist::Exponential e(1.0);
  const auto seq = covering_doubling(e);
  const CostModel m{1.0, 1.0, 0.5};
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = cost_quantile(seq, e, m, p);
    EXPECT_GE(q, prev) << p;
    prev = q;
  }
}

TEST(StrategyReport, SingleReservationHasZeroWasteAndOneAttempt) {
  const sre::dist::Uniform u(10.0, 20.0);
  const ReservationSequence seq({20.0});
  const auto report = analyze_strategy(seq, u, CostModel::reservation_only());
  EXPECT_NEAR(report.expected_attempts, 1.0, 1e-12);
  EXPECT_NEAR(report.expected_waste, 0.0, 1e-12);
  ASSERT_EQ(report.attempts_pmf.size(), 1u);
  EXPECT_NEAR(report.attempts_pmf[0], 1.0, 1e-12);
  // Deterministic cost 20 => zero spread.
  EXPECT_NEAR(report.cost_stddev, 0.0, 1e-9);
}

TEST(StrategyReport, RiskierPlansHaveWiderSpread) {
  // A plan with a tiny first reservation retries often: same-ish mean
  // regime but a larger attempt count and waste than a well-placed one.
  const sre::dist::Exponential e(1.0);
  const CostModel m = CostModel::reservation_only();
  const ReservationSequence timid({0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4,
                                   12.8, 25.6, 51.2});
  const ReservationSequence bold({1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  const auto r_timid = analyze_strategy(timid, e, m);
  const auto r_bold = analyze_strategy(bold, e, m);
  EXPECT_GT(r_timid.expected_attempts, r_bold.expected_attempts);
}
