// Property test for the Theorem 1 closed form (Eq. 4): the production
// evaluator (compensated summation, forward order) must agree with an
// independent reference (long-double partial sums accumulated in reverse)
// to 1e-9 relative on randomized seeded sequences, for all nine Table 1
// distributions and the paper's cost-model corners -- RESERVATIONONLY
// (beta = gamma = 0) and the paid-runtime models.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/expected_cost.hpp"
#include "dist/factory.hpp"

using namespace sre;
using core::CostModel;
using core::ReservationSequence;

namespace {

/// Direct Eq. (4) evaluation: E(S) = beta E[X] +
/// sum_{i>=0} (alpha t_{i+1} + beta t_i + gamma) P(X > t_i), with the same
/// term enumeration as the production evaluator (stored elements, then the
/// implicit doubling tail, same stopping rules) but an independent
/// accumulation: every partial term is materialized and summed back-to-front
/// in long double, so the only thing shared with the implementation under
/// test is the series definition itself.
double reference_expected_cost(const ReservationSequence& seq,
                               const dist::Distribution& d, const CostModel& m,
                               const core::AnalyticOptions& opts = {}) {
  std::vector<long double> terms;
  double prev = 0.0;
  double sf_prev = d.sf(0.0);
  std::size_t n_terms = 0;
  const auto push_term = [&](double next) {
    terms.push_back(
        (static_cast<long double>(m.alpha) * next +
         static_cast<long double>(m.beta) * prev + m.gamma) *
        sf_prev);
    prev = next;
    sf_prev = d.sf(next);
    ++n_terms;
  };
  for (const double v : seq.values()) {
    push_term(v);
    if (sf_prev <= opts.tail_sf_tol || n_terms >= opts.max_terms) break;
  }
  while (sf_prev > opts.tail_sf_tol && n_terms < opts.max_terms) {
    push_term(prev * 2.0);
  }
  long double sum = 0.0L;
  for (auto it = terms.rbegin(); it != terms.rend(); ++it) sum += *it;
  sum += static_cast<long double>(m.beta) * d.mean();
  return static_cast<double>(sum);
}

/// A random strictly increasing positive sequence scaled to the law's size:
/// first element near the q-th quantile for random small q, then 3..24
/// multiplicative steps. Deliberately does NOT always cover the support, so
/// the implicit doubling tail is exercised too.
ReservationSequence random_sequence(const dist::Distribution& d,
                                    std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u01(0.05, 0.6);
  std::uniform_int_distribution<int> len(3, 24);
  std::uniform_real_distribution<double> step(1.05, 1.9);
  const dist::Support sup = d.support();
  double t = d.quantile(u01(rng));
  if (!(t > 0.0) || !std::isfinite(t)) t = 0.5 * d.mean();
  std::vector<double> values;
  const int n = len(rng);
  for (int i = 0; i < n; ++i) {
    if (sup.bounded() && t >= sup.upper) {
      t = sup.upper;
      if (!values.empty() && values.back() >= t) break;
      values.push_back(t);
      break;
    }
    values.push_back(t);
    t *= step(rng);
  }
  return ReservationSequence(std::move(values));
}

const std::vector<std::pair<const char*, CostModel>>& cost_models() {
  static const std::vector<std::pair<const char*, CostModel>> models = {
      {"ReservationOnly", CostModel::reservation_only()},  // beta=gamma=0
      {"PaidRuntime", {1.0, 1.0, 0.0}},
      {"WithOverhead", {1.0, 1.0, 0.1}},
      {"HpcLike", {2.0, 1.0, 0.5}},
  };
  return models;
}

}  // namespace

TEST(Theorem1Property, ClosedFormMatchesDirectPartialSums) {
  std::mt19937_64 rng(0x5eedc0de);
  constexpr int kSequencesPerCase = 8;
  for (const auto& inst : dist::paper_distributions()) {
    for (const auto& [model_name, m] : cost_models()) {
      for (int rep = 0; rep < kSequencesPerCase; ++rep) {
        const ReservationSequence seq = random_sequence(*inst.dist, rng);
        ASSERT_FALSE(seq.empty()) << inst.label;
        const double got = core::expected_cost_analytic(seq, *inst.dist, m);
        const double want = reference_expected_cost(seq, *inst.dist, m);
        ASSERT_TRUE(std::isfinite(got)) << inst.label << "/" << model_name;
        EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
            << inst.label << "/" << model_name << " rep " << rep
            << " t1=" << seq.first() << " len=" << seq.size();
      }
    }
  }
}

TEST(Theorem1Property, SingleElementSequences) {
  // The smallest stored sequence: one reservation; everything past it is the
  // implicit doubling tail.
  std::mt19937_64 rng(0xfeedbeef);
  std::uniform_real_distribution<double> u01(0.1, 0.95);
  for (const auto& inst : dist::paper_distributions()) {
    for (const auto& [model_name, m] : cost_models()) {
      const double t1 = inst.dist->quantile(u01(rng));
      if (!(t1 > 0.0) || !std::isfinite(t1)) continue;
      const ReservationSequence seq({t1});
      const double got = core::expected_cost_analytic(seq, *inst.dist, m);
      const double want = reference_expected_cost(seq, *inst.dist, m);
      EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
          << inst.label << "/" << model_name << " t1=" << t1;
    }
  }
}

TEST(Theorem1Property, ReservationOnlyDropsPaidRuntimeTerms) {
  // Under RESERVATIONONLY the beta terms vanish: E(S) with {1, b, g} minus
  // E(S) with {1, 0, g} must equal beta * (E[X] + sum t_i P(X > t_i)), which
  // the reference computes directly. Spot-check via the linearity of Eq. (4)
  // in beta: E is affine in each cost parameter.
  std::mt19937_64 rng(0xabcd1234);
  for (const auto& inst : dist::paper_distributions()) {
    const ReservationSequence seq = random_sequence(*inst.dist, rng);
    const CostModel with_beta{1.0, 2.0, 0.1};
    const CostModel no_beta{1.0, 0.0, 0.1};
    const CostModel unit_beta{1.0, 1.0, 0.1};
    const double e2 = core::expected_cost_analytic(seq, *inst.dist, with_beta);
    const double e0 = core::expected_cost_analytic(seq, *inst.dist, no_beta);
    const double e1 = core::expected_cost_analytic(seq, *inst.dist, unit_beta);
    // Affine in beta: e(beta=2) - e(beta=0) == 2 * (e(beta=1) - e(beta=0)).
    EXPECT_NEAR(e2 - e0, 2.0 * (e1 - e0),
                1e-9 * std::max(1.0, std::fabs(e2)))
        << inst.label;
  }
}
