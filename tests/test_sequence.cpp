#include "core/sequence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/uniform.hpp"

using sre::core::CostModel;
using sre::core::ReservationSequence;
using sre::core::SequenceCostEvaluator;

TEST(Sequence, TryCreateValidation) {
  EXPECT_TRUE(ReservationSequence::try_create({1.0, 2.0, 3.0}).has_value());
  EXPECT_FALSE(ReservationSequence::try_create({}).has_value());
  EXPECT_FALSE(ReservationSequence::try_create({1.0, 1.0}).has_value());
  EXPECT_FALSE(ReservationSequence::try_create({2.0, 1.0}).has_value());
  EXPECT_FALSE(ReservationSequence::try_create({0.0, 1.0}).has_value());
  EXPECT_FALSE(ReservationSequence::try_create({-1.0, 1.0}).has_value());
  EXPECT_FALSE(
      ReservationSequence::try_create({1.0, std::nan("")}).has_value());
}

TEST(Sequence, AttemptsForWithinStoredPart) {
  const ReservationSequence s({1.0, 3.0, 9.0});
  EXPECT_EQ(s.attempts_for(0.5), 1u);
  EXPECT_EQ(s.attempts_for(1.0), 1u);  // t <= t_1 succeeds first try
  EXPECT_EQ(s.attempts_for(1.01), 2u);
  EXPECT_EQ(s.attempts_for(3.0), 2u);
  EXPECT_EQ(s.attempts_for(9.0), 3u);
}

TEST(Sequence, AttemptsForImplicitTail) {
  const ReservationSequence s({1.0, 3.0, 9.0});
  // Tail: 18, 36, ...
  EXPECT_EQ(s.attempts_for(10.0), 4u);
  EXPECT_EQ(s.attempts_for(18.0), 4u);
  EXPECT_EQ(s.attempts_for(18.5), 5u);
}

TEST(Sequence, CostForMatchesHandComputedEq2) {
  // S = (2, 5), job t = 4, model (alpha=1, beta=0.5, gamma=0.25):
  // attempt 1 fails: 1*2 + 0.5*2 + 0.25 = 3.25
  // attempt 2 succeeds: 1*5 + 0.5*4 + 0.25 = 7.25
  const ReservationSequence s({2.0, 5.0});
  const CostModel m{1.0, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(s.cost_for(4.0, m), 10.5);
  // t = 1 succeeds immediately: 2 + 0.5 + 0.25.
  EXPECT_DOUBLE_EQ(s.cost_for(1.0, m), 2.75);
}

TEST(Sequence, CostForReservationOnly) {
  const ReservationSequence s({1.0, 2.0, 4.0});
  const CostModel m = CostModel::reservation_only();
  EXPECT_DOUBLE_EQ(s.cost_for(0.5, m), 1.0);
  EXPECT_DOUBLE_EQ(s.cost_for(1.5, m), 3.0);
  EXPECT_DOUBLE_EQ(s.cost_for(3.0, m), 7.0);
}

TEST(Sequence, CostForImplicitTailAccumulates) {
  const ReservationSequence s({1.0});
  const CostModel m = CostModel::reservation_only();
  // t = 3: pay 1, then 2 (fail), then 4 (success) = 7.
  EXPECT_DOUBLE_EQ(s.cost_for(3.0, m), 7.0);
}

TEST(Sequence, CoversDistribution) {
  const sre::dist::Uniform u(10.0, 20.0);
  EXPECT_TRUE(ReservationSequence({20.0}).covers_distribution(u));
  EXPECT_FALSE(ReservationSequence({19.0}).covers_distribution(u));
  const sre::dist::Exponential e(1.0);
  EXPECT_FALSE(ReservationSequence({5.0}).covers_distribution(e));
  EXPECT_TRUE(ReservationSequence({40.0}).covers_distribution(e));
}

TEST(SequenceCostEvaluator, MatchesCostForEverywhere) {
  const ReservationSequence s({0.7, 1.9, 4.4, 10.0});
  for (const CostModel m :
       {CostModel{1.0, 0.0, 0.0}, CostModel{0.95, 1.0, 1.05},
        CostModel{2.0, 0.5, 0.0}}) {
    const SequenceCostEvaluator eval(s, m);
    for (double t = 0.05; t < 50.0; t += 0.37) {
      EXPECT_NEAR(eval.cost(t), s.cost_for(t, m), 1e-10)
          << "t=" << t << " " << m.describe();
    }
  }
}

TEST(SequenceCostEvaluator, MeanCostOverSamples) {
  const ReservationSequence s({1.0, 2.0});
  const CostModel m = CostModel::reservation_only();
  const std::vector<double> samples = {0.5, 1.5, 2.0};
  // Costs: 1, 3, 3 -> mean 7/3.
  const SequenceCostEvaluator eval(s, m);
  EXPECT_NEAR(eval.mean_cost(samples), 7.0 / 3.0, 1e-12);
}

TEST(Sequence, PushBackMaintainsInvariant) {
  ReservationSequence s({1.0});
  s.push_back(2.0);
  s.push_back(5.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.last(), 5.0);
  EXPECT_DOUBLE_EQ(s.first(), 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}
