// Differential harness for the two Theorem 5 DP variants: the monotone
// row-minima (divide-and-conquer) fill must be *byte-identical* to the
// O(n^2) reference — same choice indices, same ReservationSequence values,
// same expected cost, bit for bit — across the full paper grid and a set of
// adversarial discrete laws hunting quadrangle-inequality edge cases (cost
// ties, zero-mass atoms, single-point laws, heavy tails). Both fills
// evaluate the same noinline transition expression, so any divergence here
// is an argmin-selection bug, not floating-point noise.

#include "core/heuristics/dp_discretization.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>

#include "dist/factory.hpp"
#include "sim/discretize.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SRE_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SRE_SANITIZED_BUILD 1
#endif
#endif

using namespace sre::core;
using sre::dist::DiscreteDistribution;
namespace sim = sre::sim;

namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

std::vector<CostModel> cost_models() {
  return {
      CostModel::reservation_only(),
      {1.0, 1.0, 0.0},
      {1.0, 1.0, 1.0},
      {0.95, 1.0, 1.05},
  };
}

/// Runs both variants on the same discrete instance and requires bitwise
/// agreement on every output field.
void expect_identical(const DiscreteDistribution& d, const CostModel& m,
                      const std::string& what) {
  const DpResult ref =
      dp_optimal_sequence(d, m, {}, sim::DpVariant::kReference);
  const DpResult fast =
      dp_optimal_sequence(d, m, {}, sim::DpVariant::kDivideAndConquer);
  ASSERT_EQ(ref.indices, fast.indices) << what;
  ASSERT_EQ(bits(ref.expected_cost), bits(fast.expected_cost))
      << what << ": expected cost " << ref.expected_cost << " vs "
      << fast.expected_cost;
  const auto& rv = ref.sequence.values();
  const auto& fv = fast.sequence.values();
  ASSERT_EQ(rv.size(), fv.size()) << what;
  for (std::size_t i = 0; i < rv.size(); ++i) {
    ASSERT_EQ(bits(rv[i]), bits(fv[i]))
        << what << ": sequence value " << i << " differs, " << rv[i] << " vs "
        << fv[i];
  }
}

}  // namespace

// 9 Table 1 laws x 4 cost models x both discretization schemes x grid sizes
// spanning trivial (n = 2) to the paper's production size (n = 1000).
TEST(DpDifferential, PaperGridByteIdentical) {
#ifdef SRE_SANITIZED_BUILD
  const std::vector<std::size_t> sizes = {2, 3, 17, 256};
#else
  const std::vector<std::size_t> sizes = {2, 3, 17, 256, 1000};
#endif
  const std::vector<sim::DiscretizationScheme> schemes = {
      sim::DiscretizationScheme::kEqualProbability,
      sim::DiscretizationScheme::kEqualTime,
  };
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& m : cost_models()) {
      for (const auto scheme : schemes) {
        for (const std::size_t n : sizes) {
          sim::DiscretizationOptions opts;
          opts.n = n;
          opts.epsilon = 1e-6;
          opts.scheme = scheme;
          const DiscreteDistribution disc = sim::discretize(*inst.dist, opts);
          std::ostringstream what;
          what << inst.label << " | " << m.describe() << " | "
               << sim::to_string(scheme) << " | n=" << n;
          expect_identical(disc, m, what.str());
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(DpDifferential, SinglePointLaw) {
  const DiscreteDistribution d({5.0}, {1.0});
  for (const auto& m : cost_models()) {
    expect_identical(d, m, "single point | " + m.describe());
  }
}

// Support points one ulp apart produce near-identical envelope slopes; the
// tie-break (first minimum / smaller candidate) must still match exactly.
TEST(DpDifferential, TiesInSupport) {
  const double a = 1.0, b = 2.0, c = 5.0;
  const DiscreteDistribution d(
      {a, std::nextafter(a, 2.0), b, std::nextafter(b, 3.0), c},
      {0.2, 0.2, 0.2, 0.2, 0.2});
  for (const auto& m : cost_models()) {
    expect_identical(d, m, "ulp ties | " + m.describe());
  }
}

// Zero-probability atoms (which discretize() legitimately produces) make
// consecutive suffix masses equal — rows where the envelope query point does
// not move — and a trailing zero atom exercises the S[j+1] <= 0 early exit
// and the massless-row shortcut.
TEST(DpDifferential, ZeroMassAtoms) {
  const DiscreteDistribution d(
      {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0},
      {0.2, 0.0, 0.3, 0.0, 0.0, 0.1, 0.0, 0.2, 0.2, 0.0});
  for (const auto& m : cost_models()) {
    expect_identical(d, m, "zero-mass atoms | " + m.describe());
  }
}

// Geometric support with geometric masses: the value range spans nine
// decades while suffix masses shrink to ~2^-30, stressing the envelope far
// from the well-conditioned regime.
TEST(DpDifferential, HeavyTail) {
  std::vector<double> v, f;
  for (int k = 0; k <= 30; ++k) {
    v.push_back(std::ldexp(1.0, k));
    f.push_back(std::ldexp(1.0, -k));
  }
  const DiscreteDistribution d(std::move(v), std::move(f));
  for (const auto& m : cost_models()) {
    expect_identical(d, m, "heavy tail | " + m.describe());
  }
}

// Integer values with small-integer masses collide constantly: equal suffix
// masses, exactly tied transition costs, and repeated envelope takeovers.
// 200 random instances is a deterministic fuzz of the tie-break rule.
TEST(DpDifferential, AdversarialIntegerInstances) {
  std::mt19937_64 rng(20260808u);
  std::uniform_int_distribution<int> size_dist(1, 40);
  std::uniform_int_distribution<int> mass_dist(0, 3);
  const auto models = cost_models();
  for (int iter = 0; iter < 200; ++iter) {
    const int n = size_dist(rng);
    std::vector<double> v, f;
    int total = 0;
    for (int i = 0; i < n; ++i) {
      v.push_back(static_cast<double>(i + 1));
      const int mass = mass_dist(rng);
      total += mass;
      f.push_back(static_cast<double>(mass));
    }
    if (total == 0) f[static_cast<std::size_t>(n) - 1] = 1.0;
    const DiscreteDistribution d(std::move(v), std::move(f));
    const CostModel& m = models[static_cast<std::size_t>(iter) % models.size()];
    std::ostringstream what;
    what << "integer instance " << iter << " (n=" << n << ") | "
         << m.describe();
    expect_identical(d, m, what.str());
    if (HasFatalFailure()) return;
  }
}
