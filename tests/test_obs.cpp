// The obs:: observability layer: instrument correctness under contention
// (run these under the tsan preset), span balance across nested parallel
// joins, the master switch, and byte-stable JSON reporting.
//
// Every TEST here uses instrument names under "test.obs." so the assertions
// are delta-based and immune to instrumentation in the library code the
// tests happen to exercise.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sim/parallel.hpp"
#include "sim/thread_pool.hpp"

using namespace sre;

namespace {

/// Runs body() on `threads` std::threads and joins them all.
void run_on_threads(unsigned threads, const std::function<void()>& body) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers.emplace_back(body);
  for (auto& w : workers) w.join();
}

}  // namespace

TEST(ObsSwitch, CompiledInReportsBuildConfiguration) {
#ifdef STOCHRES_OBS_DISABLE
  EXPECT_FALSE(obs::compiled_in());
  EXPECT_FALSE(obs::enabled());
#else
  EXPECT_TRUE(obs::compiled_in());
#endif
}

TEST(ObsSwitch, DisabledInstrumentsDoNotMutate) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::Counter& c = obs::counter("test.obs.switch_counter");
  obs::Gauge& g = obs::gauge("test.obs.switch_gauge");
  const std::uint64_t c0 = c.value();
  {
    obs::ScopedEnable off(false);
    EXPECT_FALSE(obs::enabled());
    c.add(7);
    g.set(42.0);
    g.set_max(99.0);
  }
  EXPECT_TRUE(obs::enabled());
  EXPECT_EQ(c.value(), c0);
  EXPECT_EQ(g.value(), 0.0);
  c.add(1);
  EXPECT_EQ(c.value(), c0 + 1);
}

TEST(ObsSwitch, ScopedEnableRestoresPreviousState) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::set_enabled(false);
  {
    obs::ScopedEnable on(true);
    EXPECT_TRUE(obs::enabled());
  }
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  obs::Counter& a = obs::counter("test.obs.same_name");
  obs::Counter& b = obs::counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);
  obs::SpanStats& s1 = obs::span_series("test.obs.same_span");
  obs::SpanStats& s2 = obs::span_series("test.obs.same_span");
  EXPECT_EQ(&s1, &s2);
}

TEST(ObsConcurrency, CounterAddsFromEightThreadsAreLossless) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::Counter& c = obs::counter("test.obs.counter_race");
  const std::uint64_t before = c.value();
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  run_on_threads(kThreads, [&c] {
    for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
  });
  EXPECT_EQ(c.value(), before + kThreads * kPerThread);
}

TEST(ObsConcurrency, HistogramObservesFromEightThreadsAreLossless) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::Histogram& h =
      obs::histogram("test.obs.histogram_race", {1.0, 2.0, 4.0, 8.0});
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  // Exactly representable observations, so the racing double adds are exact
  // and the sum is checkable without tolerance.
  run_on_threads(kThreads, [&h] {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      h.observe(static_cast<double>(i % 10));
    }
  });
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Each thread contributes 500 * (0+1+...+9) = 22500.
  EXPECT_EQ(h.sum(), static_cast<double>(kThreads) * 22500.0);
  EXPECT_EQ(h.max(), 9.0);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  // values 0,1 fall in the <=1 bucket; value 9 overflows past <=8.
  EXPECT_EQ(h.bucket_count(0), kThreads * kPerThread / 10 * 2);
  EXPECT_EQ(h.bucket_count(h.bounds().size()), kThreads * kPerThread / 10);
}

TEST(ObsConcurrency, GaugeSetMaxConvergesUnderContention) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::Gauge& g = obs::gauge("test.obs.gauge_race");
  g.reset();
  run_on_threads(8, [&g] {
    for (int i = 0; i < 4000; ++i) g.set_max(static_cast<double>(i % 997));
  });
  EXPECT_EQ(g.value(), 996.0);
}

TEST(ObsConcurrency, SpanRecordsFromEightThreadsAreLossless) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::SpanStats& series = obs::span_series("test.obs.span_race");
  const std::uint64_t before = series.count();
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 2000;
  run_on_threads(kThreads, [&series] {
    for (int i = 0; i < kPerThread; ++i) obs::Span span(series);
  });
  EXPECT_EQ(series.count(), before + kThreads * kPerThread);
  EXPECT_GE(series.total_ns(), series.max_ns());
}

TEST(ObsSpans, BalancedAcrossNestedParallelFor) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::SpanStats& outer = obs::span_series("test.obs.nested_outer");
  obs::SpanStats& inner = obs::span_series("test.obs.nested_inner");
  const std::uint64_t outer0 = outer.count();
  const std::uint64_t inner0 = inner.count();

  sim::ThreadPool pool(4);
  constexpr std::size_t kOuter = 32;
  constexpr std::size_t kInner = 8;
  sim::parallel_for(pool, 0, kOuter, [&](std::size_t) {
    obs::Span span(outer);
    sim::parallel_for(pool, 0, kInner,
                      [&](std::size_t) { obs::Span s(inner); });
  });

  // Label aggregation is exact regardless of which thread ran which chunk.
  EXPECT_EQ(outer.count(), outer0 + kOuter);
  EXPECT_EQ(inner.count(), inner0 + kOuter * kInner);
  // Every span closed: the calling thread's stack is balanced again.
  EXPECT_EQ(obs::active_span_depth(), 0);
  EXPECT_GE(obs::max_span_depth(), 1);
}

TEST(ObsSpans, TaskScopeMakesTasksFreshRoots) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::SpanStats& series = obs::span_series("test.obs.task_scope");
  obs::Span span(series);
  EXPECT_EQ(obs::active_span_depth(), 1);
  {
    obs::TaskScope task_boundary;
    EXPECT_EQ(obs::active_span_depth(), 0);
    obs::Span nested(series);
    EXPECT_EQ(obs::active_span_depth(), 1);
  }
  EXPECT_EQ(obs::active_span_depth(), 1);
}

TEST(ObsReport, ByteIdenticalAcrossRepeatedDeterministicRuns) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";

  // A deterministic workload touching every instrument kind with exactly
  // representable values (no rounding => thread interleaving cannot perturb
  // the double sums). Span wall times are timing-dependent, so the workload
  // registers a span series but never opens a span: the report must still
  // list it, with zeros.
  const auto workload = [] {
    obs::Counter& c = obs::counter("test.obs.report_counter");
    obs::Gauge& g = obs::gauge("test.obs.report_gauge");
    obs::Histogram& h = obs::histogram("test.obs.report_hist", {0.5, 1.5});
    obs::span_series("test.obs.report_span");
    run_on_threads(8, [&] {
      for (int i = 0; i < 1000; ++i) {
        c.add(2);
        g.set_max(static_cast<double>(i));
        h.observe(static_cast<double>(i % 2));
      }
    });
  };

  // Zero anything earlier tests left behind (span wall times are
  // timing-dependent) so both snapshots describe only this workload.
  obs::reset_all();
  workload();
  const std::string first = obs::report_json();
  const std::string again = obs::report_json();
  EXPECT_EQ(first, again) << "snapshot of unchanged state must be stable";

  obs::reset_all();
  workload();
  const std::string second = obs::report_json();
  EXPECT_EQ(first, second) << "deterministic workload must reproduce bytes";

  // Sanity: the report actually contains the workload's state.
  EXPECT_NE(first.find("\"test.obs.report_counter\": 16000"), std::string::npos)
      << first;
  EXPECT_NE(first.find("\"test.obs.report_span\""), std::string::npos);
}

TEST(ObsReport, JsonSectionsPresentAndSorted) {
  const std::string json = obs::report_json();
  const auto counters = json.find("\"counters\"");
  const auto gauges = json.find("\"gauges\"");
  const auto histograms = json.find("\"histograms\"");
  const auto spans = json.find("\"spans\"");
  ASSERT_NE(counters, std::string::npos);
  ASSERT_NE(gauges, std::string::npos);
  ASSERT_NE(histograms, std::string::npos);
  ASSERT_NE(spans, std::string::npos);
  EXPECT_LT(counters, gauges);
  EXPECT_LT(gauges, histograms);
  EXPECT_LT(histograms, spans);
}
