#include "dist/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"
#include "sim/rng.hpp"
#include "stats/integrate.hpp"
#include "stats/summary.hpp"

using namespace sre::dist;

namespace {
HistogramDistribution two_bins() {
  // [0,1) mass 0.25, [1,3) mass 0.75.
  return HistogramDistribution({0.0, 1.0, 3.0}, {0.25, 0.75});
}
}  // namespace

TEST(Histogram, PdfIsPiecewiseConstant) {
  const auto h = two_bins();
  EXPECT_DOUBLE_EQ(h.pdf(0.5), 0.25);
  EXPECT_DOUBLE_EQ(h.pdf(2.0), 0.375);
  EXPECT_DOUBLE_EQ(h.pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(h.pdf(3.5), 0.0);
}

TEST(Histogram, CdfInterpolatesLinearly) {
  const auto h = two_bins();
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(h.cdf(2.0), 0.25 + 0.375);
  EXPECT_DOUBLE_EQ(h.cdf(3.0), 1.0);
}

TEST(Histogram, QuantileRoundTrips) {
  const auto h = two_bins();
  for (double p = 0.01; p < 1.0; p += 0.04) {
    EXPECT_NEAR(h.cdf(h.quantile(p)), p, 1e-12) << p;
  }
}

TEST(Histogram, MomentsClosedForm) {
  const auto h = two_bins();
  // mean = 0.25 * 0.5 + 0.75 * 2 = 1.625.
  EXPECT_NEAR(h.mean(), 1.625, 1e-13);
  // E[X^2] = 0.25 * 1/3 + 0.75 * (1 + 3 + 9)/3.
  const double ex2 = 0.25 / 3.0 + 0.75 * 13.0 / 3.0;
  EXPECT_NEAR(h.variance(), ex2 - 1.625 * 1.625, 1e-12);
}

TEST(Histogram, ConditionalMeanClosedFormVsQuadrature) {
  const auto h = two_bins();
  for (double tau : {0.2, 0.9, 1.0, 1.5, 2.7}) {
    const double num = sre::stats::integrate(
        [&h](double t) { return t * h.pdf(t); }, tau, 3.0, 1e-12);
    const double reference = num / (1.0 - h.cdf(tau));
    EXPECT_NEAR(h.conditional_mean_above(tau), reference, 1e-9) << tau;
  }
  // Mid-bin hand value: above 2, uniform on [2,3]: mean 2.5.
  EXPECT_NEAR(h.conditional_mean_above(2.0), 2.5, 1e-12);
}

TEST(Histogram, FromSamplesReconstructsUniform) {
  const Uniform truth(10.0, 20.0);
  sre::sim::Rng rng = sre::sim::make_rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(truth.sample(rng));
  const auto h = HistogramDistribution::from_samples(samples, 20);
  EXPECT_NEAR(h.mean(), 15.0, 0.05);
  EXPECT_NEAR(h.variance(), 100.0 / 12.0, 0.2);
  EXPECT_NEAR(h.quantile(0.5), 15.0, 0.1);
  EXPECT_NEAR(h.cdf(12.5), 0.25, 0.01);
}

TEST(Histogram, FromSamplesApproximatesLogNormal) {
  const LogNormal truth(3.0, 0.5);
  sre::sim::Rng rng = sre::sim::make_rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(truth.sample(rng));
  const auto h = HistogramDistribution::from_samples(samples, 128);
  EXPECT_NEAR(h.mean(), truth.mean(), 0.02 * truth.mean());
  EXPECT_NEAR(h.median(), truth.median(), 0.03 * truth.median());
  // The histogram CDF tracks the true CDF uniformly.
  for (double p : {0.1, 0.5, 0.9}) {
    const double q = truth.quantile(p);
    EXPECT_NEAR(h.cdf(q), p, 0.02) << p;
  }
}

TEST(Histogram, DegenerateConstantTrace) {
  const std::vector<double> samples(100, 7.0);
  const auto h = HistogramDistribution::from_samples(samples, 8);
  EXPECT_NEAR(h.mean(), 7.0, 1e-6);
  EXPECT_TRUE(h.support().bounded());
  EXPECT_NEAR(h.quantile(0.5), 7.0, 1e-6);
}

TEST(Histogram, HandlesEmptyBins) {
  // Middle bin has zero mass; quantile and cdf stay consistent.
  const HistogramDistribution h({0.0, 1.0, 2.0, 3.0}, {0.5, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(h.cdf(1.5), 0.5);
  EXPECT_DOUBLE_EQ(h.pdf(1.5), 0.0);
  EXPECT_NEAR(h.quantile(0.5), 1.0, 1e-12);
  for (double p = 0.05; p < 1.0; p += 0.1) {
    EXPECT_NEAR(h.cdf(h.quantile(p)), p, 1e-12) << p;
  }
}

TEST(Histogram, SamplesStayInSupport) {
  const auto h = two_bins();
  sre::sim::Rng rng = sre::sim::make_rng(7);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 50000; ++i) {
    const double x = h.sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 3.0);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), 1.625, 0.02);
}
