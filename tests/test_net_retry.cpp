// net::RetryPolicy / net::RetrySchedule — the shared decorrelated-jitter
// backoff extracted from sim/sweep.cpp's retry loop.
//
// The load-bearing test is bitwise equivalence: an independent
// reimplementation of the *original* inline sweep formula (copied from the
// pre-extraction sim/sweep.cpp, not from net/retry.cpp) must produce the
// exact same double for every (seed, stream, attempt, base, cap) — the
// extraction changed call sites, not schedules. test_sweep_resilience
// covers the sweep-side integration on top of this.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/retry.hpp"
#include "sim/rng.hpp"

namespace {

using sre::net::RetryPolicy;
using sre::net::RetrySchedule;

// The original sim/sweep.cpp backoff, reimplemented verbatim and
// independently of net/retry.cpp (same primitives, original structure).
double original_backoff_draw(std::uint64_t seed, std::uint64_t scenario,
                             std::uint64_t attempt) {
  std::uint64_t state =
      sre::sim::substream_seed(sre::sim::substream_seed(seed, scenario),
                               attempt);
  return static_cast<double>(sre::sim::splitmix64(state) >> 11) * 0x1.0p-53;
}

std::vector<double> original_sleep_sequence(std::uint64_t seed,
                                            std::uint64_t scenario,
                                            double base, double cap,
                                            int retries) {
  std::vector<double> sleeps;
  double prev_sleep = base;
  for (int attempt = 1; attempt <= retries; ++attempt) {
    if (base <= 0.0) {
      sleeps.push_back(0.0);
      continue;
    }
    const double u = original_backoff_draw(
        seed, scenario, static_cast<std::uint64_t>(attempt));
    const double hi = std::max(base, 3.0 * prev_sleep);
    double sleep = base + u * (hi - base);
    if (cap > 0.0) sleep = std::min(sleep, cap);
    sleeps.push_back(sleep);
    prev_sleep = sleep;
  }
  return sleeps;
}

TEST(RetrySchedule, BitwiseEquivalentToOriginalSweepFormula) {
  const std::uint64_t seeds[] = {0, 1, 42, 0xdeadbeefULL};
  const std::uint64_t streams[] = {0, 1, 17, 1ULL << 40};
  const struct {
    double base;
    double cap;
  } shapes[] = {{0.05, 1.0}, {0.05, 0.0}, {0.001, 0.01}, {2.0, 1.0}};
  for (const auto seed : seeds) {
    for (const auto stream : streams) {
      for (const auto& shape : shapes) {
        RetryPolicy policy;
        policy.max_attempts = 13;
        policy.base_seconds = shape.base;
        policy.cap_seconds = shape.cap;
        policy.seed = seed;
        RetrySchedule schedule(policy, stream);
        const auto expected =
            original_sleep_sequence(seed, stream, shape.base, shape.cap, 12);
        for (int k = 0; k < 12; ++k) {
          // EXPECT_EQ on doubles is exact — bit-for-bit, not approximate.
          EXPECT_EQ(schedule.next(), expected[static_cast<std::size_t>(k)])
              << "seed=" << seed << " stream=" << stream
              << " base=" << shape.base << " cap=" << shape.cap
              << " attempt=" << (k + 1);
        }
      }
    }
  }
}

TEST(RetrySchedule, DeterministicPerStreamAndIndependentAcrossStreams) {
  RetryPolicy policy{8, 0.01, 1.0, 99};
  RetrySchedule a1(policy, 5);
  RetrySchedule a2(policy, 5);
  RetrySchedule b(policy, 6);
  bool any_diff = false;
  for (int k = 0; k < 8; ++k) {
    const double s1 = a1.next();
    const double s2 = a2.next();
    const double sb = b.next();
    EXPECT_EQ(s1, s2);
    any_diff = any_diff || s1 != sb;
  }
  EXPECT_TRUE(any_diff) << "streams 5 and 6 produced identical schedules";
}

TEST(RetrySchedule, HintFloorsSleepWithoutPerturbingTheRecurrence) {
  RetryPolicy policy{8, 0.002, 1.0, 7};
  RetrySchedule hinted(policy, 0);
  RetrySchedule plain(policy, 0);

  EXPECT_EQ(hinted.next(), plain.next());
  const double plain_second = plain.next();
  const double hinted_second = hinted.next(0.5);  // 500 ms server hint
  EXPECT_EQ(hinted_second, std::max(plain_second, 0.5));
  EXPECT_GE(hinted_second, 0.5);
  // The hint floored the *returned* sleep only: the recurrence state keeps
  // following the unhinted path, so later sleeps match exactly.
  EXPECT_EQ(hinted.next(), plain.next());
  EXPECT_EQ(hinted.next(), plain.next());
}

TEST(RetrySchedule, HintMayExceedTheCap) {
  // The server knows its own drain rate; retry_after_ms is allowed to push
  // past the client's static ceiling (CONTRIBUTING.md retry-after contract).
  RetryPolicy policy{4, 0.001, 0.005, 3};
  RetrySchedule schedule(policy, 0);
  EXPECT_LE(schedule.next(), 0.005);
  EXPECT_EQ(schedule.next(2.5), 2.5);
}

TEST(RetrySchedule, ZeroBaseMeansImmediateRetriesButHintsStillApply) {
  RetryPolicy policy{4, 0.0, 1.0, 3};
  RetrySchedule schedule(policy, 9);
  EXPECT_EQ(schedule.next(), 0.0);
  EXPECT_EQ(schedule.next(0.25), 0.25);
  EXPECT_EQ(schedule.next(), 0.0);
  EXPECT_EQ(schedule.attempts(), 3);
}

TEST(RetryPolicy, JitterDrawIsPureAndInUnitInterval) {
  for (std::uint64_t attempt = 1; attempt <= 64; ++attempt) {
    const double u = RetryPolicy::jitter_draw(42, 7, attempt);
    EXPECT_EQ(u, RetryPolicy::jitter_draw(42, 7, attempt));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
