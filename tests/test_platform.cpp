#include <gtest/gtest.h>

#include "core/heuristics/moment_based.hpp"
#include "dist/factory.hpp"
#include "platform/cloud.hpp"
#include "platform/hpc.hpp"
#include "platform/workload.hpp"

using namespace sre::platform;

TEST(Cloud, ReservedCostModelMapping) {
  const CloudPricing p{2.0, 8.0, 0.5};
  const auto m = reserved_cost_model(p);
  EXPECT_DOUBLE_EQ(m.alpha, 2.0);
  EXPECT_DOUBLE_EQ(m.beta, 0.0);
  EXPECT_DOUBLE_EQ(m.gamma, 0.5);
  EXPECT_DOUBLE_EQ(p.price_ratio(), 4.0);
}

TEST(Cloud, OnDemandCost) {
  const auto d = sre::dist::paper_distribution("Exponential")->dist;
  const CloudPricing p{1.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(on_demand_expected_cost(*d, p), 4.0 * d->mean());
}

TEST(Cloud, AdviceFavorsReservedAtPaperRatio) {
  // Every heuristic's normalized cost is < 4 in Table 2, so at the AWS
  // ratio of 4 the advisor must recommend Reserved.
  const auto d = sre::dist::paper_distribution("Lognormal")->dist;
  const CloudPricing p{1.0, 4.0, 0.0};
  const sre::core::MeanDoubling h;
  const auto decision = advise_reserved_vs_on_demand(*d, p, h);
  EXPECT_TRUE(decision.use_reserved);
  EXPECT_GT(decision.savings_fraction, 0.0);
  EXPECT_LT(decision.normalized_cost, 4.0);
  EXPECT_EQ(decision.strategy, "Mean-Doubling");
}

TEST(Cloud, AdviceFavorsOnDemandAtUnitRatio) {
  // With c_OD == c_RI no reservation strategy can beat on-demand (its
  // normalized cost is >= 1).
  const auto d = sre::dist::paper_distribution("Exponential")->dist;
  const CloudPricing p{1.0, 1.0, 0.0};
  const sre::core::MeanDoubling h;
  const auto decision = advise_reserved_vs_on_demand(*d, p, h);
  EXPECT_FALSE(decision.use_reserved);
}

TEST(Cloud, BreakEvenEqualsNormalizedCost) {
  const auto d = sre::dist::paper_distribution("Exponential")->dist;
  const sre::core::MeanDoubling h;
  const double ratio = break_even_price_ratio(*d, h);
  const CloudPricing p{1.0, 4.0, 0.0};
  const auto decision = advise_reserved_vs_on_demand(*d, p, h);
  EXPECT_NEAR(ratio, decision.normalized_cost, 1e-9);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(Hpc, CostModelMapping) {
  const WaitTimeModel w{0.95, 1.05};
  const auto m = hpc_cost_model(w);
  EXPECT_DOUBLE_EQ(m.alpha, 0.95);
  EXPECT_DOUBLE_EQ(m.beta, 1.0);
  EXPECT_DOUBLE_EQ(m.gamma, 1.05);
  EXPECT_DOUBLE_EQ(w.wait(2.0), 0.95 * 2.0 + 1.05);
}

TEST(Hpc, SyntheticLogRecoversGroundTruth) {
  QueueLogConfig cfg;
  cfg.truth = WaitTimeModel{0.95, 1.05};
  cfg.jobs_per_group = 200;
  const auto log = synthesize_queue_log(cfg);
  EXPECT_EQ(log.size(), cfg.groups * cfg.jobs_per_group);
  const QueueLogFit fit = fit_queue_log(log, cfg.groups);
  EXPECT_NEAR(fit.model.slope, 0.95, 0.05);
  EXPECT_NEAR(fit.model.intercept, 1.05, 0.2);
  EXPECT_GT(fit.r_squared, 0.95);
  EXPECT_GE(fit.group_requested.size(), cfg.groups - 2);
}

TEST(Hpc, FitIsDeterministicForSeed) {
  QueueLogConfig cfg;
  const auto a = fit_queue_log(synthesize_queue_log(cfg), cfg.groups);
  const auto b = fit_queue_log(synthesize_queue_log(cfg), cfg.groups);
  EXPECT_DOUBLE_EQ(a.model.slope, b.model.slope);
  EXPECT_DOUBLE_EQ(a.model.intercept, b.model.intercept);
}

TEST(NeuroHpc, BaseMomentsMatchPaper) {
  const NeuroHpcScenario s;
  // ~0.348 h mean, ~0.072 h stdev (1253.37 s / 258.26 s).
  EXPECT_NEAR(s.base_mean_hours(), 0.348, 0.002);
  EXPECT_NEAR(s.base_stddev_hours(), 0.0717, 0.002);
}

TEST(NeuroHpc, ScaledDistributionHitsRequestedMoments) {
  const NeuroHpcScenario s;
  for (const double ms : {1.0, 4.0, 10.0}) {
    for (const double ss : {1.0, 5.0, 10.0}) {
      const auto d = s.distribution(ms, ss);
      EXPECT_NEAR(d.mean(), s.base_mean_hours() * ms, 1e-9);
      EXPECT_NEAR(d.stddev(), s.base_stddev_hours() * ss, 1e-9);
    }
  }
}

TEST(NeuroHpc, CostModelIsPaperInstantiation) {
  const NeuroHpcScenario s;
  const auto m = s.cost_model();
  EXPECT_DOUBLE_EQ(m.alpha, 0.95);
  EXPECT_DOUBLE_EQ(m.beta, 1.0);
  EXPECT_DOUBLE_EQ(m.gamma, 1.05);
}
