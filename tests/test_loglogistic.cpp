#include "dist/loglogistic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/factory.hpp"
#include "sim/rng.hpp"
#include "stats/integrate.hpp"
#include "stats/summary.hpp"

using sre::dist::LogLogistic;

TEST(LogLogistic, ClosedForms) {
  const LogLogistic d(2.0, 3.0);
  // F(alpha) = 1/2: the scale is the median.
  EXPECT_NEAR(d.cdf(2.0), 0.5, 1e-13);
  EXPECT_NEAR(d.median(), 2.0, 1e-10);
  // mean = alpha (pi/b)/sin(pi/b).
  const double x = M_PI / 3.0;
  EXPECT_NEAR(d.mean(), 2.0 * x / std::sin(x), 1e-12);
  // Quantile closed form.
  EXPECT_NEAR(d.quantile(0.75), 2.0 * std::pow(3.0, 1.0 / 3.0), 1e-12);
}

TEST(LogLogistic, QuantileCdfRoundTrip) {
  const LogLogistic d(1.5, 2.5);
  for (double p = 0.01; p < 1.0; p += 0.04) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12) << p;
  }
}

TEST(LogLogistic, PdfIntegratesToCdf) {
  const LogLogistic d(2.0, 3.0);
  for (double t : {0.5, 1.0, 2.0, 5.0}) {
    const double num = sre::stats::integrate(
        [&d](double x) { return d.pdf(x); }, 1e-12, t, 1e-12);
    EXPECT_NEAR(num, d.cdf(t), 1e-8) << t;
  }
}

TEST(LogLogistic, MomentsMatchMonteCarlo) {
  const LogLogistic d(2.0, 4.0);  // beta > 2: variance exists
  sre::sim::Rng rng = sre::sim::make_rng(3);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 300000; ++i) acc.add(d.sample(rng));
  EXPECT_NEAR(acc.mean(), d.mean(), 0.02 * d.mean());
  // Heavy tail (4th moment infinite at beta=4): generous tolerance.
  EXPECT_NEAR(acc.variance(), d.variance(), 0.4 * d.variance());
}

TEST(LogLogistic, ConditionalMeanMatchesQuadrature) {
  const LogLogistic d(2.0, 3.0);
  for (double p : {0.1, 0.5, 0.9}) {
    const double tau = d.quantile(p);
    const double hi = d.quantile(1.0 - 1e-10);
    const double num = sre::stats::integrate(
        [&d](double t) { return t * d.pdf(t); }, tau, hi, 1e-11);
    // The quadrature misses the (heavy) tail past Q(1-1e-10); for beta = 3
    // that residual is ~Q * 1e-10-scale, below the test tolerance.
    const double reference = num / d.sf(tau);
    EXPECT_NEAR(d.conditional_mean_above(tau), reference, 5e-3 * reference)
        << p;
  }
}

TEST(LogLogistic, TailIsPolynomial) {
  // sf(t) ~ (alpha/t)^beta for large t.
  const LogLogistic d(2.0, 3.0);
  const double t = 200.0;
  EXPECT_NEAR(d.sf(t), std::pow(2.0 / t, 3.0), 1e-8);
}

TEST(LogLogistic, FactoryConstruction) {
  const auto d = sre::dist::make_distribution(
      "loglogistic", {{"alpha", 2.0}, {"beta", 3.0}});
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "LogLogistic");
  EXPECT_NEAR(d->median(), 2.0, 1e-10);
}
