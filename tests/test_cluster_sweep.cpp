// cluster::SweepManager against real in-process sre_worker stacks
// (TaskExecutor behind srv::EventLoop on loopback sockets). The one
// property everything else serves: the merged artifact is byte-identical
// to the single-process sweep at the same spec — for any worker count,
// with a worker killed mid-sweep (seeded sim::netfault chaos), and with
// stragglers cut off and re-dispatched. Plus the failure edges: dead
// endpoints are abandoned at the liveness gate, non-retryable shards fail
// fast, and a destroyed executor answers its queue instead of wedging it.

#include <gtest/gtest.h>

#ifdef __linux__

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/sweep_manager.hpp"
#include "cluster/task.hpp"
#include "cluster/worker.hpp"
#include "sim/netfault.hpp"
#include "srv/eventloop.hpp"
#include "srv/service.hpp"
#include "stats/error.hpp"

namespace {

using sre::cluster::SweepManager;
using sre::cluster::SweepManagerConfig;
using sre::cluster::SweepSpec;
using sre::cluster::WorkerEndpoint;

/// One in-process sre_worker: planner service + task executor behind the
/// epoll front end, on an ephemeral loopback port.
struct LocalWorker {
  sre::srv::PlannerService service;
  sre::cluster::TaskExecutor executor;
  std::unique_ptr<sre::srv::EventLoop> loop;
  std::thread thread;

  explicit LocalWorker(const sre::sim::NetFaultSpec& faults = {})
      : service(sre::srv::ServiceConfig{}) {
    sre::srv::EventLoopConfig cfg;
    cfg.max_line_bytes = 4u << 20;
    cfg.task_handler = executor.handler();
    cfg.net_faults = faults;
    loop = std::make_unique<sre::srv::EventLoop>(service, cfg);
    thread = std::thread([this] { loop->run(); });
  }
  ~LocalWorker() {
    loop->request_stop();
    if (thread.joinable()) thread.join();
  }
  [[nodiscard]] WorkerEndpoint endpoint() const {
    return {"127.0.0.1", loop->port()};
  }
};

SweepSpec small_spec() {
  SweepSpec spec;
  spec.dists = {"exponential", "uniform"};
  spec.models.push_back({"reservation-only", 1.0, 0.0, 0.0});
  spec.models.push_back({"full", 1.0, 1.0, 1.0});
  spec.solvers = {"mean-doubling", "equal-time"};
  spec.n = 120;
  spec.epsilon = 1e-6;
  spec.mc_samples = 50;
  spec.mc_seed = 7;
  return spec;
}

SweepManagerConfig manager_config(const std::vector<WorkerEndpoint>& workers) {
  SweepManagerConfig cfg;
  cfg.workers = workers;
  cfg.shard_size = 2;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_seconds = 1e-3;
  cfg.retry.cap_seconds = 0.02;
  cfg.retry.seed = 99;
  return cfg;
}

TEST(SweepManager, ByteIdenticalAcrossWorkerCounts) {
  const SweepSpec spec = small_spec();
  const std::string reference = sre::cluster::local_sweep_bytes(spec);

  for (const std::size_t count : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<LocalWorker>> fleet;
    std::vector<WorkerEndpoint> endpoints;
    for (std::size_t w = 0; w < count; ++w) {
      fleet.push_back(std::make_unique<LocalWorker>());
      endpoints.push_back(fleet.back()->endpoint());
    }
    SweepManager manager(manager_config(endpoints));
    const auto report = manager.run(spec);
    ASSERT_TRUE(report.complete) << count << " workers";
    EXPECT_EQ(report.merged(), reference) << count << " workers";
    EXPECT_EQ(report.counters.completions, 4u);  // 8 scenarios / shard 2
    EXPECT_EQ(report.counters.shards, 4u);
    EXPECT_EQ(report.counters.heartbeats_failed, 0u);
    EXPECT_EQ(report.counters.workers_abandoned, 0u);
  }
}

TEST(SweepManager, KilledWorkerMidSweepKeepsBytesIdentical) {
  // The chaos drill (COOKBOOK 23): worker 0's socket layer resets every
  // write — accepted tasks execute but their results die on the wire, the
  // textbook "worker killed mid-task". Seeded, so the drill replays. The
  // survivor drains the queue and the merge must not show a scar.
  const SweepSpec spec = small_spec();
  const std::string reference = sre::cluster::local_sweep_bytes(spec);

  sre::sim::NetFaultSpec chaos;
  chaos.seed = 2026;
  chaos.write_reset_prob = 1.0;  // every response write dies mid-flight
  std::vector<std::unique_ptr<LocalWorker>> fleet;
  fleet.push_back(std::make_unique<LocalWorker>(chaos));  // the victim
  fleet.push_back(std::make_unique<LocalWorker>());       // the survivor
  const std::vector<WorkerEndpoint> endpoints = {fleet[0]->endpoint(),
                                                 fleet[1]->endpoint()};

  SweepManager manager(manager_config(endpoints));
  const auto report = manager.run(spec);
  ASSERT_TRUE(report.complete)
      << (report.errors.empty() ? "" : report.errors.front());
  EXPECT_EQ(report.merged(), reference);
  // The victim cost something — a failed liveness probe or failed
  // dispatches — and the counters say so; first-result-wins absorbed any
  // task that raced its own re-dispatch.
  EXPECT_GT(report.counters.heartbeats_failed +
                report.counters.transport_failures,
            0u);
}

TEST(SweepManager, DeadEndpointIsAbandonedAtTheLivenessGate) {
  // Nothing listens on the dead endpoint: the connect-time ping fails and
  // the worker is abandoned before any shard is wasted on it.
  std::vector<std::unique_ptr<LocalWorker>> fleet;
  fleet.push_back(std::make_unique<LocalWorker>());
  unsigned short dead_port = 0;
  {
    LocalWorker ephemeral;  // bind + close: a port with nobody behind it
    dead_port = ephemeral.endpoint().port;
  }
  const SweepSpec spec = small_spec();
  const std::vector<WorkerEndpoint> endpoints = {
      {"127.0.0.1", dead_port}, fleet[0]->endpoint()};

  auto cfg = manager_config(endpoints);
  cfg.retry.max_attempts = 1;  // don't redial the corpse three times
  SweepManager manager(cfg);
  const auto report = manager.run(spec);
  ASSERT_TRUE(report.complete);
  EXPECT_EQ(report.merged(), sre::cluster::local_sweep_bytes(spec));
  EXPECT_EQ(report.counters.workers_abandoned, 1u);
  EXPECT_GE(report.counters.heartbeats_failed, 1u);
  EXPECT_EQ(report.counters.dispatches, report.counters.completions);
}

TEST(SweepManager, AllWorkersDeadReportsIncompleteInsteadOfHanging) {
  unsigned short dead_port = 0;
  {
    LocalWorker ephemeral;
    dead_port = ephemeral.endpoint().port;
  }
  auto cfg = manager_config({{"127.0.0.1", dead_port}});
  cfg.retry.max_attempts = 1;
  SweepManager manager(cfg);
  const auto report = manager.run(small_spec());
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.counters.completions, 0u);
  EXPECT_EQ(report.counters.workers_abandoned, 1u);
  EXPECT_FALSE(report.errors.empty());
  // The incomplete artifact is shaped (one slot per scenario), not partial.
  EXPECT_EQ(report.outcomes.size(), small_spec().total());
}

TEST(SweepManager, NonRetryableSpecFailsFastWithoutRedispatch) {
  // An unknown solver is a kDomainError on every worker: the manager must
  // fail the shards immediately (no attempt budget burned on redials).
  LocalWorker worker;
  SweepSpec bad = small_spec();
  bad.solvers = {"no-such-solver"};
  SweepManager manager(manager_config({worker.endpoint()}));
  const auto report = manager.run(bad);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.counters.completions, 0u);
  EXPECT_EQ(report.counters.redispatches, 0u);
  EXPECT_EQ(report.counters.task_failures, report.counters.shards);
  EXPECT_EQ(report.counters.shards_abandoned, report.counters.shards);
}

TEST(SweepManager, StragglerCutoffRequeuesAndStillMerges) {
  // Worker 0 sleeps on (seeded) half its socket ops for far longer than
  // the task deadline: dispatches to it time out, re-queue, and the sweep
  // still converges byte-identically — the straggler never blocks the
  // campaign, only its own thread.
  const SweepSpec spec = small_spec();
  const std::string reference = sre::cluster::local_sweep_bytes(spec);

  sre::sim::NetFaultSpec slow;
  slow.seed = 11;
  slow.delay_prob = 0.5;
  slow.delay_seconds = 2.0;  // >> deadline: a hit is a guaranteed timeout
  std::vector<std::unique_ptr<LocalWorker>> fleet;
  fleet.push_back(std::make_unique<LocalWorker>(slow));
  fleet.push_back(std::make_unique<LocalWorker>());

  auto cfg = manager_config({fleet[0]->endpoint(), fleet[1]->endpoint()});
  cfg.task_deadline_s = 0.5;
  cfg.retry.max_attempts = 1;  // the cutoff is the experiment, not redial
  cfg.max_shard_attempts = 32;
  cfg.max_worker_failures = 2;
  SweepManager manager(cfg);
  const auto report = manager.run(spec);
  ASSERT_TRUE(report.complete)
      << (report.errors.empty() ? "" : report.errors.front());
  EXPECT_EQ(report.merged(), reference);
}

TEST(TaskExecutor, DestructionAnswersQueuedJobsWithCancelled) {
  // Jobs still queued when the executor dies must be answered (typed
  // kCancelled), not leaked: in the worker process each pending `done`
  // owns an event-loop completion slot, and a dropped slot would wedge
  // that connection's response pipeline forever.
  const SweepSpec spec = small_spec();
  sre::cluster::TaskFrame frame;
  frame.begin = 0;
  frame.end = spec.total();
  frame.key = sre::cluster::task_key(spec, frame.begin, frame.end);
  frame.spec = spec;
  const std::string line = sre::cluster::format_task(frame);

  std::atomic<int> answered{0};
  std::atomic<int> cancelled{0};
  {
    sre::cluster::TaskExecutor executor;
    for (int i = 0; i < 8; ++i) {
      executor.submit(line, [&](std::string result) {
        ++answered;
        const auto parsed = sre::cluster::parse_result(result);
        if (!parsed.ok) {
          EXPECT_EQ(parsed.code, sre::ErrorCode::kCancelled);
          ++cancelled;
        }
      });
    }
  }  // destructor: joins the dispatch thread, answers the queue
  EXPECT_EQ(answered.load(), 8);
  EXPECT_GE(cancelled.load(), 0);  // timing decides how many ran to ok
}

}  // namespace

#else  // !__linux__

TEST(SweepManager, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif
