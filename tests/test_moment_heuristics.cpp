// MEAN-BY-MEAN, MEAN-STDEV, MEAN-DOUBLING, MEDIAN-BY-MEDIAN (Section 4.3)
// against the Appendix B closed forms and the validity invariants.

#include "core/heuristics/moment_based.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/pareto.hpp"
#include "dist/uniform.hpp"

using namespace sre::core;

namespace {
const CostModel kRO = CostModel::reservation_only();
}

TEST(MeanByMean, ExponentialIsArithmetic) {
  // Memorylessness: t_i = i / lambda (Appendix B).
  const sre::dist::Exponential e(2.0);
  const auto seq = MeanByMean().generate(e, kRO);
  ASSERT_GE(seq.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(seq[i], static_cast<double>(i + 1) / 2.0, 1e-10) << i;
  }
}

TEST(MeanByMean, ParetoIsGeometric) {
  // t_i = (alpha/(alpha-1)) t_{i-1} (Theorem 10).
  const sre::dist::Pareto p(1.5, 3.0);
  const auto seq = MeanByMean().generate(p, kRO);
  ASSERT_GE(seq.size(), 5u);
  EXPECT_NEAR(seq[0], 2.25, 1e-12);  // the mean
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_NEAR(seq[i], 1.5 * seq[i - 1], 1e-9) << i;
  }
}

TEST(MeanByMean, UniformIsMidpointToB) {
  // t_i = (b + t_{i-1}) / 2 (Theorem 11), ending at b.
  const sre::dist::Uniform u(10.0, 20.0);
  const auto seq = MeanByMean().generate(u, kRO);
  ASSERT_GE(seq.size(), 4u);
  EXPECT_DOUBLE_EQ(seq[0], 15.0);
  EXPECT_NEAR(seq[1], 17.5, 1e-12);
  EXPECT_NEAR(seq[2], 18.75, 1e-12);
  EXPECT_DOUBLE_EQ(seq.last(), 20.0);
}

TEST(MeanByMean, StartsAtMeanForAllDistributions) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    const auto seq = MeanByMean().generate(*inst.dist, kRO);
    EXPECT_NEAR(seq.first(), inst.dist->mean(), 1e-9 * inst.dist->mean())
        << inst.label;
  }
}

TEST(MeanStdev, ArithmeticProgression) {
  const sre::dist::Exponential e(1.0);
  const auto seq = MeanStdev().generate(e, kRO);
  ASSERT_GE(seq.size(), 4u);
  EXPECT_DOUBLE_EQ(seq[0], 1.0);
  EXPECT_NEAR(seq[1], 2.0, 1e-12);  // mu + sigma, sigma = 1
  EXPECT_NEAR(seq[2], 3.0, 1e-12);
  EXPECT_NEAR(seq[3], 4.0, 1e-12);
}

TEST(MeanDoubling, GeometricProgression) {
  const sre::dist::Exponential e(1.0);
  const auto seq = MeanDoubling().generate(e, kRO);
  ASSERT_GE(seq.size(), 4u);
  EXPECT_DOUBLE_EQ(seq[0], 1.0);
  EXPECT_DOUBLE_EQ(seq[1], 2.0);
  EXPECT_DOUBLE_EQ(seq[2], 4.0);
  EXPECT_DOUBLE_EQ(seq[3], 8.0);
}

TEST(MedianByMedian, QuantileLadder) {
  // t_i = Q(1 - 2^{-i}).
  const sre::dist::Exponential e(1.0);
  const auto seq = MedianByMedian().generate(e, kRO);
  ASSERT_GE(seq.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const double expect = -std::log(std::pow(0.5, i + 1));
    EXPECT_NEAR(seq[i], expect, 1e-10) << i;
  }
}

TEST(MedianByMedian, StartsAtMedian) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    const auto seq = MedianByMedian().generate(*inst.dist, kRO);
    EXPECT_NEAR(seq.first(), inst.dist->median(),
                1e-8 * (1.0 + inst.dist->median()))
        << inst.label;
  }
}

class MomentHeuristicInvariants
    : public ::testing::TestWithParam<sre::dist::PaperInstance> {};

TEST_P(MomentHeuristicInvariants, SequencesAreValidAndCovering) {
  const auto& d = *GetParam().dist;
  const MeanByMean mbm;
  const MeanStdev ms;
  const MeanDoubling md;
  const MedianByMedian mm;
  for (const Heuristic* h :
       std::initializer_list<const Heuristic*>{&mbm, &ms, &md, &mm}) {
    const auto seq = h->generate(d, kRO);
    ASSERT_FALSE(seq.empty()) << h->name();
    for (std::size_t i = 1; i < seq.size(); ++i) {
      ASSERT_GT(seq[i], seq[i - 1]) << h->name() << " i=" << i;
    }
    EXPECT_TRUE(seq.covers_distribution(d, 1e-10)) << h->name();
  }
}

TEST_P(MomentHeuristicInvariants, BoundedSupportEndsExactlyAtB) {
  const auto& d = *GetParam().dist;
  if (!d.support().bounded()) GTEST_SKIP();
  const MeanByMean mbm;
  const MeanStdev ms;
  const MeanDoubling md;
  const MedianByMedian mm;
  for (const Heuristic* h :
       std::initializer_list<const Heuristic*>{&mbm, &ms, &md, &mm}) {
    const auto seq = h->generate(d, kRO);
    EXPECT_DOUBLE_EQ(seq.last(), d.support().upper) << h->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, MomentHeuristicInvariants,
    ::testing::ValuesIn(sre::dist::paper_distributions()),
    [](const ::testing::TestParamInfo<sre::dist::PaperInstance>& info) {
      return info.param.label;
    });
