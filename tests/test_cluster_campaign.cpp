#include "platform/cluster_campaign.hpp"

#include <gtest/gtest.h>

#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"

using namespace sre::platform;

namespace {

InVivoCampaignConfig small_config() {
  InVivoCampaignConfig cfg;
  cfg.cluster.nodes = 64;
  cfg.background.jobs = 400;
  cfg.background.max_width = 64;
  cfg.background.mean_interarrival = 0.05;
  cfg.background.seed = 3;
  cfg.measured_jobs = 40;
  cfg.measured_width = 8;
  cfg.seed = 9;
  return cfg;
}

}  // namespace

TEST(InVivoCampaign, AllJobsCompleteUnderCoveringPlan) {
  const sre::dist::Exponential truth(1.0);
  // A generous covering plan.
  const sre::core::ReservationSequence plan({1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  const auto result = run_in_vivo_campaign(truth, plan, small_config());
  EXPECT_EQ(result.incomplete, 0u);
  ASSERT_EQ(result.jobs.size(), 40u);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed);
    EXPECT_GE(job.attempts, 1u);
    EXPECT_GE(job.turnaround, job.true_runtime * 0.99);
    EXPECT_GE(job.total_wait, 0.0);
    // Occupancy covers at least the successful run.
    EXPECT_GE(job.total_occupancy, job.true_runtime * 0.99);
  }
  EXPECT_GT(result.mean_attempts, 1.0);
}

TEST(InVivoCampaign, DeterministicForSeeds) {
  const sre::dist::Exponential truth(1.0);
  const sre::core::ReservationSequence plan({1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  const auto cfg = small_config();
  const auto a = run_in_vivo_campaign(truth, plan, cfg);
  const auto b = run_in_vivo_campaign(truth, plan, cfg);
  EXPECT_DOUBLE_EQ(a.mean_turnaround, b.mean_turnaround);
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait);
}

TEST(InVivoCampaign, TimidPlanPaysMoreAttemptsAndOccupancy) {
  const sre::dist::Exponential truth(1.0);
  const sre::core::ReservationSequence timid({0.1, 0.2, 0.4, 0.8, 1.6, 3.2,
                                              6.4, 12.8, 25.6});
  const sre::core::ReservationSequence bold({2.0, 8.0, 32.0});
  const auto cfg = small_config();
  const auto t = run_in_vivo_campaign(truth, timid, cfg);
  const auto b = run_in_vivo_campaign(truth, bold, cfg);
  EXPECT_GT(t.mean_attempts, b.mean_attempts);
  // The timid plan burns more machine time across failed attempts.
  EXPECT_GT(t.mean_occupancy, b.mean_occupancy * 0.99);
}

TEST(InVivoCampaign, ImplicitTailCoversShortPlans) {
  // A one-element plan: everything beyond t1 rides the doubling tail.
  const sre::dist::LogNormal truth(0.0, 0.5);
  const sre::core::ReservationSequence plan({0.4});
  const auto result = run_in_vivo_campaign(truth, plan, small_config());
  EXPECT_EQ(result.incomplete, 0u);
}

TEST(InVivoCampaign, WaitsReflectContention) {
  const sre::dist::Exponential truth(1.0);
  const sre::core::ReservationSequence plan({1.0, 2.0, 4.0, 8.0, 16.0, 32.0});
  auto idle = small_config();
  idle.background.jobs = 5;  // nearly empty cluster
  auto busy = small_config();
  busy.background.mean_interarrival = 0.01;  // saturating
  const auto r_idle = run_in_vivo_campaign(truth, plan, idle);
  const auto r_busy = run_in_vivo_campaign(truth, plan, busy);
  EXPECT_LT(r_idle.mean_wait, r_busy.mean_wait);
}
