#include "stats/root_finding.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rf = sre::stats;

TEST(Brent, Polynomial) {
  const auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const auto root = rf::brent(f, 1.0, 3.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->converged);
  EXPECT_NEAR(root->x, 2.0945514815423265, 1e-10);
}

TEST(Brent, Transcendental) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const auto root = rf::brent(f, 0.0, 1.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NEAR(root->x, 0.7390851332151607, 1e-10);
}

TEST(Brent, RootAtEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  const auto root = rf::brent(f, 1.0, 2.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_DOUBLE_EQ(root->x, 1.0);
}

TEST(Brent, RejectsInvalidBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_FALSE(rf::brent(f, -1.0, 1.0).has_value());
}

TEST(Bisect, AgreesWithBrent) {
  const auto f = [](double x) { return std::exp(x) - 3.0; };
  const auto a = rf::bisect(f, 0.0, 2.0);
  const auto b = rf::brent(f, 0.0, 2.0);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(a->x, std::log(3.0), 1e-9);
  EXPECT_NEAR(b->x, std::log(3.0), 1e-9);
}

TEST(BracketUpward, FindsBracket) {
  const auto f = [](double x) { return x - 100.0; };
  const auto br = rf::bracket_upward(f, 0.0, 1.0);
  ASSERT_TRUE(br.has_value());
  EXPECT_LE(f(br->first) * f(br->second), 0.0);
}

TEST(BracketUpward, GivesUpGracefully) {
  const auto f = [](double) { return 1.0; };
  EXPECT_FALSE(rf::bracket_upward(f, 0.0, 1.0, 16).has_value());
}

TEST(GoldenMinimize, Quadratic) {
  const auto f = [](double x) { return (x - 1.25) * (x - 1.25) + 3.0; };
  // Golden section cannot localize a minimum better than ~sqrt(eps) * scale
  // because function-value comparisons near the minimum are noise-dominated.
  const auto min = rf::golden_minimize(f, -10.0, 10.0, 1e-10);
  EXPECT_NEAR(min.x, 1.25, 1e-6);
  EXPECT_NEAR(min.fx, 3.0, 1e-12);
}

TEST(GoldenMinimize, AsymmetricUnimodal) {
  const auto f = [](double x) { return std::exp(x) - 2.0 * x; };
  const auto min = rf::golden_minimize(f, 0.0, 3.0, 1e-10);
  EXPECT_NEAR(min.x, std::log(2.0), 1e-6);
}

TEST(GridThenGolden, EscapesLocalMinimum) {
  // Two basins; the global minimum is near x = 4.
  const auto f = [](double x) {
    return std::min((x - 1.0) * (x - 1.0) + 0.5,
                    (x - 4.0) * (x - 4.0) * 2.0);
  };
  const auto min = rf::grid_then_golden(f, 0.0, 6.0, 100);
  EXPECT_NEAR(min.x, 4.0, 1e-6);
  EXPECT_NEAR(min.fx, 0.0, 1e-10);
}

TEST(GridThenGolden, HandlesPlateaus) {
  const auto f = [](double x) { return (x < 2.0) ? 1.0 : (x - 3.0) * (x - 3.0); };
  const auto min = rf::grid_then_golden(f, 0.0, 5.0, 200);
  EXPECT_NEAR(min.x, 3.0, 1e-6);
}
