// Solver audit: numerical failure paths must surface as typed
// ScenarioError exceptions, never NaN or a silently wrong answer.
//
//  - every Distribution::quantile rejects NaN / out-of-range probabilities
//    with kDomainError (and still accepts the exact 0 and 1 boundaries that
//    antithetic Monte Carlo evaluates),
//  - stats::require_converged converts failed root searches into
//    kNoConvergence,
//  - ConvexCostFunction::inverse throws instead of returning NaN, and the
//    convex recurrence recovers from that gracefully.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/convex_cost.hpp"
#include "dist/factory.hpp"
#include "dist/histogram.hpp"
#include "dist/mixture.hpp"
#include "dist/tabulated_cdf.hpp"
#include "dist/transform.hpp"
#include "stats/error.hpp"
#include "stats/root_finding.hpp"

using namespace sre;

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void expect_domain_error(const dist::Distribution& d, double p) {
  try {
    (void)d.quantile(p);
    FAIL() << d.name() << ".quantile(" << p << ") did not throw";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDomainError) << d.name();
    EXPECT_NE(std::string(e.what()).find("quantile"), std::string::npos)
        << d.name() << ": " << e.what();
  }
}

}  // namespace

TEST(SolverAudit, EveryPaperDistributionRejectsBadProbabilities) {
  for (const auto& inst : dist::paper_distributions()) {
    const auto& d = *inst.dist;
    expect_domain_error(d, kNaN);
    expect_domain_error(d, -0.25);
    expect_domain_error(d, 1.25);
    expect_domain_error(d, std::numeric_limits<double>::infinity());
  }
}

TEST(SolverAudit, BoundariesStayValidForAntitheticSampling) {
  // quantile(0) and quantile(1) are legitimate (support endpoints); the
  // antithetic Monte Carlo estimator evaluates both.
  for (const auto& inst : dist::paper_distributions()) {
    const auto& d = *inst.dist;
    const auto s = d.support();
    EXPECT_NO_THROW({
      EXPECT_GE(d.quantile(0.0), s.lower) << inst.label;
      EXPECT_GE(d.quantile(1.0), d.quantile(0.0)) << inst.label;
    });
  }
}

TEST(SolverAudit, DerivedDistributionsValidateToo) {
  const auto base = dist::paper_distribution("Exponential")->dist;
  const dist::ScaledDistribution scaled(base, 2.0);
  const dist::ShiftedDistribution shifted(base, 1.0);
  const dist::HistogramDistribution histogram({0.0, 1.0, 2.0}, {0.5, 0.5});
  const auto mixture =
      dist::MixtureDistribution::hyperexponential({0.5, 0.5}, {1.0, 3.0});
  const std::vector<const dist::Distribution*> derived = {
      &scaled, &shifted, &histogram, &mixture};
  for (const dist::Distribution* d : derived) {
    expect_domain_error(*d, kNaN);
    expect_domain_error(*d, 2.0);
  }
  // TabulatedCdf is not a Distribution subclass but shares the contract.
  const dist::TabulatedCdf tabulated(*base, 64, 1e-9);
  for (const double bad : {kNaN, 2.0, -0.5}) {
    EXPECT_THROW((void)tabulated.quantile(bad), ScenarioError) << bad;
  }
}

TEST(SolverAudit, MixtureQuantileNeverSilentlyFallsBack) {
  // A mixture with widely separated components forces the bisection path;
  // the result must satisfy the quantile definition, not be a bracket
  // endpoint returned on a swallowed failure.
  const auto m =
      dist::MixtureDistribution::hyperexponential({0.7, 0.3}, {10.0, 0.01});
  for (const double p : {0.01, 0.25, 0.5, 0.75, 0.9, 0.999}) {
    const double q = m.quantile(p);
    EXPECT_TRUE(std::isfinite(q)) << p;
    EXPECT_NEAR(m.cdf(q), p, 1e-9) << p;
  }
}

TEST(SolverAudit, RequireConvergedThrowsTypedErrors) {
  // Invalid bracket (same sign at both ends) -> nullopt -> kNoConvergence.
  const auto same_sign = [](double) { return 1.0; };
  const auto no_root = stats::brent(same_sign, 0.0, 1.0);
  EXPECT_FALSE(no_root.has_value());
  try {
    (void)stats::require_converged(no_root, "SolverAudit.test");
    FAIL() << "did not throw";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoConvergence);
    EXPECT_NE(std::string(e.what()).find("SolverAudit.test"),
              std::string::npos);
  }
  // A converged result passes through unchanged.
  const auto linear = [](double x) { return x - 0.5; };
  const auto root = stats::brent(linear, 0.0, 1.0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NO_THROW({
    EXPECT_NEAR(stats::require_converged(root, "ok").x, 0.5, 1e-10);
  });
}

TEST(SolverAudit, QuadraticInverseThrowsBelowMinimum) {
  const core::QuadraticCost g(1.0, 1.0, 5.0);  // min value is 5 at x=0
  EXPECT_NEAR(g.inverse(g.value(2.0)), 2.0, 1e-12);
  try {
    (void)g.inverse(1.0);
    FAIL() << "did not throw";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDomainError);
  }
}

TEST(SolverAudit, ConvexRecurrenceSurvivesThrowingInverse) {
  // The brute-force t1 scan feeds many candidate sequences through
  // g.inverse; a candidate whose recurrence leaves the invertible range must
  // be skipped, not crash the scan and not contaminate it with NaN.
  const auto d = dist::paper_distribution("Exponential")->dist;
  const core::QuadraticCost g(0.5, 1.0, 0.25);
  const auto res = core::convex_brute_force(*d, g, 0.1, 8.0, 40);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(std::isfinite(res.best_cost));
  for (const double v : res.best_sequence.values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}
