#include "core/heuristics/polish.hpp"

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/uniform.hpp"

using namespace sre::core;

TEST(Polish, NeverIncreasesCost) {
  const CostModel models[] = {CostModel::reservation_only(),
                              CostModel{0.95, 1.0, 1.05}};
  for (const auto& m : models) {
    for (const auto& inst : sre::dist::paper_distributions()) {
      const auto seed = MeanDoubling().generate(*inst.dist, m);
      const auto polished = polish_sequence(seed, *inst.dist, m);
      EXPECT_LE(polished.cost_after, polished.cost_before * (1.0 + 1e-12))
          << inst.label << " " << m.describe();
      EXPECT_NEAR(
          polished.cost_after,
          expected_cost_analytic(polished.sequence, *inst.dist, m),
          1e-9 * polished.cost_after)
          << inst.label;
    }
  }
}

TEST(Polish, RecoversExactExponentialOptimum) {
  // From a mediocre doubling plan, coordinate descent reaches the true
  // optimum E1 = 2.3644977694 (this is the verification route used in
  // EXPERIMENTS.md, now productized).
  const sre::dist::Exponential e(1.0);
  const CostModel m = CostModel::reservation_only();
  const auto seed = MeanDoubling().generate(e, m);
  PolishOptions opts;
  opts.max_sweeps = 200;
  const auto polished = polish_sequence(seed, e, m, opts);
  EXPECT_NEAR(polished.cost_after, 2.3644977694, 2e-3);
}

TEST(Polish, ImprovesEveryHeuristicTowardBruteForce) {
  const auto inst = sre::dist::paper_distribution("Lognormal");
  const CostModel m = CostModel::reservation_only();
  BruteForceOptions bf;
  bf.grid_points = 2000;
  bf.analytic_eval = true;
  const auto out = brute_force_search(*inst->dist, m, bf);
  ASSERT_TRUE(out.found);

  const MeanByMean mbm;
  const MedianByMedian mm;
  for (const Heuristic* h :
       std::initializer_list<const Heuristic*>{&mbm, &mm}) {
    const auto seed = h->generate(*inst->dist, m);
    PolishOptions opts;
    opts.max_sweeps = 60;
    const auto polished = polish_sequence(seed, *inst->dist, m, opts);
    EXPECT_LT(polished.cost_after, polished.cost_before) << h->name();
    EXPECT_LE(polished.cost_after, out.best_cost * 1.01) << h->name();
  }
}

TEST(Polish, UniformCollapsesTowardSingleReservation) {
  // Theorem 4: the optimum is (b). Polishing a two-step plan slides both
  // elements toward b and the merge pass collapses them.
  const sre::dist::Uniform u(10.0, 20.0);
  const CostModel m{1.0, 0.5, 0.3};
  const auto polished =
      polish_sequence(ReservationSequence({15.0, 20.0}), u, m,
                      PolishOptions{100, 1e-12, 1e-12, true});
  EXPECT_EQ(polished.sequence.size(), 1u);
  EXPECT_NEAR(polished.sequence.first(), 20.0, 1e-6);
  EXPECT_NEAR(polished.cost_after,
              expected_cost_analytic(ReservationSequence({20.0}), u, m),
              1e-6);
}

TEST(Polish, IdempotentAtTheOptimum) {
  const sre::dist::Uniform u(10.0, 20.0);
  const CostModel m = CostModel::reservation_only();
  const auto once =
      polish_sequence(ReservationSequence({20.0}), u, m);
  EXPECT_EQ(once.sequence.size(), 1u);
  EXPECT_NEAR(once.cost_after, once.cost_before, 1e-12);
}
