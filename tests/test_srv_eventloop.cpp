// Loopback-socket integration tests for srv::EventLoop — the concurrent
// protocol harness behind the C10K front end. Every test drives a real
// epoll loop (own thread, ephemeral 127.0.0.1 port) through plain blocking
// client sockets:
//
//   * framing independence: a request delivered one byte at a time parses
//     identically to one delivered in a single write;
//   * per-connection ordering: pipelined requests — including inline-
//     completing malformed lines sandwiched between real solves — come
//     back strictly in request order;
//   * lifecycle: a mid-request disconnect drops the orphaned completion
//     without disturbing the loop or its other connections;
//   * bounded framing: an oversized line is answered with a typed,
//     non-fatal kDomainError and the connection keeps serving;
//   * byte identity: 64 concurrent client connections receive exactly the
//     bytes InProcessClient + format_response produce for the same
//     requests (the "cached" flag, legitimately interleaving-dependent,
//     is normalized on both sides);
//   * overload + deadline: admission sheds with retryable kOverloaded,
//     queue-expired deadlines surface as kTimeout, and neither corrupts
//     the neighbouring slots of its own or any other connection;
//   * accept-side shedding: connections beyond max_connections get one
//     retryable overload line and a clean close, counted in srv.conn.*;
//   * drain: {"cmd":"shutdown"} answers, closes, stops the loop; pipelined
//     requests behind the shutdown die with the server.

#include <gtest/gtest.h>

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "srv/eventloop.hpp"
#include "srv/protocol.hpp"
#include "srv/service.hpp"

namespace {

using sre::srv::EventLoop;
using sre::srv::EventLoopConfig;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

// -- client-side socket plumbing --------------------------------------------

int connect_loopback(unsigned short port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // A stuck server should fail the test, not hang it until the CTest
  // timeout: every read gives up after 30 s.
  timeval tv{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct LineReader {
  int fd;
  std::string buf;

  bool next(std::string& out) {
    for (;;) {
      const auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        out.assign(buf, 0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        return false;
      } else if (errno != EINTR) {
        return false;
      }
    }
  }

  /// True iff the peer closes without sending more complete lines.
  bool eof() {
    std::string line;
    return !next(line);
  }
};

/// Owns a client connection for the duration of a scope.
struct Client {
  int fd = -1;
  LineReader reader{-1, {}};

  explicit Client(unsigned short port) : fd(connect_loopback(port)) {
    reader.fd = fd;
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool ok() const { return fd >= 0; }
  bool send(std::string_view bytes) { return send_all(fd, bytes); }
  bool read_line(std::string& out) { return reader.next(out); }
};

// -- server harness ----------------------------------------------------------

struct Harness {
  PlannerService service;
  EventLoop loop;
  std::thread thread;

  explicit Harness(ServiceConfig scfg = fast_config(),
                   EventLoopConfig ecfg = {})
      : service(scfg), loop(service, ecfg), thread([this] { loop.run(); }) {}

  ~Harness() { stop(); }

  void stop() {
    loop.request_stop();
    if (thread.joinable()) thread.join();
  }

  [[nodiscard]] unsigned short port() const { return loop.port(); }

  static ServiceConfig fast_config() {
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 65536;
    return cfg;
  }
};

/// A valid request line with a key that varies with `variant` (distinct
/// lambda => distinct canonical key => distinct solve).
std::string request_line(const std::string& id, int variant = 0) {
  return "{\"id\":\"" + id + "\",\"dist\":\"exponential:lambda=" +
         std::to_string(1 + (variant % 7)) +
         "\",\"cost\":{\"alpha\":1,\"beta\":0,\"gamma\":0},"
         "\"solver\":\"refined-dp\",\"n\":64}\n";
}

std::string normalize_cached(std::string line) {
  const auto pos = line.find("\"cached\":true");
  if (pos != std::string::npos) line.replace(pos, 13, "\"cached\":false");
  return line;
}

bool has_id(const std::string& line, const std::string& id) {
  return line.find("\"id\":\"" + id + "\"") != std::string::npos;
}

// -- tests -------------------------------------------------------------------

TEST(SrvEventLoop, ByteAtATimeWritesParseIdentically) {
  Harness h;
  Client one_shot(h.port());
  Client dribble(h.port());
  ASSERT_TRUE(one_shot.ok());
  ASSERT_TRUE(dribble.ok());

  const std::string line = request_line("q", 3);
  ASSERT_TRUE(one_shot.send(line));
  std::string expected;
  ASSERT_TRUE(one_shot.read_line(expected));

  for (const char b : line) {
    ASSERT_TRUE(dribble.send(std::string_view(&b, 1)));
  }
  std::string got;
  ASSERT_TRUE(dribble.read_line(got));
  EXPECT_EQ(normalize_cached(got), normalize_cached(expected));
  EXPECT_NE(got.find("\"ok\":true"), std::string::npos);
}

TEST(SrvEventLoop, PipelinedRequestsComeBackInRequestOrder) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.ok());

  // Interleave async-completing solves with inline-completing malformed
  // lines: the inline ones are ready first but must wait their turn.
  std::string burst;
  constexpr int kCount = 24;
  for (int i = 0; i < kCount; ++i) {
    if (i % 3 == 2) {
      burst += "{\"id\":\"" + std::to_string(i) + "\",\"dist\":12}\n";
    } else {
      burst += request_line(std::to_string(i), i);
    }
  }
  ASSERT_TRUE(c.send(burst));

  for (int i = 0; i < kCount; ++i) {
    std::string line;
    ASSERT_TRUE(c.read_line(line)) << "response " << i;
    EXPECT_TRUE(has_id(line, std::to_string(i)))
        << "out of order at " << i << ": " << line;
    if (i % 3 == 2) {
      EXPECT_NE(line.find("\"code\":\"domain_error\""), std::string::npos);
    } else {
      EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
    }
  }
}

TEST(SrvEventLoop, MidRequestDisconnectLeavesTheLoopServing) {
  Harness h;
  {
    Client half(h.port());
    ASSERT_TRUE(half.ok());
    // A partial line (no terminator) and a full request whose completion
    // will arrive after the connection is gone.
    ASSERT_TRUE(half.send(request_line("orphan", 5)));
    ASSERT_TRUE(half.send("{\"id\":\"partial\",\"dist\":"));
  }  // close with one request in flight and one line unterminated

  Client after(h.port());
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.send(request_line("alive", 1)));
  std::string line;
  ASSERT_TRUE(after.read_line(line));
  EXPECT_TRUE(has_id(line, "alive"));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
}

TEST(SrvEventLoop, OversizedLineGetsTypedErrorAndStreamContinues) {
  EventLoopConfig ecfg;
  ecfg.max_line_bytes = 128;
  Harness h(Harness::fast_config(), ecfg);
  Client c(h.port());
  ASSERT_TRUE(c.ok());

  const std::string big(1000, 'x');
  ASSERT_TRUE(c.send(big + "\n" + request_line("next", 2)));

  std::string line;
  ASSERT_TRUE(c.read_line(line));
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"code\":\"domain_error\""), std::string::npos);
  EXPECT_NE(line.find("exceeds 128 bytes"), std::string::npos);

  ASSERT_TRUE(c.read_line(line));
  EXPECT_TRUE(has_id(line, "next"));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

  h.stop();
  EXPECT_EQ(h.loop.counters().framing_errors, 1u);
}

TEST(SrvEventLoop, SixtyFourConcurrentClientsMatchInProcessBytes) {
  constexpr int kClients = 64;
  constexpr int kPerClient = 4;
  Harness h;

  std::vector<std::vector<std::string>> request_lines(kClients);
  std::vector<std::vector<std::string>> served(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int j = 0; j < kPerClient; ++j) {
      request_lines[c].push_back(request_line(
          std::to_string(c) + "-" + std::to_string(j), c + j));
    }
    served[c].resize(kPerClient);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(h.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::string burst;
      for (const auto& l : request_lines[c]) burst += l;
      if (!client.send(burst)) {
        ++failures;
        return;
      }
      for (int j = 0; j < kPerClient; ++j) {
        std::string line;
        if (!client.read_line(line)) {
          ++failures;
          return;
        }
        served[c][static_cast<std::size_t>(j)] = normalize_cached(line);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  h.stop();

  // The no-IO reference path: same service config, same requests (parsed
  // from the same wire bytes), fresh cache.
  PlannerService reference(Harness::fast_config());
  sre::srv::InProcessClient ref_client(reference);
  for (int c = 0; c < kClients; ++c) {
    for (int j = 0; j < kPerClient; ++j) {
      const auto& wire = request_lines[c][static_cast<std::size_t>(j)];
      const auto req = sre::srv::parse_request_line(
          std::string_view(wire).substr(0, wire.size() - 1));
      const auto resp = ref_client.call(req);
      const std::string expected =
          normalize_cached(sre::srv::format_response(req.id, resp));
      EXPECT_EQ(served[c][static_cast<std::size_t>(j)], expected)
          << "client " << c << " request " << j;
    }
  }
}

TEST(SrvEventLoop, OverloadShedsTypedRetryableWithoutCorruptingStreams) {
  ServiceConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 2;  // force admission shedding under the flood
  Harness h(scfg);

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::atomic<int> failures{0};
  std::atomic<int> overloaded{0};
  std::atomic<int> out_of_order{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(h.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::string burst;
      for (int j = 0; j < kPerClient; ++j) {
        // no_cache forces a real solve per admitted request, so the
        // 1-worker queue actually fills.
        burst += "{\"id\":\"" + std::to_string(c) + "-" + std::to_string(j) +
                 "\",\"dist\":\"exponential:lambda=" + std::to_string(c + 1) +
                 "\",\"alpha\":1,\"solver\":\"refined-dp\",\"n\":400," +
                 "\"no_cache\":true}\n";
      }
      if (!client.send(burst)) {
        ++failures;
        return;
      }
      for (int j = 0; j < kPerClient; ++j) {
        std::string line;
        if (!client.read_line(line)) {
          ++failures;
          return;
        }
        // Stream integrity: the j-th response on this connection answers
        // the j-th request, ok or not.
        if (!has_id(line, std::to_string(c) + "-" + std::to_string(j))) {
          ++out_of_order;
        }
        if (line.find("\"code\":\"overloaded\"") != std::string::npos) {
          ++overloaded;
          if (line.find("\"retryable\":true") == std::string::npos) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(out_of_order.load(), 0);
  h.stop();

  const auto counters = h.service.counters();
  EXPECT_EQ(counters.requests,
            static_cast<std::uint64_t>(kClients) * kPerClient);
  // Every wire-visible overload rejection is accounted, and vice versa.
  EXPECT_EQ(counters.rejected_by_code[static_cast<std::size_t>(
                sre::ErrorCode::kOverloaded)],
            static_cast<std::uint64_t>(overloaded.load()));
  EXPECT_EQ(counters.completed + counters.rejected, counters.requests);
}

TEST(SrvEventLoop, QueueExpiredDeadlineSurfacesAsTimeoutInOrder) {
  ServiceConfig scfg;
  scfg.workers = 1;  // one worker: the big solve blocks the queue
  scfg.queue_capacity = 65536;
  Harness h(scfg);
  Client c(h.port());
  ASSERT_TRUE(c.ok());

  // A: a slow uncached solve hogs the only worker. B: microscopically
  // small deadline, guaranteed to expire while A runs. C: untouched.
  const std::string burst =
      "{\"id\":\"A\",\"dist\":\"exponential:lambda=1\",\"alpha\":1,"
      "\"solver\":\"refined-dp\",\"n\":3000,\"no_cache\":true}\n"
      "{\"id\":\"B\",\"dist\":\"exponential:lambda=2\",\"alpha\":1,"
      "\"solver\":\"refined-dp\",\"n\":3000,\"no_cache\":true,"
      "\"deadline_ms\":0.05}\n"
      "{\"id\":\"C\",\"dist\":\"exponential:lambda=3\",\"alpha\":1,"
      "\"solver\":\"refined-dp\",\"n\":64}\n";
  ASSERT_TRUE(c.send(burst));

  std::string line;
  ASSERT_TRUE(c.read_line(line));
  EXPECT_TRUE(has_id(line, "A"));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

  ASSERT_TRUE(c.read_line(line));
  EXPECT_TRUE(has_id(line, "B"));
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"code\":\"timeout\""), std::string::npos);

  ASSERT_TRUE(c.read_line(line));
  EXPECT_TRUE(has_id(line, "C"));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
}

TEST(SrvEventLoop, ConnectionsBeyondMaxAreShedWithOneRetryableLine) {
  EventLoopConfig ecfg;
  ecfg.max_connections = 2;
  Harness h(Harness::fast_config(), ecfg);

  Client a(h.port());
  Client b(h.port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Round trips pin both connections as accepted before the third arrives.
  std::string line;
  ASSERT_TRUE(a.send(request_line("a", 0)));
  ASSERT_TRUE(a.read_line(line));
  ASSERT_TRUE(b.send(request_line("b", 1)));
  ASSERT_TRUE(b.read_line(line));

  Client shed(h.port());
  ASSERT_TRUE(shed.ok());
  ASSERT_TRUE(shed.read_line(line));
  EXPECT_NE(line.find("\"code\":\"overloaded\""), std::string::npos);
  EXPECT_NE(line.find("\"retryable\":true"), std::string::npos);
  EXPECT_NE(line.find("connection limit"), std::string::npos);
  EXPECT_TRUE(shed.reader.eof());

  // The established connections keep serving.
  ASSERT_TRUE(a.send(request_line("a2", 2)));
  ASSERT_TRUE(a.read_line(line));
  EXPECT_TRUE(has_id(line, "a2"));

  h.stop();
  EXPECT_EQ(h.loop.counters().overload_rejects, 1u);
}

TEST(SrvEventLoop, ShutdownCommandDrainsAndKillsPipelinedSuccessors) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.ok());

  // request, shutdown, request: the first is answered, the shutdown is
  // acknowledged, the third dies with the server (no response, EOF).
  ASSERT_TRUE(c.send(request_line("last", 4) + "{\"cmd\":\"shutdown\"}\n" +
                     request_line("dead", 5)));

  std::string line;
  ASSERT_TRUE(c.read_line(line));
  EXPECT_TRUE(has_id(line, "last"));
  ASSERT_TRUE(c.read_line(line));
  EXPECT_NE(line.find("\"shutdown\":true"), std::string::npos);
  EXPECT_TRUE(c.reader.eof());

  // run() must return on its own — no request_stop needed.
  h.thread.join();
  EXPECT_LT(connect_loopback(h.port()), 0);  // listener is gone
}

TEST(SrvEventLoop, RequestStopDrainsIdleConnections) {
  Harness h;
  Client idle(h.port());
  ASSERT_TRUE(idle.ok());
  // Make sure the connection is registered before stopping.
  std::string line;
  ASSERT_TRUE(idle.send(request_line("ping", 0)));
  ASSERT_TRUE(idle.read_line(line));

  h.loop.request_stop();
  h.thread.join();
  EXPECT_TRUE(idle.reader.eof());  // drained: server closed it cleanly
  const auto counters = h.loop.counters();
  EXPECT_EQ(counters.accepted, counters.closed);
}

}  // namespace

#else  // !__linux__

TEST(SrvEventLoop, SkippedWithoutEpoll) {
  GTEST_SKIP() << "srv::EventLoop is Linux-only (epoll)";
}

#endif  // __linux__
