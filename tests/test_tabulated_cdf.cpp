// Property tests for dist::TabulatedCdf: agreement with the direct
// cdf/quantile of each Table 1 law to 1e-12 on random probe grids (including
// the support boundaries), byte-identical discretizer output with and
// without a table, hit/miss accounting, and thread-safe build-once reuse
// through CdfCache.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "dist/factory.hpp"
#include "dist/tabulated_cdf.hpp"
#include "sim/discretize.hpp"

using namespace sre;

namespace {

constexpr std::size_t kGrid = 256;
constexpr double kEps = 1e-7;

double rel_tol(double reference) {
  return 1e-12 * std::max(1.0, std::fabs(reference));
}

}  // namespace

TEST(TabulatedCdf, AgreesWithDirectEvaluationOnRandomGrids) {
  std::mt19937_64 rng(20260806);
  for (const auto& inst : dist::paper_distributions()) {
    SCOPED_TRACE(inst.label);
    const dist::Distribution& d = *inst.dist;
    const dist::TabulatedCdf tab(d, kGrid, kEps);

    std::uniform_real_distribution<double> u01(0.0, 1.0);
    const double lo = tab.lower();
    const double hi = tab.truncation();
    for (int k = 0; k < 400; ++k) {
      const double t = lo + (hi - lo) * 1.05 * u01(rng);
      const double direct = d.cdf(t);
      EXPECT_NEAR(tab.cdf(t), direct, rel_tol(direct)) << "t=" << t;

      const double p = u01(rng);
      const double dq = d.quantile(p);
      EXPECT_NEAR(tab.quantile(p), dq, rel_tol(dq)) << "p=" << p;
    }
  }
}

TEST(TabulatedCdf, SupportBoundaryEdgePoints) {
  for (const auto& inst : dist::paper_distributions()) {
    SCOPED_TRACE(inst.label);
    const dist::Distribution& d = *inst.dist;
    const dist::TabulatedCdf tab(d, kGrid, kEps);
    const dist::Support s = d.support();

    // Exact support boundaries and just outside them.
    for (const double t :
         {s.lower, std::nextafter(s.lower, -1.0), tab.truncation(),
          tab.truncation() * 1.5}) {
      const double direct = d.cdf(t);
      EXPECT_NEAR(tab.cdf(t), direct, rel_tol(direct)) << "t=" << t;
    }
    // Quantile at the probability extremes.
    for (const double p : {0.0, 1e-15, tab.mass(), 1.0}) {
      const double direct = d.quantile(p);
      const double got = tab.quantile(p);
      if (std::isinf(direct)) {
        EXPECT_TRUE(std::isinf(got) && got > 0.0) << "p=" << p;
      } else {
        EXPECT_NEAR(got, direct, rel_tol(direct)) << "p=" << p;
      }
    }
    // Grid-point probes are exact, not just close: the table *is* the
    // direct value at those points.
    const double f = tab.mass() / static_cast<double>(kGrid);
    for (const std::size_t k : {std::size_t{1}, kGrid / 2, kGrid}) {
      const double p = static_cast<double>(k) * f;
      EXPECT_EQ(tab.quantile(p), d.quantile(p)) << "k=" << k;
      EXPECT_EQ(tab.quantile_point(k), d.quantile(p)) << "k=" << k;
    }
  }
}

TEST(TabulatedCdf, GridProbesHitAndForeignProbesMiss) {
  const auto inst = dist::paper_distribution("Exponential");
  ASSERT_TRUE(inst.has_value());
  const dist::Distribution& d = *inst->dist;
  const dist::TabulatedCdf tab(d, kGrid, kEps);
  EXPECT_EQ(tab.counters().hits, 0u);
  EXPECT_EQ(tab.counters().misses, 0u);

  const double f = tab.mass() / static_cast<double>(kGrid);
  for (std::size_t k = 1; k <= kGrid; ++k) {
    (void)tab.quantile(static_cast<double>(k) * f);
  }
  EXPECT_EQ(tab.counters().hits, kGrid);
  EXPECT_EQ(tab.counters().misses, 0u);

  (void)tab.quantile(0.123456789);
  (void)tab.cdf(0.987654321);
  EXPECT_EQ(tab.counters().misses, 2u);
}

TEST(TabulatedCdf, DiscretizerOutputByteIdenticalWithAndWithoutTable) {
  for (const auto& inst : dist::paper_distributions()) {
    SCOPED_TRACE(inst.label);
    const dist::Distribution& d = *inst.dist;
    const dist::TabulatedCdf tab(d, kGrid, kEps);
    for (const auto scheme : {sim::DiscretizationScheme::kEqualProbability,
                              sim::DiscretizationScheme::kEqualTime}) {
      SCOPED_TRACE(sim::to_string(scheme));
      const sim::DiscretizationOptions opts{kGrid, kEps, scheme};
      const auto direct = sim::discretize(d, opts);
      const auto cached = sim::discretize(d, opts, &tab);
      ASSERT_EQ(direct.size(), cached.size());
      EXPECT_EQ(direct.values(), cached.values());
      EXPECT_EQ(direct.probabilities(), cached.probabilities());

      // A mismatched table must fall back without changing the output.
      const dist::TabulatedCdf other(d, kGrid / 2, kEps);
      const auto fallback = sim::discretize(d, opts, &other);
      EXPECT_EQ(direct.values(), fallback.values());
      EXPECT_EQ(direct.probabilities(), fallback.probabilities());
    }
  }
}

TEST(CdfCache, BuildsOncePerGridAndCountsReuse) {
  const auto inst = dist::paper_distribution("LogNormal");
  const auto fallback = dist::paper_distributions().front();
  const dist::DistributionPtr dp =
      inst.has_value() ? inst->dist : fallback.dist;
  const dist::CdfCache cache(dp);

  const auto t1 = cache.table(128, kEps);
  const auto t2 = cache.table(128, kEps);
  const auto t3 = cache.table(64, kEps);
  EXPECT_EQ(t1.get(), t2.get());
  EXPECT_NE(t1.get(), t3.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.reuses, 1u);

  (void)t1->quantile_point(1);
  EXPECT_GE(cache.lookup_counters().hits, 1u);
}

TEST(CdfCache, ConcurrentRequestsShareOneTable) {
  const auto fallback = dist::paper_distributions().front();
  const dist::CdfCache cache(fallback.dist);
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const dist::TabulatedCdf>> got(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back(
        [&cache, &got, i] { got[i] = cache.table(96, kEps); });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(got[0].get(), got[i].get());
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().reuses, 7u);
}
