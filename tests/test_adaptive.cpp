#include "platform/adaptive.hpp"

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"
#include "sim/discretize.hpp"

using namespace sre::platform;
using sre::core::CostModel;

TEST(Adaptive, StartsWithDoublingPrior) {
  AdaptiveOptions opts;
  opts.prior_guess = 0.5;
  const AdaptiveScheduler s(CostModel::reservation_only(), opts);
  EXPECT_DOUBLE_EQ(s.current_plan().first(), 0.5);
  EXPECT_DOUBLE_EQ(s.current_plan()[1], 1.0);
  EXPECT_EQ(s.jobs_seen(), 0u);
}

TEST(Adaptive, RecordsHistoryAndRefits) {
  AdaptiveOptions opts;
  opts.warmup_jobs = 4;
  opts.refit_interval = 4;
  AdaptiveScheduler s(CostModel::reservation_only(), opts);
  const auto prior_first = s.current_plan().first();
  for (const double x : {1.0, 2.0, 1.5, 3.0}) s.run_job(x);
  EXPECT_EQ(s.jobs_seen(), 4u);
  // After warmup the plan is DP-fitted to the empirical law: its elements
  // are drawn from {1, 1.5, 2, 3} plus the safety guard.
  EXPECT_NE(s.current_plan().first(), prior_first);
  EXPECT_DOUBLE_EQ(s.current_plan().last(), 3.0 * opts.safety_factor);
}

TEST(Adaptive, ConvergesToClairvoyantOnExponential) {
  const sre::dist::Exponential truth(1.0);
  const CostModel m = CostModel::reservation_only();
  AdaptiveOptions opts;
  opts.prior_guess = 8.0;  // a bad prior: one order of magnitude off
  const auto campaign = run_adaptive_campaign(truth, 3000, m, opts, 5);

  // Clairvoyant reference: DP on the (discretized) truth, costed exactly.
  const sre::core::DiscretizedDp clairvoyant(sre::sim::DiscretizationOptions{
      500, 1e-7, sre::sim::DiscretizationScheme::kEqualProbability});
  const double reference = sre::core::expected_cost_analytic(
      clairvoyant.generate(truth, m), truth, m);

  // The last learning window sits within sampling noise of the optimum.
  EXPECT_LT(campaign.final_window_cost, reference * 1.25);
  // And learning helped: the first window (prior plan) was worse.
  EXPECT_GT(campaign.window_mean_cost.front(), campaign.final_window_cost);
}

TEST(Adaptive, LearningCurveImprovesOnLogNormal) {
  const sre::dist::LogNormal truth(3.0, 0.5);
  const CostModel m{1.0, 0.5, 0.1};
  AdaptiveOptions opts;
  opts.prior_guess = 1.0;    // far below the ~23 mean
  opts.warmup_jobs = 100;    // first window runs entirely on the bad prior
  const auto campaign = run_adaptive_campaign(truth, 2000, m, opts, 9, 100);
  ASSERT_GE(campaign.window_mean_cost.size(), 5u);
  // Average of the last three windows beats the first window by a margin.
  const auto& w = campaign.window_mean_cost;
  const double late =
      (w[w.size() - 1] + w[w.size() - 2] + w[w.size() - 3]) / 3.0;
  EXPECT_LT(late, w.front() * 0.9);
}

TEST(Adaptive, DeterministicForSeed) {
  const sre::dist::Exponential truth(2.0);
  const CostModel m = CostModel::reservation_only();
  const AdaptiveOptions opts;
  const auto a = run_adaptive_campaign(truth, 500, m, opts, 42);
  const auto b = run_adaptive_campaign(truth, 500, m, opts, 42);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  const auto c = run_adaptive_campaign(truth, 500, m, opts, 43);
  EXPECT_NE(a.total_cost, c.total_cost);
}

TEST(Adaptive, HandlesBoundedSupport) {
  const sre::dist::Uniform truth(10.0, 20.0);
  const CostModel m = CostModel::reservation_only();
  AdaptiveOptions opts;
  opts.prior_guess = 1.0;
  const auto campaign = run_adaptive_campaign(truth, 1000, m, opts, 3);
  // The optimum for Uniform is a single reservation at b = 20 (cost 20/15);
  // the adaptive plan converges near it (the safety guard adds nothing in
  // expectation once the plan's first element covers b).
  EXPECT_LT(campaign.final_window_cost, 20.0 * 1.1);
  EXPECT_GE(campaign.final_window_cost, 15.0);
}

TEST(Adaptive, WindowAccountingIsComplete) {
  const sre::dist::Exponential truth(1.0);
  const auto campaign = run_adaptive_campaign(
      truth, 230, CostModel::reservation_only(), AdaptiveOptions{}, 1, 50);
  // 230 jobs with window 50 -> 5 windows (last partial).
  EXPECT_EQ(campaign.window_mean_cost.size(), 5u);
  EXPECT_GT(campaign.total_cost, 0.0);
  EXPECT_NEAR(campaign.mean_cost, campaign.total_cost / 230.0, 1e-12);
}
