// Cross-validation of the three cost routes: Theorem 1 closed form (Eq. 4),
// direct integration of the definition (Eq. 3), and Monte Carlo (Eq. 13).

#include "core/expected_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/omniscient.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"
#include "stats/integrate.hpp"

using namespace sre::core;

namespace {

// Direct evaluation of Eq. (3): sum_k integral_{t_{k-1}}^{t_k} C(k,t) f(t) dt,
// independent of the Theorem 1 rewrite.
double expected_cost_direct(const ReservationSequence& seq,
                            const sre::dist::Distribution& d,
                            const CostModel& m) {
  const auto& t = seq.values();
  double total = 0.0;
  double lo = 0.0;
  double prefix = 0.0;  // sum over failed attempts of (alpha+beta) t_i + gamma
  for (std::size_t k = 0; k < t.size(); ++k) {
    const double hi = t[k];
    const double piece = sre::stats::integrate(
        [&](double x) {
          return (prefix + m.alpha * t[k] + m.beta * x + m.gamma) * d.pdf(x);
        },
        lo, hi, 1e-12);
    total += piece;
    prefix += (m.alpha + m.beta) * t[k] + m.gamma;
    lo = hi;
  }
  return total;
}

}  // namespace

TEST(ExpectedCost, UniformSectionTwoExample) {
  // Section 2.3's UNIFORM(a,b) example with S = ((a+b)/2, b):
  // first term covers t in [a, m], second adds the failed first reservation.
  const sre::dist::Uniform u(10.0, 20.0);
  const CostModel m{1.0, 0.5, 0.25};
  const ReservationSequence s({15.0, 20.0});
  const double a = 10.0, b = 20.0, mid = 15.0;
  const double term1 =
      (mid - a) / (b - a) * (m.alpha * mid + m.beta * (a + mid) / 2.0 + m.gamma);
  const double term2 =
      (b - mid) / (b - a) *
      ((m.alpha * mid + m.beta * mid + m.gamma) +
       (m.alpha * b + m.beta * (mid + b) / 2.0 + m.gamma));
  EXPECT_NEAR(expected_cost_analytic(s, u, m), term1 + term2, 1e-9);
}

TEST(ExpectedCost, AnalyticEqualsDirectIntegrationUniform) {
  const sre::dist::Uniform u(10.0, 20.0);
  const ReservationSequence s({12.0, 16.0, 20.0});
  for (const CostModel m : {CostModel{1.0, 0.0, 0.0}, CostModel{0.95, 1.0, 1.05},
                            CostModel{2.0, 0.3, 0.1}}) {
    EXPECT_NEAR(expected_cost_analytic(s, u, m), expected_cost_direct(s, u, m),
                1e-7)
        << m.describe();
  }
}

TEST(ExpectedCost, AnalyticEqualsDirectIntegrationExponential) {
  const sre::dist::Exponential e(1.0);
  // Cover well past the 1e-15 tail so the direct evaluation sees everything.
  std::vector<double> v;
  for (double t = 0.8; t < 45.0; t *= 1.6) v.push_back(t);
  const ReservationSequence s(std::move(v));
  for (const CostModel m : {CostModel{1.0, 0.0, 0.0}, CostModel{1.0, 1.0, 0.5}}) {
    EXPECT_NEAR(expected_cost_analytic(s, e, m), expected_cost_direct(s, e, m),
                1e-6)
        << m.describe();
  }
}

TEST(ExpectedCost, ExponentialArithmeticSequenceClosedForm) {
  // S = (1/l, 2/l, ...), RESERVATIONONLY: E = sum_{i>=0} t_{i+1} e^{-l t_i}
  // = (1/l) sum_{i>=0} (i+1) e^{-i} = (1/l) / (1 - 1/e)^2.
  const double lambda = 1.0;
  const sre::dist::Exponential e(lambda);
  std::vector<double> v;
  for (int i = 1; i <= 60; ++i) v.push_back(i / lambda);
  const ReservationSequence s(std::move(v));
  const double expected = 1.0 / lambda / std::pow(1.0 - std::exp(-1.0), 2.0);
  EXPECT_NEAR(
      expected_cost_analytic(s, e, CostModel::reservation_only()), expected,
      1e-9);
}

TEST(ExpectedCost, MonteCarloAgreesWithAnalytic) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    // A generic covering sequence: double from the mean.
    std::vector<double> v{inst.dist->mean()};
    const auto sup = inst.dist->support();
    if (sup.bounded()) {
      if (v.back() < sup.upper) v.push_back(sup.upper);
    } else {
      while (inst.dist->sf(v.back()) > 1e-12) v.push_back(v.back() * 2.0);
    }
    const ReservationSequence s(std::move(v));
    const CostModel m{1.0, 0.5, 0.1};
    const double analytic = expected_cost_analytic(s, *inst.dist, m);
    sre::sim::MonteCarloOptions opts;
    opts.samples = 40000;
    opts.seed = 31;
    const auto mc = expected_cost_monte_carlo(s, *inst.dist, m, opts);
    EXPECT_NEAR(mc.mean, analytic, 6.0 * mc.std_error + 1e-9 * analytic)
        << inst.label;
  }
}

TEST(ExpectedCost, LowerBoundedByFirstReservationTerm) {
  // Eq. (4) implies E(S) >= beta E[X] + alpha t1 + gamma.
  const sre::dist::LogNormal d(3.0, 0.5);
  const CostModel m{1.0, 0.7, 0.3};
  std::vector<double> v{10.0};
  while (d.sf(v.back()) > 1e-12) v.push_back(v.back() * 2.0);
  const ReservationSequence s(std::move(v));
  EXPECT_GE(expected_cost_analytic(s, d, m),
            m.beta * d.mean() + m.alpha * 10.0 + m.gamma);
}

TEST(Omniscient, Formula) {
  const sre::dist::Exponential e(2.0);
  EXPECT_DOUBLE_EQ(omniscient_cost(e, CostModel{1.0, 0.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(omniscient_cost(e, CostModel{0.95, 1.0, 1.05}),
                   1.95 * 0.5 + 1.05);
  EXPECT_DOUBLE_EQ(normalized_cost(1.0, e, CostModel{1.0, 0.0, 0.0}), 2.0);
}

TEST(Omniscient, NormalizedAtLeastOneForAnyStrategy) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    std::vector<double> v{inst.dist->mean()};
    const auto sup = inst.dist->support();
    if (sup.bounded()) {
      if (v.back() < sup.upper) v.push_back(sup.upper);
    } else {
      while (inst.dist->sf(v.back()) > 1e-12) v.push_back(v.back() * 2.0);
    }
    const ReservationSequence s(std::move(v));
    const CostModel m = CostModel::reservation_only();
    const double cost = expected_cost_analytic(s, *inst.dist, m);
    EXPECT_GE(normalized_cost(cost, *inst.dist, m), 1.0 - 1e-9) << inst.label;
  }
}
