#include "core/cost_model.hpp"

#include <gtest/gtest.h>

using sre::core::CostModel;

TEST(CostModel, ReservationOnlyDefaults) {
  const CostModel m = CostModel::reservation_only();
  EXPECT_DOUBLE_EQ(m.alpha, 1.0);
  EXPECT_DOUBLE_EQ(m.beta, 0.0);
  EXPECT_DOUBLE_EQ(m.gamma, 0.0);
  EXPECT_TRUE(m.valid());
}

TEST(CostModel, AttemptCostSuccess) {
  // Job of 2 within a reservation of 5: alpha*5 + beta*2 + gamma.
  const CostModel m{2.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(m.attempt_cost(5.0, 2.0), 10.0 + 6.0 + 1.0);
}

TEST(CostModel, AttemptCostFailure) {
  // Job of 7 in a reservation of 5: the full reservation is consumed.
  const CostModel m{2.0, 3.0, 1.0};
  EXPECT_DOUBLE_EQ(m.attempt_cost(5.0, 7.0), 10.0 + 15.0 + 1.0);
}

TEST(CostModel, AttemptCostExactFit) {
  const CostModel m{1.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(m.attempt_cost(4.0, 4.0), 4.0 + 4.0 + 0.5);
}

TEST(CostModel, Validity) {
  EXPECT_FALSE((CostModel{0.0, 0.0, 0.0}).valid());
  EXPECT_FALSE((CostModel{-1.0, 0.0, 0.0}).valid());
  EXPECT_FALSE((CostModel{1.0, -0.1, 0.0}).valid());
  EXPECT_FALSE((CostModel{1.0, 0.0, -0.1}).valid());
  EXPECT_TRUE((CostModel{0.95, 1.0, 1.05}).valid());
}

TEST(CostModel, Describe) {
  EXPECT_EQ((CostModel{1.0, 0.0, 0.0}).describe(),
            "CostModel(alpha=1, beta=0, gamma=0)");
}
