// Adaptive brownout in srv::PlannerService: when the oldest queued batch
// has waited longer than the configured sojourn threshold, new arrivals
// are shed *at admission* with retryable kOverloaded plus a retry_after_ms
// hint that grows with the excess sojourn — CoDel's insight applied to the
// solver queue. A second seam sheds "doomed" requests whose deadline
// budget cannot outlive the sojourn already ahead of them. Both are off by
// default (brownout_sojourn_ms == 0), keeping every historical byte
// stream and baseline intact.
//
// Tests occupy the single worker with an injected-latency fault
// (probability one), exactly like test_srv_service's overload tests, so
// the queue state is deterministic and assertions only need generous
// windows — no timing races on the shed decision itself.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "srv/protocol.hpp"
#include "srv/service.hpp"
#include "stats/error.hpp"

namespace {

using sre::ErrorCode;
using sre::srv::PlanRequest;
using sre::srv::PlanResponse;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

PlanRequest request(const char* dist = "lognormal:mu=3,sigma=0.5") {
  PlanRequest req;
  req.dist_spec = dist;
  req.model = {1.0, 1.0, 1.0};
  req.solver = "equal-probability";
  req.n = 64;
  req.epsilon = 1e-6;
  return req;
}

/// One worker, kept busy half a second per batch by an injected-latency
/// fault; brownout armed with threshold `sojourn_ms`.
ServiceConfig slow_config(double sojourn_ms) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.faults.seed = 1;
  cfg.faults.latency_prob = 1.0;
  cfg.faults.latency_seconds = 0.5;
  cfg.brownout_sojourn_ms = sojourn_ms;
  return cfg;
}

bool wait_for_solves(const PlannerService& service, std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.counters().solves < target) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// Occupies the worker with one solve (key A) and parks a second batch
/// (key B) in the queue, then sleeps long enough for B's sojourn to
/// clearly exceed `ms`. Returns the joinable blocker thread.
std::thread occupy_and_age_queue(PlannerService& service, double ms) {
  std::thread blocker([&service] {
    auto req = request();
    const auto resp = service.call(req);
    EXPECT_TRUE(resp.ok) << resp.message;
  });
  EXPECT_TRUE(wait_for_solves(service, 1));
  service.submit(request("exponential:lambda=0.25"),
                 [](PlanResponse) {});  // queued behind the busy worker
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(ms + 20.0));
  return blocker;
}

TEST(SrvBrownout, ShedsAtAdmissionWhenSojournExceedsThreshold) {
  PlannerService service(slow_config(1.0));
  std::thread blocker = occupy_and_age_queue(service, 1.0);

  auto req = request("uniform:a=1,b=2");
  const auto resp = service.call(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kOverloaded);
  EXPECT_TRUE(resp.retryable);
  EXPECT_EQ(resp.message.rfind("brownout: queue sojourn above", 0), 0u)
      << resp.message;
  // The hint is clamped to [retry_after_min_ms, retry_after_max_ms].
  EXPECT_GE(resp.retry_after_ms, service.config().retry_after_min_ms);
  EXPECT_LE(resp.retry_after_ms, service.config().retry_after_max_ms);
  EXPECT_EQ(service.counters().brownout_shed, 1u);
  EXPECT_EQ(service.counters().brownout_doomed, 0u);

  // The stats JSON now carries the brownout block (nonzero-only, like
  // by_code), and the wire response carries the hint.
  EXPECT_NE(service.stats_json().find("\"brownout\""), std::string::npos);
  const std::string wire = sre::srv::format_response("x", resp);
  EXPECT_NE(wire.find("\"retry_after_ms\":"), std::string::npos);

  blocker.join();
}

TEST(SrvBrownout, HintSaturatesAtTheConfiguredMaximum) {
  ServiceConfig cfg = slow_config(1.0);
  cfg.retry_after_min_ms = 5.0;
  cfg.retry_after_max_ms = 7.0;
  PlannerService service(cfg);
  // Sojourn ages ~70 ms; raw hint = age - 1 + 5 >> 7, so it clamps.
  std::thread blocker = occupy_and_age_queue(service, 50.0);

  auto req = request("uniform:a=1,b=2");
  const auto resp = service.call(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_DOUBLE_EQ(resp.retry_after_ms, 7.0);
  blocker.join();
}

TEST(SrvBrownout, DoomedRequestsShedAsRetryableInsteadOfTimingOut) {
  // Threshold high enough that the sojourn shed never fires; the doomed
  // seam must catch a request whose 1 ms budget cannot outlive the ~70 ms
  // sojourn already ahead of it.
  PlannerService service(slow_config(1e6));
  std::thread blocker = occupy_and_age_queue(service, 50.0);

  auto req = request("uniform:a=1,b=2");
  req.deadline_ms = 1.0;
  const auto resp = service.call(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kOverloaded);  // NOT kTimeout: retryable
  EXPECT_TRUE(resp.retryable);
  EXPECT_EQ(resp.message, "brownout: deadline budget below current queue sojourn");
  EXPECT_GE(resp.retry_after_ms, service.config().retry_after_min_ms);
  EXPECT_EQ(service.counters().brownout_doomed, 1u);
  EXPECT_EQ(service.counters().brownout_shed, 0u);
  blocker.join();
}

TEST(SrvBrownout, DisabledByDefaultKeepsHistoricalBehavior) {
  // Same overload shape, brownout off: the late arrival queues and (with
  // a deadline) times out exactly as before — and neither the stats JSON
  // nor the wire response grows any new bytes.
  PlannerService service(slow_config(0.0));
  std::thread blocker = occupy_and_age_queue(service, 10.0);

  auto req = request("uniform:a=1,b=2");
  req.deadline_ms = 20.0;
  const auto resp = service.call(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kTimeout);  // the historical path
  EXPECT_EQ(resp.retry_after_ms, 0.0);
  EXPECT_EQ(service.counters().brownout_shed, 0u);
  EXPECT_EQ(service.counters().brownout_doomed, 0u);
  EXPECT_EQ(service.stats_json().find("\"brownout\""), std::string::npos);
  EXPECT_EQ(sre::srv::format_response("x", resp).find("retry_after_ms"),
            std::string::npos);
  blocker.join();
}

TEST(SrvBrownout, QueueEmptyNeverSheds) {
  ServiceConfig cfg;
  cfg.brownout_sojourn_ms = 0.001;  // hair trigger — but no queue, no age
  PlannerService service(cfg);
  auto req = request();
  const auto resp = service.call(req);
  EXPECT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(service.counters().brownout_shed, 0u);
}

TEST(SrvBrownout, FromEnvReadsTheKnobs) {
  ::setenv("SRE_SRV_BROWNOUT_MS", "12.5", 1);
  ::setenv("SRE_SRV_RETRY_AFTER_MIN_MS", "2.5", 1);
  ::setenv("SRE_SRV_RETRY_AFTER_MAX_MS", "250", 1);
  const ServiceConfig cfg = ServiceConfig::from_env();
  ::unsetenv("SRE_SRV_BROWNOUT_MS");
  ::unsetenv("SRE_SRV_RETRY_AFTER_MIN_MS");
  ::unsetenv("SRE_SRV_RETRY_AFTER_MAX_MS");
  EXPECT_DOUBLE_EQ(cfg.brownout_sojourn_ms, 12.5);
  EXPECT_DOUBLE_EQ(cfg.retry_after_min_ms, 2.5);
  EXPECT_DOUBLE_EQ(cfg.retry_after_max_ms, 250.0);
  EXPECT_DOUBLE_EQ(ServiceConfig::from_env().brownout_sojourn_ms, 0.0);
}

}  // namespace
