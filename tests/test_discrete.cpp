#include "dist/discrete.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "stats/summary.hpp"

using sre::dist::DiscreteDistribution;

namespace {
DiscreteDistribution three_point() {
  return DiscreteDistribution({1.0, 2.0, 4.0}, {0.2, 0.3, 0.5});
}
}  // namespace

TEST(Discrete, NormalizesProbabilities) {
  const DiscreteDistribution d({1.0, 2.0}, {2.0, 6.0});
  EXPECT_DOUBLE_EQ(d.probabilities()[0], 0.25);
  EXPECT_DOUBLE_EQ(d.probabilities()[1], 0.75);
}

TEST(Discrete, PmfAtAtomsOnly) {
  const auto d = three_point();
  EXPECT_DOUBLE_EQ(d.pdf(2.0), 0.3);
  EXPECT_DOUBLE_EQ(d.pdf(3.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(0.0), 0.0);
}

TEST(Discrete, CdfIsRightContinuousStep) {
  const auto d = three_point();
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.2);
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.2);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(9.0), 1.0);
}

TEST(Discrete, SurvivalIsStrict) {
  // sf(t) = P(X > t): at an atom the atom itself is excluded, which is what
  // the Theorem 1 series requires (reservation i+1 paid iff X > t_i).
  const auto d = three_point();
  EXPECT_DOUBLE_EQ(d.sf(1.0), 0.8);
  EXPECT_DOUBLE_EQ(d.sf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.sf(4.0), 0.0);
  EXPECT_DOUBLE_EQ(d.sf(0.0), 1.0);
}

TEST(Discrete, QuantileIsGeneralizedInverse) {
  const auto d = three_point();
  EXPECT_DOUBLE_EQ(d.quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.21), 2.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.51), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
}

TEST(Discrete, MomentsExact) {
  const auto d = three_point();
  const double mean = 0.2 * 1.0 + 0.3 * 2.0 + 0.5 * 4.0;  // 2.8
  EXPECT_NEAR(d.mean(), mean, 1e-14);
  const double var = 0.2 * (1 - mean) * (1 - mean) +
                     0.3 * (2 - mean) * (2 - mean) +
                     0.5 * (4 - mean) * (4 - mean);
  EXPECT_NEAR(d.variance(), var, 1e-13);
}

TEST(Discrete, ConditionalMeanAboveAtoms) {
  const auto d = three_point();
  // Above 1: (0.3*2 + 0.5*4)/0.8 = 3.25.
  EXPECT_NEAR(d.conditional_mean_above(1.0), 3.25, 1e-13);
  EXPECT_NEAR(d.conditional_mean_above(2.0), 4.0, 1e-13);
  // Empty tail: returns tau.
  EXPECT_DOUBLE_EQ(d.conditional_mean_above(4.0), 4.0);
}

TEST(Discrete, SamplingMatchesPmf) {
  const auto d = three_point();
  sre::sim::Rng rng = sre::sim::make_rng(123);
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    if (x == 1.0) ++counts[0];
    else if (x == 2.0) ++counts[1];
    else if (x == 4.0) ++counts[2];
    else FAIL() << "sample off-support: " << x;
  }
  EXPECT_NEAR(counts[0] / double(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.5, 0.01);
}

TEST(Discrete, FromSamplesBuildsEmpirical) {
  const std::vector<double> samples = {3.0, 1.0, 3.0, 2.0, 3.0, 1.0};
  const auto d = DiscreteDistribution::from_samples(samples);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.probabilities()[0], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.probabilities()[2], 3.0 / 6.0);
  EXPECT_NEAR(d.mean(), (1 + 3 + 3 + 2 + 3 + 1) / 6.0, 1e-14);
}

TEST(Discrete, SupportAndDescribe) {
  const auto d = three_point();
  EXPECT_DOUBLE_EQ(d.support().lower, 1.0);
  EXPECT_DOUBLE_EQ(d.support().upper, 4.0);
  EXPECT_TRUE(d.support().bounded());
  EXPECT_EQ(d.name(), "Discrete");
}
