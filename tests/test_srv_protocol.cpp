// srv:: NDJSON protocol: request parsing (spec-string and object forms,
// nested and top-level cost fields, id normalization), typed error lines
// for malformed input (echoing the id when one was recoverable), control
// commands, and the hit-equals-cold byte identity observed at the wire
// level.

#include <gtest/gtest.h>

#include <string>

#include "obs/minijson.hpp"
#include "srv/protocol.hpp"
#include "srv/service.hpp"
#include "stats/error.hpp"

namespace {

using sre::srv::handle_line;
using sre::srv::parse_request_line;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

TEST(Protocol, ParsesFullRequest) {
  const auto req = parse_request_line(
      R"({"id":"q1","dist":{"name":"lognormal","params":{"mu":3,"sigma":0.5}},)"
      R"("cost":{"alpha":0.95,"beta":1,"gamma":1.05},"solver":"refined-dp",)"
      R"("n":500,"epsilon":1e-6,"deadline_ms":250,"attempt":2,"no_cache":true})");
  EXPECT_EQ(req.id, "q1");
  EXPECT_EQ(req.dist_name, "lognormal");
  EXPECT_DOUBLE_EQ(req.dist_params.at("mu"), 3.0);
  EXPECT_DOUBLE_EQ(req.dist_params.at("sigma"), 0.5);
  EXPECT_DOUBLE_EQ(req.model.alpha, 0.95);
  EXPECT_DOUBLE_EQ(req.model.beta, 1.0);
  EXPECT_DOUBLE_EQ(req.model.gamma, 1.05);
  EXPECT_EQ(req.solver, "refined-dp");
  EXPECT_EQ(req.n, 500u);
  EXPECT_DOUBLE_EQ(req.epsilon, 1e-6);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 250.0);
  EXPECT_EQ(req.attempt, 2);
  EXPECT_TRUE(req.no_cache);
}

TEST(Protocol, TopLevelCostFieldsWork) {
  const auto req = parse_request_line(
      R"({"dist":"exponential:lambda=1","alpha":2,"beta":1,"gamma":0.5})");
  EXPECT_EQ(req.dist_spec, "exponential:lambda=1");
  EXPECT_DOUBLE_EQ(req.model.alpha, 2.0);
  EXPECT_DOUBLE_EQ(req.model.beta, 1.0);
  EXPECT_DOUBLE_EQ(req.model.gamma, 0.5);
}

TEST(Protocol, NumericIdNormalizes) {
  const auto req = parse_request_line(R"({"id":7,"dist":"exponential"})");
  EXPECT_EQ(req.id, "7");
}

TEST(Protocol, UnknownFieldsAreIgnored) {
  const auto req = parse_request_line(
      R"({"dist":"exponential","x-trace-id":"abc","priority":3})");
  EXPECT_EQ(req.dist_spec, "exponential");
}

TEST(Protocol, TraceFieldThreadsThroughAsOpaqueContext) {
  const auto req = parse_request_line(
      R"({"id":"t1","dist":"exponential","trace":"req-77/span-3"})");
  EXPECT_EQ(req.trace, "req-77/span-3");
  EXPECT_TRUE(parse_request_line(R"({"dist":"exponential"})").trace.empty());
  EXPECT_THROW((void)parse_request_line(R"({"dist":"exponential","trace":5})"),
               sre::ScenarioError);
}

TEST(Protocol, MalformedJsonThrowsDomainError) {
  try {
    (void)parse_request_line("{not json");
    FAIL() << "expected ScenarioError";
  } catch (const sre::ScenarioError& e) {
    EXPECT_EQ(e.code(), sre::ErrorCode::kDomainError);
  }
}

TEST(Protocol, HandleLineServesARequest) {
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(
      service,
      R"({"id":"job-1","dist":"exponential:lambda=1","solver":"mean-doubling"})");
  EXPECT_FALSE(outcome.shutdown);
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("id")->string, "job-1");
  EXPECT_TRUE(parsed.value.find("ok")->boolean);
  ASSERT_NE(parsed.value.find("result"), nullptr);
  EXPECT_NE(parsed.value.find("result")->find("plan"), nullptr);
}

TEST(Protocol, HandleLineEchoesIdOnErrors) {
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(
      service, R"({"id":"q9","dist":"exponential","solver":"nope"})");
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("id")->string, "q9");
  EXPECT_FALSE(parsed.value.find("ok")->boolean);
  const auto* error = parsed.value.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("code")->string, "domain_error");
  EXPECT_FALSE(error->find("retryable")->boolean);
}

TEST(Protocol, HandleLineSurvivesGarbage) {
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(service, "][ nonsense");
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok) << "error lines must still be valid JSON";
  EXPECT_FALSE(parsed.value.find("ok")->boolean);
}

TEST(Protocol, WireHitBytesMatchColdBytes) {
  PlannerService service(ServiceConfig{});
  const std::string line =
      R"({"id":"a","dist":"uniform:a=1,b=9","solver":"equal-probability","n":32})";
  const auto cold = handle_line(service, line);
  const auto hit = handle_line(service, line);
  const auto cold_json = sre::obs::minijson::parse(cold.line);
  const auto hit_json = sre::obs::minijson::parse(hit.line);
  ASSERT_TRUE(cold_json.ok && hit_json.ok);
  EXPECT_FALSE(cold_json.value.find("cached")->boolean);
  EXPECT_TRUE(hit_json.value.find("cached")->boolean);
  // The "result" objects are the cache value verbatim: strip the envelope
  // difference ("cached") and the raw bytes must agree.
  const auto result_of = [](const std::string& s) {
    const auto pos = s.find("\"result\":");
    return s.substr(pos);
  };
  EXPECT_EQ(result_of(cold.line), result_of(hit.line));
}

TEST(Protocol, StatsCommandReturnsServiceStats) {
  PlannerService service(ServiceConfig{});
  (void)handle_line(
      service, R"({"dist":"exponential","solver":"mean-doubling"})");
  const auto outcome = handle_line(service, R"({"cmd":"stats"})");
  EXPECT_FALSE(outcome.shutdown);
  EXPECT_EQ(outcome.line, service.stats_json());
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok);
  EXPECT_DOUBLE_EQ(parsed.value.find("requests")->number, 1.0);
}

TEST(Protocol, StatsVerbClassifiesAndAnswersWithNullLoopOnStdio) {
  using sre::srv::ClassifiedLine;
  // {"stats":true} with no "dist" is live introspection...
  EXPECT_EQ(sre::srv::classify_line(R"({"stats":true})").kind,
            ClassifiedLine::Kind::kServerStats);
  // ...but a plan request carrying a stray "stats" field stays a request,
  // and {"stats":false} is just an id-less malformed request.
  EXPECT_EQ(sre::srv::classify_line(
                R"({"dist":"exponential","stats":true})")
                .kind,
            ClassifiedLine::Kind::kRequest);
  EXPECT_EQ(sre::srv::classify_line(R"({"stats":false})").kind,
            ClassifiedLine::Kind::kError);

  // The stdio transport has no event loop: loop is null, service is the
  // same byte-stable stats JSON the {"cmd":"stats"} command returns.
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(service, R"({"stats":true})");
  EXPECT_FALSE(outcome.shutdown);
  EXPECT_EQ(outcome.line,
            "{\"ok\":true,\"loop\":null,\"service\":" + service.stats_json() +
                "}");
}

TEST(Protocol, ClassifiedErrorsCarryCodeAndRecoveredId) {
  const auto c = sre::srv::classify_line(R"({"id":"e1","dist":12})");
  EXPECT_EQ(c.kind, sre::srv::ClassifiedLine::Kind::kError);
  EXPECT_EQ(c.error_code, sre::ErrorCode::kDomainError);
  EXPECT_EQ(c.id, "e1");  // recovered before the parse failed: log-joinable
  EXPECT_NE(c.response.find("\"id\":\"e1\""), std::string::npos);
}

TEST(Protocol, ShutdownCommandSetsFlag) {
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(service, R"({"cmd":"shutdown"})");
  EXPECT_TRUE(outcome.shutdown);
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.value.find("ok")->boolean);
}

TEST(Protocol, UnknownCommandIsATypedError) {
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(service, R"({"cmd":"reboot"})");
  EXPECT_FALSE(outcome.shutdown);
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok);
  EXPECT_FALSE(parsed.value.find("ok")->boolean);
}

TEST(Protocol, PingClassifiesAsLivenessAndAnswersWithPong) {
  using sre::srv::ClassifiedLine;
  EXPECT_EQ(sre::srv::classify_line(R"({"ping":true})").kind,
            ClassifiedLine::Kind::kPing);
  // Extra fields ride along (probers tag their pings); only ping:true is
  // the verb — ping:false is not a liveness probe.
  EXPECT_EQ(sre::srv::classify_line(R"({"ping":true,"probe":"hb-3"})").kind,
            ClassifiedLine::Kind::kPing);
  EXPECT_EQ(sre::srv::classify_line(R"({"ping":false})").kind,
            ClassifiedLine::Kind::kError);

  // Every transport answers with the same pinned pong line — heartbeats
  // must never depend on which front end they hit.
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(service, R"({"ping":true})");
  EXPECT_FALSE(outcome.shutdown);
  EXPECT_EQ(outcome.line, std::string(sre::srv::kPongLine));
}

TEST(Protocol, TaskFramesClassifyAsTasks) {
  using sre::srv::ClassifiedLine;
  // Classification is transport routing, not validation: the frame body is
  // the task layer's problem (cluster::parse_task), so even a nonsense
  // task value classifies as kTask and carries the raw line onward.
  EXPECT_EQ(sre::srv::classify_line(R"({"task":"sweep","v":1})").kind,
            ClassifiedLine::Kind::kTask);
  EXPECT_EQ(sre::srv::classify_line(R"({"task":"unknown"})").kind,
            ClassifiedLine::Kind::kTask);
}

TEST(Protocol, TaskOnStdioIsATypedDomainError) {
  // The stdio transport has no task handler: a task frame is answered with
  // a typed, non-retryable kDomainError instead of silently vanishing.
  PlannerService service(ServiceConfig{});
  const auto outcome = handle_line(service, R"({"task":"sweep","v":1})");
  EXPECT_FALSE(outcome.shutdown);
  const auto parsed = sre::obs::minijson::parse(outcome.line);
  ASSERT_TRUE(parsed.ok);
  EXPECT_FALSE(parsed.value.find("ok")->boolean);
  const auto* error = parsed.value.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("code")->string,
            sre::error_code_name(sre::ErrorCode::kDomainError));
  EXPECT_FALSE(error->find("retryable")->boolean);
}

}  // namespace
