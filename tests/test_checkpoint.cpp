// Checkpointed reservations: ledger arithmetic, per-job costs vs the
// independent event simulator, the exact bucket expected cost vs Monte
// Carlo, and DP optimality vs exhaustive enumeration of work-target plans.

#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "sim/event_sim.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre::core;

namespace {
const CheckpointModel kCkpt{0.2, 0.1};
const CostModel kFull{1.0, 0.5, 0.25};
}  // namespace

TEST(CheckpointSequence, LedgerFromReservations) {
  // t = (2, 3): W1 = 2 - 0 - 0.2 = 1.8; W2 = 1.8 + 3 - 0.1 - 0.2 = 4.5.
  const auto seq =
      CheckpointSequence::from_reservations({2.0, 3.0}, kCkpt);
  ASSERT_TRUE(seq.has_value());
  ASSERT_EQ(seq->size(), 2u);
  EXPECT_NEAR(seq->banked_work()[0], 1.8, 1e-12);
  EXPECT_NEAR(seq->banked_work()[1], 4.5, 1e-12);
}

TEST(CheckpointSequence, RejectsWorklessReservations) {
  // First reservation must exceed C = 0.2 (no restart on attempt 1).
  EXPECT_FALSE(
      CheckpointSequence::from_reservations({0.15, 3.0}, kCkpt).has_value());
  EXPECT_FALSE(
      CheckpointSequence::from_reservations({2.0, 0.3}, kCkpt).has_value());
  EXPECT_FALSE(CheckpointSequence::from_reservations({}, kCkpt).has_value());
}

TEST(CheckpointSequence, FromWorkTargetsRoundTrips) {
  const auto seq =
      CheckpointSequence::from_work_targets({1.0, 2.5, 6.0}, kCkpt);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_NEAR(seq.reservations()[0], 1.0 + 0.2, 1e-12);        // no restart
  EXPECT_NEAR(seq.reservations()[1], 1.5 + 0.1 + 0.2, 1e-12);
  EXPECT_NEAR(seq.reservations()[2], 3.5 + 0.1 + 0.2, 1e-12);
  EXPECT_NEAR(seq.banked_work()[2], 6.0, 1e-12);
  const auto round =
      CheckpointSequence::from_reservations(seq.reservations(), kCkpt);
  ASSERT_TRUE(round.has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(round->banked_work()[i], seq.banked_work()[i], 1e-12);
  }
}

TEST(CheckpointSequence, CostForHandComputed) {
  const auto seq =
      CheckpointSequence::from_work_targets({1.0, 3.0}, kCkpt);
  // Job x = 0.5 finishes first try: t1 = 1.2, used = 0.5.
  EXPECT_NEAR(seq.cost_for(0.5, kFull), 1.0 * 1.2 + 0.5 * 0.5 + 0.25, 1e-12);
  // Job x = 2.0: fails attempt 1 (uses all 1.2), finishes attempt 2
  // (t2 = 2.3, used = 0.1 + (2.0 - 1.0) = 1.1).
  const double a1 = 1.0 * 1.2 + 0.5 * 1.2 + 0.25;
  const double a2 = 1.0 * 2.3 + 0.5 * 1.1 + 0.25;
  EXPECT_NEAR(seq.cost_for(2.0, kFull), a1 + a2, 1e-12);
  EXPECT_EQ(seq.attempts_for(0.5), 1u);
  EXPECT_EQ(seq.attempts_for(2.0), 2u);
  EXPECT_EQ(seq.attempts_for(1.0), 1u);  // boundary: exactly the target
}

TEST(CheckpointSequence, ImplicitTailDoublesWork) {
  const auto seq = CheckpointSequence::from_work_targets({1.0}, kCkpt);
  // x = 3.5: targets 1 (fail), 2 (fail), 4 (success) -> 3 attempts.
  EXPECT_EQ(seq.attempts_for(3.5), 3u);
  const double t1 = 1.2, t2 = 1.0 + 0.3, t3 = 2.0 + 0.3;
  const double used3 = 0.1 + (3.5 - 2.0);
  const double expect = (1.0 * t1 + 0.5 * t1 + 0.25) +
                        (1.0 * t2 + 0.5 * t2 + 0.25) +
                        (1.0 * t3 + 0.5 * used3 + 0.25);
  EXPECT_NEAR(seq.cost_for(3.5, kFull), expect, 1e-12);
}

TEST(Checkpoint, CostForMatchesEventSimulator) {
  const auto seq =
      CheckpointSequence::from_work_targets({0.7, 1.9, 4.2, 9.0, 20.0}, kCkpt);
  const sre::sim::CheckpointingSimulator simulator(
      seq.reservations(), {kFull.alpha, kFull.beta, kFull.gamma},
      kCkpt.checkpoint_cost, kCkpt.restart_cost);
  const sre::dist::Exponential e(0.5);
  sre::sim::Rng rng = sre::sim::make_rng(8);
  for (int i = 0; i < 3000; ++i) {
    const double x = e.sample(rng);
    if (x > seq.banked_work().back()) continue;  // simulator has no tail
    const auto out = simulator.run_job(x);
    ASSERT_TRUE(out.completed) << x;
    EXPECT_NEAR(out.total_cost, seq.cost_for(x, kFull), 1e-9) << x;
    EXPECT_EQ(out.attempts, seq.attempts_for(x)) << x;
  }
}

TEST(Checkpoint, ExpectedCostMatchesMonteCarlo) {
  const sre::dist::LogNormal d(1.0, 0.6);
  const auto seq = checkpoint_mean_doubling(d, kCkpt);
  const double analytic = checkpoint_expected_cost(seq, d, kFull);
  sre::sim::Rng rng = sre::sim::make_rng(77);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 60000; ++i) acc.add(seq.cost_for(d.sample(rng), kFull));
  EXPECT_NEAR(acc.mean(), analytic, 6.0 * acc.standard_error());
}

TEST(Checkpoint, ZeroOverheadsReduceToResumableExecution) {
  // With C = R = 0 the total reserved time for a job equals its own size
  // rounded up to the last target -- no work is ever lost.
  const CheckpointModel none{0.0, 0.0};
  const auto seq = CheckpointSequence::from_work_targets({1.0, 2.0, 4.0}, none);
  const CostModel ro = CostModel::reservation_only();
  // x = 3.5: reservations 1 + 1 + 2 = 4 = final target.
  EXPECT_NEAR(seq.cost_for(3.5, ro), 4.0, 1e-12);
  EXPECT_NEAR(seq.cost_for(0.5, ro), 1.0, 1e-12);
}

namespace {

// Brute-force optimum over every subset of support points as work targets
// (the last positive-mass point always included).
double exhaustive_checkpoint_optimum(const sre::dist::DiscreteDistribution& d,
                                     const CostModel& m,
                                     const CheckpointModel& ckpt) {
  const auto& v = d.values();
  const auto& f = d.probabilities();
  const std::size_t n = v.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << (n - 1)); ++mask) {
    std::vector<double> targets;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (mask & (std::size_t{1} << i)) targets.push_back(v[i]);
    }
    targets.push_back(v[n - 1]);
    const auto seq = CheckpointSequence::from_work_targets(targets, ckpt);
    double cost = 0.0;
    for (std::size_t k = 0; k < n; ++k) cost += f[k] * seq.cost_for(v[k], m);
    best = std::min(best, cost);
  }
  return best;
}

sre::dist::DiscreteDistribution random_discrete(std::mt19937_64& rng,
                                                std::size_t n) {
  std::uniform_real_distribution<double> u(0.2, 5.0);
  std::vector<double> values, probs;
  double cur = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cur += u(rng);
    values.push_back(cur);
    probs.push_back(u(rng));
  }
  return sre::dist::DiscreteDistribution(std::move(values), std::move(probs));
}

}  // namespace

TEST(CheckpointDp, MatchesExhaustiveEnumeration) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 24; ++trial) {
    const auto d = random_discrete(rng, 2 + trial % 8);
    const CostModel m{1.0, 0.3 * (trial % 3), 0.1 * (trial % 4)};
    const CheckpointModel ckpt{0.05 * (trial % 4), 0.05 * (trial % 3)};
    const auto dp = checkpoint_dp(d, m, ckpt);
    const double best = exhaustive_checkpoint_optimum(d, m, ckpt);
    EXPECT_NEAR(dp.expected_cost, best, 1e-9 * (1.0 + best)) << trial;
  }
}

TEST(CheckpointDp, ExpectedCostMatchesBucketEvaluator) {
  std::mt19937_64 rng(5);
  const auto d = random_discrete(rng, 8);
  const auto dp = checkpoint_dp(d, kFull, kCkpt);
  EXPECT_NEAR(dp.expected_cost, checkpoint_expected_cost(dp.sequence, d, kFull),
              1e-9 * (1.0 + dp.expected_cost));
}

TEST(CheckpointDp, ZeroOverheadNeverWorseThanRestartDp) {
  // With C = R = 0, checkpointing strictly dominates restart-from-scratch:
  // the same targets cost less because failures bank their work.
  std::mt19937_64 rng(9);
  const auto d = random_discrete(rng, 10);
  const CostModel m = CostModel::reservation_only();
  const auto ckpt_dp = checkpoint_dp(d, m, CheckpointModel{0.0, 0.0});
  // For every job x, the zero-overhead checkpointed plan costs <= the
  // restart plan with the same targets. Verify pointwise on the DP's plan.
  std::vector<double> targets;
  for (const std::size_t j : ckpt_dp.targets) targets.push_back(d.values()[j]);
  const ReservationSequence restart_plan{std::vector<double>(targets)};
  for (const double x : d.values()) {
    const auto seq =
        CheckpointSequence::from_work_targets(targets, CheckpointModel{0, 0});
    EXPECT_LE(seq.cost_for(x, m), restart_plan.cost_for(x, m) + 1e-9) << x;
  }
}

TEST(CheckpointDp, ExpensiveCheckpointsCollapseToSingleReservation) {
  std::mt19937_64 rng(13);
  const auto d = random_discrete(rng, 6);
  const CheckpointModel pricey{100.0, 100.0};
  const auto dp = checkpoint_dp(d, CostModel::reservation_only(), pricey);
  EXPECT_EQ(dp.sequence.size(), 1u);
  EXPECT_NEAR(dp.sequence.banked_work()[0], d.values().back(), 1e-12);
}

TEST(CheckpointMeanDoubling, CoversUnboundedLaws) {
  const sre::dist::Weibull w(1.0, 0.5);
  const auto seq = checkpoint_mean_doubling(w, kCkpt);
  EXPECT_GE(seq.size(), 2u);
  EXPECT_LE(w.sf(seq.banked_work().back()), 1e-12);
  EXPECT_NEAR(seq.banked_work().front(), w.mean(), 1e-12);
}

TEST(Checkpoint, MonotoneInOverheads) {
  // Same work targets: more expensive checkpoints can only raise the cost.
  const sre::dist::Exponential e(1.0);
  const std::vector<double> targets = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  double prev = -1.0;
  for (const double c : {0.0, 0.1, 0.3, 0.8}) {
    const auto seq = CheckpointSequence::from_work_targets(
        targets, CheckpointModel{c, 0.1});
    const double cost = checkpoint_expected_cost(seq, e, kFull);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CheckpointFixedQuantum, TargetsAreMultiples) {
  const sre::dist::Exponential e(1.0);
  const auto plan = checkpoint_fixed_quantum(e, kCkpt, 0.5);
  const auto& w = plan.banked_work();
  ASSERT_GE(w.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w[i], 0.5 * static_cast<double>(i + 1), 1e-12) << i;
  }
  EXPECT_LE(e.sf(w.back()), 1e-12);
}

TEST(CheckpointFixedQuantum, BoundedSupportEndsAtB) {
  const auto inst = sre::dist::paper_distribution("Uniform");
  const auto plan = checkpoint_fixed_quantum(*inst->dist, kCkpt, 3.0);
  EXPECT_DOUBLE_EQ(plan.banked_work().back(), 20.0);
}

TEST(CheckpointFixedQuantum, QuantumSweepIsUShaped) {
  // Tiny and huge quanta both lose to an intermediate one.
  const sre::dist::LogNormal d(1.0, 0.6);
  const CheckpointModel ckpt{0.05 * d.mean(), 0.05 * d.mean()};
  const CostModel m = CostModel::reservation_only();
  const double tiny = checkpoint_expected_cost(
      checkpoint_fixed_quantum(d, ckpt, 0.02 * d.mean()), d, m);
  const double mid = checkpoint_expected_cost(
      checkpoint_fixed_quantum(d, ckpt, 0.5 * d.mean()), d, m);
  const double huge = checkpoint_expected_cost(
      checkpoint_fixed_quantum(d, ckpt, 8.0 * d.mean()), d, m);
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

TEST(CheckpointDiscretizedDp, CoversContinuousLaws) {
  const sre::dist::Weibull w(1.0, 0.5);
  const CostModel m = CostModel::reservation_only();
  const auto plan = checkpoint_discretized_dp(w, m, kCkpt);
  EXPECT_LE(w.sf(plan.banked_work().back()), 1e-12);
  // And it beats the fixed-quantum family at its own game.
  const double dp_cost = checkpoint_expected_cost(plan, w, m);
  for (const double q : {0.25, 1.0, 4.0}) {
    const double fixed = checkpoint_expected_cost(
        checkpoint_fixed_quantum(w, kCkpt, q * w.mean()), w, m);
    EXPECT_LE(dp_cost, fixed * 1.02) << q;
  }
}

TEST(CheckpointAdvisor, ZeroOverheadAlwaysCheckpoints) {
  const sre::dist::Exponential e(1.0);
  const auto advice = advise_checkpointing(
      e, CostModel::reservation_only(), CheckpointModel{0.0, 0.0});
  EXPECT_TRUE(advice.use_checkpoints);
  EXPECT_GT(advice.savings_fraction, 0.3);
}

TEST(CheckpointAdvisor, HugeOverheadNeverCheckpoints) {
  const sre::dist::Exponential e(1.0);
  const auto advice = advise_checkpointing(
      e, CostModel::reservation_only(), CheckpointModel{50.0, 50.0});
  EXPECT_FALSE(advice.use_checkpoints);
  EXPECT_LT(advice.savings_fraction, 0.0);
}

TEST(CheckpointAdvisor, MonotoneInOverhead) {
  const sre::dist::LogNormal d(1.0, 0.6);
  const CostModel m = CostModel::reservation_only();
  double prev = 1.0;
  for (const double c : {0.0, 0.05, 0.2, 0.8}) {
    const auto advice =
        advise_checkpointing(d, m, CheckpointModel{c * d.mean(), c * d.mean()});
    EXPECT_LE(advice.savings_fraction, prev + 1e-9) << c;
    prev = advice.savings_fraction;
  }
}

TEST(CheckpointPolish, NeverIncreasesCost) {
  const sre::dist::LogNormal d(1.0, 0.6);
  const CostModel m = CostModel::reservation_only();
  const auto seed = checkpoint_mean_doubling(d, kCkpt);
  const auto polished = polish_checkpoint_targets(seed, d, m);
  EXPECT_LE(polished.cost_after, polished.cost_before * (1.0 + 1e-12));
  EXPECT_NEAR(polished.cost_after,
              checkpoint_expected_cost(polished.sequence, d, m),
              1e-9 * polished.cost_after);
}

TEST(CheckpointPolish, RepairsHeavyTailDpPlans) {
  // On Pareto-like tails the discretized DP's last work gap is huge; the
  // polish must close most of the gap to the best fixed quantum.
  const sre::dist::Weibull w(1.0, 0.5);
  const CostModel m = CostModel::reservation_only();
  const CheckpointModel ckpt{0.05 * w.mean(), 0.05 * w.mean()};
  const auto dp_plan = checkpoint_discretized_dp(w, m, ckpt);
  const double dp_cost = checkpoint_expected_cost(dp_plan, w, m);
  const auto polished = polish_checkpoint_targets(dp_plan, w, m, 24);
  EXPECT_LE(polished.cost_after, dp_cost * (1.0 + 1e-12));
  // Best fixed quantum as the quality bar.
  double best_fixed = std::numeric_limits<double>::infinity();
  for (const double q : {0.25, 0.5, 1.0}) {
    best_fixed = std::min(
        best_fixed, checkpoint_expected_cost(
                        checkpoint_fixed_quantum(w, ckpt, q * w.mean()), w, m));
  }
  EXPECT_LE(polished.cost_after, best_fixed * 1.05);
}

TEST(CheckpointPolish, KeepsBoundedSupportCovered) {
  const auto inst = sre::dist::paper_distribution("Uniform");
  const CostModel m = CostModel::reservation_only();
  const auto seed = checkpoint_mean_doubling(*inst->dist, kCkpt);
  const auto polished = polish_checkpoint_targets(seed, *inst->dist, m);
  EXPECT_GE(polished.sequence.banked_work().back(), 20.0 - 1e-9);
}
