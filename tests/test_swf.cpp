#include "platform/swf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "platform/trace.hpp"

using namespace sre::platform;

namespace {

// A tiny but well-formed SWF snippet: header comments, 18 fields per line.
const char* kSample =
    "; Version: 2.2\n"
    "; Computer: Testium 409\n"
    "; MaxProcs: 409\n"
    "1  0    5  3600  16 -1 -1  7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"
    "2  60  12  1800  32 -1 -1  3600 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"
    "3  90   7    -1  16 -1 -1  7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"  // bad rt
    "4  30   3   900   8 -1 -1    -1 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"  // no req
    "5 120   9  4000  64 -1 -1  3600 -1 -1 1 1 1 -1 -1 -1 -1 -1\n";

}  // namespace

TEST(Swf, ParsesJobsAndHeader) {
  const auto log = parse_swf(kSample);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->header.size(), 3u);
  EXPECT_EQ(log->jobs.size(), 4u);   // job 3 skipped
  EXPECT_EQ(log->skipped, 1u);
}

TEST(Swf, SortsBySubmitTime) {
  const auto log = parse_swf(kSample);
  ASSERT_TRUE(log.has_value());
  // Job 4 (submit 30) sorts between jobs 1 and 2.
  EXPECT_EQ(log->jobs[0].id, 1);
  EXPECT_EQ(log->jobs[1].id, 4);
  EXPECT_EQ(log->jobs[2].id, 2);
  EXPECT_EQ(log->jobs[3].id, 5);
}

TEST(Swf, FieldMapping) {
  const auto log = parse_swf(kSample);
  const auto& j = log->jobs[0];
  EXPECT_DOUBLE_EQ(j.submit, 0.0);
  EXPECT_DOUBLE_EQ(j.runtime, 3600.0);
  EXPECT_EQ(j.processors, 16u);
  EXPECT_DOUBLE_EQ(j.requested, 7200.0);
}

TEST(Swf, MissingRequestFallsBackToRuntime) {
  const auto log = parse_swf(kSample);
  const auto& j4 = log->jobs[1];
  ASSERT_EQ(j4.id, 4);
  EXPECT_DOUBLE_EQ(j4.requested, 900.0);
}

TEST(Swf, RuntimeFilterByProcessorBand) {
  const auto log = parse_swf(kSample);
  const auto all = swf_runtimes(*log);
  EXPECT_EQ(all.size(), 4u);
  const auto wide = swf_runtimes(*log, 32, SIZE_MAX);
  ASSERT_EQ(wide.size(), 2u);
  EXPECT_DOUBLE_EQ(wide[0], 1800.0);
  EXPECT_DOUBLE_EQ(wide[1], 4000.0);
}

TEST(Swf, ClusterJobConversionClampsAndConverts) {
  const auto log = parse_swf(kSample);
  const auto jobs = swf_to_cluster_jobs(*log, 32);
  ASSERT_EQ(jobs.size(), 4u);
  // Hours conversion.
  EXPECT_NEAR(jobs[0].actual, 1.0, 1e-12);
  EXPECT_NEAR(jobs[0].requested, 2.0, 1e-12);
  // Job 5: runtime 4000 > requested 3600 -> request raised to the runtime.
  const auto& j5 = jobs[3];
  EXPECT_NEAR(j5.requested, 4000.0 / 3600.0, 1e-12);
  EXPECT_LE(j5.actual, j5.requested);
  // Width clamped to the simulated machine.
  EXPECT_EQ(j5.width, 32u);
}

TEST(Swf, ConvertedJobsRunThroughTheClusterSimulator) {
  const auto log = parse_swf(kSample);
  const auto jobs = swf_to_cluster_jobs(*log, 64);
  const auto records = sre::sim::simulate_backfill_queue({64}, jobs);
  for (const auto& r : records) {
    EXPECT_GE(r.wait, 0.0);
  }
}

TEST(Swf, RuntimesFeedTheTracePipeline) {
  const auto log = parse_swf(kSample);
  const auto trace = swf_runtimes(*log);
  const auto d = empirical_distribution(trace);
  EXPECT_GT(d->mean(), 0.0);
}

TEST(Swf, RejectsGarbageContent) {
  std::string error;
  EXPECT_FALSE(parse_swf("; only a header\n", &error).has_value());
  EXPECT_FALSE(parse_swf("not swf at all", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Swf, MissingFileReported) {
  std::string error;
  EXPECT_FALSE(read_swf("/nonexistent/log.swf", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(Swf, RejectsFieldsThatWouldOverflowIntegerCasts) {
  // Casting a double beyond the target type's range is UB, so lines with
  // astronomic ids / processor counts must be skipped before the cast —
  // previously these were cast unchecked.
  const char* hostile =
      "1e300 0 5 3600 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"  // id
      "2 0 5 3600 1e300 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"   // procs
      "nan 0 5 3600 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"    // NaN id
      "4 0 5 3600 nan -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"     // NaN procs
      "5 0 5 3600 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n";     // valid
  const auto log = parse_swf(hostile);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->jobs.size(), 1u);
  EXPECT_EQ(log->jobs[0].id, 5);
  EXPECT_EQ(log->skipped, 4u);
}

TEST(Swf, RejectsNonFiniteAndAbsurdTimes) {
  const char* hostile =
      "1 inf 5 3600 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"   // inf submit
      "2 0 5 inf 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"      // inf runtime
      "3 0 5 nan 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"      // nan runtime
      "4 1e17 5 3600 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"  // absurd
      "5 0 5 3600 16 -1 -1 inf -1 -1 1 1 1 -1 -1 -1 -1 -1\n"      // inf request
      "6 0 5 3600 16 -1 -1 7200 -1 -1 1 1 1 -1 -1 -1 -1 -1\n";    // valid
  const auto log = parse_swf(hostile);
  ASSERT_TRUE(log.has_value());
  // An inf request is corruption (unknown is -1), so job 5 is skipped
  // whole rather than falling back to the runtime.
  EXPECT_EQ(log->jobs.size(), 1u);
  EXPECT_EQ(log->skipped, 5u);
  for (const auto& j : log->jobs) {
    EXPECT_TRUE(std::isfinite(j.submit) && std::isfinite(j.runtime) &&
                std::isfinite(j.requested));
  }
}

TEST(Swf, SurvivesTruncatedAndCorruptFixtures) {
  // Fuzz-style corpus: a typed reject or a valid parse, never a crash.
  const std::vector<std::string> fixtures = {
      "1 0 5",                       // truncated line (too few fields)
      "1 0 5 3600 16 -1 -1",         // truncated mid-fields
      "; header only\n;\n",          // no jobs
      "\n\n",                        // blank
      std::string(200000, '9'),         // one enormous token
      "1 0 5 3600 16 -1 -1 abc -1 -1\n"  // non-numeric field mid-line
  };
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    std::string error;
    const auto log = parse_swf(fixtures[i], &error);
    EXPECT_FALSE(log.has_value()) << "fixture " << i;
    EXPECT_FALSE(error.empty()) << "fixture " << i;
  }
}
