// Distribution-specific closed-form checks (Table 5 / Appendix A & B).

#include <gtest/gtest.h>

#include <cmath>

#include "dist/beta.hpp"
#include "dist/bounded_pareto.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "dist/pareto.hpp"
#include "dist/truncated_normal.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"

using namespace sre::dist;

TEST(Exponential, TableFiveFormulas) {
  const Exponential d(2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.25);
  EXPECT_NEAR(d.cdf(1.0), 1.0 - std::exp(-2.0), 1e-14);
  EXPECT_NEAR(d.quantile(0.5), std::log(2.0) / 2.0, 1e-14);
  EXPECT_NEAR(d.pdf(0.7), 2.0 * std::exp(-1.4), 1e-14);
}

TEST(Exponential, Memorylessness) {
  const Exponential d(1.5);
  // E[X | X > tau] = tau + 1/lambda.
  for (double tau : {0.0, 0.5, 2.0, 10.0}) {
    EXPECT_NEAR(d.conditional_mean_above(tau), tau + 1.0 / 1.5, 1e-12) << tau;
  }
  // P(X > s + t) = P(X > s) P(X > t).
  EXPECT_NEAR(d.sf(3.0), d.sf(1.0) * d.sf(2.0), 1e-14);
}

TEST(Weibull, TableFiveFormulas) {
  const Weibull d(1.0, 0.5);
  EXPECT_NEAR(d.mean(), std::tgamma(3.0), 1e-12);  // lambda Gamma(1+1/k) = 2
  EXPECT_NEAR(d.variance(), std::tgamma(5.0) - 4.0, 1e-10);  // 24 - 4 = 20
  EXPECT_NEAR(d.quantile(0.5), std::pow(std::log(2.0), 2.0), 1e-12);
  EXPECT_NEAR(d.sf(4.0), std::exp(-2.0), 1e-14);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(2.0, 1.0);
  const Exponential e(0.5);
  for (double t : {0.1, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-13) << t;
    EXPECT_NEAR(w.pdf(t), e.pdf(t), 1e-13) << t;
  }
  EXPECT_NEAR(w.conditional_mean_above(1.0), e.conditional_mean_above(1.0),
              1e-8);
}

TEST(Gamma, TableFiveFormulas) {
  const Gamma d(2.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.5);
  // CDF(t) = 1 - e^{-2t}(1 + 2t) for shape 2.
  for (double t : {0.2, 1.0, 2.5}) {
    EXPECT_NEAR(d.cdf(t), 1.0 - std::exp(-2.0 * t) * (1.0 + 2.0 * t), 1e-12)
        << t;
  }
}

TEST(Gamma, ShapeOneIsExponential) {
  const Gamma g(1.0, 3.0);
  const Exponential e(3.0);
  for (double t : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(g.cdf(t), e.cdf(t), 1e-12);
    EXPECT_NEAR(g.pdf(t), e.pdf(t), 1e-12);
  }
}

TEST(LogNormal, TableFiveFormulas) {
  const LogNormal d(3.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(3.125), 1e-10);
  EXPECT_NEAR(d.variance(),
              (std::exp(0.25) - 1.0) * std::exp(6.25), 1e-8);
  EXPECT_NEAR(d.median(), std::exp(3.0), 1e-9);
  EXPECT_NEAR(d.cdf(d.mean()), 0.5987063256829237, 1e-9);  // Phi(sigma/2)
}

TEST(LogNormal, FromMomentsMatches) {
  const LogNormal d = LogNormal::from_moments(10.0, 3.0);
  EXPECT_NEAR(d.mean(), 10.0, 1e-9);
  EXPECT_NEAR(d.stddev(), 3.0, 1e-9);
}

TEST(TruncatedNormal, UntruncatedLimit) {
  // Truncating far below the mean leaves the Normal untouched.
  const TruncatedNormal d(8.0, std::sqrt(2.0), -40.0);
  EXPECT_NEAR(d.mean(), 8.0, 1e-9);
  EXPECT_NEAR(d.variance(), 2.0, 1e-9);
  EXPECT_NEAR(d.median(), 8.0, 1e-9);
}

TEST(TruncatedNormal, PaperInstantiation) {
  // mu=8, sigma^2=2, a=0: truncation at ~5.66 sigma below the mean barely
  // shifts the law.
  const TruncatedNormal d(8.0, std::sqrt(2.0), 0.0);
  EXPECT_NEAR(d.mean(), 8.0, 1e-6);
  EXPECT_NEAR(d.variance(), 2.0, 1e-5);
  EXPECT_DOUBLE_EQ(d.support().lower, 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
}

TEST(TruncatedNormal, HeavyTruncation) {
  // Truncate at the mean: E[X | X > mu] = mu + sigma * phi(0)/0.5.
  const TruncatedNormal d(5.0, 2.0, 5.0);
  const double lambda0 = std::sqrt(2.0 / M_PI);
  EXPECT_NEAR(d.mean(), 5.0 + 2.0 * lambda0, 1e-10);
  EXPECT_NEAR(d.variance(), 4.0 * (1.0 - lambda0 * lambda0), 1e-9);
}

TEST(Pareto, TableFiveFormulas) {
  const Pareto d(1.5, 3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.25);
  EXPECT_NEAR(d.variance(), 3.0 * 2.25 / (4.0 * 1.0), 1e-12);
  EXPECT_NEAR(d.quantile(0.875), 3.0, 1e-12);  // 1-(1.5/3)^3 = 0.875
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.0);
  EXPECT_DOUBLE_EQ(d.sf(1.0), 1.0);
}

TEST(Pareto, SelfSimilarConditionalMean) {
  const Pareto d(1.5, 3.0);
  for (double tau : {2.0, 5.0, 50.0}) {
    EXPECT_NEAR(d.conditional_mean_above(tau), 1.5 * tau, 1e-12) << tau;
  }
  // Below the scale the conditional mean is the plain mean.
  EXPECT_NEAR(d.conditional_mean_above(0.5), d.mean(), 1e-12);
}

TEST(Uniform, TableFiveFormulas) {
  const Uniform d(10.0, 20.0);
  EXPECT_DOUBLE_EQ(d.mean(), 15.0);
  EXPECT_NEAR(d.variance(), 100.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 12.5);
  EXPECT_DOUBLE_EQ(d.cdf(15.0), 0.5);
  EXPECT_DOUBLE_EQ(d.pdf(12.0), 0.1);
  EXPECT_DOUBLE_EQ(d.pdf(9.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(21.0), 0.0);
}

TEST(Uniform, MidpointConditionalMean) {
  const Uniform d(10.0, 20.0);
  EXPECT_NEAR(d.conditional_mean_above(14.0), 17.0, 1e-12);
  EXPECT_NEAR(d.conditional_mean_above(5.0), 15.0, 1e-12);
  EXPECT_NEAR(d.conditional_mean_above(20.0), 20.0, 1e-12);
}

TEST(BetaDist, TableFiveFormulas) {
  const Beta d(2.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_NEAR(d.variance(), 0.05, 1e-13);
  EXPECT_NEAR(d.median(), 0.5, 1e-10);
  // pdf = 6 x (1-x).
  EXPECT_NEAR(d.pdf(0.3), 6.0 * 0.3 * 0.7, 1e-12);
  EXPECT_NEAR(d.cdf(0.3), 0.09 * (3.0 - 0.6), 1e-12);
}

TEST(BoundedPareto, TableFiveFormulas) {
  const BoundedPareto d(1.0, 20.0, 2.1);
  EXPECT_DOUBLE_EQ(d.support().lower, 1.0);
  EXPECT_DOUBLE_EQ(d.support().upper, 20.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(20.0), 1.0);
  // Mean formula of Table 5.
  const double ha = std::pow(20.0, 2.1), la = 1.0;
  const double mean = 2.1 / 1.1 * (ha * 1.0 - 20.0 * la) / (ha - la);
  EXPECT_NEAR(d.mean(), mean, 1e-12);
}

TEST(BoundedPareto, ConditionalMeanFormula) {
  const BoundedPareto d(1.0, 20.0, 2.1);
  const double tau = 3.0;
  const double num = std::pow(20.0, -1.1) - std::pow(tau, -1.1);
  const double den = std::pow(20.0, -2.1) - std::pow(tau, -2.1);
  EXPECT_NEAR(d.conditional_mean_above(tau), 2.1 / 1.1 * num / den, 1e-12);
  EXPECT_NEAR(d.conditional_mean_above(20.0), 20.0, 1e-12);
}

TEST(Factory, BuildsEveryPaperDistribution) {
  const auto all = paper_distributions();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all[0].label, "Exponential");
  EXPECT_EQ(all[8].label, "BoundedPareto");
  for (const auto& inst : all) {
    ASSERT_NE(inst.dist, nullptr) << inst.label;
    EXPECT_GT(inst.dist->mean(), 0.0) << inst.label;
  }
}

TEST(Factory, ByNameAndParams) {
  const auto d = make_distribution("Exponential", {{"lambda", 2.0}});
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->mean(), 0.5);
  EXPECT_EQ(make_distribution("nosuch", {}), nullptr);
  EXPECT_EQ(make_distribution("weibull", {{"lambda", 1.0}}), nullptr)
      << "missing kappa must fail";
  const auto bp = make_distribution(
      "BoundedPareto", {{"l", 1.0}, {"h", 20.0}, {"alpha", 2.1}});
  ASSERT_NE(bp, nullptr);
  EXPECT_EQ(bp->name(), "BoundedPareto");
}

TEST(Factory, PaperLookupByLabel) {
  const auto inst = paper_distribution("lognormal");
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->dist->name(), "LogNormal");
  EXPECT_FALSE(paper_distribution("Cauchy").has_value());
}
