#include "dist/mixture.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/lognormal.hpp"
#include "sim/rng.hpp"
#include "stats/integrate.hpp"
#include "stats/summary.hpp"

using namespace sre::dist;

namespace {
MixtureDistribution bimodal() {
  // Two well-separated LogNormal modes, like the fMRIQA trace of Fig. 1a.
  return MixtureDistribution({{0.6, std::make_shared<LogNormal>(1.0, 0.3)},
                              {0.4, std::make_shared<LogNormal>(3.0, 0.25)}});
}
}  // namespace

TEST(Mixture, NormalizesWeights) {
  const MixtureDistribution m({{2.0, std::make_shared<Exponential>(1.0)},
                               {6.0, std::make_shared<Exponential>(2.0)}});
  EXPECT_DOUBLE_EQ(m.components()[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(m.components()[1].weight, 0.75);
}

TEST(Mixture, DegenerateSingleComponentIsIdentity) {
  const Exponential ref(1.3);
  const MixtureDistribution m({{1.0, std::make_shared<Exponential>(1.3)}});
  for (double t : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(m.pdf(t), ref.pdf(t), 1e-13);
    EXPECT_NEAR(m.cdf(t), ref.cdf(t), 1e-13);
    EXPECT_NEAR(m.conditional_mean_above(t), ref.conditional_mean_above(t),
                1e-12);
  }
  for (double p : {0.1, 0.5, 0.95}) {
    EXPECT_NEAR(m.quantile(p), ref.quantile(p), 1e-9);
  }
}

TEST(Mixture, HyperexponentialClosedForms) {
  const auto h = MixtureDistribution::hyperexponential({0.3, 0.7}, {1.0, 5.0});
  // mean = 0.3/1 + 0.7/5.
  EXPECT_NEAR(h.mean(), 0.3 + 0.14, 1e-13);
  // E[X^2] = sum w_i * 2/l_i^2; var = E[X^2] - mean^2.
  const double ex2 = 0.3 * 2.0 + 0.7 * 2.0 / 25.0;
  EXPECT_NEAR(h.variance(), ex2 - 0.44 * 0.44, 1e-12);
  // sf is the weighted sum of exponential tails.
  for (double t : {0.1, 0.7, 2.0}) {
    EXPECT_NEAR(h.sf(t), 0.3 * std::exp(-t) + 0.7 * std::exp(-5.0 * t), 1e-13)
        << t;
  }
  // Hyperexponential CV^2 >= 1 (high variability).
  EXPECT_GE(h.variance() / (h.mean() * h.mean()), 1.0);
}

TEST(Mixture, QuantileRoundTrips) {
  const auto m = bimodal();
  for (double p = 0.02; p < 1.0; p += 0.05) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-9) << p;
  }
}

TEST(Mixture, QuantileMonotone) {
  const auto m = bimodal();
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double q = m.quantile(p);
    EXPECT_GT(q, prev) << p;
    prev = q;
  }
}

TEST(Mixture, ConditionalMeanMatchesQuadrature) {
  const auto m = bimodal();
  for (double p : {0.1, 0.4, 0.7, 0.95}) {
    const double tau = m.quantile(p);
    const double hi = m.quantile(1.0 - 1e-13);
    const double num = sre::stats::integrate(
        [&m](double t) { return t * m.pdf(t); }, tau, hi, 1e-11);
    const double reference = num / m.sf(tau);
    EXPECT_NEAR(m.conditional_mean_above(tau), reference, 2e-3 * reference)
        << p;
  }
}

TEST(Mixture, SamplingMatchesMoments) {
  const auto m = bimodal();
  sre::sim::Rng rng = sre::sim::make_rng(12);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 200000; ++i) acc.add(m.sample(rng));
  EXPECT_NEAR(acc.mean(), m.mean(), 0.02 * m.mean());
  EXPECT_NEAR(acc.variance(), m.variance(), 0.08 * m.variance());
}

TEST(Mixture, PdfIntegratesToOne) {
  const auto m = bimodal();
  const double total = sre::stats::integrate(
      [&m](double t) { return m.pdf(t); }, 1e-9, m.quantile(1.0 - 1e-12),
      1e-10);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Mixture, BimodalityVisibleInPdf) {
  const auto m = bimodal();
  // Two local maxima around e^{1.0} ~ 2.7 and e^{3.0} ~ 20, with a valley
  // between.
  const double mode1 = m.pdf(2.5);
  const double valley = m.pdf(9.0);
  const double mode2 = m.pdf(19.0);
  EXPECT_GT(mode1, valley * 3.0);
  EXPECT_GT(mode2, valley * 2.0);
}
