// srv::Client — the resilient NDJSON client. Tests drive it against a
// scripted loopback server that replays canned response lines (or slams
// the connection shut) so every retry decision is observable and
// deterministic:
//
//   * retryable wire rejections (kOverloaded with retry_after_ms) are
//     retried, and the server hint floors the backoff sleeps;
//   * kDomainError is never retried — a malformed request does not become
//     well-formed by asking again;
//   * an unparseable response line is a non-retryable protocol error;
//   * a server that closes mid-exchange costs one reconnect, not the call;
//   * the per-call deadline budget refuses to sleep past its own deadline
//     and surfaces as kTimeout;
//   * exhausted transport retries return typed kTransport (and a dead
//     port trips the circuit breaker after the configured threshold);
//   * injected connect refusals (client-side chaos) are typed and counted;
//   * pipelined mode replays the unacked tail in order after a mid-stream
//     close, so survivors' bytes match a fault-free run.

#include <gtest/gtest.h>

#ifdef __linux__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "srv/chaos_socket.hpp"
#include "srv/client.hpp"
#include "stats/error.hpp"

namespace {

using sre::ErrorCode;
using sre::srv::ChaosSocket;
using sre::srv::Client;
using sre::srv::ClientConfig;

constexpr const char* kOk = R"({"id":"q","ok":true,"result":"fine"})";
constexpr const char* kOverloadedHint =
    R"({"id":"q","ok":false,"error":{"code":"overloaded","retryable":true,)"
    R"("message":"busy","retry_after_ms":5}})";
constexpr const char* kOverloadedHugeHint =
    R"({"id":"q","ok":false,"error":{"code":"overloaded","retryable":true,)"
    R"("message":"busy","retry_after_ms":60000}})";
constexpr const char* kDomain =
    R"({"id":"q","ok":false,"error":{"code":"domain_error",)"
    R"("retryable":false,"message":"bad request"}})";

/// One server session: steps consumed one incoming line at a time — a
/// string step answers with that line, a nullptr step slams the
/// connection shut instead.
using Script = std::vector<std::vector<const char*>>;

/// A scripted server: one listener, sessions served in order. When a
/// session's steps run out the connection closes.
class ScriptServer {
 public:
  explicit ScriptServer(Script sessions)
      : sessions_(std::move(sessions)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(listen_fd_,
                            reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 16), 0);
    thread_ = std::thread([this] { serve(); });
  }

  ~ScriptServer() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] unsigned short port() const noexcept { return port_; }

 private:
  void serve() {
    for (const auto& session : sessions_) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::string buf;
      bool alive = true;
      for (const char* step : session) {
        if (!read_one_line(fd, buf)) {
          alive = false;
          break;
        }
        if (step == nullptr) {
          alive = false;
          break;  // slam shut without answering
        }
        const std::string reply = std::string(step) + "\n";
        if (::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL) < 0) {
          alive = false;
          break;
        }
      }
      (void)alive;
      ::close(fd);
    }
  }

  /// Consumes one '\n'-terminated line (buffered: a replayed batch may
  /// arrive several lines per read).
  bool read_one_line(int fd, std::string& buf) {
    for (;;) {
      const auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        buf.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

  Script sessions_;
  int listen_fd_ = -1;
  unsigned short port_ = 0;
  std::thread thread_;
};

ClientConfig base_config(unsigned short port) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.retry.max_attempts = 4;
  cfg.retry.base_seconds = 0.001;
  cfg.retry.cap_seconds = 0.01;
  cfg.retry.seed = 7;
  return cfg;
}

TEST(SrvClient, RetriesRetryableRejectionsAndHonorsHints) {
  ScriptServer server(Script{{kOverloadedHint, kOverloadedHint, kOk}});
  Client client(base_config(server.port()));

  const auto res = client.call("{\"q\":1}");
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_EQ(res.attempts, 3);
  // Both retry sleeps were floored by the 5 ms server hint.
  EXPECT_GE(res.slept_s, 2 * 0.005);
  const auto& c = client.counters();
  EXPECT_EQ(c.calls, 1u);
  EXPECT_EQ(c.responses_ok, 1u);
  EXPECT_EQ(c.wire_errors, 2u);
  EXPECT_EQ(c.retries, 2u);
  EXPECT_EQ(c.hints_honored, 2u);
  EXPECT_EQ(c.transport_errors, 0u);
}

TEST(SrvClient, NeverRetriesDomainErrors) {
  ScriptServer server(Script{{kDomain, kOk}});
  Client client(base_config(server.port()));

  const auto res = client.call("{\"q\":1}");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kDomainError);
  EXPECT_FALSE(res.retryable);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.message, "bad request");
  EXPECT_EQ(client.counters().retries, 0u);

  // The connection is still healthy: the next call reuses it and the
  // scripted second reply answers.
  EXPECT_TRUE(client.call("{\"q\":2}").ok);
}

TEST(SrvClient, UnparseableResponseIsANonRetryableProtocolError) {
  ScriptServer server(Script{{"this is not json"}});
  Client client(base_config(server.port()));

  const auto res = client.call("{\"q\":1}");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kDomainError);
  EXPECT_FALSE(res.retryable);
  EXPECT_EQ(res.message, "unparseable response line");
  EXPECT_EQ(res.attempts, 1);
}

TEST(SrvClient, ReconnectsWhenTheServerClosesMidExchange) {
  // Session 1 reads the request and slams the connection; session 2
  // answers. The call survives with one reconnect.
  ScriptServer server(Script{{nullptr}, {kOk}});
  Client client(base_config(server.port()));

  const auto res = client.call("{\"q\":1}");
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_EQ(res.attempts, 2);
  const auto& c = client.counters();
  EXPECT_EQ(c.transport_errors, 1u);
  EXPECT_EQ(c.reconnects, 1u);
  EXPECT_EQ(c.responses_ok, 1u);
}

TEST(SrvClient, DeadlineBudgetRefusesToSleepPastItself) {
  ScriptServer server(Script{{kOverloadedHugeHint}});
  ClientConfig cfg = base_config(server.port());
  cfg.request_deadline_s = 0.05;
  Client client(cfg);

  const auto res = client.call("{\"q\":1}");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kTimeout);
  EXPECT_FALSE(res.retryable);
  EXPECT_EQ(res.attempts, 1);  // the 60 s hint would blow the 50 ms budget
  EXPECT_LT(res.slept_s, 0.05);
}

TEST(SrvClient, ExhaustedTransportRetriesAreTypedAndTripTheBreaker) {
  ClientConfig cfg;
  // Port 1 (tcpmux) never has a listener in the test environment, and —
  // unlike an ephemeral port — can't be claimed by a concurrently running
  // socket test: every connect is refused deterministically.
  cfg.port = 1;
  cfg.retry.max_attempts = 6;
  cfg.retry.base_seconds = 0.0;  // immediate retries: the test stays fast
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_s = 60.0;  // stays open for the rest of the call
  Client client(cfg);

  const auto res = client.call("{\"q\":1}");
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.retryable);
  const auto& c = client.counters();
  EXPECT_GE(c.transport_errors, 2u);
  EXPECT_EQ(c.breaker_opens, 1u);
  EXPECT_GE(c.breaker_fast_fails, 1u);  // later attempts fail fast, no dial
  EXPECT_EQ(c.responses_ok, 0u);
}

TEST(SrvClient, InjectedConnectRefusalsAreCountedAndTyped) {
  ChaosSocket::reset_totals();
  ClientConfig cfg;
  cfg.port = 1;  // never dialed: the injected refusal fires first
  cfg.retry.max_attempts = 3;
  cfg.retry.base_seconds = 0.0;
  cfg.net_faults.seed = 4;
  cfg.net_faults.connect_refuse_prob = 1.0;
  Client client(cfg);

  const auto res = client.call("{\"q\":1}");
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.code, ErrorCode::kTransport);
  EXPECT_TRUE(res.retryable);
  EXPECT_EQ(res.attempts, 0);  // no attempt ever reached the wire
  EXPECT_EQ(client.counters().transport_errors, 3u);
  EXPECT_EQ(ChaosSocket::totals().connect_refusals, 3u);
}

TEST(SrvClient, PipelinedReplayPreservesOrderAcrossAMidStreamReset) {
  // Session 1: answer the first request, slam on the second. Session 2:
  // the client replays the unacked tail (requests 2 and 3, in order) and
  // gets both answers.
  constexpr const char* kOk2 = R"({"id":"2","ok":true,"result":"two"})";
  constexpr const char* kOk3 = R"({"id":"3","ok":true,"result":"three"})";
  ScriptServer server(Script{{kOk, nullptr}, {kOk2, kOk3}});
  Client client(base_config(server.port()));

  // Consume the first response before posting the rest: the scripted slam
  // may arrive as an RST, and an RST can discard responses still sitting
  // in the client's kernel buffer — fine for the replay machinery (it
  // re-elicits them), but this test wants to pin the counters exactly.
  EXPECT_TRUE(client.post("{\"q\":1}"));
  std::string line;
  ASSERT_TRUE(client.recv_line(line));
  EXPECT_EQ(line, kOk);

  (void)client.post("{\"q\":2}");
  (void)client.post("{\"q\":3}");
  EXPECT_EQ(client.unacked(), 2u);

  ASSERT_TRUE(client.recv_line(line));
  EXPECT_EQ(line, kOk2);
  ASSERT_TRUE(client.recv_line(line));
  EXPECT_EQ(line, kOk3);
  EXPECT_EQ(client.unacked(), 0u);

  const auto& c = client.counters();
  EXPECT_EQ(c.reconnects, 1u);
  EXPECT_EQ(c.replayed, 2u);
  EXPECT_GE(c.transport_errors, 1u);
}

TEST(SrvClient, TransportErrorCodeIsRetryable) {
  // The wire taxonomy gained kTransport in this change: spelled
  // "transport", retryable, distinct from every server-side code.
  EXPECT_STREQ(sre::error_code_name(ErrorCode::kTransport).data(),
               "transport");
  EXPECT_TRUE(sre::is_retryable(ErrorCode::kTransport));
}

}  // namespace

#endif  // __linux__
