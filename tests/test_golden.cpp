// Golden regression values at paper scale, pinned from a verified run
// (deterministic: analytic evaluation, fixed grids). These lock in the
// Table 2 reproduction so refactors that shift the numerics get caught.

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"
#include "platform/workload.hpp"

using namespace sre::core;

namespace {

double brute_force_normalized(const sre::dist::Distribution& d) {
  BruteForceOptions opts;
  opts.grid_points = 2000;
  opts.analytic_eval = true;
  const CostModel m = CostModel::reservation_only();
  const auto out = brute_force_search(d, m, opts);
  EXPECT_TRUE(out.found);
  return out.best_cost / omniscient_cost(d, m);
}

struct GoldenRow {
  const char* label;
  double brute_force;  // analytic-eval normalized cost
  double tolerance;
};

}  // namespace

TEST(Golden, Table2BruteForceAnalytic) {
  // The Exponential row is the mathematically exact optimum 2.36450 (see
  // EXPERIMENTS.md); the others were pinned from a verified build.
  const GoldenRow rows[] = {
      {"Exponential", 2.3645, 0.01},
      {"Weibull", 2.549, 0.03},
      {"Gamma", 2.145, 0.02},
      {"Lognormal", 1.918, 0.02},
      {"TruncatedNormal", 1.369, 0.015},
      {"Pareto", 1.732, 0.02},
      {"Uniform", 4.0 / 3.0, 1e-9},
      {"Beta", 1.805, 0.02},
      {"BoundedPareto", 1.922, 0.02},
  };
  for (const auto& row : rows) {
    const auto inst = sre::dist::paper_distribution(row.label);
    ASSERT_TRUE(inst.has_value()) << row.label;
    EXPECT_NEAR(brute_force_normalized(*inst->dist), row.brute_force,
                row.tolerance)
        << row.label;
  }
}

TEST(Golden, DpTracksBruteForceAtPaperScale) {
  // At n = 1000 the discretization DP lands within a few percent of the
  // brute-force optimum on every law (Table 4's convergence endpoint).
  const CostModel m = CostModel::reservation_only();
  for (const auto& inst : sre::dist::paper_distributions()) {
    const double bf = brute_force_normalized(*inst.dist);
    for (const auto scheme :
         {sre::sim::DiscretizationScheme::kEqualTime,
          sre::sim::DiscretizationScheme::kEqualProbability}) {
      const DiscretizedDp dp(sre::sim::DiscretizationOptions{1000, 1e-7, scheme});
      const double cost =
          expected_cost_analytic(dp.generate(*inst.dist, m), *inst.dist, m) /
          omniscient_cost(*inst.dist, m);
      EXPECT_NEAR(cost, bf, 0.08 * bf)
          << inst.label << " " << sre::sim::to_string(scheme);
      // The DP can never beat the continuous optimum by a real margin...
      EXPECT_GT(cost, bf * 0.97) << inst.label;
    }
  }
}

TEST(Golden, AllNormalizedCostsBelowAwsBreakEven) {
  // The load-bearing practical claim of Section 5.2: every heuristic's
  // normalized cost stays below c_OD/c_RI = 4.
  const CostModel m = CostModel::reservation_only();
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& h : standard_heuristics(/*fast=*/true)) {
      const double cost =
          expected_cost_analytic(h->generate(*inst.dist, m), *inst.dist, m) /
          omniscient_cost(*inst.dist, m);
      EXPECT_LT(cost, 4.0) << inst.label << " " << h->name();
    }
  }
}

TEST(Golden, NeuroHpcBaseCase) {
  // Fig. 4 base point: brute force ~1.11 normalized under the HPC model.
  const auto inst = sre::dist::paper_distribution("Lognormal");
  (void)inst;
  sre::platform::NeuroHpcScenario scenario;
  const auto d = scenario.distribution();
  const CostModel m = scenario.cost_model();
  BruteForceOptions opts;
  opts.grid_points = 2000;
  opts.analytic_eval = true;
  const auto out = brute_force_search(d, m, opts);
  ASSERT_TRUE(out.found);
  EXPECT_NEAR(out.best_cost / omniscient_cost(d, m), 1.12, 0.03);
}
