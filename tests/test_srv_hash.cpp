// srv::fnv1a64 — the one content hash of the serving stack (cache shard
// selection, wide-event flow ids, cluster ring placement). The digests are
// pinned to absolute values: the consistent-hash ring and the committed
// cluster bench baselines both depend on these exact bytes, so an
// "innocent" reimplementation that changes any digest must fail here, not
// as a silent full-cache-miss + full-ring-reshuffle in production.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "srv/hash.hpp"
#include "srv/request.hpp"

namespace {

using sre::srv::fnv1a64;

TEST(Fnv1a64, PinnedReferenceVectors) {
  // Offset basis itself for the empty string, then the standard FNV-1a
  // 64-bit test values.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(fnv1a64("hello"), 11831194018420276491ull);
}

TEST(Fnv1a64, PinnedClusterLabelDigests) {
  // The versioned label families the cluster layer hashes: ring points
  // ("v1|ring|<ring_id>|<vnode>") and sweep idempotency-key prefixes.
  EXPECT_EQ(fnv1a64("v1|ring|127.0.0.1:9000|0"), 14920761542655123534ull);
  EXPECT_EQ(fnv1a64("v1|ring|replica-0|0"), 12956543930304644023ull);
  EXPECT_EQ(fnv1a64("v1|ring|replica-1|0"), 12424209878094607468ull);
  EXPECT_EQ(fnv1a64("v1|sweep|"), 5868360036032121304ull);
}

TEST(Fnv1a64, ConstantsAreTheStandardPair) {
  EXPECT_EQ(sre::srv::kFnvOffsetBasis, 14695981039346656037ull);
  EXPECT_EQ(sre::srv::kFnvPrime, 1099511628211ull);
}

TEST(Fnv1a64, IsConstexprAndByteSensitive) {
  // Compile-time evaluation is part of the contract (shard masks and ring
  // labels in constant expressions).
  static_assert(fnv1a64("hello") == 11831194018420276491ull);
  // Every byte matters, including embedded NULs and order.
  EXPECT_NE(fnv1a64(std::string("a\0b", 3)), fnv1a64(std::string("ab", 2)));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(Fnv1a64, RequestKeyHashMatchesFreeFunction) {
  // The request layer's precomputed key_hash is this exact function over
  // the canonical key bytes — the property that lets the router and the
  // cache agree on placement.
  sre::srv::PlanRequest req;
  req.dist_spec = "exponential:lambda=1";
  req.solver = "refined-dp";
  req.n = 400;
  const auto prep = sre::srv::prepare(req);
  EXPECT_EQ(prep.key_hash, fnv1a64(prep.key));
}

}  // namespace
