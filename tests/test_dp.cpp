// Theorem 5 dynamic program: optimality is verified against exhaustive
// enumeration of every admissible reservation sequence on small discrete
// instances (any optimal sequence only uses support values and its last
// element covers the whole support).

#include "core/heuristics/dp_discretization.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <random>

#include "core/expected_cost.hpp"
#include "dist/factory.hpp"
#include "sim/cancel.hpp"
#include "stats/error.hpp"

using namespace sre::core;
using sre::dist::DiscreteDistribution;
namespace sim = sre::sim;

namespace {

// Expected cost of choosing the subset of support indices `chosen` (strictly
// increasing, last covers everything) as the reservation sequence, computed
// from first principles: sum over jobs v_k of its probability times Eq. (2).
double enumerate_cost(const DiscreteDistribution& d,
                      const std::vector<std::size_t>& chosen,
                      const CostModel& m) {
  const auto& v = d.values();
  const auto& f = d.probabilities();
  double total = 0.0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    double job_cost = 0.0;
    for (const std::size_t j : chosen) {
      job_cost += m.attempt_cost(v[j], v[k]);
      if (v[k] <= v[j]) break;
    }
    total += f[k] * job_cost;
  }
  return total;
}

// Minimum expected cost over all 2^(n-1) admissible subsets (the last
// support point is always included).
double exhaustive_optimum(const DiscreteDistribution& d, const CostModel& m) {
  const std::size_t n = d.size();
  double best = std::numeric_limits<double>::infinity();
  const std::size_t masks = std::size_t{1} << (n - 1);
  for (std::size_t mask = 0; mask < masks; ++mask) {
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (mask & (std::size_t{1} << i)) chosen.push_back(i);
    }
    chosen.push_back(n - 1);
    best = std::min(best, enumerate_cost(d, chosen, m));
  }
  return best;
}

DiscreteDistribution random_instance(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> u(0.1, 10.0);
  std::vector<double> values, probs;
  double cur = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cur += u(rng);
    values.push_back(cur);
    probs.push_back(u(rng));
  }
  return DiscreteDistribution(std::move(values), std::move(probs));
}

}  // namespace

TEST(Dp, MatchesExhaustiveEnumerationReservationOnly) {
  std::mt19937_64 rng(2024);
  const CostModel m = CostModel::reservation_only();
  for (int trial = 0; trial < 30; ++trial) {
    const auto d = random_instance(rng, 2 + trial % 9);
    const DpResult dp = dp_optimal_sequence(d, m);
    const double best = exhaustive_optimum(d, m);
    EXPECT_NEAR(dp.expected_cost, best, 1e-9 * (1.0 + best)) << trial;
  }
}

TEST(Dp, MatchesExhaustiveEnumerationFullCostModel) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const CostModel m{0.5 + (trial % 3), 0.25 * (trial % 4), 0.1 * (trial % 5)};
    const auto d = random_instance(rng, 2 + trial % 8);
    const DpResult dp = dp_optimal_sequence(d, m);
    const double best = exhaustive_optimum(d, m);
    EXPECT_NEAR(dp.expected_cost, best, 1e-9 * (1.0 + best))
        << trial << " " << m.describe();
  }
}

TEST(Dp, DpCostMatchesAnalyticEvaluationOfItsSequence) {
  std::mt19937_64 rng(5);
  const CostModel m{1.0, 0.5, 0.2};
  for (int trial = 0; trial < 10; ++trial) {
    const auto d = random_instance(rng, 6);
    const DpResult dp = dp_optimal_sequence(d, m);
    const double analytic = expected_cost_analytic(dp.sequence, d, m);
    EXPECT_NEAR(dp.expected_cost, analytic, 1e-9 * (1.0 + analytic)) << trial;
  }
}

TEST(Dp, SequenceEndsAtLastValue) {
  std::mt19937_64 rng(13);
  const auto d = random_instance(rng, 10);
  const DpResult dp = dp_optimal_sequence(d, CostModel::reservation_only());
  EXPECT_DOUBLE_EQ(dp.sequence.last(), d.values().back());
  // Indices strictly increasing.
  for (std::size_t i = 1; i < dp.indices.size(); ++i) {
    EXPECT_GT(dp.indices[i], dp.indices[i - 1]);
  }
}

TEST(Dp, SingletonDistribution) {
  const DiscreteDistribution d({3.0}, {1.0});
  const CostModel m{1.0, 1.0, 0.5};
  const DpResult dp = dp_optimal_sequence(d, m);
  ASSERT_EQ(dp.sequence.size(), 1u);
  EXPECT_DOUBLE_EQ(dp.sequence.first(), 3.0);
  EXPECT_DOUBLE_EQ(dp.expected_cost, 3.0 + 3.0 + 0.5);
}

TEST(Dp, HighGammaMergesReservations) {
  // A large per-reservation overhead makes many small reservations
  // unattractive: the optimal plan collapses toward a single big one.
  const DiscreteDistribution d({1.0, 2.0, 3.0, 4.0}, {0.25, 0.25, 0.25, 0.25});
  const DpResult cheap = dp_optimal_sequence(d, CostModel{1.0, 0.0, 0.0});
  const DpResult pricey = dp_optimal_sequence(d, CostModel{1.0, 0.0, 100.0});
  EXPECT_GE(cheap.sequence.size(), pricey.sequence.size());
  EXPECT_EQ(pricey.sequence.size(), 1u);
  EXPECT_DOUBLE_EQ(pricey.sequence.first(), 4.0);
}

TEST(Dp, ToleratesZeroProbabilityPoints) {
  const DiscreteDistribution d({1.0, 2.0, 3.0}, {0.5, 0.0, 0.5});
  const DpResult dp = dp_optimal_sequence(d, CostModel::reservation_only());
  EXPECT_GT(dp.expected_cost, 0.0);
  EXPECT_DOUBLE_EQ(dp.sequence.last(), 3.0);
}

TEST(DiscretizedDp, GeneratesCoveringSequences) {
  sim::DiscretizationOptions opts;
  opts.n = 100;
  for (const auto scheme : {sre::sim::DiscretizationScheme::kEqualTime,
                            sre::sim::DiscretizationScheme::kEqualProbability}) {
    opts.scheme = scheme;
    const DiscretizedDp h(opts);
    for (const auto& inst : sre::dist::paper_distributions()) {
      const auto seq = h.generate(*inst.dist, CostModel::reservation_only());
      EXPECT_TRUE(seq.covers_distribution(*inst.dist, 1e-10))
          << inst.label << " " << h.name();
    }
  }
}

TEST(DiscretizedDp, NamesFollowScheme) {
  EXPECT_EQ(DiscretizedDp(sim::DiscretizationOptions{
                              100, 1e-7, sre::sim::DiscretizationScheme::kEqualTime})
                .name(),
            "Equal-time");
  EXPECT_EQ(DiscretizedDp(sim::DiscretizationOptions{
                              100, 1e-7,
                              sre::sim::DiscretizationScheme::kEqualProbability})
                .name(),
            "Equal-probability");
}

TEST(DiscretizedDp, ApproachesBruteForceOnExponentialAsNGrows) {
  // Table 4's convergence: cost(n=500) <= cost(n=10) for the same scheme
  // (evaluated analytically to avoid MC noise).
  const auto inst = sre::dist::paper_distribution("Exponential");
  ASSERT_TRUE(inst.has_value());
  const CostModel m = CostModel::reservation_only();
  sim::DiscretizationOptions small{10, 1e-7,
                                   sre::sim::DiscretizationScheme::kEqualTime};
  sim::DiscretizationOptions large{500, 1e-7,
                                   sre::sim::DiscretizationScheme::kEqualTime};
  const double cost_small = expected_cost_analytic(
      DiscretizedDp(small).generate(*inst->dist, m), *inst->dist, m);
  const double cost_large = expected_cost_analytic(
      DiscretizedDp(large).generate(*inst->dist, m), *inst->dist, m);
  EXPECT_LE(cost_large, cost_small * (1.0 + 1e-6));
}

TEST(Dp, ExpiredDeadlineUnwindsAsTimeoutOnBothVariants) {
  std::mt19937_64 rng(99);
  const auto d = random_instance(rng, 5000);
  const CostModel m{1.0, 1.0, 0.5};
  for (const auto variant : {sim::DpVariant::kReference,
                             sim::DpVariant::kDivideAndConquer}) {
    const auto source = sre::sim::CancelSource::with_deadline(1e-9);
    try {
      dp_optimal_sequence(d, m, source.token(), variant);
      FAIL() << "expired deadline did not cancel the "
             << sim::to_string(variant) << " solve";
    } catch (const sre::ScenarioError& e) {
      EXPECT_EQ(e.code(), sre::ErrorCode::kTimeout)
          << sim::to_string(variant);
    }
  }
}

TEST(Dp, WorkBudgetPollingCancelsHugeSolvePromptly) {
  // Regression for the old every-64-rows polling: on the O(n log n) fill a
  // row is only O(log n) work, so a row stride could stretch the polling
  // interval far past the deadline. The work-count budget
  // (kDpCancelPollBudget transition evaluations) bounds the overshoot: a
  // 1 ms deadline must abort an n = 100k solve orders of magnitude sooner
  // than the solve itself would finish — generously, within 2 s even under
  // a sanitizer.
  std::mt19937_64 rng(123);
  const auto d = random_instance(rng, 100000);
  const CostModel m{1.0, 1.0, 0.5};
  const auto source = sre::sim::CancelSource::with_deadline(0.001);
  const auto start = std::chrono::steady_clock::now();
  try {
    dp_optimal_sequence(d, m, source.token(),
                        sim::DpVariant::kDivideAndConquer);
    FAIL() << "1 ms deadline did not cancel the n=100k solve";
  } catch (const sre::ScenarioError& e) {
    EXPECT_EQ(e.code(), sre::ErrorCode::kTimeout);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed.count(), 2.0)
      << "cancellation latency far exceeds the poll budget";
}
