// Theorem 2 bounds A1 (on the optimal t1) and A2 (on the optimal cost).

#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/uniform.hpp"

using namespace sre::core;

TEST(Bounds, ExponentialHandComputedA1) {
  // Exp(1), RESERVATIONONLY (alpha=1, beta=gamma=0), a=0:
  // A1 = E[X] + 1 + (1/2) E[X^2] + E[X] = 1 + 1 + 1 + 1 = 4.
  const sre::dist::Exponential e(1.0);
  const CostModel m = CostModel::reservation_only();
  EXPECT_NEAR(upper_bound_t1(e, m), 4.0, 1e-12);
  EXPECT_NEAR(upper_bound_cost(e, m), 4.0, 1e-12);
}

TEST(Bounds, ExponentialWithFullCostModel) {
  // Exp(1), alpha=1, beta=1, gamma=2:
  // A1 = 1 + 1 + (2/2)*2 + (1+1+2)*1 = 8; A2 = 1*1 + 8 + 2 = 11.
  const sre::dist::Exponential e(1.0);
  const CostModel m{1.0, 1.0, 2.0};
  EXPECT_NEAR(upper_bound_t1(e, m), 8.0, 1e-12);
  EXPECT_NEAR(upper_bound_cost(e, m), 11.0, 1e-12);
}

TEST(Bounds, BoundedSupportUsesUpperBound) {
  const sre::dist::Uniform u(10.0, 20.0);
  const CostModel m{1.0, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(upper_bound_t1(u, m), 20.0);
  EXPECT_DOUBLE_EQ(upper_bound_cost(u, m), 20.0 + 0.5 * 15.0 + 0.1);
}

TEST(Bounds, A2DominatesTheNaiveArithmeticSequence) {
  // The proof of Theorem 2 bounds the cost of t_i = a + i; any strategy at
  // least as good (e.g. brute force) must stay below A2.
  for (const auto& inst : sre::dist::paper_distributions()) {
    if (inst.dist->support().bounded()) continue;
    const CostModel m = CostModel::reservation_only();
    BruteForceOptions opts;
    opts.grid_points = 200;
    opts.analytic_eval = true;
    const auto out = brute_force_search(*inst.dist, m, opts);
    ASSERT_TRUE(out.found) << inst.label;
    EXPECT_LE(out.best_cost, upper_bound_cost(*inst.dist, m) * (1.0 + 1e-9))
        << inst.label;
  }
}

TEST(Bounds, BestT1WithinA1) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    const CostModel m = CostModel::reservation_only();
    BruteForceOptions opts;
    opts.grid_points = 300;
    opts.analytic_eval = true;
    const auto out = brute_force_search(*inst.dist, m, opts);
    ASSERT_TRUE(out.found) << inst.label;
    EXPECT_LE(out.best_t1, upper_bound_t1(*inst.dist, m) * (1.0 + 1e-12))
        << inst.label;
  }
}

TEST(Bounds, A1GrowsWithBetaAndGamma) {
  const sre::dist::Exponential e(1.0);
  const double base = upper_bound_t1(e, CostModel{1.0, 0.0, 0.0});
  EXPECT_GT(upper_bound_t1(e, CostModel{1.0, 1.0, 0.0}), base);
  EXPECT_GT(upper_bound_t1(e, CostModel{1.0, 0.0, 1.0}), base);
}
