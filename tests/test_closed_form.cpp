// Section 3.4 (Uniform optimum) and Section 3.5 (Exponential optimum).

#include "core/heuristics/closed_form_optimal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/expected_cost.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"

using namespace sre::core;

TEST(ExponentialOptimal, S1MatchesHighPrecisionConstant) {
  // High-precision bisection on the validity boundary of the recurrence
  // gives s1* = 0.7465420140272309 (60-digit arithmetic; see
  // EXPERIMENTS.md). The paper reports ~0.74219 from a noisy Monte-Carlo
  // argmin, which is ~0.004 low; both are "about three quarters of the
  // mean", the paper's takeaway.
  const auto res = exponential_reservation_only_optimal();
  EXPECT_NEAR(res.s1, 0.7465420140272309, 1e-3);
}

TEST(ExponentialOptimal, UnitSequenceFollowsRecurrence) {
  const auto res = exponential_reservation_only_optimal();
  const auto& s = res.unit_sequence.values();
  ASSERT_GE(s.size(), 4u);
  EXPECT_NEAR(s[1], std::exp(s[0]), 1e-9);
  EXPECT_NEAR(s[2], std::exp(s[1] - s[0]), 1e-9);
  EXPECT_NEAR(s[3], std::exp(s[2] - s[1]), 1e-9);
}

TEST(ExponentialOptimal, E1ConsistentWithPropositionTwoForm) {
  // E_1 = s1 + 1 + sum e^{-s_i} must equal the direct series.
  const auto res = exponential_reservation_only_optimal();
  double alt = res.s1 + 1.0;
  for (const double s : res.unit_sequence.values()) alt += std::exp(-s);
  // res.e1 carries a conservative geometric estimate of the truncated tail;
  // the two forms agree to the size of that estimate.
  EXPECT_NEAR(res.e1, alt, 1e-4);
}

TEST(ExponentialOptimal, UnitCostIsWorseOffOptimum) {
  const auto res = exponential_reservation_only_optimal();
  EXPECT_GT(exponential_unit_cost(res.s1 - 0.2), res.e1);
  EXPECT_GT(exponential_unit_cost(res.s1 + 0.2), res.e1);
}

TEST(ExponentialOptimal, InvalidS1GivesInfiniteCost) {
  // A huge s1 makes the recurrence non-increasing (e^{s1} < s1 never, but
  // the later terms collapse) -- verify the guard on a value known to fail.
  EXPECT_TRUE(std::isinf(exponential_unit_cost(-1.0)));
  EXPECT_TRUE(std::isinf(exponential_unit_cost(0.0)));
}

TEST(ExponentialOptimal, LambdaScalingOfCost) {
  // E(S_lambda) = E_1 / lambda (Proposition 2), verified with the analytic
  // cost evaluator.
  const auto unit = exponential_reservation_only_optimal();
  for (const double lambda : {0.5, 1.0, 4.0}) {
    const sre::dist::Exponential e(lambda);
    const auto seq = exponential_optimal_sequence(lambda);
    const double cost =
        expected_cost_analytic(seq, e, CostModel::reservation_only());
    EXPECT_NEAR(cost, unit.e1 / lambda, 2e-3 * unit.e1 / lambda)
        << "lambda=" << lambda;
  }
}

TEST(ExponentialOptimal, OptimalNormalizedCostIsExact) {
  // The true optimal normalized cost is E1 = 2.3644977694 (verified by
  // 60-digit bisection AND by an unconstrained coordinate-descent
  // optimization of the sequence, see EXPERIMENTS.md). Table 2's 2.13 for
  // the Brute-Force/Exponential cell is an artifact of taking the minimum
  // over 5000 independently-noisy N=1000 Monte-Carlo estimates (winner's
  // curse); the paper's own provably-optimal DP columns (~2.33-2.43 in
  // Tables 2/4) straddle the true value.
  const auto res = exponential_reservation_only_optimal();
  EXPECT_NEAR(res.e1, 2.3644977694, 1e-2);
}

TEST(UniformOptimal, SingleReservationAtB) {
  const sre::dist::Uniform u(10.0, 20.0);
  const auto seq = single_reservation_at_upper(u);
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_DOUBLE_EQ(seq.first(), 20.0);
}

TEST(UniformOptimal, BeatsTwoStepAlternatives) {
  // Theorem 4: (b) dominates any (t1, b) with t1 < b, for any cost model.
  const sre::dist::Uniform u(10.0, 20.0);
  for (const CostModel m : {CostModel{1.0, 0.0, 0.0}, CostModel{1.0, 1.0, 0.5},
                            CostModel{0.5, 2.0, 3.0}}) {
    const double best =
        expected_cost_analytic(single_reservation_at_upper(u), u, m);
    for (double t1 = 10.5; t1 < 20.0; t1 += 0.5) {
      const double alt =
          expected_cost_analytic(ReservationSequence({t1, 20.0}), u, m);
      EXPECT_LT(best, alt) << "t1=" << t1 << " " << m.describe();
    }
  }
}

TEST(UniformOptimal, NormalizedCostIsFourThirds) {
  // b / E[X] = 20/15 under RESERVATIONONLY: Table 2's Uniform row (1.33).
  const sre::dist::Uniform u(10.0, 20.0);
  const double c = expected_cost_analytic(single_reservation_at_upper(u), u,
                                          CostModel::reservation_only());
  EXPECT_NEAR(c / 15.0, 4.0 / 3.0, 1e-12);
}
