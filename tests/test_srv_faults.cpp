// Fault-injection drills through the planner service: the SRE_FAULT_*-style
// chaos knobs apply to served requests, injected faults surface as typed
// *retryable* rejections, a faulted request never touches the plan cache,
// attempt-bounded schedules ("fails N times, then succeeds") drive clean
// retry stories, and the failure accounting is byte-stable across replays.

#include <gtest/gtest.h>

#include <string>

#include "srv/service.hpp"
#include "stats/error.hpp"

namespace {

using sre::ErrorCode;
using sre::srv::PlanRequest;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

PlanRequest cheap_request() {
  PlanRequest req;
  req.dist_spec = "exponential:lambda=1";
  req.model = {1.0, 1.0, 0.0};
  req.solver = "mean-doubling";
  return req;
}

/// Fault spec: every solve of every key faults on attempts 0..N-1 and
/// succeeds from attempt N on (probability one, bounded attempts).
ServiceConfig fails_n_then_succeeds(int n) {
  ServiceConfig cfg;
  cfg.faults.seed = 7;
  cfg.faults.solver_exception_prob = 1.0;
  cfg.faults.solver_exception_attempts = n;
  return cfg;
}

TEST(ServiceFaults, InjectedFaultIsRetryableAndLeavesCacheClean) {
  PlannerService service(fails_n_then_succeeds(1));
  sre::srv::InProcessClient client(service);

  auto req = cheap_request();
  req.attempt = 0;
  const auto failed = client.call(req);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.code, ErrorCode::kInjectedFault);
  EXPECT_TRUE(failed.retryable);
  EXPECT_EQ(service.cache_counters().inserts, 0u)
      << "a faulted solve must never populate the cache";

  // The client retries with the bumped attempt counter: the schedule says
  // attempt 1 succeeds, and *that* result is what gets cached.
  req.attempt = 1;
  const auto retried = client.call(req);
  ASSERT_TRUE(retried.ok) << retried.message;
  EXPECT_FALSE(retried.cached);
  EXPECT_EQ(service.cache_counters().inserts, 1u);

  // Subsequent calls hit the cache — even at attempt 0, because a cache
  // hit never reaches the fault injection point (faults drill the *solve*
  // path; hits are reads).
  req.attempt = 0;
  const auto hit = client.call(req);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.result, retried.result);
}

TEST(ServiceFaults, FailsTwiceThenSucceeds) {
  PlannerService service(fails_n_then_succeeds(2));
  sre::srv::InProcessClient client(service);
  auto req = cheap_request();
  for (int attempt = 0; attempt < 2; ++attempt) {
    req.attempt = attempt;
    const auto resp = client.call(req);
    EXPECT_FALSE(resp.ok) << "attempt " << attempt;
    EXPECT_EQ(resp.code, ErrorCode::kInjectedFault);
  }
  req.attempt = 2;
  EXPECT_TRUE(client.call(req).ok);
}

TEST(ServiceFaults, RejectionAccountingIsByteStable) {
  const auto run = [] {
    PlannerService service(fails_n_then_succeeds(1));
    sre::srv::InProcessClient client(service);
    auto req = cheap_request();
    req.attempt = 0;
    (void)client.call(req);  // injected fault
    req.attempt = 1;
    (void)client.call(req);  // success
    auto bad = cheap_request();
    bad.solver = "nope";
    (void)client.call(bad);  // domain error
    return service.stats_json();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // Taxonomy order inside by_code is fixed (ErrorCode order), so the two
  // rejection classes always serialize in this relative order.
  const auto domain = first.find("\"domain_error\":1");
  const auto injected = first.find("\"injected_fault\":1");
  ASSERT_NE(domain, std::string::npos) << first;
  ASSERT_NE(injected, std::string::npos) << first;
  EXPECT_LT(domain, injected);
}

TEST(ServiceFaults, FaultStreamsAreDeterministicPerKey) {
  // At probability 1/2 each *key* deterministically faults or not (the
  // stream seed is the key hash): two fresh services replaying the same
  // request sequence must agree outcome-for-outcome, byte-for-byte.
  const auto run = [] {
    ServiceConfig cfg;
    cfg.faults.seed = 11;
    cfg.faults.solver_exception_prob = 0.5;
    PlannerService service(cfg);
    sre::srv::InProcessClient client(service);
    std::string transcript;
    for (const char* spec :
         {"exponential:lambda=1", "uniform:a=1,b=9", "weibull",
          "lognormal:mu=3,sigma=0.5", "gamma", "pareto"}) {
      auto req = cheap_request();
      req.dist_spec = spec;
      const auto resp = client.call(req);
      transcript += resp.ok ? resp.result : resp.message;
      transcript += '\n';
    }
    return transcript;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("injected solver fault"), std::string::npos)
      << "expected at least one faulted key at p=0.5 over six keys";
  EXPECT_NE(first.find("\"plan\""), std::string::npos)
      << "expected at least one surviving key at p=0.5 over six keys";
}

TEST(ServiceFaults, RetriedRequestsNeverCorruptCachedBytes) {
  // Interleave faulted attempts and successes on one key: the cached value
  // must always be the bytes of a *successful* solve, and every later hit
  // must return exactly those bytes.
  PlannerService service(fails_n_then_succeeds(3));
  sre::srv::InProcessClient client(service);
  auto req = cheap_request();
  req.no_cache = true;  // force solves (and thus fault checks) every call

  req.attempt = 5;  // beyond the fault window: succeeds, result cached
  const auto good = client.call(req);
  ASSERT_TRUE(good.ok);

  req.attempt = 0;  // inside the fault window: fails, cache untouched
  EXPECT_FALSE(client.call(req).ok);

  req.no_cache = false;
  req.attempt = 0;  // cache read path: hit, identical bytes
  const auto hit = client.call(req);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.result, good.result);
}

}  // namespace
