// sim::SweepRunner + core::run_scenario_sweep: a 100+-scenario campaign must
// produce bit-identical outcomes on the serial path, the global pool, and
// dedicated pools of several sizes, while the shared CDF cache reports the
// expected build/reuse accounting.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/scenario_sweep.hpp"
#include "sim/sweep.hpp"

using namespace sre;

namespace {

constexpr std::size_t kDpGrid = 64;

std::vector<core::SweepScenario> small_grid() {
  const sim::DiscretizationOptions eq_prob{
      kDpGrid, 1e-7, sim::DiscretizationScheme::kEqualProbability};
  const std::vector<core::HeuristicPtr> solvers = {
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanStdev>(),
      std::make_shared<core::MedianByMedian>(),
      std::make_shared<core::DiscretizedDp>(eq_prob),
  };
  const std::vector<std::pair<std::string, core::CostModel>> models = {
      {"ReservationOnly", core::CostModel::reservation_only()},
      {"PayAsYouGo", {1.0, 1.0, 0.0}},
      {"WithOverhead", {1.0, 1.0, 0.1}},
  };
  return core::make_scenario_grid(dist::paper_distributions(), models,
                                  solvers);
}

core::EvaluationOptions fast_eval() {
  core::EvaluationOptions eval;
  eval.mc.samples = 256;
  eval.mc.seed = 9;
  return eval;
}

void expect_identical(const std::vector<core::ScenarioOutcome>& a,
                      const std::vector<core::ScenarioOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].dist_label, b[i].dist_label);
    EXPECT_EQ(a[i].model_label, b[i].model_label);
    EXPECT_EQ(a[i].solver, b[i].solver);
    EXPECT_EQ(a[i].eval.t1, b[i].eval.t1);
    EXPECT_EQ(a[i].eval.expected_cost_mc, b[i].eval.expected_cost_mc);
    EXPECT_EQ(a[i].eval.expected_cost_analytic,
              b[i].eval.expected_cost_analytic);
    EXPECT_EQ(a[i].eval.sequence.values(), b[i].eval.sequence.values());
  }
}

}  // namespace

TEST(ScenarioSweep, GridIsRowMajorDistModelSolver) {
  const auto grid = small_grid();
  ASSERT_EQ(grid.size(), 9u * 3u * 4u);
  EXPECT_EQ(grid[0].dist_label, grid[11].dist_label);
  EXPECT_EQ(grid[0].model_label, grid[3].model_label);
  EXPECT_NE(grid[0].model_label, grid[4].model_label);
  EXPECT_NE(grid[11].dist_label, grid[12].dist_label);
}

TEST(ScenarioSweep, ParallelSweepBitIdenticalToSerial) {
  const auto grid = small_grid();
  ASSERT_GE(grid.size(), 100u);
  const auto eval = fast_eval();

  sim::SweepOptions serial;
  serial.serial = true;
  const auto base = core::run_scenario_sweep(grid, eval, serial);
  ASSERT_EQ(base.outcomes.size(), grid.size());
  EXPECT_EQ(base.sweep.scenarios, grid.size());

  // Global pool.
  expect_identical(base.outcomes,
                   core::run_scenario_sweep(grid, eval, {}).outcomes);

  // Dedicated pools of several sizes, with and without batching.
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    sim::SweepOptions opts;
    opts.threads = threads;
    const auto par = core::run_scenario_sweep(grid, eval, opts);
    expect_identical(base.outcomes, par.outcomes);
    EXPECT_EQ(par.sweep.threads, threads);
    EXPECT_EQ(par.sweep.batches, grid.size());

    opts.batch = 8;
    const auto batched = core::run_scenario_sweep(grid, eval, opts);
    expect_identical(base.outcomes, batched.outcomes);
    EXPECT_EQ(batched.sweep.batches,
              (grid.size() + opts.batch - 1) / opts.batch);
  }
}

TEST(ScenarioSweep, SharedCdfCacheBuildsOncePerDistribution) {
  const auto grid = small_grid();
  const auto report = core::run_scenario_sweep(grid, fast_eval(), {});
  // One DP solver x 3 cost models per distribution: one table build and two
  // reuses for each of the nine laws.
  EXPECT_EQ(report.cache.tables_built, 9u);
  EXPECT_EQ(report.cache.table_reuses, 18u);
  // Every DP discretization after the first is served from the table.
  EXPECT_GE(report.cache.hits, 9u * 2u * kDpGrid);
  EXPECT_EQ(report.cache.misses, 0u);
}

TEST(ScenarioSweep, ScenarioExceptionPropagates) {
  struct Throwing final : core::Heuristic {
    [[nodiscard]] std::string name() const override { return "Throwing"; }
    [[nodiscard]] core::ReservationSequence generate(
        const dist::Distribution&, const core::CostModel&) const override {
      throw std::runtime_error("scenario failure");
    }
  };
  const auto dists = dist::paper_distributions();
  const std::vector<core::HeuristicPtr> solvers = {
      std::make_shared<Throwing>()};
  const auto grid = core::make_scenario_grid(
      dists, {{"ReservationOnly", core::CostModel::reservation_only()}},
      solvers);
  sim::SweepOptions opts;
  opts.threads = 4;
  EXPECT_THROW(core::run_scenario_sweep(grid, fast_eval(), opts),
               std::runtime_error);
}

TEST(ScenarioSweep, EmptyGridIsANoOp) {
  const auto report = core::run_scenario_sweep({}, fast_eval(), {});
  EXPECT_TRUE(report.outcomes.empty());
  EXPECT_EQ(report.sweep.scenarios, 0u);
}
