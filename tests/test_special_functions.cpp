// Accuracy tests for the special functions against high-precision reference
// values (computed independently with mpmath) and inverse round-trips.

#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sf = sre::stats;

TEST(NormCdf, ReferenceValues) {
  EXPECT_NEAR(sf::norm_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(sf::norm_cdf(1.0), 0.8413447460685429, 1e-14);
  EXPECT_NEAR(sf::norm_cdf(-1.0), 0.15865525393145705, 1e-14);
  EXPECT_NEAR(sf::norm_cdf(3.0), 0.9986501019683699, 1e-14);
  EXPECT_NEAR(sf::norm_cdf(-5.0), 2.8665157187919333e-07, 1e-18);
}

TEST(NormQuantile, ReferenceValues) {
  EXPECT_NEAR(sf::norm_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(sf::norm_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(sf::norm_quantile(0.84134474606854293), 1.0, 1e-9);
  EXPECT_NEAR(sf::norm_quantile(0.0013498980316300946), -3.0, 1e-9);
  EXPECT_NEAR(sf::norm_quantile(1e-10), -6.361340902404056, 1e-6);
}

TEST(NormQuantile, RoundTrip) {
  for (double p = 0.0005; p < 1.0; p += 0.0101) {
    EXPECT_NEAR(sf::norm_cdf(sf::norm_quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormQuantile, DomainEdges) {
  EXPECT_TRUE(std::isnan(sf::norm_quantile(-0.1)));
  EXPECT_TRUE(std::isnan(sf::norm_quantile(1.1)));
  EXPECT_EQ(sf::norm_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(sf::norm_quantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(ErfInv, ReferenceValues) {
  EXPECT_NEAR(sf::erf_inv(0.5), 0.4769362762044699, 1e-10);
  EXPECT_NEAR(sf::erf_inv(0.9), 1.1630871536766743, 1e-10);
  EXPECT_NEAR(sf::erf_inv(-0.5), -0.4769362762044699, 1e-10);
  EXPECT_NEAR(sf::erf_inv(0.0), 0.0, 1e-14);
}

TEST(ErfInv, RoundTrip) {
  for (double x = -0.99; x < 1.0; x += 0.07) {
    EXPECT_NEAR(std::erf(sf::erf_inv(x)), x, 1e-12) << "x=" << x;
  }
}

TEST(ErfcInv, RoundTrip) {
  for (double x = 0.02; x < 2.0; x += 0.13) {
    EXPECT_NEAR(std::erfc(sf::erfc_inv(x)), x, 1e-12) << "x=" << x;
  }
}

TEST(GammaP, IntegerShapeClosedForms) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(sf::gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-13) << x;
  }
  // P(2, x) = 1 - e^{-x}(1 + x).
  EXPECT_NEAR(sf::gamma_p(2.0, 2.0), 1.0 - 3.0 * std::exp(-2.0), 1e-13);
  // Q(3, 2) = e^{-2}(1 + 2 + 2).
  EXPECT_NEAR(sf::gamma_q(3.0, 2.0), 5.0 * std::exp(-2.0), 1e-13);
}

TEST(GammaP, HalfShapeIsErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.05, 0.3, 1.0, 2.5, 9.0}) {
    EXPECT_NEAR(sf::gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12) << x;
  }
}

TEST(GammaP, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.0, 7.5}) {
    for (double x : {0.01, 0.9, 2.0, 15.0}) {
      EXPECT_NEAR(sf::gamma_p(a, x) + sf::gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(UpperIncGamma, ReferenceValue) {
  // Gamma(3, 2) = 2 * Q(3,2) = 10 e^{-2}.
  EXPECT_NEAR(sf::upper_inc_gamma(3.0, 2.0), 10.0 * std::exp(-2.0), 1e-12);
  // Gamma(a, 0) = Gamma(a).
  EXPECT_NEAR(sf::upper_inc_gamma(2.5, 0.0), std::tgamma(2.5), 1e-12);
}

TEST(GammaPInv, RoundTrip) {
  for (double a : {0.4, 1.0, 2.0, 5.0, 20.0}) {
    for (double p : {0.01, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.99}) {
      const double x = sf::gamma_p_inv(a, p);
      EXPECT_NEAR(sf::gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
    }
  }
}

TEST(GammaPInv, ExtremeTails) {
  const double x_hi = sf::gamma_p_inv(2.0, 1.0 - 1e-7);
  EXPECT_NEAR(sf::gamma_p(2.0, x_hi), 1.0 - 1e-7, 1e-10);
  const double x_lo = sf::gamma_p_inv(2.0, 1e-7);
  EXPECT_NEAR(sf::gamma_p(2.0, x_lo), 1e-7, 1e-12);
}

TEST(Beta, CompleteBeta) {
  EXPECT_NEAR(sf::beta_fn(2.0, 2.0), 1.0 / 6.0, 1e-14);
  EXPECT_NEAR(sf::beta_fn(1.0, 1.0), 1.0, 1e-14);
  EXPECT_NEAR(sf::lbeta(2.0, 2.0), std::log(1.0 / 6.0), 1e-13);
  EXPECT_NEAR(sf::beta_fn(0.5, 0.5), M_PI, 1e-12);
}

TEST(IncBeta, ClosedFormForSmallIntegers) {
  // I_x(2,2) = x^2 (3 - 2x).
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_NEAR(sf::inc_beta(x, 2.0, 2.0), x * x * (3.0 - 2.0 * x), 1e-12)
        << x;
  }
  // I_x(1,1) = x.
  EXPECT_NEAR(sf::inc_beta(0.37, 1.0, 1.0), 0.37, 1e-13);
  EXPECT_NEAR(sf::inc_beta(0.5, 3.0, 1.5), 0.2155534159027810, 1e-8);
}

TEST(IncBeta, Symmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x = 0.1; x < 1.0; x += 0.2) {
    EXPECT_NEAR(sf::inc_beta(x, 2.5, 1.3), 1.0 - sf::inc_beta(1.0 - x, 1.3, 2.5),
                1e-12)
        << x;
  }
}

TEST(IncBetaInv, RoundTrip) {
  for (double a : {0.7, 1.0, 2.0, 4.5}) {
    for (double b : {0.8, 2.0, 3.0}) {
      for (double p = 0.02; p < 1.0; p += 0.12) {
        const double x = sf::inc_beta_inv(p, a, b);
        EXPECT_NEAR(sf::inc_beta(x, a, b), p, 1e-9)
            << "a=" << a << " b=" << b << " p=" << p;
      }
    }
  }
}

TEST(IncBetaUnreg, MatchesRegularizedTimesComplete) {
  EXPECT_NEAR(sf::inc_beta_unreg(0.3, 2.0, 2.0),
              sf::inc_beta(0.3, 2.0, 2.0) * sf::beta_fn(2.0, 2.0), 1e-14);
}
