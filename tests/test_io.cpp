#include "platform/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace sre::platform;

namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs cases of this suite in parallel
    // processes, and a shared directory would be torn down mid-test.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("sre_io_test_") + info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write_file(const std::string& name, const std::string& content) const {
    std::ofstream out(path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

}  // namespace

TEST_F(IoTest, TraceRoundTrip) {
  const std::vector<double> values = {1.5, 2.25, 0.125, 1e6, 3.14159};
  ASSERT_TRUE(write_trace_csv(path("t.csv"), values));
  const auto back = read_trace_csv(path("t.csv"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, values);
}

TEST_F(IoTest, ToleratesCommentsBlanksAndHeader) {
  write_file("t.csv",
             "# a trace\n"
             "runtime_seconds\n"
             "\n"
             "1.5\n"
             "2.5\n"
             "# trailing comment\n"
             "3.5\n");
  const auto values = read_trace_csv(path("t.csv"));
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST_F(IoTest, ReadsLastColumnOfMultiColumnFiles) {
  write_file("t.csv", "job,seconds\n1,10.5\n2,20.25\n");
  const auto values = read_trace_csv(path("t.csv"));
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values, (std::vector<double>{10.5, 20.25}));
}

TEST_F(IoTest, RejectsGarbageAndReportsLine) {
  write_file("t.csv", "1.5\nnot-a-number\n");
  std::string error;
  EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
}

TEST_F(IoTest, RejectsNonPositiveValues) {
  write_file("t.csv", "1.5\n-2.0\n");
  std::string error;
  EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value());
  EXPECT_NE(error.find("positive"), std::string::npos) << error;
}

TEST_F(IoTest, RejectsMissingAndEmptyFiles) {
  std::string error;
  EXPECT_FALSE(read_trace_csv(path("nosuch.csv"), &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
  write_file("empty.csv", "# only comments\n");
  EXPECT_FALSE(read_trace_csv(path("empty.csv"), &error).has_value());
  EXPECT_NE(error.find("no samples"), std::string::npos);
}

TEST_F(IoTest, SequenceRoundTrip) {
  const sre::core::ReservationSequence seq({0.75, 2.0, 4.5, 10.0});
  ASSERT_TRUE(write_sequence_csv(path("s.csv"), seq));
  const auto back = read_sequence_csv(path("s.csv"));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ((*back)[i], seq[i]) << i;
  }
}

TEST_F(IoTest, SequenceRejectsNonIncreasingFiles) {
  write_file("s.csv", "index,reservation\n1,2.0\n2,1.0\n");
  std::string error;
  EXPECT_FALSE(read_sequence_csv(path("s.csv"), &error).has_value());
  EXPECT_NE(error.find("increasing"), std::string::npos) << error;
}

TEST_F(IoTest, TypedErrorCarriesLineNumber) {
  write_file("t.csv", "1.5\n2.5\nbogus\n");
  ParseError error;
  EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value());
  EXPECT_EQ(error.line, 3u);
  EXPECT_NE(error.message.find(":3:"), std::string::npos) << error.message;
  EXPECT_EQ(error.to_string(), error.message);
}

TEST_F(IoTest, TypedErrorFileLevelProblemsUseLineZero) {
  ParseError error;
  EXPECT_FALSE(read_trace_csv(path("nosuch.csv"), &error).has_value());
  EXPECT_EQ(error.line, 0u);
}

TEST_F(IoTest, RejectsNaNAndInfiniteDurations) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    write_file("t.csv", std::string("1.5\n") + bad + "\n");
    ParseError error;
    EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value()) << bad;
    EXPECT_EQ(error.line, 2u) << bad;
  }
}

TEST_F(IoTest, RejectsOversizedLinesWithoutBufferingThem) {
  std::string giant(kMaxCsvLineBytes + 1, '7');
  write_file("t.csv", "1.5\n" + giant + "\n");
  ParseError error;
  EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("exceeds"), std::string::npos) << error.message;
  // The diagnostic itself must stay small (excerpted, not echoed whole).
  EXPECT_LT(error.message.size(), 512u);
}

TEST_F(IoTest, SurvivesTruncatedAndCorruptFixtures) {
  // Fuzz-style corpus: each fixture must produce a clean typed error (or a
  // valid parse), never UB, a crash, or silent garbage.
  const std::vector<std::string> fixtures = {
      "",                          // empty file
      "\n\n\n",                    // only blank lines
      "1.5",                       // no trailing newline (truncated write)
      "1.5\n2.",                   // truncated float is still a float
      "1.5\n2.5e",                 // truncated exponent
      "a,b,c,",                    // empty last field
      ",,,,\n",                    // only separators
      std::string("1.5\n\x00\x01\x02\n", 8),  // embedded NUL/control bytes
      "9999999999999999999999\n",  // huge but finite (accepted)
      "0\n",                       // zero duration
      "-0.0\n",                    // negative zero
      "1.5,2.5\n3.5,oops\n",       // corrupt second row, last column
  };
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    write_file("fuzz.csv", fixtures[i]);
    ParseError error;
    const auto out = read_trace_csv(path("fuzz.csv"), &error);
    if (out) {
      for (const double v : *out) {
        EXPECT_TRUE(std::isfinite(v) && v > 0.0) << "fixture " << i;
      }
    } else {
      EXPECT_FALSE(error.message.empty()) << "fixture " << i;
    }
  }
}
