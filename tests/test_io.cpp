#include "platform/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace sre::platform;

namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "sre_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void write_file(const std::string& name, const std::string& content) const {
    std::ofstream out(path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

}  // namespace

TEST_F(IoTest, TraceRoundTrip) {
  const std::vector<double> values = {1.5, 2.25, 0.125, 1e6, 3.14159};
  ASSERT_TRUE(write_trace_csv(path("t.csv"), values));
  const auto back = read_trace_csv(path("t.csv"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, values);
}

TEST_F(IoTest, ToleratesCommentsBlanksAndHeader) {
  write_file("t.csv",
             "# a trace\n"
             "runtime_seconds\n"
             "\n"
             "1.5\n"
             "2.5\n"
             "# trailing comment\n"
             "3.5\n");
  const auto values = read_trace_csv(path("t.csv"));
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST_F(IoTest, ReadsLastColumnOfMultiColumnFiles) {
  write_file("t.csv", "job,seconds\n1,10.5\n2,20.25\n");
  const auto values = read_trace_csv(path("t.csv"));
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values, (std::vector<double>{10.5, 20.25}));
}

TEST_F(IoTest, RejectsGarbageAndReportsLine) {
  write_file("t.csv", "1.5\nnot-a-number\n");
  std::string error;
  EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
}

TEST_F(IoTest, RejectsNonPositiveValues) {
  write_file("t.csv", "1.5\n-2.0\n");
  std::string error;
  EXPECT_FALSE(read_trace_csv(path("t.csv"), &error).has_value());
  EXPECT_NE(error.find("positive"), std::string::npos) << error;
}

TEST_F(IoTest, RejectsMissingAndEmptyFiles) {
  std::string error;
  EXPECT_FALSE(read_trace_csv(path("nosuch.csv"), &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
  write_file("empty.csv", "# only comments\n");
  EXPECT_FALSE(read_trace_csv(path("empty.csv"), &error).has_value());
  EXPECT_NE(error.find("no samples"), std::string::npos);
}

TEST_F(IoTest, SequenceRoundTrip) {
  const sre::core::ReservationSequence seq({0.75, 2.0, 4.5, 10.0});
  ASSERT_TRUE(write_sequence_csv(path("s.csv"), seq));
  const auto back = read_sequence_csv(path("s.csv"));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ((*back)[i], seq[i]) << i;
  }
}

TEST_F(IoTest, SequenceRejectsNonIncreasingFiles) {
  write_file("s.csv", "index,reservation\n1,2.0\n2,1.0\n");
  std::string error;
  EXPECT_FALSE(read_sequence_csv(path("s.csv"), &error).has_value());
  EXPECT_NE(error.find("increasing"), std::string::npos) << error;
}
