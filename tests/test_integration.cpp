// End-to-end pipelines at reduced sizes, asserting the paper's qualitative
// findings: BRUTE-FORCE dominates, the discretization DPs are close behind,
// MEDIAN-BY-MEDIAN trails, and everything stays under the RI/OD break-even
// ratio of 4.

#include <gtest/gtest.h>

#include <map>

#include "core/heuristics/heuristic.hpp"
#include "dist/factory.hpp"
#include "platform/workload.hpp"

using namespace sre::core;

namespace {

std::map<std::string, HeuristicEvaluation> evaluate_all(
    const sre::dist::Distribution& d, const CostModel& m) {
  std::map<std::string, HeuristicEvaluation> out;
  EvaluationOptions opts;
  opts.mc.samples = 1000;
  opts.mc.seed = 42;
  for (const auto& h : standard_heuristics(/*fast=*/true)) {
    out[h->name()] = evaluate_heuristic(*h, d, m, opts);
  }
  return out;
}

}  // namespace

TEST(Integration, ReservationOnlyTableShape) {
  const CostModel m = CostModel::reservation_only();
  for (const char* label : {"Exponential", "Lognormal", "Uniform"}) {
    const auto inst = sre::dist::paper_distribution(label);
    ASSERT_TRUE(inst.has_value());
    const auto results = evaluate_all(*inst->dist, m);
    ASSERT_EQ(results.size(), 7u) << label;

    const double bf = results.at("Brute-Force").normalized_analytic;
    for (const auto& [name, eval] : results) {
      // All heuristics beat the AWS break-even ratio of 4...
      EXPECT_LT(eval.normalized_mc, 4.0) << label << " " << name;
      EXPECT_GE(eval.normalized_analytic, 1.0 - 1e-9) << label << " " << name;
      // ...and none beats brute force by more than the fast-grid slack.
      EXPECT_GE(eval.normalized_analytic, bf - 0.05) << label << " " << name;
    }
    // Med-by-Med never wins (Table 2: it is the weakest column).
    EXPECT_GT(results.at("Med-by-Med").normalized_analytic, bf);
  }
}

TEST(Integration, UniformRowMatchesTable2) {
  // Uniform's row in Table 2: BF = Equal-time = Equal-prob. = 1.33.
  const auto inst = sre::dist::paper_distribution("Uniform");
  const auto results = evaluate_all(*inst->dist, CostModel::reservation_only());
  EXPECT_NEAR(results.at("Brute-Force").normalized_analytic, 4.0 / 3.0, 0.01);
  EXPECT_NEAR(results.at("Equal-time").normalized_analytic, 4.0 / 3.0, 0.01);
  EXPECT_NEAR(results.at("Equal-probability").normalized_analytic, 4.0 / 3.0,
              0.01);
}

TEST(Integration, MonteCarloTracksAnalyticPerHeuristic) {
  const auto inst = sre::dist::paper_distribution("Gamma");
  const auto results = evaluate_all(*inst->dist, CostModel::reservation_only());
  for (const auto& [name, eval] : results) {
    EXPECT_NEAR(eval.normalized_mc, eval.normalized_analytic,
                0.15 * eval.normalized_analytic)
        << name;
  }
}

TEST(Integration, NeuroHpcScenarioShape) {
  const sre::platform::NeuroHpcScenario scenario;
  const auto d = scenario.distribution();
  const CostModel m = scenario.cost_model();
  const auto results = evaluate_all(d, m);
  const double bf = results.at("Brute-Force").normalized_analytic;
  // Fig. 4: brute force and the DPs sit together well below the simple
  // heuristics on the unscaled distribution.
  EXPECT_LT(bf, results.at("Mean-Doubling").normalized_analytic);
  EXPECT_NEAR(results.at("Equal-time").normalized_analytic, bf, 0.12 * bf);
  EXPECT_NEAR(results.at("Equal-probability").normalized_analytic, bf,
              0.12 * bf);
  for (const auto& [name, eval] : results) {
    EXPECT_GE(eval.normalized_analytic, 1.0 - 1e-9) << name;
    EXPECT_LT(eval.normalized_analytic, 6.0) << name;
  }
}

TEST(Integration, AllHeuristicSequencesCoverAllDistributions) {
  const CostModel m = CostModel::reservation_only();
  for (const auto& inst : sre::dist::paper_distributions()) {
    for (const auto& h : standard_heuristics(/*fast=*/true)) {
      const auto seq = h->generate(*inst.dist, m);
      ASSERT_FALSE(seq.empty()) << inst.label << " " << h->name();
      EXPECT_TRUE(seq.covers_distribution(*inst.dist, 1e-10))
          << inst.label << " " << h->name();
    }
  }
}
