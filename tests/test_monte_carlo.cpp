#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.hpp"
#include "dist/uniform.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre::sim;

TEST(MonteCarlo, EstimatesTheMean) {
  const sre::dist::Exponential e(1.0);
  MonteCarloOptions opts;
  opts.samples = 100000;
  const auto r = estimate_expectation(e, [](double t) { return t; }, opts);
  EXPECT_EQ(r.samples, 100000u);
  EXPECT_NEAR(r.mean, 1.0, 5.0 * r.std_error);
  EXPECT_NEAR(r.std_error, 1.0 / std::sqrt(100000.0), 3e-4);
}

TEST(MonteCarlo, EstimatesNonlinearFunctionals) {
  // E[X^2] of Uniform(0,1) = 1/3.
  const sre::dist::Uniform u(0.0 + 1e-12, 1.0);
  MonteCarloOptions opts;
  opts.samples = 200000;
  const auto r =
      estimate_expectation(u, [](double t) { return t * t; }, opts);
  EXPECT_NEAR(r.mean, 1.0 / 3.0, 6.0 * r.std_error);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const sre::dist::Exponential e(2.0);
  MonteCarloOptions opts;
  opts.samples = 5000;
  opts.seed = 777;
  const auto a = estimate_expectation(e, [](double t) { return t; }, opts);
  const auto b = estimate_expectation(e, [](double t) { return t; }, opts);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.std_error, b.std_error);
}

TEST(MonteCarlo, SerialEqualsParallel) {
  const sre::dist::Exponential e(1.0);
  MonteCarloOptions serial;
  serial.samples = 20000;
  serial.parallel = false;
  MonteCarloOptions parallel = serial;
  parallel.parallel = true;
  const auto a = estimate_expectation(e, [](double t) { return t; }, serial);
  const auto b = estimate_expectation(e, [](double t) { return t; }, parallel);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  const sre::dist::Exponential e(1.0);
  MonteCarloOptions a, b;
  a.samples = b.samples = 1000;
  a.seed = 1;
  b.seed = 2;
  const auto ra = estimate_expectation(e, [](double t) { return t; }, a);
  const auto rb = estimate_expectation(e, [](double t) { return t; }, b);
  EXPECT_NE(ra.mean, rb.mean);
}

TEST(MonteCarlo, ZeroSamplesIsEmptyResult) {
  const sre::dist::Exponential e(1.0);
  MonteCarloOptions opts;
  opts.samples = 0;
  const auto r = estimate_expectation(e, [](double t) { return t; }, opts);
  EXPECT_EQ(r.samples, 0u);
  EXPECT_DOUBLE_EQ(r.mean, 0.0);
}

TEST(Rng, SubstreamsAreDistinct) {
  const std::uint64_t master = 42;
  EXPECT_NE(substream_seed(master, 0), substream_seed(master, 1));
  EXPECT_NE(substream_seed(master, 0), substream_seed(master + 1, 0));
}

TEST(Rng, DrawSamplesDeterministic) {
  const sre::dist::Exponential e(1.0);
  const auto a = draw_samples(e, 100, 9);
  const auto b = draw_samples(e, 100, 9);
  EXPECT_EQ(a, b);
  const auto c = draw_samples(e, 100, 10);
  EXPECT_NE(a, c);
}

TEST(MonteCarlo, AntitheticIsUnbiased) {
  const sre::dist::Exponential e(1.0);
  MonteCarloOptions opts;
  opts.samples = 100000;
  opts.antithetic = true;
  const auto r = estimate_expectation(e, [](double t) { return t; }, opts);
  EXPECT_EQ(r.samples, 100000u);
  EXPECT_NEAR(r.mean, 1.0, 0.02);
}

TEST(MonteCarlo, AntitheticReducesVarianceForMonotoneIntegrands) {
  // Repeat the estimate under many seeds and compare the spread of the
  // estimator itself.
  const sre::dist::Exponential e(1.0);
  auto spread = [&](bool antithetic) {
    sre::stats::OnlineMoments means;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      MonteCarloOptions opts;
      opts.samples = 2000;
      opts.seed = seed;
      opts.antithetic = antithetic;
      means.add(
          estimate_expectation(e, [](double t) { return t; }, opts).mean);
    }
    return means.variance();
  };
  EXPECT_LT(spread(true), spread(false) * 0.6);
}

TEST(MonteCarlo, AntitheticDeterministicForSeed) {
  const sre::dist::Exponential e(2.0);
  MonteCarloOptions opts;
  opts.samples = 5001;  // odd count exercises the unpaired last draw
  opts.antithetic = true;
  const auto a = estimate_expectation(e, [](double t) { return t * t; }, opts);
  const auto b = estimate_expectation(e, [](double t) { return t * t; }, opts);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_EQ(a.samples, 5001u);
}
