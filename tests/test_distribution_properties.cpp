// Parameterized property tests run over every Table 1 instantiation:
// CDF/quantile round-trips, pdf == dF/dt, closed-form moments vs Monte
// Carlo, conditional means vs numerical integration, survival identities.

#include <gtest/gtest.h>

#include <cmath>

#include "dist/factory.hpp"
#include "sim/rng.hpp"
#include "stats/integrate.hpp"
#include "stats/summary.hpp"

using sre::dist::PaperInstance;

class DistributionProperty : public ::testing::TestWithParam<PaperInstance> {
 protected:
  const sre::dist::Distribution& d() const { return *GetParam().dist; }
};

TEST_P(DistributionProperty, CdfIsMonotoneFromZeroToOne) {
  const auto s = d().support();
  const double hi = s.bounded() ? s.upper : d().quantile(1.0 - 1e-9);
  double prev = -1.0;
  for (int i = 0; i <= 50; ++i) {
    const double t = s.lower + (hi - s.lower) * i / 50.0;
    const double f = d().cdf(t);
    EXPECT_GE(f, prev - 1e-12) << "t=" << t;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_NEAR(d().cdf(s.lower), 0.0, 1e-12);
}

TEST_P(DistributionProperty, QuantileCdfRoundTrip) {
  for (double p = 0.01; p < 1.0; p += 0.03) {
    const double q = d().quantile(p);
    EXPECT_NEAR(d().cdf(q), p, 1e-7) << "p=" << p;
  }
}

TEST_P(DistributionProperty, PdfMatchesCdfDerivative) {
  const auto s = d().support();
  const double hi = s.bounded() ? s.upper : d().quantile(0.999);
  for (int i = 1; i < 20; ++i) {
    const double t = s.lower + (hi - s.lower) * i / 20.0;
    const double h = 1e-6 * (1.0 + std::fabs(t));
    const double num = (d().cdf(t + h) - d().cdf(t - h)) / (2.0 * h);
    const double pdf = d().pdf(t);
    EXPECT_NEAR(pdf, num, 1e-4 * (1.0 + pdf)) << "t=" << t;
  }
}

TEST_P(DistributionProperty, SurvivalComplementsCdf) {
  const auto s = d().support();
  const double hi = s.bounded() ? s.upper : d().quantile(1.0 - 1e-6);
  for (int i = 0; i <= 30; ++i) {
    const double t = s.lower + (hi - s.lower) * i / 30.0;
    EXPECT_NEAR(d().sf(t) + d().cdf(t), 1.0, 1e-10) << "t=" << t;
  }
}

TEST_P(DistributionProperty, MeanMatchesQuadrature) {
  // E[X] = integral of t f(t) over the support.
  const auto s = d().support();
  const double hi = s.bounded() ? s.upper : d().quantile(1.0 - 1e-12);
  const double m = sre::stats::integrate(
      [this](double t) { return t * d().pdf(t); },
      s.lower + (s.bounded() ? 0.0 : 1e-12), hi, 1e-10 * (1.0 + d().mean()));
  EXPECT_NEAR(m, d().mean(), 2e-3 * d().mean());
}

TEST_P(DistributionProperty, MomentsMatchMonteCarlo) {
  sre::sim::Rng rng = sre::sim::make_rng(99);
  sre::stats::OnlineMoments acc;
  for (int i = 0; i < 200000; ++i) acc.add(d().sample(rng));
  EXPECT_NEAR(acc.mean(), d().mean(), 0.02 * d().mean() + 5.0 * acc.standard_error());
  // Variance converges slower; allow 10% -- except for the unbounded Pareto,
  // whose fourth moment is infinite at alpha = 3, so the sample variance has
  // infinite variance itself and converges arbitrarily slowly.
  const double var_tol = (GetParam().label == "Pareto") ? 0.5 : 0.10;
  EXPECT_NEAR(acc.variance(), d().variance(), var_tol * d().variance());
}

TEST_P(DistributionProperty, SamplesStayInSupport) {
  const auto s = d().support();
  sre::sim::Rng rng = sre::sim::make_rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = d().sample(rng);
    EXPECT_GE(x, s.lower);
    if (s.bounded()) {
      EXPECT_LE(x, s.upper);
    }
  }
}

TEST_P(DistributionProperty, ConditionalMeanMatchesQuadrature) {
  // The Appendix B closed forms against the numerical fallback.
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    const double tau = (p == 0.0) ? d().support().lower : d().quantile(p);
    const double closed = d().conditional_mean_above(tau);
    // Numerical reference: E[X 1{X>tau}] / P(X>tau).
    const auto s = d().support();
    const double hi = s.bounded() ? s.upper : d().quantile(1.0 - 1e-13);
    if (!(hi > tau)) continue;
    // Guard t * pdf(t) at a lower support endpoint where the density
    // diverges (Weibull kappa < 1, Beta alpha < 1): the product tends to 0.
    const double num = sre::stats::integrate(
        [this](double t) {
          const double v = t * d().pdf(t);
          return std::isfinite(v) ? v : 0.0;
        },
        tau, hi, 1e-11 * (1.0 + d().mean()));
    const double reference = num / d().sf(tau);
    EXPECT_NEAR(closed, reference, 2e-3 * reference)
        << GetParam().label << " p=" << p;
  }
}

TEST_P(DistributionProperty, ConditionalMeanExceedsThreshold) {
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    const double tau = d().quantile(p);
    EXPECT_GE(d().conditional_mean_above(tau), tau) << "p=" << p;
  }
}

TEST_P(DistributionProperty, MedianSplitsMassInHalf) {
  EXPECT_NEAR(d().cdf(d().median()), 0.5, 1e-7);
}

TEST_P(DistributionProperty, SecondMomentConsistent) {
  EXPECT_NEAR(d().second_moment(),
              d().variance() + d().mean() * d().mean(), 1e-9 * d().second_moment());
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DistributionProperty,
    ::testing::ValuesIn(sre::dist::paper_distributions()),
    [](const ::testing::TestParamInfo<PaperInstance>& info) {
      return info.param.label;
    });
