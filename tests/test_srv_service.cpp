// srv::PlannerService end to end (in process): cache hits return the cold
// solve's exact bytes, identical concurrent requests coalesce into one
// solve, admission control sheds overflow as retryable kOverloaded before
// any solver work, deadlines surface as kTimeout, malformed queries as
// kDomainError, and the stats JSON is byte-stable across identical runs.
//
// Tests that need a deterministically *slow* solve occupy the single
// worker with an injected-latency fault (SRE_FAULT-style spec, probability
// one), then observe the queue from outside — no timing races on the
// assertion side, only generous windows.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "srv/service.hpp"
#include "stats/error.hpp"

namespace {

using sre::ErrorCode;
using sre::srv::PlanRequest;
using sre::srv::PlannerService;
using sre::srv::ServiceConfig;

PlanRequest lognormal_request() {
  PlanRequest req;
  req.dist_spec = "lognormal:mu=3,sigma=0.5";
  req.model = {1.0, 1.0, 1.0};
  req.solver = "equal-probability";
  req.n = 64;
  req.epsilon = 1e-6;
  return req;
}

/// Spins until the service has started `target` batch solves (the counter
/// increments when a worker *enters* execute_batch, before any fault
/// latency), or the generous timeout elapses.
bool wait_for_solves(const PlannerService& service, std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.counters().solves < target) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(PlannerService, CacheHitIsByteIdenticalToColdSolve) {
  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);
  const auto req = lognormal_request();

  const auto cold = client.call(req);
  ASSERT_TRUE(cold.ok) << cold.message;
  EXPECT_FALSE(cold.cached);
  EXPECT_FALSE(cold.result.empty());

  const auto hit = client.call(req);
  ASSERT_TRUE(hit.ok);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.result, cold.result);

  const auto cc = service.cache_counters();
  EXPECT_EQ(cc.hits, 1u);
  EXPECT_EQ(cc.misses, 1u);
  EXPECT_EQ(cc.inserts, 1u);
}

TEST(PlannerService, NoCacheFlagBypassesReadButStillStores) {
  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);
  auto req = lognormal_request();
  req.no_cache = true;

  const auto first = client.call(req);
  ASSERT_TRUE(first.ok) << first.message;
  const auto second = client.call(req);  // still bypasses the read
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(second.cached);
  EXPECT_EQ(second.result, first.result);

  req.no_cache = false;  // the solves above populated the cache
  const auto third = client.call(req);
  ASSERT_TRUE(third.ok);
  EXPECT_TRUE(third.cached);
  EXPECT_EQ(third.result, first.result);
}

TEST(PlannerService, CacheDisabledStillServesDeterministically) {
  ServiceConfig cfg;
  cfg.cache_enabled = false;
  PlannerService service(cfg);
  sre::srv::InProcessClient client(service);
  const auto req = lognormal_request();

  const auto a = client.call(req);
  const auto b = client.call(req);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_FALSE(a.cached);
  EXPECT_FALSE(b.cached);
  EXPECT_EQ(a.result, b.result) << "solves must be deterministic";
  EXPECT_EQ(service.cache_counters().inserts, 0u);
}

TEST(PlannerService, IdenticalConcurrentRequestsCoalesce) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.faults.seed = 1;
  cfg.faults.latency_prob = 1.0;     // every batch sleeps before solving,
  cfg.faults.latency_seconds = 0.5;  // keeping the single worker busy
  PlannerService service(cfg);

  // Occupy the worker with key A...
  std::thread blocker([&service] {
    auto req = lognormal_request();
    const auto resp = service.call(req);
    EXPECT_TRUE(resp.ok) << resp.message;
  });
  ASSERT_TRUE(wait_for_solves(service, 1));

  // ...then race identical key-B requests into the queue. They all land
  // while the worker sleeps in A's latency fault, so the first opens a
  // batch and the rest join it.
  constexpr int kClients = 4;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&service, &results, i] {
      auto req = lognormal_request();
      req.dist_spec = "exponential:lambda=0.1";  // key B
      req.solver = "mean-doubling";
      const auto resp = service.call(req);
      ASSERT_TRUE(resp.ok) << resp.message;
      results[static_cast<std::size_t>(i)] = resp.result;
    });
  }
  for (auto& t : clients) t.join();
  blocker.join();

  const auto counters = service.counters();
  // Every request belongs to exactly one batch: members partition requests.
  EXPECT_EQ(counters.solves + counters.coalesced, 1u + kClients);
  EXPECT_EQ(counters.solves, 2u) << "A's batch plus one coalesced B batch";
  EXPECT_EQ(counters.coalesced, static_cast<std::uint64_t>(kClients - 1));
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], results[0])
        << "coalesced members must receive identical bytes";
  }
}

TEST(PlannerService, OverflowShedsAsRetryableOverloaded) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.faults.seed = 1;
  cfg.faults.latency_prob = 1.0;
  cfg.faults.latency_seconds = 0.5;
  PlannerService service(cfg);

  std::thread blocker([&service] {
    auto req = lognormal_request();
    const auto resp = service.call(req);
    EXPECT_TRUE(resp.ok) << resp.message;
  });
  ASSERT_TRUE(wait_for_solves(service, 1));

  // The worker is busy and the in-flight budget (1) is spent: this request
  // must be shed immediately, typed and retryable, without queueing.
  auto req = lognormal_request();
  req.dist_spec = "exponential:lambda=2";
  const auto shed = service.call(req);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.code, ErrorCode::kOverloaded);
  EXPECT_TRUE(shed.retryable);
  blocker.join();

  const auto counters = service.counters();
  EXPECT_EQ(counters.rejected, 1u);
  EXPECT_EQ(counters.rejected_by_code[static_cast<std::size_t>(
                ErrorCode::kOverloaded)],
            1u);
}

TEST(PlannerService, DeadlineExpiresAsTimeout) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.faults.seed = 1;
  cfg.faults.latency_prob = 1.0;
  cfg.faults.latency_seconds = 0.5;  // far beyond the request deadline
  PlannerService service(cfg);

  auto req = lognormal_request();
  req.deadline_ms = 50.0;
  const auto resp = service.call(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kTimeout);
  EXPECT_FALSE(resp.retryable);
  // The timed-out solve unwinds in the worker too (the latency fault polls
  // the request's cancel token) and must never populate the cache.
  service.stop();
  EXPECT_EQ(service.cache_counters().inserts, 0u);
}

TEST(PlannerService, MalformedQueriesAreTypedDomainErrors) {
  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);

  PlanRequest no_dist;
  no_dist.model = {1.0, 0.0, 0.0};
  const auto a = client.call(no_dist);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.code, ErrorCode::kDomainError);
  EXPECT_FALSE(a.retryable);

  auto bad_solver = lognormal_request();
  bad_solver.solver = "no-such-solver";
  EXPECT_EQ(client.call(bad_solver).code, ErrorCode::kDomainError);

  auto bad_model = lognormal_request();
  bad_model.model = {0.0, 1.0, 0.0};  // alpha must be positive
  EXPECT_EQ(client.call(bad_model).code, ErrorCode::kDomainError);

  auto bad_epsilon = lognormal_request();
  bad_epsilon.epsilon = 1.5;
  EXPECT_EQ(client.call(bad_epsilon).code, ErrorCode::kDomainError);

  const auto counters = service.counters();
  EXPECT_EQ(counters.rejected, 4u);
  EXPECT_EQ(counters.rejected_by_code[static_cast<std::size_t>(
                ErrorCode::kDomainError)],
            4u);
  EXPECT_EQ(counters.solves, 0u) << "rejections must cost no solver work";
}

TEST(PlannerService, StatsJsonIsByteStableAcrossIdenticalRuns) {
  const auto run = [] {
    PlannerService service(ServiceConfig{});
    sre::srv::InProcessClient client(service);
    (void)client.call(lognormal_request());  // miss + solve
    (void)client.call(lognormal_request());  // hit
    auto bad = lognormal_request();
    bad.solver = "no-such-solver";
    (void)client.call(bad);  // domain_error rejection
    return service.stats_json();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"domain_error\":1"), std::string::npos) << first;
}

#ifndef STOCHRES_OBS_DISABLE
TEST(PlannerService, RequestSpansBalanceRequestCounter) {
  const auto before = sre::obs::spans_snapshot()["srv.request"].count;
  PlannerService service(ServiceConfig{});
  sre::srv::InProcessClient client(service);
  for (int i = 0; i < 3; ++i) (void)client.call(lognormal_request());
  service.stop();
  const auto after = sre::obs::spans_snapshot()["srv.request"].count;
  EXPECT_EQ(after - before, 3u);
  EXPECT_EQ(sre::obs::active_span_depth(), 0) << "unbalanced span";
}
#endif

}  // namespace
