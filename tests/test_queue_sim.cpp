#include "sim/queue_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "platform/hpc.hpp"
#include "stats/fitting.hpp"

using namespace sre::sim;

namespace {

ClusterJob job(double submit, std::size_t width, double requested,
               double actual) {
  return ClusterJob{submit, width, requested, actual};
}

/// Asserts that at no instant do concurrently running jobs exceed capacity.
void assert_capacity_respected(const std::vector<ScheduledJob>& records,
                               std::size_t nodes) {
  // Sweep over start/end events.
  std::vector<std::pair<double, long>> events;
  for (const auto& r : records) {
    events.emplace_back(r.start_time, static_cast<long>(r.job.width));
    events.emplace_back(r.start_time + r.job.actual,
                        -static_cast<long>(r.job.width));
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // releases before acquires at ties
            });
  long used = 0;
  for (const auto& [t, delta] : events) {
    used += delta;
    ASSERT_LE(used, static_cast<long>(nodes)) << "overcommitted at t=" << t;
    ASSERT_GE(used, 0);
  }
}

}  // namespace

TEST(QueueSim, EmptyClusterStartsImmediately) {
  const auto records = simulate_backfill_queue(
      {4}, {job(0.0, 2, 1.0, 0.5), job(0.0, 2, 1.0, 0.5)});
  EXPECT_DOUBLE_EQ(records[0].wait, 0.0);
  EXPECT_DOUBLE_EQ(records[1].wait, 0.0);
}

TEST(QueueSim, FcfsWhenSaturated) {
  // One node; three unit jobs back to back.
  const auto records = simulate_backfill_queue(
      {1}, {job(0.0, 1, 1.0, 1.0), job(0.0, 1, 1.0, 1.0),
            job(0.0, 1, 1.0, 1.0)});
  EXPECT_DOUBLE_EQ(records[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(records[1].start_time, 1.0);
  EXPECT_DOUBLE_EQ(records[2].start_time, 2.0);
  EXPECT_DOUBLE_EQ(records[2].wait, 2.0);
}

TEST(QueueSim, ShortNarrowJobBackfills) {
  // 4 nodes. Running: width 3 until t=2 (requested). Head: width 4 ->
  // reservation at t=2. A width-1 job requesting 1.0 fits before the
  // shadow and must backfill at t=0; a width-1 job requesting 5.0 would
  // delay the head and must not.
  const auto records = simulate_backfill_queue(
      {4}, {job(0.0, 3, 2.0, 2.0),    // occupies 3 nodes
            job(0.0, 4, 2.0, 1.0),    // blocked head, reservation at t=2
            job(0.0, 1, 1.0, 1.0),    // backfills
            job(0.0, 1, 5.0, 5.0)});  // must wait for the head
  EXPECT_DOUBLE_EQ(records[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(records[2].start_time, 0.0);
  EXPECT_TRUE(records[2].backfilled);
  EXPECT_DOUBLE_EQ(records[1].start_time, 2.0);
  EXPECT_FALSE(records[3].backfilled && records[3].start_time < 2.0);
  EXPECT_GE(records[3].start_time, 2.0);
}

TEST(QueueSim, SpareNodesBackfillLongJobs) {
  // 4 nodes. Running: width 2 until t=4. Head: width 3, reservation at
  // t=4 with 4+... spare = (free 2 + released 2) - 3 = 1 at the shadow.
  // A width-1 long job can run forever without delaying the head.
  const auto records = simulate_backfill_queue(
      {4}, {job(0.0, 2, 4.0, 4.0),
            job(0.0, 3, 2.0, 2.0),     // head, reservation at t=4
            job(0.0, 1, 50.0, 50.0)}); // width fits the shadow's spare
  EXPECT_DOUBLE_EQ(records[2].start_time, 0.0);
  EXPECT_TRUE(records[2].backfilled);
  EXPECT_DOUBLE_EQ(records[1].start_time, 4.0);
}

TEST(QueueSim, EarlyCompletionIsExploited) {
  // The scheduler plans with requested walltimes but nodes free at actual
  // completion: a job finishing early lets the head start sooner.
  const auto records = simulate_backfill_queue(
      {2}, {job(0.0, 2, 10.0, 1.0),   // requests 10, finishes at 1
            job(0.0, 2, 1.0, 1.0)});
  EXPECT_DOUBLE_EQ(records[1].start_time, 1.0);
}

TEST(QueueSim, CapacityNeverExceeded) {
  ClusterWorkloadConfig cfg;
  cfg.jobs = 800;
  cfg.max_width = 64;
  cfg.seed = 11;
  const auto jobs = synthesize_cluster_workload(cfg);
  const auto records = simulate_backfill_queue({64}, jobs);
  assert_capacity_respected(records, 64);
  // Every job started at or after submission.
  for (const auto& r : records) {
    EXPECT_GE(r.wait, 0.0);
    EXPECT_GE(r.start_time, r.job.submit_time);
  }
}

TEST(QueueSim, Deterministic) {
  ClusterWorkloadConfig cfg;
  cfg.jobs = 300;
  cfg.max_width = 128;  // match the simulated machine
  cfg.seed = 21;
  const auto a = simulate_backfill_queue({128}, synthesize_cluster_workload(cfg));
  const auto b = simulate_backfill_queue({128}, synthesize_cluster_workload(cfg));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].start_time, b[i].start_time) << i;
  }
}

TEST(QueueSim, WaitGrowsWithRequestedRuntime) {
  // The emergent Fig. 2 relationship: under contention, jobs with longer
  // requested walltimes backfill less and wait more, yielding a positive
  // affine slope of mean wait vs request.
  ClusterWorkloadConfig cfg;
  cfg.jobs = 4000;
  cfg.max_width = 409;
  cfg.mean_width_fraction = 0.25;
  cfg.mean_interarrival = 1.2;  // ~95% offered utilization
  cfg.seed = 5;
  const auto jobs = synthesize_cluster_workload(cfg);
  const auto records = simulate_backfill_queue({409}, jobs);

  std::vector<sre::platform::JobLogEntry> log;
  for (const auto& r : records) {
    log.push_back({r.job.requested, r.wait});
  }
  const auto fit = sre::platform::fit_queue_log(log, 10);
  EXPECT_GT(fit.model.slope, 0.0);
  // Monotone trend across the bucket means (allow local noise of 20%).
  const auto& waits = fit.group_mean_wait;
  EXPECT_GT(waits.back(), waits.front());
}

TEST(QueueSim, SomeJobsBackfillUnderContention) {
  ClusterWorkloadConfig cfg;
  cfg.jobs = 2000;
  cfg.mean_interarrival = 0.02;
  cfg.seed = 6;
  const auto records =
      simulate_backfill_queue({409}, synthesize_cluster_workload(cfg));
  const auto backfilled = std::count_if(
      records.begin(), records.end(),
      [](const ScheduledJob& r) { return r.backfilled; });
  EXPECT_GT(backfilled, 0);
}

TEST(QueueSim, OverwideJobsAreClampedNotDeadlocked) {
  // A job wider than the machine is clamped to full-machine width (real
  // schedulers reject; the simulator must not deadlock either way).
  const auto records = simulate_backfill_queue(
      {4}, {job(0.0, 9, 1.0, 1.0), job(0.0, 1, 1.0, 1.0)});
  EXPECT_EQ(records[0].job.width, 4u);
  EXPECT_DOUBLE_EQ(records[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(records[1].start_time, 1.0);
}
