// sim::FaultPlan + core::run_scenario_sweep_resilient: the chaos acceptance
// tests. A seeded fault plan must (a) be a pure function of
// (seed, scenario, attempt) — bitwise identical across replays and thread
// counts, (b) leave every non-faulted scenario byte-identical to a
// fault-free sweep, and (c) aggregate per-class failure counts that match
// the plan replayed offline.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/scenario_sweep.hpp"
#include "dist/exponential.hpp"
#include "sim/event_sim.hpp"
#include "sim/fault.hpp"
#include "stats/error.hpp"

// Chaos sweeps replay full solver campaigns; scale the Monte Carlo work
// down under a sanitizer so the tsan/asan presets stay inside the 600 s
// ctest budget (the scenario *count* stays at the acceptance level).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SRE_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SRE_SANITIZED_BUILD 1
#endif
#endif

using namespace sre;

namespace {

std::vector<core::SweepScenario> chaos_grid() {
  const sim::DiscretizationOptions eq_prob{
      48, 1e-7, sim::DiscretizationScheme::kEqualProbability};
  const std::vector<core::HeuristicPtr> solvers = {
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanStdev>(),
      std::make_shared<core::MedianByMedian>(),
      std::make_shared<core::DiscretizedDp>(eq_prob),
  };
  const std::vector<std::pair<std::string, core::CostModel>> models = {
      {"ReservationOnly", core::CostModel::reservation_only()},
      {"PayAsYouGo", {1.0, 1.0, 0.0}},
      {"WithOverhead", {1.0, 1.0, 0.1}},
  };
  return core::make_scenario_grid(dist::paper_distributions(), models,
                                  solvers);
}

core::EvaluationOptions fast_eval() {
  core::EvaluationOptions eval;
#ifdef SRE_SANITIZED_BUILD
  eval.mc.samples = 64;
#else
  eval.mc.samples = 256;
#endif
  eval.mc.seed = 9;
  return eval;
}

void expect_outcome_identical(const core::ScenarioOutcome& a,
                              const core::ScenarioOutcome& b) {
  EXPECT_EQ(a.dist_label, b.dist_label);
  EXPECT_EQ(a.model_label, b.model_label);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.eval.t1, b.eval.t1);
  EXPECT_EQ(a.eval.expected_cost_mc, b.eval.expected_cost_mc);
  EXPECT_EQ(a.eval.expected_cost_analytic, b.eval.expected_cost_analytic);
  EXPECT_EQ(a.eval.sequence.values(), b.eval.sequence.values());
}

}  // namespace

TEST(FaultInjection, DecisionsAreDeterministicAndRandomAccess) {
  sim::FaultSpec spec;
  spec.seed = 1234;
  spec.solver_exception_prob = 0.3;
  spec.launch_failure_prob = 0.2;
  spec.interruption_rate = 0.5;
  spec.latency_prob = 0.1;
  spec.latency_seconds = 0.25;

  const sim::FaultPlan plan(spec);
  for (const std::uint64_t id : {0ull, 1ull, 17ull, 9999ull}) {
    const auto a = plan.for_scenario(id);
    const auto b = plan.for_scenario(id);
    // Query out of order: decisions are random-access, no iterator state.
    for (const int attempt : {7, 0, 3, 1}) {
      EXPECT_EQ(a.solver_fault(attempt), b.solver_fault(attempt));
      EXPECT_EQ(a.latency(attempt), b.latency(attempt));
      EXPECT_EQ(a.launch_fails(static_cast<std::uint64_t>(attempt)),
                b.launch_fails(static_cast<std::uint64_t>(attempt)));
      EXPECT_EQ(a.interruption_after(static_cast<std::uint64_t>(attempt)),
                b.interruption_after(static_cast<std::uint64_t>(attempt)));
      EXPECT_GT(a.interruption_after(static_cast<std::uint64_t>(attempt)),
                0.0);
    }
  }
  // A different seed flips at least one decision over a modest scan.
  sim::FaultSpec other = spec;
  other.seed = 4321;
  const sim::FaultPlan plan2(other);
  bool any_difference = false;
  for (std::uint64_t id = 0; id < 64 && !any_difference; ++id) {
    any_difference = plan.for_scenario(id).solver_fault(0) !=
                     plan2.for_scenario(id).solver_fault(0);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjection, InjectionRateTracksTheSpec) {
  sim::FaultSpec spec;
  spec.seed = 99;
  spec.solver_exception_prob = 0.1;
  const sim::FaultPlan plan(spec);
  int fired = 0;
  constexpr int kScenarios = 4000;
  for (int i = 0; i < kScenarios; ++i) {
    if (plan.for_scenario(static_cast<std::uint64_t>(i)).solver_fault(0)) {
      ++fired;
    }
  }
  // 4000 Bernoulli(0.1) draws: mean 400, sd ~19. Allow 5 sigma.
  EXPECT_NEAR(fired, 400, 95);
}

TEST(FaultInjection, DisabledSpecInjectsNothing) {
  const sim::ScenarioFaults none;
  EXPECT_FALSE(none.enabled());
  EXPECT_FALSE(none.solver_fault(0));
  EXPECT_FALSE(none.launch_fails(0));
  EXPECT_EQ(none.latency(0), 0.0);
  EXPECT_EQ(none.interruption_after(0),
            std::numeric_limits<double>::infinity());
  EXPECT_NO_THROW(none.inject_scenario_entry(0, {}));
}

TEST(FaultInjection, FromEnvReadsTheChaosKnobs) {
  ::setenv("SRE_FAULT_SEED", "77", 1);
  ::setenv("SRE_FAULT_RATE", "0.25", 1);
  ::setenv("SRE_FAULT_LAUNCH", "0.5", 1);
  ::setenv("SRE_FAULT_INTERRUPT", "2.0", 1);
  ::setenv("SRE_FAULT_LATENCY_PROB", "0.125", 1);
  ::setenv("SRE_FAULT_LATENCY_S", "0.75", 1);
  const auto spec = sim::FaultSpec::from_env();
  EXPECT_EQ(spec.seed, 77u);
  EXPECT_DOUBLE_EQ(spec.solver_exception_prob, 0.25);
  EXPECT_DOUBLE_EQ(spec.launch_failure_prob, 0.5);
  EXPECT_DOUBLE_EQ(spec.interruption_rate, 2.0);
  EXPECT_DOUBLE_EQ(spec.latency_prob, 0.125);
  EXPECT_DOUBLE_EQ(spec.latency_seconds, 0.75);
  EXPECT_TRUE(spec.enabled());
  for (const char* var :
       {"SRE_FAULT_SEED", "SRE_FAULT_RATE", "SRE_FAULT_LAUNCH",
        "SRE_FAULT_INTERRUPT", "SRE_FAULT_LATENCY_PROB", "SRE_FAULT_LATENCY_S"}) {
    ::unsetenv(var);
  }
  EXPECT_FALSE(sim::FaultSpec::from_env().enabled());
}

TEST(FaultInjection, LatencyPlusDeadlineSurfacesAsTimeout) {
  sim::FaultSpec spec;
  spec.seed = 5;
  spec.latency_prob = 1.0;
  spec.latency_seconds = 0.05;
  const auto faults = sim::FaultPlan(spec).for_scenario(0);
  const auto deadline = sim::CancelSource::with_deadline(0.01);
  try {
    faults.inject_scenario_entry(0, deadline.token());
    FAIL() << "did not time out";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

TEST(FaultInjection, EventSimLaunchAndInterruptAccounting) {
  // alpha=1, beta=1, gamma=0.1; reservations {2, 4}; job needs 3.
  sim::PlatformSimulator simulator({2.0, 4.0}, {1.0, 1.0, 0.1});
  const auto clean = simulator.run_job(3.0);
  ASSERT_TRUE(clean.completed);

  // A disabled plan must replay run_job exactly.
  const auto same = simulator.run_job_with_faults(3.0, sim::ScenarioFaults());
  EXPECT_EQ(same.completed, clean.completed);
  EXPECT_EQ(same.attempts, clean.attempts);
  EXPECT_EQ(same.total_cost, clean.total_cost);
  EXPECT_EQ(same.wasted_time, clean.wasted_time);

  // With faults on, the job still completes (the guard throws only on a
  // fault storm) and every failed launch / interruption adds cost but never
  // advances the reservation level past what the clean run used.
  sim::FaultSpec spec;
  spec.seed = 11;
  spec.launch_failure_prob = 0.3;
  spec.interruption_rate = 0.05;
  std::vector<sim::AttemptRecord> trace;
  const auto chaotic = simulator.run_job_with_faults(
      3.0, sim::FaultPlan(spec).for_scenario(0), &trace);
  EXPECT_TRUE(chaotic.completed);
  EXPECT_GE(chaotic.attempts, clean.attempts);
  EXPECT_GE(chaotic.total_cost, clean.total_cost);
  for (const auto& rec : trace) {
    EXPECT_LE(rec.used, rec.reserved);
    EXPECT_TRUE(std::isfinite(rec.cost));
  }
}

// ---------------------------------------------------------------------------
// Acceptance: 100+-scenario chaos sweep with ~10% injected faults.

TEST(FaultInjection, ChaosSweepDegradesGracefullyAndMatchesThePlan) {
  const auto grid = chaos_grid();
  ASSERT_GE(grid.size(), 100u);
  const auto eval = fast_eval();

  // Fault-free reference.
  const auto clean = core::run_scenario_sweep(grid, eval, {});

  sim::FaultSpec spec;
  spec.seed = 2026;
  spec.solver_exception_prob = 0.1;
  core::ResilientSweepOptions res;
  res.faults = sim::FaultPlan(spec);
  res.resilience.failure_budget = 0.25;
  const auto chaos = core::run_scenario_sweep_resilient(grid, eval, {}, res);

  ASSERT_EQ(chaos.outcomes.size(), grid.size());
  EXPECT_EQ(chaos.failures.scenarios, grid.size());

  // Replay the plan offline: the failed set must match it exactly.
  std::size_t planned = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const bool faulted =
        res.faults.for_scenario(static_cast<std::uint64_t>(i)).solver_fault(0);
    planned += faulted ? 1u : 0u;
    EXPECT_EQ(chaos.outcomes[i].ok, !faulted) << i;
    if (faulted) {
      // Labels survive for failed slots; the eval is filler.
      EXPECT_EQ(chaos.outcomes[i].dist_label, grid[i].dist_label) << i;
    } else {
      // Non-faulted scenarios are byte-identical to the fault-free run.
      SCOPED_TRACE(i);
      expect_outcome_identical(chaos.outcomes[i], clean.outcomes[i]);
    }
  }
  EXPECT_GT(planned, 0u);  // the seed must actually inject something
  EXPECT_EQ(chaos.failures.failed, planned);
  EXPECT_EQ(chaos.failures.by_code[static_cast<std::size_t>(
                ErrorCode::kInjectedFault)],
            planned);
  for (const auto code :
       {ErrorCode::kDomainError, ErrorCode::kNoConvergence, ErrorCode::kTimeout,
        ErrorCode::kCancelled}) {
    EXPECT_EQ(chaos.failures.by_code[static_cast<std::size_t>(code)], 0u);
  }
  EXPECT_EQ(chaos.failures.budget_exceeded,
            planned > res.resilience.failure_budget *
                          static_cast<double>(grid.size()));
}

TEST(FaultInjection, ChaosSweepBitwiseReproducibleAcrossThreadCounts) {
  const auto grid = chaos_grid();
  const auto eval = fast_eval();

  sim::FaultSpec spec;
  spec.seed = 7;
  spec.solver_exception_prob = 0.1;
  core::ResilientSweepOptions res;
  res.faults = sim::FaultPlan(spec);

  sim::SweepOptions serial;
  serial.serial = true;
  const auto ref = core::run_scenario_sweep_resilient(grid, eval, serial, res);
  const std::string ref_json = ref.failures.to_json();

  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    sim::SweepOptions opts;
    opts.threads = threads;
    const auto par = core::run_scenario_sweep_resilient(grid, eval, opts, res);
    ASSERT_EQ(par.outcomes.size(), ref.outcomes.size());
    for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(par.outcomes[i].ok, ref.outcomes[i].ok);
      expect_outcome_identical(par.outcomes[i], ref.outcomes[i]);
    }
    EXPECT_EQ(par.failures.to_json(), ref_json);
  }
}

TEST(FaultInjection, RetriesRecoverEveryInjectedFault) {
  const auto grid = chaos_grid();
  const auto eval = fast_eval();
  const auto clean = core::run_scenario_sweep(grid, eval, {});

  // Every scenario faults on attempt 0 only; one retry recovers all of them.
  sim::FaultSpec spec;
  spec.seed = 3;
  spec.solver_exception_prob = 1.0;
  spec.solver_exception_attempts = 1;
  core::ResilientSweepOptions res;
  res.faults = sim::FaultPlan(spec);
  res.resilience.max_attempts = 2;
  const auto chaos = core::run_scenario_sweep_resilient(grid, eval, {}, res);

  EXPECT_TRUE(chaos.failures.ok());
  EXPECT_EQ(chaos.failures.retries, grid.size());
  ASSERT_EQ(chaos.outcomes.size(), clean.outcomes.size());
  for (std::size_t i = 0; i < chaos.outcomes.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(chaos.outcomes[i].ok);
    expect_outcome_identical(chaos.outcomes[i], clean.outcomes[i]);
  }
}
