// Batch-vs-scalar equivalence for the SoA evaluation API: for every law,
// cdf_batch / sf_batch / quantile_batch must be *bit-identical* to calling
// the scalar virtuals point by point — including NaN, signed zeros,
// out-of-support probes, empty and length-1 spans, and spans at unaligned
// offsets. The per-law overrides replicate the scalar branch structure and
// the generic fallback literally calls the scalar members, so this harness
// is what licenses routing sim::discretize and TabulatedCdf through the
// batch path without changing a single output byte.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dist/discrete.hpp"
#include "dist/distribution.hpp"
#include "dist/factory.hpp"
#include "stats/error.hpp"

using sre::dist::DiscreteDistribution;
using sre::dist::Distribution;

namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Time probes exercising every branch: both signed zeros, NaN, +/-inf,
/// below/inside/above the support, and quantile-derived interior points.
std::vector<double> time_probes(const Distribution& d) {
  const auto s = d.support();
  std::vector<double> t = {kNaN,       -kInf, -1.0, -0.0, 0.0,
                           s.lower,    kInf,  1e300};
  if (std::isfinite(s.upper)) {
    t.push_back(s.upper);
    t.push_back(std::nextafter(s.upper, kInf));
  }
  for (const double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    t.push_back(d.quantile(p));
  }
  return t;
}

std::vector<double> probability_probes() {
  return {0.0,  -0.0, 1.0,    1e-12, 0.25,
          0.5,  0.75, 1.0 - 1e-12, 0.999, 1e-300};
}

void expect_batch_matches_scalar(const Distribution& d,
                                 const std::string& label) {
  // cdf / sf over the same probes.
  const std::vector<double> t = time_probes(d);
  std::vector<double> batch_cdf(t.size()), batch_sf(t.size());
  d.cdf_batch(t, batch_cdf);
  d.sf_batch(t, batch_sf);
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ(bits(batch_cdf[i]), bits(d.cdf(t[i])))
        << label << ": cdf(" << t[i] << ")";
    ASSERT_EQ(bits(batch_sf[i]), bits(d.sf(t[i])))
        << label << ": sf(" << t[i] << ")";
  }

  // quantile over valid probabilities.
  const std::vector<double> p = probability_probes();
  std::vector<double> batch_q(p.size());
  d.quantile_batch(p, batch_q);
  for (std::size_t i = 0; i < p.size(); ++i) {
    ASSERT_EQ(bits(batch_q[i]), bits(d.quantile(p[i])))
        << label << ": quantile(" << p[i] << ")";
  }

  // Empty spans are a no-op, not a crash.
  d.cdf_batch({}, {});
  d.sf_batch({}, {});
  d.quantile_batch({}, {});

  // Length-1 spans degenerate to the scalar call.
  const double one_t = d.quantile(0.37);
  double one_out = kNaN;
  d.cdf_batch(std::span<const double>(&one_t, 1), std::span<double>(&one_out, 1));
  ASSERT_EQ(bits(one_out), bits(d.cdf(one_t))) << label;

  // Unaligned offsets: subspans starting one element into a buffer (offset
  // 8 bytes from the allocation, so any kernel assuming 16/32-byte
  // alignment would fault or misread).
  std::vector<double> shifted_in(t.size() + 1, 0.0);
  std::vector<double> shifted_out(t.size() + 1, kNaN);
  for (std::size_t i = 0; i < t.size(); ++i) shifted_in[i + 1] = t[i];
  d.cdf_batch(std::span<const double>(shifted_in).subspan(1),
              std::span<double>(shifted_out).subspan(1));
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ(bits(shifted_out[i + 1]), bits(batch_cdf[i]))
        << label << ": unaligned cdf(" << t[i] << ")";
  }
}

}  // namespace

TEST(BatchEval, EveryPaperLawBitIdentical) {
  for (const auto& inst : sre::dist::paper_distributions()) {
    expect_batch_matches_scalar(*inst.dist, inst.label);
    if (HasFatalFailure()) return;
  }
}

// DiscreteDistribution has no batch overrides: it exercises the generic
// scalar-loop fallback (and its exact-atom sf/cdf semantics).
TEST(BatchEval, DiscreteLawViaGenericFallback) {
  const DiscreteDistribution d({1.0, 2.0, 4.0, 8.0}, {0.4, 0.3, 0.2, 0.1});
  expect_batch_matches_scalar(d, "Discrete");
}

// quantile_batch must validate exactly like the scalar loop: throw a
// ScenarioError(kDomainError) at the first offending element, with every
// earlier output already written.
TEST(BatchEval, QuantileBatchRejectsInvalidProbabilities) {
  for (const double bad : {kNaN, -0.25, 1.5, kInf, -kInf}) {
    for (const auto& inst : sre::dist::paper_distributions()) {
      const Distribution& d = *inst.dist;
      const std::vector<double> p = {0.25, 0.5, bad, 0.75};
      std::vector<double> out(p.size(), kNaN);
      try {
        d.quantile_batch(p, out);
        FAIL() << inst.label << ": quantile_batch accepted " << bad;
      } catch (const sre::ScenarioError& e) {
        EXPECT_EQ(e.code(), sre::ErrorCode::kDomainError) << inst.label;
      }
      // The prefix before the bad element matches the scalar calls; the bad
      // slot and everything after it were never written.
      EXPECT_EQ(bits(out[0]), bits(d.quantile(0.25))) << inst.label;
      EXPECT_EQ(bits(out[1]), bits(d.quantile(0.5))) << inst.label;
      EXPECT_EQ(bits(out[2]), bits(kNaN)) << inst.label;
      EXPECT_EQ(bits(out[3]), bits(kNaN)) << inst.label;
    }
  }
}
