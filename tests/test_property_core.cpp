// Cross-cutting property tests parameterized over every Table 1 law:
// fuzzed sequences agree across the three cost routes, per-job cost is
// monotone, the DP dominates every heuristic on its own discrete instance,
// and the brute-force winner satisfies the stationarity equation.

#include <gtest/gtest.h>

#include <random>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"
#include "sim/rng.hpp"

using namespace sre::core;
using sre::dist::PaperInstance;

class CoreProperty : public ::testing::TestWithParam<PaperInstance> {
 protected:
  const sre::dist::Distribution& d() const { return *GetParam().dist; }

  /// A random covering sequence anchored at quantiles.
  ReservationSequence random_sequence(std::mt19937_64& rng) const {
    std::uniform_real_distribution<double> u(0.02, 0.98);
    std::vector<double> qs;
    const int n = 2 + static_cast<int>(rng() % 6);
    for (int i = 0; i < n; ++i) qs.push_back(u(rng));
    std::sort(qs.begin(), qs.end());
    qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
    std::vector<double> v;
    for (const double q : qs) {
      const double t = d().quantile(q);
      if (v.empty() || t > v.back() * (1.0 + 1e-9)) v.push_back(t);
    }
    const auto sup = d().support();
    if (sup.bounded()) {
      if (v.empty() || v.back() < sup.upper) v.push_back(sup.upper);
    } else {
      double cur = v.empty() ? d().mean() : v.back();
      while (d().sf(cur) > 1e-13) {
        cur *= 2.0;
        v.push_back(cur);
      }
    }
    return ReservationSequence(std::move(v));
  }
};

TEST_P(CoreProperty, FuzzedSequencesAgreeAcrossCostRoutes) {
  std::mt19937_64 rng(2718);
  const CostModel models[] = {CostModel::reservation_only(),
                              CostModel{0.95, 1.0, 1.05},
                              CostModel{2.0, 0.25, 0.0}};
  for (int trial = 0; trial < 6; ++trial) {
    const auto seq = random_sequence(rng);
    for (const auto& m : models) {
      const double analytic = expected_cost_analytic(seq, d(), m);
      sre::sim::MonteCarloOptions mc;
      mc.samples = 20000;
      mc.seed = 1000 + static_cast<std::uint64_t>(trial);
      const auto est = expected_cost_monte_carlo(seq, d(), m, mc);
      EXPECT_NEAR(est.mean, analytic, 6.0 * est.std_error + 1e-9 * analytic)
          << GetParam().label << " trial " << trial << " " << m.describe();
      EXPECT_GE(analytic, omniscient_cost(d(), m) * (1.0 - 1e-9))
          << GetParam().label;
    }
  }
}

TEST_P(CoreProperty, PerJobCostIsMonotoneInJobSize) {
  std::mt19937_64 rng(31337);
  const auto seq = random_sequence(rng);
  const CostModel m{1.0, 0.7, 0.2};
  double prev_cost = 0.0;
  for (double p = 0.005; p < 0.999; p += 0.007) {
    const double t = d().quantile(p);
    const double c = seq.cost_for(t, m);
    EXPECT_GE(c, prev_cost - 1e-9) << GetParam().label << " p=" << p;
    prev_cost = c;
  }
}

TEST_P(CoreProperty, AttemptsConsistentWithReservationOnlyCost) {
  // Under alpha=1, beta=gamma=0 the cost equals the sum of the first
  // attempts_for(t) reservation lengths (with the implicit tail).
  std::mt19937_64 rng(99);
  const auto seq = random_sequence(rng);
  const CostModel m = CostModel::reservation_only();
  sre::sim::Rng drng = sre::sim::make_rng(17);
  for (int i = 0; i < 200; ++i) {
    const double t = d().sample(drng);
    const std::size_t k = seq.attempts_for(t);
    double total = 0.0;
    double cur = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      cur = (j < seq.size()) ? seq[j] : cur * 2.0;
      total += cur;
    }
    EXPECT_NEAR(seq.cost_for(t, m), total, 1e-9 * (1.0 + total))
        << GetParam().label;
  }
}

TEST_P(CoreProperty, DpDominatesHeuristicsOnItsDiscreteInstance) {
  // Theorem 5 optimality, checked against every simple heuristic evaluated
  // on the same discrete law.
  const auto disc = sre::sim::discretize(
      d(), sre::sim::DiscretizationOptions{
               200, 1e-7, sre::sim::DiscretizationScheme::kEqualProbability});
  for (const CostModel m : {CostModel::reservation_only(),
                            CostModel{0.95, 1.0, 1.05}}) {
    const DpResult dp = dp_optimal_sequence(disc, m);
    const MeanByMean mbm;
    const MeanDoubling md;
    const MedianByMedian mm;
    for (const Heuristic* h :
         std::initializer_list<const Heuristic*>{&mbm, &md, &mm}) {
      const auto seq = h->generate(disc, m);
      const double cost = expected_cost_analytic(seq, disc, m);
      EXPECT_LE(dp.expected_cost, cost * (1.0 + 1e-9))
          << GetParam().label << " vs " << h->name() << " " << m.describe();
    }
  }
}

TEST_P(CoreProperty, BruteForceWinnerSatisfiesStationarity) {
  const CostModel m = CostModel::reservation_only();
  BruteForceOptions opts;
  opts.grid_points = 800;
  opts.analytic_eval = true;
  const auto out = brute_force_search(d(), m, opts);
  ASSERT_TRUE(out.found) << GetParam().label;
  const auto& t = out.best_sequence.values();
  if (t.size() < 3) return;  // bounded-support single/double plans
  // Eq. (9) residual at interior indices of the pre-collapse prefix.
  const auto sup = d().support();
  for (std::size_t i = 1; i + 1 < std::min<std::size_t>(t.size(), 5); ++i) {
    const double f = d().pdf(t[i]);
    if (!(f > 0.0)) break;
    // The final element of a bounded-support plan is clamped to b, where
    // Eq. (9) does not apply (Proposition 1's stopping rule).
    if (sup.bounded() && t[i + 1] >= sup.upper) break;
    const double lhs = m.alpha * t[i + 1] + m.beta * t[i] + m.gamma;
    const double rhs =
        m.alpha * d().sf(t[i - 1]) / f + m.beta * d().sf(t[i]) / f;
    EXPECT_NEAR(lhs, rhs, 5e-5 * std::fabs(rhs))
        << GetParam().label << " i=" << i;
  }
}

TEST_P(CoreProperty, OmniscientIsALowerBoundForEveryHeuristic) {
  const CostModel m{0.95, 1.0, 1.05};
  for (const auto& h : standard_heuristics(/*fast=*/true)) {
    const auto seq = h->generate(d(), m);
    EXPECT_GE(expected_cost_analytic(seq, d(), m),
              omniscient_cost(d(), m) * (1.0 - 1e-9))
        << GetParam().label << " " << h->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CoreProperty,
    ::testing::ValuesIn(sre::dist::paper_distributions()),
    [](const ::testing::TestParamInfo<PaperInstance>& info) {
      return info.param.label;
    });
