#include "platform/cli.hpp"

#include <gtest/gtest.h>

using namespace sre::platform;

namespace {
ArgParser make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(ArgParser, FlagsValuesAndPositionals) {
  // NB: a flag consumes the following token as its value unless that token
  // starts with "--", so bare switches belong after positionals or before
  // another flag.
  const auto args = make({"input.csv", "--alpha", "0.95", "--name", "plan",
                          "--verbose"});
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("beta"));
  EXPECT_DOUBLE_EQ(args.value_or("alpha", 0.0), 0.95);
  EXPECT_DOUBLE_EQ(args.value_or("beta", 7.0), 7.0);
  EXPECT_EQ(args.value_or("name", std::string("x")), "plan");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.csv");
}

TEST(ArgParser, SwitchFollowedByFlagHasNoValue) {
  const auto args = make({"--verbose", "--alpha", "2.0"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.value("verbose").has_value());
  EXPECT_DOUBLE_EQ(args.value_or("alpha", 0.0), 2.0);
}

TEST(DistributionSpec, FullSpec) {
  const auto d =
      parse_distribution_spec("lognormal:mu=3,sigma=0.5");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "LogNormal");
  EXPECT_NEAR(d->median(), std::exp(3.0), 1e-9);
}

TEST(DistributionSpec, BareLabelUsesPaperInstantiation) {
  const auto d = parse_distribution_spec("weibull");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->name(), "Weibull");
  EXPECT_NEAR(d->mean(), 2.0, 1e-12);  // lambda=1, kappa=0.5 -> Gamma(3) = 2
}

TEST(DistributionSpec, CaseInsensitiveAndSpacedParams) {
  const auto d = parse_distribution_spec("Exponential:LAMBDA=2");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->mean(), 0.5);
}

TEST(DistributionSpec, ErrorsAreExplained) {
  std::string error;
  EXPECT_EQ(parse_distribution_spec("cauchy:x=1", &error), nullptr);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_EQ(parse_distribution_spec("weibull:lambda=1", &error), nullptr);
  EXPECT_NE(error.find("missing"), std::string::npos);
  error.clear();
  EXPECT_EQ(parse_distribution_spec("weibull:lambda", &error), nullptr);
  EXPECT_NE(error.find("key=value"), std::string::npos);
  error.clear();
  EXPECT_EQ(parse_distribution_spec("weibull:lambda=abc", &error), nullptr);
  EXPECT_NE(error.find("non-numeric"), std::string::npos);
}

TEST(HeuristicSpec, AllNamesParse) {
  for (const auto& name : heuristic_names()) {
    std::string error;
    const auto h = parse_heuristic_spec(name, &error);
    ASSERT_NE(h, nullptr) << name << ": " << error;
  }
}

TEST(HeuristicSpec, AliasesAndCase) {
  EXPECT_NE(parse_heuristic_spec("BF"), nullptr);
  EXPECT_NE(parse_heuristic_spec("Equal-Prob"), nullptr);
  EXPECT_EQ(parse_heuristic_spec("Brute-Force")->name(), "Brute-Force");
}

TEST(HeuristicSpec, UnknownNameFails) {
  std::string error;
  EXPECT_EQ(parse_heuristic_spec("oracle", &error), nullptr);
  EXPECT_NE(error.find("oracle"), std::string::npos);
}
