// obs::wide — the wide-event access-log layer behind srv::EventLoop
// telemetry (COOKBOOK recipe 21): the injectable clock seam, the
// byte-stable format_event schema (a contract — see CONTRIBUTING
// "Extending the wide-event schema"), the bounded non-blocking Sink with
// its drop accounting, the SnapshotRing behind the rate window, and the
// Prometheus text exposition. The Sink tests gate on obs::compiled_in()
// because open() returns nullptr under STOCHRES_OBS_DISABLE by design;
// clock, formatting, and SnapshotRing run in every configuration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/wide.hpp"

namespace wide = sre::obs::wide;

namespace {

std::atomic<std::uint64_t> g_ticks{0};

std::uint64_t fake_clock() {
  return g_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Installs the counter clock for a scope; always restores the steady
/// default so later tests (and other binaries' assumptions) see real time.
struct ScopedClock {
  ScopedClock() {
    g_ticks.store(0, std::memory_order_relaxed);
    wide::set_clock(&fake_clock);
  }
  ~ScopedClock() { wide::set_clock(nullptr); }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* tag) {
  return testing::TempDir() + "wide_" + tag + ".jsonl";
}

}  // namespace

// ------------------------------------------------------------------- clock

TEST(ObsWideClock, InjectedClockIsDeterministicAndRestorable) {
  {
    ScopedClock clock;
    EXPECT_EQ(wide::now_ns(), 1u);
    EXPECT_EQ(wide::now_ns(), 2u);
    EXPECT_EQ(wide::now_ns(), 3u);
  }
  // Back on the steady clock: monotone and nowhere near the tiny counter.
  const auto a = wide::now_ns();
  const auto b = wide::now_ns();
  EXPECT_LE(a, b);
  EXPECT_GT(a, 1000u);
}

// ------------------------------------------------------------ format_event

TEST(ObsWideFormat, SuccessEventPinsTheExactBytes) {
  wide::Event e;
  e.id = "q1";
  e.peer = "127.0.0.1:4242";
  e.conn = 7;
  e.ok = true;
  e.cached = false;
  e.batch = 3;
  e.bytes_in = 120;
  e.bytes_out = 480;
  e.accepted_ns = 100;
  e.framed_ns = 110;
  e.admitted_ns = 120;
  e.batched_ns = 150;
  e.solved_ns = 400;
  e.slotted_ns = 410;
  e.flushed_ns = 500;
  EXPECT_EQ(wide::format_event(e),
            "{\"ts\":500,\"id\":\"q1\",\"conn\":7,\"peer\":\"127.0.0.1:4242\","
            "\"ok\":true,\"cached\":false,\"batch\":3,\"bytes_in\":120,"
            "\"bytes_out\":480,\"queue_ns\":30,\"solve_ns\":250,"
            "\"write_ns\":90,\"total_ns\":400,\"accepted_ns\":100,"
            "\"framed_ns\":110,\"admitted_ns\":120,\"batched_ns\":150,"
            "\"solved_ns\":400,\"slotted_ns\":410,\"flushed_ns\":500}");
  // Identical input, identical bytes: the line is a schema, not a printf.
  EXPECT_EQ(wide::format_event(e), wide::format_event(e));
}

TEST(ObsWideFormat, ErrorEventCarriesTraceAndCode) {
  wide::Event e;
  e.id = "bad";
  e.peer = "127.0.0.1:1";
  e.trace = "trace-\"x\"";  // escaping goes through minijson::escape
  e.conn = 1;
  e.ok = false;
  e.code = "domain_error";
  e.accepted_ns = 10;
  e.framed_ns = 10;
  e.admitted_ns = 10;
  e.batched_ns = 10;
  e.solved_ns = 10;
  e.slotted_ns = 10;
  e.flushed_ns = 12;
  const std::string line = wide::format_event(e);
  EXPECT_NE(line.find("\"trace\":\"trace-\\\"x\\\"\",\"ok\":false,"
                      "\"code\":\"domain_error\""),
            std::string::npos)
      << line;
  // Inline error: queue/solve components collapse to zero, write+total tick.
  EXPECT_NE(line.find("\"queue_ns\":0,\"solve_ns\":0,\"write_ns\":2,"
                      "\"total_ns\":2"),
            std::string::npos)
      << line;
}

TEST(ObsWideFormat, ComponentsSaturateAtZeroOnBackwardStamps) {
  wide::Event e;
  e.accepted_ns = 900;  // "after" every later stage: total must clamp
  e.admitted_ns = 500;
  e.batched_ns = 400;  // before admitted: queue clamps
  e.solved_ns = 300;   // before batched: solve clamps
  e.slotted_ns = 800;
  e.flushed_ns = 700;  // before slotted: write clamps
  const std::string line = wide::format_event(e);
  EXPECT_NE(line.find("\"queue_ns\":0,\"solve_ns\":0,\"write_ns\":0,"
                      "\"total_ns\":0"),
            std::string::npos)
      << line;
}

// -------------------------------------------------------------------- Sink

TEST(ObsWideSink, EmptyPathMeansNoSink) {
  EXPECT_EQ(wide::Sink::open(wide::SinkConfig{}), nullptr);
}

TEST(ObsWideSink, DrainsEveryAcceptedLineToTheFileInOrder) {
  if (!sre::obs::compiled_in()) {
    GTEST_SKIP() << "the access log does not exist under obs-off";
  }
  const std::string path = temp_path("drain");
  {
    auto sink = wide::Sink::open({path, 1024});
    ASSERT_NE(sink, nullptr);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(sink->try_write("{\"i\":" + std::to_string(i) + "}"));
    }
    EXPECT_EQ(sink->accepted(), 100u);
    EXPECT_EQ(sink->dropped(), 0u);
  }  // destructor drains and joins the flusher
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lines[static_cast<std::size_t>(i)],
              "{\"i\":" + std::to_string(i) + "}");
  }
  std::remove(path.c_str());
}

TEST(ObsWideSink, StalledFlusherDropsAtCapacityAndCountsEveryLoss) {
  if (!sre::obs::compiled_in()) {
    GTEST_SKIP() << "the access log does not exist under obs-off";
  }
  const std::string path = temp_path("stall");
  const auto dropped_before =
      sre::obs::counter("obs.wide.dropped").value();
  {
    auto sink = wide::Sink::open({path, 4});
    ASSERT_NE(sink, nullptr);
    sink->set_paused(true);  // the "disk" stalls
    int accepted = 0, rejected = 0;
    for (int i = 0; i < 10; ++i) {
      (sink->try_write("line") ? accepted : rejected)++;
    }
    // try_write never blocked: 4 queued, 6 shed, all accounted.
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(rejected, 6);
    EXPECT_EQ(sink->accepted(), 4u);
    EXPECT_EQ(sink->dropped(), 6u);
    EXPECT_EQ(sre::obs::counter("obs.wide.dropped").value(),
              dropped_before + 6);
  }  // destruction drains despite the pause — queued lines are never lost
  EXPECT_EQ(read_lines(path).size(), 4u);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ SnapshotRing

TEST(ObsWideRing, KeepsTheNewestCapacityAndThrowsWhenEmpty) {
  wide::SnapshotRing ring(3);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_THROW((void)ring.oldest(), std::out_of_range);
  EXPECT_THROW((void)ring.newest(), std::out_of_range);

  for (std::uint64_t t = 1; t <= 5; ++t) {
    ring.push({t, t * 10, t * 10, t * 100, t * 100});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.oldest().t_ns, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(ring.newest().t_ns, 5u);
  EXPECT_EQ(ring.newest().requests, 50u);
}

TEST(ObsWideRing, SingleSnapshotIsBothEnds) {
  wide::SnapshotRing ring;
  ring.push({42, 1, 1, 1, 1});
  EXPECT_EQ(ring.oldest().t_ns, 42u);
  EXPECT_EQ(ring.newest().t_ns, 42u);
}

// --------------------------------------------------------- prometheus_text

TEST(ObsWideProm, RendersRegisteredInstrumentsUnderSrePrefix) {
  const std::string text = wide::prometheus_text();
  EXPECT_EQ(text.rfind("# sre metrics registry", 0), 0u) << text;
  if (!sre::obs::compiled_in()) {
    return;  // obs-off: header only is the whole contract
  }
  sre::obs::counter("widetest.prom.hits").add(3);
  const std::string after = wide::prometheus_text();
  EXPECT_NE(after.find("# TYPE sre_widetest_prom_hits counter\n"
                       "sre_widetest_prom_hits 3\n"),
            std::string::npos)
      << after;
  // Deterministic for a fixed registry: two renders, identical bytes.
  EXPECT_EQ(after, wide::prometheus_text());
}
