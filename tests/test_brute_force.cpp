#include "core/heuristics/brute_force.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/expected_cost.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "dist/uniform.hpp"

using namespace sre::core;

TEST(BruteForce, RecoversExponentialOptimalT1) {
  // Section 3.5: the optimal first request for Exp(1) is s1 ~ 0.74219.
  const sre::dist::Exponential e(1.0);
  BruteForceOptions opts;
  opts.grid_points = 2000;
  opts.analytic_eval = true;  // deterministic
  const auto out = brute_force_search(e, CostModel::reservation_only(), opts);
  ASSERT_TRUE(out.found);
  EXPECT_NEAR(out.best_t1, 0.74219, 0.01);
}

TEST(BruteForce, UniformPrefersSingleReservationAtB) {
  // Theorem 4: the optimum for Uniform(a,b) is the single reservation (b);
  // the grid includes t1 = b, so brute force must land there.
  const sre::dist::Uniform u(10.0, 20.0);
  BruteForceOptions opts;
  opts.grid_points = 1000;
  opts.analytic_eval = true;
  const auto out = brute_force_search(u, CostModel::reservation_only(), opts);
  ASSERT_TRUE(out.found);
  EXPECT_NEAR(out.best_t1, 20.0, 1e-9);
  EXPECT_EQ(out.best_sequence.size(), 1u);
  // Normalized cost b / E[X] = 20/15 = 4/3.
  EXPECT_NEAR(out.best_cost / 15.0, 4.0 / 3.0, 1e-9);
}

TEST(BruteForce, BeatsSimpleHeuristicsEverywhere) {
  const CostModel m = CostModel::reservation_only();
  const MeanByMean mbm;
  const MeanStdev ms;
  const MeanDoubling md;
  const MedianByMedian mm;
  for (const auto& inst : sre::dist::paper_distributions()) {
    BruteForceOptions opts;
    opts.grid_points = 600;
    opts.analytic_eval = true;
    const auto out = brute_force_search(*inst.dist, m, opts);
    ASSERT_TRUE(out.found) << inst.label;
    for (const Heuristic* h :
         std::initializer_list<const Heuristic*>{&mbm, &ms, &md, &mm}) {
      const double other =
          expected_cost_analytic(h->generate(*inst.dist, m), *inst.dist, m);
      EXPECT_LE(out.best_cost, other * (1.0 + 5e-3))
          << inst.label << " vs " << h->name();
    }
  }
}

TEST(BruteForce, SweepContainsInvalidCandidates) {
  // Fig. 3 shows gaps: some t1 induce non-increasing sequences. Lognormal's
  // sweep has a prominent gap between the ~Q(0.25) and ~Q(0.75) quantiles.
  const auto inst = sre::dist::paper_distribution("Lognormal");
  ASSERT_TRUE(inst.has_value());
  BruteForceOptions opts;
  opts.grid_points = 400;
  opts.analytic_eval = true;
  const auto out = brute_force_search(*inst->dist,
                                      CostModel::reservation_only(), opts,
                                      /*keep_sweep=*/true);
  ASSERT_EQ(out.sweep.size(), 400u);
  int invalid = 0, valid = 0;
  for (const auto& p : out.sweep) (p.valid ? valid : invalid)++;
  EXPECT_GT(invalid, 0);
  EXPECT_GT(valid, 0);
  // All valid normalized costs are >= 1.
  for (const auto& p : out.sweep) {
    if (p.valid) {
      EXPECT_GE(p.normalized_cost, 1.0 - 1e-9);
    }
  }
}

TEST(BruteForce, MonteCarloAndAnalyticAgree) {
  const sre::dist::Exponential e(1.0);
  const CostModel m = CostModel::reservation_only();
  BruteForceOptions a;
  a.grid_points = 400;
  a.analytic_eval = true;
  BruteForceOptions b = a;
  b.analytic_eval = false;
  b.mc_samples = 20000;
  const auto ra = brute_force_search(e, m, a);
  const auto rb = brute_force_search(e, m, b);
  ASSERT_TRUE(ra.found && rb.found);
  EXPECT_NEAR(ra.best_cost, rb.best_cost, 0.05 * ra.best_cost);
  EXPECT_NEAR(ra.best_t1, rb.best_t1, 0.2);
}

TEST(BruteForce, DeterministicAcrossRuns) {
  const sre::dist::Exponential e(1.0);
  BruteForceOptions opts;
  opts.grid_points = 300;
  opts.mc_samples = 500;
  const auto r1 = brute_force_search(e, CostModel::reservation_only(), opts);
  const auto r2 = brute_force_search(e, CostModel::reservation_only(), opts);
  ASSERT_TRUE(r1.found && r2.found);
  EXPECT_DOUBLE_EQ(r1.best_cost, r2.best_cost);
  EXPECT_DOUBLE_EQ(r1.best_t1, r2.best_t1);
}

TEST(BruteForce, SerialAndParallelIdentical) {
  const sre::dist::Exponential e(1.0);
  BruteForceOptions opts;
  opts.grid_points = 300;
  opts.mc_samples = 500;
  opts.parallel = false;
  const auto serial = brute_force_search(e, CostModel::reservation_only(), opts);
  opts.parallel = true;
  const auto parallel =
      brute_force_search(e, CostModel::reservation_only(), opts);
  ASSERT_TRUE(serial.found && parallel.found);
  EXPECT_DOUBLE_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_DOUBLE_EQ(serial.best_t1, parallel.best_t1);
}

TEST(BruteForce, HeuristicAdapterGeneratesCoveringSequence) {
  BruteForceOptions opts;
  opts.grid_points = 200;
  opts.analytic_eval = true;
  const BruteForce h(opts);
  EXPECT_EQ(h.name(), "Brute-Force");
  for (const auto& inst : sre::dist::paper_distributions()) {
    const auto seq = h.generate(*inst.dist, CostModel::reservation_only());
    EXPECT_TRUE(seq.covers_distribution(*inst.dist, 1e-10)) << inst.label;
  }
}
