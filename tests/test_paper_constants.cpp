// Regression tests pinning the paper's numerical claims:
//  * Proposition 2 -- the Exp(1) RESERVATIONONLY optimum has s1 ~ 0.74219
//    (the paper's reported value; our high-precision solve gives 0.74654,
//    within the paper's Monte-Carlo noise), and the lambda-scaled optimum is
//    the exact equivariance t_i = s_i / lambda;
//  * Theorem 4 -- for Uniform(a,b) the single reservation (b) is optimal:
//    no two-step sequence beats it, even after coordinate-descent polishing.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/expected_cost.hpp"
#include "core/heuristics/closed_form_optimal.hpp"
#include "core/heuristics/polish.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"

using namespace sre;
using core::CostModel;
using core::ReservationSequence;

TEST(Proposition2, S1NearPaperValue) {
  // The paper reports s1 ~ 0.74219 from a noisy Monte-Carlo argmin; the
  // deterministic solve lands within that noise band. Pin the published
  // constant so a solver regression that drifts away from "about three
  // quarters of the mean" is caught.
  const auto res = core::exponential_reservation_only_optimal();
  EXPECT_NEAR(res.s1, 0.74219, 5e-3);
  EXPECT_GT(res.s1, 0.70);
  EXPECT_LT(res.s1, 0.78);
}

TEST(Proposition2, ScaleEquivarianceExactlyDividesByLambda) {
  // t_i = s_i / lambda: the Exp(lambda) optimum is the Exp(1) optimum with
  // every element divided by lambda -- exactly, not approximately, because
  // the implementation scales the solved unit sequence. (The scaled
  // sequence may append a geometric deep-tail extension past the unit
  // prefix; the theorem's content is the prefix.)
  const auto unit = core::exponential_reservation_only_optimal();
  for (const double lambda : {0.25, 0.5, 2.0, 10.0}) {
    const ReservationSequence scaled =
        core::exponential_optimal_sequence(lambda);
    ASSERT_GE(scaled.size(), unit.unit_sequence.size()) << lambda;
    for (std::size_t i = 0; i < unit.unit_sequence.size(); ++i) {
      EXPECT_DOUBLE_EQ(scaled[i], unit.unit_sequence[i] / lambda)
          << "lambda=" << lambda << " i=" << i;
    }
    // Anything past the prefix is the doubling extension.
    for (std::size_t i = unit.unit_sequence.size(); i < scaled.size(); ++i) {
      EXPECT_DOUBLE_EQ(scaled[i], scaled[i - 1] * 2.0)
          << "lambda=" << lambda << " i=" << i;
    }
  }
}

TEST(Proposition2, ScaledSequenceCostFollowsOneOverLambda) {
  // E(S_lambda) = E_1 / lambda under RESERVATIONONLY, via the analytic
  // Eq. (4) evaluator on the actual scaled sequences.
  const CostModel m = CostModel::reservation_only();
  const dist::Exponential unit_law(1.0);
  const double e1 = core::expected_cost_analytic(
      core::exponential_optimal_sequence(1.0), unit_law, m);
  for (const double lambda : {0.5, 3.0}) {
    const dist::Exponential law(lambda);
    const double e = core::expected_cost_analytic(
        core::exponential_optimal_sequence(lambda), law, m);
    EXPECT_NEAR(e, e1 / lambda, 1e-9 * std::max(1.0, e1 / lambda))
        << "lambda=" << lambda;
  }
}

TEST(Theorem4, SingleReservationAtUpperBoundCostIsClosedForm) {
  // With t1 = b every job finishes in the first reservation:
  // E = beta E[X] + alpha b + gamma.
  const dist::Uniform u(10.0, 20.0);
  for (const CostModel m :
       {CostModel::reservation_only(), CostModel{1.0, 1.0, 0.1},
        CostModel{2.0, 1.0, 0.5}}) {
    const ReservationSequence single = core::single_reservation_at_upper(u);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_DOUBLE_EQ(single.first(), 20.0);
    const double e = core::expected_cost_analytic(single, u, m);
    EXPECT_NEAR(e, m.beta * u.mean() + m.alpha * 20.0 + m.gamma, 1e-12);
  }
}

TEST(Theorem4, NoPolishedTwoStepBeatsSingleReservation) {
  // Theorem 4: (b) is optimal for Uniform(a,b) under any cost parameters.
  // Adversarial check: seed the polish heuristic with two-step sequences
  // {x, b} across the whole support and let it do its best -- no polished
  // plan may cost less than the single reservation.
  const dist::Uniform u(10.0, 20.0);
  for (const CostModel m :
       {CostModel::reservation_only(), CostModel{1.0, 1.0, 0.1},
        CostModel{2.0, 1.0, 0.5}}) {
    const double single_cost = core::expected_cost_analytic(
        core::single_reservation_at_upper(u), u, m);
    for (double x = 10.5; x < 20.0; x += 0.5) {
      const ReservationSequence two_step({x, 20.0});
      const double raw = core::expected_cost_analytic(two_step, u, m);
      EXPECT_GE(raw, single_cost - 1e-9)
          << "unpolished {" << x << ", 20} beat the optimum";
      const core::PolishResult polished = core::polish_sequence(two_step, u, m);
      EXPECT_GE(polished.cost_after, single_cost - 1e-9)
          << "polished {" << x << ", 20} beat the optimum (ended with "
          << polished.sequence.size() << " elements)";
      EXPECT_LE(polished.cost_after, raw + 1e-12)
          << "polish made {" << x << ", 20} worse";
    }
  }
}
