#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

namespace st = sre::stats;

TEST(KahanSum, RecoversCancellationError) {
  // 1 + 1e100 - 1e100 ... naive summation loses the small terms.
  st::KahanSum k;
  k.add(1.0);
  k.add(1e100);
  k.add(1.0);
  k.add(-1e100);
  EXPECT_DOUBLE_EQ(k.value(), 2.0);
}

TEST(KahanSum, ManySmallTerms) {
  st::KahanSum k;
  const double term = 0.1;
  const int n = 1000000;
  for (int i = 0; i < n; ++i) k.add(term);
  EXPECT_NEAR(k.value(), 100000.0, 1e-9);
}

TEST(OnlineMoments, MatchesDirectComputation) {
  std::vector<double> xs = {1.5, 2.0, -3.0, 7.25, 0.0, 4.5};
  st::OnlineMoments m;
  for (double x : xs) m.add(x);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(m.mean(), mean, 1e-13);
  EXPECT_NEAR(m.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), -3.0);
  EXPECT_DOUBLE_EQ(m.max(), 7.25);
  EXPECT_EQ(m.count(), xs.size());
}

TEST(OnlineMoments, MergeEqualsSequential) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> nd(3.0, 2.0);
  st::OnlineMoments all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = nd(rng);
    all.add(x);
    (i < 200 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineMoments, MergeWithEmpty) {
  st::OnlineMoments a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(OnlineMoments, StandardErrorScaling) {
  st::OnlineMoments m;
  std::mt19937_64 rng(11);
  std::normal_distribution<double> nd(0.0, 1.0);
  for (int i = 0; i < 10000; ++i) m.add(nd(rng));
  // SE ~ sigma / sqrt(n) = 0.01.
  EXPECT_NEAR(m.standard_error(), 0.01, 0.002);
}

TEST(EmpiricalQuantile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(st::empirical_quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(st::empirical_quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(st::empirical_quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(st::empirical_quantile(xs, 0.625), 3.5);
}

TEST(EmpiricalQuantile, SingleElement) {
  std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(st::empirical_quantile(xs, 0.3), 42.0);
}

TEST(EmpiricalQuantiles, SortsInternally) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  const std::vector<double> ps = {0.0, 0.5, 1.0};
  const auto qs = st::empirical_quantiles(xs, ps);
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_DOUBLE_EQ(qs[0], 1.0);
  EXPECT_DOUBLE_EQ(qs[1], 3.0);
  EXPECT_DOUBLE_EQ(qs[2], 5.0);
}
