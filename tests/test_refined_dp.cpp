#include "core/heuristics/refined_dp.hpp"

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/closed_form_optimal.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"

using namespace sre::core;

TEST(RefinedDp, NeverWorseThanItsSeedDp) {
  const CostModel m = CostModel::reservation_only();
  RefinedDpOptions opts;
  const RefinedDp refined(opts);
  const DiscretizedDp seed(opts.disc);
  for (const auto& inst : sre::dist::paper_distributions()) {
    const double r =
        expected_cost_analytic(refined.generate(*inst.dist, m), *inst.dist, m);
    const double s =
        expected_cost_analytic(seed.generate(*inst.dist, m), *inst.dist, m);
    EXPECT_LE(r, s * (1.0 + 1e-12)) << inst.label;
  }
}

TEST(RefinedDp, TracksBruteForceAtSmallBudget) {
  // The refinement reaches brute-force quality with a 64-point scan where
  // brute force burns thousands of grid points.
  const CostModel m = CostModel::reservation_only();
  const RefinedDp refined;
  BruteForceOptions bf;
  bf.grid_points = 2000;
  bf.analytic_eval = true;
  for (const char* label : {"Exponential", "Lognormal", "Gamma"}) {
    const auto inst = sre::dist::paper_distribution(label);
    const double r = expected_cost_analytic(
        refined.generate(*inst->dist, m), *inst->dist, m);
    const auto out = brute_force_search(*inst->dist, m, bf);
    ASSERT_TRUE(out.found);
    EXPECT_LE(r, out.best_cost * 1.02) << label;
  }
}

TEST(RefinedDp, ApproachesExactExponentialOptimum) {
  const sre::dist::Exponential e(1.0);
  const RefinedDp refined;
  const double cost = expected_cost_analytic(
      refined.generate(e, CostModel::reservation_only()), e,
      CostModel::reservation_only());
  // True optimum 2.3644977694 (EXPERIMENTS.md).
  EXPECT_NEAR(cost, 2.3644977694, 5e-3);
}

TEST(RefinedDp, GeneratesValidCoveringSequences) {
  const RefinedDp refined;
  for (const CostModel m : {CostModel::reservation_only(),
                            CostModel{0.95, 1.0, 1.05}}) {
    for (const auto& inst : sre::dist::paper_distributions()) {
      const auto seq = refined.generate(*inst.dist, m);
      ASSERT_FALSE(seq.empty()) << inst.label;
      EXPECT_TRUE(seq.covers_distribution(*inst.dist, 1e-10))
          << inst.label << " " << m.describe();
    }
  }
}
