#include "platform/trace.hpp"

#include <gtest/gtest.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/lognormal.hpp"

using namespace sre::platform;

TEST(Trace, SynthesizeProducesConfiguredRunCount) {
  TraceConfig cfg;
  cfg.runs = 5000;
  const auto trace = synthesize_trace(cfg);
  EXPECT_EQ(trace.size(), 5000u);
  for (const double t : trace) EXPECT_GT(t, 0.0);
}

TEST(Trace, FitRecoversPublishedParameters) {
  TraceConfig cfg;  // VBMQA defaults
  const auto trace = synthesize_trace(cfg);
  const TraceFit fit = fit_trace(trace);
  EXPECT_NEAR(fit.fitted.mu, kVbmqaMu, 0.02);
  EXPECT_NEAR(fit.fitted.sigma, kVbmqaSigma, 0.01);
  EXPECT_NEAR(fit.sample_mean, 1253.37, 30.0);
  EXPECT_EQ(fit.runs, 5000u);
  // A correct LogNormal fit of LogNormal data: tiny KS distance.
  EXPECT_LT(fit.ks_statistic, 0.03);
}

TEST(Trace, KsStatisticDetectsWrongModel) {
  TraceConfig cfg;
  const auto trace = synthesize_trace(cfg);
  const sre::dist::LogNormal wrong(5.0, 1.0);
  EXPECT_GT(ks_statistic(trace, wrong), 0.5);
}

TEST(Trace, DistributionFromTraceIsUsableDownstream) {
  TraceConfig cfg;
  cfg.runs = 2000;
  const auto trace = synthesize_trace(cfg);
  const auto d = distribution_from_trace(trace);
  ASSERT_NE(d, nullptr);
  const auto seq =
      sre::core::MeanDoubling().generate(*d, sre::core::CostModel::reservation_only());
  EXPECT_TRUE(seq.covers_distribution(*d, 1e-10));
  const double cost = sre::core::expected_cost_analytic(
      seq, *d, sre::core::CostModel::reservation_only());
  EXPECT_GT(cost, d->mean());
}

TEST(Trace, EmpiricalDistributionMatchesTraceMoments) {
  TraceConfig cfg;
  cfg.runs = 3000;
  const auto trace = synthesize_trace(cfg);
  const auto emp = empirical_distribution(trace);
  double mean = 0.0;
  for (const double t : trace) mean += t;
  mean /= static_cast<double>(trace.size());
  EXPECT_NEAR(emp->mean(), mean, 1e-6 * mean);
}

TEST(Trace, DeterministicForSeed) {
  TraceConfig a, b;
  a.seed = b.seed = 99;
  EXPECT_EQ(synthesize_trace(a), synthesize_trace(b));
  b.seed = 100;
  EXPECT_NE(synthesize_trace(a), synthesize_trace(b));
}
