// cluster::Router's consistent-hash ring — the pure half, no sockets.
// Pinned ring points (the committed bench baselines depend on them),
// deterministic ownership, balance over a realistic key population,
// minimal remapping under fleet resizes, and the failover hop order.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "srv/hash.hpp"
#include "srv/request.hpp"

namespace {

using sre::cluster::ReplicaEndpoint;
using sre::cluster::Router;
using sre::cluster::RouterConfig;

Router make_router(std::size_t replicas, std::size_t vnodes) {
  RouterConfig cfg;
  for (std::size_t r = 0; r < replicas; ++r) {
    cfg.replicas.push_back(
        {"127.0.0.1", 0, "replica-" + std::to_string(r)});
  }
  cfg.vnodes = vnodes;
  return Router(std::move(cfg));
}

/// The canonical plan keys the bench routes on: K distinct exponential
/// laws through srv::prepare, so the test and the serving tier hash the
/// same bytes.
std::vector<std::string> bench_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    sre::srv::PlanRequest req;
    req.dist_spec =
        "exponential:lambda=" + std::to_string(1.0 + 0.01 * double(k));
    req.solver = "refined-dp";
    req.n = 400;
    keys.push_back(sre::srv::prepare(req).key);
  }
  return keys;
}

TEST(Ring, PinnedRingPoints) {
  // The versioned label digests. A change here reshuffles every deployed
  // ring and invalidates the committed cluster bench baselines — it must
  // be a deliberate version bump (v2), never an accident.
  EXPECT_EQ(Router::ring_point("127.0.0.1:9000", 0),
            sre::srv::fnv1a64("v1|ring|127.0.0.1:9000|0"));
  EXPECT_EQ(Router::ring_point("127.0.0.1:9000", 0), 14920761542655123534ull);
  EXPECT_EQ(Router::ring_point("replica-0", 0), 12956543930304644023ull);
  EXPECT_EQ(Router::ring_point("replica-1", 0), 12424209878094607468ull);
}

TEST(Ring, RingIdDefaultsToHostPortAndNameOverrides) {
  ReplicaEndpoint anon{"10.0.0.7", 9000, ""};
  EXPECT_EQ(anon.ring_id(), "10.0.0.7:9000");
  ReplicaEndpoint named{"10.0.0.7", 9000, "shard-a"};
  EXPECT_EQ(named.ring_id(), "shard-a");
}

TEST(Ring, OwnershipIsDeterministicAndPortIndependent) {
  // Same roster, different ports: named replicas place identically — the
  // property that keeps the bench's key->owner split stable even though
  // every run binds fresh ephemeral ports.
  RouterConfig a;
  a.replicas = {{"127.0.0.1", 1111, "replica-0"},
                {"127.0.0.1", 2222, "replica-1"}};
  a.vnodes = 64;
  RouterConfig b;
  b.replicas = {{"127.0.0.1", 7777, "replica-0"},
                {"127.0.0.1", 8888, "replica-1"}};
  b.vnodes = 64;
  const Router ra{std::move(a)};
  const Router rb{std::move(b)};
  for (const auto& key : bench_keys(64)) {
    EXPECT_EQ(ra.replica_for(key), rb.replica_for(key)) << key;
  }
}

TEST(Ring, BalanceOverTheBenchPopulation) {
  // The acceptance gate: max/min owned keys <= 1.5 over >= 64 distinct
  // keys. 256 vnodes is the bench default.
  const auto keys = bench_keys(96);
  const Router router = make_router(2, 256);
  std::vector<std::size_t> owned(2, 0);
  for (const auto& key : keys) ++owned[router.replica_for(key)];
  const auto mx = std::max(owned[0], owned[1]);
  const auto mn = std::min(owned[0], owned[1]);
  ASSERT_GT(mn, 0u);
  EXPECT_LE(double(mx) / double(mn), 1.5)
      << "owned: " << owned[0] << "/" << owned[1];
}

TEST(Ring, ResizeRemapsOnlyTheMovedArcs) {
  // Karger's guarantee: growing 3 -> 4 replicas only remaps keys whose
  // arcs the new replica's points captured (~1/4 of the space); every
  // other key keeps its owner, so surviving replica caches stay warm.
  const auto keys = bench_keys(96);
  const Router three = make_router(3, 128);
  const Router four = make_router(4, 128);
  std::size_t moved = 0;
  for (const auto& key : keys) {
    const std::size_t before = three.replica_for(key);
    const std::size_t after = four.replica_for(key);
    if (after != before) {
      // A key may only move *to* the new replica, never between survivors.
      EXPECT_EQ(after, 3u) << key;
      ++moved;
    }
  }
  // ~96/4 = 24 expected; generous envelope, but far below "reshuffled".
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 48u);
}

TEST(Ring, HopOrderIsDistinctCompleteAndOwnerFirst) {
  const Router router = make_router(4, 64);
  for (const auto& key : bench_keys(32)) {
    const auto order = router.hop_order(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], router.replica_for(key));
    std::vector<bool> seen(4, false);
    for (const auto r : order) {
      ASSERT_LT(r, 4u);
      EXPECT_FALSE(seen[r]) << "replica repeated in hop order";
      seen[r] = true;
    }
  }
}

TEST(Ring, SingleReplicaOwnsEverything) {
  const Router router = make_router(1, 8);
  for (const auto& key : bench_keys(16)) {
    EXPECT_EQ(router.replica_for(key), 0u);
    EXPECT_EQ(router.hop_order(key).size(), 1u);
  }
}

TEST(Ring, VnodeCountScalesTheRingNotTheSemantics) {
  // More vnodes refine balance but ownership stays a pure function of the
  // (roster, vnodes) pair: two identically-configured routers agree on
  // every key (replica_for is usable without any replica listening).
  const Router a = make_router(2, 256);
  const Router b = make_router(2, 256);
  for (const auto& key : bench_keys(48)) {
    EXPECT_EQ(a.replica_for(key), b.replica_for(key));
  }
}

}  // namespace
