#include "stats/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace st = sre::stats;

TEST(AffineFit, ExactOnNoiselessData) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(0.5 * i);
    y.push_back(0.95 * x.back() + 1.05);
  }
  const st::AffineFit fit = st::fit_affine(x, y);
  EXPECT_NEAR(fit.slope, 0.95, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.05, 1e-11);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(AffineFit, RecoversUnderNoise) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> noise(0.0, 0.1);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(0.01 * i);
    y.push_back(2.0 * x.back() - 3.0 + noise(rng));
  }
  const st::AffineFit fit = st::fit_affine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_NEAR(fit.intercept, -3.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(AffineFit, WeightedIgnoresZeroWeightOutliers) {
  std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 100.0};
  std::vector<double> y = {1.0, 3.0, 5.0, 7.0, -1000.0};
  std::vector<double> w = {1.0, 1.0, 1.0, 1.0, 0.0};
  const st::AffineFit fit = st::fit_affine_weighted(x, y, w);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(AffineFit, DegenerateAbscissae) {
  std::vector<double> x = {2.0, 2.0, 2.0};
  std::vector<double> y = {1.0, 2.0, 3.0};
  const st::AffineFit fit = st::fit_affine(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
}

TEST(LogNormalMle, RecoversPlantedParameters) {
  std::mt19937_64 rng(17);
  std::lognormal_distribution<double> ln(7.1128, 0.2039);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(ln(rng));
  const st::LogNormalParams fit = st::fit_lognormal_mle(samples);
  EXPECT_NEAR(fit.mu, 7.1128, 0.01);
  EXPECT_NEAR(fit.sigma, 0.2039, 0.01);
}

TEST(LogNormalMoments, RoundTrip) {
  // The paper's footnote 4 prints mu = ln(mean - sd^2/2), a typo; the
  // correct identity implemented here must reproduce the requested moments
  // exactly.
  for (double mean : {0.348, 1.0, 3.48}) {
    for (double sd : {0.072, 0.3, 0.72}) {
      const st::LogNormalParams p = st::lognormal_from_moments(mean, sd);
      EXPECT_NEAR(st::lognormal_mean(p), mean, 1e-12 * mean);
      EXPECT_NEAR(st::lognormal_stddev(p), sd, 1e-10 * sd);
    }
  }
}

TEST(LogNormalMoments, PaperBaseCase) {
  // VBMQA: mu = 7.1128, sigma = 0.2039 => mean ~ 1253.37 s, sd ~ 258.26 s
  // (the paper quotes 1253.37 and 258.261).
  const st::LogNormalParams p{7.1128, 0.2039};
  EXPECT_NEAR(st::lognormal_mean(p), 1253.37, 0.5);
  EXPECT_NEAR(st::lognormal_stddev(p), 258.261, 0.5);
}
