// Deterministic seeded fuzz of srv::LineFramer, the transport half of the
// event loop's per-connection state machine. The framer's contract:
//
//   * chunk boundaries are invisible — any partition of a byte stream
//     emits exactly the lines of a one-shot feed, in order;
//   * one trailing '\r' is stripped (CRLF == LF), embedded bytes — NULs
//     included — pass through untouched;
//   * the buffer never grows past max_line_bytes, no matter the input: an
//     overlong line is swallowed to its newline and surfaced as one
//     truncated event, and the *next* line frames normally;
//   * malformed-but-framed lines are the protocol layer's problem, and
//     classify_line turns every one of them into a typed kDomainError
//     response (never a throw, never a dropped response slot).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "srv/framing.hpp"
#include "srv/protocol.hpp"

namespace {

using sre::srv::ClassifiedLine;
using sre::srv::LineFramer;

struct Event {
  std::string line;
  bool truncated = false;

  bool operator==(const Event& other) const {
    return line == other.line && truncated == other.truncated;
  }
};

/// Feeds `stream` in one call and collects the emitted events.
std::vector<Event> one_shot(std::string_view stream, std::size_t cap) {
  LineFramer framer(cap);
  std::vector<Event> events;
  framer.feed(stream, [&](std::string_view line, bool truncated) {
    events.push_back({std::string(line), truncated});
  });
  return events;
}

/// Feeds `stream` in random chunks (possibly empty) drawn from `rng`,
/// asserting the buffered-bytes cap after every chunk.
std::vector<Event> chunked(std::string_view stream, std::size_t cap,
                           std::mt19937_64& rng) {
  LineFramer framer(cap);
  std::vector<Event> events;
  const auto sink = [&](std::string_view line, bool truncated) {
    events.push_back({std::string(line), truncated});
  };
  std::size_t pos = 0;
  std::uniform_int_distribution<std::size_t> len(0, 17);
  while (pos < stream.size()) {
    const std::size_t take = std::min(len(rng), stream.size() - pos);
    framer.feed(stream.substr(pos, take), sink);
    pos += take;
    EXPECT_LE(framer.buffered(), framer.max_line_bytes());
  }
  return events;
}

TEST(SrvFraming, SplitsLinesAndStripsOneTrailingCr) {
  const auto events = one_shot("a\nbb\r\nccc\n\r\n", 64);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].line, "a");
  EXPECT_EQ(events[1].line, "bb");
  EXPECT_EQ(events[2].line, "ccc");
  EXPECT_EQ(events[3].line, "");  // a bare CRLF frames an empty line
  for (const auto& e : events) EXPECT_FALSE(e.truncated);
}

TEST(SrvFraming, OnlyTheTrailingCrIsStripped) {
  const auto events = one_shot("a\rb\r\r\n", 64);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, "a\rb\r");  // interior and doubled \r survive
}

TEST(SrvFraming, PartialLineStaysBufferedAcrossFeeds) {
  LineFramer framer(64);
  std::vector<Event> events;
  const auto sink = [&](std::string_view line, bool truncated) {
    events.push_back({std::string(line), truncated});
  };
  framer.feed("{\"id\":", sink);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(framer.buffered(), 6u);
  framer.feed("\"x\"}\n", sink);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, "{\"id\":\"x\"}");
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(SrvFraming, ChunkBoundaryInsideCrlfFramesIdentically) {
  for (std::size_t split = 0; split <= 6; ++split) {
    LineFramer framer(64);
    std::vector<Event> events;
    const auto sink = [&](std::string_view line, bool truncated) {
      events.push_back({std::string(line), truncated});
    };
    const std::string stream = "ab\r\ncd\n";
    framer.feed(stream.substr(0, split), sink);
    framer.feed(stream.substr(split), sink);
    ASSERT_EQ(events.size(), 2u) << "split=" << split;
    EXPECT_EQ(events[0].line, "ab") << "split=" << split;
    EXPECT_EQ(events[1].line, "cd") << "split=" << split;
  }
}

TEST(SrvFraming, EmbeddedNulBytesPassThrough) {
  const std::string line_with_nul{"a\0b", 3};
  const std::string stream = line_with_nul + "\n";
  const auto events = one_shot(stream, 64);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, line_with_nul);
  EXPECT_FALSE(events[0].truncated);
}

TEST(SrvFraming, OverlongLineIsTruncatedAndNextLineSurvives) {
  const std::string big(100, 'x');
  const std::string stream = big + "\n{\"ok\":1}\n";
  const auto events = one_shot(stream, 16);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].truncated);
  EXPECT_EQ(events[0].line, big.substr(0, 16));  // first cap bytes kept
  EXPECT_FALSE(events[1].truncated);
  EXPECT_EQ(events[1].line, "{\"ok\":1}");
}

TEST(SrvFraming, OverflowModeIsVisibleAndClearsAtNewline) {
  LineFramer framer(8);
  const auto sink = [](std::string_view, bool) {};
  framer.feed(std::string(30, 'y'), sink);
  EXPECT_TRUE(framer.in_overflow());
  EXPECT_LE(framer.buffered(), framer.max_line_bytes());
  framer.feed("\n", sink);
  EXPECT_FALSE(framer.in_overflow());
  EXPECT_EQ(framer.truncated_lines(), 1u);
}

/// The corpus the fuzz rounds draw from: valid requests, control lines,
/// malformed JSON, empty lines, NUL-bearing and CRLF-terminated lines, and
/// (for the capped rounds) lines longer than any cap used below.
std::vector<std::string> fuzz_corpus() {
  return {
      R"({"id":"q1","dist":"exponential:lambda=1","alpha":1})",
      R"({"cmd":"stats"})",
      R"({"cmd":"shutdown"})",
      R"({"id":"q2","dist":)",            // malformed: cut mid-value
      "not json at all",
      "",                                 // blank line
      std::string("nul\0inside", 9),      // embedded NUL
      R"({"id":"q3","dist":"exponential","alpha":})",
      std::string(200, 'z'),              // overlong for cap 64
      R"({"id":"q4","dist":{"name":"exponential","params":{"lambda":2}}})",
  };
}

TEST(SrvFraming, FuzzChunkingNeverChangesTheEmittedLines) {
  const auto corpus = fuzz_corpus();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::mt19937_64 rng(seed);
    // Random document: 1..40 corpus lines, LF or CRLF terminators.
    std::uniform_int_distribution<std::size_t> n_lines(1, 40);
    std::uniform_int_distribution<std::size_t> pick(0, corpus.size() - 1);
    std::uniform_int_distribution<int> crlf(0, 1);
    std::string stream;
    const std::size_t n = n_lines(rng);
    for (std::size_t i = 0; i < n; ++i) {
      stream += corpus[pick(rng)];
      stream += crlf(rng) != 0 ? "\r\n" : "\n";
    }
    for (const std::size_t cap : {std::size_t{64}, std::size_t{1u << 20}}) {
      const auto reference = one_shot(stream, cap);
      const auto fuzzed = chunked(stream, cap, rng);
      EXPECT_EQ(fuzzed, reference) << "seed=" << seed << " cap=" << cap;
    }
  }
}

TEST(SrvFraming, FuzzCapHoldsAndTruncationCountsMatch) {
  std::mt19937_64 rng(2026);
  const std::size_t cap = 32;
  for (int round = 0; round < 50; ++round) {
    std::uniform_int_distribution<std::size_t> line_len(0, 90);
    std::uniform_int_distribution<int> n_lines(1, 20);
    std::string stream;
    std::uint64_t expect_truncated = 0;
    std::vector<std::string> expect_ok;
    const int n = n_lines(rng);
    for (int i = 0; i < n; ++i) {
      const std::size_t len = line_len(rng);
      std::string line(len, static_cast<char>('a' + (i % 26)));
      if (len > cap) {
        ++expect_truncated;
      } else {
        expect_ok.push_back(line);
      }
      stream += line;
      stream += "\n";
    }
    const auto events = chunked(stream, cap, rng);
    std::uint64_t truncated = 0;
    std::vector<std::string> ok;
    for (const auto& e : events) {
      if (e.truncated) {
        ++truncated;
        EXPECT_LE(e.line.size(), cap);
      } else {
        ok.push_back(e.line);
      }
    }
    EXPECT_EQ(truncated, expect_truncated) << "round=" << round;
    EXPECT_EQ(ok, expect_ok) << "round=" << round;
  }
}

TEST(SrvFraming, ClassifyTurnsEveryMalformedCorpusLineIntoATypedError) {
  for (const auto& line : fuzz_corpus()) {
    const auto c = sre::srv::classify_line(line);
    if (c.kind != ClassifiedLine::Kind::kError) continue;
    // A typed error response: ok=false, snake_case code, echoed verbatim to
    // the client — never an exception, never an empty slot.
    EXPECT_NE(c.response.find("\"ok\":false"), std::string::npos) << line;
    EXPECT_NE(c.response.find("\"code\":\"domain_error\""), std::string::npos)
        << line;
  }
  // And the NUL / cut-JSON entries specifically must be errors.
  EXPECT_EQ(sre::srv::classify_line(std::string("nul\0inside", 9)).kind,
            ClassifiedLine::Kind::kError);
  EXPECT_EQ(sre::srv::classify_line(R"({"id":"q2","dist":)").kind,
            ClassifiedLine::Kind::kError);
}

TEST(SrvFraming, LineAndTruncationCountersAreMonotoneTotals) {
  LineFramer framer(16);
  const auto sink = [](std::string_view, bool) {};
  framer.feed("one\ntwo\n", sink);
  EXPECT_EQ(framer.lines(), 2u);
  EXPECT_EQ(framer.truncated_lines(), 0u);
  framer.feed(std::string(40, 'x') + "\nthree\n", sink);
  EXPECT_EQ(framer.lines(), 4u);  // truncated lines count as lines
  EXPECT_EQ(framer.truncated_lines(), 1u);
}

}  // namespace
