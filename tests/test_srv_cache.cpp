// srv::PlanCache — sharded LRU semantics: hit/miss/insert/eviction
// accounting, recency refresh on hit, per-shard capacity, value identity
// (a hit returns the inserted bytes by shared_ptr, nothing re-serialized),
// and a concurrent hammer for the sanitizer presets.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "srv/cache.hpp"
#include "srv/request.hpp"

namespace {

using sre::srv::PlanCache;
using sre::srv::fnv1a64;

std::shared_ptr<const std::string> value_of(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

void put(PlanCache& cache, const std::string& key, const std::string& value) {
  cache.insert(key, fnv1a64(key), value_of(value));
}

std::shared_ptr<const std::string> get(PlanCache& cache,
                                       const std::string& key) {
  return cache.lookup(key, fnv1a64(key));
}

TEST(PlanCache, HitReturnsInsertedBytes) {
  PlanCache cache({4, 1});
  const auto value = value_of("{\"plan\":[1,2,4]}");
  cache.insert("k", fnv1a64("k"), value);
  const auto hit = get(cache, "k");
  ASSERT_NE(hit, nullptr);
  // Same control block: the cache hands back the stored bytes, it never
  // copies or re-serializes.
  EXPECT_EQ(hit.get(), value.get());
  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.inserts, 1u);
}

TEST(PlanCache, MissesAreCounted) {
  PlanCache cache({4, 1});
  EXPECT_EQ(get(cache, "absent"), nullptr);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache({2, 1});  // one shard, two entries
  put(cache, "a", "A");
  put(cache, "b", "B");
  ASSERT_NE(get(cache, "a"), nullptr);  // refresh a; b is now LRU
  put(cache, "c", "C");                 // evicts b
  EXPECT_NE(get(cache, "a"), nullptr);
  EXPECT_EQ(get(cache, "b"), nullptr);
  EXPECT_NE(get(cache, "c"), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, ReinsertRefreshesInsteadOfDuplicating) {
  PlanCache cache({2, 1});
  put(cache, "a", "A");
  put(cache, "b", "B");
  put(cache, "a", "A");  // refresh, not a new entry
  put(cache, "c", "C");  // evicts b (a was refreshed)
  EXPECT_NE(get(cache, "a"), nullptr);
  EXPECT_EQ(get(cache, "b"), nullptr);
  const auto c = cache.counters();
  EXPECT_EQ(c.inserts, 3u);  // the refresh is not an insert
  EXPECT_EQ(c.evictions, 1u);
}

TEST(PlanCache, CapacityZeroDisables) {
  PlanCache cache({0, 4});
  put(cache, "a", "A");
  EXPECT_EQ(get(cache, "a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().inserts, 0u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(PlanCache, TinyCapacityManyShardsStillHoldsEntries) {
  // Ceil division: capacity 1 with 8 shards keeps one entry per shard
  // rather than rounding per-shard capacity down to zero.
  PlanCache cache({1, 8});
  put(cache, "a", "A");
  EXPECT_NE(get(cache, "a"), nullptr);
}

TEST(PlanCache, ShardCountRoundsUpToPowerOfTwo) {
  // Rounds to 8 shards of 64 entries each: even if hashing sent all 64
  // keys to one shard, nothing would evict.
  PlanCache cache({512, 5});
  // Behavioral check only: keys spread across shards and all stay findable.
  for (int i = 0; i < 64; ++i) put(cache, "k" + std::to_string(i), "v");
  EXPECT_EQ(cache.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(get(cache, "k" + std::to_string(i)), nullptr) << i;
  }
}

TEST(PlanCache, ClearEmptiesEveryShard) {
  PlanCache cache({16, 4});
  for (int i = 0; i < 16; ++i) put(cache, "k" + std::to_string(i), "v");
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(get(cache, "k0"), nullptr);
}

TEST(PlanCache, ConcurrentHammerStaysConsistent) {
  // Sanitizer workout: concurrent hits, misses, inserts, and evictions on a
  // deliberately tiny cache. Invariants: size() never exceeds the rounded
  // capacity budget, every successful lookup returns the bytes inserted
  // for that key.
  PlanCache cache({8, 2});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 32);
        if (const auto hit = cache.lookup(key, fnv1a64(key))) {
          ASSERT_EQ(*hit, "value:" + key);
        } else {
          cache.insert(key, fnv1a64(key), value_of("value:" + key));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto c = cache.counters();
  EXPECT_EQ(c.hits + c.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // 8 entries over 2 shards = 4 per shard; size can never exceed that.
  EXPECT_LE(cache.size(), 8u);
}

}  // namespace
