// sim::NetFaultSpec / NetConnFaults / NetFaultPlan — deterministic
// network-fault schedules. Every decision must be a pure random-access
// function of (seed, connection stream, fault class, op index): the same
// plan asked twice, or asked out of order, answers identically, which is
// what lets a chaos failure seen in CI replay locally from the seed alone.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "sim/netfault.hpp"

namespace {

using sre::sim::NetConnFaults;
using sre::sim::NetFaultPlan;
using sre::sim::NetFaultSpec;

TEST(NetFaultSpec, DisabledByDefaultAndPassesEverythingThrough) {
  const NetFaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  const NetConnFaults conn(spec, 7);
  for (std::uint64_t op = 0; op < 64; ++op) {
    EXPECT_FALSE(conn.connect_refused(op));
    EXPECT_FALSE(conn.read_reset(op));
    EXPECT_FALSE(conn.write_reset(op));
    EXPECT_EQ(conn.short_read_fraction(op), 1.0);
    EXPECT_EQ(conn.short_write_fraction(op), 1.0);
    EXPECT_EQ(conn.delay_seconds(op), 0.0);
  }
  EXPECT_FALSE(conn.accept_dropped());
}

TEST(NetFaultSpec, DelayNeedsBothProbabilityAndDuration) {
  NetFaultSpec spec;
  spec.delay_prob = 1.0;
  EXPECT_FALSE(spec.enabled());  // zero-second delays are not faults
  spec.delay_seconds = 0.001;
  EXPECT_TRUE(spec.enabled());
}

TEST(NetConnFaults, DecisionsAreRandomAccessAndReplayIdentically) {
  NetFaultSpec spec;
  spec.seed = 11;
  spec.read_reset_prob = 0.3;
  spec.write_reset_prob = 0.3;
  spec.short_read_prob = 0.5;
  spec.delay_prob = 0.2;
  spec.delay_seconds = 0.001;

  const NetConnFaults conn(spec, 42);
  std::vector<bool> forward;
  forward.reserve(256);
  for (std::uint64_t op = 0; op < 256; ++op) {
    forward.push_back(conn.read_reset(op));
  }
  // Backwards, interleaved with other classes, and through a second
  // instance: the answers never change.
  const NetConnFaults again(spec, 42);
  for (std::uint64_t op = 256; op-- > 0;) {
    (void)conn.write_reset(op);
    (void)conn.delay_seconds(op);
    EXPECT_EQ(conn.read_reset(op), forward[op]) << "op " << op;
    EXPECT_EQ(again.read_reset(op), forward[op]) << "op " << op;
    EXPECT_EQ(again.short_read_fraction(op), conn.short_read_fraction(op));
  }
}

TEST(NetConnFaults, StreamsAreIndependent) {
  NetFaultSpec spec;
  spec.seed = 5;
  spec.read_reset_prob = 0.5;
  const NetFaultPlan plan(spec);
  const NetConnFaults a = plan.for_connection(2);
  const NetConnFaults b = plan.for_connection(3);
  bool any_diff = false;
  for (std::uint64_t op = 0; op < 128 && !any_diff; ++op) {
    any_diff = a.read_reset(op) != b.read_reset(op);
  }
  EXPECT_TRUE(any_diff) << "adjacent connection streams never diverged";
}

TEST(NetConnFaults, SeedChangesTheSchedule) {
  NetFaultSpec a;
  a.seed = 1;
  a.read_reset_prob = 0.5;
  NetFaultSpec b = a;
  b.seed = 2;
  const NetConnFaults ca(a, 7);
  const NetConnFaults cb(b, 7);
  bool any_diff = false;
  for (std::uint64_t op = 0; op < 128 && !any_diff; ++op) {
    any_diff = ca.read_reset(op) != cb.read_reset(op);
  }
  EXPECT_TRUE(any_diff);
}

TEST(NetConnFaults, ProbabilityOneAlwaysFiresAndZeroNeverDoes) {
  NetFaultSpec spec;
  spec.seed = 3;
  spec.read_reset_prob = 1.0;
  spec.short_write_prob = 1.0;
  spec.accept_drop_prob = 1.0;
  spec.connect_refuse_prob = 1.0;
  const NetConnFaults conn(spec, 9);
  EXPECT_TRUE(conn.accept_dropped());
  for (std::uint64_t op = 0; op < 64; ++op) {
    EXPECT_TRUE(conn.connect_refused(op));
    EXPECT_TRUE(conn.read_reset(op));
    EXPECT_FALSE(conn.write_reset(op));  // untouched class stays silent
    const double f = conn.short_write_fraction(op);
    EXPECT_GT(f, 0.0);  // never rounds an op down to zero bytes
    EXPECT_LE(f, 1.0);
  }
}

TEST(NetConnFaults, HitRateTracksTheConfiguredProbability) {
  NetFaultSpec spec;
  spec.seed = 1234;
  spec.read_reset_prob = 0.3;
  const NetConnFaults conn(spec, 1);
  std::uint64_t hits = 0;
  const std::uint64_t ops = 20000;
  for (std::uint64_t op = 0; op < ops; ++op) {
    hits += conn.read_reset(op) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / static_cast<double>(ops);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(NetFaultSpec, FromEnvReadsEveryKnob) {
  ::setenv("SRE_FAULT_NET_SEED", "77", 1);
  ::setenv("SRE_FAULT_NET_REFUSE", "0.01", 1);
  ::setenv("SRE_FAULT_NET_ACCEPT_DROP", "0.02", 1);
  ::setenv("SRE_FAULT_NET_RESET_READ", "0.03", 1);
  ::setenv("SRE_FAULT_NET_RESET_WRITE", "0.04", 1);
  ::setenv("SRE_FAULT_NET_SHORT_READ", "0.05", 1);
  ::setenv("SRE_FAULT_NET_SHORT_WRITE", "0.06", 1);
  ::setenv("SRE_FAULT_NET_DELAY_PROB", "0.07", 1);
  ::setenv("SRE_FAULT_NET_DELAY_S", "0.125", 1);
  const NetFaultSpec spec = NetFaultSpec::from_env();
  ::unsetenv("SRE_FAULT_NET_SEED");
  ::unsetenv("SRE_FAULT_NET_REFUSE");
  ::unsetenv("SRE_FAULT_NET_ACCEPT_DROP");
  ::unsetenv("SRE_FAULT_NET_RESET_READ");
  ::unsetenv("SRE_FAULT_NET_RESET_WRITE");
  ::unsetenv("SRE_FAULT_NET_SHORT_READ");
  ::unsetenv("SRE_FAULT_NET_SHORT_WRITE");
  ::unsetenv("SRE_FAULT_NET_DELAY_PROB");
  ::unsetenv("SRE_FAULT_NET_DELAY_S");

  EXPECT_EQ(spec.seed, 77u);
  EXPECT_DOUBLE_EQ(spec.connect_refuse_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec.accept_drop_prob, 0.02);
  EXPECT_DOUBLE_EQ(spec.read_reset_prob, 0.03);
  EXPECT_DOUBLE_EQ(spec.write_reset_prob, 0.04);
  EXPECT_DOUBLE_EQ(spec.short_read_prob, 0.05);
  EXPECT_DOUBLE_EQ(spec.short_write_prob, 0.06);
  EXPECT_DOUBLE_EQ(spec.delay_prob, 0.07);
  EXPECT_DOUBLE_EQ(spec.delay_seconds, 0.125);
  EXPECT_TRUE(spec.enabled());

  EXPECT_FALSE(NetFaultSpec::from_env().enabled());  // knobs cleared
}

TEST(NetFaultPlan, ClientStreamsLiveFarAboveServerConnIds) {
  // The loadgen runs both sides of the chaos drill in one process; the
  // offset guarantees the client's dial streams never alias the server's
  // connection-id streams.
  EXPECT_EQ(NetFaultPlan::kClientStreamBase, 1ull << 32);
}

}  // namespace
