// The obsdiff engine (src/obs/diff.*) and its minijson reader: glob
// matching, time-like/count-like key classification, document flattening,
// and the compare() gate that tools/obsdiff.cpp wraps. Runs in every
// configuration — diff/minijson are offline analysis code and are not
// compiled out under STOCHRES_OBS_DISABLE.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "obs/diff.hpp"
#include "obs/minijson.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"

namespace mj = sre::obs::minijson;
namespace od = sre::obs::diff;

namespace {

std::map<std::string, double> flatten_text(const std::string& json) {
  const auto parsed = mj::parse(json);
  EXPECT_TRUE(parsed.ok) << parsed.error << " at byte " << parsed.offset;
  return od::flatten(parsed.value);
}

}  // namespace

// ---------------------------------------------------------------- minijson

TEST(MiniJson, ParsesScalarsStringsAndNesting) {
  const auto r = mj::parse(
      R"({"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {"d": -2e3}})");
  ASSERT_TRUE(r.ok) << r.error;
  const auto* a = r.value.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->number, 1.5);
  const auto* b = r.value.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_EQ(b->array[1].kind, mj::Value::Kind::kNull);
  EXPECT_EQ(b->array[2].string, "x\n\"y\"");
  const auto* d = r.value.find("c")->find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->number, -2000.0);
}

TEST(MiniJson, ParsesUnicodeEscapes) {
  // é is e-acute: two bytes 0xC3 0xA9 in UTF-8.
  const auto r = mj::parse(R"({"s": "\u00e9A"})");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.find("s")->string, "\xc3\xa9" "A");
}

TEST(MiniJson, RejectsMalformedInput) {
  EXPECT_FALSE(mj::parse("{").ok);
  EXPECT_FALSE(mj::parse("{\"a\": }").ok);
  EXPECT_FALSE(mj::parse("[1, 2,]").ok);
  EXPECT_FALSE(mj::parse("{} trailing").ok);
  EXPECT_FALSE(mj::parse("").ok);
  // Depth cap: 70 nested arrays exceeds the 64-level limit.
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_FALSE(mj::parse(deep).ok);
}

TEST(MiniJson, RoundTripsReportJson) {
  // Whatever report_json() emits must be readable by our own parser,
  // including the "inf"/"nan" string spellings for non-finite doubles.
  const auto r = mj::parse(sre::obs::report_json());
  ASSERT_TRUE(r.ok) << r.error << " at byte " << r.offset;
  EXPECT_NE(r.value.find("counters"), nullptr);
  EXPECT_NE(r.value.find("spans"), nullptr);
  EXPECT_NE(r.value.find("histograms"), nullptr);
}

// -------------------------------------------------------------- glob match

TEST(ObsDiffGlob, StarMatchesAnyRunIncludingDots) {
  EXPECT_TRUE(od::glob_match("*", "anything.at.all"));
  EXPECT_TRUE(od::glob_match("counters.sim.pool.*", "counters.sim.pool.steals"));
  EXPECT_TRUE(od::glob_match("spans.*.total_ns", "spans.core.dp.total_ns"));
  EXPECT_TRUE(od::glob_match("a*c", "ac"));
  EXPECT_FALSE(od::glob_match("counters.sim.pool.*", "counters.sim.tasks"));
  EXPECT_FALSE(od::glob_match("a*c", "ab"));
  EXPECT_FALSE(od::glob_match("", "x"));
  EXPECT_TRUE(od::glob_match("", ""));
  // Backtracking across multiple stars.
  EXPECT_TRUE(od::glob_match("*.p9*", "histograms.wall.p95"));
}

// ---------------------------------------------------------- classification

TEST(ObsDiffClassify, TimeLikeKeysGetTheTimeBand) {
  EXPECT_TRUE(od::is_time_like("spans.core.dp.table_fill.total_ns"));
  EXPECT_TRUE(od::is_time_like("spans.core.dp.table_fill.max_ns"));
  EXPECT_TRUE(od::is_time_like("histograms.sim.sweep.scenario_seconds.sum"));
  EXPECT_TRUE(od::is_time_like("histograms.sim.sweep.scenario_seconds.p95"));
  EXPECT_TRUE(od::is_time_like("sweep.scenario_wall_ns.p50"));
  EXPECT_TRUE(od::is_time_like("speedup_vs_serial"));
  EXPECT_TRUE(od::is_time_like("gauges.sim.pool.queue_depth"));
}

TEST(ObsDiffClassify, CountLikeKeysStayExact) {
  EXPECT_FALSE(od::is_time_like("counters.sim.sweep.scenarios"));
  EXPECT_FALSE(od::is_time_like("spans.core.dp.table_fill.count"));
  EXPECT_FALSE(od::is_time_like("histograms.scenario_seconds.count"));
  EXPECT_FALSE(od::is_time_like("sweep.identical_to_serial"));
}

// ------------------------------------------------------------------ flatten

TEST(ObsDiffFlatten, JoinsNestedKeysAndSkipsNonNumerics) {
  const auto flat = flatten_text(R"({
    "counters": {"sweep.scenarios": 12},
    "spans": {"dp": {"count": 3, "total_ns": 4500}},
    "label": "text is skipped",
    "buckets": [1, 2, 3],
    "flag": true,
    "nothing": null
  })");
  EXPECT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat.at("counters.sweep.scenarios"), 12.0);
  EXPECT_DOUBLE_EQ(flat.at("spans.dp.count"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("spans.dp.total_ns"), 4500.0);
  EXPECT_DOUBLE_EQ(flat.at("flag"), 1.0);
  EXPECT_EQ(flat.count("label"), 0u);
  EXPECT_EQ(flat.count("buckets"), 0u);
  EXPECT_EQ(flat.count("nothing"), 0u);
}

// ------------------------------------------------------------------ compare

namespace {

const std::map<std::string, double> kBaseline = {
    {"counters.sweep.scenarios", 12.0},
    {"spans.dp.count", 3.0},
    {"spans.dp.total_ns", 1000.0},
    {"spans.dp.max_ns", 400.0},
};

}  // namespace

TEST(ObsDiffCompare, IdenticalDocumentsPass) {
  const auto result = od::compare(kBaseline, kBaseline, od::Options{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.keys_compared, kBaseline.size());
  EXPECT_NE(od::describe(result).find("OK"), std::string::npos);
}

TEST(ObsDiffCompare, TimeGrowthWithinBandPasses) {
  auto current = kBaseline;
  current["spans.dp.total_ns"] = 1400.0;  // +40% < default +50% band
  const auto result = od::compare(kBaseline, current, od::Options{});
  EXPECT_TRUE(result.ok()) << od::describe(result);
}

TEST(ObsDiffCompare, TimeGrowthBeyondBandIsARegression) {
  auto current = kBaseline;
  current["spans.dp.total_ns"] = 2000.0;  // 2x: the CI inflation self-check
  const auto result = od::compare(kBaseline, current, od::Options{});
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].key, "spans.dp.total_ns");
  EXPECT_EQ(result.violations[0].kind, od::Finding::Kind::kValueRegression);
  EXPECT_NE(od::describe(result).find("REGRESSION"), std::string::npos);
}

TEST(ObsDiffCompare, TimeShrinkIsAnImprovementNotARegression) {
  auto current = kBaseline;
  current["spans.dp.total_ns"] = 10.0;  // 100x faster: fine
  const auto result = od::compare(kBaseline, current, od::Options{});
  EXPECT_TRUE(result.ok()) << od::describe(result);
}

TEST(ObsDiffCompare, CounterDriftIsExactByDefault) {
  auto current = kBaseline;
  current["counters.sweep.scenarios"] = 13.0;
  const auto result = od::compare(kBaseline, current, od::Options{});
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].key, "counters.sweep.scenarios");
  // Counters are two-sided: shrinking is just as much a behavior change.
  current["counters.sweep.scenarios"] = 11.0;
  EXPECT_FALSE(od::compare(kBaseline, current, od::Options{}).ok());
}

TEST(ObsDiffCompare, MissingBaselineKeyFailsUnlessAllowed) {
  auto current = kBaseline;
  current.erase("spans.dp.max_ns");
  od::Options opts;
  const auto strict = od::compare(kBaseline, current, opts);
  ASSERT_EQ(strict.violations.size(), 1u);
  EXPECT_EQ(strict.violations[0].kind, od::Finding::Kind::kMissingKey);
  EXPECT_NE(od::describe(strict).find("MISSING"), std::string::npos);

  opts.fail_on_missing = false;
  const auto lenient = od::compare(kBaseline, current, opts);
  EXPECT_TRUE(lenient.ok());
  EXPECT_FALSE(lenient.notes.empty());
}

TEST(ObsDiffCompare, ExtraCurrentKeysAreNotesOnly) {
  auto current = kBaseline;
  current["spans.new_phase.total_ns"] = 5.0;
  const auto result = od::compare(kBaseline, current, od::Options{});
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.notes.empty());
}

TEST(ObsDiffCompare, FirstMatchingRuleWins) {
  auto current = kBaseline;
  current["spans.dp.total_ns"] = 5000.0;  // 5x
  od::Options opts;
  // Specific widen first, then a tight catch-all: the widen must win.
  opts.rules.push_back({"spans.dp.total_ns", 10.0});
  opts.rules.push_back({"spans.*", 0.0});
  EXPECT_TRUE(od::compare(kBaseline, current, opts).ok());
  // Reversed order: the tight catch-all matches first and fails the key.
  std::swap(opts.rules[0], opts.rules[1]);
  EXPECT_FALSE(od::compare(kBaseline, current, opts).ok());
}

TEST(ObsDiffCompare, IgnoreRuleDropsKeyEntirely) {
  auto current = kBaseline;
  current["counters.sweep.scenarios"] = 999.0;
  od::Options opts;
  opts.rules.push_back({"counters.*", od::kIgnore});
  const auto result = od::compare(kBaseline, current, opts);
  EXPECT_TRUE(result.ok()) << od::describe(result);
  // Ignored keys do not count as compared.
  EXPECT_EQ(result.keys_compared, kBaseline.size() - 1);
}

// ------------------------------------------------------- drop-counter class

TEST(ObsDiffClassify, DropLikeKeysAreRecognized) {
  EXPECT_TRUE(od::is_drop_like("counters.obs.wide.dropped"));
  EXPECT_TRUE(od::is_drop_like("wide.dropped"));
  EXPECT_TRUE(od::is_drop_like("dropped"));
  EXPECT_TRUE(od::is_drop_like("conn.drops"));
  EXPECT_TRUE(od::is_drop_like("lines_dropped"));
  EXPECT_TRUE(od::is_drop_like("ring_drops"));
  EXPECT_FALSE(od::is_drop_like("wide.written"));
  EXPECT_FALSE(od::is_drop_like("dropped_total"));  // suffix, not the metric
  EXPECT_FALSE(od::is_drop_like("backdropped"));
  EXPECT_FALSE(od::is_drop_like("drop_rate"));
}

TEST(ObsDiffCompare, DropCountersAutoIgnoredByDefault) {
  // Log-drop counters grow with transient backpressure, not the workload:
  // drift in them must not gate CI unless explicitly asked for.
  auto baseline = kBaseline;
  baseline["wide.dropped"] = 0.0;
  auto current = baseline;
  current["wide.dropped"] = 57.0;
  const auto result = od::compare(baseline, current, od::Options{});
  EXPECT_TRUE(result.ok()) << od::describe(result);
  EXPECT_EQ(result.keys_compared, kBaseline.size());  // skipped, not compared
  bool noted = false;
  for (const auto& note : result.notes) {
    noted = noted ||
            note.find("ignored (drop counter): wide.dropped") != std::string::npos;
  }
  EXPECT_TRUE(noted) << od::describe(result);
}

TEST(ObsDiffCompare, StrictDropsGatesDropCounters) {
  auto baseline = kBaseline;
  baseline["wide.dropped"] = 0.0;
  auto current = baseline;
  current["wide.dropped"] = 57.0;
  od::Options opts;
  opts.ignore_drop_counters = false;  // obsdiff --strict-drops
  const auto result = od::compare(baseline, current, opts);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].key, "wide.dropped");
}

TEST(ObsDiffCompare, ExplicitRuleBeatsDropAutoIgnore) {
  auto baseline = kBaseline;
  baseline["wide.dropped"] = 0.0;
  auto current = baseline;
  current["wide.dropped"] = 57.0;
  od::Options opts;  // ignore_drop_counters stays true
  opts.rules.push_back({"wide.dropped", 0.0});  // pin it exactly anyway
  EXPECT_FALSE(od::compare(baseline, current, opts).ok());
}

TEST(ObsDiffCompare, NonFiniteMismatchIsARegression) {
  std::map<std::string, double> baseline = {{"gauges.rate", 2.0}};
  std::map<std::string, double> current = {
      {"gauges.rate", std::nan("")}};
  EXPECT_FALSE(od::compare(baseline, current, od::Options{}).ok());
  // Both non-finite in the same way: not a regression.
  baseline["gauges.rate"] = std::nan("");
  EXPECT_TRUE(od::compare(baseline, current, od::Options{}).ok());
}

TEST(ObsDiffCompare, ReportJsonSelfCompareIsClean) {
  // A live report diffed against itself must always pass, whatever
  // instruments earlier tests in this binary registered.
  const auto flat = flatten_text(sre::obs::report_json());
  const auto result = od::compare(flat, flat, od::Options{});
  EXPECT_TRUE(result.ok()) << od::describe(result);
  EXPECT_EQ(result.keys_compared, flat.size());
}
