// Randomized differential testing: random distribution parameters, random
// cost models, random sequences -- every pair of independent implementations
// that should agree, must.

#include <gtest/gtest.h>

#include <random>

#include "core/checkpoint.hpp"
#include "core/expected_cost.hpp"
#include "core/sequence.hpp"
#include "dist/exponential.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"
#include "sim/event_sim.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre::core;

namespace {

/// A random law from a random family with random (sane) parameters.
sre::dist::DistributionPtr random_law(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  switch (rng() % 5) {
    case 0:
      return std::make_shared<sre::dist::Exponential>(0.2 + 3.0 * u(rng));
    case 1:
      return std::make_shared<sre::dist::Weibull>(0.5 + 2.0 * u(rng),
                                                  0.6 + 1.8 * u(rng));
    case 2:
      return std::make_shared<sre::dist::Gamma>(0.8 + 3.0 * u(rng),
                                                0.5 + 2.0 * u(rng));
    case 3:
      return std::make_shared<sre::dist::LogNormal>(-0.5 + 2.0 * u(rng),
                                                    0.2 + 0.8 * u(rng));
    default: {
      const double a = 0.5 + 4.0 * u(rng);
      return std::make_shared<sre::dist::Uniform>(a, a + 1.0 + 4.0 * u(rng));
    }
  }
}

CostModel random_model(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  return CostModel{0.25 + 2.0 * u(rng), (rng() % 2) ? u(rng) : 0.0,
                   (rng() % 2) ? 0.5 * u(rng) : 0.0};
}

ReservationSequence random_covering_sequence(const sre::dist::Distribution& d,
                                             std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.05, 0.95);
  std::vector<double> qs;
  for (int i = 0; i < 1 + static_cast<int>(rng() % 5); ++i) qs.push_back(u(rng));
  std::sort(qs.begin(), qs.end());
  std::vector<double> v;
  for (const double q : qs) {
    const double t = d.quantile(q);
    if (v.empty() || t > v.back() * (1.0 + 1e-9)) v.push_back(t);
  }
  if (v.empty()) v.push_back(d.mean());
  const auto sup = d.support();
  if (sup.bounded()) {
    if (v.back() < sup.upper) v.push_back(sup.upper);
  } else {
    while (d.sf(v.back()) > 1e-13) v.push_back(v.back() * 2.0);
  }
  return ReservationSequence(std::move(v));
}

}  // namespace

TEST(DifferentialFuzz, EvaluatorVsSimulatorVsAnalytic) {
  std::mt19937_64 rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    const auto d = random_law(rng);
    const auto m = random_model(rng);
    const auto seq = random_covering_sequence(*d, rng);
    const SequenceCostEvaluator eval(seq, m);
    const sre::sim::PlatformSimulator simulator(seq.values(),
                                                {m.alpha, m.beta, m.gamma});

    // Per-job agreement: evaluator == cost_for == simulator.
    sre::sim::Rng drng = sre::sim::make_rng(1000 + trial);
    sre::stats::OnlineMoments sample_mean;
    for (int i = 0; i < 500; ++i) {
      const double x = d->sample(drng);
      const double a = seq.cost_for(x, m);
      ASSERT_NEAR(eval.cost(x), a, 1e-9 * (1.0 + a)) << trial;
      if (x <= seq.last()) {
        ASSERT_NEAR(simulator.run_job(x).total_cost, a, 1e-9 * (1.0 + a))
            << trial;
      }
      sample_mean.add(a);
    }
    // Mean agreement: analytic vs the sample above (generous tolerance).
    const double analytic = expected_cost_analytic(seq, *d, m);
    EXPECT_NEAR(sample_mean.mean(), analytic,
                8.0 * sample_mean.standard_error() + 1e-9 * analytic)
        << trial << " " << d->describe() << " " << m.describe();
  }
}

TEST(DifferentialFuzz, CheckpointLedgerVsSimulator) {
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int trial = 0; trial < 25; ++trial) {
    const auto d = random_law(rng);
    const auto m = random_model(rng);
    const CheckpointModel ckpt{0.1 * u(rng) * d->mean(),
                               0.1 * u(rng) * d->mean()};
    const auto plan = checkpoint_mean_doubling(*d, ckpt);
    const sre::sim::CheckpointingSimulator simulator(
        plan.reservations(), {m.alpha, m.beta, m.gamma},
        ckpt.checkpoint_cost, ckpt.restart_cost);

    sre::sim::Rng drng = sre::sim::make_rng(2000 + trial);
    for (int i = 0; i < 300; ++i) {
      const double x = d->sample(drng);
      if (x > plan.banked_work().back()) continue;
      const auto out = simulator.run_job(x);
      ASSERT_TRUE(out.completed);
      ASSERT_NEAR(out.total_cost, plan.cost_for(x, m),
                  1e-9 * (1.0 + out.total_cost))
          << trial << " x=" << x;
      ASSERT_EQ(out.attempts, plan.attempts_for(x)) << trial;
    }
  }
}

TEST(DifferentialFuzz, DiscreteAnalyticMatchesExactSum) {
  // For discrete laws Eq. (4) must match the exact weighted sum of per-atom
  // costs.
  std::mt19937_64 rng(31415);
  std::uniform_real_distribution<double> u(0.1, 4.0);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> values, probs;
    double cur = 0.0;
    const std::size_t n = 2 + rng() % 12;
    for (std::size_t i = 0; i < n; ++i) {
      cur += u(rng);
      values.push_back(cur);
      probs.push_back(u(rng));
    }
    const sre::dist::DiscreteDistribution d(values, probs);
    const auto m = random_model(rng);
    // Sequence: a random subset of atoms ending at the last one.
    std::vector<double> v;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (rng() % 2) v.push_back(values[i]);
    }
    v.push_back(values.back());
    const ReservationSequence seq(std::move(v));

    double exact = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      exact += d.probabilities()[k] * seq.cost_for(d.values()[k], m);
    }
    EXPECT_NEAR(expected_cost_analytic(seq, d, m), exact,
                1e-9 * (1.0 + exact))
        << trial;
  }
}
