// Extension experiment: spot capacity + checkpoints. Without checkpoints,
// preemptible execution of heavy-tailed jobs has *infinite* expected cost
// (E[e^{rate X}] diverges; see ext_preemption). Checkpoints cap the
// per-level exposure at the slot length, restoring a finite -- and modest
// -- cost for any law. This table quantifies the rescue.

#include "common.hpp"
#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/heuristics/moment_based.hpp"
#include "core/omniscient.hpp"
#include "core/preemption.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();
  const std::vector<double> rates = {0.0, 0.5, 1.0, 2.0};

  bench::print_note(
      "Extension -- spot + checkpoints (C = R = 5% of the mean). Cells: "
      "optimized normalized cost, restart model vs always-checkpoint "
      "model. Restart cells marked 'inf*' have mathematically infinite "
      "expected cost (heavy tail); the printed floor is "
      "truncation-limited.");

  std::vector<std::string> header = {"Distribution", "model"};
  for (const double r : rates) {
    header.push_back("rate=" + bench::fmt(r, 1) + "/mean");
  }

  std::vector<std::vector<std::string>> rows;
  for (const char* label : {"Exponential", "Lognormal", "Weibull"}) {
    const auto inst = dist::paper_distribution(label);
    const auto& d = *inst->dist;
    const double omniscient = core::omniscient_cost(d, model);
    const bool heavy = std::string(label) != "Exponential";
    const core::CheckpointModel ckpt{0.05 * d.mean(), 0.05 * d.mean()};

    std::vector<std::string> restart_row = {inst->label, "restart"};
    std::vector<std::string> ckpt_row = {"", "checkpoint"};
    const auto restart_seed = core::MeanDoubling().generate(d, model);
    for (const double r : rates) {
      const core::PreemptionModel p{r / d.mean()};
      // Restart: divergent for heavy tails at r > 0 -- report and mark.
      if (heavy && r > 0.0) {
        const double floor =
            core::preemption_expected_cost(restart_seed, d, model, p) /
            omniscient;
        restart_row.push_back(((!std::isfinite(floor) || floor > 9999.0) ? std::string(">1e4") : bench::fmt(floor)) +
                              " inf*");
      } else {
        const auto out =
            core::optimize_preemption_plan(restart_seed, d, model, p);
        restart_row.push_back(bench::fmt(out.cost_after / omniscient));
      }
      // Checkpointed: best fixed work quantum (bounded increments keep the
      // cost finite for every law; a small 1-D sweep suffices).
      double best = std::numeric_limits<double>::infinity();
      for (const double q : {0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5}) {
        const auto plan =
            core::checkpoint_fixed_quantum(d, ckpt, q * d.mean());
        best = std::min(best, core::preemption_checkpoint_expected_cost(
                                  plan, d, model, p));
      }
      ckpt_row.push_back(bench::fmt(best / omniscient));
    }
    rows.push_back(std::move(restart_row));
    rows.push_back(std::move(ckpt_row));
  }
  bench::print_table("Spot + checkpoints: normalized cost vs rate", header,
                     rows);
  bench::print_note(
      "\nReading: checkpoints turn the heavy-tail blow-up into a gentle "
      "slope -- the quantitative core of the 'complicated trade-off' the "
      "paper's conclusion sketches for reservation+checkpoint strategies.");
  return 0;
}
