#pragma once

// Shared plumbing for the table/figure reproduction binaries: fixed-width
// table printing and the evaluation configuration. By default the benches
// run at the paper's parameters (M = 5000, N = 1000, n = 1000,
// eps = 1e-7); setting the environment variable SRE_FAST=1 shrinks them for
// smoke runs.

#include <string>
#include <vector>

#include "core/heuristics/heuristic.hpp"
#include "core/scenario_sweep.hpp"

namespace sre::bench {

/// Evaluation sizes (Section 5.1 defaults).
struct BenchConfig {
  std::size_t bf_grid = 5000;      ///< M
  std::size_t mc_samples = 1000;   ///< N
  std::size_t disc_n = 1000;       ///< discretization samples
  double epsilon = 1e-7;           ///< truncation quantile
  std::uint64_t seed = 42;

  /// Paper-scale defaults, or reduced sizes when SRE_FAST=1 is set. Also
  /// applies SRE_OBS to the observability master switch (SRE_OBS=0 turns
  /// metrics/span collection off for clean timing runs; default is on) and
  /// arms the flight recorder when SRE_TRACE=path is set (the trace is
  /// written by write_trace_sidecar() at the end of the run).
  static BenchConfig from_env();
};

/// Formats a double with fixed precision ("2.13").
std::string fmt(double value, int precision = 2);

/// Prints a titled fixed-width table: header row, separator, then rows.
void print_table(const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Prints a "key: value" style preamble line.
void print_note(const std::string& note);

/// One-line counter digest of a campaign ("sweep: 63 scenarios, 8 threads,
/// 1.23 s, 41 steals; cdf cache: 97.2% hits, 9 tables, 54 reuses").
std::string sweep_summary(const core::ScenarioSweepReport& report);

/// Writes the obs:: registry snapshot to "BENCH_<name>_metrics.json" (or
/// under $SRE_BENCH_METRICS_DIR when set) and prints the path. No-op —
/// returning false — when observability is off or compiled out, so bench
/// timing runs stay sidecar-free. Call once at the end of main().
bool write_metrics_sidecar(const std::string& name);

/// Flushes the flight-recorder capture armed by SRE_TRACE to its path as
/// Chrome Trace Event JSON (open it in Perfetto / chrome://tracing) and
/// prints the path plus drop accounting. No-op — returning false — when no
/// capture is armed. Call once at the end of main(), after the workload.
bool write_trace_sidecar();

}  // namespace sre::bench
