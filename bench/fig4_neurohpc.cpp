// Figure 4: the NeuroHPC scenario -- LogNormal execution times fitted from
// the VBMQA trace, costed as waiting time (affine in the request,
// alpha=0.95, gamma=1.05 h) plus execution time (beta=1). The distribution's
// mean and standard deviation are scaled up to x10 to probe robustness.

#include "common.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "platform/workload.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const platform::NeuroHpcScenario scenario;
  const core::CostModel model = scenario.cost_model();

  core::BruteForceOptions bf_opts;
  bf_opts.grid_points = cfg.bf_grid;
  bf_opts.mc_samples = cfg.mc_samples;
  bf_opts.seed = cfg.seed;
  std::vector<core::HeuristicPtr> heuristics = {
      std::make_shared<core::BruteForce>(bf_opts),
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanStdev>(),
      std::make_shared<core::MeanDoubling>(),
      std::make_shared<core::MedianByMedian>(),
      std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
          cfg.disc_n, cfg.epsilon, sim::DiscretizationScheme::kEqualTime}),
      std::make_shared<core::DiscretizedDp>(
          sim::DiscretizationOptions{cfg.disc_n, cfg.epsilon,
                                     sim::DiscretizationScheme::kEqualProbability}),
  };

  core::EvaluationOptions eval_opts;
  eval_opts.mc.samples = cfg.mc_samples;
  eval_opts.mc.seed = cfg.seed;

  bench::print_note(
      "Figure 4 reproduction -- NeuroHPC: LogNormal(mu=7.1128, sigma=0.2039) "
      "in hours, cost model alpha=0.95 beta=1 gamma=1.05.");
  bench::print_note("Base mean = " +
                    bench::fmt(scenario.base_mean_hours(), 3) +
                    " h, base stdev = " +
                    bench::fmt(scenario.base_stddev_hours(), 3) + " h.");

  std::vector<std::string> header = {"mean x", "stdev x"};
  for (const auto& h : heuristics) header.push_back(h->name());

  std::vector<std::vector<std::string>> rows;
  const std::vector<std::pair<double, double>> scales = {
      {1, 1}, {1, 5}, {1, 10}, {2, 1},  {2, 5},  {2, 10},
      {5, 1}, {5, 5}, {5, 10}, {10, 1}, {10, 5}, {10, 10}};
  for (const auto& [ms, ss] : scales) {
    const auto d = scenario.distribution(ms, ss);
    std::vector<std::string> row = {bench::fmt(ms, 0), bench::fmt(ss, 0)};
    for (const auto& h : heuristics) {
      const auto eval = evaluate_heuristic(*h, d, model, eval_opts);
      row.push_back(bench::fmt(eval.normalized_mc));
    }
    rows.push_back(std::move(row));
  }
  bench::print_table(
      "Figure 4: normalized expected costs under mean/stdev scaling", header,
      rows);
  return 0;
}
