// Figure 1: trace characterization. The paper fits LogNormal laws to >5000
// runs of two neuroscience applications. The raw Vanderbilt traces are not
// redistributable, so we synthesize equivalent traces from the published
// fitted laws and run the identical pipeline: trace -> MLE fit ->
// goodness-of-fit -> distribution object (see DESIGN.md, substitutions).

#include "common.hpp"
#include "platform/trace.hpp"

using namespace sre;

int main() {
  struct App {
    const char* name;
    double mu;
    double sigma;
  };
  // fMRIQA (Fig. 1a) is reported only via its plot; VBMQA (Fig. 1b) is the
  // law used in Section 5.3. We reproduce both pipeline runs, using the
  // VBMQA parameters for 1b and plausible fMRIQA-scale parameters for 1a.
  const std::vector<App> apps = {
      {"fMRIQA (Fig. 1a, synthetic scale)", 8.4, 0.35},
      {"VBMQA  (Fig. 1b, paper fit)", platform::kVbmqaMu,
       platform::kVbmqaSigma},
  };

  std::vector<std::string> header = {"Application", "runs",
                                     "true mu",     "true sigma",
                                     "fit mu",      "fit sigma",
                                     "mean (s)",    "stdev (s)",
                                     "KS"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& app : apps) {
    platform::TraceConfig cfg;
    cfg.truth = {app.mu, app.sigma};
    cfg.runs = 5000;
    const auto trace = platform::synthesize_trace(cfg);
    const auto fit = platform::fit_trace(trace);
    rows.push_back({app.name, std::to_string(fit.runs), bench::fmt(app.mu, 4),
                    bench::fmt(app.sigma, 4), bench::fmt(fit.fitted.mu, 4),
                    bench::fmt(fit.fitted.sigma, 4),
                    bench::fmt(fit.sample_mean, 1),
                    bench::fmt(fit.sample_stddev, 1),
                    bench::fmt(fit.ks_statistic, 4)});
  }
  bench::print_note(
      "Figure 1 reproduction -- synthetic 5000-run traces refit by MLE "
      "(substitution for the Vanderbilt imaging database).");
  bench::print_table("Figure 1: trace fits", header, rows);
  return 0;
}
