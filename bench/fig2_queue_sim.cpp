// Figure 2, derived from first principles: instead of assuming the affine
// wait(r) model, run a full FCFS + EASY-backfill cluster simulation (409
// nodes, saturating synthetic workload), bucket the resulting log by
// requested runtime exactly as the paper buckets the Intrepid log, and fit
// the affine model. The emergent slope is positive: longer requests
// backfill less, hence wait more -- the mechanism behind the paper's
// empirical alpha = 0.95.

#include "common.hpp"
#include "platform/hpc.hpp"
#include "sim/queue_sim.hpp"

using namespace sre;

int main() {
  bench::print_note(
      "Figure 2 from first principles -- EASY-backfill cluster simulation, "
      "20 request-size groups, weighted affine fit of mean wait vs "
      "requested runtime.");

  std::vector<std::string> header = {"nodes",     "load (1/h)", "jobs",
                                     "backfill%", "fit slope",  "fit intercept",
                                     "R^2"};
  std::vector<std::vector<std::string>> rows;
  // Mean job demand ~ 0.25*409 nodes x ~4.6 used hours ~ 470 node-hours;
  // these interarrival times put the offered utilization near 0.6 / 0.8 /
  // 0.95 of the 409-node capacity.
  for (const double interarrival : {1.9, 1.45, 1.2}) {
    sim::ClusterWorkloadConfig cfg;
    cfg.jobs = 4000;
    cfg.max_width = 409;
    cfg.mean_width_fraction = 0.25;
    cfg.mean_interarrival = interarrival;
    cfg.seed = 5;
    const auto jobs = sim::synthesize_cluster_workload(cfg);
    const auto records = sim::simulate_backfill_queue({409}, jobs);

    std::vector<platform::JobLogEntry> log;
    std::size_t backfilled = 0;
    for (const auto& r : records) {
      log.push_back({r.job.requested, r.wait});
      if (r.backfilled) ++backfilled;
    }
    const auto fit = platform::fit_queue_log(log, 20);
    rows.push_back(
        {"409", bench::fmt(1.0 / interarrival, 2), std::to_string(cfg.jobs),
         bench::fmt(100.0 * static_cast<double>(backfilled) /
                        static_cast<double>(records.size()), 1),
         bench::fmt(fit.model.slope, 3), bench::fmt(fit.model.intercept, 3),
         bench::fmt(fit.r_squared, 3)});
  }
  bench::print_table("Emergent wait-vs-request fits under rising load",
                     header, rows);
  bench::print_note(
      "\nReading: the slope is positive at every load and grows as the "
      "cluster saturates -- the affine waiting-time model the paper fits to "
      "Intrepid logs emerges from the backfilling mechanics themselves, "
      "justifying the NeuroHPC cost mapping alpha = wait slope, gamma = "
      "wait intercept.");
  return 0;
}
