// Extension experiment: strategies in vivo. The paper ranks plans by the
// analytic cost alpha*t + min(t,x) + gamma with a fitted affine wait; here
// each plan actually runs inside the EASY-backfill cluster (resubmitting on
// every kill), and the emergent mean turnaround is compared with the
// analytic prediction. The question: does the model's ranking survive
// contact with a real scheduler?

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "platform/cluster_campaign.hpp"
#include "platform/hpc.hpp"
#include "platform/workload.hpp"

using namespace sre;

int main() {
  // The NeuroHPC law in hours; plans computed under the paper's affine
  // wait-time cost model.
  const platform::NeuroHpcScenario scenario;
  const auto law = scenario.distribution();
  const core::CostModel model = scenario.cost_model();

  platform::InVivoCampaignConfig cfg;
  cfg.cluster.nodes = 409;
  cfg.background.jobs = 3000;
  cfg.background.max_width = 409;
  cfg.background.mean_interarrival = 1.45;  // ~80% offered utilization
  cfg.background.seed = 8;
  cfg.measured_jobs = 150;
  cfg.measured_width = 16;
  cfg.seed = 4;

  core::BruteForceOptions bf;
  bf.grid_points = 1500;
  bf.mc_samples = 1000;
  std::vector<core::HeuristicPtr> heuristics = {
      std::make_shared<core::BruteForce>(bf),
      std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
          500, 1e-7, sim::DiscretizationScheme::kEqualProbability}),
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanDoubling>(),
      std::make_shared<core::MedianByMedian>(),
  };

  bench::print_note(
      "Extension -- in-vivo NeuroHPC: 150 measured jobs x 16 nodes inside a "
      "409-node EASY-backfill cluster with 3000 background jobs. Plans "
      "computed under the affine model; turnarounds measured by simulation.");

  std::vector<std::string> header = {"Heuristic",    "model cost (h)",
                                     "turnaround (h)", "wait (h)",
                                     "attempts",     "occupancy (h)"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& h : heuristics) {
    const auto plan = h->generate(law, model);
    const double predicted = core::expected_cost_analytic(plan, law, model);
    const auto result = platform::run_in_vivo_campaign(law, plan, cfg);
    rows.push_back({h->name(), bench::fmt(predicted),
                    bench::fmt(result.mean_turnaround),
                    bench::fmt(result.mean_wait),
                    bench::fmt(result.mean_attempts),
                    bench::fmt(result.mean_occupancy)});
  }
  bench::print_table("In-vivo strategy comparison", header, rows);
  bench::print_note(
      "\nReading: absolute turnarounds differ from the affine model "
      "(emergent waits depend on the live backlog), but the *ranking* of "
      "strategies and the attempt counts track the model -- the paper's "
      "analytic methodology orders strategies correctly in vivo.");
  return 0;
}
