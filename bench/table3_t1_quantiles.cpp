// Table 3: the best first reservation t1^bf found by BRUTE-FORCE vs naive
// choices of t1 at the 0.25/0.5/0.75/0.99 quantiles of each distribution.
// A "-" marks a t1 whose Eq. (11) sequence is not strictly increasing (and
// is therefore discarded, as in the paper).

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"
#include "sim/rng.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const core::CostModel model = core::CostModel::reservation_only();

  const std::vector<double> quantiles = {0.25, 0.5, 0.75, 0.99};
  std::vector<std::string> header = {"Distribution", "t1_bf (cost)"};
  for (const double q : quantiles) {
    header.push_back("Q(" + bench::fmt(q) + ") (cost)");
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    core::BruteForceOptions opts;
    opts.grid_points = cfg.bf_grid;
    opts.mc_samples = cfg.mc_samples;
    opts.seed = cfg.seed;
    const auto out = core::brute_force_search(*inst.dist, model, opts);

    const double omniscient = core::omniscient_cost(*inst.dist, model);
    std::vector<std::string> row = {inst.label};
    if (out.found) {
      row.push_back(bench::fmt(out.best_t1) + " (" +
                    bench::fmt(out.best_cost / omniscient) + ")");
    } else {
      row.push_back("-");
    }

    // Cost the quantile candidates with the same sample set (Eq. 13).
    const auto samples =
        sim::draw_samples(*inst.dist, cfg.mc_samples, cfg.seed);
    for (const double q : quantiles) {
      const double t1 = inst.dist->quantile(q);
      const auto rec = core::sequence_from_t1(*inst.dist, model, t1);
      if (!rec.valid) {
        row.push_back(bench::fmt(t1) + " (-)");
        continue;
      }
      const core::SequenceCostEvaluator eval(rec.sequence, model);
      row.push_back(bench::fmt(t1) + " (" +
                    bench::fmt(eval.mean_cost(samples) / omniscient) + ")");
    }
    rows.push_back(std::move(row));
  }

  bench::print_note(
      "Table 3 reproduction -- best t1 from BRUTE-FORCE vs quantile guesses; "
      "(-) marks invalid (non-increasing) sequences.");
  bench::print_table("Table 3: t1 choices and normalized costs", header, rows);
  bench::write_metrics_sidecar("table3_t1_quantiles");
  bench::write_trace_sidecar();
  return 0;
}
