// Extension experiment: spot-style preemptible reservations. As the
// interruption rate rises (in units of 1/mean), the achievable normalized
// cost climbs -- quantifying the discount a spot market must offer -- and
// the optimized first reservation *grows*: idle reserved time carries no
// exposure, while a too-short level must complete its entire run
// uninterrupted before the strategy learns anything (e^{rate*t} expected
// tries), so over-reservation dodges the compounding. Laws are restricted
// to those with finite E[e^{rate X}] at the swept rates; for heavy tails
// the expected cost is genuinely infinite (see core/preemption.hpp).

#include "common.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/omniscient.hpp"
#include "core/preemption.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();
  const std::vector<double> rates = {0.0, 0.2, 0.4, 0.6, 0.8};

  bench::print_note(
      "Extension -- preemptible (spot) reservations, RESERVATIONONLY. "
      "Cells: optimized normalized cost (first reservation / mean). "
      "Rates are per unit of the law's mean.");

  std::vector<std::string> header = {"Distribution"};
  for (const double r : rates) {
    header.push_back("rate=" + bench::fmt(r, 1) + "/mean");
  }

  std::vector<std::vector<std::string>> rows;
  for (const char* label : {"Exponential", "Uniform", "Beta", "BoundedPareto"}) {
    const auto inst = dist::paper_distribution(label);
    const auto& d = *inst->dist;
    const double omniscient = core::omniscient_cost(d, model);
    const auto seed = core::MeanDoubling().generate(d, model);

    std::vector<std::string> row = {inst->label};
    for (const double r : rates) {
      const core::PreemptionModel p{r / d.mean()};
      const auto out = core::optimize_preemption_plan(seed, d, model, p);
      row.push_back(bench::fmt(out.cost_after / omniscient) + " (" +
                    bench::fmt(out.sequence.first() / d.mean()) + ")");
    }
    rows.push_back(std::move(row));
  }
  bench::print_table("Preemption: optimized cost vs interruption rate",
                     header, rows);
  bench::print_note(
      "\nReading: the no-preemption column reproduces the Table 2 level; "
      "each rate step raises the floor and pushes t1 *up* (over-reserving "
      "dodges the e^{rate t} timeout-retry compounding). The printed "
      "multiple of the omniscient cost is the minimum spot discount that "
      "makes preemptible capacity worth taking -- and for heavy-tailed "
      "laws no discount suffices without checkpoints.");
  return 0;
}
