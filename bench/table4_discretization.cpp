// Table 4: normalized expected costs of the two discretization-based DP
// heuristics as the number of samples n grows.

#include "common.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const core::CostModel model = core::CostModel::reservation_only();
  const std::vector<std::size_t> ns = {10, 25, 50, 100, 250, 500, 1000};

  core::EvaluationOptions eval_opts;
  eval_opts.mc.samples = cfg.mc_samples;
  eval_opts.mc.seed = cfg.seed;

  for (const auto scheme : {sim::DiscretizationScheme::kEqualTime,
                            sim::DiscretizationScheme::kEqualProbability}) {
    std::vector<std::string> header = {"Distribution"};
    for (const std::size_t n : ns) header.push_back("n=" + std::to_string(n));

    std::vector<std::vector<std::string>> rows;
    for (const auto& inst : dist::paper_distributions()) {
      std::vector<std::string> row = {inst.label};
      for (const std::size_t n : ns) {
        const core::DiscretizedDp h(
            sim::DiscretizationOptions{n, cfg.epsilon, scheme});
        const auto eval = evaluate_heuristic(h, *inst.dist, model, eval_opts);
        row.push_back(bench::fmt(eval.normalized_mc));
      }
      rows.push_back(std::move(row));
    }
    bench::print_table(std::string("Table 4: ") + sim::to_string(scheme) +
                           " normalized costs vs n (eps=1e-7)",
                       header, rows);
  }
  bench::write_metrics_sidecar("table4_discretization");
  bench::write_trace_sidecar();
  return 0;
}
