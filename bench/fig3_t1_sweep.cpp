// Figure 3: Monte-Carlo normalized cost as a function of the first
// reservation t1, for every Table 1 distribution. Invalid t1 (non-increasing
// Eq. 11 sequences) print as gaps, matching the figure. The sweep is
// downsampled to a printable series; a machine-readable CSV block follows
// each summary so the figure can be re-plotted externally.
//
// The nine per-distribution grid searches are independent, so they fan
// across sim::SweepRunner; outcomes are merged in distribution order and
// the printed report is identical to the serial one.

#include <iostream>

#include "common.hpp"
#include "core/heuristics/brute_force.hpp"
#include "dist/factory.hpp"
#include "sim/sweep.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const core::CostModel model = core::CostModel::reservation_only();
  const std::size_t print_points = 48;

  bench::print_note(
      "Figure 3 reproduction -- normalized cost vs t1 per distribution "
      "(RESERVATIONONLY, common random numbers). '-' = invalid sequence.");

  const auto instances = dist::paper_distributions();
  sim::SweepRunner runner;
  const auto outcomes = runner.run<core::BruteForceOutcome>(
      instances.size(), [&](std::size_t i) {
        core::BruteForceOptions opts;
        opts.grid_points = cfg.bf_grid;
        opts.mc_samples = cfg.mc_samples;
        opts.seed = cfg.seed;
        // The inner t1 grid already fans across the same pool via
        // parallel_for; scenario- and grid-level tasks interleave freely.
        return core::brute_force_search(*instances[i].dist, model, opts,
                                        /*keep_sweep=*/true);
      });

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& inst = instances[i];
    const auto& out = outcomes[i];
    std::cout << "\n# " << inst.label << " (" << inst.dist->describe() << ")";
    if (out.found) {
      std::cout << "  best t1 = " << bench::fmt(out.best_t1, 4)
                << ", normalized cost = "
                << bench::fmt(out.best_cost /
                                  core::omniscient_cost(*inst.dist, model),
                              3);
    }
    std::cout << "\nt1,normalized_cost\n";
    const std::size_t stride =
        std::max<std::size_t>(1, out.sweep.size() / print_points);
    for (std::size_t j = 0; j < out.sweep.size(); j += stride) {
      const auto& p = out.sweep[j];
      std::cout << bench::fmt(p.t1, 4) << ",";
      if (p.valid) {
        std::cout << bench::fmt(p.normalized_cost, 4);
      } else {
        std::cout << "-";
      }
      std::cout << "\n";
    }
  }
  const auto& c = runner.counters();
  std::cout << "\n# sweep: " << c.scenarios << " distributions, "
            << c.threads << " threads, " << c.steals << " steals, "
            << bench::fmt(c.wall_seconds, 3) << " s\n";
  std::cout.flush();
  bench::write_metrics_sidecar("fig3_t1_sweep");
  bench::write_trace_sidecar();
  return 0;
}
