// google-benchmark: construction throughput of each heuristic and the two
// cost evaluators on the Lognormal instantiation (the NeuroHPC family).

#include <benchmark/benchmark.h>

#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/lognormal.hpp"

using namespace sre;

namespace {
const dist::LogNormal& lognormal() {
  static const dist::LogNormal d(3.0, 0.5);
  return d;
}
const core::CostModel kModel = core::CostModel::reservation_only();
}  // namespace

static void BM_MeanByMean(benchmark::State& state) {
  const core::MeanByMean h;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.generate(lognormal(), kModel));
  }
}
BENCHMARK(BM_MeanByMean);

static void BM_MeanStdev(benchmark::State& state) {
  const core::MeanStdev h;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.generate(lognormal(), kModel));
  }
}
BENCHMARK(BM_MeanStdev);

static void BM_MedianByMedian(benchmark::State& state) {
  const core::MedianByMedian h;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.generate(lognormal(), kModel));
  }
}
BENCHMARK(BM_MedianByMedian);

static void BM_RecurrenceFromT1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sequence_from_t1(lognormal(), kModel, 30.0));
  }
}
BENCHMARK(BM_RecurrenceFromT1);

static void BM_BruteForce(benchmark::State& state) {
  core::BruteForceOptions opts;
  opts.grid_points = static_cast<std::size_t>(state.range(0));
  opts.mc_samples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::brute_force_search(lognormal(), kModel, opts));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BruteForce)->Arg(100)->Arg(500)->Arg(2000)->Complexity();

static void BM_DiscretizedDp(benchmark::State& state) {
  const core::DiscretizedDp h(sim::DiscretizationOptions{
      static_cast<std::size_t>(state.range(0)), 1e-7,
      sim::DiscretizationScheme::kEqualProbability});
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.generate(lognormal(), kModel));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DiscretizedDp)->Arg(100)->Arg(250)->Arg(500)->Complexity();

static void BM_AnalyticExpectedCost(benchmark::State& state) {
  const auto seq = core::MeanDoubling().generate(lognormal(), kModel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::expected_cost_analytic(seq, lognormal(), kModel));
  }
}
BENCHMARK(BM_AnalyticExpectedCost);

static void BM_MonteCarloExpectedCost(benchmark::State& state) {
  const auto seq = core::MeanDoubling().generate(lognormal(), kModel);
  sim::MonteCarloOptions opts;
  opts.samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::expected_cost_monte_carlo(seq, lognormal(), kModel, opts));
  }
}
BENCHMARK(BM_MonteCarloExpectedCost)->Arg(1000)->Arg(10000);
