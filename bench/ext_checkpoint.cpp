// Extension experiment (paper Section 7 future work): checkpointed vs
// restart-from-scratch reservations. For each law we compare the optimal
// restart plan (Theorem 5 DP) against the optimal always-checkpoint plan
// (work-level DP) while sweeping the checkpoint overhead C, locating the
// crossover where writing checkpoints stops paying off.

#include "common.hpp"
#include "core/checkpoint.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"
#include "sim/discretize.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();
  const std::vector<double> overheads = {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
  const std::size_t n = 400;

  bench::print_note(
      "Extension -- always-checkpoint DP vs restart DP (RESERVATIONONLY, "
      "discretized n=400, eps=1e-7). Cells: normalized expected cost of the "
      "checkpoint plan; 'restart' column: the no-checkpoint optimum. "
      "R (restart read cost) = C.");

  std::vector<std::string> header = {"Distribution", "restart"};
  for (const double c : overheads) {
    header.push_back("C=" + bench::fmt(c, 2));
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    const sim::DiscretizationOptions disc{
        n, 1e-7, sim::DiscretizationScheme::kEqualProbability};
    const dist::DiscreteDistribution d = sim::discretize(*inst.dist, disc);
    const double omniscient = core::omniscient_cost(d, model);

    std::vector<std::string> row = {inst.label};
    const auto restart = core::dp_optimal_sequence(d, model);
    row.push_back(bench::fmt(restart.expected_cost / omniscient));
    for (const double c : overheads) {
      const auto ckpt =
          core::checkpoint_dp(d, model, core::CheckpointModel{c, c});
      row.push_back(bench::fmt(ckpt.expected_cost / omniscient));
    }
    rows.push_back(std::move(row));
  }
  bench::print_table("Checkpoint extension: normalized cost vs overhead C",
                     header, rows);

  bench::print_note(
      "\nReading: at C=0 checkpointing collapses to the omniscient cost "
      "(failures bank their work, so nothing is ever recomputed); the "
      "advantage shrinks as C grows and inverts once the per-reservation "
      "overhead outweighs the saved re-execution. The crossover scales with "
      "the job-size scale: Beta (support [0,1]) inverts near C~0.05 while "
      "the wide laws (Lognormal mean ~23) still profit at C=1.");
  return 0;
}
