// Table 2 companion (not in the paper): the same heuristic-by-distribution
// sweep under a *full* cost model (alpha=1, beta=1, gamma=0.1 -- pay for
// the reservation, the actual usage, and a per-request overhead), checking
// that the paper's RESERVATIONONLY conclusions carry over to the general
// Eq. (1) setting its theory covers.

#include "common.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const core::CostModel model{1.0, 1.0, 0.1};

  core::BruteForceOptions bf;
  bf.grid_points = cfg.bf_grid;
  bf.mc_samples = cfg.mc_samples;
  std::vector<core::HeuristicPtr> heuristics = {
      std::make_shared<core::BruteForce>(bf),
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanStdev>(),
      std::make_shared<core::MeanDoubling>(),
      std::make_shared<core::MedianByMedian>(),
      std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
          cfg.disc_n, cfg.epsilon, sim::DiscretizationScheme::kEqualTime}),
      std::make_shared<core::DiscretizedDp>(
          sim::DiscretizationOptions{cfg.disc_n, cfg.epsilon,
                                     sim::DiscretizationScheme::kEqualProbability}),
  };

  core::EvaluationOptions eval;
  eval.mc.samples = cfg.mc_samples;
  eval.mc.seed = cfg.seed;

  std::vector<std::string> header = {"Distribution"};
  for (const auto& h : heuristics) header.push_back(h->name());
  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    std::vector<std::string> row = {inst.label};
    for (const auto& h : heuristics) {
      const auto e = evaluate_heuristic(*h, *inst.dist, model, eval);
      row.push_back(bench::fmt(e.normalized_mc));
    }
    rows.push_back(std::move(row));
  }
  bench::print_note(
      "Table 2 companion -- full cost model alpha=1, beta=1, gamma=0.1 "
      "(not in the paper; same methodology).");
  bench::print_table("Normalized expected costs, full cost model", header,
                     rows);
  bench::print_note(
      "\nReading: the beta term halves the normalized penalty of every "
      "heuristic (usage is paid identically by everyone, including the "
      "omniscient baseline), but the ordering of Table 2 is unchanged: "
      "Brute-Force == the DPs < the moment heuristics < Med-by-Med.");
  bench::write_metrics_sidecar("table2b_full_cost");
  bench::write_trace_sidecar();
  return 0;
}
