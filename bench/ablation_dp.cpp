// Ablation: sensitivity of the discretization DP to the truncation quantile
// eps and a comparison of the two discretization schemes at fixed n.
// (Table 4 sweeps n; this sweeps the other knob, eps.)

#include "common.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();
  const std::vector<std::pair<const char*, double>> epsilons = {
      {"1e-2", 1e-2}, {"1e-4", 1e-4}, {"1e-7", 1e-7}, {"1e-10", 1e-10}};
  const std::size_t n = 500;

  core::EvaluationOptions eval_opts;
  eval_opts.mc.samples = 1000;
  eval_opts.mc.seed = 42;

  for (const auto scheme : {sim::DiscretizationScheme::kEqualTime,
                            sim::DiscretizationScheme::kEqualProbability}) {
    std::vector<std::string> header = {"Distribution"};
    for (const auto& [label, _] : epsilons) {
      header.push_back(std::string("eps=") + label);
    }
    std::vector<std::vector<std::string>> rows;
    for (const auto& inst : dist::paper_distributions()) {
      if (inst.dist->support().bounded()) continue;  // eps only truncates tails
      std::vector<std::string> row = {inst.label};
      for (const auto& [label, eps] : epsilons) {
        const core::DiscretizedDp h(sim::DiscretizationOptions{n, eps, scheme});
        const auto eval = evaluate_heuristic(h, *inst.dist, model, eval_opts);
        row.push_back(bench::fmt(eval.normalized_mc));
      }
      rows.push_back(std::move(row));
    }
    bench::print_table(std::string("DP ablation (") + sim::to_string(scheme) +
                           ", n=500): normalized cost vs truncation eps",
                       header, rows);
  }
  return 0;
}
