// Extension ablation: the checkpoint work quantum. A fixed-quantum plan
// (checkpoint every q units of work) sweeps q against the work-level DP
// optimum, exhibiting the classical interval trade-off: tiny quanta drown
// in overhead, huge quanta expose work to reservation misses; the DP beats
// the best fixed quantum by choosing uneven, tail-adapted targets.

#include "common.hpp"
#include "core/checkpoint.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();

  bench::print_note(
      "Extension ablation -- fixed checkpoint quantum q (in units of the "
      "mean) vs the work-level DP. Cells: normalized expected cost; "
      "overheads C = R = 5% of the mean.");

  const std::vector<double> quanta = {0.1, 0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<std::string> header = {"Distribution"};
  for (const double q : quanta) header.push_back("q=" + bench::fmt(q, 2));
  header.push_back("DP");

  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    const auto& d = *inst.dist;
    const core::CheckpointModel ckpt{0.05 * d.mean(), 0.05 * d.mean()};
    const double omniscient = core::omniscient_cost(d, model);
    std::vector<std::string> row = {inst.label};
    for (const double q : quanta) {
      const auto plan =
          core::checkpoint_fixed_quantum(d, ckpt, q * d.mean());
      row.push_back(
          bench::fmt(core::checkpoint_expected_cost(plan, d, model) /
                     omniscient));
    }
    const auto dp = core::checkpoint_discretized_dp(
        d, model, ckpt,
        sim::DiscretizationOptions{400, 1e-7,
                                   sim::DiscretizationScheme::kEqualProbability});
    row.push_back(bench::fmt(
        core::checkpoint_expected_cost(dp, d, model) / omniscient));
    rows.push_back(std::move(row));
  }
  bench::print_table("Checkpoint quantum ablation", header, rows);
  bench::print_note(
      "\nReading: the U-shape in q is the classical checkpoint-interval "
      "trade-off. The work-level DP wins on most laws but *loses* to a "
      "well-chosen fixed quantum on heavy tails (Weibull, Pareto): its "
      "targets are restricted to the discretized support, whose top "
      "equal-probability bin spans a huge range -- one more reason the "
      "continuous-position checkpoint problem is interesting follow-up "
      "work, exactly as the paper's conclusion anticipates.");
  return 0;
}
