// Cold-solve acceleration measurement: the Theorem 5 DP's divide-and-conquer
// (monotone row-minima) variant against the O(n^2) reference, on the same
// instances the serving tier solves cold. Writes machine-readable
// BENCH_coldsolve.json (set SRE_BENCH_JSON to change the path) that CI gates
// with tools/obsdiff:
//
//  * counters.* — dp.rows / dp.argmin_evals deltas around single solves of
//    an integer-valued deterministic instance. Every input is an exact small
//    integer and both fills evaluate one noinline transition expression, so
//    the counts are bit-deterministic across machines and gate *exactly*:
//    any change to the envelope pruning (or an accidental fallback to the
//    quadratic scan) shifts them.
//  * scaling.* — the argmin_evals growth from n=500 to n=1000. Quadratic
//    doubling multiplies evaluations by ~4; the monotone fill must stay
//    under 3.0 (subquadratic=true is an exact bool gate).
//  * timing.* — best-of-reps wall times for both variants on the paper's
//    Lognormal(3, 0.5) at n=1000 plus the end-to-end cold solve
//    (discretize + DP through the batched CDF path). Time-banded in CI;
//    the exact gate is the meets_3x_target bool.
//  * dnc_matches_reference / discretize_uses_batch_path — exact bools: the
//    fast path agrees bit-for-bit, and discretization actually routes
//    through the batch evaluation API (counter deltas are nonzero).

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/discrete.hpp"
#include "dist/factory.hpp"
#include "obs/metrics.hpp"
#include "sim/discretize.hpp"

using namespace sre;

namespace {

// splitmix64: tiny, reproducible, and integer-only — no libm in sight.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A discrete law whose values and masses are small exact integers:
/// irregular spacing and colliding suffix masses (envelope stress), yet
/// every transition cost is a deterministic IEEE computation on every
/// machine, making the evaluation counts safe to gate exactly.
dist::DiscreteDistribution deterministic_instance(std::size_t n) {
  std::uint64_t state = 0x5eedc01d501fe5ull;
  std::vector<double> values, masses;
  double cur = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cur += static_cast<double>(1 + (splitmix64(state) % 7));
    values.push_back(cur);
    masses.push_back(static_cast<double>(1 + (splitmix64(state) % 4)));
  }
  return dist::DiscreteDistribution(std::move(values), std::move(masses));
}

struct CounterDeltas {
  std::uint64_t rows = 0;
  std::uint64_t argmin_evals = 0;
};

CounterDeltas counted_solve(const dist::DiscreteDistribution& d,
                            const core::CostModel& m, sim::DpVariant variant) {
  obs::Counter& rows = obs::counter("core.dp.rows");
  obs::Counter& evals = obs::counter("core.dp.argmin_evals");
  const std::uint64_t r0 = rows.value();
  const std::uint64_t e0 = evals.value();
  (void)core::dp_optimal_sequence(d, m, {}, variant);
  return {rows.value() - r0, evals.value() - e0};
}

template <typename Fn>
double best_of_seconds(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

}  // namespace

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  (void)cfg;  // applies SRE_OBS / SRE_TRACE; sizes here are fixed by design
  const bool fast = []() {
    const char* v = std::getenv("SRE_FAST");
    return v != nullptr && v[0] == '1';
  }();
  const int reps = fast ? 3 : 10;
  const core::CostModel model{1.0, 1.0, 1.0};

  // --- Count-exact section: deterministic integer instances. -------------
  const auto small = deterministic_instance(500);
  const auto large = deterministic_instance(1000);
  const auto ref_large =
      counted_solve(large, model, sim::DpVariant::kReference);
  const auto dnc_small =
      counted_solve(small, model, sim::DpVariant::kDivideAndConquer);
  const auto dnc_large =
      counted_solve(large, model, sim::DpVariant::kDivideAndConquer);
  const double growth =
      dnc_small.argmin_evals > 0
          ? static_cast<double>(dnc_large.argmin_evals) /
                static_cast<double>(dnc_small.argmin_evals)
          : 0.0;
  // Doubling n multiplies a quadratic scan's evaluations by ~4; the
  // monotone fill must stay well under that.
  const bool subquadratic = growth > 0.0 && growth < 3.0;

  // --- Differential spot check on the timing instance. -------------------
  const auto inst = dist::paper_distribution("Lognormal");
  if (!inst.has_value()) {
    std::cerr << "coldsolve: Lognormal missing from the paper table\n";
    return 1;
  }
  sim::DiscretizationOptions opts;
  opts.n = 1000;
  opts.epsilon = 1e-7;
  opts.scheme = sim::DiscretizationScheme::kEqualProbability;

  obs::Counter& cdf_calls = obs::counter("dist.cdf.batch_calls");
  obs::Counter& quantile_calls = obs::counter("dist.quantile.batch_calls");
  const std::uint64_t c0 = cdf_calls.value();
  const std::uint64_t q0 = quantile_calls.value();
  const dist::DiscreteDistribution disc = sim::discretize(*inst->dist, opts);
  const std::uint64_t batch_cdf_calls = cdf_calls.value() - c0;
  const std::uint64_t batch_quantile_calls = quantile_calls.value() - q0;
  const bool uses_batch_path = batch_cdf_calls + batch_quantile_calls > 0;

  const auto ref = core::dp_optimal_sequence(disc, model, {},
                                             sim::DpVariant::kReference);
  const auto dnc = core::dp_optimal_sequence(
      disc, model, {}, sim::DpVariant::kDivideAndConquer);
  bool identical = ref.indices == dnc.indices &&
                   ref.expected_cost == dnc.expected_cost &&
                   ref.sequence.values() == dnc.sequence.values();

  // --- Timing section: best-of-reps cold solves at the paper scale. ------
  const double ref_seconds = best_of_seconds(reps, [&] {
    (void)core::dp_optimal_sequence(disc, model, {},
                                    sim::DpVariant::kReference);
  });
  const double dnc_seconds = best_of_seconds(reps, [&] {
    (void)core::dp_optimal_sequence(disc, model, {},
                                    sim::DpVariant::kDivideAndConquer);
  });
  const double end_to_end_seconds = best_of_seconds(reps, [&] {
    (void)core::DiscretizedDp(opts).generate(*inst->dist, model);
  });
  const double speedup = dnc_seconds > 0.0 ? ref_seconds / dnc_seconds : 0.0;
  const bool meets_target = speedup >= 3.0;

  const char* path_env = std::getenv("SRE_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_coldsolve.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "coldsolve: cannot write " << path << "\n";
  }
  out << "{\n"
      << "  \"counters\": {\n"
      << "    \"dp.rows.reference_n1000\": " << ref_large.rows << ",\n"
      << "    \"dp.rows.dnc_n1000\": " << dnc_large.rows << ",\n"
      << "    \"dp.argmin_evals.reference_n1000\": " << ref_large.argmin_evals
      << ",\n"
      << "    \"dp.argmin_evals.dnc_n500\": " << dnc_small.argmin_evals
      << ",\n"
      << "    \"dp.argmin_evals.dnc_n1000\": " << dnc_large.argmin_evals
      << ",\n"
      << "    \"cdf.batch_calls_discretize_n1000\": " << batch_cdf_calls
      << ",\n"
      << "    \"quantile.batch_calls_discretize_n1000\": "
      << batch_quantile_calls << "\n"
      << "  },\n"
      << "  \"scaling\": {\n"
      << "    \"dnc_evals_growth_500_to_1000\": " << bench::fmt(growth, 4)
      << ",\n"
      << "    \"subquadratic\": " << (subquadratic ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"timing\": {\n"
      << "    \"reference_solve_ns\": " << bench::fmt(ref_seconds * 1e9, 0)
      << ",\n"
      << "    \"dnc_solve_ns\": " << bench::fmt(dnc_seconds * 1e9, 0) << ",\n"
      << "    \"end_to_end_cold_solve_ns\": "
      << bench::fmt(end_to_end_seconds * 1e9, 0) << ",\n"
      << "    \"speedup_dnc_vs_reference\": " << bench::fmt(speedup, 2)
      << "\n"
      << "  },\n"
      << "  \"dnc_matches_reference\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"discretize_uses_batch_path\": "
      << (uses_batch_path ? "true" : "false") << ",\n"
      << "  \"meets_3x_target\": " << (meets_target ? "true" : "false")
      << "\n}\n";
  out.close();

  std::cout << "cold solve at n=1000: reference "
            << bench::fmt(ref_seconds * 1e6, 1) << " us ("
            << ref_large.argmin_evals << " evals), d&c "
            << bench::fmt(dnc_seconds * 1e6, 1) << " us ("
            << dnc_large.argmin_evals << " evals), speedup "
            << bench::fmt(speedup, 2) << "x, evals growth x2 n -> "
            << bench::fmt(growth, 2) << ", identical="
            << (identical ? "true" : "false") << " -> "
            << (out.fail() ? "(write failed: " + path + ")" : path) << "\n";

  bench::write_metrics_sidecar("coldsolve");
  bench::write_trace_sidecar();
  return identical && subquadratic ? 0 : 1;
}
