// Extension experiment: how should a trace be turned into a distribution?
// The paper fits a parametric LogNormal (Fig. 1); alternatives are the
// histogram interpolation of the trace and the raw empirical law. Plans are
// built from each model at several trace sizes and always *evaluated
// against the truth*, measuring both model risk and sample efficiency.

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/omniscient.hpp"
#include "dist/lognormal.hpp"
#include "platform/trace.hpp"
#include "sim/rng.hpp"

using namespace sre;

namespace {

double plan_and_evaluate(const dist::Distribution& model_law,
                         const dist::Distribution& truth,
                         const core::CostModel& m) {
  const core::DiscretizedDp planner(sim::DiscretizationOptions{
      500, 1e-7, sim::DiscretizationScheme::kEqualProbability});
  const auto plan = planner.generate(model_law, m);
  return core::expected_cost_analytic(plan, truth, m) /
         core::omniscient_cost(truth, m);
}

}  // namespace

int main() {
  const dist::LogNormal truth(platform::kVbmqaMu, platform::kVbmqaSigma);
  const core::CostModel m = core::CostModel::reservation_only();

  bench::print_note(
      "Extension -- trace-to-distribution pipelines. Plans built from each "
      "model of an n-run trace, costs evaluated on the true law "
      "(LogNormal VBMQA), normalized by the omniscient cost.");
  bench::print_note("Clairvoyant (plans on the truth itself): " +
                    bench::fmt(plan_and_evaluate(truth, truth, m), 3));

  std::vector<std::string> header = {"trace runs", "LogNormal fit",
                                     "histogram(64)", "empirical"};
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t runs : {50u, 200u, 1000u, 5000u}) {
    platform::TraceConfig cfg;
    cfg.runs = runs;
    cfg.seed = 100 + runs;
    const auto trace = platform::synthesize_trace(cfg);

    const auto parametric = platform::distribution_from_trace(trace);
    const auto histogram = platform::interpolated_distribution(trace, 64);
    const auto empirical = platform::empirical_distribution(trace);

    rows.push_back({std::to_string(runs),
                    bench::fmt(plan_and_evaluate(*parametric, truth, m), 3),
                    bench::fmt(plan_and_evaluate(*histogram, truth, m), 3),
                    bench::fmt(plan_and_evaluate(*empirical, truth, m), 3)});
  }
  bench::print_table("Trace pipelines: normalized cost on the truth", header,
                     rows);
  bench::print_note(
      "\nReading: with LogNormal ground truth the parametric fit is most "
      "sample-efficient (correct model bias, near-clairvoyant at 50 runs); "
      "the nonparametric pipelines catch up by a few hundred runs and all "
      "three are indistinguishable at trace sizes like Fig. 1's 5000 runs -- "
      "the paper's parametric choice is safe, and the nonparametric routes "
      "derisk it when the trace is not LogNormal (see ext_multimodal).");
  return 0;
}
