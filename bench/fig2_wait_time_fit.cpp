// Figure 2: affine fit of HPC queue waiting time vs requested runtime. The
// Intrepid logs are not redistributable; we synthesize per-group job logs
// whose mean wait follows the paper's fitted affine law (alpha=0.95,
// gamma=1.05 h) with per-job noise, cluster them into 20 groups and refit,
// exactly as the paper's pipeline does (see DESIGN.md, substitutions).

#include "common.hpp"
#include "platform/hpc.hpp"

using namespace sre;

int main() {
  struct Row {
    const char* label;
    std::size_t processors;  // cosmetic: the paper shows 204 and 409
    platform::WaitTimeModel truth;
  };
  const std::vector<Row> systems = {
      {"Intrepid-like, 204 procs", 204, {0.80, 0.90}},
      {"Intrepid-like, 409 procs", 409, {0.95, 1.05}},
  };

  std::vector<std::string> header = {"System",     "groups", "jobs",
                                     "true slope", "true intercept",
                                     "fit slope",  "fit intercept", "R^2"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& sys : systems) {
    platform::QueueLogConfig cfg;
    cfg.truth = sys.truth;
    cfg.groups = 20;
    cfg.jobs_per_group = 100;
    cfg.seed = 7 + sys.processors;
    const auto log = platform::synthesize_queue_log(cfg);
    const auto fit = platform::fit_queue_log(log, cfg.groups);
    rows.push_back({sys.label, std::to_string(cfg.groups),
                    std::to_string(log.size()), bench::fmt(sys.truth.slope),
                    bench::fmt(sys.truth.intercept),
                    bench::fmt(fit.model.slope), bench::fmt(fit.model.intercept),
                    bench::fmt(fit.r_squared, 4)});
  }
  bench::print_note(
      "Figure 2 reproduction -- synthetic scheduler logs, 20 request-size "
      "groups, weighted affine refit (substitution for Intrepid logs).");
  bench::print_table("Figure 2: waiting-time fits", header, rows);

  // The per-group series of the 409-processor system (the one Section 5.3
  // uses), printed as CSV for external plotting.
  platform::QueueLogConfig cfg;
  cfg.truth = systems[1].truth;
  cfg.groups = 20;
  cfg.jobs_per_group = 100;
  cfg.seed = 7 + 409;
  const auto fit = platform::fit_queue_log(platform::synthesize_queue_log(cfg),
                                           cfg.groups);
  bench::print_note("\nrequested_h,mean_wait_h (409-proc groups)");
  for (std::size_t i = 0; i < fit.group_requested.size(); ++i) {
    bench::print_note(bench::fmt(fit.group_requested[i], 3) + "," +
                      bench::fmt(fit.group_mean_wait[i], 3));
  }
  return 0;
}
