#include "common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"

namespace sre::bench {

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  const char* fast = std::getenv("SRE_FAST");
  if (fast != nullptr && std::string(fast) == "1") {
    cfg.bf_grid = 500;
    cfg.mc_samples = 400;
    cfg.disc_n = 200;
  }
  const char* obs_env = std::getenv("SRE_OBS");
  if (obs_env != nullptr && std::string(obs_env) == "0") {
    obs::set_enabled(false);
  }
  obs::recorder::arm_from_env();
  return cfg;
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void print_table(const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
    for (const auto& row : rows) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::cout << "\n== " << title << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header.size(); ++c) {
      const std::string& cell = (c < row.size()) ? row[c] : std::string();
      std::cout << (c == 0 ? "" : "  ") << std::left
                << std::setw(static_cast<int>(widths[c])) << cell;
    }
    std::cout << "\n";
  };
  print_row(header);
  std::size_t total = header.size() > 0 ? 2 * (header.size() - 1) : 0;
  for (const auto w : widths) total += w;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows) print_row(row);
  std::cout.flush();
}

void print_note(const std::string& note) { std::cout << note << "\n"; }

std::string sweep_summary(const core::ScenarioSweepReport& report) {
  const auto& c = report.cache;
  const std::uint64_t lookups = c.hits + c.misses;
  const double hit_pct =
      lookups > 0 ? 100.0 * static_cast<double>(c.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  std::ostringstream os;
  os << "sweep: " << report.sweep.scenarios << " scenarios, "
     << report.sweep.threads << " threads, "
     << fmt(report.sweep.wall_seconds, 3) << " s, " << report.sweep.steals
     << " steals; cdf cache: " << fmt(hit_pct, 1) << "% hits ("
     << c.hits << "/" << lookups << "), " << c.tables_built << " tables, "
     << c.table_reuses << " reuses";
  return os.str();
}

bool write_metrics_sidecar(const std::string& name) {
  if (!obs::compiled_in() || !obs::enabled()) return false;
  std::string path = "BENCH_" + name + "_metrics.json";
  if (const char* dir = std::getenv("SRE_BENCH_METRICS_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  if (!obs::write_json(path)) {
    std::cerr << "bench: cannot write metrics sidecar " << path << "\n";
    return false;
  }
  std::cout << "metrics sidecar -> " << path << "\n";
  return true;
}

bool write_trace_sidecar() {
  if (!obs::recorder::armed()) return false;
  const std::uint64_t events = obs::recorder::recorded_events();
  const std::uint64_t dropped = obs::recorder::dropped_events();
  if (!obs::recorder::stop_and_write()) {
    std::cerr << "bench: cannot write trace (is SRE_TRACE set?)\n";
    return false;
  }
  const char* path = std::getenv("SRE_TRACE");
  std::cout << "trace -> " << (path != nullptr ? path : "?") << " ("
            << events << " events, " << dropped
            << " dropped); open in https://ui.perfetto.dev\n";
  return true;
}

}  // namespace sre::bench
