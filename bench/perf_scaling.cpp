// google-benchmark: asymptotic scaling of the substrate pieces -- the
// Theorem 5 DP is O(n^2) in the number of discrete samples; discretization
// is O(n) quantile calls; the event simulator is O(attempts) per job.
//
// Before the microbenchmarks run, main() drives a 144-scenario campaign
// (9 distributions x 4 cost models x 4 solvers) through sim::SweepRunner
// twice -- serial baseline, then parallel -- verifies the outcomes are
// numerically identical, and writes machine-readable BENCH_sweep.json
// (scenarios/sec, speedup vs serial, cache hit rate, steal rate) plus a
// BENCH_perf_scaling_metrics.json obs:: sidecar (per-heuristic span
// aggregates, CdfCache hit/miss, pool steal/idle counters) so the perf
// trajectory can be tracked across PRs. Set SRE_BENCH_JSON to change the
// output path, SRE_SKIP_SWEEP=1 to skip straight to the benchmarks,
// SRE_OBS=0 to suppress metrics collection and the sidecar.
//
// SRE_CHAOS=1 switches to the chaos-drill mode (no microbenchmarks): the
// campaign runs fault-free, then again under a seeded sim::FaultPlan with
// resilient execution, verifies every non-faulted outcome is byte-identical
// to the clean run, and writes BENCH_chaos.json plus a metrics sidecar with
// the failure counters. Exit code 3 — and only 3 — when the degradation
// budget (SRE_CHAOS_BUDGET, default 0.5) is exceeded or a surviving outcome
// drifted; a within-budget drill exits 0. The injected fault mix comes from
// the SRE_FAULT_* environment knobs (FaultSpec::from_env), defaulting to a
// 10% solver-exception rate when none are set.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "obs/metrics.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/heuristics/refined_dp.hpp"
#include "core/scenario_sweep.hpp"
#include "dist/exponential.hpp"
#include "dist/factory.hpp"
#include "sim/discretize.hpp"
#include "sim/event_sim.hpp"
#include "sim/rng.hpp"

using namespace sre;

static void BM_DpQuadratic(benchmark::State& state) {
  const dist::Exponential e(1.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto disc = sim::discretize(
      e, sim::DiscretizationOptions{n, 1e-7,
                                    sim::DiscretizationScheme::kEqualProbability});
  const core::CostModel m = core::CostModel::reservation_only();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dp_optimal_sequence(disc, m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DpQuadratic)->RangeMultiplier(2)->Range(64, 2048)->Complexity(
    benchmark::oNSquared);

static void BM_DiscretizeLinear(benchmark::State& state) {
  const dist::Exponential e(1.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::discretize(
        e, sim::DiscretizationOptions{
               n, 1e-7, sim::DiscretizationScheme::kEqualTime}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DiscretizeLinear)->RangeMultiplier(4)->Range(64, 4096)->Complexity(
    benchmark::oN);

static void BM_DiscretizeTabulated(benchmark::State& state) {
  // Same grid as BM_DiscretizeLinear but served from a TabulatedCdf: the
  // gap between the two is the per-rediscretization CDF/quantile cost the
  // sweep cache eliminates.
  const dist::Exponential e(1.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  const dist::TabulatedCdf tab(e, n, 1e-7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::discretize(
        e,
        sim::DiscretizationOptions{n, 1e-7,
                                   sim::DiscretizationScheme::kEqualTime},
        &tab));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DiscretizeTabulated)->RangeMultiplier(4)->Range(64, 4096)
    ->Complexity(benchmark::oN);

static void BM_EventSimPerJob(benchmark::State& state) {
  std::vector<double> res{1.0};
  while (res.size() < 32) res.push_back(res.back() * 1.5);
  const sim::PlatformSimulator simulator(res, {1.0, 1.0, 0.1});
  const dist::Exponential e(0.2);
  sim::Rng rng = sim::make_rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run_job(e.sample(rng)));
  }
}
BENCHMARK(BM_EventSimPerJob);

static void BM_SampleDraw(benchmark::State& state) {
  const dist::Exponential e(1.0);
  sim::Rng rng = sim::make_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.sample(rng));
  }
}
BENCHMARK(BM_SampleDraw);

namespace {

std::vector<core::SweepScenario> sweep_scenarios(const bench::BenchConfig& cfg) {
  const std::size_t dp_n = std::max<std::size_t>(64, cfg.disc_n / 2);
  sim::DiscretizationOptions eq_time{dp_n, cfg.epsilon,
                                     sim::DiscretizationScheme::kEqualTime};
  sim::DiscretizationOptions eq_prob{
      dp_n, cfg.epsilon, sim::DiscretizationScheme::kEqualProbability};
  core::RefinedDpOptions refined;
  refined.disc.n = std::max<std::size_t>(64, dp_n / 2);
  refined.disc.epsilon = cfg.epsilon;

  const std::vector<core::HeuristicPtr> solvers = {
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::DiscretizedDp>(eq_time),
      std::make_shared<core::DiscretizedDp>(eq_prob),
      std::make_shared<core::RefinedDp>(refined),
  };
  const std::vector<std::pair<std::string, core::CostModel>> models = {
      {"ReservationOnly", core::CostModel::reservation_only()},
      {"PayAsYouGo", {1.0, 1.0, 0.0}},
      {"WithOverhead", {1.0, 1.0, 0.1}},
      {"HpcLike", {2.0, 1.0, 0.5}},
  };
  return core::make_scenario_grid(dist::paper_distributions(), models, solvers);
}

bool outcomes_identical(const std::vector<core::ScenarioOutcome>& a,
                        const std::vector<core::ScenarioOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i].eval;
    const auto& y = b[i].eval;
    if (x.expected_cost_mc != y.expected_cost_mc ||
        x.expected_cost_analytic != y.expected_cost_analytic ||
        x.t1 != y.t1 || x.sequence.values() != y.sequence.values()) {
      return false;
    }
  }
  return true;
}

void run_sweep_benchmark() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const auto scenarios = sweep_scenarios(cfg);

  core::EvaluationOptions eval;
  eval.mc.samples = cfg.mc_samples;
  eval.mc.seed = cfg.seed;
  // Scenario-level parallelism only: the serial baseline must be a true
  // single-thread run, and one scenario per worker is the scaling story.
  eval.mc.parallel = false;

  sim::SweepOptions serial_opts;
  serial_opts.serial = true;
  const auto serial = core::run_scenario_sweep(scenarios, eval, serial_opts);

  const auto parallel = core::run_scenario_sweep(scenarios, eval, {});

  const bool identical = outcomes_identical(serial.outcomes, parallel.outcomes);
  const double speedup =
      parallel.sweep.wall_seconds > 0.0
          ? serial.sweep.wall_seconds / parallel.sweep.wall_seconds
          : 0.0;
  const double rate = parallel.sweep.wall_seconds > 0.0
                          ? static_cast<double>(scenarios.size()) /
                                parallel.sweep.wall_seconds
                          : 0.0;
  const auto& cache = parallel.cache;
  const double hit_rate =
      cache.hits + cache.misses > 0
          ? static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses)
          : 0.0;
  const double steal_rate =
      parallel.sweep.batches > 0
          ? static_cast<double>(parallel.sweep.steals) /
                static_cast<double>(parallel.sweep.batches)
          : 0.0;

  // Per-scenario wall-time percentiles over the whole campaign (serial +
  // parallel legs), interpolated from the "sim.sweep.scenario_seconds"
  // histogram; tail latency is where a single slow grid cell hides.
  double p50_ns = 0.0, p95_ns = 0.0, p99_ns = 0.0;
  const auto hists = sre::obs::histograms_snapshot();
  if (const auto it = hists.find("sim.sweep.scenario_seconds");
      it != hists.end() && it->second.count > 0) {
    p50_ns = it->second.quantile(0.50) * 1e9;
    p95_ns = it->second.quantile(0.95) * 1e9;
    p99_ns = it->second.quantile(0.99) * 1e9;
  }

  const char* path_env = std::getenv("SRE_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_sweep.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "perf_scaling: cannot write " << path << "\n";
  }
  out << "{\n"
      << "  \"scenarios\": " << scenarios.size() << ",\n"
      << "  \"threads\": " << parallel.sweep.threads << ",\n"
      << "  \"batches\": " << parallel.sweep.batches << ",\n"
      << "  \"steals\": " << parallel.sweep.steals << ",\n"
      << "  \"steal_rate\": " << bench::fmt(steal_rate, 4) << ",\n"
      << "  \"serial_seconds\": " << bench::fmt(serial.sweep.wall_seconds, 6)
      << ",\n"
      << "  \"parallel_seconds\": "
      << bench::fmt(parallel.sweep.wall_seconds, 6) << ",\n"
      << "  \"speedup_vs_serial\": " << bench::fmt(speedup, 3) << ",\n"
      << "  \"scenarios_per_sec\": " << bench::fmt(rate, 2) << ",\n"
      << "  \"cache_hits\": " << cache.hits << ",\n"
      << "  \"cache_misses\": " << cache.misses << ",\n"
      << "  \"cache_hit_rate\": " << bench::fmt(hit_rate, 4) << ",\n"
      << "  \"tables_built\": " << cache.tables_built << ",\n"
      << "  \"table_reuses\": " << cache.table_reuses << ",\n"
      << "  \"scenario_wall_ns\": {\n"
      << "    \"p50\": " << bench::fmt(p50_ns, 0) << ",\n"
      << "    \"p95\": " << bench::fmt(p95_ns, 0) << ",\n"
      << "    \"p99\": " << bench::fmt(p99_ns, 0) << "\n"
      << "  },\n"
      << "  \"identical_to_serial\": " << (identical ? "true" : "false")
      << "\n}\n";
  out.close();

  std::cout << "SweepRunner campaign: " << scenarios.size() << " scenarios, "
            << parallel.sweep.threads << " threads, speedup "
            << bench::fmt(speedup, 2) << "x, cache hit rate "
            << bench::fmt(100.0 * hit_rate, 1) << "%, steal rate "
            << bench::fmt(steal_rate, 2) << " steals/batch, identical="
            << (identical ? "true" : "false") << " -> "
            << (out.fail() ? "(write failed: " + path + ")" : path) << "\n";
}

/// SRE_CHAOS=1: the chaos drill. Returns the process exit code.
int run_chaos_drill() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const auto scenarios = sweep_scenarios(cfg);

  core::EvaluationOptions eval;
  eval.mc.samples = cfg.mc_samples;
  eval.mc.seed = cfg.seed;
  eval.mc.parallel = false;

  // Fault-free reference, then the same campaign under injection.
  const auto clean = core::run_scenario_sweep(scenarios, eval, {});

  sim::FaultSpec spec = sim::FaultSpec::from_env();
  if (!spec.enabled()) {
    spec.seed = cfg.seed;
    spec.solver_exception_prob = 0.1;
  }
  core::ResilientSweepOptions res;
  res.faults = sim::FaultPlan(spec);
  const char* budget_env = std::getenv("SRE_CHAOS_BUDGET");
  res.resilience.failure_budget =
      budget_env != nullptr ? std::atof(budget_env) : 0.5;
  const auto chaos =
      core::run_scenario_sweep_resilient(scenarios, eval, {}, res);

  // Every scenario the drill did not kill must be byte-identical to the
  // fault-free run: injection happens before evaluation, so survivors see
  // exactly the fault-free computation.
  bool partial_identical = chaos.outcomes.size() == clean.outcomes.size();
  std::size_t survivors = 0;
  for (std::size_t i = 0; partial_identical && i < chaos.outcomes.size();
       ++i) {
    if (!chaos.outcomes[i].ok) continue;
    ++survivors;
    const auto& x = chaos.outcomes[i].eval;
    const auto& y = clean.outcomes[i].eval;
    if (x.expected_cost_mc != y.expected_cost_mc ||
        x.expected_cost_analytic != y.expected_cost_analytic ||
        x.t1 != y.t1 || x.sequence.values() != y.sequence.values()) {
      partial_identical = false;
      std::cerr << "perf_scaling: chaos survivor " << i
                << " drifted from the fault-free run\n";
    }
  }

  const auto& report = chaos.failures;
  const bool failed = report.budget_exceeded || !partial_identical;

  const char* path_env = std::getenv("SRE_BENCH_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_chaos.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "perf_scaling: cannot write " << path << "\n";
  }
  out << "{\n"
      << "  \"scenarios\": " << report.scenarios << ",\n"
      << "  \"survivors\": " << survivors << ",\n"
      << "  \"failed\": " << report.failed << ",\n"
      << "  \"retries\": " << report.retries << ",\n"
      << "  \"failure_budget\": " << bench::fmt(report.failure_budget, 4)
      << ",\n"
      << "  \"budget_exceeded\": " << (report.budget_exceeded ? "true" : "false")
      << ",\n"
      << "  \"partial_identical_to_clean\": "
      << (partial_identical ? "true" : "false") << ",\n"
      << "  \"failure_report\": " << report.to_json() << "\n"
      << "}\n";
  out.close();

  std::cout << "Chaos drill: " << report.scenarios << " scenarios, "
            << report.failed << " failed (budget "
            << bench::fmt(report.failure_budget, 2) << " -> "
            << (report.budget_exceeded ? "EXCEEDED" : "ok") << "), "
            << report.retries << " retries, survivors identical="
            << (partial_identical ? "true" : "false") << " -> "
            << (out.fail() ? "(write failed: " + path + ")" : path) << "\n";
  return failed ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* chaos = std::getenv("SRE_CHAOS");
  if (chaos != nullptr && std::string(chaos) == "1") {
    const int rc = run_chaos_drill();
    bench::write_metrics_sidecar("chaos");
    bench::write_trace_sidecar();
    return rc;
  }
  const char* skip = std::getenv("SRE_SKIP_SWEEP");
  if (skip == nullptr || std::string(skip) != "1") {
    run_sweep_benchmark();
    bench::write_metrics_sidecar("perf_scaling");
    bench::write_trace_sidecar();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
