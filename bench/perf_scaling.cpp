// google-benchmark: asymptotic scaling of the substrate pieces -- the
// Theorem 5 DP is O(n^2) in the number of discrete samples; discretization
// is O(n) quantile calls; the event simulator is O(attempts) per job.

#include <benchmark/benchmark.h>

#include "core/heuristics/dp_discretization.hpp"
#include "dist/exponential.hpp"
#include "sim/discretize.hpp"
#include "sim/event_sim.hpp"
#include "sim/rng.hpp"

using namespace sre;

static void BM_DpQuadratic(benchmark::State& state) {
  const dist::Exponential e(1.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto disc = sim::discretize(
      e, sim::DiscretizationOptions{n, 1e-7,
                                    sim::DiscretizationScheme::kEqualProbability});
  const core::CostModel m = core::CostModel::reservation_only();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dp_optimal_sequence(disc, m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DpQuadratic)->RangeMultiplier(2)->Range(64, 2048)->Complexity(
    benchmark::oNSquared);

static void BM_DiscretizeLinear(benchmark::State& state) {
  const dist::Exponential e(1.0);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::discretize(
        e, sim::DiscretizationOptions{
               n, 1e-7, sim::DiscretizationScheme::kEqualTime}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DiscretizeLinear)->RangeMultiplier(4)->Range(64, 4096)->Complexity(
    benchmark::oN);

static void BM_EventSimPerJob(benchmark::State& state) {
  std::vector<double> res{1.0};
  while (res.size() < 32) res.push_back(res.back() * 1.5);
  const sim::PlatformSimulator simulator(res, {1.0, 1.0, 0.1});
  const dist::Exponential e(0.2);
  sim::Rng rng = sim::make_rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run_job(e.sample(rng)));
  }
}
BENCHMARK(BM_EventSimPerJob);

static void BM_SampleDraw(benchmark::State& state) {
  const dist::Exponential e(1.0);
  sim::Rng rng = sim::make_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.sample(rng));
  }
}
BENCHMARK(BM_SampleDraw);
