// Extension experiment: reservations with variable width (processors x
// time), the paper's first future-work item. Sweeps the processor count
// under the turnaround pricing policy for several Amdahl profiles and
// contention levels, printing the cost curves and the interior optimum.

#include "common.hpp"
#include "core/variable_resources.hpp"
#include "dist/lognormal.hpp"

using namespace sre;

int main() {
  const dist::LogNormal work(3.0, 0.5);  // sequential-work law (hours)

  bench::print_note(
      "Extension -- variable resources: optimal expected turnaround vs "
      "processor count. Work law LogNormal(3, 0.5); wait model alpha=0.95, "
      "gamma=1.05 scaled by (1 + contention ln p); runtime contracted by "
      "Amdahl f(p) = sigma + (1-sigma)/p.");

  const std::vector<std::size_t> candidates = {1, 2, 4, 8, 16, 32, 64, 128};
  std::vector<std::string> header = {"sigma", "contention"};
  for (const std::size_t p : candidates) {
    header.push_back("p=" + std::to_string(p));
  }
  header.push_back("best p");

  std::vector<std::vector<std::string>> rows;
  for (const double sigma : {0.0, 0.05, 0.2}) {
    for (const double contention : {0.1, 0.5, 1.0}) {
      core::VariableResourceOptions opts;
      opts.pricing = core::ResourcePricing::kTurnaround;
      opts.amdahl.sequential_fraction = sigma;
      opts.contention = contention;
      opts.base = core::CostModel{0.95, 1.0, 1.05};
      opts.candidates = candidates;
      const auto sweep = core::processor_sweep(work, opts);
      const auto best = core::optimize_processors(work, opts);

      std::vector<std::string> row = {bench::fmt(sigma),
                                      bench::fmt(contention)};
      for (const auto& plan : sweep) {
        row.push_back(bench::fmt(plan.expected_cost, 1));
      }
      row.push_back(std::to_string(best.processors));
      rows.push_back(std::move(row));
    }
  }
  bench::print_table("Variable resources: expected turnaround (hours)",
                     header, rows);
  bench::print_note(
      "\nReading: perfect scaling + low contention drives p to the top of "
      "the range; a 20% sequential fraction or heavy queue contention pulls "
      "the optimum back toward small widths -- the combination the paper's "
      "future-work remark anticipates.");

  // Sanity anchor: CPU-hour pricing always prefers p = 1 under Amdahl.
  core::VariableResourceOptions cpu;
  cpu.pricing = core::ResourcePricing::kCpuHours;
  cpu.amdahl.sequential_fraction = 0.05;
  cpu.candidates = candidates;
  const auto best = core::optimize_processors(work, cpu);
  bench::print_note("CPU-hour pricing sanity anchor: best p = " +
                    std::to_string(best.processors) + " (expected: 1)");
  return 0;
}
