// Ablation: the Refined-DP hybrid (discretized DP seed + continuous golden
// refinement of t1) against its two parents, with the compute budget each
// one spends (candidate-sequence evaluations).

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/refined_dp.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const core::CostModel m = core::CostModel::reservation_only();

  bench::print_note(
      "Ablation -- Refined-DP (n=500 DP seed + 64-point continuous "
      "refinement) vs the n=1000 DP and the M=5000 brute force; analytic "
      "evaluation throughout.");

  std::vector<std::string> header = {"Distribution", "DP n=1000",
                                     "Refined-DP",   "Brute-Force M=5000"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    const double omniscient = core::omniscient_cost(*inst.dist, m);
    const core::DiscretizedDp dp(sim::DiscretizationOptions{
        1000, 1e-7, sim::DiscretizationScheme::kEqualProbability});
    const core::RefinedDp refined;
    core::BruteForceOptions bf;
    bf.grid_points = 5000;
    bf.analytic_eval = true;
    const auto out = core::brute_force_search(*inst.dist, m, bf);

    rows.push_back(
        {inst.label,
         bench::fmt(core::expected_cost_analytic(
                        dp.generate(*inst.dist, m), *inst.dist, m) /
                    omniscient, 3),
         bench::fmt(core::expected_cost_analytic(
                        refined.generate(*inst.dist, m), *inst.dist, m) /
                    omniscient, 3),
         out.found ? bench::fmt(out.best_cost / omniscient, 3) : "-"});
  }
  bench::print_table("Refined-DP ablation (normalized costs)", header, rows);
  return 0;
}
