// Section 3.5: the Exp(1) RESERVATIONONLY optimum. Reproduces the constant
// s1 ~ 0.74219 ("about three quarters of the mean"), the optimal expected
// cost E_1, the lambda-invariance of the normalized solution, and the first
// elements of the optimal unit sequence.

#include <algorithm>
#include <cmath>

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/closed_form_optimal.hpp"
#include "dist/exponential.hpp"

using namespace sre;

int main() {
  const auto res = core::exponential_reservation_only_optimal();

  bench::print_note("Section 3.5 reproduction -- Exp(1) RESERVATIONONLY.");
  bench::print_note("s1        = " + bench::fmt(res.s1, 5) +
                    "  (true boundary 0.74654; paper's noisy-MC argmin: "
                    "~0.74219)");
  bench::print_note("E_1       = " + bench::fmt(res.e1, 5) +
                    "  (true optimum 2.36450; Table 2's 2.13 is a "
                    "min-over-noisy-MC artifact, see EXPERIMENTS.md)");

  std::vector<std::string> header = {"i", "s_i", "e^{-s_i}"};
  std::vector<std::vector<std::string>> rows;
  const auto& s = res.unit_sequence.values();
  for (std::size_t i = 0; i < std::min<std::size_t>(s.size(), 8); ++i) {
    rows.push_back({std::to_string(i + 1), bench::fmt(s[i], 5),
                    bench::fmt(std::exp(-s[i]), 6)});
  }
  bench::print_table("Optimal unit sequence (first terms)", header, rows);

  // Lambda-invariance: E(S_lambda) * lambda == E_1 for every lambda.
  std::vector<std::string> h2 = {"lambda", "E(S_lambda)", "lambda * E"};
  std::vector<std::vector<std::string>> r2;
  for (const double lambda : {0.25, 1.0, 2.0, 8.0}) {
    const dist::Exponential e(lambda);
    const auto seq = core::exponential_optimal_sequence(lambda);
    const double cost = core::expected_cost_analytic(
        seq, e, core::CostModel::reservation_only());
    r2.push_back({bench::fmt(lambda), bench::fmt(cost, 5),
                  bench::fmt(cost * lambda, 5)});
  }
  bench::print_table("Proposition 2: scale invariance", h2, r2);
  return 0;
}
