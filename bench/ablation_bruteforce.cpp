// Ablation: sensitivity of BRUTE-FORCE to its two knobs -- the grid size M
// and the evaluation mode (Monte Carlo with N samples vs the analytic
// Eq. (4) series). Justifies the paper's choice M=5000/N=1000 and our
// common-random-numbers evaluator.

#include "common.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/omniscient.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();
  const std::vector<std::size_t> grids = {50, 200, 1000, 5000};

  std::vector<std::string> header = {"Distribution"};
  for (const std::size_t m : grids) header.push_back("M=" + std::to_string(m));
  header.push_back("analytic M=5000");

  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    const double omniscient = core::omniscient_cost(*inst.dist, model);
    std::vector<std::string> row = {inst.label};
    for (const std::size_t m : grids) {
      core::BruteForceOptions opts;
      opts.grid_points = m;
      opts.mc_samples = 1000;
      const auto out = core::brute_force_search(*inst.dist, model, opts);
      row.push_back(out.found ? bench::fmt(out.best_cost / omniscient, 3)
                              : "-");
    }
    core::BruteForceOptions opts;
    opts.grid_points = 5000;
    opts.analytic_eval = true;
    const auto out = core::brute_force_search(*inst.dist, model, opts);
    row.push_back(out.found ? bench::fmt(out.best_cost / omniscient, 3) : "-");
    rows.push_back(std::move(row));
  }

  bench::print_note(
      "Ablation -- BRUTE-FORCE normalized cost vs grid size M (Monte-Carlo "
      "eval, N=1000) and vs the analytic evaluator.");
  bench::print_table("Brute-force ablation", header, rows);
  return 0;
}
