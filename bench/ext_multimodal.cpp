// Extension experiment: multimodal execution times. The fMRIQA trace
// (Fig. 1a) is visibly bimodal, yet the paper fits a single LogNormal. Here
// a two-mode mixture is planned both ways -- with the true mixture law and
// with the best single-LogNormal fit -- quantifying what the unimodal
// approximation costs each heuristic.

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "dist/lognormal.hpp"
#include "dist/mixture.hpp"
#include "sim/rng.hpp"
#include "stats/fitting.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const core::CostModel model = core::CostModel::reservation_only();

  // Fast mode (60%) around e^1 ~ 2.7, slow mode (40%) around e^3 ~ 20.
  const dist::MixtureDistribution truth(
      {{0.6, std::make_shared<dist::LogNormal>(1.0, 0.3)},
       {0.4, std::make_shared<dist::LogNormal>(3.0, 0.25)}});

  // The unimodal approximation: a single LogNormal MLE-fitted to a large
  // synthetic trace of the mixture (what Fig. 1's pipeline would produce).
  const auto trace = sim::draw_samples(truth, 20000, 99);
  const stats::LogNormalParams p = stats::fit_lognormal_mle(trace);
  const dist::LogNormal unimodal(p.mu, p.sigma);

  core::BruteForceOptions bf;
  bf.grid_points = cfg.bf_grid;
  bf.mc_samples = cfg.mc_samples;
  std::vector<core::HeuristicPtr> heuristics = {
      std::make_shared<core::BruteForce>(bf),
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanDoubling>(),
      std::make_shared<core::MedianByMedian>(),
      std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
          cfg.disc_n, cfg.epsilon, sim::DiscretizationScheme::kEqualProbability}),
  };

  core::EvaluationOptions eval;
  eval.mc.samples = cfg.mc_samples;

  bench::print_note("Extension -- bimodal mixture " + truth.describe());
  bench::print_note("Unimodal fit: LogNormal(mu=" + bench::fmt(p.mu, 3) +
                    ", sigma=" + bench::fmt(p.sigma, 3) + ")");

  std::vector<std::string> header = {"Heuristic", "plan on truth",
                                     "plan on unimodal fit", "penalty"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& h : heuristics) {
    // Plan against each model, but always *evaluate* against the truth.
    const auto plan_true = h->generate(truth, model);
    const auto plan_fit = h->generate(unimodal, model);
    const double omniscient = core::omniscient_cost(truth, model);
    const double cost_true =
        core::expected_cost_analytic(plan_true, truth, model) / omniscient;
    const double cost_fit =
        core::expected_cost_analytic(plan_fit, truth, model) / omniscient;
    const double penalty = 100.0 * (cost_fit / cost_true - 1.0);
    rows.push_back({h->name(), bench::fmt(cost_true), bench::fmt(cost_fit),
                    (penalty >= 0.0 ? "+" : "") + bench::fmt(penalty, 1) +
                        "%"});
  }
  bench::print_table(
      "Multimodality: normalized cost (evaluated on the true mixture)",
      header, rows);
  return 0;
}
