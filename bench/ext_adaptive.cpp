// Extension experiment: online learning of the reservation plan. A stream
// of jobs with a hidden execution-time law is scheduled by the
// AdaptiveScheduler (empirical DP, refit every 25 completions) starting
// from a deliberately bad prior. The learning curve is compared to the
// clairvoyant plan that knows the law from job one.

#include "common.hpp"
#include "core/expected_cost.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "dist/factory.hpp"
#include "platform/adaptive.hpp"

using namespace sre;

int main() {
  const core::CostModel model = core::CostModel::reservation_only();
  const std::size_t jobs = 2000;
  const std::size_t window = 100;

  bench::print_note(
      "Extension -- adaptive scheduling: mean cost per 100-job window, "
      "normalized by the clairvoyant DP cost (1.00 = knows the law). Prior "
      "first guess deliberately 10x off the mean.");

  std::vector<std::string> header = {"Distribution", "prior t1", "clairvoyant"};
  for (std::size_t w = 1; w <= 6; ++w) {
    header.push_back("w" + std::to_string(w));
  }
  header.push_back("w-last");

  std::vector<std::vector<std::string>> rows;
  for (const char* label :
       {"Exponential", "Lognormal", "Weibull", "Uniform", "Pareto"}) {
    const auto inst = dist::paper_distribution(label);
    const auto& d = *inst->dist;

    const core::DiscretizedDp clairvoyant(sim::DiscretizationOptions{
        500, 1e-7, sim::DiscretizationScheme::kEqualProbability});
    const double reference =
        core::expected_cost_analytic(clairvoyant.generate(d, model), d, model);

    platform::AdaptiveOptions opts;
    opts.prior_guess = d.mean() * 10.0;
    const auto campaign =
        platform::run_adaptive_campaign(d, jobs, model, opts, 17, window);

    std::vector<std::string> row = {inst->label, bench::fmt(opts.prior_guess),
                                    bench::fmt(reference)};
    for (std::size_t w = 0; w < 6 && w < campaign.window_mean_cost.size();
         ++w) {
      row.push_back(bench::fmt(campaign.window_mean_cost[w] / reference));
    }
    row.push_back(bench::fmt(campaign.final_window_cost / reference));
    rows.push_back(std::move(row));
  }
  bench::print_table("Adaptive scheduling learning curves", header, rows);
  bench::print_note(
      "\nReading: window 1 pays the bad prior; by the second or third "
      "refit window the adaptive plan is within sampling noise of the "
      "clairvoyant optimum -- empirically, ~50-100 observed jobs suffice.");
  return 0;
}
