// Table 2: normalized expected costs (Eq. 13 / E^o) of the seven heuristics
// on the nine Table 1 distributions under RESERVATIONONLY (alpha=1,
// beta=gamma=0). Bracketed values are normalized by the BRUTE-FORCE column,
// as in the paper.
//
// The 9x7 grid runs through core::run_scenario_sweep: scenarios are fanned
// across the pool, outcomes come back in grid order (so the table below is
// identical to the serial rendering), and the two DP columns of each row
// share one discretization-grid cache.

#include <iostream>

#include "common.hpp"
#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/scenario_sweep.hpp"
#include "dist/factory.hpp"

using namespace sre;

int main() {
  const bench::BenchConfig cfg = bench::BenchConfig::from_env();
  const core::CostModel model = core::CostModel::reservation_only();

  core::BruteForceOptions bf_opts;
  bf_opts.grid_points = cfg.bf_grid;
  bf_opts.mc_samples = cfg.mc_samples;
  bf_opts.seed = cfg.seed;
  sim::DiscretizationOptions eq_time{cfg.disc_n, cfg.epsilon,
                                     sim::DiscretizationScheme::kEqualTime};
  sim::DiscretizationOptions eq_prob{
      cfg.disc_n, cfg.epsilon, sim::DiscretizationScheme::kEqualProbability};

  std::vector<core::HeuristicPtr> heuristics = {
      std::make_shared<core::BruteForce>(bf_opts),
      std::make_shared<core::MeanByMean>(),
      std::make_shared<core::MeanStdev>(),
      std::make_shared<core::MeanDoubling>(),
      std::make_shared<core::MedianByMedian>(),
      std::make_shared<core::DiscretizedDp>(eq_time),
      std::make_shared<core::DiscretizedDp>(eq_prob),
  };

  core::EvaluationOptions eval_opts;
  eval_opts.mc.samples = cfg.mc_samples;
  eval_opts.mc.seed = cfg.seed;

  const auto scenarios = core::make_scenario_grid(
      dist::paper_distributions(), {{"ReservationOnly", model}}, heuristics);
  const auto report = core::run_scenario_sweep(scenarios, eval_opts);

  std::vector<std::string> header = {"Distribution"};
  for (const auto& h : heuristics) header.push_back(h->name());

  const std::size_t n_solvers = heuristics.size();
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r * n_solvers < report.outcomes.size(); ++r) {
    std::vector<std::string> row = {report.outcomes[r * n_solvers].dist_label};
    double bf_cost = 0.0;
    for (std::size_t s = 0; s < n_solvers; ++s) {
      const auto& eval = report.outcomes[r * n_solvers + s].eval;
      if (s == 0) {
        bf_cost = eval.normalized_mc;
        row.push_back(bench::fmt(eval.normalized_mc));
      } else {
        row.push_back(bench::fmt(eval.normalized_mc) + " (" +
                      bench::fmt(eval.normalized_mc / bf_cost) + ")");
      }
    }
    rows.push_back(std::move(row));
  }

  bench::print_note("Table 2 reproduction -- RESERVATIONONLY (alpha=1, "
                    "beta=gamma=0), normalized by the omniscient scheduler.");
  bench::print_note("Brute-Force: M=" + std::to_string(cfg.bf_grid) +
                    ", N=" + std::to_string(cfg.mc_samples) +
                    "; discretization: n=" + std::to_string(cfg.disc_n) +
                    ", eps=1e-7. Brackets: cost / Brute-Force cost.");
  bench::print_table("Table 2: normalized expected costs", header, rows);
  bench::print_note(bench::sweep_summary(report));
  bench::write_metrics_sidecar("table2_reservation_only");
  bench::write_trace_sidecar();
  return 0;
}
