// Table 5 (Appendix A) reproduction: the closed-form mean, variance,
// median and quantiles of every Table 1 instantiation, cross-checked
// against Monte-Carlo estimates in the same row -- an end-to-end audit of
// the special-function layer the whole library stands on.

#include "common.hpp"
#include "dist/factory.hpp"
#include "sim/rng.hpp"
#include "stats/summary.hpp"

using namespace sre;

int main() {
  bench::print_note(
      "Table 5 / Appendix A reproduction -- closed forms vs Monte Carlo "
      "(200k samples, seed 7). '~' columns are the MC estimates.");

  std::vector<std::string> header = {"Distribution", "mean", "~mean",
                                     "variance",     "~var", "Q(0.5)",
                                     "~Q(0.5)",      "Q(0.99)"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& inst : dist::paper_distributions()) {
    const auto& d = *inst.dist;
    sim::Rng rng = sim::make_rng(7);
    stats::OnlineMoments acc;
    std::vector<double> samples;
    samples.reserve(200000);
    for (int i = 0; i < 200000; ++i) {
      const double x = d.sample(rng);
      acc.add(x);
      samples.push_back(x);
    }
    const auto qs = stats::empirical_quantiles(std::move(samples), {{0.5}});
    rows.push_back({inst.label, bench::fmt(d.mean(), 3),
                    bench::fmt(acc.mean(), 3), bench::fmt(d.variance(), 3),
                    bench::fmt(acc.variance(), 3), bench::fmt(d.median(), 3),
                    bench::fmt(qs[0], 3), bench::fmt(d.quantile(0.99), 3)});
  }
  bench::print_table("Table 5: distribution properties", header, rows);
  return 0;
}
