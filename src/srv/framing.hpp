#pragma once

// Incremental NDJSON line framing for the srv:: event loop. A LineFramer
// accumulates bytes exactly as they arrive off a non-blocking socket —
// partial lines, many lines per chunk, chunk boundaries anywhere (including
// mid-CRLF) — and emits one complete line per '\n'. A single trailing '\r'
// is stripped so CRLF and LF clients frame identically; embedded NUL bytes
// are preserved (the JSON parser rejects them later with a typed error, the
// framer is transport-only).
//
// The buffer is hard-capped at `max_line_bytes`: a line that exceeds the
// cap is *discarded* — the framer drops into overflow mode, swallows bytes
// until the terminating newline, then emits one truncated-line event so the
// connection can answer with a typed kDomainError response and keep its
// stream in request order. Memory for one connection therefore never grows
// past the cap, no matter what the peer sends (tests/test_srv_framing.cpp
// fuzzes this with seeded random chunking over valid/invalid corpora).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace sre::srv {

class LineFramer {
 public:
  /// One framing event: a complete line (without its terminator), or — when
  /// `truncated` — a line that overflowed the cap and was discarded (the
  /// view then holds only the line's first `max_line_bytes` bytes).
  using LineSink = std::function<void(std::string_view line, bool truncated)>;

  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

  /// Feeds a chunk; invokes `sink` once per completed line, in order. The
  /// views are valid only for the duration of the callback.
  void feed(std::string_view chunk, const LineSink& sink);

  /// Bytes currently buffered for the (incomplete) line in progress. Never
  /// exceeds max_line_bytes().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t max_line_bytes() const noexcept {
    return max_line_bytes_;
  }
  /// True while swallowing an overlong line (cleared at its newline).
  [[nodiscard]] bool in_overflow() const noexcept { return overflow_; }

  /// Lines emitted (including truncated ones) and overflow events.
  [[nodiscard]] std::uint64_t lines() const noexcept { return lines_; }
  [[nodiscard]] std::uint64_t truncated_lines() const noexcept {
    return truncated_;
  }

 private:
  void emit(std::string_view line, bool truncated, const LineSink& sink);

  std::size_t max_line_bytes_;
  std::string buffer_;
  bool overflow_ = false;
  std::uint64_t lines_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace sre::srv
