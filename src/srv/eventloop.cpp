#include "srv/eventloop.hpp"

#include <stdexcept>
#include <string>

#include "obs/report.hpp"

namespace sre::srv {

// ---------------------------------------------------------------------------
// Stats serialization — platform-independent (the snapshot struct is plain
// data), so the byte-stable format is unit-testable even where the epoll
// loop itself is unavailable.

std::string format_server_stats(const ServerStatsSnapshot& snapshot) {
  std::string out = "{\"ok\":true,\"loop\":{\"open\":";
  out += std::to_string(snapshot.loop.open);
  out += ",\"accepted\":";
  out += std::to_string(snapshot.loop.accepted);
  out += ",\"closed\":";
  out += std::to_string(snapshot.loop.closed);
  out += ",\"overload_rejects\":";
  out += std::to_string(snapshot.loop.overload_rejects);
  out += ",\"framing_errors\":";
  out += std::to_string(snapshot.loop.framing_errors);
  out += ",\"backpressure_pauses\":";
  out += std::to_string(snapshot.loop.backpressure_pauses);
  out += ",\"requests\":";
  out += std::to_string(snapshot.loop.requests);
  out += ",\"responses\":";
  out += std::to_string(snapshot.loop.responses);
  out += ",\"bytes_in\":";
  out += std::to_string(snapshot.loop.bytes_in);
  out += ",\"bytes_out\":";
  out += std::to_string(snapshot.loop.bytes_out);
  out += "},\"wide\":{\"written\":";
  out += std::to_string(snapshot.loop.wide_written);
  out += ",\"dropped\":";
  out += std::to_string(snapshot.loop.wide_dropped);
  out += "},\"rates\":{\"window_seconds\":";
  out += obs::format_double(snapshot.window_seconds);
  out += ",\"requests_per_sec\":";
  out += obs::format_double(snapshot.requests_per_sec);
  out += ",\"responses_per_sec\":";
  out += obs::format_double(snapshot.responses_per_sec);
  out += ",\"bytes_in_per_sec\":";
  out += obs::format_double(snapshot.bytes_in_per_sec);
  out += ",\"bytes_out_per_sec\":";
  out += obs::format_double(snapshot.bytes_out_per_sec);
  out += "},\"conns\":[";
  bool first = true;
  for (const ConnSnapshot& c : snapshot.conns) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(c.id);
    out += ",\"fd\":";
    out += std::to_string(c.fd);
    out += ",\"queued\":";
    out += std::to_string(c.queued);
    out += ",\"inflight\":";
    out += std::to_string(c.inflight);
    out += ",\"paused\":";
    out += c.paused ? "true" : "false";
    out += ",\"backlog\":";
    out += std::to_string(c.backlog);
    out += ",\"bytes_in\":";
    out += std::to_string(c.bytes_in);
    out += ",\"bytes_out\":";
    out += std::to_string(c.bytes_out);
    out += '}';
  }
  out += "],\"service\":";
  if (snapshot.service_stats_json.empty()) {
    out += "null";
  } else {
    out += snapshot.service_stats_json;
  }
  out += '}';
  return out;
}

}  // namespace sre::srv

#ifdef __linux__

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/wide.hpp"
#include "srv/chaos_socket.hpp"
#include "srv/framing.hpp"
#include "srv/protocol.hpp"
#include "srv/request.hpp"
#include "stats/error.hpp"

namespace sre::srv {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& accepted_counter() {
  static obs::Counter& c = obs::counter("srv.conn.accepted");
  return c;
}
obs::Counter& closed_counter() {
  static obs::Counter& c = obs::counter("srv.conn.closed");
  return c;
}
obs::Counter& overload_counter() {
  static obs::Counter& c = obs::counter("srv.conn.overload_rejects");
  return c;
}
obs::Counter& framing_error_counter() {
  static obs::Counter& c = obs::counter("srv.conn.framing_errors");
  return c;
}
obs::Counter& backpressure_counter() {
  static obs::Counter& c = obs::counter("srv.conn.backpressure_pauses");
  return c;
}
obs::Gauge& open_gauge() {
  static obs::Gauge& g = obs::gauge("srv.conn.open");
  return g;
}

/// The flow label every traced request shares: the same flow id ('s' at
/// classify, 't' at solve, 'f' at flush) draws one arrow chain across the
/// loop and worker threads in Perfetto.
std::uint32_t flow_label() {
  static const std::uint32_t label = obs::recorder::intern_label("srv.flow");
  return label;
}

/// The overload line shed at accept time (connection/fd limits): the same
/// typed, retryable rejection the admission queue emits, so clients treat
/// both identically.
std::string overload_line(const std::string& message) {
  PlanResponse resp;
  resp.ok = false;
  resp.code = ErrorCode::kOverloaded;
  resp.retryable = is_retryable(ErrorCode::kOverloaded);
  resp.message = message;
  return format_response("", resp) + "\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl

struct EventLoop::Impl {
  /// One finished solve headed back to a connection. Posted by worker
  /// threads, drained on the loop thread. Carries the outcome and the
  /// service-side lifecycle stamps so the slot's wide-event draft can be
  /// completed without re-parsing the serialized line.
  struct Completion {
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    std::string line;
    bool ok = false;
    bool cached = false;
    ErrorCode code = ErrorCode::kDomainError;
    double retry_after_ms = 0.0;
    PlanTelemetry telem;
  };

  /// Worker-to-loop handoff. Held by shared_ptr from every in-flight
  /// callback, so a completion arriving after the loop is gone lands in a
  /// closed mailbox instead of freed memory.
  struct Mailbox {
    std::mutex m;
    std::vector<Completion> items;
    int wake_fd = -1;  ///< loop's eventfd; -1 once the loop shut down
    void post(Completion c) {
      std::lock_guard<std::mutex> lock(m);
      if (wake_fd < 0) return;  // loop gone: drop (conn is gone too)
      items.push_back(std::move(c));
      const std::uint64_t one = 1;
      (void)!::write(wake_fd, &one, sizeof one);
    }
  };

  /// One queued response, in request order. `done` flips when the line is
  /// ready (inline for control/error lines, via the mailbox for solves).
  /// `wide` marks slots that emit an access-log event once their bytes
  /// clear the socket; `ev` is the draft, stamped stage by stage.
  struct Slot {
    bool done = false;
    bool shutdown = false;  ///< {"cmd":"shutdown"}: drain once flushed
    std::string line;       ///< response line, no terminator
    bool wide = false;
    obs::wide::Event ev;
  };

  /// A wide event whose response bytes are in the write buffer but not yet
  /// on the wire: `mark` is the connection's cumulative enqueued-byte count
  /// at the end of this response, so the event flushes exactly when
  /// `wr_written` reaches it.
  struct PendingWide {
    std::uint64_t mark = 0;
    obs::wide::Event ev;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string peer;  ///< client "ip:port", fixed at accept
    ChaosSocket sock;  ///< fault-injecting read/send shim (default: raw I/O)
    LineFramer framer;
    std::deque<Slot> slots;
    std::uint64_t base_seq = 0;  ///< seq of slots.front()
    std::uint64_t next_seq = 0;  ///< seq assigned to the next request
    std::string wbuf;
    std::size_t woff = 0;
    std::uint64_t bytes_in = 0;     ///< read off this fd, total
    std::uint64_t wr_enqueued = 0;  ///< appended to wbuf, total
    std::uint64_t wr_written = 0;   ///< written to this fd, total
    std::uint64_t read_ns = 0;  ///< stamp of the read feeding the framer
    std::deque<PendingWide> pending_wide;  ///< enqueued, awaiting the wire
    bool peer_eof = false;  ///< read side closed; still flushing responses
    bool paused = false;    ///< EPOLLIN off: write backlog past watermark
    bool want_write = false;  ///< EPOLLOUT armed

    explicit Conn(std::size_t max_line) : framer(max_line) {}
    [[nodiscard]] std::size_t backlog() const noexcept {
      return wbuf.size() - woff;
    }
  };

  explicit Impl(EventLoop& outer) : loop(outer) {}

  EventLoop& loop;
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  int reserve_fd = -1;  ///< sacrificed to shed accepts on EMFILE/ENFILE
  std::shared_ptr<Mailbox> mailbox;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  sim::NetFaultPlan net_faults;  ///< server-side chaos; conn id = stream id
  bool draining = false;
  Clock::time_point drain_deadline{};
  std::unique_ptr<obs::wide::Sink> sink;  ///< null: no access log
  obs::wide::SnapshotRing ring;           ///< rate window for {"stats":true}

  static constexpr std::uint64_t kListenId = 0;
  static constexpr std::uint64_t kWakeId = 1;
  static constexpr std::uint64_t kFirstConnId = 2;

  // -- epoll plumbing -------------------------------------------------------

  void epoll_add(int fd, std::uint64_t id, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  }

  void update_interest(Conn& c) {
    epoll_event ev{};
    ev.events = 0;
    const bool reading = !c.paused && !c.peer_eof && !draining;
    if (reading) ev.events |= EPOLLIN;
    if (c.want_write) ev.events |= EPOLLOUT;
    ev.data.u64 = c.id;
    (void)::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  }

  // -- lifecycle ------------------------------------------------------------

  void setup(unsigned short port) {
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) throw std::runtime_error("EventLoop: epoll_create1 failed");
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0) throw std::runtime_error("EventLoop: eventfd failed");
    mailbox = std::make_shared<Mailbox>();
    mailbox->wake_fd = wake_fd;
    reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw std::runtime_error("EventLoop: socket failed");
    const int one = 1;
    (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd, loop.cfg_.backlog) != 0) {
      throw std::runtime_error(std::string("EventLoop: bind/listen: ") +
                               std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      loop.port_ = ntohs(bound.sin_port);
    }
    epoll_add(listen_fd, kListenId, EPOLLIN);
    epoll_add(wake_fd, kWakeId, EPOLLIN);
  }

  /// Closes the I/O side (idempotent). The wake eventfd stays open until
  /// close_wake() so request_stop() — callable from a signal handler — can
  /// keep writing to a valid descriptor without taking any lock; stray
  /// post-run completions just bump an eventfd nobody reads.
  void teardown_io() {
    if (!conns.empty()) {
      for (auto& [id, conn] : conns) {
        if (conn->fd >= 0) ::close(conn->fd);
      }
      conns.clear();
      open_gauge().set(0.0);
    }
    if (listen_fd >= 0) ::close(listen_fd), listen_fd = -1;
    if (reserve_fd >= 0) ::close(reserve_fd), reserve_fd = -1;
    if (epoll_fd >= 0) ::close(epoll_fd), epoll_fd = -1;
  }

  void close_wake() {
    if (mailbox) {
      std::lock_guard<std::mutex> lock(mailbox->m);
      mailbox->wake_fd = -1;
      mailbox->items.clear();
    }
    if (wake_fd >= 0) ::close(wake_fd), wake_fd = -1;
  }

  // -- accept path ----------------------------------------------------------

  void shed_accept(int fd, const std::string& message) {
    const std::string line = overload_line(message);
    // MSG_NOSIGNAL: a peer that already hung up must cost EPIPE, not a
    // process-killing SIGPIPE (the write is best-effort either way).
    (void)!::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
    ::close(fd);
    loop.overload_rejects_.fetch_add(1, std::memory_order_relaxed);
    overload_counter().add();
  }

  void accept_ready() {
    for (;;) {
      sockaddr_in peer{};
      socklen_t peer_len = sizeof peer;
      const int fd =
          ::accept4(listen_fd, reinterpret_cast<sockaddr*>(&peer), &peer_len,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd >= 0) {
        if (draining) {
          ::close(fd);
          continue;
        }
        if (net_faults.enabled() &&
            net_faults.for_connection(next_conn_id).accept_dropped()) {
          // Injected accept-time drop. The would-be connection still
          // consumes its id, so later connections keep their schedules.
          ++next_conn_id;
          ChaosSocket::count_accept_drop();
          ::close(fd);
          continue;
        }
        if (conns.size() >= loop.cfg_.max_connections) {
          shed_accept(fd, "connection limit reached (" +
                              std::to_string(loop.cfg_.max_connections) +
                              " active)");
          continue;
        }
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_unique<Conn>(loop.cfg_.max_line_bytes);
        conn->fd = fd;
        conn->id = next_conn_id++;
        if (net_faults.enabled()) {
          conn->sock = ChaosSocket(net_faults.for_connection(conn->id));
        }
        char ip[INET_ADDRSTRLEN] = "?";
        (void)::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
        conn->peer =
            std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
        epoll_add(fd, conn->id, EPOLLIN);
        conns.emplace(conn->id, std::move(conn));
        loop.accepted_.fetch_add(1, std::memory_order_relaxed);
        accepted_counter().add();
        open_gauge().set(static_cast<double>(conns.size()));
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == ECONNABORTED || errno == EPROTO) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: give the reserve fd back, accept the pending
        // connection, answer it with one retryable overload line, close,
        // and re-arm the reserve — shed cleanly instead of dying.
        if (reserve_fd >= 0) ::close(reserve_fd), reserve_fd = -1;
        const int shed = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (shed >= 0) {
          shed_accept(shed, "file descriptors exhausted");
        }
        reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        break;  // don't spin; epoll re-reports while connections queue
      }
      break;  // unexpected accept error: leave the listener armed
    }
  }

  // -- connection close -----------------------------------------------------

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    if (it->second->fd >= 0) {
      (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
      ::close(it->second->fd);
    }
    // pending_wide dies with the Conn: a response the client never received
    // has no flushed stamp, so it never becomes an access-log line.
    conns.erase(it);
    loop.closed_.fetch_add(1, std::memory_order_relaxed);
    closed_counter().add();
    open_gauge().set(static_cast<double>(conns.size()));
  }

  // -- telemetry ------------------------------------------------------------

  /// Seeds a slot's wide-event draft with everything known at framing time.
  /// No sink (unset path, or obs-off where Sink::open returns nullptr)
  /// means no draft: the serving path carries zero telemetry state.
  void draft_wide(Conn& c, Slot& s, std::string_view line,
                  std::uint64_t framed_ns, std::string id, std::string trace) {
    if (!sink) return;
    s.wide = true;
    s.ev.id = std::move(id);
    s.ev.peer = c.peer;
    s.ev.trace = std::move(trace);
    s.ev.conn = c.id;
    s.ev.bytes_in = line.size() + 1;  // +1: the newline the framer consumed
    s.ev.accepted_ns = c.read_ns;
    s.ev.framed_ns = framed_ns;
  }

  /// One periodic counter sample for the rate window, plus the Prometheus
  /// dump when configured.
  void tick() {
    obs::wide::Snapshot s;
    s.t_ns = obs::wide::now_ns();
    s.requests = loop.requests_.load(std::memory_order_relaxed);
    s.responses = loop.responses_.load(std::memory_order_relaxed);
    s.bytes_in = loop.bytes_in_.load(std::memory_order_relaxed);
    s.bytes_out = loop.bytes_out_.load(std::memory_order_relaxed);
    ring.push(s);
    write_prom();
  }

  /// Dumps the metrics registry in Prometheus text format, atomically
  /// (write a sibling temp file, rename over) so a concurrent scraper
  /// never reads a torn exposition.
  void write_prom() {
    if (loop.cfg_.prom_path.empty()) return;
    const std::string tmp = loop.cfg_.prom_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return;
      out << obs::wide::prometheus_text();
    }
    (void)std::rename(tmp.c_str(), loop.cfg_.prom_path.c_str());
  }

  /// The {"stats":true} answer, built inline on the loop thread — the only
  /// place the per-connection state is coherent. The caller pushes the
  /// verb's own response slot *after* this runs, so a connection's queued
  /// count never includes the stats request answering it.
  std::string stats_line() {
    ServerStatsSnapshot s;
    s.loop = loop.counters();
    if (ring.size() >= 2) {
      const obs::wide::Snapshot& a = ring.oldest();
      const obs::wide::Snapshot& b = ring.newest();
      if (b.t_ns > a.t_ns) {
        const double dt = static_cast<double>(b.t_ns - a.t_ns) * 1e-9;
        s.window_seconds = dt;
        s.requests_per_sec = static_cast<double>(b.requests - a.requests) / dt;
        s.responses_per_sec =
            static_cast<double>(b.responses - a.responses) / dt;
        s.bytes_in_per_sec = static_cast<double>(b.bytes_in - a.bytes_in) / dt;
        s.bytes_out_per_sec =
            static_cast<double>(b.bytes_out - a.bytes_out) / dt;
      }
    }
    s.conns.reserve(conns.size());
    for (const auto& [id, conn] : conns) {
      ConnSnapshot cs;
      cs.id = id;
      cs.fd = conn->fd;
      cs.queued = conn->slots.size();
      cs.inflight = 0;
      for (const Slot& slot : conn->slots) {
        if (!slot.done) ++cs.inflight;
      }
      cs.paused = conn->paused;
      cs.backlog = conn->backlog();
      cs.bytes_in = conn->bytes_in;
      cs.bytes_out = conn->wr_written;
      s.conns.push_back(cs);
    }
    std::sort(s.conns.begin(), s.conns.end(),
              [](const ConnSnapshot& a, const ConnSnapshot& b) {
                return a.id < b.id;
              });
    s.service_stats_json = loop.service_.stats_json();
    return format_server_stats(s);
  }

  // -- request side ---------------------------------------------------------

  /// Handles one complete line: control and malformed lines complete their
  /// slot inline; plan requests go to the service's async path and complete
  /// through the mailbox. Requests, typed errors, and oversized lines each
  /// draft exactly one wide event; control verbs draft none.
  void handle_conn_line(Conn& c, std::string_view line, bool truncated) {
    loop.requests_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t framed_ns = sink ? obs::wide::now_ns() : 0;
    if (truncated) {
      loop.framing_errors_.fetch_add(1, std::memory_order_relaxed);
      framing_error_counter().add();
      PlanResponse resp;
      resp.ok = false;
      resp.code = ErrorCode::kDomainError;
      resp.retryable = is_retryable(ErrorCode::kDomainError);
      resp.message = "line exceeds " + std::to_string(c.framer.max_line_bytes()) +
                     " bytes";
      Slot s{true, false, format_response("", resp)};
      draft_wide(c, s, line, framed_ns, "", "");
      if (s.wide) {
        s.ev.code = std::string(error_code_name(ErrorCode::kDomainError));
        s.ev.admitted_ns = s.ev.batched_ns = s.ev.solved_ns = s.ev.slotted_ns =
            framed_ns;
      }
      c.slots.push_back(std::move(s));
      ++c.next_seq;
      return;
    }

    ClassifiedLine parsed = classify_line(line);
    switch (parsed.kind) {
      case ClassifiedLine::Kind::kStats:
        c.slots.push_back(Slot{true, false, loop.service_.stats_json()});
        ++c.next_seq;
        return;
      case ClassifiedLine::Kind::kServerStats:
        c.slots.push_back(Slot{true, false, stats_line()});
        ++c.next_seq;
        return;
      case ClassifiedLine::Kind::kPing:
        // Inline on the loop thread: a heartbeat must answer even while
        // every worker is deep in a shard, which is exactly when the
        // manager most wants to know the process is alive.
        c.slots.push_back(Slot{true, false, std::move(parsed.response)});
        ++c.next_seq;
        return;
      case ClassifiedLine::Kind::kTask: {
        if (!loop.cfg_.task_handler) {
          PlanResponse resp;
          resp.ok = false;
          resp.code = ErrorCode::kDomainError;
          resp.retryable = is_retryable(ErrorCode::kDomainError);
          resp.message = "no task handler on this transport";
          c.slots.push_back(Slot{true, false, format_response("", resp)});
          ++c.next_seq;
          return;
        }
        // Same async shape as a plan request: reserve the ordered slot now,
        // let the executor call back from its own thread via the mailbox.
        // Tasks draft no wide event (they are fleet plumbing, not served
        // requests), mirroring the control verbs.
        const std::uint64_t task_seq = c.next_seq++;
        c.slots.push_back(Slot{});
        auto box = mailbox;
        const std::uint64_t task_conn = c.id;
        loop.cfg_.task_handler(
            std::string(line), [box, task_conn, task_seq](std::string resp) {
              Completion done;
              done.conn = task_conn;
              done.seq = task_seq;
              done.line = std::move(resp);
              done.ok = true;
              box->post(std::move(done));
            });
        return;
      }
      case ClassifiedLine::Kind::kShutdown:
        c.slots.push_back(Slot{true, true, std::move(parsed.response)});
        ++c.next_seq;
        return;
      case ClassifiedLine::Kind::kError: {
        Slot s{true, false, std::move(parsed.response)};
        draft_wide(c, s, line, framed_ns, std::move(parsed.id), "");
        if (s.wide) {
          s.ev.code = std::string(error_code_name(parsed.error_code));
          s.ev.admitted_ns = s.ev.batched_ns = s.ev.solved_ns =
              s.ev.slotted_ns = framed_ns;
        }
        c.slots.push_back(std::move(s));
        ++c.next_seq;
        return;
      }
      case ClassifiedLine::Kind::kRequest:
        break;
    }

    const std::uint64_t seq = c.next_seq++;
    Slot s{};
    draft_wide(c, s, line, framed_ns, parsed.request.id, parsed.request.trace);
    c.slots.push_back(std::move(s));
    if (!parsed.request.trace.empty() && obs::recorder::armed()) {
      obs::recorder::emit_flow(flow_label(), fnv1a64(parsed.request.trace),
                               's');
    }
    // The callback runs on a worker thread (or inline right here for cache
    // hits and rejections): serialize there, post, never touch Conn state.
    std::string id = parsed.request.id;
    auto box = mailbox;
    const std::uint64_t conn_id = c.id;
    loop.service_.submit(
        parsed.request,
        [box, conn_id, seq, id = std::move(id)](PlanResponse&& resp) {
          Completion done;
          done.conn = conn_id;
          done.seq = seq;
          done.line = format_response(id, resp);
          done.ok = resp.ok;
          done.cached = resp.cached;
          done.code = resp.code;
          done.retry_after_ms = resp.retry_after_ms;
          done.telem = resp.telem;
          box->post(std::move(done));
        });
  }

  void on_readable(Conn& c) {
    const std::uint64_t id = c.id;  // c dies if flush() closes the conn
    char chunk[65536];
    // A few chunks per wakeup: level-triggered epoll re-reports a fd that
    // still has bytes, so capping the batch keeps one fast client from
    // starving its neighbours.
    for (int batch = 0; batch < 4; ++batch) {
      const ssize_t n = c.sock.read(c.fd, chunk, sizeof chunk);
      if (n > 0) {
        loop.bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
        c.bytes_in += static_cast<std::uint64_t>(n);
        if (sink) c.read_ns = obs::wide::now_ns();
        c.framer.feed(std::string_view(chunk, static_cast<std::size_t>(n)),
                      [&](std::string_view line, bool truncated) {
                        if (line.empty() && !truncated) return;  // blank keepalive
                        handle_conn_line(c, line, truncated);
                      });
        flush(c);
        if (conns.find(id) == conns.end()) return;  // closed during flush
        if (c.paused || draining) return;
        continue;
      }
      if (n == 0) {
        c.peer_eof = true;
        if (c.slots.empty() && c.backlog() == 0) {
          close_conn(c.id);
        } else {
          update_interest(c);  // keep flushing what the client pipelined
        }
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(c.id);  // ECONNRESET and friends: drop mid-request work
      return;
    }
  }

  // -- response side --------------------------------------------------------

  /// Moves completed slots (in request order) into the write buffer and
  /// pushes bytes to the socket; manages EPOLLOUT arming, backpressure
  /// pausing, and shutdown-after-flush. Wide drafts ride along: enqueued
  /// with the response bytes, emitted to the sink once the write offset
  /// proves their last byte reached the socket.
  void flush(Conn& c) {
    bool saw_shutdown = false;
    while (!c.slots.empty() && c.slots.front().done) {
      Slot& s = c.slots.front();
      c.wbuf += s.line;
      c.wbuf += '\n';
      c.wr_enqueued += s.line.size() + 1;
      loop.responses_.fetch_add(1, std::memory_order_relaxed);
      if (s.wide) {
        s.ev.bytes_out = s.line.size() + 1;
        c.pending_wide.push_back(PendingWide{c.wr_enqueued, std::move(s.ev)});
      }
      if (s.shutdown) saw_shutdown = true;
      c.slots.pop_front();
      ++c.base_seq;
      if (saw_shutdown) break;  // later pipelined requests die with the server
    }

    while (c.backlog() > 0) {
      // ChaosSocket::send is send(2)+MSG_NOSIGNAL underneath: a peer that
      // closed mid-response surfaces as EPIPE below, never as SIGPIPE.
      const ssize_t n =
          c.sock.send(c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff);
      if (n > 0) {
        c.woff += static_cast<std::size_t>(n);
        c.wr_written += static_cast<std::uint64_t>(n);
        loop.bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(c.id);  // EPIPE/ECONNRESET: the client is gone
      return;
    }

    if (sink) {
      std::uint64_t flushed_ns = 0;
      while (!c.pending_wide.empty() &&
             c.pending_wide.front().mark <= c.wr_written) {
        if (flushed_ns == 0) flushed_ns = obs::wide::now_ns();
        obs::wide::Event ev = std::move(c.pending_wide.front().ev);
        c.pending_wide.pop_front();
        ev.flushed_ns = flushed_ns;
        if (!ev.trace.empty() && obs::recorder::armed()) {
          obs::recorder::emit_flow(flow_label(), fnv1a64(ev.trace), 'f');
        }
        (void)sink->try_write(obs::wide::format_event(ev));
      }
    }

    if (c.woff == c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
    } else if (c.woff > (1u << 16) && c.woff > c.wbuf.size() / 2) {
      c.wbuf.erase(0, c.woff);
      c.woff = 0;
    }

    if (saw_shutdown && c.backlog() == 0) {
      close_conn(c.id);
      begin_drain();
      return;
    }
    if (saw_shutdown) {
      // Response not fully written yet: keep the connection write-only
      // until it drains, then exit via the drain path.
      c.peer_eof = true;
      begin_drain();
    }

    const bool need_write = c.backlog() > 0;
    bool changed = false;
    if (need_write != c.want_write) {
      c.want_write = need_write;
      changed = true;
    }
    if (!c.paused && c.backlog() > loop.cfg_.write_high_watermark) {
      c.paused = true;
      changed = true;
      loop.backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
      backpressure_counter().add();
    } else if (c.paused && c.backlog() <= loop.cfg_.write_low_watermark) {
      c.paused = false;
      changed = true;
    }
    if (changed && conns.find(c.id) != conns.end()) update_interest(c);
    if (c.peer_eof && c.slots.empty() && c.backlog() == 0) close_conn(c.id);
  }

  void on_writable(Conn& c) { flush(c); }

  // -- completions + shutdown ----------------------------------------------

  void drain_mailbox() {
    std::uint64_t discard = 0;
    (void)!::read(wake_fd, &discard, sizeof discard);
    std::vector<Completion> items;
    {
      std::lock_guard<std::mutex> lock(mailbox->m);
      items.swap(mailbox->items);
    }
    const std::uint64_t slotted_ns =
        (sink && !items.empty()) ? obs::wide::now_ns() : 0;
    for (auto& done : items) {
      const auto it = conns.find(done.conn);
      if (it == conns.end()) continue;  // died mid-request: drop
      Conn& c = *it->second;
      const std::uint64_t index = done.seq - c.base_seq;
      if (index >= c.slots.size()) continue;  // already abandoned
      Slot& slot = c.slots[index];
      slot.done = true;
      slot.line = std::move(done.line);
      if (slot.wide) {
        slot.ev.ok = done.ok;
        slot.ev.cached = done.cached;
        if (!done.ok) {
          slot.ev.code = std::string(error_code_name(done.code));
          slot.ev.retry_after_ms = done.retry_after_ms;
        }
        slot.ev.batch = done.telem.batch_size;
        slot.ev.admitted_ns = done.telem.admitted_ns;
        slot.ev.batched_ns = done.telem.batched_ns;
        slot.ev.solved_ns = done.telem.solved_ns;
        slot.ev.slotted_ns = slotted_ns;
      }
      if (index == 0) flush(c);
    }
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    drain_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               loop.cfg_.drain_timeout_s > 0.0
                                   ? loop.cfg_.drain_timeout_s
                                   : 0.0));
    if (listen_fd >= 0) {
      (void)::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Stop reading everywhere; finish writing what is owed.
    std::vector<std::uint64_t> idle;
    for (auto& [id, conn] : conns) {
      if (conn->slots.empty() && conn->backlog() == 0) {
        idle.push_back(id);
      } else {
        update_interest(*conn);
      }
    }
    for (const std::uint64_t id : idle) close_conn(id);
  }

  [[nodiscard]] bool drained() const {
    if (!draining) return false;
    if (conns.empty()) return true;
    return Clock::now() >= drain_deadline;
  }

  // -- main loop ------------------------------------------------------------

  void run() {
    epoll_event events[64];
    const double interval = loop.cfg_.stats_interval_s;
    auto next_tick = Clock::now();
    for (;;) {
      if (loop.stop_requested_.load(std::memory_order_relaxed)) begin_drain();
      if (drained()) break;
      if (interval > 0.0 && Clock::now() >= next_tick) {
        tick();
        next_tick = Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(interval));
      }
      int timeout_ms = -1;
      if (draining) {
        const auto left = drain_deadline - Clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(left)
                .count();
        timeout_ms = ms < 0 ? 0 : static_cast<int>(ms) + 1;
      }
      if (interval > 0.0) {
        const auto left = next_tick - Clock::now();
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(left)
                .count();
        const int tick_ms = ms < 0 ? 0 : static_cast<int>(ms) + 1;
        if (timeout_ms < 0 || tick_ms < timeout_ms) timeout_ms = tick_ms;
      }
      const int n = ::epoll_wait(epoll_fd, events, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[i].data.u64;
        if (id == kListenId) {
          accept_ready();
          continue;
        }
        if (id == kWakeId) {
          drain_mailbox();
          continue;
        }
        const auto it = conns.find(id);
        if (it == conns.end()) continue;  // closed earlier this wakeup
        Conn& c = *it->second;
        const std::uint32_t ev = events[i].events;
        if (ev & (EPOLLERR | EPOLLHUP)) {
          if (c.backlog() > 0 && !(ev & EPOLLERR)) {
            on_writable(c);  // half-close: try to flush what is owed
          } else {
            close_conn(id);
          }
          continue;
        }
        if (ev & EPOLLOUT) {
          on_writable(c);
          if (conns.find(id) == conns.end()) continue;
        }
        if (ev & EPOLLIN) on_readable(c);
      }
    }
    if (interval > 0.0) tick();  // final sample so short runs still dump prom
  }
};

// ---------------------------------------------------------------------------
// Public surface

EventLoop::EventLoop(PlannerService& service, EventLoopConfig cfg)
    : service_(service), cfg_(cfg), impl_(std::make_unique<Impl>(*this)) {
  if (cfg_.max_line_bytes == 0) cfg_.max_line_bytes = 1;
  if (cfg_.write_low_watermark > cfg_.write_high_watermark) {
    cfg_.write_low_watermark = cfg_.write_high_watermark / 2;
  }
  impl_->net_faults = sim::NetFaultPlan(cfg_.net_faults);
  try {
    impl_->sink = obs::wide::Sink::open(
        obs::wide::SinkConfig{cfg_.access_log, cfg_.access_log_capacity});
    impl_->setup(cfg_.port);
  } catch (...) {
    impl_->teardown_io();
    impl_->close_wake();
    throw;
  }
}

EventLoop::~EventLoop() {
  if (impl_) {
    impl_->teardown_io();
    impl_->close_wake();
  }
}

void EventLoop::run() {
  impl_->run();
  impl_->teardown_io();
}

void EventLoop::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_relaxed);
  if (impl_ && impl_->wake_fd >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(impl_->wake_fd, &one, sizeof one);
  }
}

EventLoopCounters EventLoop::counters() const {
  EventLoopCounters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.closed = closed_.load(std::memory_order_relaxed);
  c.open = c.accepted - c.closed;
  c.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
  c.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  c.backpressure_pauses =
      backpressure_pauses_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.responses = responses_.load(std::memory_order_relaxed);
  c.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  c.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  if (impl_ && impl_->sink) {
    c.wide_written = impl_->sink->written();
    c.wide_dropped = impl_->sink->dropped();
  }
  return c;
}

obs::wide::Sink* EventLoop::wide_sink() noexcept {
  return impl_ ? impl_->sink.get() : nullptr;
}

}  // namespace sre::srv

#else  // !__linux__

namespace sre::srv {

struct EventLoop::Impl {};

EventLoop::EventLoop(PlannerService& service, EventLoopConfig cfg)
    : service_(service), cfg_(cfg) {
  throw std::runtime_error("srv::EventLoop requires Linux (epoll)");
}

EventLoop::~EventLoop() = default;
void EventLoop::run() {}
void EventLoop::request_stop() noexcept {}
EventLoopCounters EventLoop::counters() const { return {}; }
obs::wide::Sink* EventLoop::wide_sink() noexcept { return nullptr; }

}  // namespace sre::srv

#endif  // __linux__
