#include "srv/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/minijson.hpp"

namespace sre::srv {

namespace {

using MonoClock = std::chrono::steady_clock;

double mono_s() {
  return std::chrono::duration<double>(MonoClock::now().time_since_epoch())
      .count();
}

void sleep_s(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

// srv.client.* counters register on first use, keeping clean baselines
// free of zero-noise keys (same policy as srv.chaos.* / srv.brownout.*).
obs::Counter& client_counter(const char* name) { return obs::counter(name); }

/// What a wire response says about itself. `parsed` is false for a line
/// the client cannot interpret (treated as a non-retryable protocol error
/// rather than retried blindly).
struct WireVerdict {
  bool parsed = false;
  bool ok = false;
  ErrorCode code = ErrorCode::kDomainError;
  bool retryable = false;
  std::string message;
  double retry_after_ms = 0.0;
};

ErrorCode code_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    if (name == error_code_name(code)) return code;
  }
  return ErrorCode::kDomainError;
}

WireVerdict judge_line(const std::string& line) {
  WireVerdict v;
  const auto parsed = obs::minijson::parse(line);
  if (!parsed.ok || !parsed.value.is_object()) return v;
  const auto* ok = parsed.value.find("ok");
  if (ok == nullptr || ok->kind != obs::minijson::Value::Kind::kBool) return v;
  v.parsed = true;
  v.ok = ok->boolean;
  if (v.ok) return v;
  if (const auto* err = parsed.value.find("error"); err && err->is_object()) {
    if (const auto* code = err->find("code"); code && code->is_string()) {
      v.code = code_from_name(code->string);
    }
    if (const auto* r = err->find("retryable");
        r && r->kind == obs::minijson::Value::Kind::kBool) {
      v.retryable = r->boolean;
    }
    if (const auto* msg = err->find("message"); msg && msg->is_string()) {
      v.message = msg->string;
    }
    if (const auto* hint = err->find("retry_after_ms");
        hint && hint->is_number()) {
      v.retry_after_ms = hint->number;
    }
  }
  return v;
}

}  // namespace

Client::Client(ClientConfig cfg) : cfg_(std::move(cfg)) {}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Breaker

bool Client::breaker_blocks() {
  if (cfg_.breaker_threshold <= 0 || !breaker_open_) return false;
  if (mono_s() >= breaker_reopen_monotonic_s_) {
    // Half-open: let exactly this attempt probe. Success closes the
    // breaker (note_transport_success); failure re-arms the cooldown.
    return false;
  }
  ++counters_.breaker_fast_fails;
  client_counter("srv.client.breaker_fast_fails").add();
  return true;
}

void Client::note_transport_error() {
  ++counters_.transport_errors;
  client_counter("srv.client.transport_errors").add();
  if (cfg_.breaker_threshold <= 0) return;
  if (++consecutive_transport_failures_ >= cfg_.breaker_threshold) {
    if (!breaker_open_) {
      ++counters_.breaker_opens;
      client_counter("srv.client.breaker_opens").add();
    }
    breaker_open_ = true;
    breaker_reopen_monotonic_s_ = mono_s() + cfg_.breaker_cooldown_s;
  }
}

void Client::note_transport_success() {
  consecutive_transport_failures_ = 0;
  breaker_open_ = false;
}

// ---------------------------------------------------------------------------
// Socket plumbing

int Client::ensure_connected() {
  if (fd_ >= 0) return fd_;
  const std::uint64_t stream = cfg_.fault_stream + dial_count_++;
  sim::NetConnFaults faults(cfg_.net_faults, stream);
  if (cfg_.net_faults.enabled() && faults.connect_refused(0)) {
    ChaosSocket::count_connect_refusal();
    note_transport_error();
    return -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    note_transport_error();
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    note_transport_error();
    return -1;
  }
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == EINTR) {
      // A connect(2) cut short by a signal may complete asynchronously;
      // redialing a fresh socket is the portable safe recovery.
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0) continue;
    }
    note_transport_error();
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  ever_connected_ = true;
  sock_ = cfg_.net_faults.enabled() ? ChaosSocket(faults) : ChaosSocket();
  rbuf_.clear();
  return fd_;
}

bool Client::send_all(const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = sock_.send(fd_, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / injected reset
  }
  return true;
}

bool Client::read_line(std::string& out) {
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      out.assign(rbuf_, 0, nl);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    char chunk[16384];
    const ssize_t n = sock_.read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      rbuf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or reset mid-frame
  }
}

// ---------------------------------------------------------------------------
// call(): one request, full retry discipline

CallResult Client::call(const std::string& request_line) {
  ++counters_.calls;
  client_counter("srv.client.calls").add();
  CallResult res;
  const bool bounded = cfg_.request_deadline_s > 0.0;
  const double deadline_s = mono_s() + cfg_.request_deadline_s;
  const int max_attempts = cfg_.retry.max_attempts > 1
                               ? cfg_.retry.max_attempts
                               : 1;
  // Each call gets its own jitter stream so concurrent clients (and
  // successive calls) never sleep in lockstep.
  net::RetrySchedule schedule(cfg_.retry, call_stream_++);
  const std::string wire = request_line + "\n";

  WireVerdict last_wire;
  bool have_wire = false;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      const double hint_s =
          have_wire ? last_wire.retry_after_ms / 1e3 : 0.0;
      const double sleep = schedule.next(hint_s);
      if (bounded && mono_s() + sleep >= deadline_s) {
        res.code = ErrorCode::kTimeout;
        res.retryable = false;
        res.message = "request deadline budget exhausted while backing off";
        return res;
      }
      if (hint_s > 0.0 && sleep >= hint_s) {
        ++counters_.hints_honored;
        client_counter("srv.client.hints_honored").add();
      }
      sleep_s(sleep);
      res.slept_s += sleep;
      ++counters_.retries;
      client_counter("srv.client.retries").add();
    }
    if (breaker_blocks()) {
      res.code = ErrorCode::kOverloaded;
      res.retryable = true;
      res.message = "circuit breaker open";
      continue;  // the cooldown may lapse before a later attempt
    }
    const bool redial = fd_ < 0 && ever_connected_;
    if (ensure_connected() < 0) continue;  // counted as transport error
    if (redial) {
      ++counters_.reconnects;
      client_counter("srv.client.reconnects").add();
    }
    ++res.attempts;
    if (!send_all(wire)) {
      note_transport_error();
      close();
      continue;
    }
    std::string line;
    if (!read_line(line)) {
      note_transport_error();
      close();
      rbuf_.clear();
      continue;
    }
    note_transport_success();
    const WireVerdict v = judge_line(line);
    res.line = std::move(line);
    if (v.parsed && v.ok) {
      res.ok = true;
      res.code = ErrorCode::kDomainError;
      res.retryable = false;
      ++counters_.responses_ok;
      return res;
    }
    ++counters_.wire_errors;
    client_counter("srv.client.wire_errors").add();
    if (!v.parsed) {
      // A line the client cannot interpret is a protocol bug, not load:
      // retrying the same bytes cannot help.
      res.code = ErrorCode::kDomainError;
      res.retryable = false;
      res.message = "unparseable response line";
      return res;
    }
    res.code = v.code;
    res.retryable = v.retryable;
    res.message = v.message;
    res.retry_after_ms = v.retry_after_ms;
    if (!v.retryable) return res;  // kDomainError & co: never retried
    last_wire = v;
    have_wire = true;
  }
  if (!have_wire && res.message.empty()) {
    res.code = ErrorCode::kTransport;
    res.retryable = true;
    res.message = "connection failed after " +
                  std::to_string(max_attempts) + " attempt(s)";
  }
  return res;
}

// ---------------------------------------------------------------------------
// Pipelined mode

bool Client::post(const std::string& request_line) {
  unacked_.push_back(request_line);
  if (breaker_blocks()) return false;  // queued; recv_line will replay
  if (fd_ < 0) {
    // Replay the whole owed tail (this request included) on the fresh
    // connection so ordering is preserved.
    return reconnect_and_replay();
  }
  if (!send_all(request_line + "\n")) {
    note_transport_error();
    close();
    return false;
  }
  return true;
}

bool Client::recv_line(std::string& out) {
  if (unacked_.empty()) return false;  // nothing owed
  for (;;) {
    if (fd_ < 0 && !reconnect_and_replay()) return false;
    if (read_line(out)) {
      unacked_.pop_front();
      note_transport_success();
      return true;
    }
    note_transport_error();
    close();
    // A partial line in rbuf_ belonged to a response the reset killed; the
    // replay below re-elicits it in full.
    rbuf_.clear();
    if (!reconnect_and_replay()) return false;
  }
}

bool Client::reconnect_and_replay() {
  const int max_attempts = cfg_.retry.max_attempts > 1
                               ? cfg_.retry.max_attempts
                               : 1;
  // A distinct stream per reconnect episode keeps replay sleeps jittered.
  net::RetrySchedule schedule(cfg_.retry, call_stream_++);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      sleep_s(schedule.next());
      ++counters_.retries;
      client_counter("srv.client.retries").add();
    }
    if (breaker_blocks()) continue;  // cooldown may lapse before retry
    const bool redial = ever_connected_;
    if (ensure_connected() < 0) continue;
    std::string batch;
    for (const std::string& line : unacked_) {
      batch += line;
      batch += '\n';
    }
    if (batch.empty() || send_all(batch)) {
      if (redial) {
        // The first-ever dial just sends the queued tail; only re-dials
        // after a live connection died count as reconnect + replay.
        ++counters_.reconnects;
        client_counter("srv.client.reconnects").add();
        counters_.replayed += unacked_.size();
        if (!unacked_.empty()) {
          client_counter("srv.client.replayed").add(unacked_.size());
        }
      }
      return true;
    }
    note_transport_error();
    close();
  }
  return false;
}

}  // namespace sre::srv
