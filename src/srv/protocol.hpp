#pragma once

// Newline-delimited JSON wire protocol for the planner service. One request
// per line, one response line per request, same order. sre_serve speaks it
// over stdin/stdout and (optionally) TCP; tests drive handle_line()
// directly, so the parser and the transport are independently testable.
//
// Request line:
//   {"id":"q1","dist":"lognormal:mu=3,sigma=0.5",
//    "cost":{"alpha":1,"beta":1,"gamma":0},"solver":"refined-dp",
//    "n":500,"epsilon":1e-7,"deadline_ms":250,"attempt":0,"no_cache":false}
//
// `dist` is either a CLI-style spec string (bare Table 1 labels work) or an
// object {"name":...,"params":{...}}. `cost` may be replaced by top-level
// "alpha"/"beta"/"gamma". An optional string "trace" carries opaque trace
// context into the access log and flight recorder (COOKBOOK 21). Unknown
// fields are ignored, so clients can tag requests freely. Control lines:
// {"cmd":"stats"} returns the service's byte-stable stats JSON;
// {"cmd":"shutdown"} acknowledges and sets `shutdown` so the transport
// loop can exit; {"stats":true} is the live-introspection verb — the event
// loop answers it inline with format_server_stats() (loop counters,
// per-connection state, rate window), while the stdio transport, having no
// loop, answers {"ok":true,"loop":null,"service":<stats_json>}.
// {"ping":true} is the liveness verb: answered inline with kPongLine on
// every transport, so heartbeats and readiness probes never queue behind
// solver work. {"task":"..."} lines are cluster:: task frames (versioned
// shard dispatches, src/cluster/task.hpp); the event loop forwards the raw
// line to EventLoopConfig::task_handler while transports without one answer
// with a typed kDomainError.
//
// Response lines:
//   {"id":"q1","ok":true,"cached":false,"result":{...}}
//   {"id":"q1","ok":false,"error":{"code":"overloaded","retryable":true,
//                                  "message":"..."}}
//
// The "result" object is the cache value verbatim — a cache hit emits the
// cold solve's exact bytes.

#include <string>
#include <string_view>

#include "srv/request.hpp"
#include "srv/service.hpp"
#include "stats/error.hpp"

namespace sre::srv {

struct LineOutcome {
  std::string line;       ///< the response line (no trailing newline)
  bool shutdown = false;  ///< true after {"cmd":"shutdown"}
};

/// One request line, classified without touching the service — the shared
/// front half of handle_line() and the event loop's per-connection state
/// machine (srv/eventloop.*), so the blocking and async transports emit
/// byte-identical lines for the same input.
struct ClassifiedLine {
  enum class Kind {
    kRequest,   ///< `request` holds the parsed PlanRequest (not yet prepared)
    kStats,     ///< {"cmd":"stats"}: respond with service.stats_json()
    kServerStats,  ///< {"stats":true}: live introspection, answered by the
                   ///< transport (event loop: format_server_stats)
    kPing,      ///< {"ping":true}: liveness probe, answered inline with
                ///< kPongLine on every transport (heartbeats, readiness)
    kTask,      ///< {"task":...}: a cluster:: task frame; the transport owns
                ///< the raw line (event loop: EventLoopConfig::task_handler)
    kShutdown,  ///< {"cmd":"shutdown"}: `response` ready, then drain
    kError,     ///< malformed line: `response` is the typed error line
  };
  Kind kind = Kind::kError;
  PlanRequest request;
  std::string response;
  /// For kError: the typed class behind `response` (access-log code field).
  ErrorCode error_code = ErrorCode::kDomainError;
  /// For kError: whatever id was recoverable from the line (echoed in
  /// `response`), so the access log can still join the request.
  std::string id;
};

/// The {"ping":true} answer, identical on every transport. Liveness only:
/// it proves the loop thread is dispatching, not that solvers are healthy
/// ({"stats":true} is the deep probe).
inline constexpr std::string_view kPongLine = "{\"ok\":true,\"pong\":true}";

/// Parses and classifies one line. Never throws — malformed input becomes
/// Kind::kError with a ready response echoing whatever id was recoverable.
[[nodiscard]] ClassifiedLine classify_line(std::string_view line);

/// Parses one request line into a PlanRequest. Throws
/// ScenarioError(kDomainError) on malformed JSON or wrong field types;
/// `id_out` receives the request id when one was extractable (for error
/// responses that still echo it).
[[nodiscard]] PlanRequest parse_request_line(std::string_view line,
                                             std::string* id_out = nullptr);

/// Serializes a response line (no trailing newline) for request `id`.
[[nodiscard]] std::string format_response(const std::string& id,
                                          const PlanResponse& resp);

/// Full line handler: parse, dispatch (control command or service call),
/// serialize. Never throws — malformed input becomes an ok=false response
/// echoing whatever id was recoverable.
[[nodiscard]] LineOutcome handle_line(PlannerService& service,
                                      std::string_view line);

}  // namespace sre::srv
