#pragma once

// Sharded LRU plan cache. Values are the *serialized* result fragments a
// solve produced, held by shared_ptr so a hit hands back the exact bytes of
// the cold response (the byte-identical guarantee is structural: there is
// nothing to re-serialize). Sharding keeps the lock a request holds while
// touching the LRU list narrow — the shard index is the low bits of the
// key's FNV-1a hash, which the request layer already computes.
//
// Hits, misses, insertions, and evictions are double-counted on purpose:
// once in plain atomics (so BENCH_serve.json is exact even under obs-off
// builds) and once in obs:: counters ("srv.cache.hits", ...) for the
// metrics sidecar and obsdiff gating.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sre::srv {

class PlanCache {
 public:
  struct Config {
    std::size_t capacity = 1024;  ///< total entries across shards (0 = off)
    std::size_t shards = 8;       ///< rounded up to a power of two
  };

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
  };

  explicit PlanCache(Config cfg);
  PlanCache() : PlanCache(Config{}) {}

  /// The cached value, or nullptr (counted as hit/miss). A hit refreshes
  /// the entry's LRU position.
  [[nodiscard]] std::shared_ptr<const std::string> lookup(
      std::string_view key, std::uint64_t key_hash);

  /// Inserts (or refreshes) `value`, evicting the shard's least-recently
  /// used entries while over budget. Re-inserting an existing key only
  /// touches its recency — values for one key are identical by
  /// construction (the key determines the solve).
  void insert(std::string_view key, std::uint64_t key_hash,
              std::shared_ptr<const std::string> value);

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key_hash) noexcept {
    return *shards_[key_hash & shard_mask_];
  }

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sre::srv
