#include "srv/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "core/expected_cost.hpp"
#include "core/omniscient.hpp"
#include "obs/metrics.hpp"
#include "obs/minijson.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/wide.hpp"
#include "sim/cancel.hpp"

namespace sre::srv {

namespace {

using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const double v = env_double(name, static_cast<double>(fallback));
  if (v < 0.0) return fallback;
  return static_cast<std::size_t>(v);
}

obs::Counter& request_counter() {
  static obs::Counter& c = obs::counter("srv.requests");
  return c;
}
obs::Counter& completed_counter() {
  static obs::Counter& c = obs::counter("srv.completed");
  return c;
}
obs::Counter& solve_counter() {
  static obs::Counter& c = obs::counter("srv.batch.solves");
  return c;
}
obs::Counter& coalesced_counter() {
  static obs::Counter& c = obs::counter("srv.batch.coalesced");
  return c;
}

obs::Counter& rejection_counter(ErrorCode code) {
  // One counter per taxonomy slot, named "srv.rejected.<code>"; lazily
  // registered so obsdiff baselines only see classes that actually fired.
  static std::array<obs::Counter*, kErrorCodeCount> counters{};
  static std::mutex m;
  const auto i = static_cast<std::size_t>(code);
  std::lock_guard<std::mutex> lock(m);
  if (counters[i] == nullptr) {
    counters[i] = &obs::counter(std::string("srv.rejected.") +
                                std::string(error_code_name(code)));
  }
  return *counters[i];
}

obs::Histogram& latency_histogram() {
  static obs::Histogram& h =
      obs::histogram("srv.request.seconds", obs::duration_bounds_seconds());
  return h;
}

// Brownout counters register on first shed, so clean runs keep their
// obsdiff baselines free of zero-noise srv.brownout.* keys.
obs::Counter& brownout_shed_counter() {
  static obs::Counter& c = obs::counter("srv.brownout.shed");
  return c;
}
obs::Counter& brownout_doomed_counter() {
  static obs::Counter& c = obs::counter("srv.brownout.doomed");
  return c;
}

/// The retry_after_ms hint for a shed observed at queue age `age_ms`:
/// grows linearly with the excess sojourn, clamped to the configured band.
/// A deeper brownout therefore tells clients to back off longer — the
/// feedback loop that bounds tail latency instead of amplifying the storm.
double brownout_hint_ms(const ServiceConfig& cfg, double age_ms) noexcept {
  const double lo = cfg.retry_after_min_ms;
  const double hi = std::max(cfg.retry_after_max_ms, lo);
  return std::clamp(age_ms - cfg.brownout_sojourn_ms + lo, lo, hi);
}

}  // namespace

// ---------------------------------------------------------------------------
// Private aggregates

/// One blocked caller (blocking path) or one pending callback (async
/// path). The worker fulfills it; a blocking wait_for() abandons it when
/// the request deadline expires first (the late fulfill is then dropped),
/// so exactly one response is ever delivered. Async waiters carry their
/// admission timestamp so terminal accounting happens at delivery, and a
/// flag noting they were charged against in_flight_ (fulfill() refunds it;
/// blocking callers refund in call() themselves).
struct PlannerService::Waiter {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  PlanResponse resp;
  Clock::time_point deadline = Clock::time_point::max();
  ResponseCallback callback;  ///< set = async waiter
  Clock::time_point start{};
  bool counted_in_flight = false;
  std::uint64_t admitted_ns = 0;  ///< obs::wide clock stamp at admission
  std::string trace;              ///< request trace context (flow events)
};

/// One queued solve. Members join under the service mutex while the batch is
/// still "open" (in open_batches_); a worker removes it from that map before
/// touching members, so execution reads them without a lock.
struct PlannerService::Batch {
  std::string key;
  std::uint64_t key_hash = 0;
  dist::DistributionPtr dist;
  core::HeuristicPtr solver;
  core::CostModel model{};
  int attempt = 0;  ///< leader's retry counter (drives fault injection)
  bool unbounded = false;  ///< some member has no deadline
  Clock::time_point enqueued{};  ///< queue entry; drives brownout sojourn
  Clock::time_point deadline = Clock::time_point::min();
  std::vector<std::shared_ptr<Waiter>> members;
};

// ---------------------------------------------------------------------------
// Config

ServiceConfig ServiceConfig::from_env() {
  ServiceConfig cfg;
  cfg.cache_enabled = env_double("SRE_SRV_CACHE", 1.0) != 0.0;
  cfg.cache.capacity = env_size("SRE_SRV_CACHE_CAPACITY", cfg.cache.capacity);
  cfg.cache.shards = env_size("SRE_SRV_SHARDS", cfg.cache.shards);
  cfg.queue_capacity = env_size("SRE_SRV_QUEUE", cfg.queue_capacity);
  cfg.max_batch = env_size("SRE_SRV_BATCH", cfg.max_batch);
  cfg.workers =
      static_cast<unsigned>(env_size("SRE_SRV_WORKERS", cfg.workers));
  cfg.default_deadline_s =
      env_double("SRE_SRV_DEADLINE_MS", cfg.default_deadline_s * 1e3) / 1e3;
  cfg.brownout_sojourn_ms =
      env_double("SRE_SRV_BROWNOUT_MS", cfg.brownout_sojourn_ms);
  cfg.retry_after_min_ms =
      env_double("SRE_SRV_RETRY_AFTER_MIN_MS", cfg.retry_after_min_ms);
  cfg.retry_after_max_ms =
      env_double("SRE_SRV_RETRY_AFTER_MAX_MS", cfg.retry_after_max_ms);
  cfg.faults = sim::FaultSpec::from_env();
  return cfg;
}

// ---------------------------------------------------------------------------
// Lifecycle

PlannerService::PlannerService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache_enabled ? cfg_.cache : PlanCache::Config{0, 1}),
      faults_(cfg_.faults) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PlannerService::~PlannerService() { stop(); }

void PlannerService::stop() {
  std::deque<std::shared_ptr<Batch>> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    drained.swap(queue_);
    open_batches_.clear();
    cv_work_.notify_all();
  }
  if (!drained.empty()) {
    PlanResponse cancelled;
    cancelled.ok = false;
    cancelled.code = ErrorCode::kCancelled;
    cancelled.retryable = is_retryable(ErrorCode::kCancelled);
    cancelled.message = "service stopped before the request was served";
    for (const auto& batch : drained) {
      for (const auto& w : batch->members) fulfill(w, cancelled);
    }
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

// ---------------------------------------------------------------------------
// Request path

void PlannerService::account(const PlanResponse& resp,
                             Clock::time_point start) {
  if (resp.ok) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    completed_counter().add();
  } else {
    rejected_by_code_[static_cast<std::size_t>(resp.code)].fetch_add(
        1, std::memory_order_relaxed);
    rejection_counter(resp.code).add();
  }
  latency_histogram().observe(
      std::chrono::duration<double>(Clock::now() - start).count());
}

void PlannerService::enqueue_locked(PreparedRequest& prep,
                                    const std::shared_ptr<Waiter>& waiter,
                                    Clock::time_point deadline) {
  const auto it = open_batches_.find(prep.key);
  if (it != open_batches_.end() &&
      it->second->members.size() < cfg_.max_batch) {
    Batch& batch = *it->second;
    batch.members.push_back(waiter);
    if (deadline == Clock::time_point::max()) {
      batch.unbounded = true;
    } else if (deadline > batch.deadline) {
      batch.deadline = deadline;
    }
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    coalesced_counter().add();
  } else {
    auto batch = std::make_shared<Batch>();
    batch->key = prep.key;
    batch->key_hash = prep.key_hash;
    batch->dist = std::move(prep.dist);
    batch->solver = std::move(prep.solver);
    batch->model = prep.req.model;
    batch->attempt = prep.req.attempt;
    batch->enqueued = Clock::now();
    batch->unbounded = deadline == Clock::time_point::max();
    if (!batch->unbounded) batch->deadline = deadline;
    batch->members.push_back(waiter);
    open_batches_[batch->key] = batch;
    queue_.push_back(std::move(batch));
    cv_work_.notify_one();
  }
}

namespace {

/// The absolute deadline for a request admitted at `start`: queueing time
/// spends the budget, it does not reset it.
Clock::time_point admission_deadline(double request_ms, double default_s,
                                     Clock::time_point start) {
  const double deadline_s = request_ms > 0.0 ? request_ms / 1e3 : default_s;
  if (deadline_s <= 0.0) return Clock::time_point::max();
  return start + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(deadline_s));
}

}  // namespace

PlanResponse PlannerService::call(const PlanRequest& req) {
  static obs::SpanStats& request_series = obs::span_series("srv.request");
  obs::Span span(request_series);
  const auto start = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  request_counter().add();

  PlanResponse resp;
  const auto finish = [&](PlanResponse r) {
    account(r, start);
    return r;
  };

  PreparedRequest prep;
  try {
    prep = prepare(req);
  } catch (const ScenarioError& e) {
    reject(resp, e.code(), e.what());
    return finish(std::move(resp));
  } catch (const std::exception& e) {
    reject(resp, ErrorCode::kDomainError, e.what());
    return finish(std::move(resp));
  }

  const auto deadline =
      admission_deadline(prep.req.deadline_ms, cfg_.default_deadline_s, start);

  if (cfg_.cache_enabled && !prep.req.no_cache) {
    if (auto value = cache_.lookup(prep.key, prep.key_hash)) {
      resp.ok = true;
      resp.cached = true;
      resp.result = *value;
      return finish(std::move(resp));
    }
  }

  auto waiter = std::make_shared<Waiter>();
  waiter->deadline = deadline;
  {
    const auto admit_now = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      reject(resp, ErrorCode::kCancelled, "service is stopping");
      return finish(std::move(resp));
    }
    if (in_flight_ >= cfg_.queue_capacity) {
      reject(resp, ErrorCode::kOverloaded,
             "queue full (" + std::to_string(cfg_.queue_capacity) +
                 " requests in flight)");
      if (cfg_.brownout_sojourn_ms > 0.0) {
        resp.retry_after_ms =
            brownout_hint_ms(cfg_, queue_age_ms_locked(admit_now));
      }
      return finish(std::move(resp));
    }
    if (brownout_shed_locked(resp, admit_now, deadline)) {
      return finish(std::move(resp));
    }
    ++in_flight_;
    enqueue_locked(prep, waiter, deadline);
  }

  resp = wait_for(waiter);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  return finish(std::move(resp));
}

void PlannerService::submit(const PlanRequest& req, ResponseCallback done) {
  static obs::SpanStats& request_series = obs::span_series("srv.request");
  obs::Span span(request_series);
  const auto start = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  request_counter().add();

  PlanResponse resp;
  const auto deliver_inline = [&](PlanResponse r) {
    // Inline outcome: one stamp in every slot, so queue/solve read as zero.
    const std::uint64_t now = obs::wide::now_ns();
    r.telem.admitted_ns = now;
    r.telem.batched_ns = now;
    r.telem.solved_ns = now;
    account(r, start);
    done(std::move(r));
  };

  PreparedRequest prep;
  try {
    prep = prepare(req);
  } catch (const ScenarioError& e) {
    reject(resp, e.code(), e.what());
    deliver_inline(std::move(resp));
    return;
  } catch (const std::exception& e) {
    reject(resp, ErrorCode::kDomainError, e.what());
    deliver_inline(std::move(resp));
    return;
  }

  const auto deadline =
      admission_deadline(prep.req.deadline_ms, cfg_.default_deadline_s, start);

  if (cfg_.cache_enabled && !prep.req.no_cache) {
    if (auto value = cache_.lookup(prep.key, prep.key_hash)) {
      resp.ok = true;
      resp.cached = true;
      resp.result = *value;
      deliver_inline(std::move(resp));
      return;
    }
  }

  auto waiter = std::make_shared<Waiter>();
  waiter->deadline = deadline;
  waiter->start = start;
  waiter->callback = std::move(done);
  waiter->admitted_ns = obs::wide::now_ns();
  waiter->trace = prep.req.trace;
  bool queued = false;
  {
    const auto admit_now = Clock::now();
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      reject(resp, ErrorCode::kCancelled, "service is stopping");
    } else if (in_flight_ >= cfg_.queue_capacity) {
      reject(resp, ErrorCode::kOverloaded,
             "queue full (" + std::to_string(cfg_.queue_capacity) +
                 " requests in flight)");
      if (cfg_.brownout_sojourn_ms > 0.0) {
        resp.retry_after_ms =
            brownout_hint_ms(cfg_, queue_age_ms_locked(admit_now));
      }
    } else if (brownout_shed_locked(resp, admit_now, deadline)) {
      // resp already carries the typed shed + retry_after_ms hint.
    } else {
      ++in_flight_;
      waiter->counted_in_flight = true;
      enqueue_locked(prep, waiter, deadline);
      queued = true;
    }
  }
  if (!queued) {
    // Reclaim the callback: the waiter never entered a batch.
    ResponseCallback cb = std::move(waiter->callback);
    const std::uint64_t now = obs::wide::now_ns();
    resp.telem.admitted_ns = now;
    resp.telem.batched_ns = now;
    resp.telem.solved_ns = now;
    account(resp, start);
    cb(std::move(resp));
  }
}

void PlannerService::reject(PlanResponse& out, ErrorCode code,
                            std::string message) {
  out.ok = false;
  out.cached = false;
  out.code = code;
  out.retryable = is_retryable(code);
  out.message = std::move(message);
}

double PlannerService::queue_age_ms_locked(Clock::time_point now) const {
  if (queue_.empty()) return 0.0;
  const double age =
      std::chrono::duration<double, std::milli>(now - queue_.front()->enqueued)
          .count();
  return age > 0.0 ? age : 0.0;
}

bool PlannerService::brownout_shed_locked(PlanResponse& resp,
                                          Clock::time_point now,
                                          Clock::time_point deadline) {
  if (cfg_.brownout_sojourn_ms <= 0.0) return false;
  const double age_ms = queue_age_ms_locked(now);
  if (age_ms > cfg_.brownout_sojourn_ms) {
    brownout_shed_.fetch_add(1, std::memory_order_relaxed);
    brownout_shed_counter().add();
    reject(resp, ErrorCode::kOverloaded,
           "brownout: queue sojourn above " +
               obs::format_double(cfg_.brownout_sojourn_ms) + " ms");
    resp.retry_after_ms = brownout_hint_ms(cfg_, age_ms);
    return true;
  }
  // Doomed-request shed: a budget that cannot outlive the sojourn already
  // ahead of it would only expire in queue — rejecting now is free and, as
  // a *retryable* overload (unlike the kTimeout it would become), it tells
  // the client to come back instead of giving up. Requests that arrive
  // already expired (age 0) keep their historical kTimeout path.
  if (age_ms > 0.0 && deadline != Clock::time_point::max()) {
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(deadline - now).count();
    if (remaining_ms <= age_ms) {
      brownout_doomed_.fetch_add(1, std::memory_order_relaxed);
      brownout_doomed_counter().add();
      reject(resp, ErrorCode::kOverloaded,
             "brownout: deadline budget below current queue sojourn");
      resp.retry_after_ms = brownout_hint_ms(cfg_, age_ms);
      return true;
    }
  }
  return false;
}

PlanResponse PlannerService::wait_for(const std::shared_ptr<Waiter>& waiter) {
  std::unique_lock<std::mutex> lock(waiter->m);
  const auto ready = [&] { return waiter->done; };
  if (waiter->deadline == Clock::time_point::max()) {
    waiter->cv.wait(lock, ready);
  } else if (!waiter->cv.wait_until(lock, waiter->deadline, ready)) {
    // Abandon: mark done ourselves so the worker's late fulfill is dropped.
    waiter->done = true;
    PlanResponse timeout;
    reject(timeout, ErrorCode::kTimeout, "request deadline expired");
    return timeout;
  }
  return waiter->resp;
}

void PlannerService::fulfill(const std::shared_ptr<Waiter>& waiter,
                             const PlanResponse& resp) {
  ResponseCallback cb;
  PlanResponse delivered;
  {
    std::lock_guard<std::mutex> lock(waiter->m);
    if (waiter->done) return;  // waiter timed out, composed its own response
    waiter->done = true;
    if (!waiter->callback) {
      waiter->resp = resp;
      waiter->cv.notify_one();
      return;
    }
    cb = std::move(waiter->callback);
    delivered = resp;
    // Batch-shared stamps came with resp; admission is per member.
    delivered.telem.admitted_ns = waiter->admitted_ns;
  }
  // Blocking waiters compose their own kTimeout the instant the deadline
  // passes; async waiters mirror that at delivery so both paths serve the
  // same response for a request whose budget ran out in queue or mid-solve.
  if (waiter->deadline != Clock::time_point::max() &&
      Clock::now() > waiter->deadline) {
    reject(delivered, ErrorCode::kTimeout, "request deadline expired");
  }
  if (waiter->counted_in_flight) {
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
  }
  account(delivered, waiter->start);
  cb(std::move(delivered));
}

namespace {

/// The cached bytes: every number through obs::format_double so a replayed
/// solve serializes identically, field order fixed.
std::string serialize_result(const std::string& key,
                             const std::string& solver_name,
                             const core::ReservationSequence& plan,
                             double expected, double omniscient) {
  std::string out = "{\"key\":\"";
  out += obs::minijson::escape(key);
  out += "\",\"solver\":\"";
  out += obs::minijson::escape(solver_name);
  out += "\",\"t1\":";
  out += obs::format_double(plan.first());
  out += ",\"plan_size\":";
  out += std::to_string(plan.size());
  out += ",\"plan\":[";
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i != 0) out += ',';
    out += obs::format_double(plan[i]);
  }
  out += "],\"expected_cost\":";
  out += obs::format_double(expected);
  out += ",\"omniscient_cost\":";
  out += obs::format_double(omniscient);
  out += ",\"normalized_cost\":";
  out += obs::format_double(omniscient > 0.0 ? expected / omniscient
                                             : expected);
  out += '}';
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker side

void PlannerService::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to drain
      batch = std::move(queue_.front());
      queue_.pop_front();
      // Close the batch: once out of open_batches_ no caller can join, so
      // members below are immutable.
      const auto it = open_batches_.find(batch->key);
      if (it != open_batches_.end() && it->second == batch) {
        open_batches_.erase(it);
      }
    }
    execute_batch(batch);
  }
}

void PlannerService::execute_batch(const std::shared_ptr<Batch>& batch) {
  static obs::SpanStats& solve_series = obs::span_series("srv.solve");
  obs::Span span(solve_series);
  const std::uint64_t batched_ns = obs::wide::now_ns();
  solves_.fetch_add(1, std::memory_order_relaxed);
  solve_counter().add();

  // The batch runs under the *loosest* member deadline; members with
  // tighter budgets have already timed out of wait_for() by the time a
  // too-slow solve lands, and simply drop the late fulfill.
  sim::CancelToken token;
  if (!batch->unbounded) {
    token = sim::CancelSource::at_deadline(batch->deadline).token();
  }

  PlanResponse resp;
  try {
    if (faults_.enabled()) {
      // Chaos drill: the key hash is the fault-stream id, so a given query
      // fails deterministically; the attempt counter lets clients retry
      // through "fails N times then succeeds" schedules.
      faults_.for_scenario(batch->key_hash)
          .inject_scenario_entry(batch->attempt, token);
    }
    token.check("srv.solve");  // expire queue-stale work before solving
    core::GenerateContext ctx;
    ctx.cancel = token;
    const core::ReservationSequence plan =
        batch->solver->generate(*batch->dist, batch->model, ctx);
    const double expected =
        core::expected_cost_analytic(plan, *batch->dist, batch->model);
    const double omniscient = core::omniscient_cost(*batch->dist, batch->model);
    auto value = std::make_shared<const std::string>(serialize_result(
        batch->key, batch->solver->name(), plan, expected, omniscient));
    // Only a *successful* solve reaches the cache: rejected or faulted
    // requests can never poison later hits.
    if (cfg_.cache_enabled) cache_.insert(batch->key, batch->key_hash, value);
    resp.ok = true;
    resp.cached = false;
    resp.result = *value;
  } catch (const ScenarioError& e) {
    reject(resp, e.code(), e.what());
  } catch (const std::exception& e) {
    reject(resp, ErrorCode::kDomainError, e.what());
  }
  resp.telem.batched_ns = batched_ns;
  resp.telem.solved_ns = obs::wide::now_ns();
  resp.telem.batch_size = static_cast<std::uint32_t>(batch->members.size());
  if (obs::recorder::armed()) {
    // Flow step on the worker thread: ties the solve into each traced
    // member's loop-thread start/finish arrows (COOKBOOK 21).
    static const std::uint32_t flow_label =
        obs::recorder::intern_label("srv.flow");
    for (const auto& w : batch->members) {
      if (!w->trace.empty()) {
        obs::recorder::emit_flow(flow_label, fnv1a64(w->trace), 't');
      }
    }
  }
  for (const auto& w : batch->members) fulfill(w, resp);
}

// ---------------------------------------------------------------------------
// Reporting

ServiceCounters PlannerService::counters() const {
  ServiceCounters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.cache_hits = cache_.counters().hits;
  c.solves = solves_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    c.rejected_by_code[i] = rejected_by_code_[i].load(
        std::memory_order_relaxed);
    c.rejected += c.rejected_by_code[i];
  }
  c.brownout_shed = brownout_shed_.load(std::memory_order_relaxed);
  c.brownout_doomed = brownout_doomed_.load(std::memory_order_relaxed);
  return c;
}

std::string PlannerService::stats_json() const {
  const ServiceCounters c = counters();
  const PlanCache::Counters cc = cache_.counters();
  std::string out = "{\"requests\":" + std::to_string(c.requests);
  out += ",\"completed\":" + std::to_string(c.completed);
  out += ",\"cache\":{\"hits\":" + std::to_string(cc.hits);
  out += ",\"misses\":" + std::to_string(cc.misses);
  out += ",\"inserts\":" + std::to_string(cc.inserts);
  out += ",\"evictions\":" + std::to_string(cc.evictions);
  out += ",\"size\":" + std::to_string(cache_.size());
  out += "},\"batch\":{\"solves\":" + std::to_string(c.solves);
  out += ",\"coalesced\":" + std::to_string(c.coalesced);
  out += "},\"rejected\":{\"total\":" + std::to_string(c.rejected);
  // SweepFailureReport style: nonzero classes only, in ErrorCode order.
  out += ",\"by_code\":{";
  bool first = true;
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    if (c.rejected_by_code[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += std::string(error_code_name(static_cast<ErrorCode>(i)));
    out += "\":" + std::to_string(c.rejected_by_code[i]);
  }
  out += "}}";
  // Brownout block only when it actually fired (same nonzero-only policy
  // as by_code): baselines of non-brownout runs keep their exact bytes.
  if (c.brownout_shed != 0 || c.brownout_doomed != 0) {
    out += ",\"brownout\":{\"shed\":" + std::to_string(c.brownout_shed);
    out += ",\"doomed\":" + std::to_string(c.brownout_doomed);
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace sre::srv
