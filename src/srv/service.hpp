#pragma once

// PlannerService — the long-lived serving layer over the paper's solvers.
// Requests funnel through:
//
//   prepare (typed validation, canonical key)
//     -> plan cache (sharded LRU of serialized results; a hit returns the
//        cold solve's exact bytes)
//     -> admission control (bounded in-flight request count; overflow is a
//        typed, *retryable* kOverloaded rejection that costs no solver time)
//     -> micro-batching (concurrent requests for the same canonical key
//        coalesce onto one in-queue batch; one solve fulfills all of them)
//     -> worker pool (dedicated threads; per-request deadlines ride a
//        sim::CancelToken into the solver's inner loops)
//
// Rejections reuse the sre::ScenarioError taxonomy: kOverloaded (shed at
// admission, retryable), kTimeout (deadline expired in queue or mid-solve),
// kDomainError (malformed query), kInjectedFault (chaos drill, retryable),
// kCancelled (service stopping). Failed solves never touch the cache, so a
// faulted request can be retried without poisoning subsequent hits.
//
// Every stage is instrumented: obs:: spans ("srv.request", "srv.solve"),
// counters ("srv.requests", "srv.cache.*", "srv.batch.*", "srv.rejected.*")
// and a latency histogram ("srv.request.seconds"). The same numbers are
// mirrored in plain atomics so ServiceCounters (and BENCH_serve.json) stay
// exact under obs-off builds.

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/fault.hpp"
#include "srv/cache.hpp"
#include "srv/request.hpp"
#include "stats/error.hpp"

namespace sre::srv {

struct ServiceConfig {
  unsigned workers = 2;              ///< dedicated solver threads (min 1)
  std::size_t queue_capacity = 256;  ///< max in-flight requests (admission)
  std::size_t max_batch = 64;        ///< max requests coalesced per solve
  bool cache_enabled = true;
  PlanCache::Config cache{};
  double default_deadline_s = 0.0;   ///< applied when a request has none
  sim::FaultSpec faults{};           ///< chaos injection for served requests

  /// Adaptive brownout (CoDel-style sojourn admission). When > 0, a request
  /// is shed with a retryable kOverloaded *before* the hard in-flight cap
  /// bites whenever the oldest queued batch has waited longer than this —
  /// queue age, not queue length, is the overload signal, so a burst that
  /// the workers are absorbing quickly is admitted while a stalled queue
  /// sheds early. Sheds (and capacity overloads, while brownout is active)
  /// carry a retry_after_ms hint that grows with the excess sojourn;
  /// srv::Client floors its backoff with it. 0 (the default) disables
  /// brownout and keeps every response byte identical to earlier releases.
  double brownout_sojourn_ms = 0.0;
  double retry_after_min_ms = 5.0;     ///< hint floor when shedding
  double retry_after_max_ms = 1000.0;  ///< hint ceiling

  /// Reads the service environment knobs: SRE_SRV_CACHE (0 disables),
  /// SRE_SRV_CACHE_CAPACITY, SRE_SRV_SHARDS, SRE_SRV_QUEUE, SRE_SRV_BATCH,
  /// SRE_SRV_WORKERS, SRE_SRV_DEADLINE_MS, SRE_SRV_BROWNOUT_MS,
  /// SRE_SRV_RETRY_AFTER_MIN_MS, SRE_SRV_RETRY_AFTER_MAX_MS, plus the
  /// SRE_FAULT_* chaos knobs via sim::FaultSpec::from_env(). Unset
  /// variables keep the defaults.
  static ServiceConfig from_env();
};

/// Request-lifecycle stamps recorded by the service on the obs::wide clock
/// (injectable; see src/obs/wide.hpp). Inline outcomes — validation
/// failures, cache hits, admission sheds — carry one stamp in all three
/// slots, so the derived queue/solve components are zero. NEVER serialized:
/// format_response ignores it, which is what keeps cache-hit byte identity
/// and the replay phase intact; the event loop copies it into the request's
/// wide event instead.
struct PlanTelemetry {
  std::uint64_t admitted_ns = 0;  ///< admission decision (or inline outcome)
  std::uint64_t batched_ns = 0;   ///< a worker dequeued the request's batch
  std::uint64_t solved_ns = 0;    ///< solve finished (== batched_ns inline)
  std::uint32_t batch_size = 0;   ///< members fulfilled by the same solve
};

/// One response. On success `result` holds the serialized result fragment
/// (identical bytes for a hit and the cold solve of the same key); on
/// failure `code`/`retryable`/`message` carry the typed rejection.
struct PlanResponse {
  bool ok = false;
  bool cached = false;
  ErrorCode code = ErrorCode::kDomainError;
  bool retryable = false;
  /// Backoff hint for retryable rejections (0 = none). Emitted on the wire
  /// inside the error object only when > 0, so responses without a hint
  /// keep their exact historical bytes. srv::Client uses it as a floor on
  /// its decorrelated-jitter sleep.
  double retry_after_ms = 0.0;
  std::string message;
  std::string result;
  PlanTelemetry telem;  ///< lifecycle stamps; not part of the wire bytes
};

/// Monotonic service totals (plain atomics; exact in every build).
struct ServiceCounters {
  std::uint64_t requests = 0;   ///< calls accepted into call()
  std::uint64_t completed = 0;  ///< responded ok (hits + solved)
  std::uint64_t cache_hits = 0;
  std::uint64_t solves = 0;     ///< batches executed
  std::uint64_t coalesced = 0;  ///< requests that joined an existing batch
  std::uint64_t rejected = 0;   ///< sum of by_code
  std::array<std::uint64_t, kErrorCodeCount> rejected_by_code{};
  std::uint64_t brownout_shed = 0;    ///< kOverloaded from queue-age admission
  std::uint64_t brownout_doomed = 0;  ///< shed: budget < current queue age
};

class PlannerService {
 public:
  explicit PlannerService(ServiceConfig cfg = {});
  ~PlannerService();

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  /// Blocking call: validates, serves from cache or queues for solving,
  /// waits until the response (or the request's deadline) arrives. Never
  /// throws on bad input — every failure is a typed PlanResponse.
  [[nodiscard]] PlanResponse call(const PlanRequest& req);

  /// Delivered exactly once per submit(). Runs on the submitting thread for
  /// inline outcomes (validation failure, cache hit, admission rejection)
  /// and on a worker thread for queued solves — keep it cheap and
  /// non-blocking (the event loop posts to a mailbox and returns).
  using ResponseCallback = std::function<void(PlanResponse&&)>;

  /// Async twin of call() for the event-loop front end: same validation,
  /// cache, admission, batching, counters, and response bytes, but the
  /// caller's thread never blocks on a solve. A queued request whose
  /// deadline expires before its batch completes is delivered as the same
  /// kTimeout rejection the blocking path composes (the solve itself is
  /// cancelled cooperatively via sim::CancelSource::at_deadline).
  void submit(const PlanRequest& req, ResponseCallback done);

  /// Rejects queued work with kCancelled and joins the workers. Idempotent;
  /// the destructor calls it. Calls in flight complete with kCancelled.
  void stop();

  [[nodiscard]] ServiceCounters counters() const;
  [[nodiscard]] PlanCache::Counters cache_counters() const {
    return cache_.counters();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// Byte-stable JSON of the request/rejection totals. Unlike
  /// SweepFailureReport (which always emits every taxonomy class), only
  /// nonzero rejection classes appear here — in ErrorCode order, so two
  /// runs with the same rejection multiset serialize identically and a
  /// clean serve baseline carries no zero-noise.
  [[nodiscard]] std::string stats_json() const;

 private:
  struct Waiter;
  struct Batch;
  using Clock = std::chrono::steady_clock;

  void worker_loop();
  void execute_batch(const std::shared_ptr<Batch>& batch);
  PlanResponse wait_for(const std::shared_ptr<Waiter>& waiter);
  void reject(PlanResponse& out, ErrorCode code, std::string message);
  /// Queue sojourn of the oldest *queued* batch, in ms (0 = queue empty).
  /// Caller holds mutex_.
  [[nodiscard]] double queue_age_ms_locked(Clock::time_point now) const;
  /// The brownout admission decision. Caller holds mutex_; returns true
  /// when the request must be shed (resp filled with the typed kOverloaded
  /// rejection + retry_after_ms hint) and false when it may be admitted.
  bool brownout_shed_locked(PlanResponse& resp, Clock::time_point now,
                            Clock::time_point deadline);
  void fulfill(const std::shared_ptr<Waiter>& waiter,
               const PlanResponse& resp);
  /// Terminal accounting shared by both paths: completion/rejection
  /// counters plus the latency histogram, measured from admission.
  void account(const PlanResponse& resp, Clock::time_point start);
  /// Joins an open batch for `key` or enqueues a new one. Caller holds
  /// mutex_ and has already charged in_flight_.
  void enqueue_locked(PreparedRequest& prep,
                      const std::shared_ptr<Waiter>& waiter,
                      Clock::time_point deadline);

  ServiceConfig cfg_;
  PlanCache cache_;
  sim::FaultPlan faults_;

  std::mutex mutex_;
  std::condition_variable cv_work_;
  bool stopping_ = false;
  std::size_t in_flight_ = 0;  ///< admitted, not yet responded
  std::deque<std::shared_ptr<Batch>> queue_;
  /// Open (not yet started) batch per key, for coalescing.
  std::unordered_map<std::string, std::shared_ptr<Batch>> open_batches_;

  std::vector<std::thread> workers_;

  // Counters (plain atomics; see ServiceCounters).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::array<std::atomic<std::uint64_t>, kErrorCodeCount> rejected_by_code_{};
  std::atomic<std::uint64_t> brownout_shed_{0};
  std::atomic<std::uint64_t> brownout_doomed_{0};
};

/// In-process client: the full queue/batch/cache path without sockets.
/// Tests, benches, and the load generator use it; sre_serve wires the same
/// service to stdin/stdout and TCP via srv/protocol.hpp.
class InProcessClient {
 public:
  explicit InProcessClient(PlannerService& service) : service_(&service) {}

  [[nodiscard]] PlanResponse call(const PlanRequest& req) {
    return service_->call(req);
  }

  [[nodiscard]] PlannerService& service() noexcept { return *service_; }

 private:
  PlannerService* service_;
};

}  // namespace sre::srv
