#pragma once

// Plan queries for the srv:: planner service. A PlanRequest is the wire
// form of "what reservation sequence should I submit for this job?": an
// execution-time law, a cost model (alpha, beta, gamma), a solver choice,
// and the truncation/discretization knobs that change the solver's output.
// prepare() validates it into a PreparedRequest — instantiated law, solver,
// and the canonical cache key — throwing typed ScenarioError(kDomainError)
// on anything malformed, so admission control can reject bad queries
// before they consume queue space or solver budget.
//
// Key stability guarantee (see CONTRIBUTING.md "Request-key stability"):
// two requests that are numerically the same query — same law parameters
// (-0.0 == 0.0, spec-string or name/params form, any param order), same
// cost model, same solver with the same *effective* knobs — produce
// byte-identical keys, and therefore share one cache entry and one solve.
// Knob-insensitive solvers (the moment heuristics, whose output ignores
// n/epsilon) deliberately omit the knobs from their key fragment.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/cost_model.hpp"
#include "core/heuristics/heuristic.hpp"
#include "dist/factory.hpp"
#include "srv/hash.hpp"

namespace sre::srv {

/// One plan query, as parsed off the wire (or built directly by embedders).
struct PlanRequest {
  std::string id;           ///< client-assigned, echoed in the response
  /// Distribution, either as a CLI-style spec string
  /// ("lognormal:mu=3,sigma=0.5" or a bare Table 1 label) ...
  std::string dist_spec;
  /// ... or as an explicit (name, params) pair; `dist_spec` wins when both
  /// are set.
  std::string dist_name;
  dist::ParamMap dist_params;

  core::CostModel model{};              ///< (alpha, beta, gamma), Eq. (1)
  std::string solver = "refined-dp";    ///< platform::heuristic_names() set
  std::size_t n = 1000;                 ///< discretization samples / BF grid
  double epsilon = 1e-7;                ///< truncation quantile
  double deadline_ms = 0.0;             ///< per-request deadline; 0 = none
  int attempt = 0;    ///< client retry counter (drives fault injection)
  bool no_cache = false;  ///< bypass the cache *read* (result still stored)
  /// Opaque trace context, threaded through submit() into the wide-event
  /// access log and the flight recorder as Chrome Trace flow events
  /// (COOKBOOK 21). Never part of the cache key: two requests differing
  /// only in `trace` are the same query.
  std::string trace;
};

/// A validated, executable request.
struct PreparedRequest {
  PlanRequest req;
  dist::DistributionPtr dist;
  core::HeuristicPtr solver;
  std::string key;              ///< canonical cache key (see request_key)
  std::uint64_t key_hash = 0;   ///< fnv1a64(key): shard + fault stream id
};

// fnv1a64 moved to srv/hash.hpp (shared with cluster::Router's ring) and is
// re-exported here via the include above.

/// Canonical solver-key fragment: "solver(name=refined-dp,n=500,eps=1e-07)"
/// for knob-sensitive solvers, "solver(name=mean-doubling)" for the moment
/// heuristics whose output ignores the knobs. Throws
/// ScenarioError(kDomainError) for an unknown solver name.
[[nodiscard]] std::string solver_key(const std::string& solver, std::size_t n,
                                     double epsilon);

/// Canonical request key: "v1|<dist key>|<cost key>|<solver key>". The
/// leading version tag lets a future format change invalidate every old
/// key at once instead of aliasing.
[[nodiscard]] std::string request_key(const dist::Distribution& d,
                                      const core::CostModel& m,
                                      const std::string& solver,
                                      std::size_t n, double epsilon);

/// Instantiates the named solver with the requested knobs (knob-sensitive
/// solvers get DiscretizationOptions{n, epsilon}; brute-force maps n to its
/// t1 grid and evaluates analytically so results are sample-free). Throws
/// ScenarioError(kDomainError) for unknown names.
[[nodiscard]] core::HeuristicPtr make_solver(const std::string& solver,
                                             std::size_t n, double epsilon);

/// Validates `req` end to end: law, cost model, solver, canonical key.
/// Throws ScenarioError(kDomainError) with a message naming the offending
/// field; never returns a partially-filled result.
[[nodiscard]] PreparedRequest prepare(PlanRequest req);

}  // namespace sre::srv
