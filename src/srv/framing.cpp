#include "srv/framing.hpp"

namespace sre::srv {

void LineFramer::emit(std::string_view line, bool truncated,
                      const LineSink& sink) {
  if (!truncated && !line.empty() && line.back() == '\r') {
    line.remove_suffix(1);  // CRLF clients frame identically to LF
  }
  ++lines_;
  if (truncated) ++truncated_;
  if (sink) sink(line, truncated);
}

void LineFramer::feed(std::string_view chunk, const LineSink& sink) {
  while (!chunk.empty()) {
    const std::size_t nl = chunk.find('\n');
    const bool complete = nl != std::string_view::npos;
    const std::string_view segment =
        complete ? chunk.substr(0, nl) : chunk;
    chunk = complete ? chunk.substr(nl + 1) : std::string_view{};

    if (overflow_) {
      // Swallowing an overlong line: nothing accumulates past the cap.
      if (complete) {
        emit(buffer_, /*truncated=*/true, sink);
        buffer_.clear();
        overflow_ = false;
      }
      continue;
    }

    if (buffer_.size() + segment.size() > max_line_bytes_) {
      // Keep only the line's head for the error message, drop the rest.
      buffer_.append(segment.substr(0, max_line_bytes_ - buffer_.size()));
      if (complete) {
        emit(buffer_, /*truncated=*/true, sink);
        buffer_.clear();
      } else {
        overflow_ = true;
      }
      continue;
    }

    if (complete) {
      if (buffer_.empty()) {
        emit(segment, /*truncated=*/false, sink);  // zero-copy fast path
      } else {
        buffer_.append(segment);
        emit(buffer_, /*truncated=*/false, sink);
        buffer_.clear();
      }
    } else {
      buffer_.append(segment);
    }
  }
}

}  // namespace sre::srv
