#pragma once

// srv::ChaosSocket — a deterministic fault-injecting shim over socket I/O.
//
// Wraps the read/send syscalls the event loop and srv::Client issue with a
// sim::NetConnFaults schedule: per-op injected ECONNRESETs (the fd is also
// shutdown(2) so the peer observes a real half-close), short reads/writes
// (the op's byte count is truncated before the syscall — indistinguishable
// from TCP segmentation, which is exactly what makes them a framing test),
// and per-op delays. The shim never fabricates data: a non-faulted op is
// the raw syscall, and a chaos-disabled shim compiles down to it.
//
// All sockets here are nonblocking-or-not agnostic; the shim passes the
// syscall result through untouched (EAGAIN, EINTR, real resets). Writes
// always use send(2) with MSG_NOSIGNAL — the repo-wide SIGPIPE policy
// (ISSUE 9 satellite): a peer closing mid-response must surface as EPIPE,
// never as a process-killing signal, even in embedders that don't ignore
// SIGPIPE.
//
// Injection totals are process-wide atomics (exact in every build) plus
// srv.chaos.* obs counters, so a chaos loadgen run can assert "faults were
// actually injected" and obsdiff baselines can pin them at zero for clean
// runs.

#include <cstddef>
#include <cstdint>

#include <sys/types.h>

#include "sim/netfault.hpp"

namespace sre::srv {

/// Process-wide injection totals (monotonic; see ChaosSocket::totals()).
struct ChaosTotals {
  std::uint64_t read_resets = 0;
  std::uint64_t write_resets = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t delays = 0;
  std::uint64_t accept_drops = 0;
  std::uint64_t connect_refusals = 0;

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return read_resets + write_resets + short_reads + short_writes + delays +
           accept_drops + connect_refusals;
  }
};

class ChaosSocket {
 public:
  ChaosSocket() = default;
  explicit ChaosSocket(sim::NetConnFaults faults) noexcept
      : faults_(faults), enabled_(faults.enabled()) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// read(2) with fault injection. Injected resets return -1 with
  /// errno = ECONNRESET after shutting the socket down (the peer sees the
  /// close); short reads truncate the requested length to >= 1 byte.
  [[nodiscard]] ssize_t read(int fd, void* buf, std::size_t len) noexcept;

  /// send(2) with MSG_NOSIGNAL and fault injection (resets, short writes).
  [[nodiscard]] ssize_t send(int fd, const void* buf,
                             std::size_t len) noexcept;

  /// Counts an accept-time drop / an injected connect refusal against the
  /// process totals (the decision itself is the caller's, from
  /// NetConnFaults::accept_dropped / connect_refused).
  static void count_accept_drop() noexcept;
  static void count_connect_refusal() noexcept;

  /// Process-wide injection totals since start (or the last reset_totals).
  [[nodiscard]] static ChaosTotals totals() noexcept;
  /// Test seam: zero the totals so assertions see one run's injections.
  static void reset_totals() noexcept;

 private:
  sim::NetConnFaults faults_{};
  bool enabled_ = false;
  std::uint64_t read_ops_ = 0;   ///< read ops issued on this shim
  std::uint64_t write_ops_ = 0;  ///< write ops issued on this shim
};

}  // namespace sre::srv
