#include "srv/chaos_socket.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux POSIX: rely on the caller's SIGPIPE guard
#endif

namespace sre::srv {

namespace {

std::atomic<std::uint64_t> g_read_resets{0};
std::atomic<std::uint64_t> g_write_resets{0};
std::atomic<std::uint64_t> g_short_reads{0};
std::atomic<std::uint64_t> g_short_writes{0};
std::atomic<std::uint64_t> g_delays{0};
std::atomic<std::uint64_t> g_accept_drops{0};
std::atomic<std::uint64_t> g_connect_refusals{0};

obs::Counter& injected_counter(const char* name) {
  // Registered lazily, so clean (chaos-off) runs keep their obsdiff
  // baselines free of zero-noise srv.chaos.* keys.
  return obs::counter(name);
}

void count(std::atomic<std::uint64_t>& total, const char* counter_name) {
  total.fetch_add(1, std::memory_order_relaxed);
  injected_counter(counter_name).add();
}

/// Truncates an op's length by the schedule's fraction, never below one
/// byte (zero would read as EOF / a stuck write).
std::size_t truncate_len(std::size_t len, double fraction) noexcept {
  if (fraction >= 1.0 || len <= 1) return len;
  auto cut = static_cast<std::size_t>(static_cast<double>(len) * fraction);
  return cut == 0 ? 1 : cut;
}

/// An injected reset: half-close both directions so the peer observes a
/// real connection teardown, then report ECONNRESET to the caller.
ssize_t inject_reset(int fd) noexcept {
  (void)::shutdown(fd, SHUT_RDWR);
  errno = ECONNRESET;
  return -1;
}

}  // namespace

ssize_t ChaosSocket::read(int fd, void* buf, std::size_t len) noexcept {
  if (!enabled_) return ::read(fd, buf, len);
  const std::uint64_t op = read_ops_++;
  const double delay = faults_.delay_seconds(op);
  if (delay > 0.0) {
    count(g_delays, "srv.chaos.delays");
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  if (faults_.read_reset(op)) {
    count(g_read_resets, "srv.chaos.read_resets");
    return inject_reset(fd);
  }
  const double fraction = faults_.short_read_fraction(op);
  const std::size_t want = truncate_len(len, fraction);
  if (want != len) count(g_short_reads, "srv.chaos.short_reads");
  return ::read(fd, buf, want);
}

ssize_t ChaosSocket::send(int fd, const void* buf, std::size_t len) noexcept {
  if (!enabled_) return ::send(fd, buf, len, MSG_NOSIGNAL);
  const std::uint64_t op = write_ops_++;
  const double delay = faults_.delay_seconds(op);
  if (delay > 0.0) {
    count(g_delays, "srv.chaos.delays");
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
  if (faults_.write_reset(op)) {
    count(g_write_resets, "srv.chaos.write_resets");
    return inject_reset(fd);
  }
  const double fraction = faults_.short_write_fraction(op);
  const std::size_t want = truncate_len(len, fraction);
  if (want != len) count(g_short_writes, "srv.chaos.short_writes");
  return ::send(fd, buf, want, MSG_NOSIGNAL);
}

void ChaosSocket::count_accept_drop() noexcept {
  count(g_accept_drops, "srv.chaos.accept_drops");
}

void ChaosSocket::count_connect_refusal() noexcept {
  count(g_connect_refusals, "srv.chaos.connect_refusals");
}

ChaosTotals ChaosSocket::totals() noexcept {
  ChaosTotals t;
  t.read_resets = g_read_resets.load(std::memory_order_relaxed);
  t.write_resets = g_write_resets.load(std::memory_order_relaxed);
  t.short_reads = g_short_reads.load(std::memory_order_relaxed);
  t.short_writes = g_short_writes.load(std::memory_order_relaxed);
  t.delays = g_delays.load(std::memory_order_relaxed);
  t.accept_drops = g_accept_drops.load(std::memory_order_relaxed);
  t.connect_refusals = g_connect_refusals.load(std::memory_order_relaxed);
  return t;
}

void ChaosSocket::reset_totals() noexcept {
  g_read_resets.store(0, std::memory_order_relaxed);
  g_write_resets.store(0, std::memory_order_relaxed);
  g_short_reads.store(0, std::memory_order_relaxed);
  g_short_writes.store(0, std::memory_order_relaxed);
  g_delays.store(0, std::memory_order_relaxed);
  g_accept_drops.store(0, std::memory_order_relaxed);
  g_connect_refusals.store(0, std::memory_order_relaxed);
}

}  // namespace sre::srv
