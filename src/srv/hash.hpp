#pragma once

// FNV-1a 64-bit, the one content hash of the serving stack. The plan cache
// shards on it, the wide-event flow ids derive from it, and the cluster
// router's consistent-hash ring places both its virtual nodes and every
// canonical plan key with it — extracting it here is what makes "the router
// and the cache hash identically" a provable property (tests/test_srv_hash
// pins the digests) instead of a convention.
//
// The constants are the standard Fowler–Noll–Vo offset basis and prime;
// the digest of "" is the offset basis itself. Stable across platforms:
// the fold is over unsigned bytes and all arithmetic is mod 2^64.

#include <cstdint>
#include <string_view>

namespace sre::srv {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a 64-bit over the key bytes. Used for cache shard selection, the
/// deterministic fault-stream id of a served key, and cluster::Router ring
/// placement.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffsetBasis;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace sre::srv
