#include "srv/cache.hpp"

#include "obs/metrics.hpp"

namespace sre::srv {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

obs::Counter& hit_counter() {
  static obs::Counter& c = obs::counter("srv.cache.hits");
  return c;
}
obs::Counter& miss_counter() {
  static obs::Counter& c = obs::counter("srv.cache.misses");
  return c;
}
obs::Counter& insert_counter() {
  static obs::Counter& c = obs::counter("srv.cache.inserts");
  return c;
}
obs::Counter& eviction_counter() {
  static obs::Counter& c = obs::counter("srv.cache.evictions");
  return c;
}

}  // namespace

PlanCache::PlanCache(Config cfg)
    : capacity_(cfg.capacity) {
  const std::size_t shard_count =
      round_up_pow2(cfg.shards == 0 ? 1 : cfg.shards);
  shard_mask_ = shard_count - 1;
  // Ceil division keeps total capacity >= cfg.capacity; a tiny capacity
  // with many shards still holds at least one entry per shard.
  per_shard_capacity_ =
      capacity_ == 0 ? 0 : (capacity_ + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const std::string> PlanCache::lookup(std::string_view key,
                                                     std::uint64_t key_hash) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter().add();
    return nullptr;
  }
  Shard& shard = shard_for(key_hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter().add();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_counter().add();
  return it->second->value;
}

void PlanCache::insert(std::string_view key, std::uint64_t key_hash,
                       std::shared_ptr<const std::string> value) {
  if (capacity_ == 0) return;
  Shard& shard = shard_for(key_hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Same key => same solve => same bytes; only the recency moves.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value)});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  inserts_.fetch_add(1, std::memory_order_relaxed);
  insert_counter().add();
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    eviction_counter().add();
  }
}

PlanCache::Counters PlanCache::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  return c;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void PlanCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->index.clear();
    shard->lru.clear();
  }
}

}  // namespace sre::srv
