#pragma once

// srv::EventLoop — the C10K front end for the planner service. One epoll
// thread owns every connection; solver work runs on the PlannerService's
// existing worker pool via the async submit() path, so the loop never
// blocks on a solve. Per connection:
//
//   non-blocking reads -> LineFramer (bounded incremental NDJSON framing,
//   partial reads welcome, oversized lines answered with a typed
//   kDomainError response instead of unbounded buffering)
//     -> protocol classify (control command / malformed line / PlanRequest)
//       -> PlannerService::submit (admission control, micro-batching,
//          sim::CancelSource::at_deadline budgets — identical semantics and
//          bytes to InProcessClient::call at a fixed seed)
//         -> ordered response slots (responses stay in *request order* per
//            connection no matter how batches complete out of order)
//           -> buffered non-blocking writes; a slow client's backlog past
//              the high watermark pauses its reads (EPOLLIN off,
//              EPOLLOUT armed) until the buffer drains — backpressure
//              instead of memory growth.
//
// Workers deliver completions through a mailbox (mutex + eventfd wake);
// completions for a connection that died mid-request are dropped. Accept
// handles EINTR, transient errors, and fd exhaustion (EMFILE/ENFILE): a
// reserve descriptor is sacrificed so the pending connection can be
// accepted, answered with one retryable kOverloaded line, and closed —
// shed cleanly instead of dying or spinning. {"cmd":"shutdown"} and
// request_stop() (SIGTERM in sre_serve) both drain: stop accepting, stop
// reading, flush every pending response within the drain budget, exit.
//
// Observability: srv.conn.* counters (accepted, closed, overload_rejects,
// framing_errors, backpressure_stalls) and the srv.conn.active gauge,
// mirrored in plain atomics (EventLoopCounters) so BENCH_serve_c10k.json
// stays exact under obs-off builds.

#include <atomic>
#include <cstdint>
#include <memory>

#include "srv/service.hpp"

namespace sre::srv {

struct EventLoopConfig {
  unsigned short port = 0;    ///< 0 = kernel-assigned (see EventLoop::port())
  int backlog = 1024;         ///< listen(2) backlog (the old loop used 16)
  std::size_t max_line_bytes = 1 << 20;        ///< framer cap per connection
  std::size_t max_connections = 10000;         ///< shed accepts beyond this
  std::size_t write_high_watermark = 1 << 20;  ///< pause reads above
  std::size_t write_low_watermark = 1 << 18;   ///< resume reads below
  double drain_timeout_s = 5.0;  ///< shutdown drain budget (seconds)
};

/// Monotonic loop totals (plain atomics; exact in every build).
struct EventLoopCounters {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t overload_rejects = 0;  ///< shed at accept (conn/fd limits)
  std::uint64_t framing_errors = 0;    ///< oversized lines, typed response
  std::uint64_t backpressure_stalls = 0;  ///< reads paused on a slow writer
  std::uint64_t requests = 0;   ///< complete lines handed to the protocol
  std::uint64_t responses = 0;  ///< response lines fully written
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class EventLoop {
 public:
  /// Binds 127.0.0.1:port and prepares the epoll set; throws
  /// std::runtime_error when the socket cannot be set up (port in use,
  /// unsupported platform). The service must outlive the loop.
  EventLoop(PlannerService& service, EventLoopConfig cfg = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The bound port (resolves config port 0 to the kernel's choice).
  [[nodiscard]] unsigned short port() const noexcept { return port_; }

  /// Runs the loop on the calling thread until a {"cmd":"shutdown"} line
  /// completes or request_stop() is called, then drains and returns.
  void run();

  /// Requests a drain-and-exit. Thread-safe and async-signal-safe (an
  /// atomic store plus one write(2) to an eventfd), so sre_serve calls it
  /// straight from its SIGTERM handler.
  void request_stop() noexcept;

  [[nodiscard]] EventLoopCounters counters() const;
  [[nodiscard]] const EventLoopConfig& config() const noexcept {
    return cfg_;
  }

 private:
  struct Impl;
  friend struct Impl;

  PlannerService& service_;
  EventLoopConfig cfg_;
  unsigned short port_ = 0;
  std::unique_ptr<Impl> impl_;

  std::atomic<bool> stop_requested_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> overload_rejects_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> backpressure_stalls_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace sre::srv
