#pragma once

// srv::EventLoop — the C10K front end for the planner service. One epoll
// thread owns every connection; solver work runs on the PlannerService's
// existing worker pool via the async submit() path, so the loop never
// blocks on a solve. Per connection:
//
//   non-blocking reads -> LineFramer (bounded incremental NDJSON framing,
//   partial reads welcome, oversized lines answered with a typed
//   kDomainError response instead of unbounded buffering)
//     -> protocol classify (control command / malformed line / PlanRequest)
//       -> PlannerService::submit (admission control, micro-batching,
//          sim::CancelSource::at_deadline budgets — identical semantics and
//          bytes to InProcessClient::call at a fixed seed)
//         -> ordered response slots (responses stay in *request order* per
//            connection no matter how batches complete out of order)
//           -> buffered non-blocking writes; a slow client's backlog past
//              the high watermark pauses its reads (EPOLLIN off,
//              EPOLLOUT armed) until the buffer drains — backpressure
//              instead of memory growth.
//
// Workers deliver completions through a mailbox (mutex + eventfd wake);
// completions for a connection that died mid-request are dropped. Accept
// handles EINTR, transient errors, and fd exhaustion (EMFILE/ENFILE): a
// reserve descriptor is sacrificed so the pending connection can be
// accepted, answered with one retryable kOverloaded line, and closed —
// shed cleanly instead of dying or spinning. {"cmd":"shutdown"} and
// request_stop() (SIGTERM in sre_serve) both drain: stop accepting, stop
// reading, flush every pending response within the drain budget, exit.
//
// Telemetry (COOKBOOK recipe 21): every request, error, and oversized line
// carries a wide-event draft through its response slot — stamped at
// accepted/framed on the loop thread, at admitted/batched/solved by the
// service (PlanTelemetry), at slotted when the completion lands, and at
// flushed once the last response byte clears the socket — then emitted as
// one NDJSON line to the bounded obs::wide::Sink named by
// `EventLoopConfig::access_log`. `{"stats":true}` is answered inline by
// the loop thread with format_server_stats(): loop counters, per-connection
// state, and rate-over-window figures from a periodic SnapshotRing; the
// same tick dumps the metrics registry to `prom_path` in Prometheus text
// format. Under obs-off builds the sink never opens, so the access log is
// compiled out while counters and the stats verb stay exact.
//
// Observability: srv.conn.* counters (accepted, closed, overload_rejects,
// framing_errors, backpressure_pauses) and the srv.conn.open gauge,
// mirrored in plain atomics (EventLoopCounters) so BENCH_serve_c10k.json
// stays exact under obs-off builds.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/netfault.hpp"
#include "srv/service.hpp"

namespace sre::obs::wide {
class Sink;
}  // namespace sre::obs::wide

namespace sre::srv {

struct EventLoopConfig {
  unsigned short port = 0;    ///< 0 = kernel-assigned (see EventLoop::port())
  int backlog = 1024;         ///< listen(2) backlog (the old loop used 16)
  std::size_t max_line_bytes = 1 << 20;        ///< framer cap per connection
  std::size_t max_connections = 10000;         ///< shed accepts beyond this
  std::size_t write_high_watermark = 1 << 20;  ///< pause reads above
  std::size_t write_low_watermark = 1 << 18;   ///< resume reads below
  double drain_timeout_s = 5.0;  ///< shutdown drain budget (seconds)
  std::string access_log;        ///< wide-event NDJSON path; empty = off
  std::size_t access_log_capacity = 16384;  ///< sink queue bound (see drops)
  std::string prom_path;         ///< Prometheus text dump path; empty = off
  double stats_interval_s = 1.0;  ///< snapshot/prom tick period; <=0 = off
  /// Server-side network chaos (srv::ChaosSocket over every accepted fd,
  /// accept-time drops at the accept seam). Connection ids are the fault
  /// stream ids, so a seeded run replays the same injection schedule.
  /// Disabled by default; sre_serve wires sim::NetFaultSpec::from_env().
  sim::NetFaultSpec net_faults{};
  /// Async verb handler for cluster task lines ({"task":...}). Called on
  /// the loop thread with the raw line; implementations must run the work
  /// elsewhere (cluster::TaskExecutor owns a dispatch thread) and call
  /// done(response_line) from any thread — the completion rides the same
  /// mailbox/ordered-slot path as solver responses, so task responses
  /// interleave correctly with pipelined plan requests and the loop thread
  /// never blocks on a shard. Unset (the default, sre_serve): task lines
  /// are answered inline with a typed, non-retryable kDomainError.
  using TaskHandler =
      std::function<void(std::string line, std::function<void(std::string)>)>;
  TaskHandler task_handler;
};

/// Monotonic loop totals (plain atomics; exact in every build).
struct EventLoopCounters {
  std::uint64_t open = 0;  ///< currently-open connections (accepted - closed)
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t overload_rejects = 0;  ///< shed at accept (conn/fd limits)
  std::uint64_t framing_errors = 0;    ///< oversized lines, typed response
  std::uint64_t backpressure_pauses = 0;  ///< reads paused on a slow writer
  std::uint64_t requests = 0;   ///< complete lines handed to the protocol
  std::uint64_t responses = 0;  ///< response lines fully written
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t wide_written = 0;  ///< access-log lines flushed to disk
  std::uint64_t wide_dropped = 0;  ///< access-log lines shed at capacity
};

/// Per-connection state as reported by the {"stats":true} verb.
struct ConnSnapshot {
  std::uint64_t id = 0;
  int fd = -1;
  std::size_t queued = 0;    ///< response slots pending (done or not)
  std::size_t inflight = 0;  ///< slots still waiting on a worker
  bool paused = false;       ///< reads off: write backlog past watermark
  std::size_t backlog = 0;   ///< write-buffer bytes not yet on the wire
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Everything the {"stats":true} verb reports, gathered on the loop thread
/// (connection state is only coherent there). format_server_stats() is a
/// pure serializer over this struct so tests can pin the exact bytes
/// without a socket.
struct ServerStatsSnapshot {
  EventLoopCounters loop;
  double window_seconds = 0.0;  ///< rate window span; 0 = no window yet
  double requests_per_sec = 0.0;
  double responses_per_sec = 0.0;
  double bytes_in_per_sec = 0.0;
  double bytes_out_per_sec = 0.0;
  std::vector<ConnSnapshot> conns;  ///< sorted by connection id
  std::string service_stats_json;   ///< PlannerService::stats_json() bytes
};

/// Byte-stable JSON for the {"stats":true} verb:
///   {"ok":true,"loop":{...},"wide":{...},"rates":{...},
///    "conns":[{...},...],"service":<stats_json>}
/// Fixed field order, doubles via obs::format_double — two identical
/// snapshots serialize identically.
[[nodiscard]] std::string format_server_stats(
    const ServerStatsSnapshot& snapshot);

class EventLoop {
 public:
  /// Binds 127.0.0.1:port and prepares the epoll set; throws
  /// std::runtime_error when the socket cannot be set up (port in use,
  /// unsupported platform) or the access log cannot be created. The
  /// service must outlive the loop.
  EventLoop(PlannerService& service, EventLoopConfig cfg = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The bound port (resolves config port 0 to the kernel's choice).
  [[nodiscard]] unsigned short port() const noexcept { return port_; }

  /// Runs the loop on the calling thread until a {"cmd":"shutdown"} line
  /// completes or request_stop() is called, then drains and returns.
  void run();

  /// Requests a drain-and-exit. Thread-safe and async-signal-safe (an
  /// atomic store plus one write(2) to an eventfd), so sre_serve calls it
  /// straight from its SIGTERM handler.
  void request_stop() noexcept;

  [[nodiscard]] EventLoopCounters counters() const;
  [[nodiscard]] const EventLoopConfig& config() const noexcept {
    return cfg_;
  }

  /// The access-log sink, or nullptr when none is configured (or under
  /// obs-off builds). Test seam: Sink::set_paused simulates a stalled disk
  /// so the drop accounting is observable. Valid for the loop's lifetime.
  [[nodiscard]] obs::wide::Sink* wide_sink() noexcept;

 private:
  struct Impl;
  friend struct Impl;

  PlannerService& service_;
  EventLoopConfig cfg_;
  unsigned short port_ = 0;
  std::unique_ptr<Impl> impl_;

  std::atomic<bool> stop_requested_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> overload_rejects_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace sre::srv
