#include "srv/protocol.hpp"

#include <cmath>

#include "obs/minijson.hpp"
#include "obs/report.hpp"
#include "stats/error.hpp"

namespace sre::srv {

namespace {

using obs::minijson::Value;

[[noreturn]] void bad(const std::string& message) {
  throw ScenarioError(ErrorCode::kDomainError, message);
}

double number_field(const Value& v, const char* field) {
  if (!v.is_number()) bad(std::string("field '") + field + "' must be a number");
  return v.number;
}

/// Ids may arrive as strings or numbers; numbers normalize through
/// format_double so "1" and 1 echo identically.
std::string id_of(const Value& v) {
  if (v.is_string()) return v.string;
  if (v.is_number()) return obs::format_double(v.number);
  bad("field 'id' must be a string or number");
}

void apply_dist(PlanRequest& req, const Value& v) {
  if (v.is_string()) {
    req.dist_spec = v.string;
    return;
  }
  if (!v.is_object()) bad("field 'dist' must be a spec string or an object");
  const Value* name = v.find("name");
  if (name == nullptr || !name->is_string()) {
    bad("dist object needs a string 'name'");
  }
  req.dist_name = name->string;
  if (const Value* params = v.find("params")) {
    if (!params->is_object()) bad("dist 'params' must be an object");
    for (const auto& [key, val] : params->object) {
      req.dist_params[key] = number_field(val, key.c_str());
    }
  }
}

void apply_cost(PlanRequest& req, const Value& root) {
  const Value* cost = root.find("cost");
  if (cost != nullptr) {
    if (!cost->is_object()) bad("field 'cost' must be an object");
    if (const Value* a = cost->find("alpha")) {
      req.model.alpha = number_field(*a, "cost.alpha");
    }
    if (const Value* b = cost->find("beta")) {
      req.model.beta = number_field(*b, "cost.beta");
    }
    if (const Value* g = cost->find("gamma")) {
      req.model.gamma = number_field(*g, "cost.gamma");
    }
    return;
  }
  if (const Value* a = root.find("alpha")) {
    req.model.alpha = number_field(*a, "alpha");
  }
  if (const Value* b = root.find("beta")) {
    req.model.beta = number_field(*b, "beta");
  }
  if (const Value* g = root.find("gamma")) {
    req.model.gamma = number_field(*g, "gamma");
  }
}

PlanRequest build_request(const Value& root, std::string* id_out) {
  if (!root.is_object()) bad("request line must be a JSON object");
  PlanRequest req;
  if (const Value* id = root.find("id")) {
    req.id = id_of(*id);
    if (id_out != nullptr) *id_out = req.id;
  }
  const Value* dist = root.find("dist");
  if (dist == nullptr) bad("request has no distribution (need \"dist\")");
  apply_dist(req, *dist);
  apply_cost(req, root);
  if (const Value* solver = root.find("solver")) {
    if (!solver->is_string()) bad("field 'solver' must be a string");
    req.solver = solver->string;
  }
  if (const Value* n = root.find("n")) {
    const double v = number_field(*n, "n");
    if (v < 1.0 || v != std::floor(v)) bad("'n' must be a positive integer");
    req.n = static_cast<std::size_t>(v);
  }
  if (const Value* eps = root.find("epsilon")) {
    req.epsilon = number_field(*eps, "epsilon");
  }
  if (const Value* dl = root.find("deadline_ms")) {
    req.deadline_ms = number_field(*dl, "deadline_ms");
  }
  if (const Value* attempt = root.find("attempt")) {
    const double v = number_field(*attempt, "attempt");
    if (v < 0.0 || v != std::floor(v)) {
      bad("'attempt' must be a nonnegative integer");
    }
    req.attempt = static_cast<int>(v);
  }
  if (const Value* nc = root.find("no_cache")) {
    if (nc->kind != Value::Kind::kBool) bad("'no_cache' must be a boolean");
    req.no_cache = nc->boolean;
  }
  if (const Value* trace = root.find("trace")) {
    if (!trace->is_string()) bad("field 'trace' must be a string");
    req.trace = trace->string;
  }
  return req;
}

}  // namespace

PlanRequest parse_request_line(std::string_view line, std::string* id_out) {
  const auto parsed = obs::minijson::parse(line);
  if (!parsed.ok) bad("malformed JSON: " + parsed.error);
  return build_request(parsed.value, id_out);
}

std::string format_response(const std::string& id, const PlanResponse& resp) {
  std::string out = "{\"id\":\"";
  out += obs::minijson::escape(id);
  out += "\",\"ok\":";
  if (resp.ok) {
    out += "true,\"cached\":";
    out += resp.cached ? "true" : "false";
    out += ",\"result\":";
    out += resp.result;  // cache-value bytes, verbatim
  } else {
    out += "false,\"error\":{\"code\":\"";
    out += std::string(error_code_name(resp.code));
    out += "\",\"retryable\":";
    out += resp.retryable ? "true" : "false";
    out += ",\"message\":\"";
    out += obs::minijson::escape(resp.message);
    out += '"';
    // Hint is conditional so hint-free rejections keep their exact
    // historical bytes (replay/obsdiff depend on that).
    if (resp.retry_after_ms > 0.0) {
      out += ",\"retry_after_ms\":";
      out += obs::format_double(resp.retry_after_ms);
    }
    out += '}';
  }
  out += '}';
  return out;
}

ClassifiedLine classify_line(std::string_view line) {
  ClassifiedLine out;
  std::string id;
  try {
    const auto parsed = obs::minijson::parse(line);
    if (!parsed.ok) bad("malformed JSON: " + parsed.error);
    if (const Value* cmd = parsed.value.find("cmd")) {
      if (!cmd->is_string()) bad("field 'cmd' must be a string");
      if (cmd->string == "stats") {
        out.kind = ClassifiedLine::Kind::kStats;
        return out;
      }
      if (cmd->string == "shutdown") {
        out.kind = ClassifiedLine::Kind::kShutdown;
        out.response = "{\"ok\":true,\"shutdown\":true}";
        return out;
      }
      bad("unknown command '" + cmd->string + "'");
    }
    // {"stats":true} with no "dist" is the live-introspection verb; a plan
    // request carrying a stray "stats" field stays a plan request. The same
    // guard applies to the ping and task verbs below.
    if (const Value* stats = parsed.value.find("stats")) {
      if (stats->kind == Value::Kind::kBool && stats->boolean &&
          parsed.value.find("dist") == nullptr) {
        out.kind = ClassifiedLine::Kind::kServerStats;
        return out;
      }
    }
    if (const Value* ping = parsed.value.find("ping")) {
      if (ping->kind == Value::Kind::kBool && ping->boolean &&
          parsed.value.find("dist") == nullptr) {
        out.kind = ClassifiedLine::Kind::kPing;
        out.response = std::string(kPongLine);
        return out;
      }
    }
    if (const Value* task = parsed.value.find("task")) {
      if (task->is_string() && parsed.value.find("dist") == nullptr) {
        // The frame itself (version, key, shard, spec) is cluster::'s
        // concern; classification only routes the raw line to whichever
        // task handler the transport wires up.
        out.kind = ClassifiedLine::Kind::kTask;
        return out;
      }
    }
    out.request = build_request(parsed.value, &id);
    out.kind = ClassifiedLine::Kind::kRequest;
  } catch (const ScenarioError& e) {
    PlanResponse resp;
    resp.ok = false;
    resp.code = e.code();
    resp.retryable = is_retryable(e.code());
    resp.message = e.what();
    out.kind = ClassifiedLine::Kind::kError;
    out.error_code = e.code();
    out.id = id;
    out.response = format_response(id, resp);
  }
  return out;
}

LineOutcome handle_line(PlannerService& service, std::string_view line) {
  LineOutcome outcome;
  ClassifiedLine c = classify_line(line);
  switch (c.kind) {
    case ClassifiedLine::Kind::kStats:
      outcome.line = service.stats_json();
      break;
    case ClassifiedLine::Kind::kServerStats:
      // No event loop on the stdio transport: loop state is null, the
      // service block is the same byte-stable stats JSON.
      outcome.line = "{\"ok\":true,\"loop\":null,\"service\":" +
                     service.stats_json() + "}";
      break;
    case ClassifiedLine::Kind::kPing:
      outcome.line = std::move(c.response);
      break;
    case ClassifiedLine::Kind::kTask: {
      // The stdio transport has no task executor; tasks need a worker
      // front end (sre_worker --tcp). Non-retryable: redialing the same
      // transport cannot make a handler appear.
      PlanResponse resp;
      resp.ok = false;
      resp.code = ErrorCode::kDomainError;
      resp.retryable = is_retryable(ErrorCode::kDomainError);
      resp.message = "no task handler on this transport";
      outcome.line = format_response("", resp);
      break;
    }
    case ClassifiedLine::Kind::kShutdown:
      outcome.line = std::move(c.response);
      outcome.shutdown = true;
      break;
    case ClassifiedLine::Kind::kError:
      outcome.line = std::move(c.response);
      break;
    case ClassifiedLine::Kind::kRequest:
      outcome.line = format_response(c.request.id, service.call(c.request));
      break;
  }
  return outcome;
}

}  // namespace sre::srv
