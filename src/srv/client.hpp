#pragma once

// srv::Client — the resilient NDJSON client for sre_serve.
//
// Extracted from sre_loadgen's socket plumbing so every consumer of the
// wire protocol shares one hardened dial/retry/reconnect path instead of
// re-growing ad-hoc loops. The pieces:
//
//   * EINTR-safe connect/send/recv with MSG_NOSIGNAL on every send (the
//     repo-wide SIGPIPE policy: a dead peer costs EPIPE, never a signal);
//   * the shared net::RetryPolicy (decorrelated jitter, the same schedule
//     SweepRunner::run_resilient uses) between attempts of call();
//   * typed retry discipline: only *retryable* failures are retried —
//     transport errors (reset, refusal, EOF mid-frame -> kTransport) and
//     retryable wire rejections (kOverloaded, kInjectedFault). A
//     kDomainError response is never retried: a malformed request does not
//     become well-formed by asking again;
//   * server backoff hints: a rejection carrying "retry_after_ms" floors
//     the next jittered sleep (RetrySchedule::next(hint)) — the client half
//     of the brownout feedback loop;
//   * a per-request deadline budget that *shrinks across attempts*: when
//     the next sleep would outlive the remaining budget the call fails
//     with kTimeout instead of sleeping past its own deadline;
//   * a half-open circuit breaker on consecutive transport failures:
//     while open, calls fail fast with kOverloaded (no dial, no sleep);
//     after the cooldown one probe call is let through — success closes
//     the breaker, failure re-opens it;
//   * a pipelined mode (post()/recv_line()) for C10K-style load: requests
//     stream without waiting, responses arrive in request order, and a
//     mid-stream transport failure reconnects and *replays the unacked
//     tail* — requests are idempotent queries, so a survivor's bytes are
//     identical to a fault-free run;
//   * optional client-side chaos: a sim::NetFaultSpec dials the client's
//     own sockets through srv::ChaosSocket (streams offset by
//     NetFaultPlan::kClientStreamBase so in-process runs never alias the
//     server's schedules) and injects connect refusals before dialing.
//
// Counters are per-instance plain structs (loadgen sums its workers) plus
// lazily-registered srv.client.* obs counters.

#include <cstdint>
#include <deque>
#include <string>

#include "net/retry.hpp"
#include "sim/netfault.hpp"
#include "srv/chaos_socket.hpp"
#include "stats/error.hpp"

namespace sre::srv {

struct ClientConfig {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
  net::RetryPolicy retry{};     ///< attempts + jittered backoff for call()
  double request_deadline_s = 0.0;  ///< per-call budget across attempts; 0 = off
  int breaker_threshold = 0;        ///< consecutive transport failures; 0 = off
  double breaker_cooldown_s = 1.0;  ///< open -> half-open probe delay
  sim::NetFaultSpec net_faults{};   ///< client-side chaos (off by default)
  /// Fault stream id of this client's first connection; reconnects use
  /// consecutive ids. Offset client instances (base + k) so each has an
  /// independent schedule.
  std::uint64_t fault_stream = sim::NetFaultPlan::kClientStreamBase;
};

/// The outcome of one call(). `ok` means a response line arrived and its
/// wire "ok" field is true; otherwise `code` holds the typed failure — a
/// wire rejection's code verbatim, kTransport when the connection died
/// with no final response, kTimeout when the budget ran out, kOverloaded
/// when the breaker refused to dial.
struct CallResult {
  bool ok = false;
  std::string line;  ///< last response line received ("" on pure transport)
  ErrorCode code = ErrorCode::kTransport;
  bool retryable = false;
  std::string message;
  int attempts = 0;         ///< wire attempts actually made
  double slept_s = 0.0;     ///< total backoff slept
  double retry_after_ms = 0.0;  ///< last server hint seen (0 = none)
};

/// Monotonic per-instance totals.
struct ClientCounters {
  std::uint64_t calls = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t wire_errors = 0;       ///< final {"ok":false} responses
  std::uint64_t transport_errors = 0;  ///< resets/refusals/EOF observed
  std::uint64_t retries = 0;           ///< extra attempts after the first
  std::uint64_t reconnects = 0;        ///< successful re-dials after failure
  std::uint64_t hints_honored = 0;     ///< sleeps floored by retry_after_ms
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t replayed = 0;  ///< pipelined requests resent after reconnect
};

class Client {
 public:
  explicit Client(ClientConfig cfg);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip with the full retry discipline.
  /// `request_line` must be a single NDJSON object without the newline.
  /// Retried attempts resend the same bytes (requests are idempotent
  /// queries keyed by their canonical content).
  [[nodiscard]] CallResult call(const std::string& request_line);

  // -- pipelined mode --------------------------------------------------------

  /// Queues and sends one request without waiting for its response. False
  /// when the connection cannot be (re)established; the request is still
  /// queued and a later post/recv will replay it.
  bool post(const std::string& request_line);

  /// Next response line, in request order. A mid-stream transport failure
  /// reconnects and replays every unacked request before reading on.
  /// False only when reconnect attempts are exhausted.
  [[nodiscard]] bool recv_line(std::string& out);

  /// Requests posted whose responses have not been received yet.
  [[nodiscard]] std::size_t unacked() const noexcept {
    return unacked_.size();
  }

  /// Closes the connection (idempotent); the next call()/post() re-dials.
  void close() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const ClientCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const ClientConfig& config() const noexcept { return cfg_; }

 private:
  /// Dials (or returns the live fd). Applies injected connect refusals,
  /// EINTR-safe connect, breaker accounting. -1 on failure.
  int ensure_connected();
  /// Sends the whole buffer through the chaos shim, EINTR/short-write safe.
  bool send_all(const std::string& data);
  /// Reads one newline-terminated line into `out` (newline stripped).
  /// Returns false on EOF/reset; leftover bytes stay in rbuf_.
  bool read_line(std::string& out);
  /// Reconnects and replays the unacked tail (pipelined mode).
  bool reconnect_and_replay();
  void note_transport_error();
  void note_transport_success();
  [[nodiscard]] bool breaker_blocks();

  ClientConfig cfg_;
  ClientCounters counters_{};
  int fd_ = -1;
  bool ever_connected_ = false;  ///< distinguishes first dial from reconnect
  std::uint64_t dial_count_ = 0;  ///< connections attempted (stream offset)
  std::uint64_t call_stream_ = 0;  ///< jitter substream per call/reconnect
  ChaosSocket sock_;              ///< shim for the current connection
  std::string rbuf_;              ///< bytes read, not yet consumed as lines
  std::deque<std::string> unacked_;  ///< pipelined lines awaiting responses
  int consecutive_transport_failures_ = 0;
  bool breaker_open_ = false;
  double breaker_reopen_monotonic_s_ = 0.0;  ///< half-open probe time
};

}  // namespace sre::srv
