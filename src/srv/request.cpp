#include "srv/request.hpp"

#include <algorithm>
#include <cctype>

#include "core/heuristics/brute_force.hpp"
#include "core/heuristics/dp_discretization.hpp"
#include "core/heuristics/moment_based.hpp"
#include "core/heuristics/refined_dp.hpp"
#include "platform/cli.hpp"
#include "stats/canonical.hpp"
#include "stats/error.hpp"

namespace sre::srv {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Canonical solver names, aliases folded ("bf" -> "brute-force"). Returns
/// empty for unknown names.
std::string canonical_solver(const std::string& solver) {
  const std::string n = lower(solver);
  if (n == "brute-force" || n == "bruteforce" || n == "bf") {
    return "brute-force";
  }
  if (n == "mean-by-mean") return "mean-by-mean";
  if (n == "mean-stdev") return "mean-stdev";
  if (n == "mean-doubling") return "mean-doubling";
  if (n == "median-by-median" || n == "med-by-med") return "median-by-median";
  if (n == "equal-time") return "equal-time";
  if (n == "equal-probability" || n == "equal-prob") {
    return "equal-probability";
  }
  if (n == "refined-dp") return "refined-dp";
  return {};
}

bool knob_sensitive(const std::string& canonical) {
  return canonical == "equal-time" || canonical == "equal-probability" ||
         canonical == "refined-dp" || canonical == "brute-force";
}

}  // namespace

std::string solver_key(const std::string& solver, std::size_t n,
                       double epsilon) {
  const std::string canonical = canonical_solver(solver);
  if (canonical.empty()) {
    throw ScenarioError(ErrorCode::kDomainError,
                        "unknown solver '" + solver + "'");
  }
  if (!knob_sensitive(canonical)) return "solver(name=" + canonical + ")";
  return "solver(name=" + canonical +
         ",n=" + std::to_string(n) +
         ",eps=" + stats::canonical_key_double(epsilon, "request.epsilon") +
         ")";
}

std::string request_key(const dist::Distribution& d, const core::CostModel& m,
                        const std::string& solver, std::size_t n,
                        double epsilon) {
  return "v1|" + d.to_key() + "|" + m.to_key() + "|" +
         solver_key(solver, n, epsilon);
}

core::HeuristicPtr make_solver(const std::string& solver, std::size_t n,
                               double epsilon) {
  const std::string canonical = canonical_solver(solver);
  if (canonical.empty()) {
    throw ScenarioError(ErrorCode::kDomainError,
                        "unknown solver '" + solver + "'");
  }
  if (canonical == "equal-time") {
    return std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
        n, epsilon, sim::DiscretizationScheme::kEqualTime});
  }
  if (canonical == "equal-probability") {
    return std::make_shared<core::DiscretizedDp>(sim::DiscretizationOptions{
        n, epsilon, sim::DiscretizationScheme::kEqualProbability});
  }
  if (canonical == "refined-dp") {
    core::RefinedDpOptions opts;
    opts.disc =
        sim::DiscretizationOptions{n, epsilon,
                                   sim::DiscretizationScheme::kEqualProbability};
    return std::make_shared<core::RefinedDp>(opts);
  }
  if (canonical == "brute-force") {
    // Analytic evaluation: the served plan is a pure function of the query
    // (no Monte-Carlo seed in the key), and the Eq. (11) recurrence polls
    // the request's cancel token.
    core::BruteForceOptions opts;
    opts.grid_points = n;
    opts.analytic_eval = true;
    return std::make_shared<core::BruteForce>(opts);
  }
  // Moment heuristics: parameter-free, delegate to the shared CLI registry.
  std::string err;
  auto h = platform::parse_heuristic_spec(canonical, &err);
  if (!h) throw ScenarioError(ErrorCode::kDomainError, err);
  return h;
}

PreparedRequest prepare(PlanRequest req) {
  std::string err;
  dist::DistributionPtr d;
  if (!req.dist_spec.empty()) {
    d = platform::parse_distribution_spec(req.dist_spec, &err);
  } else if (!req.dist_name.empty()) {
    d = dist::make_distribution(req.dist_name, req.dist_params);
    if (!d && req.dist_params.empty()) {
      if (const auto inst = dist::paper_distribution(req.dist_name)) {
        d = inst->dist;
      }
    }
    if (!d) {
      err = "unknown distribution '" + req.dist_name +
            "' or missing parameters";
    }
  } else {
    err = "request has no distribution (need \"dist\")";
  }
  if (!d) throw ScenarioError(ErrorCode::kDomainError, err);

  if (!req.model.valid()) {
    throw ScenarioError(ErrorCode::kDomainError,
                        "invalid cost model " + req.model.describe() +
                            " (need alpha > 0, beta >= 0, gamma >= 0)");
  }
  if (req.n == 0) {
    throw ScenarioError(ErrorCode::kDomainError, "n must be positive");
  }
  if (!(req.epsilon > 0.0) || !(req.epsilon < 1.0)) {
    throw ScenarioError(ErrorCode::kDomainError,
                        "epsilon must lie in (0, 1)");
  }
  if (req.deadline_ms < 0.0 || req.attempt < 0) {
    throw ScenarioError(ErrorCode::kDomainError,
                        "deadline_ms and attempt must be nonnegative");
  }

  PreparedRequest prep;
  prep.dist = std::move(d);
  prep.solver = make_solver(req.solver, req.n, req.epsilon);
  // to_key() rejects NaN / -0.0 hazards here, before any queueing.
  prep.key = request_key(*prep.dist, req.model, req.solver, req.n,
                         req.epsilon);
  prep.key_hash = fnv1a64(prep.key);
  prep.req = std::move(req);
  return prep;
}

}  // namespace sre::srv
