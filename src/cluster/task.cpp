#include "cluster/task.hpp"

#include <cmath>

#include "dist/factory.hpp"
#include "obs/minijson.hpp"
#include "obs/report.hpp"
#include "srv/hash.hpp"
#include "srv/request.hpp"

namespace sre::cluster {

namespace {

using obs::minijson::Value;

[[noreturn]] void bad(const std::string& message) {
  throw ScenarioError(ErrorCode::kDomainError, message);
}

double number_field(const Value& v, const char* field) {
  if (!v.is_number()) bad(std::string("field '") + field + "' must be a number");
  return v.number;
}

std::size_t index_field(const Value& v, const char* field) {
  const double d = number_field(v, field);
  if (d < 0.0 || d != std::floor(d)) {
    bad(std::string("field '") + field + "' must be a nonnegative integer");
  }
  return static_cast<std::size_t>(d);
}

const Value& require(const Value& root, const char* field) {
  const Value* v = root.find(field);
  if (v == nullptr) bad(std::string("frame has no '") + field + "' field");
  return *v;
}

std::string string_field(const Value& v, const char* field) {
  if (!v.is_string()) bad(std::string("field '") + field + "' must be a string");
  return v.string;
}

/// Fixed-width lowercase hex, so task keys sort and align predictably.
std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

void append_double(std::string& out, double v) { out += obs::format_double(v); }

}  // namespace

std::string SweepSpec::to_json() const {
  std::string out = "{\"v\":1,\"dists\":[";
  bool first = true;
  for (const auto& d : dists) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += obs::minijson::escape(d);
    out += '"';
  }
  out += "],\"models\":[";
  first = true;
  for (const auto& m : models) {
    if (!first) out += ',';
    first = false;
    out += "{\"label\":\"";
    out += obs::minijson::escape(m.label);
    out += "\",\"alpha\":";
    append_double(out, m.alpha);
    out += ",\"beta\":";
    append_double(out, m.beta);
    out += ",\"gamma\":";
    append_double(out, m.gamma);
    out += '}';
  }
  out += "],\"solvers\":[";
  first = true;
  for (const auto& s : solvers) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += obs::minijson::escape(s);
    out += '"';
  }
  out += "],\"n\":";
  out += std::to_string(n);
  out += ",\"epsilon\":";
  append_double(out, epsilon);
  out += ",\"mc_samples\":";
  out += std::to_string(mc_samples);
  out += ",\"mc_seed\":";
  out += std::to_string(mc_seed);
  out += '}';
  return out;
}

std::uint64_t SweepSpec::hash() const { return srv::fnv1a64(to_json()); }

std::vector<core::SweepScenario> SweepSpec::grid() const {
  if (dists.empty() || models.empty() || solvers.empty()) {
    bad("sweep spec needs at least one distribution, model, and solver");
  }
  std::vector<dist::PaperInstance> instances;
  instances.reserve(dists.size());
  for (const auto& label : dists) {
    auto inst = dist::paper_distribution(label);
    if (!inst) bad("unknown paper distribution '" + label + "'");
    instances.push_back(std::move(*inst));
  }
  std::vector<std::pair<std::string, core::CostModel>> cost_models;
  cost_models.reserve(models.size());
  for (const auto& m : models) {
    cost_models.emplace_back(m.label,
                             core::CostModel{m.alpha, m.beta, m.gamma});
  }
  std::vector<core::HeuristicPtr> heuristics;
  heuristics.reserve(solvers.size());
  for (const auto& name : solvers) {
    heuristics.push_back(srv::make_solver(name, n, epsilon));
  }
  return core::make_scenario_grid(instances, cost_models, heuristics);
}

core::EvaluationOptions SweepSpec::eval_options() const {
  core::EvaluationOptions eval;
  eval.mc.samples = mc_samples;
  eval.mc.seed = mc_seed;
  return eval;
}

namespace {

SweepSpec spec_from_value(const Value& root) {
  if (!root.is_object()) bad("spec must be a JSON object");
  if (index_field(require(root, "v"), "v") != 1) {
    bad("unsupported spec version");
  }
  SweepSpec spec;
  const Value& dists = require(root, "dists");
  if (!dists.is_array()) bad("field 'dists' must be an array");
  for (const Value& d : dists.array) {
    spec.dists.push_back(string_field(d, "dists[]"));
  }
  const Value& models = require(root, "models");
  if (!models.is_array()) bad("field 'models' must be an array");
  for (const Value& m : models.array) {
    if (!m.is_object()) bad("models[] must be objects");
    SweepSpec::Model model;
    model.label = string_field(require(m, "label"), "label");
    model.alpha = number_field(require(m, "alpha"), "alpha");
    model.beta = number_field(require(m, "beta"), "beta");
    model.gamma = number_field(require(m, "gamma"), "gamma");
    spec.models.push_back(std::move(model));
  }
  const Value& solvers = require(root, "solvers");
  if (!solvers.is_array()) bad("field 'solvers' must be an array");
  for (const Value& s : solvers.array) {
    spec.solvers.push_back(string_field(s, "solvers[]"));
  }
  spec.n = index_field(require(root, "n"), "n");
  spec.epsilon = number_field(require(root, "epsilon"), "epsilon");
  spec.mc_samples = index_field(require(root, "mc_samples"), "mc_samples");
  spec.mc_seed =
      static_cast<std::uint64_t>(index_field(require(root, "mc_seed"),
                                             "mc_seed"));
  return spec;
}

}  // namespace

SweepSpec parse_spec(std::string_view json) {
  const auto parsed = obs::minijson::parse(json);
  if (!parsed.ok) bad("malformed spec JSON: " + parsed.error);
  return spec_from_value(parsed.value);
}

std::string task_key(const SweepSpec& spec, std::size_t begin,
                     std::size_t end) {
  return "v1|sweep|" + hex16(spec.hash()) + "|" + std::to_string(begin) + "-" +
         std::to_string(end);
}

std::string format_task(const TaskFrame& frame) {
  std::string out = "{\"task\":\"sweep\",\"v\":";
  out += std::to_string(frame.version);
  out += ",\"key\":\"";
  out += obs::minijson::escape(frame.key);
  out += "\",\"begin\":";
  out += std::to_string(frame.begin);
  out += ",\"end\":";
  out += std::to_string(frame.end);
  out += ",\"spec\":";
  out += frame.spec.to_json();
  out += '}';
  return out;
}

TaskFrame parse_task(std::string_view line) {
  const auto parsed = obs::minijson::parse(line);
  if (!parsed.ok) bad("malformed task JSON: " + parsed.error);
  const Value& root = parsed.value;
  if (!root.is_object()) bad("task line must be a JSON object");
  if (string_field(require(root, "task"), "task") != "sweep") {
    bad("unknown task type");
  }
  TaskFrame frame;
  frame.version = static_cast<int>(index_field(require(root, "v"), "v"));
  if (frame.version != kTaskVersion) {
    bad("unsupported task frame version " + std::to_string(frame.version) +
        " (this worker speaks v" + std::to_string(kTaskVersion) + ")");
  }
  frame.key = string_field(require(root, "key"), "key");
  frame.begin = index_field(require(root, "begin"), "begin");
  frame.end = index_field(require(root, "end"), "end");
  frame.spec = spec_from_value(require(root, "spec"));
  if (frame.begin >= frame.end || frame.end > frame.spec.total()) {
    bad("shard [" + std::to_string(frame.begin) + ", " +
        std::to_string(frame.end) + ") out of range for a grid of " +
        std::to_string(frame.spec.total()));
  }
  return frame;
}

std::string format_result(const TaskResult& result) {
  std::string out = result.ok ? "{\"ok\":true,\"v\":" : "{\"ok\":false,\"v\":";
  out += std::to_string(result.version);
  out += ",\"key\":\"";
  out += obs::minijson::escape(result.key);
  out += '"';
  if (result.ok) {
    out += ",\"begin\":";
    out += std::to_string(result.begin);
    out += ",\"end\":";
    out += std::to_string(result.end);
    out += ",\"outcomes\":[";
    bool first = true;
    for (const auto& o : result.outcomes) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += obs::minijson::escape(o);
      out += '"';
    }
    out += ']';
  } else {
    out += ",\"error\":{\"code\":\"";
    out += std::string(error_code_name(result.code));
    out += "\",\"retryable\":";
    out += result.retryable ? "true" : "false";
    out += ",\"message\":\"";
    out += obs::minijson::escape(result.message);
    out += "\"}";
  }
  out += '}';
  return out;
}

TaskResult parse_result(std::string_view line) {
  const auto parsed = obs::minijson::parse(line);
  if (!parsed.ok) bad("malformed result JSON: " + parsed.error);
  const Value& root = parsed.value;
  if (!root.is_object()) bad("result line must be a JSON object");
  const Value& ok = require(root, "ok");
  if (ok.kind != Value::Kind::kBool) bad("field 'ok' must be a boolean");
  TaskResult result;
  result.ok = ok.boolean;
  result.version = static_cast<int>(index_field(require(root, "v"), "v"));
  result.key = string_field(require(root, "key"), "key");
  if (result.ok) {
    result.begin = index_field(require(root, "begin"), "begin");
    result.end = index_field(require(root, "end"), "end");
    const Value& outcomes = require(root, "outcomes");
    if (!outcomes.is_array()) bad("field 'outcomes' must be an array");
    result.outcomes.reserve(outcomes.array.size());
    for (const Value& o : outcomes.array) {
      result.outcomes.push_back(string_field(o, "outcomes[]"));
    }
  } else {
    const Value& err = require(root, "error");
    if (!err.is_object()) bad("field 'error' must be an object");
    const std::string code = string_field(require(err, "code"), "code");
    for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
      if (code == error_code_name(static_cast<ErrorCode>(i))) {
        result.code = static_cast<ErrorCode>(i);
        break;
      }
    }
    const Value& retryable = require(err, "retryable");
    if (retryable.kind != Value::Kind::kBool) {
      bad("field 'retryable' must be a boolean");
    }
    result.retryable = retryable.boolean;
    result.message = string_field(require(err, "message"), "message");
  }
  return result;
}

std::string format_outcome(const core::ScenarioOutcome& outcome) {
  std::string out = "{\"dist\":\"";
  out += obs::minijson::escape(outcome.dist_label);
  out += "\",\"model\":\"";
  out += obs::minijson::escape(outcome.model_label);
  out += "\",\"solver\":\"";
  out += obs::minijson::escape(outcome.solver);
  out += "\",\"ok\":";
  out += outcome.ok ? "true" : "false";
  out += ",\"t1\":";
  append_double(out, outcome.eval.t1);
  out += ",\"mc\":";
  append_double(out, outcome.eval.expected_cost_mc);
  out += ",\"se\":";
  append_double(out, outcome.eval.mc_std_error);
  out += ",\"analytic\":";
  append_double(out, outcome.eval.expected_cost_analytic);
  out += ",\"norm_mc\":";
  append_double(out, outcome.eval.normalized_mc);
  out += ",\"norm_analytic\":";
  append_double(out, outcome.eval.normalized_analytic);
  out += ",\"seq\":[";
  bool first = true;
  for (const double t : outcome.eval.sequence.values()) {
    if (!first) out += ',';
    first = false;
    append_double(out, t);
  }
  out += "]}";
  return out;
}

std::string local_sweep_bytes(const SweepSpec& spec,
                              const sim::SweepOptions& opts) {
  const auto scenarios = spec.grid();
  const auto report = core::run_scenario_sweep(scenarios, spec.eval_options(),
                                               opts);
  std::string out;
  for (const auto& outcome : report.outcomes) {
    out += format_outcome(outcome);
    out += '\n';
  }
  return out;
}

}  // namespace sre::cluster
