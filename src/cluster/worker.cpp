#include "cluster/worker.hpp"

#include <utility>

#include "obs/minijson.hpp"

namespace sre::cluster {

namespace {

/// Best-effort key recovery from a line that failed full parsing, so even
/// a rejection can echo the idempotency key it was answering.
std::string recover_key(const std::string& line) {
  const auto parsed = obs::minijson::parse(line);
  if (!parsed.ok || !parsed.value.is_object()) return {};
  const auto* key = parsed.value.find("key");
  if (key == nullptr || !key->is_string()) return {};
  return key->string;
}

}  // namespace

std::string execute_task(const std::string& line, const WorkerConfig& cfg) {
  TaskResult result;
  try {
    const TaskFrame frame = parse_task(line);
    const auto grid = frame.spec.grid();
    const std::vector<core::SweepScenario> shard(
        grid.begin() + static_cast<std::ptrdiff_t>(frame.begin),
        grid.begin() + static_cast<std::ptrdiff_t>(frame.end));
    sim::SweepOptions opts;
    opts.threads = cfg.sweep_threads;
    opts.serial = cfg.sweep_threads == 0;
    const auto report =
        core::run_scenario_sweep(shard, frame.spec.eval_options(), opts);
    result.ok = true;
    result.key = frame.key;
    result.begin = frame.begin;
    result.end = frame.end;
    result.outcomes.reserve(report.outcomes.size());
    for (const auto& outcome : report.outcomes) {
      result.outcomes.push_back(format_outcome(outcome));
    }
  } catch (const ScenarioError& e) {
    result.ok = false;
    result.key = recover_key(line);
    result.code = e.code();
    result.retryable = is_retryable(e.code());
    result.message = e.what();
  }
  return format_result(result);
}

TaskExecutor::TaskExecutor(WorkerConfig cfg) : cfg_(cfg) {
  thread_ = std::thread([this] { run(); });
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Abandoned jobs still answer: the loop owns an ordered slot per task,
    // and a slot that never completes would wedge its connection's queue.
    for (Job& job : queue_) {
      TaskResult result;
      result.ok = false;
      result.key = recover_key(job.line);
      result.code = ErrorCode::kCancelled;
      result.retryable = is_retryable(ErrorCode::kCancelled);
      result.message = "worker stopping";
      job.done(format_result(result));
    }
    queue_.clear();
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TaskExecutor::submit(std::string line,
                          std::function<void(std::string)> done) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++tasks_;
    if (!stopping_) {
      queue_.push_back(Job{std::move(line), std::move(done)});
      cv_.notify_one();
      return;
    }
    ++rejected_;
  }
  TaskResult result;
  result.ok = false;
  result.code = ErrorCode::kCancelled;
  result.retryable = is_retryable(ErrorCode::kCancelled);
  result.message = "worker stopping";
  done(format_result(result));
}

srv::EventLoopConfig::TaskHandler TaskExecutor::handler() {
  return [this](std::string line, std::function<void(std::string)> done) {
    submit(std::move(line), std::move(done));
  };
}

WorkerCounters TaskExecutor::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerCounters c;
  c.tasks = tasks_;
  c.ok = ok_;
  c.rejected = rejected_;
  return c;
}

void TaskExecutor::run() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::string response = execute_task(job.line, cfg_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // "ok" in the first 12 bytes distinguishes the two frame shapes
      // without reparsing: format_result always starts {"ok":true or
      // {"ok":false.
      if (response.compare(0, 11, "{\"ok\":true,") == 0) {
        ++ok_;
      } else {
        ++rejected_;
      }
    }
    job.done(std::move(response));
  }
}

}  // namespace sre::cluster
