#include "cluster/sweep_manager.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "srv/client.hpp"
#include "srv/protocol.hpp"

namespace sre::cluster {

namespace {

constexpr const char* kPingRequest = "{\"ping\":true}";

/// Idle-heartbeat throttle: a waiting thread pings at most this often.
constexpr std::chrono::seconds kHeartbeatPeriod{1};

}  // namespace

std::string SweepManagerReport::merged() const {
  std::string out;
  for (const auto& line : outcomes) {
    out += line;
    out += '\n';
  }
  return out;
}

struct SweepManager::State {
  std::mutex m;
  std::condition_variable cv;
  std::deque<std::size_t> pending;  ///< shard indices awaiting dispatch
  std::vector<int> attempts;
  std::vector<int> inflight;  ///< concurrent dispatches per shard
  std::vector<bool> filled;
  std::vector<bool> abandoned;
  std::size_t done = 0;  ///< filled + abandoned shards
  std::size_t shard_count = 0;
  std::size_t total = 0;
  std::size_t shard_size = 1;
  int max_attempts = 4;
  std::size_t speculate_cursor = 0;
  SweepManagerReport report;

  [[nodiscard]] std::size_t shard_begin(std::size_t s) const noexcept {
    return s * shard_size;
  }
  [[nodiscard]] std::size_t shard_end(std::size_t s) const noexcept {
    return std::min(total, (s + 1) * shard_size);
  }

  /// Caller holds m. Retires a shard that can no longer complete.
  void abandon_shard(std::size_t s, const std::string& why) {
    if (filled[s] || abandoned[s]) return;
    abandoned[s] = true;
    ++done;
    ++report.counters.shards_abandoned;
    report.errors.push_back("shard " + std::to_string(s) + " [" +
                            std::to_string(shard_begin(s)) + ", " +
                            std::to_string(shard_end(s)) + ") abandoned: " +
                            why);
    cv.notify_all();
  }
};

SweepManager::SweepManager(SweepManagerConfig cfg) : cfg_(std::move(cfg)) {}

SweepManagerReport SweepManager::run(const SweepSpec& spec) {
  State state;
  state.total = spec.total();
  state.shard_size = std::max<std::size_t>(1, cfg_.shard_size);
  state.shard_count =
      (state.total + state.shard_size - 1) / state.shard_size;
  state.max_attempts =
      cfg_.max_shard_attempts > 0
          ? cfg_.max_shard_attempts
          : std::max<int>(4, 2 * static_cast<int>(cfg_.workers.size()));
  state.attempts.assign(state.shard_count, 0);
  state.inflight.assign(state.shard_count, 0);
  state.filled.assign(state.shard_count, false);
  state.abandoned.assign(state.shard_count, false);
  state.report.outcomes.assign(state.total, std::string());
  state.report.counters.shards = state.shard_count;
  for (std::size_t s = 0; s < state.shard_count; ++s) {
    state.pending.push_back(s);
  }

  if (cfg_.workers.empty()) {
    state.report.errors.push_back("no worker endpoints configured");
    state.report.complete = state.shard_count == 0;
    return std::move(state.report);
  }

  std::vector<std::thread> threads;
  threads.reserve(cfg_.workers.size());
  for (std::size_t w = 0; w < cfg_.workers.size(); ++w) {
    threads.emplace_back(
        [this, &state, &spec, w] { worker_thread(state, spec, w); });
  }
  for (auto& t : threads) t.join();

  state.report.complete = true;
  for (std::size_t s = 0; s < state.shard_count; ++s) {
    if (!state.filled[s]) state.report.complete = false;
  }
  if (!state.report.complete && state.report.errors.empty()) {
    state.report.errors.push_back("sweep incomplete: every worker abandoned");
  }
  return std::move(state.report);
}

void SweepManager::worker_thread(State& state, const SweepSpec& spec,
                                 std::size_t index) {
  using Clock = std::chrono::steady_clock;
  const WorkerEndpoint& endpoint = cfg_.workers[index];
  srv::ClientConfig ccfg;
  ccfg.host = endpoint.host;
  ccfg.port = endpoint.port;
  ccfg.retry = cfg_.retry;
  ccfg.request_deadline_s = cfg_.task_deadline_s;
  ccfg.net_faults = cfg_.net_faults;
  ccfg.fault_stream = cfg_.fault_stream_base + (index << 8);
  srv::Client client(ccfg);

  auto note_worker_abandoned = [&](const std::string& why) {
    std::lock_guard<std::mutex> lock(state.m);
    ++state.report.counters.workers_abandoned;
    state.report.errors.push_back("worker " + endpoint.host + ":" +
                                  std::to_string(endpoint.port) +
                                  " abandoned: " + why);
    state.cv.notify_all();
  };

  // Connect-time liveness gate: a worker that cannot pong costs nothing
  // beyond this probe — no shard is dispatched to it.
  {
    const auto pong = client.call(kPingRequest);
    std::unique_lock<std::mutex> lock(state.m);
    if (pong.ok && pong.line == srv::kPongLine) {
      ++state.report.counters.heartbeats_ok;
    } else {
      ++state.report.counters.heartbeats_failed;
      lock.unlock();
      note_worker_abandoned("liveness probe failed (" + pong.message + ")");
      return;
    }
  }

  int consecutive_failures = 0;
  auto last_heartbeat = Clock::now();
  for (;;) {
    std::size_t shard = 0;
    bool speculative_dispatch = false;
    {
      std::unique_lock<std::mutex> lock(state.m);
      for (;;) {
        if (state.done == state.shard_count) return;
        if (!state.pending.empty()) {
          shard = state.pending.front();
          state.pending.pop_front();
          if (state.filled[shard] || state.abandoned[shard]) continue;
          break;
        }
        if (cfg_.speculative) {
          // Straggler mitigation: nothing queued, something in flight —
          // race the slowpoke on a second worker; first result wins.
          bool found = false;
          for (std::size_t k = 0; k < state.shard_count; ++k) {
            const std::size_t s =
                (state.speculate_cursor + k) % state.shard_count;
            if (state.inflight[s] > 0 && !state.filled[s] &&
                !state.abandoned[s] &&
                state.attempts[s] < state.max_attempts) {
              shard = s;
              state.speculate_cursor = s + 1;
              speculative_dispatch = true;
              found = true;
              break;
            }
          }
          if (found) break;
        }
        // Idle but the sweep is not done: heartbeat (throttled) so a
        // healthy-but-unused worker still proves liveness, then wait for
        // a requeue or completion.
        if (Clock::now() - last_heartbeat >= kHeartbeatPeriod) {
          lock.unlock();
          const auto pong = client.call(kPingRequest);
          last_heartbeat = Clock::now();
          lock.lock();
          if (pong.ok && pong.line == srv::kPongLine) {
            ++state.report.counters.heartbeats_ok;
          } else {
            ++state.report.counters.heartbeats_failed;
          }
          continue;
        }
        state.cv.wait_for(lock, std::chrono::milliseconds(50));
      }
      ++state.attempts[shard];
      ++state.inflight[shard];
      ++state.report.counters.dispatches;
      if (state.attempts[shard] > 1) ++state.report.counters.redispatches;
      if (speculative_dispatch) ++state.report.counters.speculative;
    }

    TaskFrame frame;
    frame.begin = state.shard_begin(shard);
    frame.end = state.shard_end(shard);
    frame.key = task_key(spec, frame.begin, frame.end);
    frame.spec = spec;
    const std::string line = format_task(frame);
    const auto res = client.call(line);

    bool failed = false;
    bool requeueable = true;
    std::string why;
    {
      std::unique_lock<std::mutex> lock(state.m);
      --state.inflight[shard];
      if (res.ok) {
        try {
          TaskResult task = parse_result(res.line);
          if (task.ok && task.key == frame.key &&
              task.outcomes.size() == frame.end - frame.begin) {
            if (state.filled[shard]) {
              ++state.report.counters.duplicates;
            } else {
              for (std::size_t i = 0; i < task.outcomes.size(); ++i) {
                state.report.outcomes[frame.begin + i] =
                    std::move(task.outcomes[i]);
              }
              state.filled[shard] = true;
              ++state.done;
              ++state.report.counters.completions;
              state.cv.notify_all();
            }
          } else if (task.ok) {
            failed = true;
            why = "result key/shape mismatch for " + frame.key;
            ++state.report.counters.task_failures;
          } else {
            failed = true;
            requeueable = task.retryable;
            why = task.message;
            ++state.report.counters.task_failures;
          }
        } catch (const ScenarioError& e) {
          failed = true;
          why = std::string("unparseable result: ") + e.what();
          ++state.report.counters.task_failures;
        }
      } else {
        failed = true;
        // The straggler cutoff (kTimeout) re-queues even though the class
        // is not client-retryable: the same shard on a healthy worker is
        // exactly the remedy. kDomainError stays fatal — every worker
        // would reject the same frame.
        requeueable = res.retryable || res.code == ErrorCode::kTimeout ||
                      res.code == ErrorCode::kTransport;
        why = res.message.empty() ? std::string("transport failure")
                                  : res.message;
        if (res.line.empty() || res.code == ErrorCode::kTransport) {
          ++state.report.counters.transport_failures;
        } else {
          ++state.report.counters.task_failures;
        }
      }

      if (failed && !state.filled[shard] && !state.abandoned[shard]) {
        if (!requeueable) {
          state.abandon_shard(shard, why);
        } else if (state.attempts[shard] >= state.max_attempts) {
          state.abandon_shard(shard, "attempt budget exhausted (" + why + ")");
        } else {
          state.pending.push_back(shard);
          state.cv.notify_all();
        }
      }
    }

    if (failed) {
      if (++consecutive_failures >= cfg_.max_worker_failures) {
        note_worker_abandoned("too many consecutive task failures (" + why +
                              ")");
        return;
      }
    } else {
      consecutive_failures = 0;
    }
  }
}

}  // namespace sre::cluster
