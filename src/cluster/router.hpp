#pragma once

// cluster::Router — consistent-hash routing across sre_serve replicas.
//
// The ring is the classic Karger construction: every replica contributes
// `vnodes` points, each the FNV-1a 64 digest of a versioned label
// ("v1|ring|<ring_id>|<vnode>", ring_id defaulting to host:port), sorted
// once at construction. A plan
// request routes by the digest of its canonical request key
// (srv::request_key bytes — the same key the server's cache shards on), to
// the first ring point clockwise. Adding or removing a replica only remaps
// the keys whose arcs that replica's points covered (~1/N of the space);
// everything else keeps its owner, so replica caches stay warm across
// fleet resizes.
//
// route() is the availability half: it walks the ring from the key's
// point, collecting every *distinct* replica in ring order, and tries them
// through per-replica srv::Clients (each with its own circuit breaker and
// chaos stream). A retryable failure — transport loss, a brownout shed
// (kOverloaded, usually carrying retry_after_ms) — fails over to the next
// replica in the walk *immediately*: with more than one replica, the
// router converts a shed into work for an idler peer instead of a sleep.
// Only when a full sweep of the ring fails does the router back off, on
// its own net::RetryPolicy schedule with the largest retry_after_ms hint
// seen that sweep flooring the sleep (the hint contract, one level up from
// srv::Client). A non-retryable rejection (kDomainError) returns
// immediately: a malformed query is malformed on every replica.
//
// Not thread-safe: srv::Client owns per-connection state, so give each
// driving thread its own Router (sre_loadgen does) and sum the counters.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/retry.hpp"
#include "srv/client.hpp"

namespace sre::cluster {

struct ReplicaEndpoint {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
  /// Stable ring identity. Empty means "<host>:<port>" — fine for fixed
  /// fleets, but a replica dialed on an ephemeral port would reshuffle the
  /// ring every restart, so fleets with OS-assigned ports (the in-process
  /// bench, CI) name replicas explicitly ("replica-0", ...): the ring then
  /// depends only on the fleet roster, never on what bind(2) handed out.
  std::string name;

  [[nodiscard]] std::string ring_id() const {
    return name.empty() ? host + ":" + std::to_string(port) : name;
  }
};

struct RouterConfig {
  std::vector<ReplicaEndpoint> replicas;
  /// Ring points per replica. 128 keeps the max/min key-share imbalance
  /// low (the acceptance gate asks <= 1.5x) without a measurable ring cost.
  std::size_t vnodes = 128;
  /// Template for every per-replica client; host/port are overridden, and
  /// replica k's fault stream is `client.fault_stream + (k << 8)` so chaos
  /// schedules never alias across replicas.
  srv::ClientConfig client{};
  /// Backoff *between full ring sweeps* (max_attempts = sweeps total).
  /// Within a sweep failover is immediate; the sleep between sweeps is
  /// floored by the largest retry_after_ms hint the sweep collected.
  net::RetryPolicy sweep_retry{};
};

/// Monotonic totals over one Router instance.
struct RouterCounters {
  std::uint64_t calls = 0;      ///< route() invocations
  std::uint64_t delivered = 0;  ///< calls that returned an ok response
  std::uint64_t failovers = 0;  ///< hops past a key's first-choice replica
  std::uint64_t sweeps_slept = 0;  ///< backoffs after a full failed sweep
  std::uint64_t failures = 0;   ///< calls that exhausted every sweep
  double slept_s = 0.0;         ///< total inter-sweep backoff
  std::vector<std::uint64_t> first_choice;  ///< per replica: keys owned
  std::vector<std::uint64_t> delivered_by;  ///< per replica: responses served
};

class Router {
 public:
  explicit Router(RouterConfig cfg);

  /// The ring point for one (replica, vnode) pair:
  /// fnv1a64("v1|ring|<ring_id>|<vnode>"). Pure; pinned by tests.
  [[nodiscard]] static std::uint64_t ring_point(const std::string& ring_id,
                                                std::size_t vnode);

  /// Index (into config().replicas) of the replica owning `key`. Pure
  /// function of the ring — callable without any replica listening.
  [[nodiscard]] std::size_t replica_for(std::string_view key) const;

  /// The full failover order for `key`: every distinct replica in ring
  /// order starting at the owner. Size == replicas.size().
  [[nodiscard]] std::vector<std::size_t> hop_order(std::string_view key) const;

  /// Routes one request line by its canonical key. The returned
  /// CallResult is the first ok response, the first non-retryable
  /// rejection, or the last failure after every sweep is exhausted.
  [[nodiscard]] srv::CallResult route(const std::string& key,
                                      const std::string& line);

  /// Fans {"stats":true} out to every replica and merges the responses:
  ///   {"ok":true,"replicas":[{"host":...,"port":...,"ok":true,
  ///    "stats":<verbatim response object>} | {"ok":false,"error":"..."}]}
  [[nodiscard]] std::string stats_fanout();

  [[nodiscard]] const RouterCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const RouterConfig& config() const noexcept { return cfg_; }

 private:
  struct RingEntry {
    std::uint64_t point;
    std::size_t replica;
  };

  RouterConfig cfg_;
  std::vector<RingEntry> ring_;  ///< sorted by point
  std::vector<std::unique_ptr<srv::Client>> clients_;
  RouterCounters counters_;
  std::uint64_t sweep_stream_ = 0;  ///< jitter substream per route() call
};

}  // namespace sre::cluster
