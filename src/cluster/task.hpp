#pragma once

// Versioned NDJSON task frames for the distributed sweep (the manager half
// is src/cluster/sweep_manager.hpp, the worker half src/cluster/worker.hpp).
// A task is one contiguous shard [begin, end) of the row-major scenario
// grid that core::make_scenario_grid builds from a SweepSpec; the worker
// rebuilds the identical grid from the spec, evaluates its slice with the
// existing core::run_scenario_sweep machinery, and answers with the
// scenarios' canonical serializations. Because every scenario outcome is a
// pure function of (spec, grid index) — run_scenario_sweep is bit-identical
// across pool sizes, and format_outcome serializes through
// obs::format_double — an index-ordered merge of shard results is
// byte-identical to a single-process sweep, whatever the worker count,
// dispatch order, or mid-sweep failures.
//
// Wire shape (one line each; "v" is the frame version, bumped on any
// incompatible change — a worker rejects other versions with a typed,
// non-retryable kDomainError instead of guessing):
//
//   task:   {"task":"sweep","v":1,"key":"v1|sweep|<hex16>|<begin>-<end>",
//            "begin":B,"end":E,"spec":{...}}
//   result: {"ok":true,"v":1,"key":"...","begin":B,"end":E,
//            "outcomes":["<json string per scenario>",...]}
//   error:  {"ok":false,"v":1,"key":"...","error":{"code":"...",
//            "retryable":...,"message":"..."}}
//
// Outcomes travel as JSON *strings* (escaped), not nested objects, so the
// manager recovers each scenario's exact bytes from the parser instead of
// re-serializing — the byte-identity guarantee never depends on a
// parse/print round trip. The task key is the idempotency key: a pure
// function of (spec bytes, shard), so a re-dispatched shard — straggler
// speculation, a worker death mid-task — produces the same key and the
// manager's first-result-wins merge drops late duplicates.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario_sweep.hpp"
#include "sim/sweep.hpp"
#include "stats/error.hpp"

namespace sre::cluster {

/// Frame version of both task and result lines.
inline constexpr int kTaskVersion = 1;

/// A self-contained description of one scenario-grid campaign: everything a
/// worker needs to rebuild the exact grid. Distributions are the paper's
/// Table 1 labels (dist::paper_distribution), solvers are the serving
/// layer's canonical names (srv::make_solver), so spec validation reuses
/// the same typed kDomainError paths as plan requests.
struct SweepSpec {
  std::vector<std::string> dists;  ///< paper labels, grid-outermost axis
  struct Model {
    std::string label;
    double alpha = 1.0;
    double beta = 1.0;
    double gamma = 0.0;
  };
  std::vector<Model> models;
  std::vector<std::string> solvers;  ///< canonical names, grid-innermost
  std::size_t n = 400;               ///< solver discretization knob
  double epsilon = 1e-6;             ///< solver truncation quantile
  std::size_t mc_samples = 200;      ///< Eq. (13) sample count per scenario
  std::uint64_t mc_seed = 42;        ///< fixed seed: outcomes reproducible

  /// Grid size; index of (d, m, s) is (d*models+m)*solvers + s, matching
  /// core::make_scenario_grid's row-major order.
  [[nodiscard]] std::size_t total() const noexcept {
    return dists.size() * models.size() * solvers.size();
  }

  /// Canonical bytes: fixed field order, doubles via obs::format_double.
  /// Two equal specs serialize identically, so the spec hash (and every
  /// task key derived from it) is stable.
  [[nodiscard]] std::string to_json() const;

  /// fnv1a64 over to_json() — the fleet-wide identity of this campaign.
  [[nodiscard]] std::uint64_t hash() const;

  /// Instantiates the full grid (labels -> laws, names -> solvers). Throws
  /// ScenarioError(kDomainError) on an unknown label/name or an empty axis.
  [[nodiscard]] std::vector<core::SweepScenario> grid() const;

  [[nodiscard]] core::EvaluationOptions eval_options() const;
};

/// Parses canonical (or hand-written) spec JSON. Throws
/// ScenarioError(kDomainError) on malformed input.
[[nodiscard]] SweepSpec parse_spec(std::string_view json);

/// Idempotency key of one shard dispatch: "v1|sweep|<hex16 spec>|<b>-<e>".
[[nodiscard]] std::string task_key(const SweepSpec& spec, std::size_t begin,
                                   std::size_t end);

struct TaskFrame {
  int version = kTaskVersion;
  std::string key;  ///< task_key(spec, begin, end); echoed by the worker
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
  SweepSpec spec;
};

/// One task line (no trailing newline).
[[nodiscard]] std::string format_task(const TaskFrame& frame);

/// Parses and validates a task line: frame shape, version (a mismatch is a
/// typed kDomainError naming both versions), shard bounds. Throws
/// ScenarioError(kDomainError); never partially fills the result.
[[nodiscard]] TaskFrame parse_task(std::string_view line);

struct TaskResult {
  bool ok = false;
  int version = kTaskVersion;
  std::string key;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Serialized scenario outcomes, grid order within the shard; exactly
  /// end - begin entries when ok.
  std::vector<std::string> outcomes;
  ErrorCode code = ErrorCode::kDomainError;  ///< when !ok
  bool retryable = false;
  std::string message;
};

/// One result line (no trailing newline).
[[nodiscard]] std::string format_result(const TaskResult& result);

/// Parses a result line. Throws ScenarioError(kDomainError) when the line
/// is not a well-formed result frame (the manager treats that like a task
/// failure and re-dispatches); a well-formed {"ok":false,...} parses fine.
[[nodiscard]] TaskResult parse_result(std::string_view line);

/// Canonical bytes of one scenario outcome: fixed field order, doubles via
/// obs::format_double, the reservation sequence in full. This is the unit
/// of the byte-identity guarantee — local and distributed sweeps both
/// serialize through here.
[[nodiscard]] std::string format_outcome(const core::ScenarioOutcome& outcome);

/// The single-process reference: runs the full grid with
/// core::run_scenario_sweep and returns one outcome line per scenario
/// (each '\n'-terminated) — the exact bytes SweepManagerReport::merged()
/// must reproduce. Deterministic for any `opts` (serial or any pool size).
[[nodiscard]] std::string local_sweep_bytes(const SweepSpec& spec,
                                            const sim::SweepOptions& opts = {});

}  // namespace sre::cluster
