#pragma once

// The worker half of the distributed sweep: execute_task() turns one task
// line into one result line (pure, synchronous — unit tests drive it
// directly), and TaskExecutor hosts it behind srv::EventLoop's async
// task-handler seam so the epoll thread never blocks on a shard. sre_worker
// is TaskExecutor + PlannerService + EventLoop as a process.
//
// Execution reuses the existing sweep stack end to end: the spec rebuilds
// the row-major grid (core::make_scenario_grid via SweepSpec::grid()), the
// shard slice runs through core::run_scenario_sweep — sim::SweepRunner
// underneath, so in-task parallelism keeps the same submission-order
// determinism as a local campaign — and outcomes serialize through
// format_outcome. Failures stay typed: a ScenarioError surfaces as an
// {"ok":false,...} result carrying its taxonomy code and retryability, so
// the manager's re-dispatch policy mirrors run_resilient's (retry injected
// faults and transport losses, never domain errors).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/task.hpp"
#include "srv/eventloop.hpp"

namespace sre::cluster {

struct WorkerConfig {
  /// sim::SweepOptions::threads for the in-task sweep; 0 runs the shard
  /// serially on the executor thread (outcomes are identical either way).
  unsigned sweep_threads = 0;
};

/// Monotonic executor totals.
struct WorkerCounters {
  std::uint64_t tasks = 0;     ///< task lines received
  std::uint64_t ok = 0;        ///< shards completed
  std::uint64_t rejected = 0;  ///< typed failures (bad frame, bad spec, ...)
};

/// One task line -> one result line. Never throws: every failure becomes a
/// typed {"ok":false,...} frame (echoing the task key when it was
/// recoverable from the line).
[[nodiscard]] std::string execute_task(const std::string& line,
                                       const WorkerConfig& cfg = {});

/// Single-threaded task queue behind the event loop. One dispatch thread
/// drains submitted lines in order — the manager round-trips one task per
/// connection at a time, so per-worker task concurrency buys nothing, while
/// a serial executor keeps shard execution (and its CPU footprint) easy to
/// reason about. Pings stay responsive throughout: the loop answers them
/// inline without touching this queue.
class TaskExecutor {
 public:
  explicit TaskExecutor(WorkerConfig cfg = {});
  ~TaskExecutor();  ///< drains nothing: pending tasks are abandoned, joined

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  /// EventLoopConfig::task_handler adapter. `done` is invoked exactly once
  /// from the dispatch thread (or inline after stop) with the result line.
  void submit(std::string line, std::function<void(std::string)> done);

  /// The handler to plug into srv::EventLoopConfig::task_handler.
  [[nodiscard]] srv::EventLoopConfig::TaskHandler handler();

  [[nodiscard]] WorkerCounters counters() const;

 private:
  struct Job {
    std::string line;
    std::function<void(std::string)> done;
  };

  void run();

  WorkerConfig cfg_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::uint64_t tasks_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t rejected_ = 0;
  std::thread thread_;
};

}  // namespace sre::cluster
