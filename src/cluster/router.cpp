#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/minijson.hpp"
#include "srv/hash.hpp"

namespace sre::cluster {

Router::Router(RouterConfig cfg) : cfg_(std::move(cfg)) {
  ring_.reserve(cfg_.replicas.size() * cfg_.vnodes);
  clients_.reserve(cfg_.replicas.size());
  for (std::size_t r = 0; r < cfg_.replicas.size(); ++r) {
    const ReplicaEndpoint& ep = cfg_.replicas[r];
    const std::string ring_id = ep.ring_id();
    for (std::size_t v = 0; v < cfg_.vnodes; ++v) {
      ring_.push_back(RingEntry{ring_point(ring_id, v), r});
    }
    srv::ClientConfig ccfg = cfg_.client;
    ccfg.host = ep.host;
    ccfg.port = ep.port;
    ccfg.fault_stream = cfg_.client.fault_stream + (r << 8);
    clients_.push_back(std::make_unique<srv::Client>(std::move(ccfg)));
  }
  // Stable tie-break on replica index: a (vanishingly unlikely) digest
  // collision still yields one deterministic ring.
  std::sort(ring_.begin(), ring_.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return a.point != b.point ? a.point < b.point
                                        : a.replica < b.replica;
            });
  counters_.first_choice.assign(cfg_.replicas.size(), 0);
  counters_.delivered_by.assign(cfg_.replicas.size(), 0);
}

std::uint64_t Router::ring_point(const std::string& ring_id,
                                 std::size_t vnode) {
  std::string label = "v1|ring|";
  label += ring_id;
  label += '|';
  label += std::to_string(vnode);
  return srv::fnv1a64(label);
}

std::size_t Router::replica_for(std::string_view key) const {
  const std::uint64_t h = srv::fnv1a64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), h,
                             [](const RingEntry& e, std::uint64_t v) {
                               return e.point < v;
                             });
  if (it == ring_.end()) it = ring_.begin();  // wrap: the ring is circular
  return it->replica;
}

std::vector<std::size_t> Router::hop_order(std::string_view key) const {
  const std::uint64_t h = srv::fnv1a64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), h,
                             [](const RingEntry& e, std::uint64_t v) {
                               return e.point < v;
                             });
  std::vector<std::size_t> order;
  std::vector<bool> seen(cfg_.replicas.size(), false);
  for (std::size_t steps = 0; steps < ring_.size() &&
                              order.size() < cfg_.replicas.size();
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->replica]) {
      seen[it->replica] = true;
      order.push_back(it->replica);
    }
    ++it;
  }
  return order;
}

srv::CallResult Router::route(const std::string& key,
                              const std::string& line) {
  ++counters_.calls;
  srv::CallResult last;
  if (clients_.empty()) {
    last.code = ErrorCode::kTransport;
    last.message = "router has no replicas";
    ++counters_.failures;
    return last;
  }
  const auto order = hop_order(key);
  ++counters_.first_choice[order[0]];

  const int sweeps = std::max(1, cfg_.sweep_retry.max_attempts);
  net::RetrySchedule schedule(cfg_.sweep_retry, sweep_stream_++);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double hint_s = 0.0;
    for (std::size_t hop = 0; hop < order.size(); ++hop) {
      if (sweep > 0 || hop > 0) ++counters_.failovers;
      const std::size_t r = order[hop];
      last = clients_[r]->call(line);
      if (last.ok) {
        ++counters_.delivered;
        ++counters_.delivered_by[r];
        return last;
      }
      if (last.retry_after_ms > 0.0) {
        hint_s = std::max(hint_s, last.retry_after_ms / 1e3);
      }
      // A rejection no replica can do better on: stop the walk. Everything
      // else (transport loss, shed, injected fault, budget timeout) is
      // worth the next replica.
      if (!last.retryable && last.code == ErrorCode::kDomainError) {
        ++counters_.failures;
        return last;
      }
    }
    if (sweep + 1 < sweeps) {
      const double sleep_s = schedule.next(hint_s);
      if (sleep_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
        counters_.slept_s += sleep_s;
      }
      ++counters_.sweeps_slept;
    }
  }
  ++counters_.failures;
  return last;
}

std::string Router::stats_fanout() {
  std::string out = "{\"ok\":true,\"replicas\":[";
  for (std::size_t r = 0; r < clients_.size(); ++r) {
    if (r > 0) out += ',';
    const ReplicaEndpoint& ep = cfg_.replicas[r];
    out += "{\"name\":\"";
    out += obs::minijson::escape(ep.ring_id());
    out += "\",\"host\":\"";
    out += obs::minijson::escape(ep.host);
    out += "\",\"port\":";
    out += std::to_string(ep.port);
    const auto res = clients_[r]->call("{\"stats\":true}");
    if (res.ok) {
      // The stats response is itself a JSON object: splice it verbatim so
      // no field is lost (or reordered) in transit.
      out += ",\"ok\":true,\"stats\":";
      out += res.line;
    } else {
      out += ",\"ok\":false,\"error\":\"";
      out += obs::minijson::escape(res.message);
      out += '"';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace sre::cluster
