#pragma once

// cluster::SweepManager — the manager half of the distributed sweep.
//
// The grid is cut into contiguous shards; one dispatch thread per worker
// endpoint pulls shards from a shared queue and round-trips them as
// versioned task frames through srv::Client (decorrelated-jitter redial via
// net::RetryPolicy, typed retry discipline, optional per-task deadline —
// the straggler cutoff). The merge is first-result-wins on the per-shard
// idempotency key: results land in grid order, late duplicates from
// speculative or re-dispatched shards are dropped, and merged() is
// byte-identical to cluster::local_sweep_bytes at the same spec —
// regardless of worker count, completion order, or mid-sweep worker death.
//
// Failure policy mirrors sim::SweepRunner::run_resilient's taxonomy split:
// retryable failures (kTransport — a worker died mid-task, kOverloaded,
// kInjectedFault, kTimeout from the straggler cutoff) re-queue the shard
// for any worker; non-retryable rejections (kDomainError: version
// mismatch, malformed spec) fail the shard immediately — redialing cannot
// fix a frame every worker will reject. A worker that fails several tasks
// consecutively is abandoned (its thread exits; surviving workers drain
// the queue); a shard that exhausts its attempt budget is abandoned too,
// and the report comes back complete=false with the failure noted instead
// of hanging.
//
// Heartbeats: each dispatch thread proves liveness with the {"ping":true}
// verb — once at connect (a worker that cannot pong is abandoned before it
// costs a shard dispatch) and again whenever it goes idle-but-waiting.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/task.hpp"
#include "net/retry.hpp"
#include "sim/netfault.hpp"

namespace sre::cluster {

struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
};

struct SweepManagerConfig {
  std::vector<WorkerEndpoint> workers;
  /// Scenarios per task frame. Small shards re-dispatch cheaply; large
  /// shards amortize frame overhead.
  std::size_t shard_size = 4;
  /// Redial/backoff between call() attempts (srv::Client's schedule).
  net::RetryPolicy retry{};
  /// Straggler cutoff: per-dispatch budget across that call's attempts.
  /// A shard still running when it expires fails with kTimeout and
  /// re-queues for any worker. 0 = no cutoff.
  double task_deadline_s = 0.0;
  /// Dispatch budget per shard (re-dispatches included). 0 resolves to
  /// max(4, 2 * workers) — enough to survive one worker dying with every
  /// shard once, without spinning forever when all workers are gone.
  int max_shard_attempts = 0;
  /// Consecutive task failures before a worker's thread gives up on it.
  int max_worker_failures = 3;
  /// Straggler mitigation: an idle thread whose queue is empty
  /// speculatively re-dispatches a shard that is still in flight
  /// elsewhere; first result wins, the loser is dropped as a duplicate.
  /// Off keeps dispatch counts deterministic for benches.
  bool speculative = false;
  /// Client-side chaos for drills (srv::Client's NetFaultSpec).
  sim::NetFaultSpec net_faults{};
  /// Fault stream of worker 0's client; worker k uses base + (k << 8) so
  /// every dispatch thread replays an independent schedule.
  std::uint64_t fault_stream_base = 1ull << 32;  // NetFaultPlan client base
};

/// Monotonic totals over one run().
struct SweepManagerCounters {
  std::uint64_t shards = 0;        ///< grid shards (dispatch units)
  std::uint64_t dispatches = 0;    ///< task calls attempted (all workers)
  std::uint64_t redispatches = 0;  ///< dispatches beyond a shard's first
  std::uint64_t speculative = 0;   ///< of those, idle-thread speculation
  std::uint64_t completions = 0;   ///< ok results merged
  std::uint64_t duplicates = 0;    ///< late results dropped (key already in)
  std::uint64_t task_failures = 0; ///< typed {"ok":false} results
  std::uint64_t transport_failures = 0;  ///< call() died with no response
  std::uint64_t heartbeats_ok = 0;
  std::uint64_t heartbeats_failed = 0;
  std::uint64_t workers_abandoned = 0;
  std::uint64_t shards_abandoned = 0;  ///< attempt budget exhausted
};

struct SweepManagerReport {
  /// True when every scenario outcome arrived. False: see errors, and
  /// outcomes holds "" at the missing grid indices.
  bool complete = false;
  /// One serialized outcome per scenario, grid order (cluster::format_outcome
  /// bytes, verbatim from the first winning shard result).
  std::vector<std::string> outcomes;
  SweepManagerCounters counters;
  std::vector<std::string> errors;  ///< human-readable failure notes

  /// The canonical merged artifact: every outcome line '\n'-terminated, in
  /// grid order — byte-identical to local_sweep_bytes(spec) when complete.
  [[nodiscard]] std::string merged() const;
};

class SweepManager {
 public:
  explicit SweepManager(SweepManagerConfig cfg);

  /// Runs one campaign to completion (or to exhaustion). Blocking; spawns
  /// one dispatch thread per worker endpoint and joins them all.
  [[nodiscard]] SweepManagerReport run(const SweepSpec& spec);

 private:
  struct State;
  void worker_thread(State& state, const SweepSpec& spec, std::size_t index);

  SweepManagerConfig cfg_;
};

}  // namespace sre::cluster
