#include "sim/fault.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "stats/error.hpp"

namespace sre::sim {

namespace {

// Stream ids keep the fault classes statistically independent per scenario.
constexpr std::uint64_t kStreamSolver = 1;
constexpr std::uint64_t kStreamLaunch = 2;
constexpr std::uint64_t kStreamInterrupt = 3;
constexpr std::uint64_t kStreamLatency = 4;

/// Random-access uniform draw in [0, 1): a pure function of
/// (scenario seed, stream, index), so replays agree in any query order.
double unit_draw(std::uint64_t scenario_seed, std::uint64_t stream,
                 std::uint64_t index) noexcept {
  std::uint64_t state =
      substream_seed(substream_seed(scenario_seed, stream), index);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && std::isfinite(parsed)) ? parsed : fallback;
}

}  // namespace

FaultSpec FaultSpec::from_env() {
  FaultSpec spec;
  spec.seed = static_cast<std::uint64_t>(env_double("SRE_FAULT_SEED", 0.0));
  spec.solver_exception_prob = env_double("SRE_FAULT_RATE", 0.0);
  spec.launch_failure_prob = env_double("SRE_FAULT_LAUNCH", 0.0);
  spec.interruption_rate = env_double("SRE_FAULT_INTERRUPT", 0.0);
  spec.latency_prob = env_double("SRE_FAULT_LATENCY_PROB", 0.0);
  spec.latency_seconds = env_double("SRE_FAULT_LATENCY_S", 0.0);
  return spec;
}

ScenarioFaults::ScenarioFaults(const FaultSpec& spec, std::uint64_t scenario_id)
    : spec_(spec), scenario_seed_(substream_seed(spec.seed, scenario_id)) {}

bool ScenarioFaults::solver_fault(int attempt) const noexcept {
  if (spec_.solver_exception_prob <= 0.0 ||
      attempt >= spec_.solver_exception_attempts) {
    return false;
  }
  return unit_draw(scenario_seed_, kStreamSolver,
                   static_cast<std::uint64_t>(attempt)) <
         spec_.solver_exception_prob;
}

double ScenarioFaults::latency(int attempt) const noexcept {
  if (spec_.latency_prob <= 0.0 || spec_.latency_seconds <= 0.0) return 0.0;
  return unit_draw(scenario_seed_, kStreamLatency,
                   static_cast<std::uint64_t>(attempt)) < spec_.latency_prob
             ? spec_.latency_seconds
             : 0.0;
}

bool ScenarioFaults::launch_fails(std::uint64_t attempt) const noexcept {
  if (spec_.launch_failure_prob <= 0.0) return false;
  return unit_draw(scenario_seed_, kStreamLaunch, attempt) <
         spec_.launch_failure_prob;
}

double ScenarioFaults::interruption_after(std::uint64_t attempt) const noexcept {
  if (spec_.interruption_rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Inverse-transform Exp(rate); the draw is in [0, 1), so log1p(-u) is safe.
  const double u = unit_draw(scenario_seed_, kStreamInterrupt, attempt);
  return -std::log1p(-u) / spec_.interruption_rate;
}

void ScenarioFaults::inject_scenario_entry(int attempt,
                                           const CancelToken& cancel) const {
  if (!spec_.enabled()) return;
  static obs::Counter& injected = obs::counter("sim.fault.injected");
  const double lat = latency(attempt);
  if (lat > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(lat));
    injected.add();
    cancel.check("sim.fault.latency");
  }
  if (solver_fault(attempt)) {
    injected.add();
    throw ScenarioError(ErrorCode::kInjectedFault,
                        "injected solver fault (attempt " +
                            std::to_string(attempt) + ")");
  }
}

}  // namespace sre::sim
