#pragma once

// SweepRunner — the campaign engine behind the paper-reproduction benches.
// A sweep is an indexed family of independent scenario evaluations
// (distribution x cost model x solver in the Tables 2-4 campaigns); the
// runner fans the indices across a thread pool in batches and materializes
// the results *in submission order*, mirroring the chunk-ordered merge of
// sim/monte_carlo.cpp, so a parallel sweep is bit-identical to the serial
// one. Exceptions thrown by scenarios propagate to the caller (first one
// wins) after the remaining scenarios finish.
//
// The runner reports per-sweep counters (scenarios, batches, steal traffic,
// wall time) that the benches emit as JSON for the perf trajectory.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/cancel.hpp"
#include "sim/thread_pool.hpp"
#include "stats/error.hpp"

namespace sre::sim {

struct SweepOptions {
  /// 0 = run on the process-global pool; otherwise the runner owns a
  /// dedicated pool of this many workers.
  unsigned threads = 0;
  /// Scenarios per submitted task. 1 (the default) maximizes load balance
  /// for coarse scenarios; raise it when scenarios are tiny and per-task
  /// overhead shows.
  std::size_t batch = 1;
  /// Run everything inline on the calling thread (baseline / debugging).
  bool serial = false;
};

struct SweepCounters {
  std::uint64_t scenarios = 0;
  std::uint64_t batches = 0;
  /// Tasks executed by a non-owner worker during the sweep (delta of the
  /// pool's steal counter; includes nested parallel work the scenarios ran
  /// on the same pool).
  std::uint64_t steals = 0;
  unsigned threads = 1;
  double wall_seconds = 0.0;
};

/// Resilient-execution policy for run_resilient(): per-scenario isolation,
/// bounded retry with decorrelated-jitter backoff, and an optional
/// per-scenario deadline surfaced through the AttemptContext cancel token.
struct ResilienceOptions {
  /// Total attempts per scenario (1 = no retry). Only retryable error
  /// classes (see sre::is_retryable — injected platform faults) re-attempt;
  /// deterministic failures record immediately.
  int max_attempts = 1;

  /// Per-attempt wall-clock deadline in seconds (0 = none). Cooperative:
  /// solvers poll the AttemptContext token and unwind with
  /// ScenarioError(kTimeout) at their next stride check.
  double scenario_deadline_seconds = 0.0;

  /// Decorrelated-jitter backoff before retry k (net::RetryPolicy, shared
  /// with srv::Client):
  ///   sleep = min(cap, base + u * (max(base, 3 * prev) - base)),
  /// u drawn deterministically from (backoff_seed, scenario, attempt).
  /// base = 0 disables sleeping (retries are immediate).
  double backoff_base_seconds = 0.0;
  double backoff_cap_seconds = 1.0;
  std::uint64_t backoff_seed = 0;

  /// Fraction of scenarios allowed to fail before the campaign is declared
  /// degraded (SweepFailureReport::budget_exceeded). Evaluated after the
  /// sweep completes — never mid-run, so partial results stay bitwise
  /// reproducible across thread counts. 1.0 = report-only, never exceeded.
  double failure_budget = 1.0;
};

/// Per-attempt view handed to the scenario callback.
struct AttemptContext {
  int attempt = 0;     ///< 0-based attempt number (> 0 on retries)
  CancelToken cancel;  ///< armed iff scenario_deadline_seconds > 0
};

/// One scenario that exhausted its attempts. `attempts` counts all attempts
/// consumed, including the failing one.
struct ScenarioFailure {
  std::size_t index = 0;
  ErrorCode code = ErrorCode::kDomainError;
  int attempts = 1;
  std::string message;
};

/// Campaign-level failure summary for a resilient sweep. Deterministic:
/// assembled from per-index records after the sweep, so two runs with the
/// same inputs produce byte-identical to_json() output regardless of thread
/// count or scheduling.
struct SweepFailureReport {
  std::uint64_t scenarios = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;  ///< extra attempts across all scenarios
  /// Failed-scenario counts indexed by ErrorCode (wire names via
  /// error_code_name()).
  std::array<std::uint64_t, kErrorCodeCount> by_code{};
  /// retry_histogram[k] = scenarios that consumed exactly k+1 attempts
  /// (successes and failures alike); size = max_attempts of the run.
  std::vector<std::uint64_t> retry_histogram;
  /// Every failed scenario in index order (first_failure() is the earliest).
  std::vector<ScenarioFailure> failures;
  double failure_budget = 1.0;
  bool budget_exceeded = false;

  [[nodiscard]] bool ok() const noexcept { return failed == 0; }
  [[nodiscard]] const ScenarioFailure* first_failure() const noexcept {
    return failures.empty() ? nullptr : &failures.front();
  }
  /// Single-line JSON (RFC 8259, escaped messages); byte-stable field order.
  [[nodiscard]] std::string to_json() const;
};

/// A resilient sweep's outcome: index-aligned results plus the failure
/// report. `ok[i] == 0` marks a failed scenario whose `results[i]` slot is
/// default-constructed filler.
template <typename R>
struct ResilientSweep {
  std::vector<R> results;
  std::vector<std::uint8_t> ok;
  SweepFailureReport report;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Evaluates fn(i) for i in [0, n) and returns the results indexed by i,
  /// independent of execution order. R must be default-constructible and
  /// move-assignable. Blocks until the sweep completes; updates counters().
  template <typename R>
  std::vector<R> run(std::size_t n, const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    run_indexed(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Type-erased core: runs fn(i) for i in [0, n). fn must write its result
  /// to a caller-owned slot keyed by i (as run() does).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Resilient variant of run(): every scenario is isolated (an exception
  /// marks only its own slot as failed), retryable failures re-attempt up to
  /// res.max_attempts with deterministic backoff, and the campaign always
  /// completes, returning partial results plus a SweepFailureReport. fn is
  /// invoked as fn(i, ctx) and signals failure by throwing (ScenarioError
  /// for a typed class; anything else classifies as kDomainError).
  template <typename R>
  ResilientSweep<R> run_resilient(
      std::size_t n, const ResilienceOptions& res,
      const std::function<R(std::size_t, const AttemptContext&)>& fn) {
    ResilientSweep<R> out;
    out.results.resize(n);
    out.report = run_resilient_indexed(
        n, res,
        [&out, &fn](std::size_t i, const AttemptContext& ctx) {
          out.results[i] = fn(i, ctx);
        },
        &out.ok);
    return out;
  }

  /// Type-erased resilient core; see run_resilient(). When `ok_out` is
  /// non-null it receives n flags (1 = scenario succeeded, its slot was
  /// written by fn).
  SweepFailureReport run_resilient_indexed(
      std::size_t n, const ResilienceOptions& res,
      const std::function<void(std::size_t, const AttemptContext&)>& fn,
      std::vector<std::uint8_t>* ok_out = nullptr);

  /// Counters of the most recent run.
  [[nodiscard]] const SweepCounters& counters() const noexcept {
    return counters_;
  }

  /// The pool scenarios execute on (global or owned).
  [[nodiscard]] ThreadPool& pool();

 private:
  SweepOptions opts_;
  std::unique_ptr<ThreadPool> own_pool_;
  SweepCounters counters_;
};

}  // namespace sre::sim
