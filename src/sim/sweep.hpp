#pragma once

// SweepRunner — the campaign engine behind the paper-reproduction benches.
// A sweep is an indexed family of independent scenario evaluations
// (distribution x cost model x solver in the Tables 2-4 campaigns); the
// runner fans the indices across a thread pool in batches and materializes
// the results *in submission order*, mirroring the chunk-ordered merge of
// sim/monte_carlo.cpp, so a parallel sweep is bit-identical to the serial
// one. Exceptions thrown by scenarios propagate to the caller (first one
// wins) after the remaining scenarios finish.
//
// The runner reports per-sweep counters (scenarios, batches, steal traffic,
// wall time) that the benches emit as JSON for the perf trajectory.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/thread_pool.hpp"

namespace sre::sim {

struct SweepOptions {
  /// 0 = run on the process-global pool; otherwise the runner owns a
  /// dedicated pool of this many workers.
  unsigned threads = 0;
  /// Scenarios per submitted task. 1 (the default) maximizes load balance
  /// for coarse scenarios; raise it when scenarios are tiny and per-task
  /// overhead shows.
  std::size_t batch = 1;
  /// Run everything inline on the calling thread (baseline / debugging).
  bool serial = false;
};

struct SweepCounters {
  std::uint64_t scenarios = 0;
  std::uint64_t batches = 0;
  /// Tasks executed by a non-owner worker during the sweep (delta of the
  /// pool's steal counter; includes nested parallel work the scenarios ran
  /// on the same pool).
  std::uint64_t steals = 0;
  unsigned threads = 1;
  double wall_seconds = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Evaluates fn(i) for i in [0, n) and returns the results indexed by i,
  /// independent of execution order. R must be default-constructible and
  /// move-assignable. Blocks until the sweep completes; updates counters().
  template <typename R>
  std::vector<R> run(std::size_t n, const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    run_indexed(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Type-erased core: runs fn(i) for i in [0, n). fn must write its result
  /// to a caller-owned slot keyed by i (as run() does).
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Counters of the most recent run.
  [[nodiscard]] const SweepCounters& counters() const noexcept {
    return counters_;
  }

  /// The pool scenarios execute on (global or owned).
  [[nodiscard]] ThreadPool& pool();

 private:
  SweepOptions opts_;
  std::unique_ptr<ThreadPool> own_pool_;
  SweepCounters counters_;
};

}  // namespace sre::sim
