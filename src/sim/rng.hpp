#pragma once

// Deterministic random-number streams. Every stochastic API in the library
// takes an explicit 64-bit seed; independent substreams for parallel workers
// are derived with SplitMix64 so results are reproducible regardless of the
// number of threads or the scheduling order.

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"

namespace sre::sim {

using Rng = dist::Rng;

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used both as a seed scrambler and to derive substream seeds.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// A generator seeded through SplitMix64 (avoids the mt19937_64 low-entropy
/// seeding pitfall for small consecutive seeds).
Rng make_rng(std::uint64_t seed);

/// Seed of the `index`-th substream of a master seed. Distinct (master,
/// index) pairs map to statistically independent streams.
std::uint64_t substream_seed(std::uint64_t master, std::uint64_t index) noexcept;

/// Draws n i.i.d. execution times from a distribution.
std::vector<double> draw_samples(const dist::Distribution& d, std::size_t n,
                                 std::uint64_t seed);

}  // namespace sre::sim
