#include "sim/queue_sim.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <queue>

#include "sim/rng.hpp"

namespace sre::sim {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

struct BackfillCluster::Impl {
  explicit Impl(ClusterConfig cfg) : config(cfg), free(cfg.nodes) {
    assert(cfg.nodes >= 1);
  }

  struct Running {
    std::size_t id = 0;
    std::size_t width = 0;
    double actual_end = 0.0;     ///< nodes actually free here
    double requested_end = 0.0;  ///< the scheduler's conservative estimate
  };

  ClusterConfig config;
  std::vector<ClusterJob> jobs;        // by id
  std::vector<ScheduledJob> records;   // by id, filled at start time
  // Pending arrivals ordered by (submit_time, id) -- id breaks ties FIFO.
  using Arrival = std::pair<double, std::size_t>;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;
  std::deque<std::size_t> queue;  // FCFS by arrival
  std::vector<Running> running;
  std::size_t free;
  double now = 0.0;

  void start(std::size_t id, bool backfilled) {
    const ClusterJob& job = jobs[id];
    assert(job.width <= free);
    free -= job.width;
    running.push_back({id, job.width, now + job.actual, now + job.requested});
    ScheduledJob rec;
    rec.index = id;
    rec.job = job;
    rec.start_time = now;
    rec.wait = now - job.submit_time;
    rec.backfilled = backfilled;
    records[id] = rec;
  }

  /// Earliest time (by requested walltimes) at which `needed` nodes free,
  /// and the node surplus at that instant. Requires needed > free.
  std::pair<double, std::size_t> reservation_for(std::size_t needed) const {
    std::vector<Running> by_end(running);
    std::sort(by_end.begin(), by_end.end(),
              [](const Running& a, const Running& b) {
                return a.requested_end < b.requested_end;
              });
    std::size_t projected = free;
    for (const Running& r : by_end) {
      projected += r.width;
      if (projected >= needed) return {r.requested_end, projected - needed};
    }
    return {std::numeric_limits<double>::infinity(), 0};
  }

  /// One FCFS + EASY pass at the current instant.
  void schedule() {
    while (!queue.empty() && jobs[queue.front()].width <= free) {
      const std::size_t id = queue.front();
      queue.pop_front();
      start(id, /*backfilled=*/false);
    }
    if (queue.empty() || free == 0) return;

    const ClusterJob& head = jobs[queue.front()];
    const auto [shadow, spare_at_shadow] = reservation_for(head.width);
    std::size_t spare = spare_at_shadow;
    for (auto it = queue.begin() + 1; it != queue.end() && free > 0;) {
      const ClusterJob& job = jobs[*it];
      if (job.width > free) {
        ++it;
        continue;
      }
      const bool fits_before_shadow = now + job.requested <= shadow + kEps;
      const bool fits_in_spare = job.width <= spare;
      if (fits_before_shadow || fits_in_spare) {
        const std::size_t id = *it;
        it = queue.erase(it);
        start(id, /*backfilled=*/true);
        if (!fits_before_shadow) spare -= job.width;
      } else {
        ++it;
      }
    }
  }

  void release_finished(std::vector<std::size_t>* completed) {
    std::size_t i = 0;
    while (i < running.size()) {
      if (running[i].actual_end <= now + kEps) {
        free += running[i].width;
        completed->push_back(running[i].id);
        running[i] = running.back();
        running.pop_back();
      } else {
        ++i;
      }
    }
    // Deterministic callback order regardless of the removal shuffle.
    std::sort(completed->begin(), completed->end());
  }

  void run(const CompletionCallback& on_complete) {
    for (;;) {
      double t_next = std::numeric_limits<double>::infinity();
      if (!arrivals.empty()) t_next = arrivals.top().first;
      for (const Running& r : running) {
        t_next = std::min(t_next, r.actual_end);
      }
      if (!std::isfinite(t_next)) {
        assert(queue.empty() && "queued jobs but no future event");
        return;
      }
      now = std::max(now, t_next);

      std::vector<std::size_t> completed;
      release_finished(&completed);
      for (const std::size_t id : completed) {
        if (on_complete) on_complete(records[id], now);
      }
      while (!arrivals.empty() && arrivals.top().first <= now + kEps) {
        queue.push_back(arrivals.top().second);
        arrivals.pop();
      }
      schedule();
    }
  }
};

BackfillCluster::BackfillCluster(ClusterConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

BackfillCluster::~BackfillCluster() = default;

std::size_t BackfillCluster::submit(ClusterJob job) {
  assert(job.width >= 1);
  assert(job.requested > 0.0 && job.actual > 0.0);
  assert(job.actual <= job.requested + kEps);
  // A job wider than the machine could never start and would deadlock the
  // queue; clamp like swf_to_cluster_jobs does (real schedulers reject).
  job.width = std::min(job.width, impl_->config.nodes);
  const std::size_t id = impl_->jobs.size();
  impl_->jobs.push_back(job);
  impl_->records.emplace_back();
  impl_->arrivals.emplace(job.submit_time, id);
  return id;
}

void BackfillCluster::run(const CompletionCallback& on_complete) {
  impl_->run(on_complete);
}

const std::vector<ScheduledJob>& BackfillCluster::records() const noexcept {
  return impl_->records;
}

std::vector<ScheduledJob> simulate_backfill_queue(const ClusterConfig& cluster,
                                                  std::vector<ClusterJob> jobs) {
  BackfillCluster sim(cluster);
  for (const auto& job : jobs) sim.submit(job);
  sim.run();
  return sim.records();
}

std::vector<ClusterJob> synthesize_cluster_workload(
    const ClusterWorkloadConfig& cfg) {
  assert(cfg.jobs >= 1 && cfg.max_width >= 1);
  Rng rng = make_rng(cfg.seed);
  std::exponential_distribution<double> interarrival(1.0 /
                                                     cfg.mean_interarrival);
  std::uniform_real_distribution<double> request(cfg.min_request,
                                                 cfg.max_request);
  std::exponential_distribution<double> width_frac(
      1.0 / cfg.mean_width_fraction);
  std::uniform_real_distribution<double> usage(cfg.min_usage_fraction, 1.0);

  std::vector<ClusterJob> jobs;
  jobs.reserve(cfg.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    t += interarrival(rng);
    ClusterJob job;
    job.submit_time = t;
    const double frac = std::min(1.0, width_frac(rng));
    job.width = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(cfg.max_width)));
    job.requested = request(rng);
    job.actual = job.requested * usage(rng);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace sre::sim
