#pragma once

// A discrete-event simulator of a reservation-based platform. It executes a
// job attempt-by-attempt against a reservation sequence, accounting cost,
// wasted time and (optionally) queue waiting time. It deliberately shares no
// code with the closed-form cost expressions of the core library, so tests
// can cross-validate Eq. (2)/(4) against an independent implementation.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dist/distribution.hpp"
#include "sim/fault.hpp"
#include "sim/rng.hpp"

namespace sre::sim {

/// Affine cost parameters of Eq. (1): alpha * reserved + beta * used + gamma.
struct ReservationCostParams {
  double alpha = 1.0;
  double beta = 0.0;
  double gamma = 0.0;
};

/// One reservation attempt as replayed by the simulator.
struct AttemptRecord {
  double reserved = 0.0;  ///< requested length t_i
  double used = 0.0;      ///< min(t_i, t): machine time actually consumed
  double wait = 0.0;      ///< queueing delay charged before the attempt
  double cost = 0.0;      ///< monetary/time cost of this attempt
  bool success = false;   ///< job finished within this reservation
};

/// Aggregate outcome of running one job to completion (or exhaustion).
struct JobOutcome {
  bool completed = false;
  std::size_t attempts = 0;
  double total_cost = 0.0;
  double wasted_time = 0.0;  ///< machine time burnt by failed attempts
  double turnaround = 0.0;   ///< total wall-clock: waits + executions
};

class PlatformSimulator {
 public:
  /// `reservations` must be strictly increasing and nonempty.
  PlatformSimulator(std::vector<double> reservations,
                    ReservationCostParams costs);

  /// Adds a queueing model: the wall-clock wait before an attempt as a
  /// function of the requested length (the Fig. 2 affine model in the
  /// NeuroHPC scenario). Affects `turnaround` and `AttemptRecord::wait`
  /// only; the monetary cost stays Eq. (1).
  void set_wait_time_model(std::function<double(double)> wait_of_request);

  /// Replays one job of the given execution time. If `trace` is non-null
  /// the per-attempt records are appended to it.
  [[nodiscard]] JobOutcome run_job(
      double execution_time, std::vector<AttemptRecord>* trace = nullptr) const;

  /// Fault-aware replay: attempts are additionally subject to the plan's
  /// launch failures (the attempt burns only the fixed overhead gamma, no
  /// machine time, and the same reservation is retried) and mid-reservation
  /// interruptions (the partial run is lost — cost alpha*t + beta*used +
  /// gamma, the used time is wasted — and the same reservation is retried,
  /// mirroring PreemptingSimulator's spot semantics). Decisions are indexed
  /// by a per-job attempt counter, so the replay is a pure function of
  /// (faults, execution_time). With a disabled plan this is exactly
  /// run_job(). Throws ScenarioError(kInjectedFault) if a fault storm
  /// exceeds the attempt budget instead of looping forever.
  [[nodiscard]] JobOutcome run_job_with_faults(
      double execution_time, const ScenarioFaults& faults,
      std::vector<AttemptRecord>* trace = nullptr) const;

  /// Aggregate statistics over a batch of jobs.
  struct BatchStats {
    std::size_t jobs = 0;
    std::size_t incomplete = 0;  ///< jobs no reservation could cover
    double mean_cost = 0.0;
    double mean_attempts = 0.0;
    double mean_waste = 0.0;
    double mean_turnaround = 0.0;
    double max_cost = 0.0;
  };

  /// Samples `n_jobs` execution times from `d` and replays each.
  [[nodiscard]] BatchStats run_batch(const dist::Distribution& d,
                                     std::size_t n_jobs,
                                     std::uint64_t seed) const;

  [[nodiscard]] const std::vector<double>& reservations() const noexcept {
    return reservations_;
  }

 private:
  std::vector<double> reservations_;
  ReservationCostParams costs_;
  std::function<double(double)> wait_of_request_;
};

/// Checkpoint/restart variant of the platform simulator: a reservation of
/// length t spends (restart R, except the first attempt) + useful work +
/// (checkpoint C, unless the job finishes); work accumulates across
/// attempts. The job finishes in the first reservation whose work window
/// covers the remaining work. Event-by-event accounting, independent of the
/// closed forms in core/checkpoint.*, so tests can cross-validate the two.
class CheckpointingSimulator {
 public:
  /// Every reservation must provide positive work: t_i > R_i + C.
  CheckpointingSimulator(std::vector<double> reservations,
                         ReservationCostParams costs, double checkpoint_cost,
                         double restart_cost);

  [[nodiscard]] JobOutcome run_job(
      double execution_time, std::vector<AttemptRecord>* trace = nullptr) const;

  [[nodiscard]] const std::vector<double>& reservations() const noexcept {
    return reservations_;
  }

 private:
  std::vector<double> reservations_;
  ReservationCostParams costs_;
  double checkpoint_cost_;
  double restart_cost_;
};

/// Spot-style preemptible platform: during every attempt, an interruption
/// arrives after Exp(rate) machine time; a preempted attempt is lost and
/// the same reservation is retried (the length was not proven too short);
/// a timeout advances to the next reservation, continuing with a doubling
/// tail past the stored plan. Monte-Carlo counterpart of core/preemption.
class PreemptingSimulator {
 public:
  PreemptingSimulator(std::vector<double> reservations,
                      ReservationCostParams costs, double preemption_rate);

  /// Replays one job; preemption times are drawn from `rng`.
  [[nodiscard]] JobOutcome run_job(double execution_time, Rng& rng) const;

 private:
  std::vector<double> reservations_;
  ReservationCostParams costs_;
  double rate_;
};

}  // namespace sre::sim
