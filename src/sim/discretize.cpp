#include "sim/discretize.hpp"

#include <cassert>
#include <cmath>

namespace sre::sim {

const char* to_string(DiscretizationScheme scheme) noexcept {
  switch (scheme) {
    case DiscretizationScheme::kEqualProbability:
      return "Equal-probability";
    case DiscretizationScheme::kEqualTime:
      return "Equal-time";
  }
  return "?";
}

double truncation_point(const dist::Distribution& d, double epsilon) {
  const dist::Support s = d.support();
  if (s.bounded()) return s.upper;
  assert(epsilon > 0.0 && epsilon < 1.0);
  return d.quantile(1.0 - epsilon);
}

dist::DiscreteDistribution discretize(const dist::Distribution& d,
                                      const DiscretizationOptions& opts) {
  assert(opts.n >= 1);
  const double a = d.support().lower;
  const double b = truncation_point(d, opts.epsilon);
  assert(b > a);
  const double fb = d.cdf(b);

  std::vector<double> values, probs;
  values.reserve(opts.n);
  probs.reserve(opts.n);

  const auto push = [&](double v, double p) {
    // Merge duplicates produced by quantile plateaus or grid collisions.
    if (!values.empty() && v <= values.back()) {
      probs.back() += p;
      return;
    }
    values.push_back(v);
    probs.push_back(p);
  };

  switch (opts.scheme) {
    case DiscretizationScheme::kEqualProbability: {
      const double f = fb / static_cast<double>(opts.n);
      for (std::size_t i = 1; i <= opts.n; ++i) {
        const double v = d.quantile(static_cast<double>(i) * f);
        push(v, f);
      }
      break;
    }
    case DiscretizationScheme::kEqualTime: {
      double prev_cdf = d.cdf(a);
      const double step = (b - a) / static_cast<double>(opts.n);
      for (std::size_t i = 1; i <= opts.n; ++i) {
        const double v = a + static_cast<double>(i) * step;
        const double cv = d.cdf(v);
        push(v, cv - prev_cdf);
        prev_cdf = cv;
      }
      break;
    }
  }
  return dist::DiscreteDistribution(std::move(values), std::move(probs));
}

}  // namespace sre::sim
