#include "sim/discretize.hpp"

#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"

namespace sre::sim {

const char* to_string(DiscretizationScheme scheme) noexcept {
  switch (scheme) {
    case DiscretizationScheme::kEqualProbability:
      return "Equal-probability";
    case DiscretizationScheme::kEqualTime:
      return "Equal-time";
  }
  return "?";
}

const char* to_string(DpVariant variant) noexcept {
  switch (variant) {
    case DpVariant::kReference:
      return "reference-n2";
    case DpVariant::kDivideAndConquer:
      return "divide-and-conquer";
  }
  return "?";
}

double truncation_point(const dist::Distribution& d, double epsilon) {
  const dist::Support s = d.support();
  if (s.bounded()) return s.upper;
  assert(epsilon > 0.0 && epsilon < 1.0);
  return d.quantile(1.0 - epsilon);
}

dist::DiscreteDistribution discretize(const dist::Distribution& d,
                                      const DiscretizationOptions& opts,
                                      const dist::TabulatedCdf* tab) {
  assert(opts.n >= 1);
  // Section 4.2.1 probe accounting: each scheme evaluates one CDF or
  // quantile per grid point (plus the truncation probe), so the counters
  // below are exactly the per-discretization work the CdfCache can absorb.
  static obs::Counter& calls = obs::counter("sim.discretize.calls");
  static obs::Counter& cdf_probes = obs::counter("sim.discretize.cdf_probes");
  static obs::Counter& quantile_probes =
      obs::counter("sim.discretize.quantile_probes");
  calls.add();
  switch (opts.scheme) {
    case DiscretizationScheme::kEqualProbability:
      quantile_probes.add(opts.n);
      break;
    case DiscretizationScheme::kEqualTime:
      cdf_probes.add(opts.n + 1);
      break;
  }
  // A matching table serves every grid evaluation directly; it stored the
  // exact values the distribution returned for these probes at build time.
  const bool exact = tab != nullptr && &tab->source() == &d &&
                     tab->grid_size() == opts.n &&
                     tab->epsilon() == opts.epsilon;
  const double a = d.support().lower;
  const double b = exact ? tab->truncation() : truncation_point(d, opts.epsilon);
  assert(b > a);
  const double fb = exact ? tab->mass() : d.cdf(b);

  const auto cdf_at = [&](double t) {
    return tab != nullptr ? tab->cdf(t) : d.cdf(t);
  };
  const auto quantile_at = [&](double p) {
    return tab != nullptr ? tab->quantile(p) : d.quantile(p);
  };

  std::vector<double> values, probs;
  values.reserve(opts.n);
  probs.reserve(opts.n);

  const auto push = [&](double v, double p) {
    // Merge duplicates produced by quantile plateaus or grid collisions.
    if (!values.empty() && v <= values.back()) {
      probs.back() += p;
      return;
    }
    values.push_back(v);
    probs.push_back(p);
  };

  // With no table at all, the grid probes go through the batched SoA
  // kernels (dist::Distribution::*_batch): one call for the whole grid
  // instead of n virtual dispatches. The batch API is bit-identical to the
  // per-point calls, so all three routes below produce the same bytes.
  switch (opts.scheme) {
    case DiscretizationScheme::kEqualProbability: {
      const double f = fb / static_cast<double>(opts.n);
      if (tab == nullptr) {
        std::vector<double> ps(opts.n), vs(opts.n);
        for (std::size_t i = 1; i <= opts.n; ++i) {
          ps[i - 1] = static_cast<double>(i) * f;
        }
        d.quantile_batch(ps, vs);
        for (std::size_t i = 0; i < opts.n; ++i) push(vs[i], f);
        break;
      }
      for (std::size_t i = 1; i <= opts.n; ++i) {
        const double v = exact ? tab->quantile_point(i)
                               : quantile_at(static_cast<double>(i) * f);
        push(v, f);
      }
      break;
    }
    case DiscretizationScheme::kEqualTime: {
      const double step = (b - a) / static_cast<double>(opts.n);
      if (tab == nullptr) {
        std::vector<double> ts(opts.n + 1), cs(opts.n + 1);
        ts[0] = a;
        for (std::size_t i = 1; i <= opts.n; ++i) {
          ts[i] = a + static_cast<double>(i) * step;
        }
        d.cdf_batch(ts, cs);
        for (std::size_t i = 1; i <= opts.n; ++i) {
          push(ts[i], cs[i] - cs[i - 1]);
        }
        break;
      }
      double prev_cdf = exact ? tab->cdf_point(0) : cdf_at(a);
      for (std::size_t i = 1; i <= opts.n; ++i) {
        const double v = a + static_cast<double>(i) * step;
        const double cv = exact ? tab->cdf_point(i) : cdf_at(v);
        push(v, cv - prev_cdf);
        prev_cdf = cv;
      }
      break;
    }
  }
  return dist::DiscreteDistribution(std::move(values), std::move(probs));
}

}  // namespace sre::sim
