#include "sim/sweep.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/parallel.hpp"

namespace sre::sim {

namespace {

/// Runs one scenario, timing it into the per-scenario latency histogram (the
/// instrument that shows a 50x-slower outlier cell in a flat-looking grid).
void run_timed_scenario(const std::function<void(std::size_t)>& fn,
                        std::size_t i) {
  static obs::Histogram& lat = obs::histogram("sim.sweep.scenario_seconds",
                                              obs::duration_bounds_seconds());
  if (!obs::enabled()) {
    fn(i);
    return;
  }
  const std::uint64_t t0 = obs::detail::now_ns();
  fn(i);
  lat.observe(static_cast<double>(obs::detail::now_ns() - t0) * 1e-9);
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {
  if (opts_.threads != 0) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
  if (opts_.batch == 0) opts_.batch = 1;
}

SweepRunner::~SweepRunner() = default;

ThreadPool& SweepRunner::pool() {
  return own_pool_ ? *own_pool_ : ThreadPool::global();
}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  counters_ = SweepCounters{};
  counters_.scenarios = n;
  if (n == 0) return;

  static obs::SpanStats& sweep_span = obs::span_series("sim.sweep.run");
  static obs::Counter& scenario_count = obs::counter("sim.sweep.scenarios");
  static obs::Counter& batch_count = obs::counter("sim.sweep.batches");
  obs::Span span(sweep_span);
  scenario_count.add(n);

  const auto start = std::chrono::steady_clock::now();
  if (opts_.serial || pool().size() <= 1) {
    counters_.threads = 1;
    counters_.batches = n;
    for (std::size_t i = 0; i < n; ++i) run_timed_scenario(fn, i);
  } else {
    ThreadPool& p = pool();
    const std::size_t batch = opts_.batch;
    const std::size_t n_batches = (n + batch - 1) / batch;
    counters_.threads = p.size();
    counters_.batches = n_batches;
    const std::uint64_t steals_before = p.steal_count();
    submit_and_join(p, n_batches, [&](std::size_t b) {
      const std::size_t lo = b * batch;
      const std::size_t hi = std::min(n, lo + batch);
      for (std::size_t i = lo; i < hi; ++i) run_timed_scenario(fn, i);
    });
    counters_.steals = p.steal_count() - steals_before;
  }
  batch_count.add(counters_.batches);
  counters_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

}  // namespace sre::sim
