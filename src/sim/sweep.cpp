#include "sim/sweep.hpp"

#include <algorithm>
#include <chrono>

#include "sim/parallel.hpp"

namespace sre::sim {

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {
  if (opts_.threads != 0) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
  if (opts_.batch == 0) opts_.batch = 1;
}

SweepRunner::~SweepRunner() = default;

ThreadPool& SweepRunner::pool() {
  return own_pool_ ? *own_pool_ : ThreadPool::global();
}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  counters_ = SweepCounters{};
  counters_.scenarios = n;
  if (n == 0) return;

  const auto start = std::chrono::steady_clock::now();
  if (opts_.serial || pool().size() <= 1) {
    counters_.threads = 1;
    counters_.batches = n;
    for (std::size_t i = 0; i < n; ++i) fn(i);
  } else {
    ThreadPool& p = pool();
    const std::size_t batch = opts_.batch;
    const std::size_t n_batches = (n + batch - 1) / batch;
    counters_.threads = p.size();
    counters_.batches = n_batches;
    const std::uint64_t steals_before = p.steal_count();
    submit_and_join(p, n_batches, [&](std::size_t b) {
      const std::size_t lo = b * batch;
      const std::size_t hi = std::min(n, lo + batch);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
    counters_.steals = p.steal_count() - steals_before;
  }
  counters_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

}  // namespace sre::sim
