#include "sim/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "net/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/minijson.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

namespace sre::sim {

namespace {

/// Runs one scenario, timing it into the per-scenario latency histogram (the
/// instrument that shows a 50x-slower outlier cell in a flat-looking grid).
void run_timed_scenario(const std::function<void(std::size_t)>& fn,
                        std::size_t i) {
  static obs::Histogram& lat = obs::histogram("sim.sweep.scenario_seconds",
                                              obs::duration_bounds_seconds());
  if (!obs::enabled()) {
    fn(i);
    return;
  }
  const std::uint64_t t0 = obs::detail::now_ns();
  fn(i);
  lat.observe(static_cast<double>(obs::detail::now_ns() - t0) * 1e-9);
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {
  if (opts_.threads != 0) {
    own_pool_ = std::make_unique<ThreadPool>(opts_.threads);
  }
  if (opts_.batch == 0) opts_.batch = 1;
}

SweepRunner::~SweepRunner() = default;

ThreadPool& SweepRunner::pool() {
  return own_pool_ ? *own_pool_ : ThreadPool::global();
}

void SweepRunner::run_indexed(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  counters_ = SweepCounters{};
  counters_.scenarios = n;
  if (n == 0) return;

  static obs::SpanStats& sweep_span = obs::span_series("sim.sweep.run");
  static obs::Counter& scenario_count = obs::counter("sim.sweep.scenarios");
  static obs::Counter& batch_count = obs::counter("sim.sweep.batches");
  obs::Span span(sweep_span);
  scenario_count.add(n);

  const auto start = std::chrono::steady_clock::now();
  if (opts_.serial || pool().size() <= 1) {
    counters_.threads = 1;
    counters_.batches = n;
    for (std::size_t i = 0; i < n; ++i) run_timed_scenario(fn, i);
  } else {
    ThreadPool& p = pool();
    const std::size_t batch = opts_.batch;
    const std::size_t n_batches = (n + batch - 1) / batch;
    counters_.threads = p.size();
    counters_.batches = n_batches;
    const std::uint64_t steals_before = p.steal_count();
    submit_and_join(p, n_batches, [&](std::size_t b) {
      const std::size_t lo = b * batch;
      const std::size_t hi = std::min(n, lo + batch);
      for (std::size_t i = lo; i < hi; ++i) run_timed_scenario(fn, i);
    });
    counters_.steals = p.steal_count() - steals_before;
  }
  batch_count.add(counters_.batches);
  counters_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

namespace {

/// One scenario's retry loop. Returns the number of attempts consumed and,
/// on failure, fills code/message. All exceptions are absorbed here —
/// nothing escapes into run_indexed's first-exception-wins path. Backoff
/// comes from the shared net::RetrySchedule, whose recurrence is the exact
/// formula this loop used to inline (bit-identical schedules at a fixed
/// seed; tests/test_net_retry.cpp holds the equivalence proof).
int run_attempts(const std::function<void(std::size_t, const AttemptContext&)>& fn,
                 std::size_t i, const ResilienceOptions& res, int max_attempts,
                 bool& succeeded, ErrorCode& code, std::string& message) {
  const net::RetryPolicy policy{max_attempts, res.backoff_base_seconds,
                                res.backoff_cap_seconds, res.backoff_seed};
  net::RetrySchedule schedule(policy, i);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0 && res.backoff_base_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(schedule.next()));
    }
    AttemptContext ctx;
    ctx.attempt = attempt;
    std::optional<CancelSource> deadline;
    if (res.scenario_deadline_seconds > 0.0) {
      deadline = CancelSource::with_deadline(res.scenario_deadline_seconds);
      ctx.cancel = deadline->token();
    }
    try {
      fn(i, ctx);
      succeeded = true;
      return attempt + 1;
    } catch (const ScenarioError& e) {
      code = e.code();
      message = e.what();
      if (!is_retryable(code) || attempt + 1 == max_attempts) {
        return attempt + 1;
      }
    } catch (const std::exception& e) {
      // Untyped exceptions classify as domain errors (see CONTRIBUTING.md):
      // they are bugs to surface, not platform weather, so never retried.
      code = ErrorCode::kDomainError;
      message = e.what();
      return attempt + 1;
    } catch (...) {
      code = ErrorCode::kDomainError;
      message = "unknown exception";
      return attempt + 1;
    }
  }
  return max_attempts;  // unreachable: the loop always returns
}

}  // namespace

SweepFailureReport SweepRunner::run_resilient_indexed(
    std::size_t n, const ResilienceOptions& res,
    const std::function<void(std::size_t, const AttemptContext&)>& fn,
    std::vector<std::uint8_t>* ok_out) {
  const int max_attempts = std::max(1, res.max_attempts);

  // Per-index records written by whichever worker ran the scenario; distinct
  // slots, no sharing. Aggregated serially below so the report (and every
  // counter derived from it) is independent of scheduling.
  std::vector<std::uint8_t> ok(n, 0);
  std::vector<int> attempts(n, 0);
  std::vector<ErrorCode> codes(n, ErrorCode::kDomainError);
  std::vector<std::string> messages(n);

  run_indexed(n, [&](std::size_t i) {
    bool succeeded = false;
    attempts[i] = run_attempts(fn, i, res, max_attempts, succeeded, codes[i],
                               messages[i]);
    ok[i] = succeeded ? 1 : 0;
  });

  SweepFailureReport report;
  report.scenarios = n;
  report.failure_budget = res.failure_budget;
  report.retry_histogram.assign(static_cast<std::size_t>(max_attempts), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int used = std::max(1, attempts[i]);
    report.retry_histogram[static_cast<std::size_t>(used - 1)] += 1;
    report.retries += static_cast<std::uint64_t>(used - 1);
    if (ok[i] == 0) {
      report.failed += 1;
      report.by_code[static_cast<std::size_t>(codes[i])] += 1;
      report.failures.push_back(ScenarioFailure{
          i, codes[i], used, std::move(messages[i])});
    }
  }
  report.budget_exceeded =
      static_cast<double>(report.failed) >
      res.failure_budget * static_cast<double>(n);

  static obs::Counter& failures_total = obs::counter("sim.sweep.failures");
  static obs::Counter& retries_total = obs::counter("sim.sweep.retries");
  failures_total.add(report.failed);
  retries_total.add(report.retries);
  for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
    if (report.by_code[c] == 0) continue;
    obs::counter(std::string("sim.sweep.failures.") +
                 std::string(error_code_name(static_cast<ErrorCode>(c))))
        .add(report.by_code[c]);
  }

  if (ok_out != nullptr) *ok_out = std::move(ok);
  return report;
}

std::string SweepFailureReport::to_json() const {
  std::string out = "{";
  out += "\"scenarios\":" + std::to_string(scenarios);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"retries\":" + std::to_string(retries);
  out += ",\"failure_budget\":" + obs::format_double(failure_budget);
  out += ",\"budget_exceeded\":";
  out += budget_exceeded ? "true" : "false";
  out += ",\"by_code\":{";
  for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
    if (c != 0) out += ",";
    out += "\"";
    out += std::string(error_code_name(static_cast<ErrorCode>(c)));
    out += "\":" + std::to_string(by_code[c]);
  }
  out += "},\"retry_histogram\":[";
  for (std::size_t k = 0; k < retry_histogram.size(); ++k) {
    if (k != 0) out += ",";
    out += std::to_string(retry_histogram[k]);
  }
  out += "]";
  if (const ScenarioFailure* first = first_failure()) {
    out += ",\"first_failure\":{\"index\":" + std::to_string(first->index);
    out += ",\"code\":\"";
    out += std::string(error_code_name(first->code));
    out += "\",\"attempts\":" + std::to_string(first->attempts);
    out += ",\"message\":\"" + obs::minijson::escape(first->message) + "\"}";
  }
  out += ",\"failures\":[";
  for (std::size_t k = 0; k < failures.size(); ++k) {
    const ScenarioFailure& f = failures[k];
    if (k != 0) out += ",";
    out += "{\"index\":" + std::to_string(f.index);
    out += ",\"code\":\"";
    out += std::string(error_code_name(f.code));
    out += "\",\"attempts\":" + std::to_string(f.attempts);
    out += ",\"message\":\"" + obs::minijson::escape(f.message) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace sre::sim
