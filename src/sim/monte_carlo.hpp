#pragma once

// Parallel Monte-Carlo estimation of E[g(X)] for X ~ D. This is the engine
// behind the paper's evaluation methodology (Eq. 13): the expected cost of a
// reservation sequence is approximated by averaging the per-sample cost over
// N draws. The estimate is deterministic for a fixed seed, independent of
// thread count.

#include <cstdint>
#include <functional>

#include "dist/distribution.hpp"
#include "sim/cancel.hpp"

namespace sre::sim {

class ThreadPool;

struct MonteCarloResult {
  double mean = 0.0;
  double std_error = 0.0;  ///< standard error of the mean
  std::size_t samples = 0;
};

struct MonteCarloOptions {
  std::size_t samples = 1000;  ///< N in Eq. (13); the paper uses 1000
  std::uint64_t seed = 42;
  bool parallel = true;
  std::size_t chunk = 256;  ///< samples per worker chunk / RNG substream
  /// Antithetic variates: draw u and 1-u pairs through the quantile. For
  /// monotone integrands -- reservation costs are nondecreasing in the job
  /// size -- the pair correlation is negative and the variance drops.
  bool antithetic = false;
  /// Pool to run on when parallel (nullptr = the process-global pool). The
  /// estimate is chunk-deterministic: the same (samples, seed, chunk) give
  /// bit-identical results on any pool size, and serially.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation/deadline token, polled once per worker chunk
  /// (a chunk is ~256 samples, cheap enough to bound timeout latency). An
  /// inert token (the default) costs one pointer test per chunk.
  CancelToken cancel{};
};

/// Estimates E[g(X)]. `g` must be thread-safe (it is called concurrently).
MonteCarloResult estimate_expectation(const dist::Distribution& d,
                                      const std::function<double(double)>& g,
                                      const MonteCarloOptions& opts = {});

}  // namespace sre::sim
