#include "sim/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"

namespace sre::sim {

namespace {

// Identity of the pool (if any) the current thread works for, so submit()
// can route recursive submissions to the local deque and in_worker() can
// answer without bookkeeping.
thread_local const ThreadPool* t_pool = nullptr;
thread_local unsigned t_worker = 0;

// Registry mirrors of the pool's bookkeeping atomics (aggregated over every
// pool in the process, global and dedicated alike).
obs::Counter& obs_submitted() {
  static obs::Counter& c = obs::counter("sim.pool.submitted");
  return c;
}
obs::Counter& obs_executed() {
  static obs::Counter& c = obs::counter("sim.pool.executed");
  return c;
}
obs::Counter& obs_steals() {
  static obs::Counter& c = obs::counter("sim.pool.steals");
  return c;
}
obs::Counter& obs_idle_ns() {
  static obs::Counter& c = obs::counter("sim.pool.idle_ns");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  // Register the pool instruments up front so metrics reports always carry
  // the full "sim.pool.*" key set, zeros included, even for workloads that
  // never submit, steal, or idle.
  obs_submitted();
  obs_executed();
  obs_steals();
  obs_idle_ns();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::in_worker() const noexcept { return t_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  const unsigned d =
      in_worker() ? t_worker
                  : static_cast<unsigned>(
                        next_deque_.fetch_add(1, std::memory_order_relaxed) %
                        deques_.size());
  {
    std::lock_guard lock(deques_[d]->mutex);
    deques_[d]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard lock(mutex_);
    ++queued_;
    ++pending_;
  }
  obs_submitted().add();
  cv_task_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const std::size_t n = tasks.size();
  const std::size_t start = next_deque_.fetch_add(n, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    Worker& w = *deques_[(start + k) % deques_.size()];
    std::lock_guard lock(w.mutex);
    w.deque.push_back(std::move(tasks[k]));
  }
  {
    std::lock_guard lock(mutex_);
    queued_ += n;
    pending_ += n;
  }
  obs_submitted().add(n);
  cv_task_.notify_all();
}

std::function<void()> ThreadPool::take_reserved(unsigned home) {
  // The caller holds a reservation (it decremented queued_ while positive),
  // and tasks are pushed to a deque before queued_ is incremented, so across
  // all deques at least one unclaimed task exists until we pop it. Concurrent
  // reservers each pop exactly one, so a repeated scan always terminates.
  const std::size_t n = deques_.size();
  for (;;) {
    for (std::size_t off = 0; off < n; ++off) {
      const std::size_t d = (home + off) % n;
      Worker& w = *deques_[d];
      std::lock_guard lock(w.mutex);
      if (w.deque.empty()) continue;
      std::function<void()> task;
      if (off == 0 && t_pool == this && t_worker == d) {
        // Owner takes newest-first: recursive fan-out stays hot in cache.
        task = std::move(w.deque.back());
        w.deque.pop_back();
      } else {
        task = std::move(w.deque.front());
        w.deque.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        obs_steals().add();
        if (obs::recorder::armed()) {
          static const std::uint32_t steal_label =
              obs::recorder::intern_label("sim.pool.steal");
          obs::recorder::emit_instant(steal_label);
        }
      }
      return task;
    }
    std::this_thread::yield();
  }
}

void ThreadPool::run_task(std::function<void()>& task) {
  {
    // A task is a fresh logical root for tracing: a task executed inline by
    // a blocked caller (try_run_one in a helping join) must nest — and
    // aggregate — exactly like one executed by a worker.
    obs::TaskScope task_scope;
    task();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  obs_executed().add();
  bool idle = false;
  {
    std::lock_guard lock(mutex_);
    idle = (--pending_ == 0);
  }
  if (idle) cv_idle_.notify_all();
}

bool ThreadPool::try_run_one() {
  {
    std::lock_guard lock(mutex_);
    if (queued_ == 0) return false;
    --queued_;
  }
  const unsigned home = in_worker() ? t_worker : 0;
  std::function<void()> task = take_reserved(home);
  run_task(task);
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(unsigned index) {
  t_pool = this;
  t_worker = index;
  // Name the worker's flight-recorder track up front; the name survives
  // capture restarts, so traces armed later still label the lane.
  obs::recorder::set_thread_name("sim.pool.worker-" + std::to_string(index));
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      // Idle accounting: clock reads only when the worker would actually
      // block, and only while observability is on.
      std::uint64_t idle_start = 0;
      if (!stopping_ && queued_ == 0 && obs::enabled()) {
        idle_start = obs::detail::now_ns();
      }
      cv_task_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (idle_start != 0) {
        obs_idle_ns().add(obs::detail::now_ns() - idle_start);
      }
      if (queued_ == 0) {
        // stopping_ with an empty queue: drain is complete, exit. Tasks that
        // are queued at destruction still run because this branch is only
        // reachable once every reservation has been handed out.
        return;
      }
      --queued_;
    }
    std::function<void()> task = take_reserved(index);
    run_task(task);
  }
}

}  // namespace sre::sim
