#include "sim/thread_pool.hpp"

#include <algorithm>

namespace sre::sim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace sre::sim
