#include "sim/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace sre::sim {

namespace {

// Identity of the pool (if any) the current thread works for, so submit()
// can route recursive submissions to the local deque and in_worker() can
// answer without bookkeeping.
thread_local const ThreadPool* t_pool = nullptr;
thread_local unsigned t_worker = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::in_worker() const noexcept { return t_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  const unsigned d =
      in_worker() ? t_worker
                  : static_cast<unsigned>(
                        next_deque_.fetch_add(1, std::memory_order_relaxed) %
                        deques_.size());
  {
    std::lock_guard lock(deques_[d]->mutex);
    deques_[d]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard lock(mutex_);
    ++queued_;
    ++pending_;
  }
  cv_task_.notify_one();
}

void ThreadPool::submit_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const std::size_t n = tasks.size();
  const std::size_t start = next_deque_.fetch_add(n, std::memory_order_relaxed);
  for (std::size_t k = 0; k < n; ++k) {
    Worker& w = *deques_[(start + k) % deques_.size()];
    std::lock_guard lock(w.mutex);
    w.deque.push_back(std::move(tasks[k]));
  }
  {
    std::lock_guard lock(mutex_);
    queued_ += n;
    pending_ += n;
  }
  cv_task_.notify_all();
}

std::function<void()> ThreadPool::take_reserved(unsigned home) {
  // The caller holds a reservation (it decremented queued_ while positive),
  // and tasks are pushed to a deque before queued_ is incremented, so across
  // all deques at least one unclaimed task exists until we pop it. Concurrent
  // reservers each pop exactly one, so a repeated scan always terminates.
  const std::size_t n = deques_.size();
  for (;;) {
    for (std::size_t off = 0; off < n; ++off) {
      const std::size_t d = (home + off) % n;
      Worker& w = *deques_[d];
      std::lock_guard lock(w.mutex);
      if (w.deque.empty()) continue;
      std::function<void()> task;
      if (off == 0 && t_pool == this && t_worker == d) {
        // Owner takes newest-first: recursive fan-out stays hot in cache.
        task = std::move(w.deque.back());
        w.deque.pop_back();
      } else {
        task = std::move(w.deque.front());
        w.deque.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
      return task;
    }
    std::this_thread::yield();
  }
}

void ThreadPool::run_task(std::function<void()>& task) {
  task();
  executed_.fetch_add(1, std::memory_order_relaxed);
  bool idle = false;
  {
    std::lock_guard lock(mutex_);
    idle = (--pending_ == 0);
  }
  if (idle) cv_idle_.notify_all();
}

bool ThreadPool::try_run_one() {
  {
    std::lock_guard lock(mutex_);
    if (queued_ == 0) return false;
    --queued_;
  }
  const unsigned home = in_worker() ? t_worker : 0;
  std::function<void()> task = take_reserved(home);
  run_task(task);
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(unsigned index) {
  t_pool = this;
  t_worker = index;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (queued_ == 0) {
        // stopping_ with an empty queue: drain is complete, exit. Tasks that
        // are queued at destruction still run because this branch is only
        // reachable once every reservation has been handed out.
        return;
      }
      --queued_;
    }
    std::function<void()> task = take_reserved(index);
    run_task(task);
  }
}

}  // namespace sre::sim
