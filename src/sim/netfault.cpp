#include "sim/netfault.hpp"

#include <cmath>
#include <cstdlib>

#include "sim/rng.hpp"

namespace sre::sim {

namespace {

// Stream ids keep the fault classes statistically independent per
// connection (same idiom as sim/fault.cpp's scenario streams).
constexpr std::uint64_t kStreamConnect = 1;
constexpr std::uint64_t kStreamAccept = 2;
constexpr std::uint64_t kStreamReadReset = 3;
constexpr std::uint64_t kStreamWriteReset = 4;
constexpr std::uint64_t kStreamShortRead = 5;
constexpr std::uint64_t kStreamShortWrite = 6;
constexpr std::uint64_t kStreamDelay = 7;

/// Random-access uniform draw in [0, 1): a pure function of
/// (connection seed, stream, index), so replays agree in any query order.
double unit_draw(std::uint64_t conn_seed, std::uint64_t stream,
                 std::uint64_t index) noexcept {
  std::uint64_t state = substream_seed(substream_seed(conn_seed, stream), index);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != v && std::isfinite(parsed)) ? parsed : fallback;
}

}  // namespace

NetFaultSpec NetFaultSpec::from_env() {
  NetFaultSpec spec;
  spec.seed = static_cast<std::uint64_t>(env_double("SRE_FAULT_NET_SEED", 0.0));
  spec.connect_refuse_prob = env_double("SRE_FAULT_NET_REFUSE", 0.0);
  spec.accept_drop_prob = env_double("SRE_FAULT_NET_ACCEPT_DROP", 0.0);
  spec.read_reset_prob = env_double("SRE_FAULT_NET_RESET_READ", 0.0);
  spec.write_reset_prob = env_double("SRE_FAULT_NET_RESET_WRITE", 0.0);
  spec.short_read_prob = env_double("SRE_FAULT_NET_SHORT_READ", 0.0);
  spec.short_write_prob = env_double("SRE_FAULT_NET_SHORT_WRITE", 0.0);
  spec.delay_prob = env_double("SRE_FAULT_NET_DELAY_PROB", 0.0);
  spec.delay_seconds = env_double("SRE_FAULT_NET_DELAY_S", 0.0);
  return spec;
}

NetConnFaults::NetConnFaults(const NetFaultSpec& spec,
                             std::uint64_t conn_stream) noexcept
    : spec_(spec), conn_seed_(substream_seed(spec.seed, conn_stream)) {}

bool NetConnFaults::connect_refused(std::uint64_t attempt) const noexcept {
  if (spec_.connect_refuse_prob <= 0.0) return false;
  return unit_draw(conn_seed_, kStreamConnect, attempt) <
         spec_.connect_refuse_prob;
}

bool NetConnFaults::accept_dropped() const noexcept {
  if (spec_.accept_drop_prob <= 0.0) return false;
  return unit_draw(conn_seed_, kStreamAccept, 0) < spec_.accept_drop_prob;
}

bool NetConnFaults::read_reset(std::uint64_t op) const noexcept {
  if (spec_.read_reset_prob <= 0.0) return false;
  return unit_draw(conn_seed_, kStreamReadReset, op) < spec_.read_reset_prob;
}

bool NetConnFaults::write_reset(std::uint64_t op) const noexcept {
  if (spec_.write_reset_prob <= 0.0) return false;
  return unit_draw(conn_seed_, kStreamWriteReset, op) < spec_.write_reset_prob;
}

double NetConnFaults::short_read_fraction(std::uint64_t op) const noexcept {
  if (spec_.short_read_prob <= 0.0) return 1.0;
  const double u = unit_draw(conn_seed_, kStreamShortRead, op);
  if (u >= spec_.short_read_prob) return 1.0;
  // Rescale the hit's sub-uniform into (0, 1]: the truncation point is as
  // deterministic as the hit itself.
  const double frac = u / spec_.short_read_prob;
  return frac <= 0.0 ? 0.5 : frac;
}

double NetConnFaults::short_write_fraction(std::uint64_t op) const noexcept {
  if (spec_.short_write_prob <= 0.0) return 1.0;
  const double u = unit_draw(conn_seed_, kStreamShortWrite, op);
  if (u >= spec_.short_write_prob) return 1.0;
  const double frac = u / spec_.short_write_prob;
  return frac <= 0.0 ? 0.5 : frac;
}

double NetConnFaults::delay_seconds(std::uint64_t op) const noexcept {
  if (spec_.delay_prob <= 0.0 || spec_.delay_seconds <= 0.0) return 0.0;
  return unit_draw(conn_seed_, kStreamDelay, op) < spec_.delay_prob
             ? spec_.delay_seconds
             : 0.0;
}

}  // namespace sre::sim
